#!/usr/bin/env python3
"""CI gate for the three-way availability bench (bench_availability.cc).

Validates BENCH_availability.json against the expected schema and
re-derives every gated expectation from the raw numbers, independently
of the bench's own exit code (a truncated or hand-edited artifact must
not pass):

  * every cell: conservation drift 0, no residual uncertainty, traffic
    actually landed inside the outage window;
  * blocking 2PC's worst-case stalled window tracks the outage length;
  * Paxos Commit's worst-case stalled window stays under a constant
    bound (the failover timeout, not the outage) and the leg never
    manufactures polyvalues or uncertain outputs;
  * outage commit rates: polyvalue >= block, paxos >= 0.9 * block.

Usage: bench_availability_gate.py BENCH_availability.json
Exit: 0 iff the artifact is well-formed and every expectation holds.
"""

import json
import sys

CELL_FIELDS = {
    "outage": int,
    "protocol": str,
    "submitted": int,
    "committed": int,
    "outage_submitted": int,
    "outage_committed": int,
    "outage_commit_pct": (int, float),
    "outage_latency_ms": (int, float),
    "stalled_window_mean_s": (int, float),
    "stalled_window_max_s": (int, float),
    "stalled_window_count": int,
    "paxos_failovers": int,
    "paxos_recovery_ballots": int,
    "polyvalue_installs": int,
    "uncertain_outputs": int,
    "conservation_drift": int,
    "all_items_certain": bool,
}

PROTOCOLS = ("block", "polyvalue", "paxos_commit")
OUTAGES = (2, 5, 10)
PAXOS_STALL_BOUND_S = 0.5


def fail(msg):
    print(f"bench_availability_gate: FAIL: {msg}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) != 2:
        return fail(f"usage: {argv[0]} BENCH_availability.json")
    try:
        with open(argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot parse {argv[1]}: {e}")

    errors = []
    if doc.get("schema_version") != 1:
        errors.append("schema_version != 1")
    if doc.get("bench") != "bench_availability":
        errors.append("bench != bench_availability")
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append("missing config object")
        config = {}
    if sorted(config.get("protocols", [])) != sorted(PROTOCOLS):
        errors.append("config.protocols must list the three legs")

    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        for e in errors:
            print(f"bench_availability_gate: {e}", file=sys.stderr)
        return fail("missing cells array")

    grid = {}
    for i, cell in enumerate(cells):
        where = f"cells[{i}]"
        for field, ftype in CELL_FIELDS.items():
            if field not in cell:
                errors.append(f"{where}: missing field '{field}'")
            elif not isinstance(cell[field], ftype) or (
                    ftype is int and isinstance(cell[field], bool)):
                errors.append(f"{where}: field '{field}' has type "
                              f"{type(cell[field]).__name__}")
        if errors:
            continue
        grid[(cell["protocol"], cell["outage"])] = cell

    if errors:
        for e in errors:
            print(f"bench_availability_gate: {e}", file=sys.stderr)
        return fail(f"{len(errors)} schema error(s)")

    problems = []
    for outage in OUTAGES:
        for protocol in PROTOCOLS:
            cell = grid.get((protocol, outage))
            name = f"{protocol}/outage={outage}"
            if cell is None:
                problems.append(f"{name}: cell missing from the grid")
                continue
            if cell["conservation_drift"] != 0:
                problems.append(f"{name}: conservation drift")
            if not cell["all_items_certain"]:
                problems.append(f"{name}: residual uncertainty")
            if cell["outage_submitted"] == 0:
                problems.append(f"{name}: no outage traffic")

    for outage in OUTAGES:
        block = grid.get(("block", outage))
        poly = grid.get(("polyvalue", outage))
        paxos = grid.get(("paxos_commit", outage))
        if block is None or poly is None or paxos is None:
            continue
        name = f"outage={outage}"
        if block["stalled_window_max_s"] < 0.9 * outage:
            problems.append(
                f"{name}: block stall max "
                f"{block['stalled_window_max_s']:.3f}s does not track "
                f"the outage")
        if paxos["stalled_window_max_s"] > PAXOS_STALL_BOUND_S:
            problems.append(
                f"{name}: paxos stall max "
                f"{paxos['stalled_window_max_s']:.3f}s above the "
                f"{PAXOS_STALL_BOUND_S}s failover bound")
        if paxos["polyvalue_installs"] != 0 or paxos["uncertain_outputs"]:
            problems.append(f"{name}: paxos manufactured uncertainty")
        if paxos["outage_commit_pct"] < 0.9 * block["outage_commit_pct"]:
            problems.append(f"{name}: paxos commit% too far below block")
        if poly["outage_commit_pct"] < block["outage_commit_pct"]:
            problems.append(f"{name}: polyvalue commit% below block")

    derived_pass = not problems
    if doc.get("pass") is not derived_pass:
        problems.append(
            f"recorded pass={doc.get('pass')} disagrees with the gate")

    if problems:
        for p in problems:
            print(f"FAIL {p}")
        return fail("at least one expectation regressed")
    for outage in OUTAGES:
        block = grid[("block", outage)]
        paxos = grid[("paxos_commit", outage)]
        print(f"ok   outage={outage}: stall max block "
              f"{block['stalled_window_max_s']:.2f}s vs paxos "
              f"{paxos['stalled_window_max_s']:.2f}s")
    print(f"bench_availability_gate: PASS ({len(cells)} cells)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
