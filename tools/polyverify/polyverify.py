#!/usr/bin/env python3
"""polyverify: semantic static analysis for the polyvalue tree.

Four rules that need (at least) an AST, not a regex — the deeper layer
above tools/polylint.py:

  LK01  Declared lock-rank order. Every `Mutex` declared in src/ must
        carry POLYV_MUTEX_RANK(<rank>); the ACQUIRED_BEFORE boundary
        chain in src/common/lock_rank.h must be a single total order
        that agrees with the numeric rank values (no cycles, no gaps,
        no unchained ranks); raw ACQUIRED_BEFORE/ACQUIRED_AFTER
        attributes on mutexes outside the macro are rejected.

  SW01  Every `switch` over MsgType or TraceEventType covers every
        enumerator, and any `default:` must be LOUD (return an error /
        abort / check-fail) — a silent `default: break;` swallows the
        next protocol message or trace kind somebody adds.

  CG01  Call-graph layering: no blocking primitive (the sleep family,
        fsync/fdatasync outside class Wal, real-socket I/O) is
        reachable through the static call graph from the deterministic
        core (src/event/, src/sim/, sim_transport). Deeper than
        polylint's include-only LAY01.

  TR01  Every commit-engine message handler (TxnEngine::Handle* /
        PaxosEngine::Handle* taking a Message, per ENGINE_SCOPES)
        emits a trace event on every return path — directly
        via Trace()/TraceKey() or by unconditionally calling another
        all-paths-emitting engine method. Closes the loop with the
        TraceAuditor: an untraced return path is protocol behaviour
        the auditor can never see.

Frontends: libclang over compile_commands.json when the clang.cindex
bindings are importable (--frontend=clang to require it), otherwise a
self-contained internal parser (cpplite.py). The compilation database
also provides the translation-unit list; generate it with the normal
CMake configure (CMAKE_EXPORT_COMPILE_COMMANDS is ON).

Suppression: a line ending in `// polyverify: allow(RULE)` is exempt
from RULE. Policy (docs/STATIC_ANALYSIS.md): the tree carries ZERO
suppressions; the escape exists for incremental migration only and CI
treats new ones as review flags.

  --self-test       seed one violation per rule in a temp tree and fail
                    unless every rule fires
  --check-lockdep D validate runtime lockdep JSON dumps (produced by a
                    POLYV_LOCKDEP build with POLYV_LOCKDEP_JSON_DIR set)
                    against the declared rank order

Exit status: 0 clean, 1 violations, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpplite  # noqa: E402
import clangfront  # noqa: E402

ALLOW_PATTERN = re.compile(r"//\s*polyverify:\s*allow\(([A-Z0-9]+)\)")

LOUD_DEFAULT = re.compile(
    r"\breturn\b|\babort\s*\(|\bthrow\b|POLYV_CHECK|\bCHECK\s*\(|"
    r"\bFatal\b|__builtin_unreachable")

# CG01: blocking primitives by exact (case-sensitive) call token.
BLOCKING_PRIMITIVES = {
    "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until",
    "fsync", "fdatasync",
    "socket", "connect", "accept", "listen", "epoll_wait",
    "recv", "recvfrom", "send", "sendto", "poll", "select",
}
# fsync inside the WAL is the one sanctioned blocking call: durability
# IS its job. Everything else stays forbidden even there.
WAL_EXEMPT = {"fsync", "fdatasync"}

# CG01 roots: the deterministic core. Every function *defined* in these
# locations must not reach a blocking primitive.
DETERMINISTIC_DIRS = ("src/event/", "src/sim/")
DETERMINISTIC_BASENAMES = ("sim_transport",)

SW01_ENUMS = ("MsgType", "TraceEventType")


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def sort_key(self):
        return (self.path, self.line, self.rule)


def allowed(src, lineno, rule):
    m = ALLOW_PATTERN.search(src.raw_line(lineno))
    return m is not None and m.group(1) == rule


# --------------------------------------------------------------------
# Tree loading
# --------------------------------------------------------------------


def find_compdb(root, explicit):
    if explicit:
        return explicit if os.path.isfile(explicit) else None
    for cand in sorted(glob.glob(os.path.join(root, "build*",
                                              "compile_commands.json"))):
        return cand
    return None


def load_tree(root, compdb_path):
    """Returns (sources, compdb_entries). Sources covers every .h/.cc
    under src/; the compilation database (when present) defines the
    translation-unit subset handed to the libclang frontend."""
    paths = set()
    for dirpath, _, filenames in os.walk(os.path.join(root, "src")):
        for name in filenames:
            if name.endswith((".h", ".cc")):
                paths.add(os.path.join(dirpath, name))
    entries = []
    if compdb_path:
        with open(compdb_path) as f:
            entries = json.load(f)
    sources = []
    for path in sorted(paths):
        with open(path, errors="replace") as f:
            sources.append(cpplite.SourceFile(path=path, text=f.read()))
    return sources, entries


def rel(root, path):
    return os.path.relpath(path, root)


# --------------------------------------------------------------------
# LK01 — declared lock-rank order
# --------------------------------------------------------------------

RANK_ENTRY_RE = re.compile(r"\bX\((k\w+),\s*(\d+)\)")
BOUNDARY_RE = re.compile(
    r"\binline\s+LockRankBoundary\s+g_(\w+)\s*"
    r"(?:ACQUIRED_BEFORE\(\s*g_(\w+)\s*\))?\s*;")
RAW_ATTR_RE = re.compile(
    r"\bMutex\s+\w+\s+ACQUIRED_(?:BEFORE|AFTER)\s*\(")

LK01_EXEMPT_FILES = ("thread_annotations.h", "lock_rank.h")


def check_lk01(root, sources):
    violations = []
    rank_file = next(
        (s for s in sources if s.path.endswith("src/common/lock_rank.h")),
        None)
    if rank_file is None:
        violations.append(Violation(
            "LK01", os.path.join(root, "src/common/lock_rank.h"), 1,
            "missing lock_rank.h: the declared lock-rank order is gone"))
        return violations

    ranks = {}   # name -> value
    for m in RANK_ENTRY_RE.finditer(rank_file.clean):
        name, value = m.group(1), int(m.group(2))
        line = rank_file.line_of(m.start())
        if name in ranks:
            violations.append(Violation(
                "LK01", rank_file.path, line, f"duplicate rank name {name}"))
        if value in ranks.values():
            violations.append(Violation(
                "LK01", rank_file.path, line,
                f"duplicate rank value {value} ({name})"))
        ranks[name] = value

    boundaries = {}  # name -> (line, before_target or None)
    for m in BOUNDARY_RE.finditer(rank_file.clean):
        name, target = m.group(1), m.group(2)
        line = rank_file.line_of(m.start())
        if name in boundaries:
            violations.append(Violation(
                "LK01", rank_file.path, line,
                f"duplicate boundary sentinel g_{name}"))
        boundaries[name] = (line, target)

    for name in ranks:
        if name not in boundaries:
            violations.append(Violation(
                "LK01", rank_file.path, 1,
                f"rank {name} has no boundary sentinel g_{name} in the "
                "ACQUIRED_BEFORE chain"))
    for name, (line, _) in boundaries.items():
        if name not in ranks:
            violations.append(Violation(
                "LK01", rank_file.path, line,
                f"boundary g_{name} names no declared rank"))

    # The chain must be exactly the numeric order: an edge a->b for
    # every consecutive rank pair, no edge contradicting the values,
    # and no cycle.
    edges = {}
    for name, (line, target) in boundaries.items():
        if target is None:
            continue
        if name in ranks and target in ranks and ranks[name] >= ranks[target]:
            violations.append(Violation(
                "LK01", rank_file.path, line,
                f"chain declares {name} ACQUIRED_BEFORE {target} but rank "
                f"values say {ranks.get(name)} >= {ranks.get(target)}"))
        edges.setdefault(name, set()).add(target)

    # Cycle detection over the boundary graph.
    state = {}
    def dfs(node, path):
        state[node] = "visiting"
        for nxt in edges.get(node, ()):
            if state.get(nxt) == "visiting":
                cycle = path[path.index(nxt):] + [nxt] if nxt in path else \
                    [node, nxt]
                violations.append(Violation(
                    "LK01", rank_file.path, boundaries.get(node, (1,))[0],
                    "cycle in the declared lock order: "
                    + " -> ".join(cycle)))
            elif state.get(nxt) != "done":
                dfs(nxt, path + [nxt])
        state[node] = "done"
    for node in list(edges):
        if state.get(node) is None:
            dfs(node, [node])

    ordered = sorted((v, k) for k, v in ranks.items())
    for (_, a), (_, b) in zip(ordered, ordered[1:]):
        if b not in edges.get(a, ()):
            violations.append(Violation(
                "LK01", rank_file.path, boundaries.get(a, (1, None))[0],
                f"chain gap: no g_{a} ACQUIRED_BEFORE(g_{b}) edge between "
                "consecutive ranks"))

    # Every Mutex declaration in src/ must be ranked with a known rank,
    # spelled via the macro (raw attributes bypass the runtime half).
    for src in sources:
        if src.path.endswith(LK01_EXEMPT_FILES):
            continue
        for decl in cpplite.parse_mutex_decls(src):
            if allowed(src, decl.line, "LK01"):
                continue
            if not decl.rank:
                violations.append(Violation(
                    "LK01", src.path, decl.line,
                    f"Mutex {decl.name} has no declared rank; add "
                    "POLYV_MUTEX_RANK(<rank>) (see lock_rank.h)"))
            elif decl.rank not in ranks:
                violations.append(Violation(
                    "LK01", src.path, decl.line,
                    f"Mutex {decl.name} uses unknown rank {decl.rank}"))
        for m in RAW_ATTR_RE.finditer(src.clean):
            line = src.line_of(m.start())
            if not allowed(src, line, "LK01"):
                violations.append(Violation(
                    "LK01", src.path, line,
                    "raw ACQUIRED_BEFORE/ACQUIRED_AFTER on a Mutex; spell "
                    "the rank via POLYV_MUTEX_RANK so the runtime lockdep "
                    "sees it too"))
    return violations


# --------------------------------------------------------------------
# SW01 — exhaustive switches over protocol enums
# --------------------------------------------------------------------


def collect_enums(sources):
    members = {}
    for src in sources:
        for name, enumerators in cpplite.parse_enums(src).items():
            if name in SW01_ENUMS and enumerators:
                members[name] = enumerators
    return members


def check_sw01(root, sources, compdb_entries, frontend):
    enums = collect_enums(sources)
    violations = []
    for name in SW01_ENUMS:
        if name not in enums:
            violations.append(Violation(
                "SW01", root, 1,
                f"could not locate enum class {name} in src/"))
    if frontend == "clang":
        return violations + _sw01_clang(root, compdb_entries, enums)
    return violations + _sw01_internal(sources, enums)


def _switch_violations(path, line, enum, covered, has_default, loud,
                       expected):
    out = []
    missing = [m for m in expected if m not in covered]
    if missing:
        out.append(Violation(
            "SW01", path, line,
            f"switch over {enum} missing enumerator(s): "
            + ", ".join(missing)))
    if has_default and not loud:
        out.append(Violation(
            "SW01", path, line,
            f"silent `default:` in switch over {enum}; either enumerate "
            "every kind or make the default loud (return an error, "
            "POLYV_CHECK, abort)"))
    return out


def _sw01_internal(sources, enums):
    violations = []
    for src in sources:
        for sw in cpplite.parse_switches(src):
            target = None
            covered = set()
            for qual, member, _ in sw.cases:
                base = qual.split("::")[-1] if qual else ""
                if base in enums:
                    target = base
                    covered.add(member)
            if target is None:
                continue
            if allowed(src, sw.line, "SW01"):
                continue
            loud = bool(LOUD_DEFAULT.search(sw.default_body))
            violations.extend(_switch_violations(
                src.path, sw.line, target, covered, sw.has_default, loud,
                enums[target]))
    return violations


def _sw01_clang(root, compdb_entries, enums):
    violations = []
    seen = set()
    for entry in compdb_entries:
        if "/src/" not in entry["file"] and not \
                entry["file"].startswith("src/"):
            continue
        tu = clangfront.parse_tu(entry)
        if tu is None:
            continue
        for (path, line, enum, covered, has_default,
             loud) in clangfront.switches_over_enums(tu, enums.keys()):
            key = (path, line)
            if key in seen or not path.startswith(root):
                continue
            seen.add(key)
            violations.extend(_switch_violations(
                path, line, enum, covered, has_default, loud, enums[enum]))
    return violations


# --------------------------------------------------------------------
# CG01 — no blocking primitive reachable from the deterministic core
# --------------------------------------------------------------------


def _is_deterministic(root, path):
    r = rel(root, path).replace(os.sep, "/")
    if any(r.startswith(d) for d in DETERMINISTIC_DIRS):
        return True
    return os.path.basename(r).startswith(DETERMINISTIC_BASENAMES)


def check_cg01(root, sources):
    violations = []
    functions = []
    member_types = {}
    for src in sources:
        functions.extend(cpplite.parse_functions(src))
        for cls, members in cpplite.parse_member_types(src).items():
            member_types.setdefault(cls, {}).update(members)

    def fkey(fn):
        return (fn.cls, fn.name)

    by_key = {}
    by_name = {}
    for fn in functions:
        by_key.setdefault(fkey(fn), []).append(fn)
        by_name.setdefault(fn.name, []).append(fn)

    # Direct taint + call edges. Edges are resolved conservatively:
    # same-class members, receiver types known from the member index,
    # then tree-wide unique names. Unresolvable calls (std::function
    # indirection, overloaded names with unknown receivers) produce no
    # edge — CG01 under-approximates reachability so that every report
    # is a real static call chain.
    taint = {}  # fkey -> primitive name
    calls = {}  # fkey -> set of callee fkeys
    for fn in functions:
        key = fkey(fn)
        callees = calls.setdefault(key, set())
        for recv, op, name in cpplite.parse_calls(fn.body):
            if name in BLOCKING_PRIMITIVES:
                if name in WAL_EXEMPT and fn.cls == "Wal":
                    continue
                taint.setdefault(key, name)
                continue
            if recv and op:
                recv_type = member_types.get(fn.cls, {}).get(recv)
                if recv_type and (recv_type, name) in by_key:
                    callees.add((recv_type, name))
                continue
            if (fn.cls, name) in by_key and fn.cls:
                callees.add((fn.cls, name))
            elif len(by_name.get(name, [])) == 1:
                target = by_name[name][0]
                callees.add(fkey(target))

    # Propagate taint backwards to a fixpoint, remembering one concrete
    # chain per function for the report.
    chain = {k: [v] for k, v in taint.items()}
    changed = True
    while changed:
        changed = False
        for key, callees in calls.items():
            if key in chain:
                continue
            for callee in callees:
                if callee in chain:
                    chain[key] = ["::".join(filter(None, callee))] + \
                        chain[callee]
                    changed = True
                    break

    for fn in functions:
        if not _is_deterministic(root, fn.file):
            continue
        key = fkey(fn)
        if key in chain:
            if allowed(next(s for s in sources if s.path == fn.file),
                       fn.line, "CG01"):
                continue
            qualified = "::".join(filter(None, key))
            violations.append(Violation(
                "CG01", fn.file, fn.line,
                f"deterministic-core function {qualified} reaches blocking "
                "primitive: " + " -> ".join([qualified] + chain[key])))
    return violations


# --------------------------------------------------------------------
# TR01 — every engine message handler traces every return path
# --------------------------------------------------------------------


# Each commit-protocol leg owns an engine class whose message handlers
# must trace every return path. New legs register here.
ENGINE_SCOPES = (
    ("src/txn", "TxnEngine"),
    ("src/paxos", "PaxosEngine"),
)


def check_tr01(root, sources):
    violations = []
    srcs_by_path = {s.path: s for s in sources}
    for scope_dir, engine_cls in ENGINE_SCOPES:
        scoped = [
            src for src in sources
            if "/" + scope_dir + "/" in src.path.replace(os.sep, "/") or
            src.path.replace(os.sep, "/").endswith(scope_dir)
        ]
        if not scoped:
            # A tree without this leg (e.g. the self-test fixture) is
            # not a TR01 failure — the check is scoped per engine.
            continue
        engine_methods = []
        for src in scoped:
            for fn in cpplite.parse_functions(src):
                if fn.cls == engine_cls:
                    engine_methods.append(fn)

        # Fixpoint: the set of engine methods that emit on ALL paths.
        # Base emitters are the Trace helpers themselves.
        emitting = set()
        changed = True
        while changed:
            changed = False
            emitters = {"Trace", "TraceKey"} | emitting
            for fn in engine_methods:
                if fn.name in emitting:
                    continue
                if not cpplite.uncovered_returns(fn.body, emitters):
                    emitting.add(fn.name)
                    changed = True

        handlers = [
            fn for fn in engine_methods
            if fn.name.startswith("Handle") and "Message" in fn.params
        ]
        if not handlers:
            violations.append(Violation(
                "TR01", root, 1,
                f"found no {engine_cls}::Handle*(... Message ...) handlers "
                f"under {scope_dir} — frontend drift? (TR01 would be "
                "vacuous)"))
        emitters = {"Trace", "TraceKey"} | emitting
        for fn in handlers:
            src = srcs_by_path[fn.file]
            for off in cpplite.uncovered_returns(fn.body, emitters):
                line = src.line_of(
                    fn.body_offset + min(off, len(fn.body) - 1))
                if allowed(src, line, "TR01"):
                    continue
                violations.append(Violation(
                    "TR01", fn.file, line,
                    f"return path in message handler {engine_cls}::"
                    f"{fn.name} emits no trace event (Trace/TraceKey or "
                    "an all-paths-emitting callee); the TraceAuditor "
                    "cannot see this protocol step"))
    return violations


# --------------------------------------------------------------------
# lockdep JSON validation (CI gate for the runtime half)
# --------------------------------------------------------------------


def check_lockdep_dumps(root, dump_dir):
    rank_path = os.path.join(root, "src/common/lock_rank.h")
    with open(rank_path) as f:
        clean = cpplite.strip_comments_and_strings(f.read())
    declared = {name: int(value)
                for name, value in RANK_ENTRY_RE.findall(clean)}

    files = sorted(glob.glob(os.path.join(dump_dir, "lockdep.*.json")))
    if not files:
        print(f"polyverify --check-lockdep: no lockdep.*.json in {dump_dir}",
              file=sys.stderr)
        return 2

    errors = 0
    merged_edges = {}
    unranked_edges = 0
    total_reports = 0
    for path in files:
        with open(path) as f:
            dump = json.load(f)
        dumped = {e["name"]: e["rank"] for e in dump.get("rank_order", [])}
        if dumped != declared:
            print(f"{path}: rank table disagrees with lock_rank.h "
                  f"(binary built from a different tree?)", file=sys.stderr)
            errors += 1
        for report in dump.get("reports", []):
            print(f"{path}: lockdep report: {report}", file=sys.stderr)
            errors += 1
            total_reports += 1
        for e in dump.get("edges", []):
            held, acq = e["held_rank"], e["acquired_rank"]
            if held == 0 or acq == 0:
                unranked_edges += 1
                continue
            key = (held, acq)
            merged_edges[key] = merged_edges.get(key, 0) + e["count"]
            if held >= acq:
                print(f"{path}: observed edge {e['held_name']}({held}) -> "
                      f"{e['acquired_name']}({acq}) is not implied by the "
                      f"declared rank order "
                      f"[held at {e['held_site']}; "
                      f"acquired at {e['acquired_site']}]", file=sys.stderr)
                errors += 1

    print(f"polyverify --check-lockdep: {len(files)} dump(s), "
          f"{len(merged_edges)} distinct ranked edge(s), "
          f"{unranked_edges} edge(s) involving unranked (test-local) "
          f"mutexes, {total_reports} runtime report(s)")
    for (held, acq), count in sorted(merged_edges.items()):
        held_name = next((n for n, v in declared.items() if v == held),
                         str(held))
        acq_name = next((n for n, v in declared.items() if v == acq),
                        str(acq))
        print(f"  {held_name}({held}) -> {acq_name}({acq}) x{count}")
    if errors:
        print(f"polyverify --check-lockdep: {errors} error(s)",
              file=sys.stderr)
        return 1
    print("polyverify --check-lockdep: every observed edge is implied by "
          "the declared rank order; no cycles reported")
    return 0


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

CHECKS = {
    "LK01": lambda root, sources, compdb, fe: check_lk01(root, sources),
    "SW01": check_sw01,
    "CG01": lambda root, sources, compdb, fe: check_cg01(root, sources),
    "TR01": lambda root, sources, compdb, fe: check_tr01(root, sources),
}


def run_rules(root, compdb_path, frontend, rules=None):
    sources, compdb_entries = load_tree(root, compdb_path)
    violations = []
    for rule, check in CHECKS.items():
        if rules and rule not in rules:
            continue
        violations.extend(check(root, sources, compdb_entries, frontend))
    violations.sort(key=Violation.sort_key)
    return violations


# --------------------------------------------------------------------
# Self-test: seed one violation per rule, fail unless every rule fires.
# --------------------------------------------------------------------

SELF_TEST_FILES = {
    # LK01 seeds: a chain edge contradicting the numeric order, an
    # unranked mutex, and a raw-attribute mutex.
    "src/common/lock_rank.h": """
#define POLYV_LOCK_RANK_LIST(X) \\
  X(kAlpha, 10)                 \\
  X(kBeta, 20)                  \\
  X(kGamma, 30)

class CAPABILITY("lock_rank") LockRankBoundary {};
inline LockRankBoundary g_kAlpha;
inline LockRankBoundary g_kGamma ACQUIRED_BEFORE(g_kAlpha);
inline LockRankBoundary g_kBeta ACQUIRED_BEFORE(g_kGamma);
""",
    "src/store/cache.h": """
class Cache {
 private:
  Mutex mu_;
  Mutex ranked_ POLYV_MUTEX_RANK(kBeta);
  Mutex raw_ ACQUIRED_AFTER(g_kAlpha);
};
""",
    # SW01 seeds: a missing enumerator and a silent default.
    "src/txn/messages.h": """
enum class MsgType : uint8_t {
  kPrepare = 1,
  kAbort = 2,
};
""",
    "src/obs/trace.h": """
enum class TraceEventType : uint8_t {
  kSubmit = 1,
  kCrash = 2,
};
""",
    "src/txn/dispatch.cc": """
void Dispatch(MsgType t) {
  switch (t) {
    case MsgType::kPrepare:
      break;
    default:
      break;
  }
}
""",
    # CG01 seed: a deterministic-core function reaching sleep_for
    # through one hop.
    "src/sim/driver.cc": """
void Settle() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
void Tick() {
  Settle();
}
""",
    # TR01 seed: a handler with an untraced early-return path.
    "src/txn/engine_extra.cc": """
void TxnEngine::HandlePing(SiteId from, const Message& msg, Outbox* out) {
  if (msg.txn.value() == 0) {
    return;
  }
  Trace(TraceEventType::kSubmit, msg.txn);
}
""",
}

SELF_TEST_EXPECT = {
    "LK01": 4,  # contradicting edge + chain gap + unranked + raw attr
    "SW01": 2,  # missing enumerator + silent default
    "CG01": 1,  # Tick -> Settle -> sleep_for
    "TR01": 1,  # HandlePing's early return
}


def self_test():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        for relpath, content in SELF_TEST_FILES.items():
            path = os.path.join(tmp, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as f:
                f.write(content)
        compdb = [
            {"directory": tmp, "file": os.path.join(tmp, relpath),
             "command": f"c++ -c {os.path.join(tmp, relpath)}"}
            for relpath in SELF_TEST_FILES if relpath.endswith(".cc")
        ]
        compdb_path = os.path.join(tmp, "build", "compile_commands.json")
        os.makedirs(os.path.dirname(compdb_path))
        with open(compdb_path, "w") as f:
            json.dump(compdb, f)

        violations = run_rules(tmp, compdb_path, frontend="internal")
        fired = {}
        for v in violations:
            fired[v.rule] = fired.get(v.rule, 0) + 1
        for rule, expect in SELF_TEST_EXPECT.items():
            got = fired.get(rule, 0)
            if got < expect:
                failures.append(
                    f"{rule}: expected >= {expect} seeded violation(s), "
                    f"got {got}")
        # The properly ranked seed must NOT fire (false-positive guard).
        for v in violations:
            if "ranked_" in v.message:
                failures.append(f"false positive on ranked seed: {v}")

    if failures:
        print("polyverify self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("polyverify self-test passed: all rules fire on seeded "
          "violations")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="polyverify", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: tools/..)")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json path (default: "
                             "build*/compile_commands.json under root)")
    parser.add_argument("--frontend", choices=("auto", "internal", "clang"),
                        default="auto",
                        help="C++ frontend (auto: libclang when the "
                             "clang.cindex bindings are importable)")
    parser.add_argument("--rule", action="append", dest="rules",
                        help="run only this rule (repeatable)")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--check-lockdep", metavar="DIR",
                        help="validate lockdep JSON dumps in DIR against "
                             "the declared rank order, then exit")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    # When launched from tools/polyverify/, __file__'s great-grandparent
    # overshoots; prefer the directory containing src/.
    probe = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.root is None and os.path.isdir(os.path.join(probe, "..",
                                                        "src")):
        root = os.path.abspath(os.path.join(probe, ".."))

    if args.self_test:
        return self_test()
    if args.check_lockdep:
        return check_lockdep_dumps(root, args.check_lockdep)

    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if clangfront.available() else "internal"
    if frontend == "clang" and not clangfront.available():
        print("polyverify: --frontend=clang but clang.cindex is not "
              "importable", file=sys.stderr)
        return 2

    compdb = find_compdb(root, args.compdb)
    if compdb is None and frontend == "clang":
        print("polyverify: no compile_commands.json found; configure with "
              "cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is ON)",
              file=sys.stderr)
        return 2

    violations = run_rules(root, compdb, frontend,
                           set(args.rules) if args.rules else None)
    for v in violations:
        print(v)
    if violations:
        print(f"polyverify: {len(violations)} violation(s) "
              f"[frontend={frontend}]", file=sys.stderr)
        return 1
    print(f"polyverify: clean [frontend={frontend}, "
          f"compdb={'yes' if compdb else 'no'}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
