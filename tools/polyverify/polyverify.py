#!/usr/bin/env python3
"""polyverify: semantic static analysis for the polyvalue tree.

Ten rules that need (at least) an AST — and for the deeper tiers, a
control-flow graph or the extracted protocol automaton — rather than
a regex; the deeper layer above tools/polylint.py:

  LK01  Declared lock-rank order. Every `Mutex` declared in src/ must
        carry POLYV_MUTEX_RANK(<rank>); the ACQUIRED_BEFORE boundary
        chain in src/common/lock_rank.h must be a single total order
        that agrees with the numeric rank values (no cycles, no gaps,
        no unchained ranks); raw ACQUIRED_BEFORE/ACQUIRED_AFTER
        attributes on mutexes outside the macro are rejected.

  SW01  Every `switch` over MsgType or TraceEventType covers every
        enumerator, and any `default:` must be LOUD (return an error /
        abort / check-fail) — a silent `default: break;` swallows the
        next protocol message or trace kind somebody adds.

  CG01  Call-graph layering: no blocking primitive (the sleep family,
        fsync/fdatasync outside class Wal, real-socket I/O) is
        reachable through the static call graph from the deterministic
        core (src/event/, src/sim/, sim_transport). Deeper than
        polylint's include-only LAY01.

  TR01  Every commit-engine message handler (TxnEngine::Handle* /
        PaxosEngine::Handle* taking a Message, per ENGINE_SCOPES)
        emits a trace event on every return path — directly
        via Trace()/TraceKey() or by unconditionally calling another
        all-paths-emitting engine method. Closes the loop with the
        TraceAuditor: an untraced return path is protocol behaviour
        the auditor can never see.

  WA01  Write-ahead ordering, proven per-path on an intraprocedural
        CFG (tools/polyverify/dataflow.py) with interprocedural
        summaries. Two obligations per ENGINE_SCOPES class: (a) a
        mutation of durable protocol state (prepared/decided tables,
        item versions) must reach a Wal append before ANY outbound
        send / FlushOutbox on every path; (b) specific protocol acks
        (READY, COMPLETE, outcome replies, Paxos phase/decision
        messages) must be dominated by the record they acknowledge
        (promised=/accepted[]/RecordDecision/...). Boolean-correlated
        branches (`if (commit || made_writes) Record(..)` ...
        `commit ? MakeComplete(..) : MakeAbort(..)`) are understood;
        lambda bodies are opaque (deferred thunks run post-barrier).

  GD01  Guard inference: for every class with exactly one Mutex
        member, infer which unannotated fields are lock-protected from
        the lock context of their accessors (RAII MutexLock scopes,
        explicit Lock/Unlock spans, REQUIRES annotations, and a
        call-graph fixpoint over functions only ever called under the
        lock) and flag fields accessed BOTH under and outside the
        inferred guard — the unannotated shared state Clang TSA is
        blind to. The fix is a GUARDED_BY annotation (see
        CONTRIBUTING.md's mutex recipe), which moves the field into
        TSA's jurisdiction.

  HP01  Hot-path allocation census: every heap-allocation site (new,
        make_unique/make_shared, container-growth calls) reachable
        through the static call graph from the hot roots
        (TxnEngine/PaxosEngine Submit + message handlers, the
        condition algebra in src/condition/, transport encode/decode)
        is enumerated into tools/polyverify/hp01_baseline.json. The
        checked-in baseline may only SHRINK: any new site or count
        growth fails, so the arena/flat-condition work (ROADMAP item
        3) starts from a quantified, monotonically improving map.
        Regenerate with --hp01-update after intentional reductions.

  SM01  Message-flow completeness over the extracted protocol state
        machine (tools/polyverify/statemachine.py): every MsgType
        constructed anywhere in src/ must have a receiving OnMessage
        handler arm in some engine, Message::Encode AND Decode codec
        arms, and a trace event in the receiving handler's closure —
        cross-TU, closing the per-file gap of polylint MSG01. SM01
        also gates that extraction matches the committed automaton
        spec (tools/polyverify/sm_{txn,paxos}.json + DOT); a handler
        change shows up as a reviewable protocol-spec diff.
        Regenerate with --sm-update.

  LV01  Static liveness over the automaton: every method that creates
        a waiting entry (participations_/coordinations_/leaderships_)
        must reach a ScheduleGuarded escape timer, and every timer
        callback that seeks an outcome remotely (OutcomeRequest,
        Paxos nudge/recovery) must consult the local decided_ table
        and re-arm — the static form of Gray & Lamport's non-blocking
        property, and exactly the shape of the PR-7 FailoverTick bug.

  DC01  Decision consistency, path-sensitive on the PR-8 CFG: an
        engine method executes each terminal action family (Decide,
        ApplyOutcome, outcome replies, client callbacks, ...) at most
        once per feasible path — no path both replies and re-decides.

Frontends: libclang over compile_commands.json when the clang.cindex
bindings are importable (--frontend=clang to require it), otherwise a
self-contained internal parser (cpplite.py). The compilation database
also provides the translation-unit list; generate it with the normal
CMake configure (CMAKE_EXPORT_COMPILE_COMMANDS is ON). When libclang
is requested-by-auto but missing or mismatched, a one-line warning
names the reason and the internal frontend takes over; the final
report line always names the frontend that produced it.

Suppression: a line ending in `// polyverify: allow(RULE)` is exempt
from RULE. Policy (docs/STATIC_ANALYSIS.md): the tree carries ZERO
suppressions; the escape exists for incremental migration only and CI
treats new ones as review flags.

  --self-test       seed one violation per rule in a temp tree and fail
                    unless every rule fires
  --check-lockdep D validate runtime lockdep JSON dumps (produced by a
                    POLYV_LOCKDEP build with POLYV_LOCKDEP_JSON_DIR set)
                    against the declared rank order
  --json PATH       write a machine-readable report (frontend, per-rule
                    violations and wall-clock timings, HP01 census
                    summary)
  --budget-seconds N fail when the full scan exceeds N seconds — keeps
                    the pass cheap enough for the default CI gate; the
                    failure names the slowest rule
  --hp01-update     regenerate tools/polyverify/hp01_baseline.json from
                    the current tree and exit
  --sm-update       regenerate the committed protocol automaton specs
                    (tools/polyverify/sm_*.json + .dot) and exit
  --sm-emit DIR     write freshly extracted automata into DIR and exit
                    (CI diffs them against the committed specs)

Exit status: 0 clean, 1 violations, 2 usage/environment error,
3 over --budget-seconds.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpplite  # noqa: E402
import clangfront  # noqa: E402
import dataflow  # noqa: E402
import statemachine  # noqa: E402

ALLOW_PATTERN = re.compile(r"//\s*polyverify:\s*allow\(([A-Z0-9]+)\)")

LOUD_DEFAULT = re.compile(
    r"\breturn\b|\babort\s*\(|\bthrow\b|POLYV_CHECK|\bCHECK\s*\(|"
    r"\bFatal\b|__builtin_unreachable")

# CG01: blocking primitives by exact (case-sensitive) call token.
BLOCKING_PRIMITIVES = {
    "sleep", "usleep", "nanosleep", "sleep_for", "sleep_until",
    "fsync", "fdatasync",
    "socket", "connect", "accept", "listen", "epoll_wait",
    "recv", "recvfrom", "send", "sendto", "poll", "select",
}
# fsync inside the WAL is the one sanctioned blocking call: durability
# IS its job. Everything else stays forbidden even there.
WAL_EXEMPT = {"fsync", "fdatasync"}

# CG01 roots: the deterministic core, plus the sim-driven benchmarks —
# bench_cluster/bench_availability drive the simulator under fixed
# seeds, so a blocking call reachable from them breaks reproducibility
# exactly like one in src/sim. Every function *defined* in these
# locations must not reach a blocking primitive.
# src/workload/ generators and the src/svc/ serving plane run inside
# SimFrontDoor-driven sims too, so they carry the same obligation, and
# so does the src/replica/ partial-replication layer (placement,
# routing, consistency sweeps all run on the simulator clock).
DETERMINISTIC_DIRS = ("src/event/", "src/sim/", "src/workload/",
                      "src/svc/", "src/replica/")
DETERMINISTIC_BASENAMES = ("sim_transport", "bench_cluster",
                           "bench_availability", "bench_georep")
# Classes that block BY CONTRACT: ThreadFrontDoor is the real-thread
# adapter (its retry backoff sleeps deliberately) and is never driven
# from the simulator — SimFrontDoor is the deterministic twin. Its own
# sanctioned primitives don't taint it, but any blocking call it
# reaches through OTHER classes still does.
BLOCKING_BY_CONTRACT = ("ThreadFrontDoor",)

SW01_ENUMS = ("MsgType", "TraceEventType")


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def sort_key(self):
        return (self.path, self.line, self.rule)


def allowed(src, lineno, rule):
    m = ALLOW_PATTERN.search(src.raw_line(lineno))
    return m is not None and m.group(1) == rule


# --------------------------------------------------------------------
# Tree loading
# --------------------------------------------------------------------


def find_compdb(root, explicit):
    if explicit:
        return explicit if os.path.isfile(explicit) else None
    for cand in sorted(glob.glob(os.path.join(root, "build*",
                                              "compile_commands.json"))):
        return cand
    return None


def load_tree(root, compdb_path):
    """Returns (sources, compdb_entries). Sources covers every .h/.cc
    under src/ plus bench/ (the sim-driven benchmarks are CG01 roots);
    the compilation database (when present) defines the
    translation-unit subset handed to the libclang frontend."""
    paths = set()
    for top in ("src", "bench"):
        for dirpath, _, filenames in os.walk(os.path.join(root, top)):
            for name in filenames:
                if name.endswith((".h", ".cc")):
                    paths.add(os.path.join(dirpath, name))
    entries = []
    if compdb_path:
        with open(compdb_path) as f:
            entries = json.load(f)
    sources = []
    for path in sorted(paths):
        with open(path, errors="replace") as f:
            sources.append(cpplite.SourceFile(path=path, text=f.read()))
    return sources, entries


def rel(root, path):
    return os.path.relpath(path, root)


def in_src(root, path):
    return rel(root, path).replace(os.sep, "/").startswith("src/")


def src_only(root, sources):
    """bench/ sources participate in the call graph (CG01 roots) but
    declaration-level rules stay scoped to src/: bench mutexes may be
    unranked, bench switches/fields are not protocol state."""
    return [s for s in sources if in_src(root, s.path)]


# --------------------------------------------------------------------
# LK01 — declared lock-rank order
# --------------------------------------------------------------------

RANK_ENTRY_RE = re.compile(r"\bX\((k\w+),\s*(\d+)\)")
BOUNDARY_RE = re.compile(
    r"\binline\s+LockRankBoundary\s+g_(\w+)\s*"
    r"(?:ACQUIRED_BEFORE\(\s*g_(\w+)\s*\))?\s*;")
RAW_ATTR_RE = re.compile(
    r"\bMutex\s+\w+\s+ACQUIRED_(?:BEFORE|AFTER)\s*\(")

LK01_EXEMPT_FILES = ("thread_annotations.h", "lock_rank.h")


def check_lk01(root, sources):
    violations = []
    rank_file = next(
        (s for s in sources if s.path.endswith("src/common/lock_rank.h")),
        None)
    if rank_file is None:
        violations.append(Violation(
            "LK01", os.path.join(root, "src/common/lock_rank.h"), 1,
            "missing lock_rank.h: the declared lock-rank order is gone"))
        return violations

    ranks = {}   # name -> value
    for m in RANK_ENTRY_RE.finditer(rank_file.clean):
        name, value = m.group(1), int(m.group(2))
        line = rank_file.line_of(m.start())
        if name in ranks:
            violations.append(Violation(
                "LK01", rank_file.path, line, f"duplicate rank name {name}"))
        if value in ranks.values():
            violations.append(Violation(
                "LK01", rank_file.path, line,
                f"duplicate rank value {value} ({name})"))
        ranks[name] = value

    boundaries = {}  # name -> (line, before_target or None)
    for m in BOUNDARY_RE.finditer(rank_file.clean):
        name, target = m.group(1), m.group(2)
        line = rank_file.line_of(m.start())
        if name in boundaries:
            violations.append(Violation(
                "LK01", rank_file.path, line,
                f"duplicate boundary sentinel g_{name}"))
        boundaries[name] = (line, target)

    for name in ranks:
        if name not in boundaries:
            violations.append(Violation(
                "LK01", rank_file.path, 1,
                f"rank {name} has no boundary sentinel g_{name} in the "
                "ACQUIRED_BEFORE chain"))
    for name, (line, _) in boundaries.items():
        if name not in ranks:
            violations.append(Violation(
                "LK01", rank_file.path, line,
                f"boundary g_{name} names no declared rank"))

    # The chain must be exactly the numeric order: an edge a->b for
    # every consecutive rank pair, no edge contradicting the values,
    # and no cycle.
    edges = {}
    for name, (line, target) in boundaries.items():
        if target is None:
            continue
        if name in ranks and target in ranks and ranks[name] >= ranks[target]:
            violations.append(Violation(
                "LK01", rank_file.path, line,
                f"chain declares {name} ACQUIRED_BEFORE {target} but rank "
                f"values say {ranks.get(name)} >= {ranks.get(target)}"))
        edges.setdefault(name, set()).add(target)

    # Cycle detection over the boundary graph.
    state = {}
    def dfs(node, path):
        state[node] = "visiting"
        for nxt in edges.get(node, ()):
            if state.get(nxt) == "visiting":
                cycle = path[path.index(nxt):] + [nxt] if nxt in path else \
                    [node, nxt]
                violations.append(Violation(
                    "LK01", rank_file.path, boundaries.get(node, (1,))[0],
                    "cycle in the declared lock order: "
                    + " -> ".join(cycle)))
            elif state.get(nxt) != "done":
                dfs(nxt, path + [nxt])
        state[node] = "done"
    for node in list(edges):
        if state.get(node) is None:
            dfs(node, [node])

    ordered = sorted((v, k) for k, v in ranks.items())
    for (_, a), (_, b) in zip(ordered, ordered[1:]):
        if b not in edges.get(a, ()):
            violations.append(Violation(
                "LK01", rank_file.path, boundaries.get(a, (1, None))[0],
                f"chain gap: no g_{a} ACQUIRED_BEFORE(g_{b}) edge between "
                "consecutive ranks"))

    # Every Mutex declaration in src/ must be ranked with a known rank,
    # spelled via the macro (raw attributes bypass the runtime half).
    for src in src_only(root, sources):
        if src.path.endswith(LK01_EXEMPT_FILES):
            continue
        for decl in cpplite.parse_mutex_decls(src):
            if allowed(src, decl.line, "LK01"):
                continue
            if not decl.rank:
                violations.append(Violation(
                    "LK01", src.path, decl.line,
                    f"Mutex {decl.name} has no declared rank; add "
                    "POLYV_MUTEX_RANK(<rank>) (see lock_rank.h)"))
            elif decl.rank not in ranks:
                violations.append(Violation(
                    "LK01", src.path, decl.line,
                    f"Mutex {decl.name} uses unknown rank {decl.rank}"))
        for m in RAW_ATTR_RE.finditer(src.clean):
            line = src.line_of(m.start())
            if not allowed(src, line, "LK01"):
                violations.append(Violation(
                    "LK01", src.path, line,
                    "raw ACQUIRED_BEFORE/ACQUIRED_AFTER on a Mutex; spell "
                    "the rank via POLYV_MUTEX_RANK so the runtime lockdep "
                    "sees it too"))
    return violations


# --------------------------------------------------------------------
# SW01 — exhaustive switches over protocol enums
# --------------------------------------------------------------------


def collect_enums(sources):
    members = {}
    for src in sources:
        for name, enumerators in cpplite.parse_enums(src).items():
            if name in SW01_ENUMS and enumerators:
                members[name] = enumerators
    return members


def check_sw01(root, sources, compdb_entries, frontend):
    sources = src_only(root, sources)
    enums = collect_enums(sources)
    violations = []
    for name in SW01_ENUMS:
        if name not in enums:
            violations.append(Violation(
                "SW01", root, 1,
                f"could not locate enum class {name} in src/"))
    if frontend == "clang":
        return violations + _sw01_clang(root, compdb_entries, enums)
    return violations + _sw01_internal(sources, enums)


def _switch_violations(path, line, enum, covered, has_default, loud,
                       expected):
    out = []
    missing = [m for m in expected if m not in covered]
    if missing:
        out.append(Violation(
            "SW01", path, line,
            f"switch over {enum} missing enumerator(s): "
            + ", ".join(missing)))
    if has_default and not loud:
        out.append(Violation(
            "SW01", path, line,
            f"silent `default:` in switch over {enum}; either enumerate "
            "every kind or make the default loud (return an error, "
            "POLYV_CHECK, abort)"))
    return out


def _sw01_internal(sources, enums):
    violations = []
    for src in sources:
        for sw in cpplite.parse_switches(src):
            target = None
            covered = set()
            for qual, member, _ in sw.cases:
                base = qual.split("::")[-1] if qual else ""
                if base in enums:
                    target = base
                    covered.add(member)
            if target is None:
                continue
            if allowed(src, sw.line, "SW01"):
                continue
            loud = bool(LOUD_DEFAULT.search(sw.default_body))
            violations.extend(_switch_violations(
                src.path, sw.line, target, covered, sw.has_default, loud,
                enums[target]))
    return violations


def _sw01_clang(root, compdb_entries, enums):
    violations = []
    seen = set()
    for entry in compdb_entries:
        if "/src/" not in entry["file"] and not \
                entry["file"].startswith("src/"):
            continue
        tu = clangfront.parse_tu(entry)
        if tu is None:
            continue
        for (path, line, enum, covered, has_default,
             loud) in clangfront.switches_over_enums(tu, enums.keys()):
            key = (path, line)
            if key in seen or not path.startswith(root):
                continue
            seen.add(key)
            violations.extend(_switch_violations(
                path, line, enum, covered, has_default, loud, enums[enum]))
    return violations


# --------------------------------------------------------------------
# CG01 — no blocking primitive reachable from the deterministic core
# --------------------------------------------------------------------


def _is_deterministic(root, path):
    r = rel(root, path).replace(os.sep, "/")
    if any(r.startswith(d) for d in DETERMINISTIC_DIRS):
        return True
    return os.path.basename(r).startswith(DETERMINISTIC_BASENAMES)


def fkey(fn):
    return (fn.cls, fn.name)


def gather_functions(sources):
    """Parses every source once: (functions, member_types)."""
    functions = []
    member_types = {}
    for src in sources:
        functions.extend(cpplite.parse_functions(src))
        for cls, members in cpplite.parse_member_types(src).items():
            member_types.setdefault(cls, {}).update(members)
    return functions, member_types


def build_call_graph(functions, member_types, primitive_check=None):
    """Conservative static call graph, shared by CG01 and HP01.

    Edges are resolved conservatively: same-class members, receiver
    types known from the member index, then tree-wide unique names.
    Unresolvable calls (std::function indirection, overloaded names
    with unknown receivers) produce no edge — reachability
    under-approximates so that every report is a real static chain.

    primitive_check(fn, name) may return "taint" (record the name as a
    direct primitive hit, no edge) or "skip" (no edge); anything else
    resolves normally. Returns (by_key, by_name, calls, taint).
    """
    by_key = {}
    by_name = {}
    for fn in functions:
        by_key.setdefault(fkey(fn), []).append(fn)
        by_name.setdefault(fn.name, []).append(fn)

    taint = {}  # fkey -> primitive name
    calls = {}  # fkey -> set of callee fkeys
    for fn in functions:
        key = fkey(fn)
        callees = calls.setdefault(key, set())
        for recv, op, name in cpplite.parse_calls(fn.body):
            if primitive_check is not None:
                verdict = primitive_check(fn, name)
                if verdict == "taint":
                    taint.setdefault(key, name)
                    continue
                if verdict == "skip":
                    continue
            if recv and op:
                recv_type = member_types.get(fn.cls, {}).get(recv)
                if recv_type and (recv_type, name) in by_key:
                    callees.add((recv_type, name))
                continue
            if (fn.cls, name) in by_key and fn.cls:
                callees.add((fn.cls, name))
            elif len(by_name.get(name, [])) == 1:
                target = by_name[name][0]
                callees.add(fkey(target))
    return by_key, by_name, calls, taint


def check_cg01(root, sources):
    violations = []
    functions, member_types = gather_functions(sources)

    def primitive_check(fn, name):
        if name in BLOCKING_PRIMITIVES:
            if name in WAL_EXEMPT and fn.cls == "Wal":
                return "skip"
            if fn.cls in BLOCKING_BY_CONTRACT:
                return "skip"
            return "taint"
        return None

    _, _, calls, taint = build_call_graph(functions, member_types,
                                          primitive_check)

    # Propagate taint backwards to a fixpoint, remembering one concrete
    # chain per function for the report.
    chain = {k: [v] for k, v in taint.items()}
    changed = True
    while changed:
        changed = False
        for key, callees in calls.items():
            if key in chain:
                continue
            for callee in callees:
                if callee in chain:
                    chain[key] = ["::".join(filter(None, callee))] + \
                        chain[callee]
                    changed = True
                    break

    for fn in functions:
        if not _is_deterministic(root, fn.file):
            continue
        key = fkey(fn)
        if key in chain:
            if allowed(next(s for s in sources if s.path == fn.file),
                       fn.line, "CG01"):
                continue
            qualified = "::".join(filter(None, key))
            violations.append(Violation(
                "CG01", fn.file, fn.line,
                f"deterministic-core function {qualified} reaches blocking "
                "primitive: " + " -> ".join([qualified] + chain[key])))
    return violations


# --------------------------------------------------------------------
# TR01 — every engine message handler traces every return path
# --------------------------------------------------------------------


# Each commit-protocol leg owns an engine class whose message handlers
# must trace every return path. New legs register here. `handler_prefix`
# + `param_token` select the protocol-step methods (param_token None =
# no parameter requirement); `emitters` are the class's base trace
# helpers.
ENGINE_SCOPES = (
    {"dir": "src/txn", "cls": "TxnEngine", "handler_prefix": "Handle",
     "param_token": "Message", "emitters": ("Trace", "TraceKey")},
    {"dir": "src/paxos", "cls": "PaxosEngine", "handler_prefix": "Handle",
     "param_token": "Message", "emitters": ("Trace", "TraceKey")},
    # Partial-replication leg: the read router's protocol step is
    # Attempt() — serve, fail over, or exhaust — tracing through its
    # Emit() helper (replica_read / replica_failover events).
    {"dir": "src/replica", "cls": "ReadRouter",
     "handler_prefix": "Attempt", "param_token": None,
     "emitters": ("Emit",)},
)


def check_tr01(root, sources):
    violations = []
    srcs_by_path = {s.path: s for s in sources}
    for scope in ENGINE_SCOPES:
        scope_dir = scope["dir"]
        engine_cls = scope["cls"]
        base_emitters = set(scope["emitters"])
        scoped = [
            src for src in sources
            if "/" + scope_dir + "/" in src.path.replace(os.sep, "/") or
            src.path.replace(os.sep, "/").endswith(scope_dir)
        ]
        if not scoped:
            # A tree without this leg (e.g. the self-test fixture) is
            # not a TR01 failure — the check is scoped per engine.
            continue
        engine_methods = []
        for src in scoped:
            for fn in cpplite.parse_functions(src):
                if fn.cls == engine_cls:
                    engine_methods.append(fn)

        # Fixpoint: the set of engine methods that emit on ALL paths.
        # Base emitters are the class's trace helpers themselves.
        emitting = set()
        changed = True
        while changed:
            changed = False
            emitters = base_emitters | emitting
            for fn in engine_methods:
                if fn.name in emitting:
                    continue
                if not cpplite.uncovered_returns(fn.body, emitters):
                    emitting.add(fn.name)
                    changed = True

        handlers = [
            fn for fn in engine_methods
            if fn.name.startswith(scope["handler_prefix"]) and
            (scope["param_token"] is None or
             scope["param_token"] in fn.params)
        ]
        if not handlers:
            violations.append(Violation(
                "TR01", root, 1,
                f"found no {engine_cls}::{scope['handler_prefix']}* "
                f"handlers under {scope_dir} — frontend drift? (TR01 "
                "would be vacuous)"))
        emitters = base_emitters | emitting
        for fn in handlers:
            src = srcs_by_path[fn.file]
            for off in cpplite.uncovered_returns(fn.body, emitters):
                line = src.line_of(
                    fn.body_offset + min(off, len(fn.body) - 1))
                if allowed(src, line, "TR01"):
                    continue
                violations.append(Violation(
                    "TR01", fn.file, line,
                    f"return path in message handler {engine_cls}::"
                    f"{fn.name} emits no trace event (Trace/TraceKey or "
                    "an all-paths-emitting callee); the TraceAuditor "
                    "cannot see this protocol step"))
    return violations


# --------------------------------------------------------------------
# WA01 — write-ahead ordering, proven per-path
# --------------------------------------------------------------------

# Mode A: a durable-state mutation must reach a Wal append before ANY
# outbound send on every path. Configured per engine class; Paxos is
# durable-by-contract (no WAL member), so only TxnEngine participates.
WA01_BARRIER_RES = (r"\bWal_\s*\(", r"\bwal_\s*->\s*Append\s*\(")
WA01_SEND_RES = (r"\bsends\s*\.\s*(?:emplace_back|push_back)\s*\(",
                 r"\bsend_\s*\(", r"\bFlushOutbox\s*\(")
WA01_MODE_A = {
    "TxnEngine": {
        "mutations": (
            ("prepared_",
             r"\bprepared_\s*(?:\[|\.\s*(?:emplace|erase|insert|clear)\b)"),
            ("decided_",
             r"\bdecided_\s*(?:\[|\.\s*(?:emplace|erase|insert|clear)\b)"),
            ("items_->Write", r"\bitems_\s*->\s*Write\s*\("),
        ),
        # WAL replay / snapshot import re-applies already-durable state;
        # logging it again would double every record on recovery.
        "exempt": ("RestoreDurableState", "ImportDurableState"),
    },
}

# Mode B: protocol acks must be dominated by the record they
# acknowledge — per-send-token obligations, (label, send regex,
# record regexes). A record anywhere earlier on the path (including
# inside an always-recording callee) discharges the obligation;
# obligations that reach a function entry unsatisfied bubble to every
# call site.
WA01_OBLIGATIONS = {
    "TxnEngine": (
        ("MakeComplete", r"\bMakeComplete\s*\(",
         (r"\bRecordDecisionDurable\s*\(", r"\bWal_\s*\(",
          r"\bdecided_\b")),
        ("MakeReady", r"\bMakeReady\s*\(",
         (r"\bMarkPreparedDurable\s*\(", r"\bWal_\s*\(",
          r"\bprepared_\b")),
        ("MakeOutcomeReply", r"\bMakeOutcomeReply\s*\(",
         (r"\bRecordDecisionDurable\s*\(", r"\bdecided_\b",
          r"\boutcomes_\s*->")),
        ("MakeOutcomeNotify", r"\bMakeOutcomeNotify\s*\(",
         (r"\bWal_\s*\(", r"\boutcomes_\s*->", r"\bdecided_\b")),
    ),
    "PaxosEngine": (
        ("MakePaxosPhase1b", r"\bMakePaxosPhase1b\s*\(",
         (r"\bpromised\s*=(?!=)", r"\bdecided_\b")),
        ("MakePaxosPhase2b", r"\bMakePaxosPhase2b\s*\(",
         (r"\baccepted\s*\[",)),
        ("MakePaxosDecision", r"\bMakePaxosDecision\s*\(",
         (r"\bRecordDecision\s*\(", r"\bdecided_\b")),
        ("MakePaxosPhase2a", r"\bMakePaxosPhase2a\s*\(",
         (r"\bprepared_\b", r"\bproposed\s*\[", r"\bbest_accepted\b")),
    ),
}


class _WaInfo:
    """Per-function CFG + source context for the WA01 walks."""

    def __init__(self, fn, src):
        self.fn = fn
        self.src = src
        self.body = dataflow.blank_lambdas(fn.body)
        self.cfg = dataflow.build_cfg(self.body)

    def line(self, body_off):
        return self.src.line_of(
            self.fn.body_offset + min(body_off, len(self.fn.body) - 1))


def _wa01_infos(root, sources, engine_cls):
    infos = []
    for src in src_only(root, sources):
        for fn in cpplite.parse_functions(src):
            if fn.cls == engine_cls:
                infos.append(_WaInfo(fn, src))
    return infos


def _wa01_mode_a(root, engine_cls, infos, conf):
    barrier_re = re.compile("|".join(WA01_BARRIER_RES))
    send_re = re.compile("|".join(WA01_SEND_RES))
    mut_res = [(label, re.compile(rx)) for label, rx in conf["mutations"]]
    exempt = set(conf.get("exempt", ()))
    names = {i.fn.name for i in infos}
    call_re = re.compile(
        r"\b(" + "|".join(sorted(map(re.escape, names), key=len,
                                 reverse=True)) + r")\s*\(")
    by_name = {}
    for i in infos:
        by_name.setdefault(i.fn.name, []).append(i)

    # summary per function name: (exit_pending, always_barrier,
    # sends_unbarriered). Overloads merge conservatively.
    summ = {n: (frozenset(), False, False) for n in names}
    for n in exempt:
        summ[n] = (frozenset(), False, False)

    def analyze(info, report=None):
        obs = {"send_unbarriered": False}

        def transfer(off, text, payload, facts):
            pending, barriered = payload
            events = []
            for m in barrier_re.finditer(text):
                events.append((m.start(), 0, "bar", None))
            for label, rx in mut_res:
                for m in dataflow.guarded_tokens(rx, text, facts):
                    events.append((m.start(), 1, "mut", label))
            for m in dataflow.guarded_tokens(send_re, text, facts):
                events.append((m.start(), 2, "send", None))
            for m in call_re.finditer(text):
                nm = m.group(1)
                if nm != info.fn.name:
                    events.append((m.start(), 3, "call", nm))
            events.sort(key=lambda e: (e[0], e[1]))
            for pos, _, kind, arg in events:
                if kind == "bar":
                    pending, barriered = frozenset(), True
                elif kind == "mut":
                    pending = pending | {arg}
                elif kind == "send":
                    if not barriered:
                        obs["send_unbarriered"] = True
                    if pending and report:
                        report(info, off + pos, pending, None)
                elif kind == "call":
                    s = summ.get(arg)
                    if s is None:
                        continue
                    ep, ab, su = s
                    if pending and su and report:
                        report(info, off + pos, pending, arg)
                    if ab:
                        pending, barriered = frozenset(), True
                    if ep:
                        pending = pending | ep
            return (pending, barriered)

        exits = dataflow.walk(info.cfg, (frozenset(), False), transfer)
        ep = frozenset().union(*(p for p, _ in exits)) if exits \
            else frozenset()
        ab = bool(exits) and all(b for _, b in exits)
        return (ep, ab, obs["send_unbarriered"])

    for _ in range(len(names) + 3):
        changed = False
        for n, group in by_name.items():
            if n in exempt:
                continue
            results = [analyze(i) for i in group]
            merged = (frozenset().union(*(r[0] for r in results)),
                      all(r[1] for r in results),
                      any(r[2] for r in results))
            if merged != summ[n]:
                summ[n] = merged
                changed = True
        if not changed:
            break

    violations = []
    seen = set()

    def report(info, off, pending, via):
        line = info.line(off)
        key = (info.fn.file, line, tuple(sorted(pending)))
        if key in seen or allowed(info.src, line, "WA01"):
            return
        seen.add(key)
        what = ", ".join(sorted(pending))
        via_txt = f" (send inside callee {via})" if via else ""
        violations.append(Violation(
            "WA01", info.fn.file, line,
            f"durable mutation of {what} may reach an outbound "
            f"send{via_txt} without a Wal append on some path in "
            f"{engine_cls}::{info.fn.name}; append before the send is "
            "enqueued"))

    for info in infos:
        if info.fn.name in exempt:
            continue
        analyze(info, report=report)
    return violations


def _wa01_mode_b(root, engine_cls, infos, obligation):
    send_label, send_rx, rec_rxs = obligation
    send_re = re.compile(send_rx)
    rec_re = re.compile("|".join(rec_rxs))
    names = {i.fn.name for i in infos}
    call_re = re.compile(
        r"\b(" + "|".join(sorted(map(re.escape, names), key=len,
                                 reverse=True)) + r")\s*\(")
    by_name = {}
    for i in infos:
        by_name.setdefault(i.fn.name, []).append(i)

    # always_records[name]: every entry->exit path hits a record (or an
    # always-recording callee) — calling such a function discharges the
    # obligation in the caller.
    always = {n: False for n in names}
    for _ in range(len(names) + 3):
        changed = False
        for n, group in by_name.items():
            if always[n]:
                continue
            ok = True
            for info in group:
                def transfer(off, text, sat, facts):
                    if sat:
                        return sat
                    for m in rec_re.finditer(text):
                        return True
                    for m in call_re.finditer(text):
                        if m.group(1) != info.fn.name and \
                                always.get(m.group(1)):
                            return True
                    return sat
                exits = dataflow.walk(info.cfg, False, transfer)
                if not exits or not all(exits):
                    ok = False
                    break
            if ok:
                always[n] = True
                changed = True
        if not changed:
            break

    # needs[name]: an obligation site reachable from entry with no
    # record first — (file, line, chain) of the innermost site.
    needs = {n: None for n in names}
    for _ in range(len(names) + 3):
        changed = False
        for n, group in by_name.items():
            if needs[n] is not None:
                continue
            for info in group:
                esc = []

                def transfer(off, text, sat, facts):
                    events = []
                    for m in rec_re.finditer(text):
                        events.append((m.start(), 0, "rec", None))
                    for m in dataflow.guarded_tokens(send_re, text,
                                                     facts):
                        events.append((m.start(), 1, "send", None))
                    for m in call_re.finditer(text):
                        nm = m.group(1)
                        if nm != info.fn.name:
                            events.append((m.start(), 2, "call", nm))
                    events.sort(key=lambda e: (e[0], e[1]))
                    for pos, _, kind, arg in events:
                        if kind == "rec":
                            sat = True
                        elif kind == "send":
                            if not sat:
                                esc.append((info.fn.file,
                                            info.line(off + pos),
                                            (info.fn.name,)))
                        elif kind == "call":
                            if not sat and needs.get(arg):
                                f, ln, chain = needs[arg]
                                esc.append((f, ln,
                                            (info.fn.name,) + chain))
                            if always.get(arg):
                                sat = True
                    return sat

                dataflow.walk(info.cfg, False, transfer)
                if esc:
                    needs[n] = esc[0]
                    changed = True
                    break
        if not changed:
            break

    # Roots: class functions never called from another class function
    # (lambda-scheduled callbacks count as entry points — their bodies
    # are opaque, and they run later with fresh context).
    called = set()
    for info in infos:
        for m in call_re.finditer(info.body):
            if m.group(1) != info.fn.name:
                called.add(m.group(1))

    violations = []
    seen = set()
    recs = ", ".join(r.replace("\\b", "").replace("\\s*", " ").strip()
                     for r in rec_rxs)
    for n, group in by_name.items():
        if n in called or needs[n] is None:
            continue
        f, ln, chain = needs[n]
        src = group[0].src if group[0].fn.file == f else \
            next((i.src for i in infos if i.fn.file == f), group[0].src)
        if allowed(src, ln, "WA01"):
            continue
        key = (f, ln, send_label)
        if key in seen:
            continue
        seen.add(key)
        via = " [via " + " -> ".join(chain) + "]" if len(chain) > 1 \
            else ""
        violations.append(Violation(
            "WA01", f, ln,
            f"{engine_cls}::{chain[-1]} sends {send_label}(...) on a "
            f"path with no prior record ({recs}); the ack can outrun "
            f"the state it acknowledges{via}"))
    return violations


def check_wa01(root, sources):
    violations = []
    for scope in ENGINE_SCOPES:
        engine_cls = scope["cls"]
        infos = _wa01_infos(root, sources, engine_cls)
        if not infos:
            continue
        conf = WA01_MODE_A.get(engine_cls)
        if conf:
            violations.extend(
                _wa01_mode_a(root, engine_cls, infos, conf))
        for obligation in WA01_OBLIGATIONS.get(engine_cls, ()):
            violations.extend(
                _wa01_mode_b(root, engine_cls, infos, obligation))
    return violations


# --------------------------------------------------------------------
# GD01 — guard inference for unannotated fields
# --------------------------------------------------------------------

GD01_EXEMPT_TYPES = ("Mutex", "CondVar", "MutexLock", "LockRankBoundary")


def check_gd01(root, sources):
    violations = []
    fields_by_cls = {}
    fns_by_cls = {}
    srcs = {}
    for src in src_only(root, sources):
        srcs[src.path] = src
        for cls, fl in cpplite.parse_member_fields(src).items():
            fields_by_cls.setdefault(cls, []).extend(fl)
        for fn in cpplite.parse_functions(src):
            if fn.cls:
                fns_by_cls.setdefault(fn.cls, []).append(fn)

    for cls, fields in sorted(fields_by_cls.items()):
        mutexes = [f for f in fields if f.type == "Mutex"]
        if len(mutexes) != 1:
            continue  # no guard to infer, or ambiguous
        mu = mutexes[0].name
        fns = fns_by_cls.get(cls, [])
        if not fns:
            continue

        bodies = {id(fn): dataflow.blank_lambdas(fn.body) for fn in fns}
        regions = {id(fn): [r for r in cpplite.lock_regions(bodies[id(fn)])
                            if r[0] == mu]
                   for fn in fns}
        req_re = re.compile(r"\bREQUIRES(?:_SHARED)?\s*\(\s*" +
                            re.escape(mu) + r"\s*\)")
        locked_fns = {fn.name for fn in fns
                      if req_re.search(fn.annotations)}

        # Call-graph fixpoint: a function called ONLY from locked
        # contexts inherits the lock.
        name_set = {fn.name for fn in fns}
        call_re = re.compile(
            r"\b(" + "|".join(sorted(map(re.escape, name_set), key=len,
                                     reverse=True)) + r")\s*\(")
        sites = {}  # callee name -> [(caller fn, offset)]
        for fn in fns:
            for m in call_re.finditer(bodies[id(fn)]):
                nm = m.group(1)
                if nm != fn.name:
                    sites.setdefault(nm, []).append((fn, m.start()))

        def under_lock(fn, off):
            if fn.name in locked_fns:
                return True
            return any(s <= off < e for _, s, e in regions[id(fn)])

        changed = True
        while changed:
            changed = False
            for fn in fns:
                if fn.name in locked_fns:
                    continue
                ss = sites.get(fn.name, [])
                if ss and all(under_lock(cfn, off) for cfn, off in ss):
                    locked_fns.add(fn.name)
                    changed = True

        for f in fields:
            if f.annotations or f.type in GD01_EXEMPT_TYPES:
                continue
            # const members are immutable after the ctor; unguarded
            # reads are benign. ("const" also covers constexpr.)
            if "static" in f.spec or "const" in f.spec:
                continue
            if f.type.startswith(("std::atomic", "atomic")):
                continue
            if not f.name.endswith("_"):
                continue
            acc_re = re.compile(r"\b" + re.escape(f.name) + r"\b")
            locked_n = 0
            unlocked = []
            for fn in fns:
                is_ctor = fn.name == cls
                for m in acc_re.finditer(bodies[id(fn)]):
                    if under_lock(fn, m.start()):
                        locked_n += 1
                    elif not is_ctor:
                        unlocked.append((fn, m.start()))
            if locked_n >= 2 and unlocked and locked_n > len(unlocked):
                fn, off = unlocked[0]
                src = srcs.get(fn.file)
                line = src.line_of(fn.body_offset +
                                   min(off, len(fn.body) - 1))
                if allowed(src, line, "GD01") or \
                        allowed(src, f.line, "GD01"):
                    continue
                violations.append(Violation(
                    "GD01", fn.file, line,
                    f"{cls}::{f.name} is accessed under {mu} "
                    f"{locked_n}x but here in {cls}::{fn.name} without "
                    f"it ({len(unlocked)} unguarded access(es)); "
                    f"annotate the field GUARDED_BY({mu}) (declared "
                    f"line {f.line}) or move the access under the "
                    "lock"))
        del under_lock
    return violations


# --------------------------------------------------------------------
# HP01 — hot-path allocation census (shrink-only baseline)
# --------------------------------------------------------------------

HP01_BASELINE = os.path.join("tools", "polyverify", "hp01_baseline.json")

HP01_ALLOC_KINDS = (
    ("new", re.compile(r"\bnew\b")),
    ("make_unique", re.compile(r"\bmake_unique\s*<")),
    ("make_shared", re.compile(r"\bmake_shared\s*<")),
    ("container_growth", re.compile(
        r"(?:\.|->)\s*(?:push_back|emplace_back|emplace|insert|resize|"
        r"reserve|append)\s*\(")),
)

HP01_ENGINE_CLASSES = ("TxnEngine", "PaxosEngine")
HP01_CONDITION_CLASSES = ("Condition", "Term")


def _hp01_is_root(root, fn):
    r = rel(root, fn.file).replace(os.sep, "/")
    if fn.cls in HP01_ENGINE_CLASSES and (
            fn.name == "Submit" or fn.name == "OnMessage" or
            fn.name.startswith("Handle")):
        return True
    if r.startswith("src/condition/") and fn.cls in \
            HP01_CONDITION_CLASSES:
        return True
    if (r.startswith("src/net/") or
            os.path.basename(r) == "messages.cc") and \
            re.match(r"(Encode|Decode)", fn.name):
        return True
    return False


def hp01_census(root, sources):
    """Returns (census, lines): census maps
    "file::Class::Function::kind" -> count over every allocation site
    whose enclosing function is statically reachable from a hot root;
    lines maps each key to its first occurrence for reporting."""
    functions, member_types = gather_functions(sources)
    by_key, _, calls, _ = build_call_graph(functions, member_types)

    roots = {fkey(fn) for fn in functions if _hp01_is_root(root, fn)}
    reachable = set(roots)
    frontier = list(roots)
    while frontier:
        k = frontier.pop()
        for callee in calls.get(k, ()):
            if callee not in reachable:
                reachable.add(callee)
                frontier.append(callee)

    census = {}
    lines = {}
    srcs = {s.path: s for s in sources}
    for fn in functions:
        if fkey(fn) not in reachable:
            continue
        r = rel(root, fn.file).replace(os.sep, "/")
        if not r.startswith("src/"):
            continue
        for kind, rx in HP01_ALLOC_KINDS:
            for m in rx.finditer(fn.body):
                key = f"{r}::{fn.cls}::{fn.name}::{kind}"
                census[key] = census.get(key, 0) + 1
                if key not in lines:
                    lines[key] = srcs[fn.file].line_of(
                        fn.body_offset + m.start())
    return census, lines


def hp01_write_baseline(root, census):
    path = os.path.join(root, HP01_BASELINE)
    payload = {
        "comment": "HP01 hot-path allocation census. CI enforces this "
                   "baseline may only shrink; regenerate with "
                   "`polyverify.py --hp01-update` after intentional "
                   "allocation reductions (see docs/STATIC_ANALYSIS.md).",
        "total_sites": len(census),
        "total_allocations": sum(census.values()),
        "entries": {k: census[k] for k in sorted(census)},
    }
    with open(path, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=False)
        f.write("\n")
    return path


def check_hp01(root, sources):
    census, lines = hp01_census(root, sources)
    path = os.path.join(root, HP01_BASELINE)
    if not os.path.isfile(path):
        return [Violation(
            "HP01", path, 1,
            "hot-path allocation baseline is missing; generate it with "
            "`python3 tools/polyverify/polyverify.py --hp01-update` "
            "and commit it")]
    with open(path) as f:
        baseline = json.load(f).get("entries", {})
    violations = []
    for key in sorted(census):
        base = baseline.get(key, 0)
        if census[key] > base:
            grew = "new hot-path allocation site" if base == 0 else \
                f"count grew {base} -> {census[key]}"
            violations.append(Violation(
                "HP01", key.split("::")[0], lines[key],
                f"{grew}: {key} — the census may only shrink; avoid "
                "the allocation (arena/small-vector/reuse) or, if "
                "genuinely required, update the baseline with "
                "--hp01-update and justify it in the PR"))
    shrunk = [k for k in baseline
              if census.get(k, 0) < baseline[k]]
    if shrunk and not violations:
        print(f"polyverify HP01: {len(shrunk)} baseline entr"
              f"{'y' if len(shrunk) == 1 else 'ies'} shrank — run "
              "--hp01-update to ratchet the baseline down")
    return violations


# --------------------------------------------------------------------
# lockdep JSON validation (CI gate for the runtime half)
# --------------------------------------------------------------------


def check_lockdep_dumps(root, dump_dir):
    rank_path = os.path.join(root, "src/common/lock_rank.h")
    with open(rank_path) as f:
        clean = cpplite.strip_comments_and_strings(f.read())
    declared = {name: int(value)
                for name, value in RANK_ENTRY_RE.findall(clean)}

    files = sorted(glob.glob(os.path.join(dump_dir, "lockdep.*.json")))
    if not files:
        print(f"polyverify --check-lockdep: no lockdep.*.json in {dump_dir}",
              file=sys.stderr)
        return 2

    errors = 0
    merged_edges = {}
    unranked_edges = 0
    total_reports = 0
    for path in files:
        with open(path) as f:
            dump = json.load(f)
        dumped = {e["name"]: e["rank"] for e in dump.get("rank_order", [])}
        if dumped != declared:
            print(f"{path}: rank table disagrees with lock_rank.h "
                  f"(binary built from a different tree?)", file=sys.stderr)
            errors += 1
        for report in dump.get("reports", []):
            print(f"{path}: lockdep report: {report}", file=sys.stderr)
            errors += 1
            total_reports += 1
        for e in dump.get("edges", []):
            held, acq = e["held_rank"], e["acquired_rank"]
            if held == 0 or acq == 0:
                unranked_edges += 1
                continue
            key = (held, acq)
            merged_edges[key] = merged_edges.get(key, 0) + e["count"]
            if held >= acq:
                print(f"{path}: observed edge {e['held_name']}({held}) -> "
                      f"{e['acquired_name']}({acq}) is not implied by the "
                      f"declared rank order "
                      f"[held at {e['held_site']}; "
                      f"acquired at {e['acquired_site']}]", file=sys.stderr)
                errors += 1

    print(f"polyverify --check-lockdep: {len(files)} dump(s), "
          f"{len(merged_edges)} distinct ranked edge(s), "
          f"{unranked_edges} edge(s) involving unranked (test-local) "
          f"mutexes, {total_reports} runtime report(s)")
    for (held, acq), count in sorted(merged_edges.items()):
        held_name = next((n for n, v in declared.items() if v == held),
                         str(held))
        acq_name = next((n for n, v in declared.items() if v == acq),
                        str(acq))
        print(f"  {held_name}({held}) -> {acq_name}({acq}) x{count}")
    if errors:
        print(f"polyverify --check-lockdep: {errors} error(s)",
              file=sys.stderr)
        return 1
    print("polyverify --check-lockdep: every observed edge is implied by "
          "the declared rank order; no cycles reported")
    return 0


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------

def _statemachine_rule(check):
    """Wraps a statemachine.py rule (returning raw finding tuples)
    into the Violation + allow-comment regime."""
    def run(root, sources, compdb, fe):
        by_path = {s.path: s for s in sources}
        out = []
        for rule, path, line, message in check(root, sources):
            src = by_path.get(path)
            if src is not None and allowed(src, line, rule):
                continue
            out.append(Violation(rule, path, line, message))
        return out
    return run


CHECKS = {
    "LK01": lambda root, sources, compdb, fe: check_lk01(root, sources),
    "SW01": check_sw01,
    "CG01": lambda root, sources, compdb, fe: check_cg01(root, sources),
    "TR01": lambda root, sources, compdb, fe: check_tr01(root, sources),
    "WA01": lambda root, sources, compdb, fe: check_wa01(root, sources),
    "GD01": lambda root, sources, compdb, fe: check_gd01(root, sources),
    "HP01": lambda root, sources, compdb, fe: check_hp01(root, sources),
    "SM01": _statemachine_rule(statemachine.check_sm01),
    "LV01": _statemachine_rule(statemachine.check_lv01),
    "DC01": _statemachine_rule(statemachine.check_dc01),
}


def run_rules(root, compdb_path, frontend, rules=None):
    """Returns (violations, per-rule wall-clock seconds)."""
    sources, compdb_entries = load_tree(root, compdb_path)
    violations = []
    timings = {}
    for rule, check in CHECKS.items():
        if rules and rule not in rules:
            continue
        rule_started = time.monotonic()
        violations.extend(check(root, sources, compdb_entries, frontend))
        timings[rule] = round(time.monotonic() - rule_started, 3)
    violations.sort(key=Violation.sort_key)
    return violations, timings


# --------------------------------------------------------------------
# Self-test: seed one violation per rule, fail unless every rule fires.
# --------------------------------------------------------------------

SELF_TEST_FILES = {
    # LK01 seeds: a chain edge contradicting the numeric order, an
    # unranked mutex, and a raw-attribute mutex.
    "src/common/lock_rank.h": """
#define POLYV_LOCK_RANK_LIST(X) \\
  X(kAlpha, 10)                 \\
  X(kBeta, 20)                  \\
  X(kGamma, 30)

class CAPABILITY("lock_rank") LockRankBoundary {};
inline LockRankBoundary g_kAlpha;
inline LockRankBoundary g_kGamma ACQUIRED_BEFORE(g_kAlpha);
inline LockRankBoundary g_kBeta ACQUIRED_BEFORE(g_kGamma);
""",
    "src/store/cache.h": """
class Cache {
 private:
  Mutex mu_;
  Mutex ranked_ POLYV_MUTEX_RANK(kBeta);
  Mutex raw_ ACQUIRED_AFTER(g_kAlpha);
};
""",
    # SW01 seeds: a missing enumerator and a silent default.
    "src/txn/messages.h": """
enum class MsgType : uint8_t {
  kPrepare = 1,
  kAbort = 2,
  kPing = 3,
};
""",
    # Codec fixture: complete Encode/Decode switches (SW01-clean) so
    # SM01's codec-arm sub-check sees kPrepare/kAbort/kPing covered —
    # kPaxosNudge below is deliberately constructed without arms.
    "src/txn/messages.cc": """
Message MakePing(TxnId txn) {
  Message m;
  m.type = MsgType::kPing;
  m.txn = txn;
  return m;
}
Message MakePrepare(TxnId txn) {
  Message m;
  m.type = MsgType::kPrepare;
  m.txn = txn;
  return m;
}
Message MakeAbort(TxnId txn) {
  Message m;
  m.type = MsgType::kAbort;
  m.txn = txn;
  return m;
}
Message MakePaxosNudge(TxnId txn) {
  Message m;
  m.type = MsgType::kPaxosNudge;
  m.txn = txn;
  return m;
}
const char* Message::Encode() const {
  switch (type) {
    case MsgType::kPrepare:
      return "P";
    case MsgType::kAbort:
      return "A";
    case MsgType::kPing:
      return "G";
  }
  return "";
}
Message Message::Decode(const char* buf) {
  Message m;
  switch (m.type) {
    case MsgType::kPrepare:
      break;
    case MsgType::kAbort:
      break;
    case MsgType::kPing:
      break;
    default:
      return m;
  }
  return m;
}
""",
    # SM01 + DC01 seeds. OnMessage gives kPrepare/kAbort real handler
    # arms but discards kPing (constructed in engine_seed/engine_hot)
    # without a handler -> SM01. HandleAsk replies twice on the
    # known-outcome path -> DC01; FanOut's single looped reply site
    # must stay clean (distinct-site counting), and its decided_
    # consult discharges the WA01 outcome-reply obligation.
    "src/txn/engine_sm.cc": """
void TxnEngine::OnMessage(SiteId from, const Message& msg, Outbox* out) {
  switch (msg.type) {
    case MsgType::kPrepare:
      HandleFlow(from, msg, out);
      break;
    case MsgType::kAbort:
      HandleFlow(from, msg, out);
      break;
    case MsgType::kPing:
      break;
  }
}
void TxnEngine::HandleFlow(SiteId from, const Message& msg, Outbox* out) {
  Trace(TraceEventType::kSubmit, msg.txn);
}
void TxnEngine::HandleAsk(SiteId from, const Message& msg, Outbox* sends) {
  const bool known = decided_.count(msg.txn) > 0;
  if (known) {
    sends.emplace_back(from, MakeOutcomeReply(msg.txn, true));
  }
  sends.emplace_back(from, MakeOutcomeReply(msg.txn, false));
  Trace(TraceEventType::kSubmit, msg.txn);
}
void TxnEngine::FanOut(TxnId txn, Outbox* sends) {
  if (decided_.count(txn) == 0) {
    return;
  }
  for (SiteId peer : peers_) {
    sends->emplace_back(peer, MakeOutcomeReply(txn, true));
  }
}
""",
    # LV01 seeds. HandleParkForever creates a waiting entry with no
    # reachable escape timer (rule a). FailoverPoke is an armed timer
    # callback that nudges for an outcome without consulting decided_
    # and without re-arming — the PR-7 dropped-self-decision stuck-wait
    # shape (rule b, two findings). SteadyTick does both and must stay
    # clean.
    "src/paxos/paxos_live.cc": """
void PaxosEngine::HandleParkForever(SiteId from, const Message& msg,
                                    Outbox* out) {
  participations_.emplace(msg.txn, Participation{});
  Trace(TraceEventType::kSubmit, msg.txn);
}
void PaxosEngine::HandleKickoff(SiteId from, const Message& msg,
                                Outbox* out) {
  ScheduleGuarded(config_.paxos_failover_timeout,
                  [this, msg] { FailoverPoke(msg.txn); });
  ScheduleGuarded(config_.inquiry_interval,
                  [this, msg] { SteadyTick(msg.txn); });
  Trace(TraceEventType::kSubmit, msg.txn);
}
void PaxosEngine::FailoverPoke(TxnId txn) {
  outbox_.emplace_back(0, MakePaxosNudge(txn));
  Trace(TraceEventType::kCrash, txn);
}
void PaxosEngine::SteadyTick(TxnId txn) {
  if (decided_.count(txn) > 0) {
    return;
  }
  outbox_.emplace_back(0, MakePaxosNudge(txn));
  ScheduleGuarded(config_.inquiry_interval,
                  [this, txn] { SteadyTick(txn); });
  Trace(TraceEventType::kCrash, txn);
}
""",
    "src/obs/trace.h": """
enum class TraceEventType : uint8_t {
  kSubmit = 1,
  kCrash = 2,
};
""",
    "src/txn/dispatch.cc": """
void Dispatch(MsgType t) {
  switch (t) {
    case MsgType::kPrepare:
      break;
    default:
      break;
  }
}
""",
    # CG01 seed: a deterministic-core function reaching sleep_for
    # through one hop.
    "src/sim/driver.cc": """
void Settle() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
void Tick() {
  Settle();
}
""",
    # TR01 seed: a handler with an untraced early-return path.
    "src/txn/engine_extra.cc": """
void TxnEngine::HandlePing(SiteId from, const Message& msg, Outbox* out) {
  if (msg.txn.value() == 0) {
    return;
  }
  Trace(TraceEventType::kSubmit, msg.txn);
}
""",
    # CG01 bench seed: a sim-driven benchmark reaching sleep_for
    # through one hop (bench_cluster is in DETERMINISTIC_BASENAMES).
    "bench/bench_cluster.cc": """
void Drive() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}
int main() {
  Drive();
  return 0;
}
""",
    # WA01 seeds. Mode A: HandleLoseAck mutates prepared_ then sends
    # with no Wal append on the path. Mode B: HandleProbe sends
    # MakePaxosPhase2b without touching acceptor state. FP guards:
    # Decide's commit||made_writes correlation via a ternary send must
    # stay clean (DecideLike), and records buried in an always-records
    # helper must discharge the obligation (HandleTell via
    # RecordCleanly).
    "src/txn/engine_seed.cc": """
void TxnEngine::HandleLoseAck(SiteId from, const Message& msg, Outbox* sends) {
  prepared_.erase(msg.txn);
  sends.emplace_back(from, MakePing(msg.txn));
  Trace(TraceEventType::kSubmit, msg.txn);
}
void TxnEngine::RecordCleanly(TxnId txn, bool commit) {
  decided_[txn] = commit;
  Wal_(WalRecord::Outcome(txn, commit));
}
void TxnEngine::HandleTell(SiteId from, const Message& msg, Outbox* sends) {
  RecordCleanly(msg.txn, true);
  sends.emplace_back(from, MakeComplete(msg.txn));
  Trace(TraceEventType::kSubmit, msg.txn);
}
void TxnEngine::DecideLike(TxnId txn, bool commit, bool made_writes,
                           Outbox* sends) {
  if (commit || made_writes) {
    decided_[txn] = commit;
    Wal_(WalRecord::Outcome(txn, commit));
  }
  sends.emplace_back(0, commit ? MakeComplete(txn) : MakeAbort(txn));
}
""",
    "src/paxos/paxos_seed.cc": """
void PaxosEngine::HandleProbe(SiteId from, const Message& msg, Outbox* sends) {
  sends.emplace_back(from, MakePaxosPhase2b(msg.txn, msg.ballot));
  Trace(TraceEventType::kSubmit, msg.txn);
}
""",
    # GD01 seed: count_ is accessed twice under mu_ but once outside in
    # Peek (fires); pending_ is only ever touched under the lock
    # (clean); ctor initialisation of count_ must not count.
    "src/store/tracker.h": """
class Tracker {
 public:
  Tracker() { count_ = 0; }
  void Add(int n) {
    MutexLock l(&mu_);
    count_ += n;
    pending_.push_back(n);
  }
  int Drain() {
    MutexLock l(&mu_);
    pending_.clear();
    return count_;
  }
  int Peek() { return count_; }

 private:
  Mutex mu_;
  int count_;
  std::vector<int> pending_;
};
""",
    # HP01 seed: HandleHot is a hot root with a push_back, a
    # make_unique and a `new` one hop away in Grow(); the fixture
    # baseline below only admits the container_growth site, so the
    # other two kinds must fire as growth.
    "src/txn/engine_hot.cc": """
void TxnEngine::Grow() {
  slab_ = new char[4096];
}
void TxnEngine::HandleHot(SiteId from, const Message& msg, Outbox* sends) {
  queue_.push_back(msg.txn);
  auto tmp = std::make_unique<Message>(msg);
  Grow();
  sends.emplace_back(from, MakePing(msg.txn));
  Trace(TraceEventType::kSubmit, msg.txn);
}
""",
}

SELF_TEST_HP01_BASELINE = {
    "entries": {
        "src/txn/engine_hot.cc::TxnEngine::HandleHot::container_growth": 2,
        "src/txn/engine_seed.cc::TxnEngine::HandleLoseAck"
        "::container_growth": 1,
        "src/txn/engine_seed.cc::TxnEngine::HandleTell"
        "::container_growth": 1,
        "src/paxos/paxos_seed.cc::PaxosEngine::HandleProbe"
        "::container_growth": 1,
        "src/txn/engine_sm.cc::TxnEngine::HandleAsk"
        "::container_growth": 2,
        "src/paxos/paxos_live.cc::PaxosEngine::HandleParkForever"
        "::container_growth": 1,
        "src/paxos/paxos_live.cc::PaxosEngine::FailoverPoke"
        "::container_growth": 1,
        "src/paxos/paxos_live.cc::PaxosEngine::SteadyTick"
        "::container_growth": 1,
    },
}

SELF_TEST_EXPECT = {
    "LK01": 4,  # contradicting edge + chain gap + unranked + raw attr
    "SW01": 2,  # missing enumerator + silent default
    "CG01": 3,  # Tick -> Settle -> sleep_for, plus the bench seed
    "TR01": 1,  # HandlePing's early return
    "WA01": 2,  # HandleLoseAck (mode A) + HandleProbe (mode B)
    "GD01": 1,  # Tracker::count_ read outside mu_ in Peek
    "HP01": 2,  # make_unique in HandleHot + new in Grow
    "SM01": 4,  # kPing discard arm + kPaxosNudge unrouted + 2 missing
                # committed automaton specs (sm_txn/sm_paxos)
    "LV01": 3,  # HandleParkForever timerless wait + FailoverPoke's
                # missing decided_ consult AND missing re-arm
    "DC01": 1,  # HandleAsk replies twice on the known-outcome path
}

# Seeds that must NOT fire — each names a pattern the engine has to
# prove clean (path correlation, interprocedural records, ctor writes,
# locked-only fields, baselined allocations, loop-send sites, self-
# re-arming decided_-consulting ticks).
SELF_TEST_FP_GUARDS = ("ranked_", "HandleTell", "DecideLike", "pending_",
                       "container_growth", "FanOut", "SteadyTick",
                       "HandleFlow", "HandleKickoff")


def self_test():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        for relpath, content in SELF_TEST_FILES.items():
            path = os.path.join(tmp, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w") as f:
                f.write(content)
        compdb = [
            {"directory": tmp, "file": os.path.join(tmp, relpath),
             "command": f"c++ -c {os.path.join(tmp, relpath)}"}
            for relpath in SELF_TEST_FILES if relpath.endswith(".cc")
        ]
        compdb_path = os.path.join(tmp, "build", "compile_commands.json")
        os.makedirs(os.path.dirname(compdb_path))
        with open(compdb_path, "w") as f:
            json.dump(compdb, f)
        baseline_path = os.path.join(tmp, HP01_BASELINE)
        os.makedirs(os.path.dirname(baseline_path))
        with open(baseline_path, "w") as f:
            json.dump(SELF_TEST_HP01_BASELINE, f)

        violations, timings = run_rules(tmp, compdb_path,
                                        frontend="internal")
        fired = {}
        for v in violations:
            fired[v.rule] = fired.get(v.rule, 0) + 1
        for rule, expect in SELF_TEST_EXPECT.items():
            got = fired.get(rule, 0)
            if got < expect:
                failures.append(
                    f"{rule}: expected >= {expect} seeded violation(s), "
                    f"got {got}")
        # Clean seeds must NOT fire (false-positive guards).
        for v in violations:
            for guard in SELF_TEST_FP_GUARDS:
                if guard in v.message:
                    failures.append(
                        f"false positive on clean seed '{guard}': {v}")
        # Every rule must report a wall-clock timing (the --json /
        # budget-attribution contract).
        for rule in CHECKS:
            if rule not in timings:
                failures.append(f"{rule}: no wall-clock timing recorded")

    if failures:
        print("polyverify self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("polyverify self-test passed: all rules fire on seeded "
          "violations")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="polyverify", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: tools/..)")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json path (default: "
                             "build*/compile_commands.json under root)")
    parser.add_argument("--frontend", choices=("auto", "internal", "clang"),
                        default="auto",
                        help="C++ frontend (auto: libclang when the "
                             "clang.cindex bindings are importable)")
    parser.add_argument("--rule", action="append", dest="rules",
                        help="run only this rule (repeatable)")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--check-lockdep", metavar="DIR",
                        help="validate lockdep JSON dumps in DIR against "
                             "the declared rank order, then exit")
    parser.add_argument("--json", metavar="PATH", dest="json_out",
                        help="write a machine-readable report (rules run, "
                             "violations, frontend, wall-clock) to PATH")
    parser.add_argument("--budget-seconds", type=float, default=None,
                        help="fail (exit 3) if the scan wall-clock "
                             "exceeds this many seconds")
    parser.add_argument("--hp01-update", action="store_true",
                        help="regenerate tools/polyverify/"
                             "hp01_baseline.json from the current tree "
                             "and exit")
    parser.add_argument("--sm-update", action="store_true",
                        help="regenerate the committed protocol automaton "
                             "specs (tools/polyverify/sm_*.json + .dot) "
                             "from the current tree and exit")
    parser.add_argument("--sm-emit", metavar="DIR",
                        help="write freshly extracted automata (sm_*.json "
                             "+ .dot) into DIR and exit — CI diffs them "
                             "against the committed specs")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    # When launched from tools/polyverify/, __file__'s great-grandparent
    # overshoots; prefer the directory containing src/.
    probe = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if args.root is None and os.path.isdir(os.path.join(probe, "..",
                                                        "src")):
        root = os.path.abspath(os.path.join(probe, ".."))

    if args.self_test:
        return self_test()
    if args.check_lockdep:
        return check_lockdep_dumps(root, args.check_lockdep)

    clang_ok, clang_reason = clangfront.probe()
    frontend = args.frontend
    if frontend == "auto":
        if clang_ok:
            frontend = "clang"
        else:
            frontend = "internal"
            print(f"polyverify: {clang_reason}; falling back to the "
                  "internal cpplite frontend", file=sys.stderr)
    elif frontend == "clang" and not clang_ok:
        print(f"polyverify: --frontend=clang but {clang_reason}",
              file=sys.stderr)
        return 2

    compdb = find_compdb(root, args.compdb)
    if compdb is None and frontend == "clang":
        print("polyverify: no compile_commands.json found; configure with "
              "cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is ON)",
              file=sys.stderr)
        return 2

    if args.hp01_update:
        sources, _ = load_tree(root, compdb)
        census, _ = hp01_census(root, sources)
        path = hp01_write_baseline(root, census)
        print(f"polyverify: wrote {rel(root, path)} "
              f"({len(census)} hot-path allocation sites, "
              f"{sum(census.values())} allocations)")
        return 0

    if args.sm_update or args.sm_emit:
        sources, _ = load_tree(root, compdb)
        paths = statemachine.write_specs(root, sources,
                                         out_dir=args.sm_emit)
        for path in paths:
            print(f"polyverify: wrote {rel(root, path)}")
        if not paths:
            print("polyverify: no engine scopes found under "
                  f"{root}; nothing written", file=sys.stderr)
            return 2
        return 0

    started = time.monotonic()
    rules = set(args.rules) if args.rules else None
    violations, rule_seconds = run_rules(root, compdb, frontend, rules)
    elapsed = time.monotonic() - started
    for v in violations:
        print(v)

    if args.json_out:
        report = {
            "tool": "polyverify",
            "frontend": frontend,
            "frontend_note": clang_reason,
            "rules": sorted(rules) if rules else sorted(CHECKS),
            "wall_clock_seconds": round(elapsed, 3),
            "rule_seconds": {r: rule_seconds[r]
                             for r in sorted(rule_seconds)},
            "budget_seconds": args.budget_seconds,
            "violation_count": len(violations),
            "violations": [
                {"rule": v.rule, "file": rel(root, v.path),
                 "line": v.line, "message": v.message}
                for v in violations
            ],
        }
        os.makedirs(os.path.dirname(os.path.abspath(args.json_out)),
                    exist_ok=True)
        with open(args.json_out, "w") as f:
            json.dump(report, f, indent=1)
            f.write("\n")

    over_budget = (args.budget_seconds is not None and
                   elapsed > args.budget_seconds)
    if violations:
        print(f"polyverify: {len(violations)} violation(s) "
              f"[frontend={frontend}, {elapsed:.1f}s]", file=sys.stderr)
        return 1
    if over_budget:
        slowest = max(rule_seconds, key=rule_seconds.get, default=None)
        blame = (f"slowest rule: {slowest} at "
                 f"{rule_seconds[slowest]:.1f}s" if slowest
                 else "no per-rule timings")
        print(f"polyverify: scan took {elapsed:.1f}s, over the "
              f"{args.budget_seconds:.0f}s budget ({blame}) — the "
              "analyzer is too slow for the default CI gate; profile "
              "that pass", file=sys.stderr)
        return 3
    print(f"polyverify: clean [frontend={frontend}, "
          f"compdb={'yes' if compdb else 'no'}, {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
