#!/usr/bin/env python3
"""Unit tests for the protocol state-machine tier (ctest
`statemachine_test`).

Two layers: a synthetic micro-tree exercising extraction and each rule
(SM01/LV01/DC01) in isolation, and the real tree asserting the
committed sm_{txn,paxos}.json specs reproduce byte-identically — the
property the CI drift gate depends on.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpplite  # noqa: E402
import polyverify  # noqa: E402
import statemachine  # noqa: E402

REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))

FIXTURE = {
    "src/txn/messages.cc": """
Message MakePing(TxnId txn) {
  Message m;
  m.type = MsgType::kPing;
  return m;
}
Message MakeProbe(TxnId txn) {
  Message m;
  m.type = MsgType::kProbe;
  return m;
}
""",
    "src/txn/engine.cc": """
void TxnEngine::OnMessage(SiteId from, const Message& msg, Outbox* out) {
  switch (msg.type) {
    case MsgType::kPing:
      HandlePing(from, msg, out);
      break;
    case MsgType::kProbe:
      break;
  }
}
void TxnEngine::HandlePing(SiteId from, const Message& msg, Outbox* out) {
  participations_.emplace(msg.txn, Participation{});
  out->sends.emplace_back(from, MakeProbe(msg.txn));
  Trace(TraceEventType::kSubmit, msg.txn);
}
void TxnEngine::HandleDouble(SiteId from, const Message& msg, Outbox* out) {
  const bool known = decided_.count(msg.txn) > 0;
  if (known) {
    FinishParticipation(msg.txn);
  }
  FinishParticipation(msg.txn);
  Trace(TraceEventType::kSubmit, msg.txn);
}
void TxnEngine::HandleEither(SiteId from, const Message& msg, Outbox* out) {
  if (msg.flag) {
    FinishParticipation(msg.txn);
    return;
  }
  FinishParticipation(msg.txn);
  Trace(TraceEventType::kSubmit, msg.txn);
}
void TxnEngine::FinishParticipation(TxnId txn) {
  participations_.erase(txn);
}
""",
}


def write_fixture(tmp):
    for relpath, content in FIXTURE.items():
        path = os.path.join(tmp, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write(content)


def load_fixture(tmp):
    sources = []
    for relpath in sorted(FIXTURE):
        path = os.path.join(tmp, relpath)
        with open(path) as f:
            sources.append(cpplite.SourceFile(path=path, text=f.read()))
    return sources


class FixtureTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.tmpdir = tempfile.TemporaryDirectory()
        cls.tmp = cls.tmpdir.name
        write_fixture(cls.tmp)
        cls.sources = load_fixture(cls.tmp)
        cls.machines = statemachine.build_machines(cls.tmp, cls.sources)

    @classmethod
    def tearDownClass(cls):
        cls.tmpdir.cleanup()

    def machine(self):
        self.assertEqual(len(self.machines), 1)
        return self.machines[0]

    def test_make_map(self):
        m = self.machine()
        self.assertEqual(m.make_map["MakePing"], "kPing")
        self.assertEqual(m.make_map["MakeProbe"], "kProbe")

    def test_dispatch_arms(self):
        m = self.machine()
        self.assertEqual(m.dispatch["kPing"], "HandlePing")
        # `case kProbe: break;` is a discard arm, not a handler.
        self.assertIsNone(m.dispatch["kProbe"])

    def test_spec_edges(self):
        spec = statemachine.to_spec(self.machine())
        by_on = {e["on"]: e for e in spec["edges"]}
        self.assertIn("msg:kPing", by_on)
        self.assertEqual(by_on["msg:kPing"]["sends"], ["kProbe"])
        self.assertIn("participations_.emplace",
                      by_on["msg:kPing"]["writes"])
        self.assertEqual(spec["ignored_kinds"], ["kProbe"])

    def test_sm01_flags_unrouted_kind_and_missing_spec(self):
        findings = statemachine.check_sm01(self.tmp, self.sources)
        rules = [(f[0], f[3]) for f in findings]
        self.assertTrue(any("kProbe" in msg for _, msg in rules),
                        findings)
        self.assertTrue(any("no committed spec" in msg
                            for _, msg in rules), findings)

    def test_lv01_flags_timerless_wait(self):
        findings = statemachine.check_lv01(self.tmp, self.sources)
        self.assertTrue(any("HandlePing" in f[3] and
                            "waiting entry" in f[3]
                            for f in findings), findings)

    def test_dc01_flags_double_terminal_path(self):
        findings = statemachine.check_dc01(self.tmp, self.sources)
        self.assertTrue(any("HandleDouble" in f[3] for f in findings),
                        findings)
        # Return-separated branches are distinct paths: clean.
        self.assertFalse(any("HandleEither" in f[3] for f in findings),
                         findings)


class RealTreeTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.sources, _ = polyverify.load_tree(REPO, None)
        cls.machines = statemachine.build_machines(REPO, cls.sources)

    def by_tag(self, tag):
        for m in self.machines:
            if m.conf["tag"] == tag:
                return m
        self.fail(f"no {tag} machine extracted")

    def test_both_engines_extracted(self):
        self.assertEqual(
            sorted(m.conf["tag"] for m in self.machines),
            ["paxos", "txn"])

    def test_txn_dispatch_covers_2pc_kinds(self):
        m = self.by_tag("txn")
        for kind in ("kPrepare", "kPrepareReply", "kReady", "kComplete",
                     "kAbort", "kOutcomeRequest", "kOutcomeReply",
                     "kOutcomeNotify", "kWriteReq"):
            self.assertIn(kind, m.dispatch)
            self.assertIsNotNone(m.dispatch[kind], kind)

    def test_paxos_failover_tick_is_a_live_timer_edge(self):
        m = self.by_tag("paxos")
        self.assertIn("FailoverTick", m.timer_callbacks())
        # The PR-7 fix shape: FailoverTick consults decided_ and
        # re-arms — LV01 must see both.
        sends, _, _, _, _ = m.closure_effects("FailoverTick")
        self.assertIn("kPaxosNudge", sends)
        self.assertTrue(m.closure_has_token(
            "FailoverTick", statemachine._SCHED_RE))

    def test_committed_specs_reproduce_byte_identically(self):
        for machine in self.machines:
            tag = machine.conf["tag"]
            path = statemachine.spec_path(REPO, tag)
            self.assertTrue(os.path.isfile(path),
                            f"missing committed spec {path}; run "
                            "polyverify.py --sm-update")
            with open(path, "rb") as f:
                committed = f.read()
            generated = statemachine.spec_bytes(
                statemachine.to_spec(machine))
            self.assertEqual(
                committed, generated,
                f"sm_{tag}.json drifted from the sources; run "
                "polyverify.py --sm-update and review the diff")

    def test_emit_is_deterministic_across_runs(self):
        with tempfile.TemporaryDirectory() as a, \
                tempfile.TemporaryDirectory() as b:
            pa = statemachine.write_specs(REPO, self.sources, out_dir=a)
            pb = statemachine.write_specs(REPO, self.sources, out_dir=b)
            self.assertEqual([os.path.basename(p) for p in pa],
                             [os.path.basename(p) for p in pb])
            for x, y in zip(pa, pb):
                with open(x, "rb") as f:
                    bx = f.read()
                with open(y, "rb") as f:
                    by = f.read()
                self.assertEqual(bx, by, os.path.basename(x))

    def test_full_tree_rules_clean(self):
        for check in (statemachine.check_sm01, statemachine.check_lv01,
                      statemachine.check_dc01):
            findings = check(REPO, self.sources)
            self.assertEqual(findings, [], check.__name__)


if __name__ == "__main__":
    unittest.main(verbosity=2)
