#!/usr/bin/env python3
"""Protocol state-machine extraction for polyverify (tier 5).

Builds, per commit-protocol engine (ENGINE_MACHINES), an explicit
automaton from the parsed sources:

  nodes  the durable txn/acceptor states the engine writes
         (PartState/CoordPhase/LeaderPhase constants plus the durable
         tables prepared_/decided_/acceptor_)
  edges  one per stimulus — a received MsgType (the OnMessage dispatch
         arm), an armed timer callback (every ScheduleGuarded lambda),
         or a client entry point — annotated with the transitive
         effects of the handling method: state writes, sent MsgTypes,
         trace events, and the timers it arms.

Effect closures follow unqualified same-class calls over
lambda-blanked bodies, so deferred work (outbox thunks, timer
callbacks) never leaks into the direct effects of the arming edge;
timer callbacks get their own `timer:` edges instead and thunk-called
methods are listed under `deferred`.

The extracted automata serialize deterministically (sorted keys, no
file/line churn) into tools/polyverify/sm_{txn,paxos}.json plus a
Graphviz DOT rendering, checked in as the reviewed protocol spec.

Three rules consume the automaton:

  SM01  message-flow completeness: every MsgType constructed anywhere
        in src/ must have (a) a dispatching handler arm in some
        engine's OnMessage (not a discard arm), (b) an Encode AND a
        Decode case arm in the Message codec, and (c) at least one
        trace event in the receiving handler's closure. Cross-TU —
        this closes the per-file gap of polylint MSG01. SM01 also
        gates that the extraction matches the committed sm_*.json
        spec (regenerate with --sm-update).

  LV01  static liveness: (a) every method that creates a waiting
        entry (an emplace into participations_/coordinations_/
        leaderships_) must reach a ScheduleGuarded escape timer in
        its closure; (b) every timer callback whose closure seeks an
        outcome remotely (kOutcomeRequest / kPaxosNudge /
        kPaxosPhase1a) must consult the local durable decision table
        AND re-arm an escape timer — the exact shape of the PR-7
        FailoverTick bug, where a dropped self-addressed decision
        left the tick nudging forever without checking decided_.

  DC01  decision consistency: on every feasible CFG path through an
        engine method, each terminal action family (Decide,
        FinishParticipation, ApplyOutcome, DeliverClientResult,
        MakeOutcomeReply, ...) executes at most once — counted as
        distinct call sites so loops (fan-out sends) stay clean, with
        branch-correlation pruning from the dataflow walk.

Findings are returned as (rule, path, line, message) tuples; the
polyverify driver wraps them into Violations and applies the
`// polyverify: allow(RULE)` suppression policy.
"""

from __future__ import annotations

import json
import os
import re

import cpplite
import dataflow

# Outcome-seeking message kinds: sent to LEARN a decision made (or to
# be made) elsewhere. A timer that asks must also check its own
# durable table — the answer may already be local (PR-7 bug shape).
OUTCOME_SEEKING = ("kOutcomeRequest", "kPaxosNudge", "kPaxosPhase1a")

# Per-engine protocol description. New commit-protocol legs register
# here (mirrors polyverify.ENGINE_SCOPES).
ENGINE_MACHINES = (
    {
        "engine": "TxnEngine",
        "scope": "src/txn",
        "tag": "txn",
        "entry_points": ("Submit", "Recover"),
        "wait_maps": ("participations_", "coordinations_"),
        "durable_tokens": ("prepared_", "decided_"),
        "state_enums": ("PartState", "CoordPhase"),
        "decision_token": "decided_",
        "terminal_families": ("Decide", "FinishParticipation",
                              "ApplyInDoubtPolicy", "HandleLearnedOutcome",
                              "MakeOutcomeReply"),
    },
    {
        "engine": "PaxosEngine",
        "scope": "src/paxos",
        "tag": "paxos",
        "entry_points": ("Submit", "Recover"),
        "wait_maps": ("participations_", "leaderships_"),
        "durable_tokens": ("prepared_", "decided_", "acceptor_"),
        "state_enums": ("PartState", "LeaderPhase"),
        "decision_token": "decided_",
        "terminal_families": ("ApplyOutcome", "DeliverClientResult",
                              "StartRecovery", "FinishTally",
                              "BroadcastDecision", "AbortBeforeVotes",
                              "MakePaxosDecision"),
    },
)

SPEC_DIR = os.path.join("tools", "polyverify")

_CASE_RE = re.compile(r"case\s+MsgType::(k\w+)\s*:")
_SCHED_RE = re.compile(r"\bScheduleGuarded\s*\(")
_TRACE_CALL_RE = re.compile(r"\bTrace(?:Key)?\s*\(")
_TRACE_KIND_RE = re.compile(r"TraceEventType::(k\w+)")
_MAKE_TYPE_RE = re.compile(r"\.\s*type\s*=\s*MsgType::(k\w+)")
_MAKE_CALL_RE = re.compile(r"\b(Make[A-Z]\w*)\s*\(")


def _rel(root, path):
    return os.path.relpath(path, root).replace(os.sep, "/")


def _trace_kinds(text):
    """TraceEventType kinds emitted by Trace/TraceKey calls in `text`.
    The kind argument may sit behind a ternary (`Trace(ok ? kA : kB`),
    so scan the whole statement rather than just the first token."""
    kinds = set()
    for m in _TRACE_CALL_RE.finditer(text):
        end = text.find(";", m.end())
        seg = text[m.end():end] if end != -1 else text[m.end():m.end() + 200]
        kinds.update(_TRACE_KIND_RE.findall(seg))
    return kinds


class _Method:
    """One engine method (overloads merged by name)."""

    def __init__(self, name):
        self.name = name
        self.file = None
        self.line = 0
        self.fns = []          # cpplite Function records
        self.raws = []         # raw bodies
        self.blanks = []       # lambda-blanked bodies
        self.calls = set()     # unqualified same-class callees
        self.sends = set()     # MsgType kinds via Make* in blanked body
        self.writes = set()    # "prepared_.erase"-style mutation tokens
        self.states = set()    # "PartState::kWait"-style enum writes
        self.traces = set()    # TraceEventType kinds in blanked body
        self.arms = []         # [{delay, invokes, traces}] timer lambdas
        self.deferred = set()  # methods called only from thunk lambdas


def _timer_arms(raw, method_names):
    """Extracts every ScheduleGuarded(delay, [..]{..}) arming site."""
    arms = []
    i = 0
    while True:
        m = _SCHED_RE.search(raw, i)
        if m is None:
            break
        lb = raw.find("{", m.end())
        if lb == -1:
            break
        rb = cpplite.match_brace(raw, lb)
        lam = raw[lb + 1:rb]
        delay = raw[m.end():lb].split(",")[0].strip()
        invokes = sorted({
            name for recv, _, name in cpplite.parse_calls(lam)
            if not recv and name in method_names})
        arms.append({
            "delay": delay,
            "invokes": invokes,
            "traces": sorted(_trace_kinds(lam)),
        })
        i = rb
    return arms


def _build_methods(scoped_sources, conf):
    """Parses the engine class into a name -> _Method dict."""
    fns = []
    for src in scoped_sources:
        for fn in cpplite.parse_functions(src):
            if fn.cls == conf["engine"]:
                fns.append(fn)
    names = {fn.name for fn in fns}
    write_re = re.compile(
        r"\b(%s)\s*(?:\.\s*(emplace|insert_or_assign|insert|erase|clear)"
        r"\b|(\[))" % "|".join(conf["wait_maps"] + conf["durable_tokens"]))
    state_re = re.compile(
        r"=\s*(%s)::(k\w+)" % "|".join(conf["state_enums"]))

    methods = {}
    for fn in sorted(fns, key=lambda f: (f.file, f.line)):
        rec = methods.setdefault(fn.name, _Method(fn.name))
        if rec.file is None:
            rec.file, rec.line = fn.file, fn.line
        raw = fn.body
        blank = dataflow.blank_lambdas(raw)
        rec.fns.append(fn)
        rec.raws.append(raw)
        rec.blanks.append(blank)
        rec.calls.update(
            name for recv, _, name in cpplite.parse_calls(blank)
            if not recv and name in names and name != fn.name)
        for wm in write_re.finditer(blank):
            op = wm.group(2) or "[]"
            rec.writes.add(f"{wm.group(1)}.{op}")
        for sm in state_re.finditer(blank):
            rec.states.add(f"{sm.group(1)}::{sm.group(2)}")
        rec.traces.update(_trace_kinds(blank))
        rec.arms.extend(_timer_arms(raw, names))
        in_lambda = {
            name for recv, _, name in cpplite.parse_calls(raw)
            if not recv and name in names} - {
            name for recv, _, name in cpplite.parse_calls(blank)
            if not recv and name in names}
        rec.deferred.update(in_lambda)
    # Timer targets are modeled as timer edges, not deferred calls.
    for rec in methods.values():
        timer_targets = {t for arm in rec.arms for t in arm["invokes"]}
        rec.deferred -= timer_targets
    return methods


def _make_map(sources):
    """Make* constructor name -> MsgType kind, across the whole tree.

    Constructors that delegate (e.g. MakePrepareRefusal building on
    MakePrepareReply) inherit the delegate's kind."""
    direct = {}
    delegates = {}
    for src in sources:
        for fn in cpplite.parse_functions(src):
            if not fn.name.startswith("Make"):
                continue
            tm = _MAKE_TYPE_RE.search(fn.body)
            if tm:
                direct[fn.name] = tm.group(1)
                continue
            for cm in _MAKE_CALL_RE.finditer(fn.body):
                if cm.group(1) != fn.name:
                    delegates[fn.name] = cm.group(1)
                    break
    for name, target in delegates.items():
        if name not in direct and target in direct:
            direct[name] = direct[target]
    return direct


def _dispatch(methods):
    """MsgType kind -> handler name (None = loud-discard arm)."""
    om = methods.get("OnMessage")
    if om is None:
        return {}
    arms = {}
    order = []
    for blank in om.blanks:
        labels = list(_CASE_RE.finditer(blank))
        for i, m in enumerate(labels):
            seg_end = labels[i + 1].start() if i + 1 < len(labels) \
                else len(blank)
            seg = blank[m.end():seg_end]
            d = re.search(r"\bdefault\s*:", seg)
            if d:
                seg = seg[:d.start()]
            hm = re.search(r"\b(Handle\w+)\s*\(", seg)
            kind = m.group(1)
            order.append(kind)
            if hm:
                arms[kind] = hm.group(1)
            elif seg.strip() == "":
                arms[kind] = "__fallthrough__"
            else:
                arms[kind] = None
    for i in range(len(order) - 2, -1, -1):
        if arms[order[i]] == "__fallthrough__":
            arms[order[i]] = arms[order[i + 1]]
    # A trailing fallthrough label (malformed switch) discards.
    return {k: (None if v == "__fallthrough__" else v)
            for k, v in arms.items()}


def _closure(methods, name):
    """Same-class transitive callee set including `name` itself."""
    seen = set()
    stack = [name]
    while stack:
        n = stack.pop()
        if n in seen or n not in methods:
            continue
        seen.add(n)
        stack.extend(methods[n].calls)
    return seen


class Machine:
    def __init__(self, conf, methods, make_map, dispatch):
        self.conf = conf
        self.methods = methods
        self.make_map = make_map
        self.dispatch = dispatch
        self._closures = {}

    def closure(self, name):
        if name not in self._closures:
            self._closures[name] = _closure(self.methods, name)
        return self._closures[name]

    def closure_effects(self, name):
        """Union of direct effects over the call closure of `name`."""
        sends, writes, states, traces, arms = (
            set(), set(), set(), set(), set())
        for n in self.closure(name):
            rec = self.methods[n]
            for blank in rec.blanks:
                for cm in _MAKE_CALL_RE.finditer(blank):
                    kind = self.make_map.get(cm.group(1))
                    if kind:
                        sends.add(kind)
            writes |= rec.writes
            states |= rec.states
            traces |= rec.traces
            arms |= {t for arm in rec.arms for t in arm["invokes"]}
        return sends, writes, states, traces, arms

    def timer_callbacks(self):
        return sorted({
            t for rec in self.methods.values()
            for arm in rec.arms for t in arm["invokes"]})

    def closure_has_token(self, name, token_re):
        return any(token_re.search(blank)
                   for n in self.closure(name)
                   for blank in self.methods[n].blanks)


_CACHE = None  # (sources identity, root) -> machines, for one scan


def build_machines(root, sources):
    """Returns [Machine] for every ENGINE_MACHINES scope with sources.

    The three rules (and the spec emitters) share one extraction per
    loaded tree: cached while the same `sources` list object is in
    play."""
    global _CACHE
    if _CACHE is not None and _CACHE[0] is sources and _CACHE[1] == root:
        return _CACHE[2]
    machines = _build_machines_uncached(root, sources)
    _CACHE = (sources, root, machines)
    return machines


def _build_machines_uncached(root, sources):
    make_map = _make_map(sources)
    machines = []
    for conf in ENGINE_MACHINES:
        scoped = [
            s for s in sources
            if ("/" + conf["scope"] + "/") in s.path.replace(os.sep, "/")]
        if not scoped:
            continue
        methods = _build_methods(scoped, conf)
        if not methods:
            continue
        machines.append(
            Machine(conf, methods, make_map, _dispatch(methods)))
    return machines


# --------------------------------------------------------------------
# Serialization: deterministic JSON spec + Graphviz DOT
# --------------------------------------------------------------------


def _edge(machine, on, handler):
    sends, writes, states, traces, arms = machine.closure_effects(handler)
    rec = machine.methods[handler]
    return {
        "on": on,
        "handler": handler,
        "sends": sorted(sends),
        "writes": sorted(writes),
        "states": sorted(states),
        "traces": sorted(traces),
        "arms": sorted(arms),
        "deferred": sorted(rec.deferred),
    }


def to_spec(machine):
    conf = machine.conf
    edges = []
    ignored = []
    for kind in sorted(machine.dispatch):
        handler = machine.dispatch[kind]
        if handler is None or handler not in machine.methods:
            ignored.append(kind)
            continue
        edges.append(_edge(machine, f"msg:{kind}", handler))
    for cb in machine.timer_callbacks():
        if cb in machine.methods:
            edges.append(_edge(machine, f"timer:{cb}", cb))
    for ep in conf["entry_points"]:
        if ep in machine.methods:
            edges.append(_edge(machine, f"call:{ep}", ep))
    edges.sort(key=lambda e: e["on"])
    states = sorted({s for e in edges for s in e["states"]})
    return {
        "comment": "Extracted protocol automaton — the reviewed spec "
                   "for this engine. SM01 gates that extraction from "
                   "the current sources matches this file byte-for-"
                   "byte; regenerate with `polyverify.py --sm-update` "
                   "and review the diff as a protocol change "
                   "(docs/STATIC_ANALYSIS.md).",
        "engine": conf["engine"],
        "scope": conf["scope"],
        "states": states,
        "ignored_kinds": sorted(ignored),
        "edges": edges,
    }


def spec_bytes(spec):
    return (json.dumps(spec, indent=1, sort_keys=True) + "\n").encode()


def to_dot(spec):
    """Graphviz rendering: stimuli (ellipses) -> handlers (boxes) ->
    sent kinds (ellipses); timer arms dashed."""
    lines = [
        f'digraph sm_{spec["engine"]} {{',
        "  rankdir=LR;",
        '  node [fontsize=10, fontname="Helvetica"];',
        f'  label="{spec["engine"]} protocol automaton '
        f'({spec["scope"]})";',
    ]
    nodes = set()

    def node(name, shape):
        if name not in nodes:
            nodes.add(name)
            lines.append(f'  "{name}" [shape={shape}];')

    for edge in spec["edges"]:
        handler = edge["handler"]
        node(handler, "box")
        node(edge["on"], "ellipse" if edge["on"].startswith("msg:")
             else "diamond")
        lines.append(f'  "{edge["on"]}" -> "{handler}";')
        for kind in edge["sends"]:
            node(f"msg:{kind}", "ellipse")
            lines.append(
                f'  "{handler}" -> "msg:{kind}" [color=blue];')
        for timer in edge["arms"]:
            node(f"timer:{timer}", "diamond")
            lines.append(
                f'  "{handler}" -> "timer:{timer}" [style=dashed];')
    for kind in spec["ignored_kinds"]:
        node(f"msg:{kind}", "ellipse")
        lines.append(
            f'  "msg:{kind}" -> "discard" [style=dotted];')
        nodes.add("discard")
    if "discard" in nodes:
        lines.append('  "discard" [shape=plaintext];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def spec_path(root, tag):
    return os.path.join(root, SPEC_DIR, f"sm_{tag}.json")


def write_specs(root, sources, out_dir=None):
    """Writes sm_<tag>.json + .dot for every engine; returns paths."""
    out_dir = out_dir or os.path.join(root, SPEC_DIR)
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for machine in build_machines(root, sources):
        spec = to_spec(machine)
        tag = machine.conf["tag"]
        jpath = os.path.join(out_dir, f"sm_{tag}.json")
        with open(jpath, "wb") as f:
            f.write(spec_bytes(spec))
        dpath = os.path.join(out_dir, f"sm_{tag}.dot")
        with open(dpath, "w") as f:
            f.write(to_dot(spec))
        paths.extend([jpath, dpath])
    return paths


# --------------------------------------------------------------------
# SM01 — message-flow completeness + spec drift
# --------------------------------------------------------------------


def _send_sites(root, sources, make_map):
    """kind -> (path, line) of its first construction site in src/."""
    sites = {}
    for src in sorted(sources, key=lambda s: s.path):
        r = _rel(root, src.path)
        if not r.startswith("src/") or \
                os.path.basename(r).startswith("messages."):
            continue
        for m in _MAKE_CALL_RE.finditer(src.clean):
            kind = make_map.get(m.group(1))
            if kind and kind not in sites:
                sites[kind] = (src.path, src.line_of(m.start()))
    return sites


def _codec_arms(sources):
    """(encode_kinds, decode_kinds, found) from Message::Encode/Decode."""
    encode, decode = set(), set()
    found = False
    for src in sources:
        for fn in cpplite.parse_functions(src):
            if fn.cls != "Message" or fn.name not in ("Encode", "Decode"):
                continue
            found = True
            kinds = set(_CASE_RE.findall(fn.body))
            if fn.name == "Encode":
                encode |= kinds
            else:
                decode |= kinds
    return encode, decode, found


def check_sm01(root, sources):
    findings = []
    machines = build_machines(root, sources)
    if not machines:
        return findings
    make_map = machines[0].make_map
    sites = _send_sites(root, sources, make_map)
    encode, decode, codec_found = _codec_arms(sources)

    handled = {}  # kind -> (machine, handler)
    for machine in machines:
        for kind, handler in machine.dispatch.items():
            if handler is not None and handler in machine.methods:
                handled.setdefault(kind, (machine, handler))

    for kind in sorted(sites):
        path, line = sites[kind]
        gaps = []
        if kind not in handled:
            gaps.append("no receiving handler arm in any engine's "
                        "OnMessage dispatch")
        else:
            machine, handler = handled[kind]
            _, _, _, traces, _ = machine.closure_effects(handler)
            if not traces:
                gaps.append(
                    f"receiving handler {machine.conf['engine']}::"
                    f"{handler} emits no trace event")
        if codec_found:
            if kind not in encode:
                gaps.append("no Message::Encode case arm")
            if kind not in decode:
                gaps.append("no Message::Decode case arm")
        if gaps:
            findings.append((
                "SM01", path, line,
                f"message kind {kind} is constructed here but has " +
                "; ".join(gaps) +
                " — every sent kind needs a cross-TU receive path, "
                "codec arms, and a trace event"))

    # Spec drift: extraction must match the committed automaton.
    for machine in machines:
        tag = machine.conf["tag"]
        path = spec_path(root, tag)
        generated = spec_bytes(to_spec(machine))
        if not os.path.isfile(path):
            findings.append((
                "SM01", path, 1,
                f"{machine.conf['engine']} automaton has no committed "
                f"spec (tools/polyverify/sm_{tag}.json); generate and "
                "review it with `polyverify.py --sm-update`"))
            continue
        with open(path, "rb") as f:
            committed = f.read()
        if committed != generated:
            findings.append((
                "SM01", path, 1,
                f"{machine.conf['engine']} automaton drifted from the "
                f"committed spec sm_{tag}.json — the protocol state "
                "machine changed; regenerate with `polyverify.py "
                "--sm-update` and review the diff as a protocol "
                "change"))
    return findings


# --------------------------------------------------------------------
# LV01 — static liveness: every waiting state has an escape edge
# --------------------------------------------------------------------


def check_lv01(root, sources):
    findings = []
    for machine in build_machines(root, sources):
        conf = machine.conf
        engine = conf["engine"]
        emplace_re = re.compile(
            r"\b(%s)\s*(?:\.\s*emplace\b|\[)" % "|".join(conf["wait_maps"]))
        decision_re = re.compile(r"\b%s\b" % conf["decision_token"])

        # (a) creating a waiting entry requires a reachable escape
        # timer: the entry's only exits are messages that may never
        # arrive, so SOME timer must be armed by the creating path.
        for name in sorted(machine.methods):
            rec = machine.methods[name]
            hits = [emplace_re.search(b) for b in rec.blanks]
            if not any(hits):
                continue
            if not machine.closure_has_token(name, _SCHED_RE):
                findings.append((
                    "LV01", rec.file, rec.line,
                    f"{engine}::{name} creates a waiting entry "
                    f"({next(h for h in hits if h).group(1)}) but no "
                    "ScheduleGuarded escape timer is reachable from it "
                    "— a lost message leaves the transaction waiting "
                    "forever"))

        # (b) a timer that asks the world for an outcome must also
        # consult the local durable decision table and re-arm: the
        # PR-7 FailoverTick bug (a dropped self-addressed decision
        # broadcast) stalls exactly the callbacks that do neither.
        for cb in machine.timer_callbacks():
            if cb not in machine.methods:
                continue
            sends, _, _, _, _ = machine.closure_effects(cb)
            if not sends.intersection(OUTCOME_SEEKING):
                continue
            rec = machine.methods[cb]
            seeking = ", ".join(sorted(sends.intersection(OUTCOME_SEEKING)))
            if not machine.closure_has_token(cb, decision_re):
                findings.append((
                    "LV01", rec.file, rec.line,
                    f"timer callback {engine}::{cb} seeks an outcome "
                    f"remotely ({seeking}) without consulting the local "
                    f"{conf['decision_token']} table — a dropped "
                    "self-addressed decision leaves it asking forever "
                    "(the PR-7 FailoverTick bug shape)"))
            if not machine.closure_has_token(cb, _SCHED_RE):
                findings.append((
                    "LV01", rec.file, rec.line,
                    f"timer callback {engine}::{cb} seeks an outcome "
                    f"remotely ({seeking}) but never re-arms a timer — "
                    "one lost reply ends the escape protocol"))
    return findings


# --------------------------------------------------------------------
# DC01 — terminal decisions happen exactly once per path
# --------------------------------------------------------------------


def check_dc01(root, sources):
    findings = []
    srcs = {s.path: s for s in sources}
    for machine in build_machines(root, sources):
        conf = machine.conf
        fam_res = [
            (fam, re.compile(r"\b%s\s*\(" % fam))
            for fam in conf["terminal_families"]]
        for name in sorted(machine.methods):
            rec = machine.methods[name]
            for fn, blank in zip(rec.fns, rec.blanks):
                if not any(rx.search(blank) for _, rx in fam_res):
                    continue
                cfg = dataflow.build_cfg(blank)

                def transfer(off, text, payload, facts):
                    out = payload
                    for fam, rx in fam_res:
                        if fam == name:
                            continue  # recursion isn't a second site
                        for m in dataflow.guarded_tokens(rx, text, facts):
                            out = out | frozenset(
                                [(fam, off + m.start())])
                    return out

                exits = dataflow.walk(cfg, frozenset(), transfer)
                worst = {}  # fam -> sorted offsets of the worst path
                for payload in exits:
                    per_fam = {}
                    for fam, off in payload:
                        per_fam.setdefault(fam, []).append(off)
                    for fam, offs in per_fam.items():
                        if len(offs) > len(worst.get(fam, ())):
                            worst[fam] = sorted(offs)
                src = srcs[fn.file]
                for fam in sorted(worst):
                    offs = worst[fam]
                    if len(offs) < 2:
                        continue
                    lns = [src.line_of(fn.body_offset +
                                       min(o, len(fn.body) - 1))
                           for o in offs]
                    findings.append((
                        "DC01", fn.file, lns[-1],
                        f"{conf['engine']}::{name} executes terminal "
                        f"action {fam}(...) {len(offs)}x on one path "
                        f"(lines {', '.join(map(str, lns))}) — a "
                        "terminal outcome must be sent or recorded "
                        "exactly once; separate the paths with an "
                        "early return"))
    return findings
