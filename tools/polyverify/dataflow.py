"""Intraprocedural CFG + path-sensitive dataflow for polyverify.

Lowers a cleaned C++ function body (cpplite hands us comment/string
stripped text with byte offsets preserved) onto a statement-level
control-flow graph: branches, early returns, switches with
fallthrough, break/continue, and loops as back-edges. On top of the
CFG sit two small path-sensitive walks used by the WA01
write-ahead-ordering rule:

  * may-walk  — "a durable mutation may still be un-logged when this
    send executes" (pending-set forward propagation, union over paths)
  * must-walk — "some path from function entry reaches this send
    without passing a required record/append first" (obligation walk)

Both walks carry a tiny boolean-fact environment so that correlated
branches do not produce false positives: branch edges assert facts
about plain bool locals (`if (commit || made_writes)`'s else-edge
knows both are false), infeasible edges are pruned, and
ternary-guarded tokens (`commit ? MakeComplete(..) : MakeAbort(..)`)
are skipped when the facts contradict their guard. Lambda bodies are
opaque: deferred thunks run after the barrier point, not at the
enqueue site, so their contents never count as sends or barriers.

This is NOT a general C++ CFG builder. It relies on the tree's
enforced formatting (clang-format, Google style) and fails safe: any
shape it cannot lower becomes a straight-line statement, which keeps
every token visible to the walks in source order.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

# ---------------------------------------------------------------------
# Statement parsing
# ---------------------------------------------------------------------

_KW_RE = re.compile(
    r"\b(if|else|while|do|for|switch|return|break|continue|try|catch)\b")
_LAMBDA_INTRO = re.compile(
    r"\[[^\[\]]*\]\s*(?:\([^()]*\)\s*)?(?:mutable\s*)?"
    r"(?:noexcept\s*)?(?:->\s*[\w:<>&*\s]+?\s*)?\{")


def _match(text, open_idx, open_ch="{", close_ch="}"):
    depth = 0
    for i in range(open_idx, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def blank_lambdas(body):
    """Replaces every lambda body (braces included) with spaces.

    Keeps offsets stable; repeated until no lambda intro remains so
    nested lambdas vanish inside-out.
    """
    out = list(body)
    while True:
        m = _LAMBDA_INTRO.search("".join(out))
        if m is None:
            break
        text = "".join(out)
        open_idx = m.end() - 1
        close_idx = _match(text, open_idx)
        for k in range(open_idx, close_idx + 1):
            if out[k] != "\n":
                out[k] = " "
        # Also blank the intro (capture list / params) so `[this]`
        # captures and lambda parameters never look like accesses.
        for k in range(m.start(), open_idx):
            if out[k] != "\n":
                out[k] = " "
    return "".join(out)


@dataclass
class Stmt:
    kind: str            # simple if while do for switch return break
    #                      continue block
    offset: int
    text: str = ""       # simple/return: statement; others: condition
    body: list = field(default_factory=list)
    orelse: list = field(default_factory=list)
    cases: list = field(default_factory=list)  # switch: [(is_default,
    #                                              [stmts])]


def _skip_ws(text, i, end):
    while i < end and (text[i].isspace() or text[i] == ";"):
        i += 1
    return i


def _paren_span(text, i, end):
    """Given i at or before '(', returns (inner_text, open, after)."""
    p = text.find("(", i, end)
    if p == -1:
        return "", i, i
    close = _match(text, p, "(", ")")
    return text[p + 1:close], p, close + 1


def _simple_span(text, i, end):
    """Scans one plain statement: to the ';' at depth 0, skipping
    paren groups and brace groups (braced initialisers)."""
    j = i
    while j < end:
        c = text[j]
        if c == "(":
            j = _match(text, j, "(", ")") + 1
        elif c == "{":
            j = _match(text, j) + 1
        elif c == ";":
            return j + 1
        else:
            j += 1
    return end


def parse_stmts(text, i=0, end=None):
    """Parses text[i:end] into a list of Stmt."""
    if end is None:
        end = len(text)
    stmts = []
    while True:
        i = _skip_ws(text, i, end)
        if i >= end:
            break
        st, i = _parse_one(text, i, end)
        if st is not None:
            stmts.append(st)
    return stmts


def _parse_one(text, i, end):
    c = text[i]
    if c == "{":
        close = _match(text, i)
        return Stmt("block", i, body=parse_stmts(text, i + 1, close)), \
            close + 1
    m = _KW_RE.match(text, i)
    if m is None:
        nxt = _simple_span(text, i, end)
        return Stmt("simple", i, text=text[i:nxt]), nxt
    kw = m.group(1)
    if kw in ("return",):
        nxt = _simple_span(text, i, end)
        return Stmt("return", i, text=text[i:nxt]), nxt
    if kw in ("break", "continue"):
        nxt = _simple_span(text, i, end)
        return Stmt(kw, i), nxt
    if kw == "if":
        j = m.end()
        # skip `constexpr`
        j2 = _skip_ws(text, j, end)
        if text.startswith("constexpr", j2):
            j = j2 + len("constexpr")
        cond, _, after = _paren_span(text, j, end)
        then_stmt, nxt = _parse_one(text, _skip_ws(text, after, end), end)
        body = then_stmt.body if then_stmt.kind == "block" else [then_stmt]
        orelse = []
        k = _skip_ws(text, nxt, end)
        if text.startswith("else", k) and \
                not (k + 4 < end and (text[k + 4].isalnum() or
                                      text[k + 4] == "_")):
            else_stmt, nxt = _parse_one(
                text, _skip_ws(text, k + 4, end), end)
            orelse = else_stmt.body if else_stmt.kind == "block" \
                else [else_stmt]
        return Stmt("if", i, text=cond, body=body, orelse=orelse), nxt
    if kw == "while":
        cond, _, after = _paren_span(text, m.end(), end)
        body_stmt, nxt = _parse_one(text, _skip_ws(text, after, end), end)
        body = body_stmt.body if body_stmt.kind == "block" else [body_stmt]
        return Stmt("while", i, text=cond, body=body), nxt
    if kw == "do":
        body_stmt, nxt = _parse_one(text, _skip_ws(text, m.end(), end), end)
        body = body_stmt.body if body_stmt.kind == "block" else [body_stmt]
        k = _skip_ws(text, nxt, end)
        cond = ""
        if text.startswith("while", k):
            cond, _, nxt = _paren_span(text, k + 5, end)
            nxt = _skip_ws(text, nxt, end)
        return Stmt("do", i, text=cond, body=body), nxt
    if kw == "for":
        header, _, after = _paren_span(text, m.end(), end)
        body_stmt, nxt = _parse_one(text, _skip_ws(text, after, end), end)
        body = body_stmt.body if body_stmt.kind == "block" else [body_stmt]
        return Stmt("for", i, text=header, body=body), nxt
    if kw == "switch":
        cond, _, after = _paren_span(text, m.end(), end)
        bo = text.find("{", after, end)
        if bo == -1:
            nxt = _simple_span(text, i, end)
            return Stmt("simple", i, text=text[i:nxt]), nxt
        bc = _match(text, bo)
        cases = _parse_cases(text, bo + 1, bc)
        return Stmt("switch", i, text=cond, cases=cases), bc + 1
    if kw in ("try", "catch"):
        # `try { A } catch (...) { B }`: both blocks are possible
        # continuations; model as sequential blocks (conservative).
        j = _skip_ws(text, m.end(), end)
        if kw == "catch":
            _, _, j = _paren_span(text, j, end)
            j = _skip_ws(text, j, end)
        body_stmt, nxt = _parse_one(text, j, end)
        body = body_stmt.body if body_stmt.kind == "block" else [body_stmt]
        return Stmt("block", i, body=body), nxt
    nxt = _simple_span(text, i, end)
    return Stmt("simple", i, text=text[i:nxt]), nxt


_CASE_LABEL_RE = re.compile(r"\b(case\b[^:]*|default\s*)(:)(?!:)")


def _parse_cases(text, i, end):
    """Splits a switch body into [(is_default, [stmts])] groups.
    Consecutive labels fall into one group."""
    labels = []
    j = i
    while j < end:
        c = text[j]
        if c == "{":
            j = _match(text, j) + 1
            continue
        if c == "(":
            j = _match(text, j, "(", ")") + 1
            continue
        m = _CASE_LABEL_RE.match(text, j)
        if m:
            labels.append((m.start(), m.end(), m.group(1).startswith(
                "default")))
            j = m.end()
            continue
        j += 1
    groups = []
    for idx, (s, lend, is_default) in enumerate(labels):
        nxt = labels[idx + 1][0] if idx + 1 < len(labels) else end
        if nxt <= lend:
            continue
        stmts = parse_stmts(text, lend, nxt)
        if idx + 1 < len(labels) and not stmts:
            # consecutive labels: merge by letting the previous group
            # fall through (handled in CFG lowering); keep the empty
            # group so the default flag is not lost
            groups.append((is_default, []))
        else:
            groups.append((is_default, stmts))
    return groups


# ---------------------------------------------------------------------
# Boolean branch facts
# ---------------------------------------------------------------------

_SIMPLE_VAR = re.compile(r"\s*(!?)\s*([A-Za-z_]\w*)\s*$")
_FACT_KEYWORDS = {"true", "false", "nullptr", "this"}


def _atom_fact(expr):
    m = _SIMPLE_VAR.match(expr)
    if m is None or m.group(2) in _FACT_KEYWORDS:
        return None
    return (m.group(2), m.group(1) != "!")


def _split_top(expr, sep):
    parts = []
    depth = 0
    last = 0
    i = 0
    while i < len(expr) - 1:
        c = expr[i]
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth = max(0, depth - 1)
        elif depth == 0 and expr[i:i + 2] == sep:
            parts.append(expr[last:i])
            last = i + 2
            i += 1
        i += 1
    parts.append(expr[last:])
    return parts


def branch_facts(cond):
    """Returns (then_facts, else_facts): tuples of (var, bool) known on
    each edge of `if (cond)`. Only plain bool locals are tracked."""
    cond = cond.strip()
    atom = _atom_fact(cond)
    if atom is not None:
        var, val = atom
        return ((var, val),), ((var, not val),)
    ors = _split_top(cond, "||")
    if len(ors) > 1:
        atoms = [_atom_fact(p) for p in ors]
        if all(a is not None for a in atoms):
            # `a || b` false => every disjunct false
            return (), tuple((v, not val) for v, val in atoms)
        return (), ()
    ands = _split_top(cond, "&&")
    if len(ands) > 1:
        atoms = [_atom_fact(p) for p in ands]
        if all(a is not None for a in atoms):
            return tuple(atoms), ()
        return (), ()
    return (), ()


# ---------------------------------------------------------------------
# CFG
# ---------------------------------------------------------------------


@dataclass
class Node:
    id: int
    items: list = field(default_factory=list)   # [(offset, text)]
    succs: list = field(default_factory=list)   # [(node_id, facts)]


class CFG:
    def __init__(self):
        self.nodes = []
        self.entry = self._new().id
        self.exit = self._new().id

    def _new(self):
        n = Node(id=len(self.nodes))
        self.nodes.append(n)
        return n

    def edge(self, a, b, facts=()):
        self.nodes[a].succs.append((b, tuple(facts)))


def build_cfg(body):
    """Builds a CFG from a cleaned function body (lambdas should be
    pre-blanked with blank_lambdas)."""
    cfg = CFG()
    stmts = parse_stmts(body)
    last = _lower(cfg, stmts, cfg.entry, None, None)
    cfg.edge(last, cfg.exit)
    return cfg


def _lower(cfg, stmts, cur, brk, cont):
    for st in stmts:
        if st.kind == "simple":
            cfg.nodes[cur].items.append((st.offset, st.text))
        elif st.kind == "return":
            cfg.nodes[cur].items.append((st.offset, st.text))
            cfg.edge(cur, cfg.exit)
            cur = cfg._new().id  # unreachable continuation
        elif st.kind == "break":
            cfg.edge(cur, brk if brk is not None else cfg.exit)
            cur = cfg._new().id
        elif st.kind == "continue":
            cfg.edge(cur, cont if cont is not None else cfg.exit)
            cur = cfg._new().id
        elif st.kind == "block":
            cur = _lower(cfg, st.body, cur, brk, cont)
        elif st.kind == "if":
            if st.text:
                cfg.nodes[cur].items.append((st.offset, st.text))
            tf, ef = branch_facts(st.text)
            join = cfg._new().id
            tnode = cfg._new().id
            cfg.edge(cur, tnode, tf)
            tend = _lower(cfg, st.body, tnode, brk, cont)
            cfg.edge(tend, join)
            if st.orelse:
                enode = cfg._new().id
                cfg.edge(cur, enode, ef)
                eend = _lower(cfg, st.orelse, enode, brk, cont)
                cfg.edge(eend, join)
            else:
                cfg.edge(cur, join, ef)
            cur = join
        elif st.kind in ("while", "for"):
            header = cfg._new().id
            cfg.edge(cur, header)
            if st.text:
                cfg.nodes[header].items.append((st.offset, st.text))
            exitn = cfg._new().id
            tf, ef = branch_facts(st.text) if st.kind == "while" \
                else ((), ())
            bnode = cfg._new().id
            cfg.edge(header, bnode, tf)
            bend = _lower(cfg, st.body, bnode, exitn, header)
            cfg.edge(bend, header)  # back-edge
            cfg.edge(header, exitn, ef)
            cur = exitn
        elif st.kind == "do":
            bnode = cfg._new().id
            exitn = cfg._new().id
            condn = cfg._new().id
            cfg.edge(cur, bnode)
            bend = _lower(cfg, st.body, bnode, exitn, condn)
            cfg.edge(bend, condn)
            if st.text:
                cfg.nodes[condn].items.append((st.offset, st.text))
            cfg.edge(condn, bnode)  # back-edge
            cfg.edge(condn, exitn)
            cur = exitn
        elif st.kind == "switch":
            condn = cur
            if st.text:
                cfg.nodes[condn].items.append((st.offset, st.text))
            exitn = cfg._new().id
            group_nodes = []
            for _ in st.cases:
                group_nodes.append(cfg._new().id)
            has_default = any(d for d, _ in st.cases)
            for gi, (gnode, (_, gstmts)) in enumerate(
                    zip(group_nodes, st.cases)):
                cfg.edge(condn, gnode)
                gend = _lower(cfg, gstmts, gnode, exitn, cont)
                nxt = group_nodes[gi + 1] if gi + 1 < len(group_nodes) \
                    else exitn
                cfg.edge(gend, nxt)  # fallthrough
            if not has_default or not st.cases:
                cfg.edge(condn, exitn)
            cur = exitn
    return cur


# ---------------------------------------------------------------------
# Path-sensitive walks
# ---------------------------------------------------------------------

_ASSIGN_RE = re.compile(r"\b([A-Za-z_]\w*)\s*=(?![=])")
_TERNARY_RE = re.compile(r"(!?)\s*\b([A-Za-z_]\w*)\s*\?")

MAX_STATES = 20000


def _ternary_guard(text, pos):
    """If the token at `pos` sits inside `v ? A : B`, returns the fact
    (v, True/False) it is guarded by, else None."""
    best = None
    for m in _TERNARY_RE.finditer(text, 0, pos):
        # find the matching top-level ':' after '?'
        depth = 0
        colon = None
        i = m.end()
        while i < len(text):
            c = text[i]
            if c in "([{":
                depth += 1
            elif c in ")]}":
                if depth == 0:
                    break
                depth -= 1
            elif c == "?" and depth == 0:
                depth += 100  # nested ternary: give up on this one
                break
            elif c == ":" and depth == 0 and text[i - 1] != ":" and \
                    (i + 1 >= len(text) or text[i + 1] != ":"):
                colon = i
                break
            i += 1
        if colon is None:
            continue
        val = m.group(1) != "!"
        if m.end() <= pos <= colon:
            best = (m.group(2), val)
        elif pos > colon:
            best = (m.group(2), not val)
    return best


def _facts_apply(facts, new_facts):
    """Merges branch facts into a fact frozenset; returns None when
    contradictory (the edge is infeasible)."""
    d = dict(facts)
    for var, val in new_facts:
        if var in d and d[var] != val:
            return None
        d[var] = val
    return frozenset(d.items())


def _facts_kill(facts, text):
    killed = {m.group(1) for m in _ASSIGN_RE.finditer(text)}
    if not killed:
        return facts
    return frozenset((v, b) for v, b in facts if v not in killed)


def walk(cfg, init_payload, transfer):
    """Runs a path-sensitive forward walk.

    transfer(offset, text, payload, facts) -> payload. It may consult
    facts (frozenset of (var, bool)) and use _ternary_guard itself via
    guarded_tokens(). Returns the set of payloads that reach the CFG
    exit. State = (node, payload, facts); payloads must be hashable.
    """
    seen = set()
    exits = set()
    stack = [(cfg.entry, init_payload, frozenset())]
    while stack:
        node_id, payload, facts = stack.pop()
        key = (node_id, payload, facts)
        if key in seen:
            continue
        seen.add(key)
        if len(seen) > MAX_STATES:
            # State blow-up: fail safe by treating the function as
            # exiting with whatever we have (callers stay conservative).
            exits.add(payload)
            return exits
        for off, text in cfg.nodes[node_id].items:
            payload = transfer(off, text, payload, facts)
            facts = _facts_kill(facts, text)
        if node_id == cfg.exit:
            exits.add(payload)
            continue
        succs = cfg.nodes[node_id].succs
        if not succs and node_id != cfg.exit:
            exits.add(payload)  # dangling node (unreachable tail)
            continue
        for succ, efacts in succs:
            nfacts = _facts_apply(facts, efacts)
            if nfacts is None:
                continue  # infeasible edge
            stack.append((succ, payload, nfacts))
    return exits


def guarded_tokens(token_re, text, facts):
    """Yields match objects for token_re in text whose ternary guard
    (if any) is consistent with the known facts."""
    for m in token_re.finditer(text):
        guard = _ternary_guard(text, m.start())
        if guard is not None:
            var, val = guard
            if (var, not val) in facts:
                continue  # provably not evaluated on this path
        yield m
