#!/usr/bin/env python3
"""Parser-corner tests for the internal polyverify frontend.

Runs as ctest `polyverify_selftest` (tests/CMakeLists.txt) and from CI.
Covers the corners that historically broke statement-level C++
scanners — lambdas capturing `this`, nested templates in declarations,
operator() definitions, preprocessor-conditional function bodies — plus
a CFG/branch-fact smoke and the full polyverify --self-test in-process.
"""

from __future__ import annotations

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpplite  # noqa: E402
import dataflow  # noqa: E402
import polyverify  # noqa: E402


def _src(text, path="src/t/t.cc"):
    return cpplite.SourceFile(path=path, text=text)


class LambdaTest(unittest.TestCase):
    def test_lambda_capturing_this_is_opaque(self):
        body = """
  scheduler_->ScheduleAfter(1.0, [this, txn] {
    sends.emplace_back(0, MakeComplete(txn));
  });
  Trace(TraceEventType::kSubmit, txn);
"""
        blanked = dataflow.blank_lambdas(body)
        self.assertNotIn("MakeComplete", blanked)
        self.assertNotIn("[this", blanked)
        self.assertIn("Trace(", blanked)
        self.assertIn("ScheduleAfter", blanked)
        self.assertEqual(len(blanked), len(body))

    def test_nested_lambdas(self):
        body = "f([a] { g([b] { h(); }); }); tail();"
        blanked = dataflow.blank_lambdas(body)
        self.assertNotIn("h()", blanked)
        self.assertIn("tail()", blanked)

    def test_array_subscript_is_not_a_lambda(self):
        body = "decided_[txn] = true; pending_[0].clear();"
        self.assertEqual(dataflow.blank_lambdas(body), body)


class FunctionParseTest(unittest.TestCase):
    def test_nested_template_decls(self):
        src = _src("""
std::map<TxnId, std::vector<std::pair<SiteId, int>>> Snapshot::Flatten(
    const std::unordered_map<SiteId, std::set<TxnId>>& in) {
  return {};
}
""")
        fns = cpplite.parse_functions(src)
        self.assertEqual([(f.cls, f.name) for f in fns],
                         [("Snapshot", "Flatten")])

    def test_operator_call_definition(self):
        src = _src("""
struct Hasher {
  size_t operator()(const ItemKey& k) const { return k.value(); }
  bool operator==(const Hasher&) const { return true; }
};
""")
        fns = cpplite.parse_functions(src)
        names = {(f.cls, f.name) for f in fns}
        self.assertIn(("Hasher", "operator()"), names)
        self.assertIn(("Hasher", "operator=="), names)

    def test_inline_method_class_attribution(self):
        src = _src("""
class Outer {
  void A() { x_ = 1; }
  class Inner {
    void B() { y_ = 2; }
  };
  void C() { z_ = 3; }
};
""")
        by_name = {f.name: f.cls for f in cpplite.parse_functions(src)}
        self.assertEqual(by_name["A"], "Outer")
        self.assertEqual(by_name["B"], "Inner")
        self.assertEqual(by_name["C"], "Outer")

    def test_annotations_captured(self):
        src = _src("""
void Engine::Step(TxnId txn) REQUIRES(mu_) { tick_++; }
""")
        fn = cpplite.parse_functions(src)[0]
        self.assertIn("REQUIRES", fn.annotations)


class PreprocessorTest(unittest.TestCase):
    def test_conditional_body_keeps_first_branch(self):
        src = _src("""
int Pick() {
#ifdef FAST
  return 1;
#else
  return 2;
#endif
}
""")
        fn = cpplite.parse_functions(src)[0]
        self.assertIn("return 1", fn.body)
        self.assertNotIn("return 2", fn.body)

    def test_elif_chain_blanked(self):
        src = _src("""
int Pick() {
#if A
  int a = f();
#elif B
  int b = broken(;
#else
  int c = also_broken{;
#endif
  return 0;
}
""")
        fn = cpplite.parse_functions(src)[0]
        self.assertIn("f()", fn.body)
        self.assertNotIn("broken", fn.body)

    def test_define_bodies_untouched(self):
        text = """
#define POLYV_LOCK_RANK_LIST(X) \\
  X(kAlpha, 10)                 \\
  X(kBeta, 20)
"""
        src = _src(text, path="src/common/lock_rank.h")
        self.assertIn("X(kAlpha, 10)", src.clean)
        self.assertIn("X(kBeta, 20)", src.clean)

    def test_unbalanced_alternative_brace_blanked(self):
        # The #else branch closes a brace the #if branch also closes;
        # keeping both would desync match_brace for the rest of the
        # file.
        src = _src("""
void F() {
#ifdef X
  if (a) { g(); }
#else
  }
  void rogue() {
#endif
  h();
}
void After() { k(); }
""")
        names = [f.name for f in cpplite.parse_functions(src)]
        self.assertIn("F", names)
        self.assertIn("After", names)
        self.assertNotIn("rogue", names)


class MemberFieldTest(unittest.TestCase):
    def test_consecutive_fields_all_parsed(self):
        src = _src("""
class T {
 private:
  Mutex mu_;
  int count_;
  std::vector<int> pending_;
  const EngineConfig config_;
  TraceSink* trace_ GUARDED_BY(mu_) = nullptr;
};
""", path="src/t/t.h")
        fields = {f.name: f for f in
                  cpplite.parse_member_fields(src)["T"]}
        self.assertEqual(
            set(fields), {"mu_", "count_", "pending_", "config_",
                          "trace_"})
        self.assertIn("const", fields["config_"].spec)
        self.assertIn("GUARDED_BY", fields["trace_"].annotations)


class CfgTest(unittest.TestCase):
    def test_branch_facts_prune_infeasible_paths(self):
        # `if (a || b) record();` then `a ? send() : other()`: the path
        # that skips record() has a=false, so the guarded send() arm is
        # infeasible.
        body = """
  if (a || b) {
    record();
  }
  sends.emplace_back(0, a ? Send() : Other());
"""
        cfg = dataflow.build_cfg(body)
        import re
        send_re = re.compile(r"\bSend\s*\(")
        rec_re = re.compile(r"\brecord\s*\(")
        bad = []

        def transfer(off, text, sat, facts):
            if rec_re.search(text):
                return True
            for m in dataflow.guarded_tokens(send_re, text, facts):
                if not sat:
                    bad.append(off + m.start())
            return sat

        dataflow.walk(cfg, False, transfer)
        self.assertEqual(bad, [])

    def test_loop_back_edge_and_early_return(self):
        body = """
  while (busy) {
    if (done) {
      return;
    }
    step();
  }
  finish();
"""
        cfg = dataflow.build_cfg(body)
        import re
        hits = set()

        def transfer(off, text, acc, facts):
            for kw in ("step", "finish", "return"):
                if re.search(r"\b" + kw + r"\b", text):
                    hits.add(kw)
            return acc

        exits = dataflow.walk(cfg, 0, transfer)
        self.assertEqual(hits, {"step", "finish", "return"})
        self.assertTrue(exits)


class SelfTestTest(unittest.TestCase):
    def test_polyverify_self_test_passes(self):
        self.assertEqual(polyverify.self_test(), 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
