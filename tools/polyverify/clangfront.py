"""Optional libclang frontend for polyverify.

When the `clang.cindex` Python bindings are importable (e.g. the
python3-clang package) this module parses translation units from
compile_commands.json and provides full-AST implementations of the
queries that matter most for precision: switch statements with their
controlling expression TYPE (not a textual guess) and enum definitions.

The bindings are deliberately optional — the container and default CI
image run the internal frontend (cpplite.py) — so every import happens
lazily and `available()` gates all use. Do NOT add a hard dependency:
the repo's no-new-packages rule means polyverify must stay green
without libclang installed.
"""

from __future__ import annotations


def probe():
    """Returns (ok, reason). ok=True means libclang is importable AND a
    working Index can be created; reason explains why not (missing
    bindings vs. bindings present but the shared library is absent or
    version-mismatched), so callers can print a one-line warning
    instead of a stack trace."""
    try:
        import clang.cindex  # noqa: F401
    except Exception as e:
        return False, f"clang.cindex not importable ({e.__class__.__name__})"
    try:
        index = _index()
    except Exception as e:
        # Typical causes: libclang.so missing from the loader path, or
        # python bindings built for a different libclang major version.
        return False, ("clang.cindex imports but libclang failed to "
                       f"load: {e}")
    if index is None:
        return False, "clang.cindex Index.create() returned None"
    return True, "libclang loaded"


def available():
    return probe()[0]


_INDEX = None


def _index():
    global _INDEX
    if _INDEX is None:
        import clang.cindex as ci

        _INDEX = ci.Index.create()
    return _INDEX


def _iter_nodes(node):
    yield node
    for child in node.get_children():
        yield from _iter_nodes(child)


def parse_tu(compdb_entry):
    """Parses one compile_commands.json entry into a TU, or None."""
    import shlex

    args = compdb_entry.get("arguments")
    if args is None:
        args = shlex.split(compdb_entry["command"])
    # Drop the compiler binary, the -o/-c plumbing and the input file;
    # libclang only needs the flags.
    flags = []
    skip = False
    for a in args[1:]:
        if skip:
            skip = False
            continue
        if a in ("-o", "-c"):
            skip = a == "-o"
            continue
        if a == compdb_entry["file"] or a.endswith(compdb_entry["file"]):
            continue
        flags.append(a)
    try:
        return _index().parse(compdb_entry["file"], args=flags)
    except Exception:
        return None


def switches_over_enums(tu, enum_names):
    """Yields (file, line, enum_name, covered_members, has_default,
    default_is_loud) for every switch whose condition type is one of
    enum_names."""
    import clang.cindex as ci

    for node in _iter_nodes(tu.cursor):
        if node.kind != ci.CursorKind.SWITCH_STMT:
            continue
        children = list(node.get_children())
        if len(children) < 2:
            continue
        cond, body = children[0], children[-1]
        cond_type = cond.type.get_canonical().spelling
        enum = next(
            (e for e in enum_names if cond_type.endswith("::" + e) or
             cond_type == e),
            None,
        )
        if enum is None:
            continue
        covered = set()
        has_default = False
        default_is_loud = False
        for child in _iter_nodes(body):
            if child.kind == ci.CursorKind.CASE_STMT:
                for sub in _iter_nodes(child):
                    if sub.kind == ci.CursorKind.DECL_REF_EXPR and (
                        sub.referenced is not None
                        and sub.referenced.kind
                        == ci.CursorKind.ENUM_CONSTANT_DECL
                    ):
                        covered.add(sub.referenced.spelling)
                        break
            elif child.kind == ci.CursorKind.DEFAULT_STMT:
                has_default = True
                text = " ".join(
                    t.spelling for t in child.get_tokens()
                )
                default_is_loud = any(
                    k in text for k in ("return", "abort", "throw",
                                        "POLYV_CHECK", "CHECK", "Fatal"))
        yield (str(node.location.file), node.location.line, enum, covered,
               has_default, default_is_loud)


def enum_members(tu, enum_name):
    import clang.cindex as ci

    for node in _iter_nodes(tu.cursor):
        if (node.kind == ci.CursorKind.ENUM_DECL
                and node.spelling == enum_name):
            return [
                c.spelling
                for c in node.get_children()
                if c.kind == ci.CursorKind.ENUM_CONSTANT_DECL
            ]
    return None
