"""A small C++ "AST-lite" frontend for polyverify's semantic rules.

polyverify's reference frontend is libclang over compile_commands.json
(tools/polyverify/clangfront.py), but libclang's Python bindings are an
optional dependency. This module is the self-contained fallback: a
lexer that strips comments and literals while preserving offsets, a
brace matcher, and extractors for the handful of syntactic shapes the
rules need (enum definitions, switch statements, Mutex declarations,
function definitions with class context, call sites, and a
return-path coverage walk).

It is NOT a general C++ parser. It relies on the tree's enforced
formatting conventions (clang-format, Google style) and deliberately
over- or under-approximates where noted so that every reported
violation is real; see docs/STATIC_ANALYSIS.md for the contract.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


def strip_comments_and_strings(text):
    """Blanks comments, string and char literals, preserving offsets.

    Every replaced character becomes a space (newlines survive), so
    byte offsets and line numbers in the cleaned text match the
    original file exactly.
    """
    out = list(text)
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 1
                j += 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            # Keep single chars like 'x' blanked; digit separators
            # (1'000) have no closing quote problem because the next
            # quote ends the "literal" harmlessly in cleaned text.
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


_PP_COND_RE = re.compile(r"^\s*#\s*(if|ifdef|ifndef|elif|else|endif)\b")


def blank_preprocessor_alternatives(text):
    """Resolves preprocessor conditionals offset-preservingly.

    The first branch of every #if/#ifdef/#ifndef is kept; #elif/#else
    alternatives are blanked, as are the directive lines themselves —
    so a function body split across `#if A ... #else ... #endif`
    parses as the primary configuration instead of as doubled
    (possibly brace-unbalanced) text. #define bodies (including
    multi-line X-macro lists, which LK01 reads) are never touched:
    only the six conditional directives and suppressed branches blank.
    """
    out = []
    # stack of booleans: is the *current* branch of each open
    # conditional kept?
    stack = []
    for line in text.split("\n"):
        m = _PP_COND_RE.match(line)
        keep_ctx = all(stack)
        if m:
            d = m.group(1)
            if d in ("if", "ifdef", "ifndef"):
                stack.append(True)  # first branch kept
            elif d in ("elif", "else"):
                if stack:
                    stack[-1] = False  # alternatives blanked
            elif d == "endif":
                if stack:
                    stack.pop()
            out.append(" " * len(line))  # directive line itself
            continue
        if keep_ctx:
            out.append(line)
        else:
            out.append(" " * len(line))
    return "\n".join(out)


def match_brace(text, open_idx):
    """Returns the offset of the '}' matching the '{' at open_idx."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


@dataclass
class SourceFile:
    path: str
    text: str
    clean: str = ""
    lines: list = field(default_factory=list)

    def __post_init__(self):
        self.clean = blank_preprocessor_alternatives(
            strip_comments_and_strings(self.text))
        self.lines = self.text.splitlines()

    def line_of(self, offset):
        return line_of(self.text, offset)

    def raw_line(self, lineno):
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


ENUM_RE = re.compile(r"enum\s+class\s+(\w+)[^{;]*\{")


def parse_enums(src):
    """Returns {enum_name: [enumerator, ...]} for `enum class` defs."""
    enums = {}
    for m in ENUM_RE.finditer(src.clean):
        open_idx = src.clean.index("{", m.start())
        close_idx = match_brace(src.clean, open_idx)
        body = src.clean[open_idx + 1 : close_idx]
        members = []
        for entry in body.split(","):
            entry = entry.split("=")[0].strip()
            if re.fullmatch(r"\w+", entry):
                members.append(entry)
        enums[m.group(1)] = members
    return enums


@dataclass
class Switch:
    file: str
    line: int
    condition: str
    cases: list       # [(qualifier, member, line)]
    has_default: bool
    default_body: str  # statements after `default:` up to next label/end


SWITCH_RE = re.compile(r"\bswitch\s*\(")
CASE_RE = re.compile(r"\bcase\s+((?:\w+::)*)(\w+)\s*:")
DEFAULT_RE = re.compile(r"\bdefault\s*:")


def parse_switches(src):
    switches = []
    for m in SWITCH_RE.finditer(src.clean):
        cond_open = src.clean.index("(", m.start())
        depth = 0
        cond_close = cond_open
        for i in range(cond_open, len(src.clean)):
            if src.clean[i] == "(":
                depth += 1
            elif src.clean[i] == ")":
                depth -= 1
                if depth == 0:
                    cond_close = i
                    break
        body_open = src.clean.find("{", cond_close)
        if body_open == -1:
            continue
        body_close = match_brace(src.clean, body_open)
        body = src.clean[body_open + 1 : body_close]
        base = body_open + 1
        cases = []
        for cm in CASE_RE.finditer(body):
            qual = cm.group(1).rstrip(":")
            cases.append((qual, cm.group(2), src.line_of(base + cm.start())))
        dm = DEFAULT_RE.search(body)
        default_body = ""
        if dm:
            nxt = CASE_RE.search(body, dm.end())
            default_body = body[dm.end() : nxt.start() if nxt else len(body)]
        switches.append(
            Switch(
                file=src.path,
                line=src.line_of(m.start()),
                condition=src.clean[cond_open + 1 : cond_close].strip(),
                cases=cases,
                has_default=dm is not None,
                default_body=default_body,
            )
        )
    return switches


@dataclass
class MutexDecl:
    file: str
    line: int
    name: str
    rank: str  # "" when unranked


# A member/local Mutex declaration: `Mutex name ...;` possibly with the
# POLYV_MUTEX_RANK macro. Pointer/reference parameters (`Mutex* mu`) and
# MutexLock guards do not match.
MUTEX_DECL_RE = re.compile(
    r"\bMutex\s+(\w+)\s*(?:POLYV_MUTEX_RANK\s*\(\s*(\w+)\s*\))?\s*;"
)


def parse_mutex_decls(src):
    decls = []
    for m in MUTEX_DECL_RE.finditer(src.clean):
        decls.append(
            MutexDecl(
                file=src.path,
                line=src.line_of(m.start()),
                name=m.group(1),
                rank=m.group(2) or "",
            )
        )
    return decls


@dataclass
class Function:
    file: str
    line: int
    cls: str      # enclosing/qualifying class name, "" for free functions
    name: str
    params: str
    body: str     # cleaned body text, braces excluded
    body_offset: int  # offset of the body in the cleaned file text
    annotations: str = ""  # trailing qualifiers (const, REQUIRES(...), ...)


# A function definition header: qualified name, parameter list, optional
# qualifiers/annotations, then `{`. Control-flow keywords are excluded
# at match time. Names cover identifiers, destructors, and operator
# overloads (operator() and the symbolic forms).
FUNC_RE = re.compile(
    r"(?:^|[;}{])\s*"                       # statement position
    r"(?:template\s*<[^>]*>\s*)?"
    r"(?P<prefix>[\w:<>,*&~\[\]\s]*?)"      # return type etc. (may be empty)
    r"\b(?P<qual>(?:\w+::)*)"
    r"(?P<name>operator\s*\(\s*\)|operator\s*(?:\[\s*\]|[+\-*/%^&|~!=<>]{1,3})"
    r"|~?\w+)\s*"
    r"\((?P<params>[^;{}()]*(?:\([^()]*\)[^;{}()]*)*)\)\s*"
    r"(?P<post>(?:const|noexcept|override|final|mutable|->\s*[\w:<>&*]+"
    r"|REQUIRES(?:_SHARED)?\s*\([^)]*\)|EXCLUDES\s*\([^)]*\)"
    r"|ACQUIRE(?:_SHARED)?\s*\([^)]*\)|RELEASE(?:_SHARED)?\s*\([^)]*\)"
    r"|TRY_ACQUIRE\s*\([^)]*\)|ASSERT_CAPABILITY\s*\([^)]*\)"
    r"|NO_THREAD_SAFETY_ANALYSIS|\s)*)"
    r"\{"
)

KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "new",
    "delete", "else", "do", "case", "default",
}


class ClassTracker:
    """Maps a text offset to the innermost `class X {` / `struct X {`
    block containing it."""

    def __init__(self, clean):
        self.spans = []  # (open, close, name)
        for m in re.finditer(r"\b(?:class|struct)\s+(?:\w+\s+)*?(\w+)"
                             r"(?:\s*(?:final|:\s*[^;{]*))?\s*\{", clean):
            name = m.group(1)
            open_idx = clean.index("{", m.start())
            close_idx = match_brace(clean, open_idx)
            self.spans.append((open_idx, close_idx, name))

    def class_at(self, offset):
        best = ""
        best_size = None
        for open_idx, close_idx, name in self.spans:
            if open_idx < offset < close_idx:
                size = close_idx - open_idx
                if best_size is None or size < best_size:
                    best = name
                    best_size = size
        return best


def parse_functions(src):
    """Extracts function definitions (with class context) from a file."""
    tracker = ClassTracker(src.clean)
    functions = []
    for m in FUNC_RE.finditer(src.clean):
        name = m.group("name")
        if name in KEYWORDS or name.startswith("~"):
            continue
        if name.startswith("operator"):
            name = "operator" + re.sub(r"\s+", "", name[len("operator"):])
        qual = m.group("qual").rstrip(":")
        body_open = m.end() - 1
        body_close = match_brace(src.clean, body_open)
        # Class context: an explicit `Class::` qualifier wins; otherwise
        # the innermost enclosing class/struct block (inline methods).
        cls = qual.split("::")[-1] if qual else tracker.class_at(body_open)
        functions.append(
            Function(
                file=src.path,
                line=src.line_of(m.start("name")),
                cls=cls,
                name=name,
                params=m.group("params"),
                body=src.clean[body_open + 1 : body_close],
                body_offset=body_open + 1,
                annotations=m.group("post") or "",
            )
        )
    return functions


CALL_RE = re.compile(r"(?:(?P<recv>\w+)\s*(?P<op>->|\.))?\s*\b(?P<name>\w+)\s*\(")


def parse_calls(body):
    """Yields (receiver, op, callee) for call-shaped tokens in a body.

    receiver is "" for unqualified calls. Keywords and declarations
    also match this shape; callers filter against known functions, so
    over-matching here is harmless.
    """
    calls = []
    for m in CALL_RE.finditer(body):
        name = m.group("name")
        if name in KEYWORDS:
            continue
        calls.append((m.group("recv") or "", m.group("op") or "", name))
    return calls


MEMBER_DECL_RE = re.compile(
    r"\b(?:std::unique_ptr<\s*(?P<uptr>\w+)\s*>|(?P<ty>\w+)\s*\*?)\s+"
    r"(?P<name>\w+_?)\s*(?:=[^;]*|GUARDED_BY\s*\([^)]*\))?\s*;"
)


def parse_member_types(src):
    """Returns {class: {member_name: type_name}} for pointer/value and
    unique_ptr members — enough to resolve `member_->Method()` calls."""
    tracker = ClassTracker(src.clean)
    result = {}
    for open_idx, close_idx, name in tracker.spans:
        body = src.clean[open_idx + 1 : close_idx]
        members = {}
        for m in MEMBER_DECL_RE.finditer(body):
            ty = m.group("uptr") or m.group("ty")
            if ty and ty[0].isupper():
                members[m.group("name")] = ty
        result.setdefault(name, {}).update(members)
    return result


# --- member fields (rule GD01 / HP01) -------------------------------

# A type name with up to two levels of template nesting, e.g.
# `std::map<TxnId, std::pair<uint64_t, bool>>`.
_TMPL_TYPE = (
    r"\w+(?:::\w+)*"
    r"(?:\s*<[^<>;]*(?:<[^<>;]*(?:<[^<>;]*>[^<>;]*)*>[^<>;]*)*>)?"
)

MEMBER_FIELD_RE = re.compile(
    # The delimiter is a lookbehind so one declaration's `;` can anchor
    # the next (finditer matches never overlap).
    r"(?:^|(?<=[;{}])|\b(?:public|private|protected)\s*:)\s*"
    r"(?P<spec>(?:static\s+|mutable\s+|const\s+|constexpr\s+|inline\s+)*)"
    r"(?P<type>" + _TMPL_TYPE + r")(?:\s*const\b)?(?:\s*[*&]+)?\s+"
    r"(?P<name>\w+)\s*"
    r"(?P<ann>(?:(?:GUARDED_BY|PT_GUARDED_BY|POLYV_MUTEX_RANK|"
    r"ACQUIRED_BEFORE|ACQUIRED_AFTER)\s*\([^()]*\)\s*)*)"
    r"(?:=\s*[^;]*|\{[^{};]*\})?\s*;"
)


@dataclass
class MemberField:
    file: str
    line: int
    cls: str
    name: str
    type: str
    spec: str         # static/mutable/const/... specifiers
    annotations: str  # GUARDED_BY(...) etc., "" when unannotated


def parse_member_fields(src):
    """Returns {class: [MemberField, ...]} for data-member declarations,
    handling nested template types. Method definitions don't match (a
    '(' in the declarator breaks the pattern before the ';')."""
    tracker = ClassTracker(src.clean)
    result = {}
    for open_idx, close_idx, cls in tracker.spans:
        body = src.clean[open_idx + 1 : close_idx]
        # Blank nested class/struct bodies so inner members are not
        # attributed to the outer class (the tracker visits them too).
        chars = list(body)
        for o2, c2, _ in tracker.spans:
            if open_idx < o2 and c2 < close_idx:
                for k in range(o2 - open_idx - 1, c2 - open_idx):
                    if 0 <= k < len(chars) and chars[k] != "\n":
                        chars[k] = " "
        scan = "".join(chars)
        fields = []
        for m in MEMBER_FIELD_RE.finditer(scan):
            ty = m.group("type").strip()
            base = ty.split("<")[0].split("::")[-1]
            if base in KEYWORDS or ty in ("return",):
                continue
            fields.append(MemberField(
                file=src.path,
                line=src.line_of(open_idx + 1 + m.start("name")),
                cls=cls,
                name=m.group("name"),
                type=ty,
                spec=m.group("spec") or "",
                annotations=(m.group("ann") or "").strip(),
            ))
        if fields:
            result.setdefault(cls, []).extend(fields)
    return result


# --- lock scopes (rule GD01) ----------------------------------------

LOCK_GUARD_RE = re.compile(r"\bMutexLock\s+\w+\s*[({]\s*&\s*(\w+)\s*[)}]")
LOCK_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*Lock\s*\(\s*\)")
UNLOCK_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*Unlock\s*\(\s*\)")


def _block_spans(body):
    """Returns (open, close) offset pairs for every brace block."""
    spans = []
    stack = []
    for i, c in enumerate(body):
        if c == "{":
            stack.append(i)
        elif c == "}" and stack:
            spans.append((stack.pop(), i))
    return spans


def lock_regions(body):
    """Returns [(mutex_name, start, end)] offset ranges of `body` that
    execute with the named mutex held: the lexical scope of each RAII
    `MutexLock l(&mu_)` guard, and the textual span between explicit
    `mu_.Lock()` / `mu_.Unlock()` pairs."""
    spans = _block_spans(body)
    regions = []
    for m in LOCK_GUARD_RE.finditer(body):
        end = len(body)
        best = None
        for o, c in spans:
            if o < m.start() < c and (best is None or c - o < best[1] -
                                      best[0]):
                best = (o, c)
        if best is not None:
            end = best[1]
        regions.append((m.group(1), m.start(), end))
    for m in LOCK_CALL_RE.finditer(body):
        mu = m.group(1)
        end = len(body)
        for u in UNLOCK_CALL_RE.finditer(body, m.end()):
            if u.group(1) == mu:
                end = u.start()
                break
        regions.append((mu, m.start(), end))
    return regions


# --- return-path coverage (rule TR01) -------------------------------

WORD_RETURN = re.compile(r"\breturn\b")
LAMBDA_INTRO = re.compile(r"\[[^\[\]]*\]\s*(?:\([^()]*\)\s*)?(?:mutable\s*)?"
                          r"(?:->\s*[\w:<>&*]+\s*)?\{")


def uncovered_returns(body, emitters):
    """Returns offsets (into body) of return paths not preceded by an
    emitting call, including the implicit end-of-function return.

    Model: a linear scan with one frame per brace depth. An emitting
    call marks the current frame; a return is covered when any frame on
    the stack is marked (an emitter strictly earlier in an enclosing
    block always dominates the return in source order). Conditionally
    executed emitters in *sibling* blocks do not leak — their frame is
    popped before the return is reached. Lambda bodies are opaque:
    their returns are not function returns, and emitters inside them do
    not cover the enclosing function.
    """
    emit_re = re.compile(
        r"\b(?:" + "|".join(re.escape(e) for e in sorted(emitters)) + r")\s*\("
    ) if emitters else None

    events = []  # (offset, kind)
    for i, ch in enumerate(body):
        if ch == "{":
            events.append((i, "open"))
        elif ch == "}":
            events.append((i, "close"))
    if emit_re:
        for m in emit_re.finditer(body):
            events.append((m.start(), "emit"))
    for m in WORD_RETURN.finditer(body):
        events.append((m.start(), "return"))
    for m in LAMBDA_INTRO.finditer(body):
        # Mark the '{' that opens this lambda body.
        events.append((m.end() - 1, "lambda_open"))
    events.sort(key=lambda e: (e[0], e[1] != "lambda_open"))

    stack = [{"emitted": False, "lambda": False}]
    lambda_opens = {off for off, kind in events if kind == "lambda_open"}
    uncovered = []
    for off, kind in events:
        if kind in ("open", "lambda_open"):
            if kind == "open" and off in lambda_opens:
                continue  # handled by the lambda_open event at this offset
            stack.append({
                "emitted": stack[-1]["emitted"] if kind == "open" else False,
                "lambda": kind == "lambda_open" or stack[-1]["lambda"],
            })
        elif kind == "close":
            if len(stack) > 1:
                stack.pop()
        elif kind == "emit":
            stack[-1]["emitted"] = True
        elif kind == "return":
            if stack[-1]["lambda"]:
                continue
            if not any(f["emitted"] for f in stack):
                uncovered.append(off)
    # Implicit return at end of a void function: covered only when the
    # outermost frame saw an emitter on the straight-line path.
    if not stack[0]["emitted"]:
        last = body.rstrip()
        # If the function ends in an explicit return it was already
        # handled above; otherwise flag the closing position.
        if not last.endswith("return;") and not re.search(
                r"\breturn\b[^;]*;\s*$", last):
            uncovered.append(len(body))
    return uncovered
