#!/usr/bin/env python3
"""polylint: repo-specific determinism / protocol / locking lint.

Rules (see docs/STATIC_ANALYSIS.md for rationale):

  ND01  no nondeterminism sources (std::random_device, rand(, srand(,
        time(, gettimeofday, std::chrono::system_clock) in the
        deterministic core — src/event, src/sim, src/txn, src/condition
        — nor in bench/ and tests/, which drive it under fixed seeds.
        All randomness must flow through src/common/rng.h (seeded) and
        all time through the Scheduler/Simulator clock.
  MSG01 every MsgType enum kind in src/txn/messages.h has a
        `case MsgType::kX` arm in BOTH Message::Encode and
        Message::Decode in src/txn/messages.cc — adding a message kind
        without wire support is a silent protocol hole.
  TRC01 every TraceEventType kind in src/obs/trace.h appears (as its
        snake_case name in backticks) in docs/OBSERVABILITY.md — the
        trace taxonomy table is the contract the trace auditor and
        downstream tooling parse.
  MTX01 no raw std::mutex / std::condition_variable declarations in
        src/, bench/ or tests/ outside src/common/thread_annotations.h
        — concurrent state must use the annotated Mutex/CondVar
        wrappers so Clang thread-safety analysis (and the POLYV_LOCKDEP
        runtime validator) covers it.
  LAY01 no #include of net/tcp_transport.h from the deterministic core
        (src/event, src/sim, src/txn, src/condition) — real sockets in
        simulator-driven code would break seeded reproducibility.

A line ending in  // polylint: allow(RULE)  is exempt from RULE
(use sparingly; justify in the surrounding comment).

Exit status: 0 clean, 1 violations found, 2 internal/usage error.
--self-test seeds one violation per rule into a scratch tree and fails
unless every rule fires (proving the linter can actually reject).
"""

import argparse
import os
import re
import sys
import tempfile

DETERMINISTIC_DIRS = ("src/event", "src/sim", "src/txn", "src/condition",
                      "src/workload", "src/paxos", "src/replica")
# bench/ and tests/ drive the deterministic core under fixed seeds, so
# ND01's nondeterminism ban and MTX01's annotated-mutex requirement
# extend to them.
ND01_DIRS = DETERMINISTIC_DIRS + ("bench", "tests")
MTX01_DIRS = ("src", "bench", "tests")

NONDETERMINISM_PATTERNS = [
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:])time\s*\("), "time()"),
    (re.compile(r"gettimeofday"), "gettimeofday()"),
    (re.compile(r"std::chrono::system_clock"), "std::chrono::system_clock"),
]

RAW_MUTEX_PATTERN = re.compile(r"std::(mutex|condition_variable)\b")

TCP_INCLUDE_PATTERN = re.compile(r'#\s*include\s+"src/net/tcp_transport\.h"')

ALLOW_PATTERN = re.compile(r"//\s*polylint:\s*allow\(([A-Z0-9]+)\)")


class Violation:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based, or 0 for file/project-level findings
        self.message = message

    def __str__(self):
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.rule}] {self.message}"


def allowed(line, rule):
    m = ALLOW_PATTERN.search(line)
    return bool(m and m.group(1) == rule)


def iter_source_files(root, subdirs):
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith((".h", ".cc")):
                    yield os.path.join(dirpath, name)


def read_lines(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        return f.read().splitlines()


def relpath(root, path):
    return os.path.relpath(path, root)


# ---------------------------------------------------------------- ND01

def check_nondeterminism(root):
    violations = []
    for path in iter_source_files(root, ND01_DIRS):
        for i, line in enumerate(read_lines(path), 1):
            stripped = line.split("//", 1)[0] if "//" in line and not ALLOW_PATTERN.search(line) else line
            for pattern, label in NONDETERMINISM_PATTERNS:
                if pattern.search(stripped) and not allowed(line, "ND01"):
                    violations.append(Violation(
                        "ND01", relpath(root, path), i,
                        f"nondeterminism source {label} in deterministic "
                        "core (use src/common/rng.h / the Scheduler clock)"))
    return violations


# ---------------------------------------------------------------- MSG01

def extract_enum_kinds(text, enum_name):
    m = re.search(rf"enum class {enum_name}[^{{]*{{(.*?)}}", text, re.S)
    if m is None:
        return None
    body = re.sub(r"//[^\n]*", "", m.group(1))  # comments mention kinds too
    return re.findall(r"\bk[A-Z]\w*", body)


def extract_function_body(text, marker):
    """Body of the function whose definition contains `marker`, by brace
    matching from the first '{' at or after the marker."""
    start = text.find(marker)
    if start < 0:
        return None
    brace = text.find("{", start)
    if brace < 0:
        return None
    depth = 0
    for i in range(brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[brace:i + 1]
    return None


def check_message_arms(root):
    header = os.path.join(root, "src/txn/messages.h")
    source = os.path.join(root, "src/txn/messages.cc")
    if not (os.path.exists(header) and os.path.exists(source)):
        return [Violation("MSG01", "src/txn/messages.h", 0,
                          "messages.h/messages.cc not found")]
    kinds = extract_enum_kinds(open(header, encoding="utf-8").read(),
                               "MsgType")
    if not kinds:
        return [Violation("MSG01", relpath(root, header), 0,
                          "could not parse enum class MsgType")]
    text = open(source, encoding="utf-8").read()
    violations = []
    for func in ("Message::Encode", "Message::Decode"):
        body = extract_function_body(text, func)
        if body is None:
            violations.append(Violation(
                "MSG01", relpath(root, source), 0,
                f"could not locate {func} body"))
            continue
        for kind in kinds:
            if f"MsgType::{kind}" not in body:
                violations.append(Violation(
                    "MSG01", relpath(root, source), 0,
                    f"MsgType::{kind} has no case arm in {func}"))
    return violations


# ---------------------------------------------------------------- TRC01

def snake_case(kind):
    # kLocalFastPath -> local_fast_path
    return re.sub(r"(?<!^)(?=[A-Z])", "_", kind[1:]).lower()


def check_trace_taxonomy(root):
    trace_h = os.path.join(root, "src/obs/trace.h")
    doc = os.path.join(root, "docs/OBSERVABILITY.md")
    if not (os.path.exists(trace_h) and os.path.exists(doc)):
        return [Violation("TRC01", "src/obs/trace.h", 0,
                          "trace.h / docs/OBSERVABILITY.md not found")]
    kinds = extract_enum_kinds(open(trace_h, encoding="utf-8").read(),
                               "TraceEventType")
    if not kinds:
        return [Violation("TRC01", relpath(root, trace_h), 0,
                          "could not parse enum class TraceEventType")]
    doc_text = open(doc, encoding="utf-8").read()
    violations = []
    for kind in kinds:
        name = snake_case(kind)
        if f"`{name}`" not in doc_text:
            violations.append(Violation(
                "TRC01", "docs/OBSERVABILITY.md", 0,
                f"trace event {kind} (`{name}`) missing from the "
                "taxonomy documentation"))
    return violations


# ---------------------------------------------------------------- MTX01

def check_raw_mutexes(root):
    violations = []
    exempt = os.path.join(root, "src/common/thread_annotations.h")
    for path in iter_source_files(root, MTX01_DIRS):
        if os.path.abspath(path) == os.path.abspath(exempt):
            continue
        for i, line in enumerate(read_lines(path), 1):
            if line.lstrip().startswith("//"):
                continue
            if RAW_MUTEX_PATTERN.search(line) and not allowed(line, "MTX01"):
                violations.append(Violation(
                    "MTX01", relpath(root, path), i,
                    "raw std::mutex/std::condition_variable — use the "
                    "annotated Mutex/CondVar from "
                    "src/common/thread_annotations.h"))
    return violations


# ---------------------------------------------------------------- LAY01

def check_tcp_layering(root):
    violations = []
    for path in iter_source_files(root, DETERMINISTIC_DIRS):
        for i, line in enumerate(read_lines(path), 1):
            if TCP_INCLUDE_PATTERN.search(line) and not allowed(line, "LAY01"):
                violations.append(Violation(
                    "LAY01", relpath(root, path), i,
                    "deterministic core must not include "
                    "net/tcp_transport.h (real sockets break seeded "
                    "reproducibility)"))
    return violations


# ---------------------------------------------------------------- driver

CHECKS = [
    check_nondeterminism,
    check_message_arms,
    check_trace_taxonomy,
    check_raw_mutexes,
    check_tcp_layering,
]

ALL_RULES = ("ND01", "MSG01", "TRC01", "MTX01", "LAY01")


def run_lint(root):
    violations = []
    for check in CHECKS:
        violations.extend(check(root))
    return violations


def write(path, content):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


def self_test():
    """Seed one violation per rule in a scratch tree; every rule must
    fire (and the allow() escape hatch must suppress)."""
    with tempfile.TemporaryDirectory() as root:
        write(os.path.join(root, "src/event/bad_clock.cc"),
              "#include <ctime>\n"
              "double NowWall() { return time(nullptr); }\n"
              "int Roll() { return rand(); }\n")
        write(os.path.join(root, "src/txn/messages.h"),
              "enum class MsgType : uint8_t {\n"
              "  kPrepare = 1,\n  kGhost = 2,\n};\n")
        write(os.path.join(root, "src/txn/messages.cc"),
              "std::string Message::Encode() const {\n"
              "  switch (type) { case MsgType::kPrepare: break; }\n"
              "  return {};\n}\n"
              "Result<Message> Message::Decode(const std::string& b) {\n"
              "  switch (type) { case MsgType::kPrepare: break; }\n"
              "  return {};\n}\n")
        write(os.path.join(root, "src/obs/trace.h"),
              "enum class TraceEventType : uint8_t {\n"
              "  kSubmit = 1,\n  kGhostEvent,\n};\n")
        write(os.path.join(root, "docs/OBSERVABILITY.md"),
              "| `submit` | a client submits |\n")
        write(os.path.join(root, "src/store/bad_lock.h"),
              "#include <mutex>\n"
              "struct S { std::mutex mu; };\n"
              "struct T { std::mutex mu2; };  // polylint: allow(MTX01)\n")
        write(os.path.join(root, "src/condition/bad_include.cc"),
              '#include "src/net/tcp_transport.h"\n')
        write(os.path.join(root, "src/common/thread_annotations.h"),
              "#include <mutex>\nclass Mutex { std::mutex mu_; };\n")

        violations = run_lint(root)
        fired = {v.rule for v in violations}
        ok = True
        for rule in ALL_RULES:
            status = "fires" if rule in fired else "MISSING"
            print(f"self-test: {rule} {status}")
            if rule not in fired:
                ok = False
        # ND01 must flag both time( and rand(, proving token coverage.
        nd = [v for v in violations if v.rule == "ND01"]
        if len(nd) < 2:
            print("self-test: ND01 matched fewer tokens than seeded")
            ok = False
        # The allow() escape hatch must have suppressed exactly one MTX01.
        mtx = [v for v in violations if v.rule == "MTX01"]
        if len(mtx) != 1:
            print(f"self-test: MTX01 fired {len(mtx)} times, expected 1 "
                  "(allow() suppression broken)")
            ok = False
        if not ok:
            for v in violations:
                print(f"  seeded tree: {v}")
            return 2
        print(f"self-test: OK ({len(violations)} seeded violations "
              "detected, suppression honoured)")
        return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter rejects seeded violations")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"polylint: no src/ under {root}", file=sys.stderr)
        sys.exit(2)

    violations = run_lint(root)
    for v in violations:
        print(v)
    if violations:
        print(f"polylint: {len(violations)} violation(s)")
        sys.exit(1)
    print("polylint: clean")
    sys.exit(0)


if __name__ == "__main__":
    main()
