#!/usr/bin/env python3
"""CI gate for the geo-replication bench (bench_georep.cc).

Validates BENCH_georep.json against the expected schema and re-derives
every gated expectation from the raw numbers, independently of the
bench's own exit code (a truncated or hand-edited artifact must not
pass):

  * every strategy: trace audit clean (A1-A13), every replica set
    consistent, no residual uncertainty, no lockdep reports, and the
    probe counts add up;
  * failover strategies (local_failover, primary_failover) serve 100%
    of probes through the full region outage, and their longest silent
    gap stays under the config's failover bound — a constant that does
    NOT scale with the outage length;
  * the local-read strategy's pre-loss p50 beats the primary-read
    strategy's by a wide margin (local copies answer at intra-region
    latency; primaries usually sit across the WAN);
  * primary_only — the no-failover contrast — visibly loses
    availability during the outage.

Usage: bench_georep_gate.py BENCH_georep.json
Exit: 0 iff the artifact is well-formed and every expectation holds.
"""

import json
import sys

STRATEGY_FIELDS = {
    "strategy": str,
    "prefer_local": bool,
    "max_attempts": int,
    "probes": int,
    "probes_served": int,
    "reads": int,
    "served": int,
    "failed": int,
    "failovers": int,
    "local_served": int,
    "write_commits": int,
    "write_aborts": int,
    "pre_loss_p50_ms": (int, float),
    "pre_loss_p99_ms": (int, float),
    "outage_availability": (int, float),
    "overall_availability": (int, float),
    "max_success_gap_s": (int, float),
    "audit_clean": bool,
    "replicas_consistent": bool,
    "final_uncertain": int,
    "lockdep_reports": int,
    "pass": bool,
}

STRATEGIES = ("local_failover", "primary_failover", "primary_only")
FAILOVER_STRATEGIES = ("local_failover", "primary_failover")
# Local reads must be at least this many times faster than primary
# reads before the loss (intra-region vs WAN round trips).
LOCAL_SPEEDUP = 5.0
PRIMARY_ONLY_MAX_AVAILABILITY = 0.9


def fail(msg):
    print(f"bench_georep_gate: FAIL: {msg}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) != 2:
        return fail(f"usage: {argv[0]} BENCH_georep.json")
    try:
        with open(argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot parse {argv[1]}: {e}")

    errors = []
    if doc.get("schema_version") != 1:
        errors.append("schema_version != 1")
    if doc.get("bench") != "bench_georep":
        errors.append("bench != bench_georep")
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append("missing config object")
        config = {}
    for field in ("regions", "sites_per_region", "replication_factor",
                  "region_loss_at_s", "recovery_at_s",
                  "max_failover_gap_s"):
        if not isinstance(config.get(field), (int, float)) or isinstance(
                config.get(field), bool):
            errors.append(f"config.{field} missing or non-numeric")

    rows = doc.get("strategies")
    if not isinstance(rows, list) or not rows:
        for e in errors:
            print(f"bench_georep_gate: {e}", file=sys.stderr)
        return fail("missing strategies array")

    table = {}
    for i, row in enumerate(rows):
        where = f"strategies[{i}]"
        for field, ftype in STRATEGY_FIELDS.items():
            if field not in row:
                errors.append(f"{where}: missing field '{field}'")
            elif not isinstance(row[field], ftype) or (
                    ftype is int and isinstance(row[field], bool)):
                errors.append(f"{where}: field '{field}' has type "
                              f"{type(row[field]).__name__}")
        if errors:
            continue
        table[row["strategy"]] = row

    if errors:
        for e in errors:
            print(f"bench_georep_gate: {e}", file=sys.stderr)
        return fail(f"{len(errors)} schema error(s)")

    problems = []
    for name in STRATEGIES:
        row = table.get(name)
        if row is None:
            problems.append(f"{name}: strategy missing from the artifact")
            continue
        if not row["audit_clean"]:
            problems.append(f"{name}: trace audit reported violations")
        if not row["replicas_consistent"]:
            problems.append(f"{name}: inconsistent replica set")
        if row["final_uncertain"] != 0:
            problems.append(f"{name}: residual uncertainty")
        if row["lockdep_reports"] != 0:
            problems.append(f"{name}: lockdep reports")
        if row["probes"] == 0:
            problems.append(f"{name}: no probes recorded")
        if row["probes_served"] > row["probes"]:
            problems.append(f"{name}: served more probes than issued")
        if row["reads"] < row["probes"]:
            problems.append(f"{name}: fewer routed reads than probes")
        if row["served"] + row["failed"] != row["reads"]:
            problems.append(f"{name}: served+failed != reads")
        if row["write_commits"] == 0:
            problems.append(f"{name}: no write traffic committed")

    gap_bound = config.get("max_failover_gap_s", 0)
    outage_len = (config.get("recovery_at_s", 0) -
                  config.get("region_loss_at_s", 0))
    if isinstance(gap_bound, (int, float)) and gap_bound >= outage_len:
        problems.append(
            f"config: failover gap bound {gap_bound}s does not separate "
            f"failover from the {outage_len}s outage")
    for name in FAILOVER_STRATEGIES:
        row = table.get(name)
        if row is None:
            continue
        if row["outage_availability"] < 1.0:
            problems.append(
                f"{name}: outage availability "
                f"{row['outage_availability']:.4f} < 1.0 — reads did not "
                f"survive the region loss")
        if row["max_success_gap_s"] > gap_bound:
            problems.append(
                f"{name}: max silent gap {row['max_success_gap_s']:.3f}s "
                f"above the {gap_bound}s failover bound")

    local = table.get("local_failover")
    primary = table.get("primary_failover")
    if local is not None and primary is not None:
        if (local["pre_loss_p50_ms"] * LOCAL_SPEEDUP >
                primary["pre_loss_p50_ms"]):
            problems.append(
                f"local-read p50 {local['pre_loss_p50_ms']:.3f}ms is not "
                f"{LOCAL_SPEEDUP:.0f}x faster than primary-read p50 "
                f"{primary['pre_loss_p50_ms']:.3f}ms")

    only = table.get("primary_only")
    if only is not None and (only["outage_availability"] >
                             PRIMARY_ONLY_MAX_AVAILABILITY):
        problems.append(
            f"primary_only: outage availability "
            f"{only['outage_availability']:.4f} shows no contrast — the "
            f"region loss should darken primary-homed items")

    derived_pass = not problems
    if doc.get("pass") is not derived_pass:
        problems.append(
            f"recorded pass={doc.get('pass')} disagrees with the gate")

    if problems:
        for p in problems:
            print(f"FAIL {p}")
        return fail("at least one expectation regressed")
    for name in STRATEGIES:
        row = table[name]
        print(f"ok   {name}: p50 {row['pre_loss_p50_ms']:.2f}ms, outage "
              f"availability {100 * row['outage_availability']:.1f}%, "
              f"max gap {row['max_success_gap_s']:.2f}s")
    print(f"bench_georep_gate: PASS ({len(rows)} strategies)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
