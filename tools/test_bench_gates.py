#!/usr/bin/env python3
"""Unit tests for the CI bench gates (wired as ctest `bench_gates_test`).

Feeds tools/bench_cluster_gate.py, tools/bench_availability_gate.py and
tools/bench_georep_gate.py synthetic artifacts — a passing grid, a
regressed cell, malformed JSON, a schema violation, and bad usage — and
asserts the documented exit codes through the real CLI entry point
(subprocess), so the contract CI depends on is what's tested.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS = os.path.dirname(os.path.abspath(__file__))
CLUSTER_GATE = os.path.join(TOOLS, "bench_cluster_gate.py")
AVAIL_GATE = os.path.join(TOOLS, "bench_availability_gate.py")
GEOREP_GATE = os.path.join(TOOLS, "bench_georep_gate.py")

WORKLOADS = ("transfer", "readmost", "increment", "mixed")
CHAOS = ("none", "crash", "partition")


def cluster_run(seed):
    # Counters balance: arrivals = rejected_down + offered;
    # offered = shed + committed + aborted + deadline + budget.
    return {
        "seed": seed, "arrivals": 100, "rejected_down": 10, "offered": 90,
        "shed": 5, "committed": 70, "aborted": 10, "deadline_exceeded": 3,
        "budget_exhausted": 2, "retries": 4, "goodput": 700.0,
        "p50_ms": 1.0, "p99_ms": 5.0, "p999_ms": 9.0,
        "peak_uncertain_items": 3, "avg_uncertain_items": 0.5,
        "final_uncertain_items": 0, "polyvalue_installs": 12,
        "conservation_drift": 0, "peak_tracked_clients": 1000,
        "peak_inflight": 64, "exactly_once": True, "audit_clean": True,
        "lockdep_reports": 0, "schedule_hash": "deadbeef",
    }


def cluster_scenario(workload, chaos):
    return {
        "workload": workload, "chaos": chaos, "key_dist": "zipfian",
        "arrival": "poisson", "goodput": 700.0, "shed_fraction": 0.05,
        "commit_fraction": 0.8, "p50_ms": 1.0, "p99_ms": 5.0,
        "p999_ms": 9.0, "peak_uncertain_items": 3,
        "avg_uncertain_items": 0.5, "invariants_ok": True,
        "min_goodput": 500.0, "max_p99_ms": 20.0, "pass": True,
        "runs": [cluster_run(1), cluster_run(2)],
    }


def cluster_doc():
    return {
        "schema_version": 1,
        "bench": "bench_cluster",
        "config": {"seeds": [1, 2], "virtual_clients": 1 << 20},
        "scenarios": [cluster_scenario(w, c)
                      for w in WORKLOADS for c in CHAOS],
        "pass": True,
    }


def avail_cell(protocol, outage):
    cell = {
        "outage": outage, "protocol": protocol, "submitted": 1000,
        "committed": 800, "outage_submitted": 200,
        "outage_committed": 100, "outage_commit_pct": 50.0,
        "outage_latency_ms": 12.0, "stalled_window_mean_s": 0.1,
        "stalled_window_max_s": 0.3, "stalled_window_count": 1,
        "paxos_failovers": 0, "paxos_recovery_ballots": 0,
        "polyvalue_installs": 0, "uncertain_outputs": 0,
        "conservation_drift": 0, "all_items_certain": True,
    }
    if protocol == "block":
        cell["stalled_window_max_s"] = float(outage)
    elif protocol == "polyvalue":
        cell["outage_commit_pct"] = 60.0
        cell["polyvalue_installs"] = 7
    else:  # paxos_commit: under the failover bound, no uncertainty
        cell["outage_commit_pct"] = 48.0
        cell["paxos_failovers"] = 2
    return cell


def avail_doc():
    return {
        "schema_version": 1,
        "bench": "bench_availability",
        "config": {"protocols": ["block", "polyvalue", "paxos_commit"]},
        "cells": [avail_cell(p, o)
                  for o in (2, 5, 10)
                  for p in ("block", "polyvalue", "paxos_commit")],
        "pass": True,
    }


def georep_strategy(name):
    row = {
        "strategy": name, "prefer_local": name == "local_failover",
        "max_attempts": 1 if name == "primary_only" else 0,
        "probes": 240, "probes_served": 240, "reads": 241, "served": 240,
        "failed": 1, "failovers": 30, "local_served": 150,
        "write_commits": 39, "write_aborts": 21,
        "pre_loss_p50_ms": 2.4, "pre_loss_p99_ms": 3.9,
        "outage_availability": 1.0, "overall_availability": 1.0,
        "max_success_gap_s": 0.73, "audit_clean": True,
        "replicas_consistent": True, "final_uncertain": 0,
        "lockdep_reports": 0, "pass": True,
    }
    if name != "local_failover":
        row["pre_loss_p50_ms"] = 106.7
        row["pre_loss_p99_ms"] = 153.6
    if name == "primary_only":
        row.update({"probes_served": 214, "reads": 293, "served": 214,
                    "failed": 79, "failovers": 79,
                    "outage_availability": 0.7,
                    "overall_availability": 0.89,
                    "max_success_gap_s": 1.26})
    return row


def georep_doc():
    return {
        "schema_version": 1,
        "bench": "bench_georep",
        "config": {"regions": 3, "sites_per_region": 3,
                   "replication_factor": 3, "keys": 64,
                   "region_loss_at_s": 20.0, "recovery_at_s": 40.0,
                   "max_failover_gap_s": 2.1},
        "strategies": [georep_strategy(s) for s in
                       ("local_failover", "primary_failover",
                        "primary_only")],
        "pass": True,
    }


class GateTestBase(unittest.TestCase):
    gate = None

    def run_gate(self, *argv):
        proc = subprocess.run(
            [sys.executable, self.gate, *argv],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr

    def run_on_doc(self, doc):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".json", delete=False) as f:
            if isinstance(doc, str):
                f.write(doc)
            else:
                json.dump(doc, f)
            path = f.name
        try:
            return self.run_gate(path)
        finally:
            os.unlink(path)


class ClusterGateTest(GateTestBase):
    gate = CLUSTER_GATE

    def test_good_artifact_passes(self):
        code, out = self.run_on_doc(cluster_doc())
        self.assertEqual(code, 0, out)
        self.assertIn("PASS", out)

    def test_goodput_regression_fails(self):
        doc = cluster_doc()
        doc["scenarios"][3]["goodput"] = 100.0  # below min_goodput
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("goodput", out)

    def test_invariant_violation_fails(self):
        doc = cluster_doc()
        doc["scenarios"][0]["runs"][1]["audit_clean"] = False
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("trace audit", out)

    def test_recorded_pass_must_match_derivation(self):
        doc = cluster_doc()
        doc["scenarios"][2]["runs"][0]["conservation_drift"] = 5
        # The cell still claims pass=True: the gate re-derives and
        # must refuse the hand-edited verdict.
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("disagrees", out)

    def test_malformed_json_fails(self):
        code, out = self.run_on_doc("{not json")
        self.assertEqual(code, 1, out)
        self.assertIn("cannot parse", out)

    def test_missing_field_fails(self):
        doc = cluster_doc()
        del doc["scenarios"][0]["runs"][0]["schedule_hash"]
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("schedule_hash", out)

    def test_truncated_grid_fails(self):
        doc = cluster_doc()
        doc["scenarios"] = doc["scenarios"][:2]  # one workload shape
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("workload shapes", out)

    def test_usage_error_fails(self):
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("usage", out)


class AvailabilityGateTest(GateTestBase):
    gate = AVAIL_GATE

    def test_good_artifact_passes(self):
        code, out = self.run_on_doc(avail_doc())
        self.assertEqual(code, 0, out)
        self.assertIn("PASS", out)

    def test_paxos_stall_regression_fails(self):
        doc = avail_doc()
        for cell in doc["cells"]:
            if cell["protocol"] == "paxos_commit" and cell["outage"] == 5:
                cell["stalled_window_max_s"] = 3.0
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("failover bound", out)

    def test_paxos_manufactured_uncertainty_fails(self):
        doc = avail_doc()
        for cell in doc["cells"]:
            if cell["protocol"] == "paxos_commit" and cell["outage"] == 2:
                cell["uncertain_outputs"] = 1
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("manufactured uncertainty", out)

    def test_missing_cell_fails(self):
        doc = avail_doc()
        doc["cells"] = [c for c in doc["cells"]
                        if not (c["protocol"] == "block" and
                                c["outage"] == 10)]
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("cell missing", out)

    def test_malformed_json_fails(self):
        code, out = self.run_on_doc("]]")
        self.assertEqual(code, 1, out)
        self.assertIn("cannot parse", out)

    def test_bool_masquerading_as_int_fails(self):
        doc = avail_doc()
        doc["cells"][0]["stalled_window_count"] = True
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("stalled_window_count", out)

    def test_usage_error_fails(self):
        code, out = self.run_gate("a.json", "b.json")
        self.assertEqual(code, 1, out)
        self.assertIn("usage", out)


class GeorepGateTest(GateTestBase):
    gate = GEOREP_GATE

    def test_good_artifact_passes(self):
        code, out = self.run_on_doc(georep_doc())
        self.assertEqual(code, 0, out)
        self.assertIn("PASS", out)

    def test_outage_availability_regression_fails(self):
        doc = georep_doc()
        doc["strategies"][0]["outage_availability"] = 0.95
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("survive the region loss", out)

    def test_gap_above_failover_bound_fails(self):
        doc = georep_doc()
        # A 19s silence is outage-scale, not failover-scale.
        doc["strategies"][1]["max_success_gap_s"] = 19.0
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("failover bound", out)

    def test_local_latency_advantage_must_hold(self):
        doc = georep_doc()
        doc["strategies"][0]["pre_loss_p50_ms"] = 100.0
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("faster than primary-read", out)

    def test_audit_violation_fails(self):
        doc = georep_doc()
        doc["strategies"][2]["audit_clean"] = False
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("trace audit", out)

    def test_missing_strategy_fails(self):
        doc = georep_doc()
        doc["strategies"] = doc["strategies"][:2]
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("strategy missing", out)

    def test_recorded_pass_must_match_derivation(self):
        doc = georep_doc()
        doc["strategies"][1]["final_uncertain"] = 3
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("residual uncertainty", out)

    def test_malformed_json_fails(self):
        code, out = self.run_on_doc("{]")
        self.assertEqual(code, 1, out)
        self.assertIn("cannot parse", out)

    def test_bool_masquerading_as_int_fails(self):
        doc = georep_doc()
        doc["strategies"][0]["failovers"] = True
        code, out = self.run_on_doc(doc)
        self.assertEqual(code, 1, out)
        self.assertIn("failovers", out)

    def test_usage_error_fails(self):
        code, out = self.run_gate()
        self.assertEqual(code, 1, out)
        self.assertIn("usage", out)


if __name__ == "__main__":
    unittest.main(verbosity=2)
