#!/usr/bin/env python3
"""CI gate for the cluster chaos soak (bench/bench_cluster.cc).

Validates BENCH_cluster.json against the expected schema, re-checks
every per-cell invariant and regression threshold independently of the
bench's own exit code (a truncated or hand-edited artifact must not
pass), and prints a one-line verdict per scenario.

Usage: bench_cluster_gate.py BENCH_cluster.json
Exit: 0 iff the artifact is well-formed and every scenario passes.
"""

import json
import sys

# Scenario-level aggregate fields (name -> type). Booleans are checked
# as real JSON booleans, not truthy strings.
SCENARIO_FIELDS = {
    "workload": str,
    "chaos": str,
    "key_dist": str,
    "arrival": str,
    "goodput": (int, float),
    "shed_fraction": (int, float),
    "commit_fraction": (int, float),
    "p50_ms": (int, float),
    "p99_ms": (int, float),
    "p999_ms": (int, float),
    "peak_uncertain_items": (int, float),
    "avg_uncertain_items": (int, float),
    "invariants_ok": bool,
    "min_goodput": (int, float),
    "max_p99_ms": (int, float),
    "pass": bool,
    "runs": list,
}

RUN_FIELDS = {
    "seed": int,
    "arrivals": int,
    "rejected_down": int,
    "offered": int,
    "shed": int,
    "committed": int,
    "aborted": int,
    "deadline_exceeded": int,
    "budget_exhausted": int,
    "retries": int,
    "goodput": (int, float),
    "p50_ms": (int, float),
    "p99_ms": (int, float),
    "p999_ms": (int, float),
    "peak_uncertain_items": (int, float),
    "avg_uncertain_items": (int, float),
    "final_uncertain_items": int,
    "polyvalue_installs": int,
    "conservation_drift": int,
    "peak_tracked_clients": int,
    "peak_inflight": int,
    "exactly_once": bool,
    "audit_clean": bool,
    "lockdep_reports": int,
    "schedule_hash": str,
}

MIN_WORKLOADS = 4
MIN_CHAOS = 3


def fail(msg):
    print(f"bench_cluster_gate: FAIL: {msg}", file=sys.stderr)
    return 1


def check_fields(obj, spec, where, errors):
    for field, ftype in spec.items():
        if field not in obj:
            errors.append(f"{where}: missing field '{field}'")
        elif not isinstance(obj[field], ftype):
            errors.append(
                f"{where}: field '{field}' has type "
                f"{type(obj[field]).__name__}")


def main(argv):
    if len(argv) != 2:
        return fail(f"usage: {argv[0]} BENCH_cluster.json")
    try:
        with open(argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot parse {argv[1]}: {e}")

    errors = []
    if doc.get("schema_version") != 1:
        errors.append("schema_version != 1")
    if doc.get("bench") != "bench_cluster":
        errors.append("bench != bench_cluster")
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append("missing config object")
        config = {}
    seeds = config.get("seeds")
    if not isinstance(seeds, list) or len(seeds) < 2:
        errors.append("config.seeds must list >= 2 pinned seeds")
        seeds = []
    if config.get("virtual_clients", 0) < 1_000_000:
        errors.append("config.virtual_clients below the 1M contract")

    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        for e in errors:
            print(f"bench_cluster_gate: {e}", file=sys.stderr)
        return fail("missing scenarios array")

    workloads, chaos_kinds = set(), set()
    all_pass = True
    for i, cell in enumerate(scenarios):
        where = f"scenarios[{i}]"
        check_fields(cell, SCENARIO_FIELDS, where, errors)
        if errors:
            continue
        workloads.add(cell["workload"])
        chaos_kinds.add(cell["chaos"])
        name = f'{cell["workload"]}/{cell["chaos"]}'
        if len(cell["runs"]) != len(seeds):
            errors.append(f"{where}: expected one run per pinned seed")
        for j, run in enumerate(cell["runs"]):
            check_fields(run, RUN_FIELDS, f"{where}.runs[{j}]", errors)
        if errors:
            continue

        # Re-derive the verdict: invariants, then thresholds. The gate
        # must reach the same conclusion as the bench from raw numbers.
        problems = []
        for run in cell["runs"]:
            seed = run["seed"]
            if not run["audit_clean"]:
                problems.append(f"seed {seed}: trace audit violation")
            if run["lockdep_reports"] != 0:
                problems.append(f"seed {seed}: lockdep reports")
            if not run["exactly_once"]:
                problems.append(f"seed {seed}: arrival accounting leak")
            if run["conservation_drift"] != 0:
                problems.append(f"seed {seed}: conservation drift")
            if run["final_uncertain_items"] != 0:
                problems.append(f"seed {seed}: residual uncertainty")
            if (run["arrivals"] != run["rejected_down"] + run["offered"]
                    or run["offered"] != run["shed"] + run["committed"] +
                    run["aborted"] + run["deadline_exceeded"] +
                    run["budget_exhausted"]):
                problems.append(f"seed {seed}: counters do not balance")
        if cell["goodput"] < cell["min_goodput"]:
            problems.append(
                f'goodput {cell["goodput"]:.1f} < floor '
                f'{cell["min_goodput"]:.1f}')
        if cell["p99_ms"] > cell["max_p99_ms"]:
            problems.append(
                f'p99 {cell["p99_ms"]:.1f} ms > ceiling '
                f'{cell["max_p99_ms"]:.1f} ms')
        derived_pass = not problems
        if derived_pass != cell["pass"]:
            problems.append(
                f'recorded pass={cell["pass"]} disagrees with the gate')
        if problems:
            all_pass = False
            print(f"FAIL {name}: " + "; ".join(problems))
        else:
            print(f"ok   {name}: goodput {cell['goodput']:.1f}/s "
                  f"(floor {cell['min_goodput']:.1f}), "
                  f"p99 {cell['p99_ms']:.1f} ms "
                  f"(ceiling {cell['max_p99_ms']:.1f})")

    if len(workloads) < MIN_WORKLOADS:
        errors.append(
            f"only {len(workloads)} workload shapes (need {MIN_WORKLOADS})")
    if len(chaos_kinds) < MIN_CHAOS:
        errors.append(
            f"only {len(chaos_kinds)} chaos scenarios (need {MIN_CHAOS})")
    if doc.get("pass") is not True and all_pass:
        errors.append("document pass flag is not true")

    if errors:
        for e in errors:
            print(f"bench_cluster_gate: {e}", file=sys.stderr)
        return fail(f"{len(errors)} schema error(s)")
    if not all_pass:
        return fail("at least one scenario regressed")
    print(f"bench_cluster_gate: PASS "
          f"({len(scenarios)} scenarios x {len(seeds)} seeds)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
