// Property tests for polyvalues: random update/reduce histories must
// preserve the paper's invariants.
//
// Invariant 1 (§3): the conditions of a polyvalue are complete and
//   disjoint after any sequence of InstallUncertain and Reduce.
// Invariant 2: for any complete outcome assignment, the value selected by
//   a polyvalue equals the value obtained by replaying the updates with
//   outcomes known in advance (linearised ground truth).
// Invariant 3: reduction order does not matter.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/poly/poly_ops.h"
#include "src/poly/polyvalue.h"

namespace polyvalue {
namespace {

class PolyValuePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolyValuePropertyTest, RandomHistoriesStayCompleteAndDisjoint) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    PolyValue current = PolyValue::Certain(Value::Int(0));
    uint64_t next_txn = 1;
    for (int step = 0; step < 6; ++step) {
      const PolyValue computed =
          PolyValue::Certain(Value::Int(rng.NextInt(0, 5)));
      current = PolyValue::InstallUncertain(TxnId(next_txn++), computed,
                                            current);
      ASSERT_TRUE(current.Validate()) << current.ToString();
    }
    // Reduce in random order; invariant must hold at every step.
    std::vector<TxnId> deps = current.Dependencies();
    while (!deps.empty()) {
      const size_t pick = rng.NextBelow(deps.size());
      const TxnId txn = deps[pick];
      current = current.Reduce(txn, rng.NextBool(0.5));
      ASSERT_TRUE(current.Validate()) << current.ToString();
      deps = current.Dependencies();
    }
    EXPECT_TRUE(current.is_certain());
  }
}

TEST_P(PolyValuePropertyTest, ValueUnderMatchesGroundTruthReplay) {
  Rng rng(GetParam() ^ 0xfeed);
  for (int trial = 0; trial < 20; ++trial) {
    // Build a history of uncertain updates.
    struct Update {
      TxnId txn;
      int64_t value;
    };
    std::vector<Update> history;
    PolyValue current = PolyValue::Certain(Value::Int(-1));
    for (int step = 0; step < 5; ++step) {
      Update u{TxnId(step + 1),
               static_cast<int64_t>(rng.NextInt(0, 100))};
      history.push_back(u);
      current = PolyValue::InstallUncertain(
          u.txn, PolyValue::Certain(Value::Int(u.value)), current);
    }
    // Try several random outcome assignments.
    for (int assignment = 0; assignment < 8; ++assignment) {
      std::unordered_map<TxnId, bool> outcomes;
      for (const Update& u : history) {
        outcomes[u.txn] = rng.NextBool(0.5);
      }
      // Ground truth: the last committed update wins; -1 if none did.
      int64_t expected = -1;
      for (const Update& u : history) {
        if (outcomes[u.txn]) {
          expected = u.value;
        }
      }
      const Result<Value> selected = current.ValueUnder(outcomes);
      ASSERT_TRUE(selected.ok());
      EXPECT_EQ(selected.value(), Value::Int(expected));
      // Reduction with the same outcomes must agree.
      const PolyValue reduced = current.ReduceAll(outcomes);
      ASSERT_TRUE(reduced.is_certain());
      EXPECT_EQ(reduced.certain_value(), Value::Int(expected));
    }
  }
}

TEST_P(PolyValuePropertyTest, ReductionOrderIrrelevant) {
  Rng rng(GetParam() ^ 0xc0ffee);
  for (int trial = 0; trial < 20; ++trial) {
    PolyValue current = PolyValue::Certain(Value::Int(0));
    for (int step = 0; step < 5; ++step) {
      current = PolyValue::InstallUncertain(
          TxnId(step + 1),
          PolyValue::Certain(Value::Int(rng.NextInt(0, 3))), current);
    }
    std::unordered_map<TxnId, bool> outcomes;
    for (TxnId txn : current.Dependencies()) {
      outcomes[txn] = rng.NextBool(0.5);
    }
    // Order A: ascending txn id; order B: descending.
    PolyValue forward = current;
    for (auto it = outcomes.begin(); it != outcomes.end(); ++it) {
      forward = forward.Reduce(it->first, it->second);
    }
    PolyValue bulk = current.ReduceAll(outcomes);
    std::vector<TxnId> deps = current.Dependencies();
    PolyValue backward = current;
    for (auto it = deps.rbegin(); it != deps.rend(); ++it) {
      backward = backward.Reduce(*it, outcomes.at(*it));
    }
    EXPECT_EQ(forward, backward);
    EXPECT_EQ(forward, bulk);
  }
}

TEST_P(PolyValuePropertyTest, LiftedArithmeticMatchesPointwise) {
  Rng rng(GetParam() ^ 0xabc);
  for (int trial = 0; trial < 20; ++trial) {
    // Two polyvalues over overlapping transaction sets.
    PolyValue a = PolyValue::Certain(Value::Int(rng.NextInt(0, 9)));
    PolyValue b = PolyValue::Certain(Value::Int(rng.NextInt(0, 9)));
    for (int step = 0; step < 3; ++step) {
      const TxnId txn(rng.NextBelow(4) + 1);
      if (rng.NextBool(0.5)) {
        a = PolyValue::InstallUncertain(
            txn, PolyValue::Certain(Value::Int(rng.NextInt(0, 9))), a);
      } else {
        b = PolyValue::InstallUncertain(
            txn, PolyValue::Certain(Value::Int(rng.NextInt(0, 9))), b);
      }
    }
    const Result<PolyValue> sum = PolyAdd(a, b);
    ASSERT_TRUE(sum.ok());
    ASSERT_TRUE(sum->Validate());
    // Pointwise agreement on random assignments over the union deps.
    std::vector<TxnId> deps = sum->Dependencies();
    for (TxnId dep : a.Dependencies()) {
      deps.push_back(dep);
    }
    for (TxnId dep : b.Dependencies()) {
      deps.push_back(dep);
    }
    for (int assignment = 0; assignment < 8; ++assignment) {
      std::unordered_map<TxnId, bool> outcomes;
      for (TxnId dep : deps) {
        outcomes.emplace(dep, rng.NextBool(0.5));
      }
      const int64_t lhs = sum->ValueUnder(outcomes).value().int_value();
      const int64_t rhs = a.ValueUnder(outcomes).value().int_value() +
                          b.ValueUnder(outcomes).value().int_value();
      EXPECT_EQ(lhs, rhs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyValuePropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace polyvalue
