// BatchingTransport decorator tests: deterministic coalescing with
// FlushAll(), pass-through when disabled, inline flush triggers, the
// flush hook, receive-side unpacking over inners with and without
// native batch support, and the auto-flush thread.
#include "src/net/batching_transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/net/codec.h"
#include "src/net/mem_transport.h"

namespace polyvalue {
namespace {

const SiteId kA(1);
const SiteId kB(2);
const SiteId kC(3);

// Records every Send it is asked to perform; inherits the base-class
// SendBatch (per-packet loop), modelling a transport without native
// batch support.
class RecordingTransport : public Transport {
 public:
  Status Register(SiteId site, Handler handler) override {
    handlers_[site] = std::move(handler);
    return OkStatus();
  }
  Status Unregister(SiteId site) override {
    handlers_.erase(site);
    return OkStatus();
  }
  Status Send(Packet packet) override {
    sent.push_back(packet);
    auto it = handlers_.find(packet.to);
    if (it != handlers_.end()) {
      it->second(std::move(packet));
    }
    return OkStatus();
  }

  std::vector<Packet> sent;

 private:
  std::unordered_map<SiteId, Handler> handlers_;
};

BatchingTransport::Options Manual() {
  BatchingTransport::Options options;
  options.auto_flush = false;
  return options;
}

TEST(BatchingTransportTest, DisabledIsTransparent) {
  RecordingTransport inner;
  BatchingTransport::Options options = Manual();
  options.enabled = false;
  BatchingTransport batching(&inner, options);
  std::vector<std::string> got;
  ASSERT_TRUE(batching
                  .Register(kB, [&got](Packet p) {
                    got.push_back(p.payload);
                  })
                  .ok());
  ASSERT_TRUE(batching.Send({kA, kB, "one"}).ok());
  ASSERT_TRUE(batching.Send({kA, kB, "two"}).ok());
  // No buffering, no frames: the inner transport saw two plain sends.
  ASSERT_EQ(inner.sent.size(), 2u);
  EXPECT_EQ(got, (std::vector<std::string>{"one", "two"}));
  EXPECT_EQ(batching.batched_frames(), 0u);
}

TEST(BatchingTransportTest, CoalescesSameLinkUntilFlushAll) {
  RecordingTransport inner;
  BatchingTransport batching(&inner, Manual());
  std::vector<std::string> got;
  ASSERT_TRUE(batching
                  .Register(kB, [&got](Packet p) {
                    got.push_back(p.payload);
                  })
                  .ok());
  for (const char* payload : {"m1", "m2", "m3"}) {
    ASSERT_TRUE(batching.Send({kA, kB, payload}).ok());
  }
  EXPECT_TRUE(inner.sent.empty());  // buffered, nothing on the wire
  batching.FlushAll();
  // The inner has no native SendBatch, so the base-class fallback
  // expands the batch into per-packet sends — still counted as one
  // coalesced frame by the decorator.
  ASSERT_EQ(inner.sent.size(), 3u);
  EXPECT_EQ(got, (std::vector<std::string>{"m1", "m2", "m3"}));
  EXPECT_EQ(batching.batched_frames(), 1u);
  EXPECT_EQ(batching.packets_coalesced(), 3u);
}

TEST(BatchingTransportTest, DistinctLinksFlushSeparatelyAndInOrder) {
  RecordingTransport inner;
  BatchingTransport batching(&inner, Manual());
  std::vector<std::pair<uint64_t, std::string>> got;
  for (SiteId receiver : {kB, kC}) {
    ASSERT_TRUE(batching
                    .Register(receiver,
                              [&got, receiver](Packet p) {
                                got.emplace_back(receiver.value(),
                                                 p.payload);
                              })
                    .ok());
  }
  ASSERT_TRUE(batching.Send({kA, kC, "c1"}).ok());
  ASSERT_TRUE(batching.Send({kA, kB, "b1"}).ok());
  ASSERT_TRUE(batching.Send({kA, kB, "b2"}).ok());
  batching.FlushAll();
  // Links flush in deterministic (from, to) order; per-link FIFO holds.
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<uint64_t, std::string>{kB.value(), "b1"}));
  EXPECT_EQ(got[1], (std::pair<uint64_t, std::string>{kB.value(), "b2"}));
  EXPECT_EQ(got[2], (std::pair<uint64_t, std::string>{kC.value(), "c1"}));
  // kC's lone packet went as a plain send, kB's pair as one frame.
  EXPECT_EQ(batching.batched_frames(), 1u);
  EXPECT_EQ(batching.packets_coalesced(), 2u);
}

TEST(BatchingTransportTest, MaxBatchTriggersInlineFlush) {
  RecordingTransport inner;
  BatchingTransport::Options options = Manual();
  options.max_batch = 3;
  BatchingTransport batching(&inner, options);
  ASSERT_TRUE(batching.Register(kB, [](Packet) {}).ok());
  ASSERT_TRUE(batching.Send({kA, kB, "1"}).ok());
  ASSERT_TRUE(batching.Send({kA, kB, "2"}).ok());
  EXPECT_TRUE(inner.sent.empty());
  ASSERT_TRUE(batching.Send({kA, kB, "3"}).ok());  // crosses max_batch
  EXPECT_EQ(batching.batched_frames(), 1u);
  EXPECT_EQ(batching.packets_coalesced(), 3u);
}

TEST(BatchingTransportTest, MaxBytesTriggersInlineFlush) {
  RecordingTransport inner;
  BatchingTransport::Options options = Manual();
  options.max_bytes = 10;
  BatchingTransport batching(&inner, options);
  ASSERT_TRUE(batching.Register(kB, [](Packet) {}).ok());
  ASSERT_TRUE(batching.Send({kA, kB, "aaaaaa"}).ok());
  EXPECT_TRUE(inner.sent.empty());
  ASSERT_TRUE(batching.Send({kA, kB, "bbbbbb"}).ok());  // crosses max_bytes
  EXPECT_FALSE(inner.sent.empty());
}

TEST(BatchingTransportTest, FlushHookFiresOnEmptyToNonEmpty) {
  RecordingTransport inner;
  BatchingTransport batching(&inner, Manual());
  int hook_fires = 0;
  batching.set_flush_hook([&hook_fires] { ++hook_fires; });
  ASSERT_TRUE(batching.Register(kB, [](Packet) {}).ok());
  ASSERT_TRUE(batching.Send({kA, kB, "1"}).ok());
  ASSERT_TRUE(batching.Send({kA, kB, "2"}).ok());  // same queue: no refire
  EXPECT_EQ(hook_fires, 1);
  batching.FlushAll();
  ASSERT_TRUE(batching.Send({kA, kB, "3"}).ok());  // empty again: refire
  EXPECT_EQ(hook_fires, 2);
}

TEST(BatchingTransportTest, NativeInnerReceivesOneFrame) {
  // Over MemTransport the frame really is one mailbox handoff; the
  // receive side (native unpacking) hands the handler the original
  // packets.
  MemTransport inner;
  BatchingTransport batching(&inner, Manual());
  Mutex mu;
  std::vector<std::string> got;
  ASSERT_TRUE(batching
                  .Register(kB,
                            [&mu, &got](Packet p) {
                              MutexLock lock(&mu);
                              got.push_back(p.payload);
                            })
                  .ok());
  ASSERT_TRUE(batching.Register(kA, [](Packet) {}).ok());
  for (const char* payload : {"x", "y", "z"}) {
    ASSERT_TRUE(batching.Send({kA, kB, payload}).ok());
  }
  batching.FlushAll();
  for (int i = 0; i < 1000; ++i) {
    {
      MutexLock lock(&mu);
      if (got.size() == 3) {
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  MutexLock lock(&mu);
  EXPECT_EQ(got, (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_EQ(inner.batched_frames(), 1u);
}

TEST(BatchingTransportTest, AutoFlushDrainsWithoutExplicitFlush) {
  MemTransport inner;
  BatchingTransport::Options options;
  options.auto_flush = true;
  options.window_seconds = 0.0005;
  BatchingTransport batching(&inner, options);
  Mutex mu;
  std::vector<std::string> got;
  ASSERT_TRUE(batching
                  .Register(kB,
                            [&mu, &got](Packet p) {
                              MutexLock lock(&mu);
                              got.push_back(p.payload);
                            })
                  .ok());
  ASSERT_TRUE(batching.Register(kA, [](Packet) {}).ok());
  ASSERT_TRUE(batching.Send({kA, kB, "auto1"}).ok());
  ASSERT_TRUE(batching.Send({kA, kB, "auto2"}).ok());
  for (int i = 0; i < 2000; ++i) {
    {
      MutexLock lock(&mu);
      if (got.size() == 2) {
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  MutexLock lock(&mu);
  EXPECT_EQ(got, (std::vector<std::string>{"auto1", "auto2"}));
}

TEST(BatchingTransportTest, DestructorDrainsPendingPackets) {
  RecordingTransport inner;
  {
    BatchingTransport batching(&inner, Manual());
    ASSERT_TRUE(batching.Register(kB, [](Packet) {}).ok());
    ASSERT_TRUE(batching.Send({kA, kB, "late"}).ok());
    EXPECT_TRUE(inner.sent.empty());
  }
  EXPECT_EQ(inner.sent.size(), 1u);
}

}  // namespace
}  // namespace polyvalue
