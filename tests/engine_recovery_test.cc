// Durability tests: WAL-backed sites reconstruct their state — items,
// outcome table, prepared votes, coordinator decisions — across a full
// process restart (site object destroyed and rebuilt from the log).
#include <gtest/gtest.h>

#include <cstdio>

#include "src/obs/audit.h"
#include "src/system/cluster.h"

namespace polyvalue {
namespace {

EngineConfig FastConfig() {
  EngineConfig config;
  config.prepare_timeout = 0.25;
  config.ready_timeout = 0.25;
  config.wait_timeout = 0.05;
  config.inquiry_interval = 0.2;
  config.validate_installs = true;
  return config;
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string base =
        testing::TempDir() + "engine_recovery_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (int i = 0; i < 3; ++i) {
      wal_paths_[i] = base + "_site" + std::to_string(i) + ".wal";
      std::remove(wal_paths_[i].c_str());
    }
    faults_.SetDelayRange(0.01, 0.01);
    transport_ = std::make_unique<SimTransport>(&sim_, &faults_, &rng_);
    transport_->set_trace(&trace_);
    scheduler_ = std::make_unique<SimScheduler>(&sim_);
    for (int i = 0; i < 3; ++i) {
      sites_[i] = MakeSite(i);
      ASSERT_TRUE(sites_[i]->Start().ok());
    }
  }

  void TearDown() override {
    for (int i = 0; i < 3; ++i) {
      sites_[i].reset();
      std::remove(wal_paths_[i].c_str());
    }
  }

  std::unique_ptr<Site> MakeSite(int index) {
    Site::Options options;
    options.engine = FastConfig();
    options.wal_path = wal_paths_[index];
    // The same sink spans every incarnation of every site, so the
    // auditor sees pre-crash decisions when checking post-restart
    // learned outcomes (invariant A3).
    options.trace = &trace_;
    return std::make_unique<Site>(SiteId(index + 1), transport_.get(),
                                  scheduler_.get(), options);
  }

  // Destroys and rebuilds a site from its WAL (full process restart).
  void RestartSiteFromDisk(int index) {
    faults_.SetSiteDown(SiteId(index + 1), true);
    sites_[index].reset();
    sites_[index] = MakeSite(index);
    ASSERT_TRUE(sites_[index]->Start().ok());
    faults_.SetSiteDown(SiteId(index + 1), false);
    sites_[index]->engine().Recover();
  }

  // The full trace — both incarnations of restarted sites — must obey
  // the protocol invariants.
  void ExpectLegalTrace() {
    ASSERT_GT(trace_.size(), 0u);
    const Status audit = TraceAuditor::Check(trace_.Snapshot());
    EXPECT_TRUE(audit.ok()) << audit.message();
  }

  VectorTraceSink trace_;
  Simulator sim_;
  FaultPlan faults_;
  Rng rng_{17};
  std::unique_ptr<SimTransport> transport_;
  std::unique_ptr<SimScheduler> scheduler_;
  std::string wal_paths_[3];
  std::unique_ptr<Site> sites_[3];
};

TEST_F(WalRecoveryTest, CommittedDataSurvivesRestart) {
  sites_[1]->Load("x", Value::Int(1));
  // Loads bypass the WAL; write through a transaction instead.
  TxnSpec spec;
  spec.ReadWrite("x", SiteId(2));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["x"] = Value::Int(reads.IntAt("x") + 41);
    return e;
  });
  std::optional<TxnResult> result;
  sites_[0]->Submit(std::move(spec),
                    [&result](const TxnResult& r) { result = r; });
  sim_.RunUntil(1.0);
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->committed());
  ASSERT_EQ(sites_[1]->Peek("x").value().certain_value(), Value::Int(42));

  RestartSiteFromDisk(1);
  EXPECT_EQ(sites_[1]->Peek("x").value().certain_value(), Value::Int(42));
  ExpectLegalTrace();
}

TEST_F(WalRecoveryTest, PreparedVoteSurvivesRestartAndResolves) {
  sites_[1]->Load("a", Value::Int(100));
  // Give "a" a durable baseline in the WAL via a committed txn.
  TxnSpec init;
  init.ReadWrite("a", SiteId(2));
  init.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["a"] = Value::Int(reads.IntAt("a"));
    return e;
  });
  std::optional<TxnResult> init_result;
  sites_[0]->Submit(std::move(init),
                    [&init_result](const TxnResult& r) { init_result = r; });
  sim_.RunUntil(1.0);
  ASSERT_TRUE(init_result.has_value() && init_result->committed());

  // Strand an update: coordinator site0 crashes after READY votes.
  TxnSpec spec;
  spec.ReadWrite("a", SiteId(2));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["a"] = Value::Int(reads.IntAt("a") - 30);
    return e;
  });
  const TxnId txn =
      sites_[0]->Submit(std::move(spec), [](const TxnResult&) {});
  sim_.At(sim_.now() + 0.035, [this] { sites_[0]->Crash(&faults_); });
  sim_.RunUntil(sim_.now() + 0.042);  // READY voted & logged; crash site1
                                      // before its wait timeout fires
  RestartSiteFromDisk(1);
  sim_.RunUntil(sim_.now() + 0.3);

  // The restarted participant found its prepared vote in the WAL and
  // applied the polyvalue policy to it.
  const PolyValue a = sites_[1]->Peek("a").value();
  ASSERT_FALSE(a.is_certain());
  EXPECT_EQ(a.ValueUnder({{txn, true}}).value(), Value::Int(70));
  EXPECT_EQ(a.ValueUnder({{txn, false}}).value(), Value::Int(100));

  // Coordinator comes back; presumed abort resolves the polyvalue.
  sites_[0]->Recover(&faults_);
  sim_.RunUntil(sim_.now() + 2.0);
  EXPECT_EQ(sites_[1]->Peek("a").value().certain_value(), Value::Int(100));
  ExpectLegalTrace();
}

TEST_F(WalRecoveryTest, CoordinatorDecisionSurvivesRestart) {
  sites_[1]->Load("a", Value::Int(1));
  TxnSpec spec;
  spec.ReadWrite("a", SiteId(2));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["a"] = Value::Int(reads.IntAt("a") + 1);
    return e;
  });
  std::optional<TxnResult> result;
  const TxnId txn = sites_[0]->Submit(
      std::move(spec), [&result](const TxnResult& r) { result = r; });
  sim_.RunUntil(1.0);
  ASSERT_TRUE(result.has_value() && result->committed());

  RestartSiteFromDisk(0);
  EXPECT_EQ(sites_[0]->engine().DecidedOutcome(txn), true);
  ExpectLegalTrace();
}

TEST_F(WalRecoveryTest, UncertainPolyvalueSurvivesRestart) {
  sites_[1]->Load("a", Value::Int(100));
  sites_[2]->Load("b", Value::Int(50));
  TxnSpec spec;
  spec.ReadWrite("a", SiteId(2));
  spec.ReadWrite("b", SiteId(3));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["a"] = Value::Int(reads.IntAt("a") - 30);
    e.writes["b"] = Value::Int(reads.IntAt("b") + 30);
    return e;
  });
  const TxnId txn =
      sites_[0]->Submit(std::move(spec), [](const TxnResult&) {});
  sim_.At(sim_.now() + 0.035, [this] { sites_[0]->Crash(&faults_); });
  sim_.RunUntil(sim_.now() + 0.3);  // wait timeout → polyvalues installed
  ASSERT_FALSE(sites_[1]->Peek("a").value().is_certain());

  // Restart the participant holding the polyvalue: the polyvalue AND its
  // outcome-table tracking must survive, so the inquiry loop resumes.
  RestartSiteFromDisk(1);
  const PolyValue a = sites_[1]->Peek("a").value();
  ASSERT_FALSE(a.is_certain());
  EXPECT_EQ(a.Dependencies(), std::vector<TxnId>{txn});

  sites_[0]->Recover(&faults_);
  sim_.RunUntil(sim_.now() + 2.0);
  EXPECT_EQ(sites_[1]->Peek("a").value().certain_value(), Value::Int(100));
  EXPECT_EQ(sites_[2]->Peek("b").value().certain_value(), Value::Int(50));
  ExpectLegalTrace();
}

}  // namespace
}  // namespace polyvalue
