// Tests for the threaded in-memory transport.
#include "src/net/mem_transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/common/thread_annotations.h"

namespace polyvalue {
namespace {

const SiteId kA(1);
const SiteId kB(2);

TEST(MemTransportTest, DeliversAcrossThreads) {
  MemTransport transport;
  std::atomic<int> got{0};
  std::string payload;
  Mutex mu;
  ASSERT_TRUE(transport.Register(kA, [](Packet) {}).ok());
  ASSERT_TRUE(transport
                  .Register(kB,
                            [&](Packet p) {
                              MutexLock lock(&mu);
                              payload = p.payload;
                              ++got;
                            })
                  .ok());
  ASSERT_TRUE(transport.Send({kA, kB, "ping"}).ok());
  transport.Flush();
  EXPECT_EQ(got.load(), 1);
  MutexLock lock(&mu);
  EXPECT_EQ(payload, "ping");
}

TEST(MemTransportTest, ManyMessagesAllArrive) {
  MemTransport transport;
  std::atomic<int> got{0};
  ASSERT_TRUE(transport.Register(kA, [](Packet) {}).ok());
  ASSERT_TRUE(
      transport.Register(kB, [&](Packet) { ++got; }).ok());
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(transport.Send({kA, kB, "m"}).ok());
  }
  transport.Flush();
  EXPECT_EQ(got.load(), n);
  EXPECT_EQ(transport.packets_delivered(), static_cast<uint64_t>(n));
}

TEST(MemTransportTest, ConcurrentSenders) {
  MemTransport transport;
  std::atomic<int> got{0};
  ASSERT_TRUE(transport.Register(kA, [](Packet) {}).ok());
  ASSERT_TRUE(transport.Register(kB, [&](Packet) { ++got; }).ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&transport] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(transport.Send({kA, kB, "x"}).ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  transport.Flush();
  EXPECT_EQ(got.load(), kThreads * kPerThread);
}

TEST(MemTransportTest, HandlerMaySendReentrantly) {
  MemTransport transport;
  std::atomic<int> pongs{0};
  ASSERT_TRUE(transport
                  .Register(kA,
                            [&](Packet p) {
                              if (p.payload == "pong") {
                                ++pongs;
                              }
                            })
                  .ok());
  ASSERT_TRUE(transport
                  .Register(kB,
                            [&](Packet p) {
                              ASSERT_TRUE(transport
                                              .Send({kB, p.from, "pong"})
                                              .ok());
                            })
                  .ok());
  ASSERT_TRUE(transport.Send({kA, kB, "ping"}).ok());
  transport.Flush();
  EXPECT_EQ(pongs.load(), 1);
}

TEST(MemTransportTest, FaultPlanDropsAndCrashes) {
  FaultPlan faults;
  faults.SetDelayRange(0, 0);
  MemTransport transport(&faults);
  std::atomic<int> got{0};
  ASSERT_TRUE(transport.Register(kA, [](Packet) {}).ok());
  ASSERT_TRUE(transport.Register(kB, [&](Packet) { ++got; }).ok());
  faults.SetSiteDown(kB, true);
  ASSERT_TRUE(transport.Send({kA, kB, "lost"}).ok());
  transport.Flush();
  EXPECT_EQ(got.load(), 0);
  faults.SetSiteDown(kB, false);
  ASSERT_TRUE(transport.Send({kA, kB, "found"}).ok());
  transport.Flush();
  EXPECT_EQ(got.load(), 1);
}

TEST(MemTransportTest, DelayedDeliveryRespectsDeadline) {
  FaultPlan faults;
  faults.SetDelayRange(0.05, 0.05);
  MemTransport transport(&faults);
  std::atomic<int> got{0};
  ASSERT_TRUE(transport.Register(kA, [](Packet) {}).ok());
  ASSERT_TRUE(transport.Register(kB, [&](Packet) { ++got; }).ok());
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(transport.Send({kA, kB, "slow"}).ok());
  transport.Flush();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(got.load(), 1);
  EXPECT_GE(std::chrono::duration<double>(elapsed).count(), 0.045);
}

TEST(MemTransportTest, UnregisterIsCleanWhileTrafficFlows) {
  MemTransport transport;
  ASSERT_TRUE(transport.Register(kA, [](Packet) {}).ok());
  ASSERT_TRUE(transport.Register(kB, [](Packet) {}).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(transport.Send({kA, kB, "x"}).ok());
  }
  EXPECT_TRUE(transport.Unregister(kB).ok());
  // Sends to a gone receiver are dropped, not errors.
  EXPECT_TRUE(transport.Send({kA, kB, "late"}).ok());
}

}  // namespace
}  // namespace polyvalue
