// Tests for the §3.2 access-tracking optimisation: uncertainty in items
// the logic never consults must not multiply executions.
#include <gtest/gtest.h>

#include "src/txn/polytxn.h"

namespace polyvalue {
namespace {

PolyValue TwoWay(TxnId txn, int64_t if_commit, int64_t if_abort) {
  return PolyValue::InstallUncertain(
      txn, PolyValue::Certain(Value::Int(if_commit)),
      PolyValue::Certain(Value::Int(if_abort)));
}

TEST(PolyTxnMemoTest, UntouchedUncertainInputCausesOneExecution) {
  // Four uncertain inputs, logic reads none of them: 16 alternatives,
  // ONE execution.
  std::map<ItemKey, PolyValue> inputs;
  for (int i = 0; i < 4; ++i) {
    inputs.emplace("unused" + std::to_string(i),
                   TwoWay(TxnId(i + 1), i + 1, -(i + 1)));
  }
  const auto result = ExecutePolyTransaction(
      inputs, {},
      [](const TxnReads&) {
        TxnEffect e;
        e.output = Value::Int(42);
        return e;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->alternatives_executed, 1u);
  EXPECT_EQ(result->alternatives_memoized, 15u);
  EXPECT_TRUE(result->output.is_certain());
  EXPECT_EQ(result->output.certain_value(), Value::Int(42));
}

TEST(PolyTxnMemoTest, OnlyTouchedItemsMultiplyExecutions) {
  // Two uncertain inputs; logic reads only one: 4 alternatives, 2
  // executions.
  std::map<ItemKey, PolyValue> inputs = {
      {"read_me", TwoWay(TxnId(1), 10, 20)},
      {"ignore_me", TwoWay(TxnId(2), 1, 2)},
  };
  const auto result = ExecutePolyTransaction(
      inputs, {},
      [](const TxnReads& reads) {
        TxnEffect e;
        e.writes["out"] = Value::Int(reads.IntAt("read_me") * 2);
        return e;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->alternatives_executed, 2u);
  EXPECT_EQ(result->alternatives_memoized, 2u);
  // Output depends only on read_me; uncertainty of T2 does not appear.
  const PolyValue& out = result->writes.at("out");
  EXPECT_EQ(out.Dependencies(), std::vector<TxnId>{TxnId(1)});
  EXPECT_EQ(out.ValueUnder({{TxnId(1), true}}).value(), Value::Int(20));
}

TEST(PolyTxnMemoTest, ConditionalAccessForksOnlyReachedItems) {
  // Logic reads "gate"; only if gate >= 100 does it read "detail". Under
  // gate=50 the detail uncertainty must not fork executions.
  std::map<ItemKey, PolyValue> inputs = {
      {"gate", TwoWay(TxnId(1), 50, 150)},
      {"detail", TwoWay(TxnId(2), 7, 8)},
  };
  const auto result = ExecutePolyTransaction(
      inputs, {},
      [](const TxnReads& reads) {
        TxnEffect e;
        if (reads.IntAt("gate") >= 100) {
          e.writes["out"] = Value::Int(reads.IntAt("detail"));
        } else {
          e.writes["out"] = Value::Int(0);
        }
        return e;
      });
  ASSERT_TRUE(result.ok());
  // Executions: gate=50 (one run covers both detail alternatives) plus
  // gate=150 with detail=7 and detail=8 -> 3 total, 1 memoized.
  EXPECT_EQ(result->alternatives_executed, 3u);
  EXPECT_EQ(result->alternatives_memoized, 1u);
  const PolyValue& out = result->writes.at("out");
  EXPECT_EQ(out.ValueUnder({{TxnId(1), true}, {TxnId(2), true}}).value(),
            Value::Int(0));
  EXPECT_EQ(out.ValueUnder({{TxnId(1), false}, {TxnId(2), true}}).value(),
            Value::Int(7));
  EXPECT_EQ(out.ValueUnder({{TxnId(1), false}, {TxnId(2), false}}).value(),
            Value::Int(8));
  EXPECT_TRUE(out.Validate());
}

TEST(PolyTxnMemoTest, AllReadersStillFullyFork) {
  std::map<ItemKey, PolyValue> inputs = {
      {"a", TwoWay(TxnId(1), 1, 2)},
      {"b", TwoWay(TxnId(2), 10, 20)},
  };
  const auto result = ExecutePolyTransaction(
      inputs, {},
      [](const TxnReads& reads) {
        TxnEffect e;
        e.writes["sum"] = Value::Int(reads.IntAt("a") + reads.IntAt("b"));
        return e;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->alternatives_executed, 4u);
  EXPECT_EQ(result->alternatives_memoized, 0u);
}

TEST(PolyTxnMemoTest, AllIterationMarksEverythingAccessed) {
  std::map<ItemKey, PolyValue> inputs = {
      {"a", TwoWay(TxnId(1), 1, 2)},
      {"b", TwoWay(TxnId(2), 10, 20)},
  };
  const auto result = ExecutePolyTransaction(
      inputs, {},
      [](const TxnReads& reads) {
        TxnEffect e;
        int64_t sum = 0;
        for (const auto& [key, value] : reads.All()) {
          sum += value.int_value();
        }
        e.writes["sum"] = Value::Int(sum);
        return e;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->alternatives_executed, 4u);
  // Correct sums per combination.
  EXPECT_EQ(result->writes.at("sum")
                .ValueUnder({{TxnId(1), false}, {TxnId(2), false}})
                .value(),
            Value::Int(22));
}

TEST(PolyTxnMemoTest, HasIsTracked) {
  std::map<ItemKey, PolyValue> inputs = {
      {"probe", TwoWay(TxnId(1), 1, 2)},
  };
  // Logic only calls Has(): existence is the same under every
  // alternative, so results merge to certain — but tracking must still
  // treat the item as consulted (its value *could* have differed had the
  // key been value-dependent; Has is conservative).
  const auto result = ExecutePolyTransaction(
      inputs, {},
      [](const TxnReads& reads) {
        TxnEffect e;
        e.output = Value::Bool(reads.Has("probe"));
        return e;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->alternatives_executed, 2u);
  EXPECT_TRUE(result->output.is_certain());
}

}  // namespace
}  // namespace polyvalue
