// Network partition scenarios: unlike a crash, both halves keep running.
// The paper's availability goal: "the failure of a site should not
// indefinitely delay any transaction that does not access data stored at
// that site" — partitions are the harder version (nobody failed, the
// network did).
#include <gtest/gtest.h>

#include "src/obs/audit.h"
#include "src/system/cluster.h"

namespace polyvalue {
namespace {

EngineConfig FastConfig() {
  EngineConfig config;
  config.prepare_timeout = 0.25;
  config.ready_timeout = 0.25;
  config.wait_timeout = 0.05;
  config.inquiry_interval = 0.2;
  config.validate_installs = true;
  return config;
}

SimCluster::Options ClusterOptions() {
  SimCluster::Options options;
  options.site_count = 4;
  options.engine = FastConfig();
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  return options;
}

TxnSpec Transfer(const ItemKey& from, SiteId from_site, const ItemKey& to,
                 SiteId to_site, int64_t amount) {
  TxnSpec spec;
  spec.ReadWrite(from, from_site);
  spec.ReadWrite(to, to_site);
  spec.Logic([from, to, amount](const TxnReads& reads) {
    TxnEffect e;
    e.writes[from] = Value::Int(reads.IntAt(from) - amount);
    e.writes[to] = Value::Int(reads.IntAt(to) + amount);
    return e;
  });
  return spec;
}

TEST(PartitionTest, EachSideKeepsProcessingLocalTraffic) {
  VectorTraceSink trace;
  SimCluster::Options options = ClusterOptions();
  options.trace = &trace;
  SimCluster cluster(options);
  cluster.Load(0, "a0", Value::Int(100));
  cluster.Load(1, "a1", Value::Int(100));
  cluster.Load(2, "a2", Value::Int(100));
  cluster.Load(3, "a3", Value::Int(100));
  cluster.faults().Partition(
      {cluster.site_id(0), cluster.site_id(1)},
      {cluster.site_id(2), cluster.site_id(3)});

  // Side A: 0 <-> 1 transfer works.
  auto result = cluster.SubmitAndRun(
      0, Transfer("a0", cluster.site_id(0), "a1", cluster.site_id(1), 10));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  // Side B: 2 <-> 3 transfer works.
  result = cluster.SubmitAndRun(
      2, Transfer("a2", cluster.site_id(2), "a3", cluster.site_id(3), 10));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  // Cross-partition transfer aborts (prepare timeout), harming nothing.
  result = cluster.SubmitAndRun(
      0, Transfer("a0", cluster.site_id(0), "a2", cluster.site_id(2), 10));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->committed());
  cluster.RunFor(1.0);
  EXPECT_EQ(cluster.site(0).store().locked_count(), 0u);
  // Even with the partition still up, the path taken was legal and the
  // in-doubt window the cross-cut abort opened has drained.
  const Status audit = TraceAuditor::Check(trace.Snapshot());
  EXPECT_TRUE(audit.ok()) << audit.message();
}

TEST(PartitionTest, PartitionDuringCommitStrandsThenHeals) {
  VectorTraceSink trace;
  SimCluster::Options options = ClusterOptions();
  options.trace = &trace;
  SimCluster cluster(options);
  cluster.Load(1, "a", Value::Int(100));
  cluster.Load(2, "b", Value::Int(50));
  std::optional<TxnResult> result;
  cluster.Submit(
      0, Transfer("a", cluster.site_id(1), "b", cluster.site_id(2), 30),
      [&result](const TxnResult& r) { result = r; });
  // Cut the coordinator off from everyone between READY (sent ~0.03) and
  // COMPLETE (sent ~0.04).
  cluster.sim().At(0.035, [&cluster] {
    cluster.faults().Partition(
        {cluster.site_id(0)},
        {cluster.site_id(1), cluster.site_id(2), cluster.site_id(3)});
  });
  cluster.RunFor(0.3);
  // The coordinator decided COMMIT (it got the READYs) and told the
  // client, but the COMPLETEs were cut: participants hold polyvalues.
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  EXPECT_FALSE(cluster.site(1).Peek("a").value().is_certain());
  EXPECT_FALSE(cluster.site(2).Peek("b").value().is_certain());
  // The items stay available meanwhile (site 3 queries site 1).
  TxnSpec query;
  query.Read("a", cluster.site_id(1));
  query.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.output = Value::Bool(reads.IntAt("a") > 0);
    return e;
  });
  const auto q = cluster.SubmitAndRun(3, std::move(query));
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->committed());
  EXPECT_EQ(q->output.certain_value(), Value::Bool(true));
  // Heal: inquiry reaches the coordinator; COMMIT propagates.
  cluster.faults().HealLinks();
  cluster.RunFor(2.0);
  EXPECT_EQ(cluster.site(1).Peek("a").value().certain_value(),
            Value::Int(70));
  EXPECT_EQ(cluster.site(2).Peek("b").value().certain_value(),
            Value::Int(80));
  EXPECT_EQ(cluster.TotalUncertainItems(), 0u);
  const Status audit = TraceAuditor::Check(trace.Snapshot());
  EXPECT_TRUE(audit.ok()) << audit.message();
}

TEST(PartitionTest, AsymmetricInDoubtAcrossTheCut) {
  // Participants land on both sides of the cut: the side with the
  // coordinator completes normally, the other side goes polyvalue.
  VectorTraceSink trace;
  SimCluster::Options options = ClusterOptions();
  options.trace = &trace;
  SimCluster cluster(options);
  cluster.Load(1, "a", Value::Int(100));
  cluster.Load(2, "b", Value::Int(50));
  std::optional<TxnResult> result;
  cluster.Submit(
      0, Transfer("a", cluster.site_id(1), "b", cluster.site_id(2), 30),
      [&result](const TxnResult& r) { result = r; });
  cluster.sim().At(0.035, [&cluster] {
    cluster.faults().Partition(
        {cluster.site_id(0), cluster.site_id(1)},
        {cluster.site_id(2), cluster.site_id(3)});
  });
  cluster.RunFor(0.3);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  // Same side as coordinator: COMPLETE arrived.
  EXPECT_EQ(cluster.site(1).Peek("a").value().certain_value(),
            Value::Int(70));
  // Far side: in doubt, polyvalue.
  EXPECT_FALSE(cluster.site(2).Peek("b").value().is_certain());
  cluster.faults().HealLinks();
  cluster.RunFor(2.0);
  EXPECT_EQ(cluster.site(2).Peek("b").value().certain_value(),
            Value::Int(80));
  const Status audit = TraceAuditor::Check(trace.Snapshot());
  EXPECT_TRUE(audit.ok()) << audit.message();
}

TEST(PartitionTest, FlappingPartitionConvergesAfterFinalHeal) {
  VectorTraceSink trace;
  SimCluster::Options options = ClusterOptions();
  options.trace = &trace;
  SimCluster cluster(options);
  for (int s = 0; s < 4; ++s) {
    cluster.Load(s, "k" + std::to_string(s), Value::Int(100));
  }
  Rng rng(99);
  // Random cross-site transfers under a partition that opens and closes
  // every second.
  int submitted = 0;
  std::function<void()> pump = [&] {
    if (cluster.sim().now() > 10.0) {
      return;
    }
    cluster.sim().After(rng.NextExponential(1.0 / 20.0), [&] {
      pump();
      const size_t c = rng.NextBelow(4);
      const size_t f = rng.NextBelow(4);
      size_t t = (f + 1 + rng.NextBelow(3)) % 4;
      ++submitted;
      cluster.Submit(c,
                     Transfer("k" + std::to_string(f), cluster.site_id(f),
                              "k" + std::to_string(t), cluster.site_id(t),
                              1),
                     [](const TxnResult&) {});
    });
  };
  pump();
  for (double t = 1.0; t < 10.0; t += 2.0) {
    cluster.sim().At(t, [&cluster] {
      cluster.faults().Partition(
          {cluster.site_id(0), cluster.site_id(1)},
          {cluster.site_id(2), cluster.site_id(3)});
    });
    cluster.sim().At(t + 1.0,
                     [&cluster] { cluster.faults().HealLinks(); });
  }
  cluster.RunFor(12.0);
  cluster.faults().HealLinks();
  cluster.RunFor(20.0);
  ASSERT_GT(submitted, 100);
  EXPECT_EQ(cluster.TotalUncertainItems(), 0u);
  int64_t total = 0;
  for (int s = 0; s < 4; ++s) {
    cluster.site(s).store().ForEach(
        [&total](const ItemKey&, const PolyValue& v) {
          ASSERT_TRUE(v.is_certain());
          total += v.certain_value().int_value();
        });
  }
  EXPECT_EQ(total, 400);
  ASSERT_GT(trace.size(), 0u);
  const Status audit = TraceAuditor::Check(trace.Snapshot());
  EXPECT_TRUE(audit.ok()) << audit.message();
}

// --- Paxos Commit under partitions -----------------------------------
//
// The protocol's whole point: a cut that strands the ballot-0 leader
// must not strand the decision. Once the RMs have voted at a majority
// of acceptors, any standby on the majority side can finish the commit.

SimCluster::Options PaxosClusterOptions() {
  SimCluster::Options options = ClusterOptions();
  options.engine.leg = ProtocolLeg::kPaxosCommit;
  options.engine.paxos_failover_timeout = 0.15;
  return options;
}

TEST(PartitionTest, PaxosMajoritySideFinishesAfterLeaderCut) {
  VectorTraceSink trace;
  SimCluster::Options options = PaxosClusterOptions();
  options.trace = &trace;
  SimCluster cluster(options);
  cluster.Load(1, "a", Value::Int(100));
  cluster.Load(2, "b", Value::Int(50));
  std::optional<TxnResult> result;
  const TxnId txn = cluster.Submit(
      0, Transfer("a", cluster.site_id(1), "b", cluster.site_id(2), 30),
      [&result](const TxnResult& r) { result = r; });
  // With the fixed 0.01 delay, both RMs broadcast Phase2a at t=0.03;
  // the acceptors accept at t=0.04 and echo Phase2b back. Cut the
  // leader away at t=0.035 — after the vote broadcasts left the wire
  // (in-flight messages still deliver; the cut blocks sends), before
  // the echoes are sent: votes are durable at a majority, the tally is
  // not.
  cluster.sim().At(0.035, [&cluster] {
    cluster.faults().Partition(
        {cluster.site_id(0)},
        {cluster.site_id(1), cluster.site_id(2), cluster.site_id(3)});
  });
  cluster.RunFor(3.0);

  // The majority side failed over and committed without the leader.
  for (size_t i : {size_t{1}, size_t{2}}) {
    SCOPED_TRACE(i);
    const std::optional<bool> outcome = cluster.site(i).DecidedOutcome(txn);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_TRUE(*outcome);
  }
  EXPECT_EQ(cluster.site(1).Peek("a").value().certain_value(),
            Value::Int(70));
  EXPECT_EQ(cluster.site(2).Peek("b").value().certain_value(),
            Value::Int(80));
  // The client, stranded with the leader, has heard nothing yet.
  EXPECT_FALSE(result.has_value());

  // Heal: the leader's escalating recovery ballots reach a decided
  // acceptor, which short-circuits with the outcome; the client finally
  // hears COMMIT — the same decision, never a contradictory one.
  cluster.faults().HealLinks();
  cluster.RunFor(3.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  EXPECT_EQ(cluster.site(0).DecidedOutcome(txn), true);
  const Status audit = TraceAuditor::Check(trace.Snapshot());
  EXPECT_TRUE(audit.ok()) << audit.message();
}

TEST(PartitionTest, PaxosCutBeforeVotesAbortsAndDrainsClean) {
  VectorTraceSink trace;
  SimCluster::Options options = PaxosClusterOptions();
  options.trace = &trace;
  SimCluster cluster(options);
  cluster.Load(1, "a", Value::Int(100));
  cluster.Load(2, "b", Value::Int(50));
  std::optional<TxnResult> result;
  const TxnId txn = cluster.Submit(
      0, Transfer("a", cluster.site_id(1), "b", cluster.site_id(2), 30),
      [&result](const TxnResult& r) { result = r; });
  // Cut at t=0.005: the prepares (sent at t=0) are in flight and still
  // land, but every reply is blocked. No RM ever votes, so the leader
  // times out collecting and the only safe outcome is abort — which
  // must not leave a lock or a prepared record anywhere.
  cluster.sim().At(0.005, [&cluster] {
    cluster.faults().Partition(
        {cluster.site_id(0)},
        {cluster.site_id(1), cluster.site_id(2), cluster.site_id(3)});
  });
  cluster.RunFor(3.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->committed());
  EXPECT_EQ(cluster.site(0).DecidedOutcome(txn), false);
  cluster.faults().HealLinks();
  cluster.RunFor(3.0);
  EXPECT_EQ(cluster.site(1).Peek("a").value().certain_value(),
            Value::Int(100));
  EXPECT_EQ(cluster.site(2).Peek("b").value().certain_value(),
            Value::Int(50));
  for (size_t i = 0; i < cluster.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(cluster.site(i).store().locked_count(), 0u);
  }
  const Status audit = TraceAuditor::Check(trace.Snapshot());
  EXPECT_TRUE(audit.ok()) << audit.message();
}

}  // namespace
}  // namespace polyvalue
