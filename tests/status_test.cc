// Unit tests for Status / Result.
#include "src/common/status.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = AbortedError("lock conflict");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(s.message(), "lock conflict");
  EXPECT_EQ(s.ToString(), "ABORTED: lock conflict");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(TimedOutError("").code(), StatusCode::kTimedOut);
  EXPECT_EQ(UncertainError("").code(), StatusCode::kUncertain);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(AbortedError("x"), AbortedError("x"));
  EXPECT_FALSE(AbortedError("x") == AbortedError("y"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(3);
  EXPECT_EQ(r.value_or(-1), 3);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

namespace helpers {

Status FailsWhen(bool fail) {
  if (fail) {
    return AbortedError("asked to");
  }
  return OkStatus();
}

Status UsesReturnIfError(bool fail, bool* reached_end) {
  POLYV_RETURN_IF_ERROR(FailsWhen(fail));
  *reached_end = true;
  return OkStatus();
}

Result<int> ParsePositive(int x) {
  if (x <= 0) {
    return InvalidArgumentError("not positive");
  }
  return x;
}

Result<int> UsesAssignOrReturn(int x) {
  POLYV_ASSIGN_OR_RETURN(int parsed, ParsePositive(x));
  POLYV_ASSIGN_OR_RETURN(int doubled, ParsePositive(parsed * 2));
  return doubled;
}

}  // namespace helpers

TEST(MacroTest, ReturnIfErrorPropagates) {
  bool reached = false;
  EXPECT_FALSE(helpers::UsesReturnIfError(true, &reached).ok());
  EXPECT_FALSE(reached);
  EXPECT_TRUE(helpers::UsesReturnIfError(false, &reached).ok());
  EXPECT_TRUE(reached);
}

TEST(MacroTest, AssignOrReturnUnwrapsAndPropagates) {
  const Result<int> ok = helpers::UsesAssignOrReturn(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 8);
  EXPECT_FALSE(helpers::UsesAssignOrReturn(-1).ok());
}

}  // namespace
}  // namespace polyvalue
