// Error-path coverage for the condition text parser: malformed
// predicates, truncated input, numeric-range edges, and the
// operator-precedence corners where '·' binds tighter than '+'. Every
// rejection must come back as INVALID_ARGUMENT with a position-bearing
// message — parse errors are caller errors, never crashes — and the CI
// ASan/UBSan job runs this binary to prove the error paths are clean
// under sanitizers too (no leaks from partially built conditions, no
// out-of-bounds peeks on truncated text).
#include "src/condition/parser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/ids.h"

namespace polyvalue {
namespace {

// Every malformed input must yield INVALID_ARGUMENT (not a crash, not
// some other code) and carry an offset in its message.
void ExpectRejected(const std::string& text) {
  const Result<Condition> result = ParseCondition(text);
  ASSERT_FALSE(result.ok()) << "'" << text << "' unexpectedly parsed";
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << "'" << text << "'";
  EXPECT_NE(result.status().message().find("offset"), std::string::npos)
      << "parse error for '" << text
      << "' lacks a position: " << result.status().message();
}

TEST(ParserErrorTest, EmptyAndWhitespaceOnly) {
  ExpectRejected("");
  ExpectRejected("   ");
  ExpectRejected("\t\n");
}

TEST(ParserErrorTest, MalformedPredicates) {
  ExpectRejected("X1");        // unknown variable prefix
  ExpectRejected("T");         // 'T' with no digits
  ExpectRejected("Tx");        // non-numeric id
  ExpectRejected("1T");        // digits before the prefix
  ExpectRejected("T-1");       // negative id
  ExpectRejected("T1.");       // dot with no seq digits
  ExpectRejected("T.5");       // dot with no site digits
  ExpectRejected("T1..2");     // double dot
  ExpectRejected("truee");     // trailing garbage on a keyword
  ExpectRejected("True");      // keywords are case-sensitive
  ExpectRejected("FALSE");
}

TEST(ParserErrorTest, TruncatedInput) {
  // Every proper prefix of a valid expression that ends mid-production
  // must be rejected, never read past the end of the buffer.
  const std::string valid = "T1·¬T2 + T3.7";
  ASSERT_TRUE(ParseCondition(valid).ok());
  ExpectRejected("T1 +");      // sum missing its right operand
  ExpectRejected("T1 &");      // product missing its right operand
  ExpectRejected("T1 & !");    // negation with nothing to negate
  ExpectRejected("!");         // lone negation
  ExpectRejected("¬");         // lone negation (multibyte form)
  ExpectRejected("T1 + T2 &"); // truncated inside the second term
}

TEST(ParserErrorTest, ByteLevelTruncationNeverCrashes) {
  // Chop a valid multibyte expression at every byte boundary: each
  // prefix either parses (when it happens to end on a production
  // boundary) or is cleanly rejected. Splitting the UTF-8 '·' or '¬'
  // mid-sequence must not trip the parser (exercised under ASan).
  const std::string valid = "T1·¬T2 + T3.7·!T4";
  for (size_t len = 0; len < valid.size(); ++len) {
    const std::string prefix = valid.substr(0, len);
    const Result<Condition> result = ParseCondition(prefix);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << "prefix len " << len;
    }
  }
}

TEST(ParserErrorTest, TrailingGarbage) {
  ExpectRejected("T1 T2");     // adjacency is not an operator
  ExpectRejected("T1 )");
  ExpectRejected("true T1");   // constants must stand alone
  ExpectRejected("false + T1");
  ExpectRejected("T1 # comment");
}

TEST(ParserErrorTest, NumericRangeEdges) {
  // Raw ids: 64-bit overflow must be caught, not wrapped.
  ExpectRejected("T99999999999999999999");   // > UINT64_MAX
  ExpectRejected("T18446744073709551615");   // TxnId::kInvalid (~0)
  // site.seq form: each half has a hard bit budget.
  ExpectRejected("T99999999999999999999.1");
  const uint64_t site_limit = 1ULL << (64 - kTxnSiteShift);
  const uint64_t seq_limit = 1ULL << kTxnSiteShift;
  ExpectRejected("T" + std::to_string(site_limit) + ".1");
  ExpectRejected("T1." + std::to_string(seq_limit));
  // All-ones site.seq IS kInvalid and must be refused...
  ExpectRejected("T" + std::to_string(site_limit - 1) + "." +
                 std::to_string(seq_limit - 1));
  // ...but one below it is representable and parses.
  EXPECT_TRUE(ParseCondition("T" + std::to_string(site_limit - 1) + "." +
                             std::to_string(seq_limit - 2))
                  .ok());
}

TEST(ParserErrorTest, PrecedenceEdges) {
  // '·' binds tighter than '+': T1·T2 + T3 is (T1∧T2) ∨ T3. If the
  // parser got the binding backwards it would produce T1∧(T2∨T3),
  // which differs on the assignment T1=1, T2=0, T3=1.
  const Condition tight = ParseCondition("T1·T2 + T3").value();
  const Condition grouped =
      Condition::Or(Condition::And(Condition::Committed(TxnId(1)),
                                   Condition::Committed(TxnId(2))),
                    Condition::Committed(TxnId(3)));
  EXPECT_EQ(tight, grouped);

  // Negation binds tighter than both: !T1·T2 is (¬T1)∧T2, and
  // !T1 + T2 is (¬T1)∨T2.
  EXPECT_EQ(ParseCondition("!T1·T2").value(),
            Condition::And(Condition::Aborted(TxnId(1)),
                           Condition::Committed(TxnId(2))));
  EXPECT_EQ(ParseCondition("!T1 + T2").value(),
            Condition::Or(Condition::Aborted(TxnId(1)),
                          Condition::Committed(TxnId(2))));

  // Mixed ASCII/Unicode operator spellings inside one expression keep
  // the same precedence.
  EXPECT_EQ(ParseCondition("T1·T2 & T3 * T4").value(),
            ParseCondition("T1 & T2 & T3 & T4").value());

  // A dangling high-precedence operator after a complete sum is still
  // truncation, wherever it sits.
  ExpectRejected("T1 + T2 ·");
  ExpectRejected("· T1");
  ExpectRejected("+ T1");
}

TEST(ParserErrorTest, ErrorsDoNotDependOnSurvivingState) {
  // A rejected parse must leave nothing behind that corrupts later
  // parses (the parser is stateless by construction; this pins it).
  ExpectRejected("T1 &");
  const Result<Condition> ok = ParseCondition("T1 & T2");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(),
            Condition::And(Condition::Committed(TxnId(1)),
                           Condition::Committed(TxnId(2))));
}

}  // namespace
}  // namespace polyvalue
