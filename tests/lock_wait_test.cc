// Tests for wait-die lock queuing (LockWaitPolicy::kWaitDie).
#include <gtest/gtest.h>

#include "src/store/item_store.h"
#include "src/system/cluster.h"

namespace polyvalue {
namespace {

// --- store-level unit tests ---

TEST(LockOrQueueTest, GrantsFreeItem) {
  ItemStore store;
  EXPECT_EQ(store.LockOrQueue("k", TxnId(5)),
            ItemStore::LockAttempt::kGranted);
  EXPECT_EQ(store.LockHolder("k"), TxnId(5));
}

TEST(LockOrQueueTest, ReentrantGrant) {
  ItemStore store;
  ASSERT_EQ(store.LockOrQueue("k", TxnId(5)),
            ItemStore::LockAttempt::kGranted);
  EXPECT_EQ(store.LockOrQueue("k", TxnId(5)),
            ItemStore::LockAttempt::kGranted);
}

TEST(LockOrQueueTest, OlderWaitsYoungerDies) {
  ItemStore store;
  ASSERT_EQ(store.LockOrQueue("k", TxnId(10)),
            ItemStore::LockAttempt::kGranted);
  // Older (smaller id) requester queues.
  EXPECT_EQ(store.LockOrQueue("k", TxnId(3)),
            ItemStore::LockAttempt::kQueued);
  // Younger (larger id) requester dies.
  EXPECT_EQ(store.LockOrQueue("k", TxnId(20)),
            ItemStore::LockAttempt::kRefused);
}

TEST(LockOrQueueTest, UnlockGrantsEldestWaiter) {
  ItemStore store;
  ASSERT_EQ(store.LockOrQueue("k", TxnId(10)),
            ItemStore::LockAttempt::kGranted);
  ASSERT_EQ(store.LockOrQueue("k", TxnId(7)),
            ItemStore::LockAttempt::kQueued);
  ASSERT_EQ(store.LockOrQueue("k", TxnId(3)),
            ItemStore::LockAttempt::kQueued);
  const auto grants = store.UnlockAll(TxnId(10));
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].txn, TxnId(3));  // eldest first
  EXPECT_EQ(grants[0].key, "k");
  EXPECT_EQ(store.LockHolder("k"), TxnId(3));
  // T7 still queued behind T3.
  const auto grants2 = store.UnlockAll(TxnId(3));
  ASSERT_EQ(grants2.size(), 1u);
  EXPECT_EQ(grants2[0].txn, TxnId(7));
}

TEST(LockOrQueueTest, CancelWaitsRemovesQueueEntry) {
  ItemStore store;
  ASSERT_EQ(store.LockOrQueue("k", TxnId(10)),
            ItemStore::LockAttempt::kGranted);
  ASSERT_EQ(store.LockOrQueue("k", TxnId(3)),
            ItemStore::LockAttempt::kQueued);
  store.CancelWaits(TxnId(3));
  const auto grants = store.UnlockAll(TxnId(10));
  EXPECT_TRUE(grants.empty());
  EXPECT_FALSE(store.LockHolder("k").has_value());
}

TEST(LockOrQueueTest, UnlockAllAlsoDropsOwnQueuedWaits) {
  ItemStore store;
  ASSERT_EQ(store.LockOrQueue("a", TxnId(10)),
            ItemStore::LockAttempt::kGranted);
  ASSERT_EQ(store.LockOrQueue("b", TxnId(3)),
            ItemStore::LockAttempt::kGranted);
  // T3 holds b and waits for a (older than 10? 3 < 10 yes).
  ASSERT_EQ(store.LockOrQueue("a", TxnId(3)),
            ItemStore::LockAttempt::kQueued);
  // T3 goes away entirely.
  (void)store.UnlockAll(TxnId(3));
  const auto grants = store.UnlockAll(TxnId(10));
  EXPECT_TRUE(grants.empty());
}

// --- engine-level integration ---

SimCluster::Options WaitDieOptions() {
  SimCluster::Options options;
  options.site_count = 2;
  options.engine.lock_wait = LockWaitPolicy::kWaitDie;
  options.engine.prepare_timeout = 2.0;
  options.engine.ready_timeout = 2.0;
  options.engine.wait_timeout = 0.1;
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  // Slow the coordinator down so contention windows are wide.
  options.engine.execution_delay = 0.2;
  options.engine.enable_local_fast_path = false;
  return options;
}

TxnSpec Bump(const ItemKey& key, SiteId site) {
  TxnSpec spec;
  spec.ReadWrite(key, site);
  spec.Logic([key](const TxnReads& reads) {
    TxnEffect e;
    e.writes[key] = Value::Int(reads.IntAt(key) + 1);
    return e;
  });
  return spec;
}

TEST(WaitDieEngineTest, ContendingTransactionsBothCommitViaWaiting) {
  SimCluster cluster(WaitDieOptions());
  cluster.Load(1, "hot", Value::Int(0));
  int committed = 0;
  int aborted = 0;
  auto count = [&](const TxnResult& r) {
    r.committed() ? ++committed : ++aborted;
  };
  // First submission gets the smaller (older) id; it is submitted second
  // at the participant? No — both race. Either order, wait-die lets the
  // older one wait and the younger one at worst die; with only two txns
  // and 0.2 s execution, the older waits for the younger's locks... the
  // YOUNGER holds only if it arrived first. Submit older first so it
  // acquires, younger dies OR submit so older waits: both cases must
  // conserve the counter; at least one commits immediately.
  cluster.Submit(0, Bump("hot", cluster.site_id(1)), count);
  cluster.Submit(0, Bump("hot", cluster.site_id(1)), count);
  cluster.RunFor(10.0);
  EXPECT_EQ(committed + aborted, 2);
  EXPECT_GE(committed, 1);
  EXPECT_EQ(cluster.site(1).Peek("hot").value().certain_value(),
            Value::Int(committed));
  EXPECT_EQ(cluster.site(1).store().locked_count(), 0u);
}

TEST(WaitDieEngineTest, OlderTransactionWaitsAndCommits) {
  SimCluster cluster(WaitDieOptions());
  cluster.Load(1, "hot", Value::Int(0));
  int committed = 0;
  auto count = [&committed](const TxnResult& r) {
    if (r.committed()) {
      ++committed;
    }
  };
  // Allocate the OLDER id first but submit it second, so the younger
  // transaction holds the lock when the older one arrives -> queue.
  TxnEngine& engine = cluster.site(0).engine();
  const TxnId older = engine.AllocateTxnId();
  const TxnId younger = engine.AllocateTxnId();
  engine.Submit(Bump("hot", cluster.site_id(1)), count, younger);
  cluster.RunFor(0.05);  // younger holds the lock, still executing
  engine.Submit(Bump("hot", cluster.site_id(1)), count, older);
  cluster.RunFor(10.0);
  // Both commit: the older waited for the younger to finish.
  EXPECT_EQ(committed, 2);
  EXPECT_EQ(cluster.site(1).Peek("hot").value().certain_value(),
            Value::Int(2));
  const EngineMetrics m = cluster.site(1).engine().metrics();
  EXPECT_GE(m.lock_waits, 1u);
  EXPECT_GE(m.lock_wait_resumes, 1u);
}

TEST(WaitDieEngineTest, YoungerTransactionStillDies) {
  SimCluster cluster(WaitDieOptions());
  cluster.Load(1, "hot", Value::Int(0));
  std::optional<TxnResult> younger_result;
  TxnEngine& engine = cluster.site(0).engine();
  const TxnId older = engine.AllocateTxnId();
  const TxnId younger = engine.AllocateTxnId();
  engine.Submit(Bump("hot", cluster.site_id(1)), [](const TxnResult&) {},
                older);
  cluster.RunFor(0.05);  // older holds the lock
  engine.Submit(Bump("hot", cluster.site_id(1)),
                [&younger_result](const TxnResult& r) {
                  younger_result = r;
                },
                younger);
  cluster.RunFor(0.2);
  ASSERT_TRUE(younger_result.has_value());
  EXPECT_FALSE(younger_result->committed());
}

TEST(WaitDieEngineTest, ChaosStyleContentionConserves) {
  SimCluster::Options options = WaitDieOptions();
  options.site_count = 3;
  options.engine.execution_delay = 0.1;  // long holds: heavy contention
  SimCluster cluster(options);
  for (int a = 0; a < 3; ++a) {
    cluster.Load(1, "acct" + std::to_string(a), Value::Int(100));
  }
  Rng rng(42);
  int completed = 0;
  std::function<void()> pump = [&] {
    if (cluster.sim().now() > 15.0) {
      return;
    }
    cluster.sim().After(rng.NextExponential(1.0 / 40.0), [&] {
      pump();
      const int from = rng.NextBelow(3);
      int to = rng.NextBelow(3);
      if (to == from) {
        to = (to + 1) % 3;
      }
      TxnSpec spec;
      const ItemKey from_key = "acct" + std::to_string(from);
      const ItemKey to_key = "acct" + std::to_string(to);
      spec.ReadWrite(from_key, cluster.site_id(1));
      spec.ReadWrite(to_key, cluster.site_id(1));
      spec.Logic([from_key, to_key](const TxnReads& reads) {
        TxnEffect e;
        e.writes[from_key] = Value::Int(reads.IntAt(from_key) - 1);
        e.writes[to_key] = Value::Int(reads.IntAt(to_key) + 1);
        return e;
      });
      cluster.Submit(rng.NextBelow(3), std::move(spec),
                     [&completed](const TxnResult&) { ++completed; });
    });
  };
  pump();
  cluster.RunFor(30.0);
  EXPECT_GT(completed, 100);
  int64_t total = 0;
  for (int a = 0; a < 3; ++a) {
    const PolyValue v =
        cluster.site(1).Peek("acct" + std::to_string(a)).value();
    ASSERT_TRUE(v.is_certain());
    total += v.certain_value().int_value();
  }
  EXPECT_EQ(total, 300);
  EXPECT_EQ(cluster.site(1).store().locked_count(), 0u);
  EXPECT_GT(cluster.TotalMetrics().lock_waits, 0u);
}

}  // namespace
}  // namespace polyvalue

namespace polyvalue {
namespace {

TEST(WaitDieEngineTest, ParkedWaiterResumesWhenHolderStrandsIntoPolyvalue) {
  // The two mechanisms composed: an older transaction queues behind a
  // younger holder; the younger holder's coordinator crashes in the
  // in-doubt window, so the polyvalue policy installs {new if T; old if
  // ¬T} and RELEASES the locks — which must wake the parked waiter, whose
  // transaction then commits as a polytransaction over the uncertainty.
  SimCluster::Options options;
  options.site_count = 3;
  options.engine.lock_wait = LockWaitPolicy::kWaitDie;
  options.engine.prepare_timeout = 5.0;
  options.engine.ready_timeout = 5.0;
  options.engine.wait_timeout = 0.1;
  options.engine.inquiry_interval = 0.2;
  options.engine.validate_installs = true;
  options.engine.enable_local_fast_path = false;
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  SimCluster cluster(options);
  cluster.Load(1, "hot", Value::Int(100));

  // Reserve the OLDER id at site 3's engine... ids must satisfy
  // older < younger; site 2 coordinates the younger holder.
  TxnEngine& old_coord = cluster.site(0).engine();   // SiteId 1: low ids
  TxnEngine& young_coord = cluster.site(2).engine(); // SiteId 3: high ids
  const TxnId older = old_coord.AllocateTxnId();
  const TxnId younger = young_coord.AllocateTxnId();
  ASSERT_LT(older, younger);

  auto bump = [&](int64_t delta) {
    TxnSpec spec;
    spec.ReadWrite("hot", cluster.site_id(1));
    spec.Logic([delta](const TxnReads& reads) {
      TxnEffect e;
      e.writes["hot"] = Value::Int(reads.IntAt("hot") + delta);
      return e;
    });
    return spec;
  };

  // Younger holder first; crash its coordinator in the in-doubt window.
  young_coord.Submit(bump(-30), [](const TxnResult&) {}, younger);
  cluster.sim().At(0.035, [&cluster] { cluster.CrashSite(2); });
  cluster.RunFor(0.06);  // younger voted READY, holds the lock, in doubt

  // Older arrives and must park (wait-die: older waits).
  std::optional<TxnResult> older_result;
  old_coord.Submit(bump(+1),
                   [&older_result](const TxnResult& r) {
                     older_result = r;
                   },
                   older);
  cluster.RunFor(0.02);
  EXPECT_FALSE(older_result.has_value());
  EXPECT_GE(cluster.site(1).engine().metrics().lock_waits, 1u);

  // The wait timeout fires (~t=0.14): polyvalues install, locks release,
  // the parked prepare resumes, and the older txn commits as a
  // polytransaction.
  cluster.RunFor(2.0);
  ASSERT_TRUE(older_result.has_value());
  EXPECT_TRUE(older_result->committed());
  const PolyValue hot = cluster.site(1).Peek("hot").value();
  ASSERT_FALSE(hot.is_certain());
  EXPECT_EQ(hot.ValueUnder({{younger, true}}).value(), Value::Int(71));
  EXPECT_EQ(hot.ValueUnder({{younger, false}}).value(), Value::Int(101));
  EXPECT_GE(cluster.site(1).engine().metrics().lock_wait_resumes, 1u);
  EXPECT_GE(cluster.TotalMetrics().polytxns, 1u);

  // Recovery resolves everything (presumed abort for the younger).
  cluster.RecoverSite(2);
  cluster.RunFor(3.0);
  EXPECT_EQ(cluster.site(1).Peek("hot").value().certain_value(),
            Value::Int(101));
}

}  // namespace
}  // namespace polyvalue

namespace polyvalue {
namespace {

TEST(WaitDieEngineTest, WorksUnderRealThreads) {
  ThreadCluster::Options options;
  options.site_count = 2;
  options.engine.lock_wait = LockWaitPolicy::kWaitDie;
  options.engine.prepare_timeout = 2.0;
  options.engine.ready_timeout = 2.0;
  ThreadCluster cluster(options);
  cluster.Load(1, "hot", Value::Int(0));
  std::atomic<int> committed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&cluster, &committed] {
      for (int attempt = 0; attempt < 30; ++attempt) {
        TxnSpec spec;
        spec.ReadWrite("hot", cluster.site_id(1));
        spec.Logic([](const TxnReads& reads) {
          TxnEffect e;
          e.writes["hot"] = Value::Int(reads.IntAt("hot") + 1);
          return e;
        });
        const auto result = cluster.SubmitAndWait(0, std::move(spec));
        if (result.has_value() && result->committed()) {
          ++committed;
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  EXPECT_EQ(committed.load(), 6);
  for (int i = 0; i < 200; ++i) {
    const auto v = cluster.site(1).Peek("hot");
    if (v.ok() && v.value().is_certain() &&
        v.value().certain_value() == Value::Int(6)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(cluster.site(1).Peek("hot").value().certain_value(),
            Value::Int(6));
  EXPECT_EQ(cluster.site(1).store().locked_count(), 0u);
}

}  // namespace
}  // namespace polyvalue
