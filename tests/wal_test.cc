// Unit tests for the write-ahead log: round trips, torn-tail tolerance,
// corruption detection, and site-state recovery.
#include "src/store/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/store/recovery.h"

namespace polyvalue {
namespace {

const TxnId kT1(1);
const TxnId kT2(2);
const SiteId kS1(1);

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "wal_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

PolyValue SamplePoly() {
  return PolyValue::InstallUncertain(kT1,
                                     PolyValue::Certain(Value::Int(10)),
                                     PolyValue::Certain(Value::Int(20)));
}

TEST_F(WalTest, EmptyFileReplaysEmpty) {
  const auto records = Wal::ReplayFile(path_);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST_F(WalTest, AppendAndReplayAllRecordTypes) {
  {
    auto wal = Wal::Open(path_).value();
    ASSERT_TRUE(wal->Append(WalRecord::Write("k", SamplePoly())).ok());
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(kT1, true)).ok());
    ASSERT_TRUE(wal->Append(WalRecord::TrackItem(kT2, "k")).ok());
    ASSERT_TRUE(wal->Append(WalRecord::TrackSite(kT2, kS1)).ok());
    ASSERT_TRUE(wal->Append(WalRecord::UntrackItem(kT2, "k")).ok());
    ASSERT_TRUE(wal->Append(WalRecord::ForgetTxn(kT2)).ok());
    ASSERT_TRUE(wal->Append(
                       WalRecord::Prepared(kT2, kS1,
                                           {{"k", SamplePoly()}}))
                    .ok());
    ASSERT_TRUE(wal->Append(WalRecord::PreparedResolved(kT2)).ok());
    EXPECT_EQ(wal->records_appended(), 8u);
  }
  const auto records = Wal::ReplayFile(path_).value();
  ASSERT_EQ(records.size(), 8u);
  EXPECT_EQ(records[0].type, WalRecordType::kWrite);
  EXPECT_EQ(records[0].key, "k");
  EXPECT_EQ(records[0].value, SamplePoly());
  EXPECT_EQ(records[1].type, WalRecordType::kOutcome);
  EXPECT_TRUE(records[1].committed);
  EXPECT_EQ(records[2].type, WalRecordType::kTrackItem);
  EXPECT_EQ(records[3].site, kS1);
  EXPECT_EQ(records[6].type, WalRecordType::kPrepared);
  EXPECT_EQ(records[6].writes.at("k"), SamplePoly());
  EXPECT_EQ(records[7].type, WalRecordType::kPreparedResolved);
}

TEST_F(WalTest, AppendAcrossReopens) {
  {
    auto wal = Wal::Open(path_).value();
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(kT1, true)).ok());
  }
  {
    auto wal = Wal::Open(path_).value();
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(kT2, false)).ok());
  }
  const auto records = Wal::ReplayFile(path_).value();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].txn, kT1);
  EXPECT_EQ(records[1].txn, kT2);
}

TEST_F(WalTest, TornTailIsDroppedSilently) {
  {
    auto wal = Wal::Open(path_).value();
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(kT1, true)).ok());
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(kT2, false)).ok());
  }
  // Truncate mid-way through the last record.
  std::ifstream in(path_, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(data.data(), data.size() - 3);
  out.close();

  const auto records = Wal::ReplayFile(path_).value();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].txn, kT1);
}

TEST_F(WalTest, MidFileCorruptionIsDataLoss) {
  {
    auto wal = Wal::Open(path_).value();
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(kT1, true)).ok());
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(kT2, false)).ok());
  }
  // Flip a byte inside the FIRST record's body.
  std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(9);
  char byte;
  file.seekg(9);
  file.get(byte);
  byte ^= 0x40;
  file.seekp(9);
  file.put(byte);
  file.close();

  const auto records = Wal::ReplayFile(path_);
  EXPECT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kDataLoss);
}

TEST_F(WalTest, RecoverSiteStateRebuildsStores) {
  {
    auto wal = Wal::Open(path_).value();
    ASSERT_TRUE(wal->Append(WalRecord::Write("a", SamplePoly())).ok());
    ASSERT_TRUE(wal->Append(WalRecord::TrackItem(kT1, "a")).ok());
    ASSERT_TRUE(wal->Append(WalRecord::TrackSite(kT1, kS1)).ok());
    ASSERT_TRUE(
        wal->Append(WalRecord::Write("b", PolyValue::Certain(Value::Int(9))))
            .ok());
  }
  ItemStore items;
  OutcomeTable outcomes;
  const auto records = Wal::ReplayFile(path_).value();
  ASSERT_TRUE(RecoverSiteState(records, &items, &outcomes).ok());
  EXPECT_EQ(items.Read("a").value(), SamplePoly());
  EXPECT_EQ(items.Read("b").value().certain_value(), Value::Int(9));
  EXPECT_TRUE(outcomes.IsTracking(kT1));
  const auto entry = outcomes.EntryFor(kT1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->dependent_items.count("a"), 1u);
  EXPECT_EQ(entry->downstream_sites.count(kS1), 1u);
}

TEST_F(WalTest, RecoveryAppliesReductionsInOrder) {
  {
    auto wal = Wal::Open(path_).value();
    ASSERT_TRUE(wal->Append(WalRecord::Write("a", SamplePoly())).ok());
    ASSERT_TRUE(wal->Append(WalRecord::TrackItem(kT1, "a")).ok());
    // The site learned the outcome and wrote the reduced value before the
    // crash.
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(kT1, true)).ok());
    ASSERT_TRUE(
        wal->Append(
               WalRecord::Write("a", PolyValue::Certain(Value::Int(10))))
            .ok());
  }
  ItemStore items;
  OutcomeTable outcomes;
  ASSERT_TRUE(RecoverSiteState(Wal::ReplayFile(path_).value(), &items,
                               &outcomes)
                  .ok());
  EXPECT_EQ(items.Read("a").value().certain_value(), Value::Int(10));
  EXPECT_FALSE(outcomes.IsTracking(kT1));
  EXPECT_EQ(outcomes.KnownOutcome(kT1), true);
}

TEST_F(WalTest, SyncSucceeds) {
  auto wal = Wal::Open(path_, /*sync_every_append=*/true).value();
  EXPECT_TRUE(wal->Append(WalRecord::Outcome(kT1, true)).ok());
  EXPECT_TRUE(wal->Sync().ok());
}

}  // namespace
}  // namespace polyvalue
