// Short-horizon cluster soak for tier-1 CTest: the bench_cluster grid
// compressed to seconds. Every cell drives mixed transaction shapes
// from >= 100k virtual clients through the serving front door while a
// chaos schedule runs, then asserts the full correctness battery:
//
//   * TraceAuditor invariants A1-A8 over the complete protocol trace
//     (quiescent form: uncertainty drains, submits terminate);
//   * lockdep stays silent;
//   * exactly-once arrival accounting — every generated arrival ends in
//     exactly one of {rejected_down, shed, committed, aborted,
//     deadline_exceeded, budget_exhausted} and no callback is lost;
//   * conservation — final total balance equals initial plus committed
//     increment deltas, and nothing stays uncertain after healing.
//
// The long-horizon version of this grid (hours of sim-time, regression
// thresholds, JSON artifact) lives in bench/bench_cluster.cc; this test
// keeps the same invariants in every `ctest` run.
#include <gtest/gtest.h>

#include "src/common/lockdep.h"
#include "src/obs/audit.h"
#include "src/obs/trace.h"
#include "src/workload/driver.h"

namespace polyvalue {
namespace {

struct SoakCase {
  const char* name;
  KeyDistKind key_dist;
  ArrivalCurveKind arrival;
  MixParams (*mix)();
  bool flap_coordinator;
  bool rolling_outage;
  double drop_probability;
};

class ClusterSoakTest : public ::testing::TestWithParam<SoakCase> {};

TEST_P(ClusterSoakTest, InvariantsHoldUnderChaos) {
  const SoakCase& c = GetParam();
  VectorTraceSink trace;

  ClusterWorkloadParams params;
  params.sites = 4;
  params.keys = 128;
  params.virtual_clients = 150000;  // >= 100k contract
  params.key_dist.kind = c.key_dist;
  params.arrival.kind = c.arrival;
  params.arrival.rate = 80.0;
  params.arrival.diurnal_period = 10.0;
  params.arrival.herd_interval = 4.0;
  params.mix = c.mix();
  params.duration = 20.0;
  params.settle_time = 6.0;
  params.deadline = 0.5;
  params.svc.admission.rate_limit = 100.0;
  params.svc.admission.max_inflight = 48;
  params.seed = 20260808;
  params.trace = &trace;

  const int lockdep_before = lockdep::ReportCount();
  ClusterWorkload wl(params);
  SimCluster& cluster = wl.cluster();
  if (c.flap_coordinator) {
    cluster.sim().At(5.0, [&cluster] { cluster.CrashSite(0); });
    cluster.sim().At(8.0, [&cluster] { cluster.RecoverSite(0); });
    cluster.sim().At(13.0, [&cluster] { cluster.CrashSite(0); });
    cluster.sim().At(16.0, [&cluster] { cluster.RecoverSite(0); });
  }
  if (c.rolling_outage) {
    for (size_t s = 0; s < 4; ++s) {
      const double down = 3.0 + 4.0 * static_cast<double>(s);
      cluster.sim().At(down, [&cluster, s] { cluster.CrashSite(s); });
      cluster.sim().At(down + 2.5,
                       [&cluster, s] { cluster.RecoverSite(s); });
    }
  }
  if (c.drop_probability > 0.0) {
    cluster.faults().SetDropProbability(c.drop_probability);
  }

  const ClusterWorkloadReport report = wl.Run();
  SCOPED_TRACE(report.Summary());

  // The run actually exercised the system.
  ASSERT_GT(report.arrivals, 1000u);
  EXPECT_GT(report.committed, report.arrivals / 3);

  // Exactly-once arrival accounting.
  EXPECT_TRUE(report.ExactlyOnce());
  EXPECT_EQ(report.unsettled, 0u);

  // Conservation and post-heal certainty.
  EXPECT_EQ(report.conservation_drift, 0);
  EXPECT_EQ(report.final_uncertain_items, 0u);

  // Protocol-trace invariants A1-A8, quiescent form.
  const Status audit = TraceAuditor::Check(trace.Snapshot(),
                                           {/*expect_quiescent=*/true});
  EXPECT_TRUE(audit.ok()) << audit.message();

  // No lock-order reports anywhere in the run.
  EXPECT_EQ(lockdep::ReportCount(), lockdep_before);

  // O(in-flight) footprint: tracked clients stay within the admission
  // concurrency cap (+1 for the arrival being admitted), nowhere near
  // the 150k population.
  EXPECT_LE(report.peak_tracked_clients,
            params.svc.admission.max_inflight + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ClusterSoakTest,
    ::testing::Values(
        // Every mix under a coordinator flap.
        SoakCase{"read_heavy_flap", KeyDistKind::kZipfian,
                 ArrivalCurveKind::kPoisson, &ReadHeavyMix, true, false,
                 0.0},
        SoakCase{"write_heavy_flap", KeyDistKind::kUniform,
                 ArrivalCurveKind::kConstant, &WriteHeavyMix, true, false,
                 0.0},
        SoakCase{"increment_heavy_flap", KeyDistKind::kHotSet,
                 ArrivalCurveKind::kHerd, &IncrementHeavyMix, true, false,
                 0.0},
        SoakCase{"multi_site_flap", KeyDistKind::kZipfian,
                 ArrivalCurveKind::kDiurnal, &MultiSiteMix, true, false,
                 0.0},
        // Rolling outages and a lossy network on the widest mix.
        SoakCase{"multi_site_rolling", KeyDistKind::kZipfian,
                 ArrivalCurveKind::kPoisson, &MultiSiteMix, false, true,
                 0.0},
        SoakCase{"multi_site_lossy", KeyDistKind::kZipfian,
                 ArrivalCurveKind::kPoisson, &MultiSiteMix, false, false,
                 0.03},
        // Everything at once.
        SoakCase{"write_heavy_flap_lossy", KeyDistKind::kUniform,
                 ArrivalCurveKind::kHerd, &WriteHeavyMix, true, false,
                 0.02}),
    [](const ::testing::TestParamInfo<SoakCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace polyvalue
