// Unit tests for the §3.3 outcome table.
#include "src/store/outcome_table.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

const TxnId kT1(1);
const TxnId kT2(2);
const SiteId kS1(1);
const SiteId kS2(2);

TEST(OutcomeTableTest, TracksDependentItems) {
  OutcomeTable table;
  table.RecordDependentItem(kT1, "a");
  table.RecordDependentItem(kT1, "b");
  table.RecordDependentItem(kT1, "a");  // duplicate
  EXPECT_TRUE(table.IsTracking(kT1));
  const auto entry = table.EntryFor(kT1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->dependent_items.size(), 2u);
}

TEST(OutcomeTableTest, LearnOutcomeReturnsWorkAndForgets) {
  OutcomeTable table;
  table.RecordDependentItem(kT1, "a");
  table.RecordDownstreamSite(kT1, kS1);
  table.RecordDownstreamSite(kT1, kS2);
  const auto res = table.LearnOutcome(kT1, true);
  EXPECT_FALSE(res.already_known);
  EXPECT_TRUE(res.committed);
  EXPECT_EQ(res.items_to_reduce, std::vector<ItemKey>{"a"});
  EXPECT_EQ(res.sites_to_notify.size(), 2u);
  // Entry deleted, outcome cached.
  EXPECT_FALSE(table.IsTracking(kT1));
  EXPECT_EQ(table.KnownOutcome(kT1), true);
}

TEST(OutcomeTableTest, LearnOutcomeIdempotent) {
  OutcomeTable table;
  table.RecordDependentItem(kT1, "a");
  (void)table.LearnOutcome(kT1, false);
  const auto res = table.LearnOutcome(kT1, true);  // conflicting duplicate
  EXPECT_TRUE(res.already_known);
  EXPECT_FALSE(res.committed);  // the first answer sticks
  EXPECT_TRUE(res.items_to_reduce.empty());
}

TEST(OutcomeTableTest, ForgetDependentItemKeepsEntry) {
  OutcomeTable table;
  table.RecordDependentItem(kT1, "a");
  table.RecordDownstreamSite(kT1, kS1);
  table.ForgetDependentItem(kT1, "a");
  // Still tracked: downstream sites are still owed the outcome.
  EXPECT_TRUE(table.IsTracking(kT1));
  const auto res = table.LearnOutcome(kT1, true);
  EXPECT_TRUE(res.items_to_reduce.empty());
  EXPECT_EQ(res.sites_to_notify, std::vector<SiteId>{kS1});
}

TEST(OutcomeTableTest, UnknownTransactionsSorted) {
  OutcomeTable table;
  table.RecordDependentItem(kT2, "x");
  table.RecordDependentItem(kT1, "y");
  const auto unknown = table.UnknownTransactions();
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], kT1);
  EXPECT_EQ(unknown[1], kT2);
  EXPECT_EQ(table.tracked_count(), 2u);
}

TEST(OutcomeTableTest, KnownOutcomeUnknownReturnsNullopt) {
  OutcomeTable table;
  EXPECT_FALSE(table.KnownOutcome(kT1).has_value());
}

TEST(OutcomeTableTest, ResolvedCacheEvictsFifo) {
  OutcomeTable table(/*resolved_cache_capacity=*/2);
  (void)table.LearnOutcome(TxnId(1), true);
  (void)table.LearnOutcome(TxnId(2), true);
  (void)table.LearnOutcome(TxnId(3), false);
  EXPECT_FALSE(table.KnownOutcome(TxnId(1)).has_value());  // evicted
  EXPECT_TRUE(table.KnownOutcome(TxnId(2)).has_value());
  EXPECT_TRUE(table.KnownOutcome(TxnId(3)).has_value());
}

TEST(OutcomeTableTest, LearnWithNoEntryStillCaches) {
  OutcomeTable table;
  const auto res = table.LearnOutcome(kT1, true);
  EXPECT_FALSE(res.already_known);
  EXPECT_TRUE(res.items_to_reduce.empty());
  EXPECT_TRUE(res.sites_to_notify.empty());
  EXPECT_EQ(table.KnownOutcome(kT1), true);
}

}  // namespace
}  // namespace polyvalue
