// Tests for the TCP loopback transport.
#include "src/net/tcp_transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/common/thread_annotations.h"

namespace polyvalue {
namespace {

const SiteId kA(1);
const SiteId kB(2);

// Waits until `predicate` holds or ~2 seconds pass.
template <typename Pred>
bool WaitFor(Pred predicate) {
  for (int i = 0; i < 400; ++i) {
    if (predicate()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

TEST(TcpTransportTest, EndpointsGetPorts) {
  TcpTransport transport;
  ASSERT_TRUE(transport.Register(kA, [](Packet) {}).ok());
  ASSERT_TRUE(transport.Register(kB, [](Packet) {}).ok());
  EXPECT_NE(transport.PortOf(kA), 0);
  EXPECT_NE(transport.PortOf(kB), 0);
  EXPECT_NE(transport.PortOf(kA), transport.PortOf(kB));
}

TEST(TcpTransportTest, RoundTripOverRealSockets) {
  TcpTransport transport;
  std::atomic<int> got{0};
  Mutex mu;
  Packet last;
  ASSERT_TRUE(transport.Register(kA, [](Packet) {}).ok());
  ASSERT_TRUE(transport
                  .Register(kB,
                            [&](Packet p) {
                              MutexLock lock(&mu);
                              last = p;
                              ++got;
                            })
                  .ok());
  ASSERT_TRUE(transport.Send({kA, kB, "over tcp"}).ok());
  ASSERT_TRUE(WaitFor([&] { return got.load() == 1; }));
  MutexLock lock(&mu);
  EXPECT_EQ(last.payload, "over tcp");
  EXPECT_EQ(last.from, kA);
  EXPECT_EQ(last.to, kB);
}

TEST(TcpTransportTest, ManyFramesInOrderOverOneConnection) {
  TcpTransport transport;
  Mutex mu;
  std::vector<std::string> payloads;
  ASSERT_TRUE(transport.Register(kA, [](Packet) {}).ok());
  ASSERT_TRUE(transport
                  .Register(kB,
                            [&](Packet p) {
                              MutexLock lock(&mu);
                              payloads.push_back(p.payload);
                            })
                  .ok());
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(transport.Send({kA, kB, std::to_string(i)}).ok());
  }
  ASSERT_TRUE(WaitFor([&] {
    MutexLock lock(&mu);
    return payloads.size() == static_cast<size_t>(n);
  }));
  MutexLock lock(&mu);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(payloads[i], std::to_string(i));
  }
}

TEST(TcpTransportTest, LargePayload) {
  TcpTransport transport;
  std::atomic<bool> got{false};
  std::string received;
  Mutex mu;
  const std::string big(1 << 20, 'z');  // 1 MiB frame
  ASSERT_TRUE(transport.Register(kA, [](Packet) {}).ok());
  ASSERT_TRUE(transport
                  .Register(kB,
                            [&](Packet p) {
                              MutexLock lock(&mu);
                              received = p.payload;
                              got = true;
                            })
                  .ok());
  ASSERT_TRUE(transport.Send({kA, kB, big}).ok());
  ASSERT_TRUE(WaitFor([&] { return got.load(); }));
  MutexLock lock(&mu);
  EXPECT_EQ(received.size(), big.size());
  EXPECT_EQ(received, big);
}

TEST(TcpTransportTest, BidirectionalTraffic) {
  TcpTransport transport;
  std::atomic<int> a_got{0};
  std::atomic<int> b_got{0};
  ASSERT_TRUE(transport.Register(kA, [&](Packet) { ++a_got; }).ok());
  ASSERT_TRUE(transport.Register(kB, [&](Packet) { ++b_got; }).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(transport.Send({kA, kB, "ab"}).ok());
    ASSERT_TRUE(transport.Send({kB, kA, "ba"}).ok());
  }
  EXPECT_TRUE(WaitFor([&] { return a_got == 50 && b_got == 50; }));
}

TEST(TcpTransportTest, SendToUnknownSiteIsLostNotFatal) {
  TcpTransport transport;
  ASSERT_TRUE(transport.Register(kA, [](Packet) {}).ok());
  EXPECT_TRUE(transport.Send({kA, SiteId(99), "void"}).ok());
}

TEST(TcpTransportTest, UnregisteredSenderRejected) {
  TcpTransport transport;
  EXPECT_FALSE(transport.Send({kA, kB, "x"}).ok());
}

TEST(TcpTransportTest, UnregisterThenTrafficContinuesElsewhere) {
  TcpTransport transport;
  std::atomic<int> got{0};
  ASSERT_TRUE(transport.Register(kA, [](Packet) {}).ok());
  ASSERT_TRUE(transport.Register(kB, [&](Packet) { ++got; }).ok());
  ASSERT_TRUE(transport.Send({kA, kB, "1"}).ok());
  ASSERT_TRUE(WaitFor([&] { return got.load() == 1; }));
  ASSERT_TRUE(transport.Unregister(kB).ok());
  EXPECT_TRUE(transport.Send({kA, kB, "2"}).ok());  // dropped quietly
  const SiteId kC(3);
  std::atomic<int> c_got{0};
  ASSERT_TRUE(transport.Register(kC, [&](Packet) { ++c_got; }).ok());
  ASSERT_TRUE(transport.Send({kA, kC, "3"}).ok());
  EXPECT_TRUE(WaitFor([&] { return c_got.load() == 1; }));
}

}  // namespace
}  // namespace polyvalue
