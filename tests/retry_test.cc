// Tests for the retrying client helper.
#include "src/system/retry.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

TxnSpec Increment(const ItemKey& key, SiteId site) {
  TxnSpec spec;
  spec.ReadWrite(key, site);
  spec.Logic([key](const TxnReads& reads) {
    TxnEffect e;
    e.writes[key] = Value::Int(reads.IntAt(key) + 1);
    return e;
  });
  return spec;
}

TEST(RetryTest, SucceedsFirstTryWhenUncontended) {
  SimCluster::Options options;
  options.site_count = 2;
  SimCluster cluster(options);
  cluster.Load(1, "x", Value::Int(0));
  const auto result = RunWithRetries(&cluster, 0, [&cluster] {
    return Increment("x", cluster.site_id(1));
  });
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
}

TEST(RetryTest, RetriesThroughLockConflicts) {
  SimCluster::Options options;
  options.site_count = 2;
  options.engine.wait_timeout = 0.05;
  SimCluster cluster(options);
  cluster.Load(1, "hot", Value::Int(0));
  // Fire several increments into the cluster back to back; each retried
  // client must eventually land.
  int landed = 0;
  for (int i = 0; i < 5; ++i) {
    const auto result = RunWithRetries(&cluster, 0, [&cluster] {
      return Increment("hot", cluster.site_id(1));
    });
    if (result.has_value() && result->committed()) {
      ++landed;
    }
    cluster.RunFor(0.1);
  }
  EXPECT_EQ(landed, 5);
  EXPECT_EQ(cluster.site(1).Peek("hot").value().certain_value(),
            Value::Int(5));
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  SimCluster::Options options;
  options.site_count = 2;
  SimCluster cluster(options);
  // Missing item: every attempt aborts.
  RetryPolicy policy;
  policy.max_attempts = 3;
  TxnSpec probe;
  const auto result = RunWithRetries(
      &cluster, 0,
      [&cluster] {
        TxnSpec spec;
        spec.Read("missing", cluster.site_id(1));
        spec.Logic([](const TxnReads&) { return TxnEffect{}; });
        return spec;
      },
      policy);
  EXPECT_FALSE(result.has_value());
}

TEST(RetryTest, ThreadedVariantWorks) {
  ThreadCluster::Options options;
  options.site_count = 2;
  options.engine.prepare_timeout = 1.0;
  options.engine.ready_timeout = 1.0;
  ThreadCluster cluster(options);
  cluster.Load(1, "x", Value::Int(41));
  const auto result = RunWithRetries(&cluster, 0, [&cluster] {
    return Increment("x", cluster.site_id(1));
  });
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
}

}  // namespace
}  // namespace polyvalue
