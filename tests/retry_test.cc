// Tests for the retrying client helper.
#include "src/system/retry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace polyvalue {
namespace {

TxnSpec Increment(const ItemKey& key, SiteId site) {
  TxnSpec spec;
  spec.ReadWrite(key, site);
  spec.Logic([key](const TxnReads& reads) {
    TxnEffect e;
    e.writes[key] = Value::Int(reads.IntAt(key) + 1);
    return e;
  });
  return spec;
}

TEST(RetryTest, SucceedsFirstTryWhenUncontended) {
  SimCluster::Options options;
  options.site_count = 2;
  SimCluster cluster(options);
  cluster.Load(1, "x", Value::Int(0));
  const auto result = RunWithRetries(&cluster, 0, [&cluster] {
    return Increment("x", cluster.site_id(1));
  });
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
}

TEST(RetryTest, RetriesThroughLockConflicts) {
  SimCluster::Options options;
  options.site_count = 2;
  options.engine.wait_timeout = 0.05;
  SimCluster cluster(options);
  cluster.Load(1, "hot", Value::Int(0));
  // Fire several increments into the cluster back to back; each retried
  // client must eventually land.
  int landed = 0;
  for (int i = 0; i < 5; ++i) {
    const auto result = RunWithRetries(&cluster, 0, [&cluster] {
      return Increment("hot", cluster.site_id(1));
    });
    if (result.has_value() && result->committed()) {
      ++landed;
    }
    cluster.RunFor(0.1);
  }
  EXPECT_EQ(landed, 5);
  EXPECT_EQ(cluster.site(1).Peek("hot").value().certain_value(),
            Value::Int(5));
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  SimCluster::Options options;
  options.site_count = 2;
  SimCluster cluster(options);
  // Missing item: every attempt aborts.
  RetryPolicy policy;
  policy.max_attempts = 3;
  TxnSpec probe;
  const auto result = RunWithRetries(
      &cluster, 0,
      [&cluster] {
        TxnSpec spec;
        spec.Read("missing", cluster.site_id(1));
        spec.Logic([](const TxnReads&) { return TxnEffect{}; });
        return spec;
      },
      policy);
  EXPECT_FALSE(result.has_value());
}

TEST(RetryTest, ThreadedVariantWorks) {
  ThreadCluster::Options options;
  options.site_count = 2;
  options.engine.prepare_timeout = 1.0;
  options.engine.ready_timeout = 1.0;
  ThreadCluster cluster(options);
  cluster.Load(1, "x", Value::Int(41));
  const auto result = RunWithRetries(&cluster, 0, [&cluster] {
    return Increment("x", cluster.site_id(1));
  });
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
}

// ----------------------------------------------------------------
// Decorrelated jitter
// ----------------------------------------------------------------

TEST(RetryJitterTest, StepStaysWithinBounds) {
  Rng rng(1);
  const double base = 0.02;
  const double cap = 0.5;
  double prev = base;
  for (int i = 0; i < 1000; ++i) {
    prev = DecorrelatedJitterBackoff(&rng, base, cap, prev);
    EXPECT_GE(prev, base);
    EXPECT_LE(prev, cap);
  }
}

TEST(RetryJitterTest, LegacyModeIsDeterministicExponential) {
  RetryPolicy policy;
  policy.decorrelated_jitter = false;
  policy.initial_backoff = 0.02;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = 0.1;
  Rng rng(7);
  EXPECT_DOUBLE_EQ(NextBackoff(policy, &rng, 0.02), 0.04);
  EXPECT_DOUBLE_EQ(NextBackoff(policy, &rng, 0.04), 0.08);
  EXPECT_DOUBLE_EQ(NextBackoff(policy, &rng, 0.08), 0.1);  // capped
  EXPECT_DOUBLE_EQ(NextBackoff(policy, &rng, 0.1), 0.1);
}

TEST(RetryJitterTest, SeedsDecorrelateStreams) {
  const double base = 0.02;
  const double cap = 0.5;
  Rng rng_a(1);
  Rng rng_b(2);
  Rng rng_a_again(1);
  double prev_a = base;
  double prev_b = base;
  double prev_a2 = base;
  bool diverged = false;
  for (int i = 0; i < 16; ++i) {
    prev_a = DecorrelatedJitterBackoff(&rng_a, base, cap, prev_a);
    prev_b = DecorrelatedJitterBackoff(&rng_b, base, cap, prev_b);
    prev_a2 = DecorrelatedJitterBackoff(&rng_a_again, base, cap, prev_a2);
    diverged |= prev_a != prev_b;
    EXPECT_DOUBLE_EQ(prev_a, prev_a2);  // same seed -> same schedule
  }
  EXPECT_TRUE(diverged);  // different seeds -> different schedules
}

namespace {

// Runs the always-aborting workload on a fresh (identically seeded)
// cluster and returns the virtual times of every kSubmit — i.e. the
// attempt schedule the retry loop produced.
std::vector<double> AttemptTimes(const RetryPolicy& policy) {
  SimCluster::Options options;
  options.site_count = 2;
  VectorTraceSink trace;
  options.trace = &trace;
  SimCluster cluster(options);
  const auto result = RunWithRetries(
      &cluster, 0,
      [&cluster] {
        TxnSpec spec;
        spec.Read("missing", cluster.site_id(1));
        spec.Logic([](const TxnReads&) { return TxnEffect{}; });
        return spec;
      },
      policy);
  EXPECT_FALSE(result.has_value());
  std::vector<double> times;
  for (const TraceEvent& e : trace.Snapshot()) {
    if (e.type == TraceEventType::kSubmit) {
      times.push_back(e.time);
    }
  }
  return times;
}

}  // namespace

TEST(RetryJitterTest, AttemptTimesDisperseAcrossClients) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = 0.02;
  policy.max_backoff = 0.5;

  policy.jitter_seed = 101;
  const std::vector<double> client_a = AttemptTimes(policy);
  policy.jitter_seed = 202;
  const std::vector<double> client_b = AttemptTimes(policy);

  ASSERT_EQ(client_a.size(), 5u);
  ASSERT_EQ(client_b.size(), 5u);
  // Two clients that abort at the same instant must NOT wake at the
  // same instants afterwards — that re-collision is the herding bug.
  int distinct = 0;
  for (size_t i = 1; i < client_a.size(); ++i) {
    if (client_a[i] != client_b[i]) {
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 3);

  // And a given seed reproduces its schedule exactly (determinism).
  policy.jitter_seed = 101;
  EXPECT_EQ(AttemptTimes(policy), client_a);
}

TEST(RetryJitterTest, LegacyScheduleIsSharedAcrossClients) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.decorrelated_jitter = false;
  policy.jitter_seed = 101;
  const std::vector<double> client_a = AttemptTimes(policy);
  policy.jitter_seed = 202;  // irrelevant without jitter
  const std::vector<double> client_b = AttemptTimes(policy);
  // The control: with jitter off, the herd stays synchronized — which
  // is exactly why decorrelated jitter is the default.
  EXPECT_EQ(client_a, client_b);
}

TEST(RetryJitterTest, JitteredGapsAreNotDegenerate) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = 0.02;
  policy.max_backoff = 0.5;
  policy.jitter_seed = 7;
  const std::vector<double> times = AttemptTimes(policy);
  ASSERT_EQ(times.size(), 8u);
  std::vector<double> gaps;
  for (size_t i = 1; i < times.size(); ++i) {
    gaps.push_back(times[i] - times[i - 1]);
  }
  double mean = 0.0;
  for (double g : gaps) {
    mean += g;
  }
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) {
    var += (g - mean) * (g - mean);
  }
  var /= static_cast<double>(gaps.size());
  // Non-zero spread: the schedule is not a fixed ladder.
  EXPECT_GT(std::sqrt(var), 1e-4);
}

}  // namespace
}  // namespace polyvalue
