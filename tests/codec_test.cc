// Unit and fuzz tests for the Value/Condition/PolyValue codecs.
#include "src/net/codec.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace polyvalue {
namespace {

const TxnId kT1(1);
const TxnId kT2(2);

template <typename T, typename Enc, typename Dec>
T RoundTrip(const T& input, Enc encode, Dec decode) {
  ByteWriter w;
  encode(input, &w);
  ByteReader r(w.buffer());
  auto result = decode(&r);
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(r.AtEnd());
  return std::move(result).value();
}

TEST(CodecTest, ValueRoundTripAllTypes) {
  for (const Value& v :
       {Value::Null(), Value::Bool(true), Value::Bool(false),
        Value::Int(-123456789), Value::Int(INT64_MAX), Value::Real(2.5),
        Value::Real(-1e300), Value::Str(""), Value::Str("payload"),
        Value::Str(std::string("\0\xff", 2))}) {
    EXPECT_EQ(RoundTrip(v, EncodeValue, DecodeValue), v);
  }
}

TEST(CodecTest, ConditionRoundTrip) {
  const Condition c = Condition::Or(
      Condition::And(Condition::Committed(kT1), Condition::Aborted(kT2)),
      Condition::Committed(TxnId(99)));
  EXPECT_EQ(RoundTrip(c, EncodeCondition, DecodeCondition), c);
  EXPECT_EQ(RoundTrip(Condition::True(), EncodeCondition, DecodeCondition),
            Condition::True());
  EXPECT_EQ(RoundTrip(Condition::False(), EncodeCondition, DecodeCondition),
            Condition::False());
}

TEST(CodecTest, PolyValueRoundTrip) {
  const PolyValue pv = PolyValue::InstallUncertain(
      kT2,
      PolyValue::InstallUncertain(kT1, PolyValue::Certain(Value::Int(1)),
                                  PolyValue::Certain(Value::Int(2))),
      PolyValue::Certain(Value::Str("old")));
  EXPECT_EQ(RoundTrip(pv, EncodePolyValue, DecodePolyValue), pv);
}

TEST(CodecTest, CertainPolyValueRoundTrip) {
  const PolyValue pv = PolyValue::Certain(Value::Real(3.5));
  EXPECT_EQ(RoundTrip(pv, EncodePolyValue, DecodePolyValue), pv);
}

TEST(CodecTest, DecodeRejectsBadValueTag) {
  ByteWriter w;
  w.PutU8(250);
  ByteReader r(w.buffer());
  EXPECT_FALSE(DecodeValue(&r).ok());
}

TEST(CodecTest, DecodeRejectsEmptyPolyValue) {
  ByteWriter w;
  w.PutVarint(0);  // zero pairs
  ByteReader r(w.buffer());
  EXPECT_FALSE(DecodePolyValue(&r).ok());
}

TEST(CodecTest, DecodeRejectsOversizedCounts) {
  ByteWriter w;
  w.PutVarint(1ULL << 40);  // absurd term count
  ByteReader r(w.buffer());
  EXPECT_FALSE(DecodeCondition(&r).ok());
}

TEST(CodecTest, DecodeRejectsInvalidTxnId) {
  ByteWriter w;
  w.PutVarint(1);                  // one term
  w.PutVarint(1);                  // one literal
  w.PutVarint(TxnId::kInvalid);    // bad id
  w.PutBool(true);
  ByteReader r(w.buffer());
  EXPECT_FALSE(DecodeCondition(&r).ok());
}

TEST(CodecTest, TruncatedInputsNeverCrash) {
  // Encode a rich polyvalue, then decode every prefix: each must return
  // cleanly (usually DATA_LOSS), never crash or over-read.
  const PolyValue pv = PolyValue::InstallUncertain(
      kT2,
      PolyValue::InstallUncertain(kT1, PolyValue::Certain(Value::Int(10)),
                                  PolyValue::Certain(Value::Str("x"))),
      PolyValue::Certain(Value::Real(1.25)));
  ByteWriter w;
  EncodePolyValue(pv, &w);
  const std::string full = w.buffer();
  for (size_t len = 0; len < full.size(); ++len) {
    ByteReader r(full.data(), len);
    const Result<PolyValue> result = DecodePolyValue(&r);
    // Prefixes may happen to decode if a trailing pair is cut cleanly —
    // but only shorter content, never garbage. Mostly they error.
    if (result.ok()) {
      EXPECT_LE(result.value().pairs().size(), pv.pairs().size());
    }
  }
}

TEST(CodecTest, RandomBytesNeverCrash) {
  Rng rng(777);
  for (int trial = 0; trial < 500; ++trial) {
    std::string noise;
    const size_t len = rng.NextBelow(64);
    for (size_t i = 0; i < len; ++i) {
      noise.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    ByteReader r(noise);
    (void)DecodePolyValue(&r);  // must not crash / UB
    ByteReader r2(noise);
    (void)DecodeCondition(&r2);
    ByteReader r3(noise);
    (void)DecodeValue(&r3);
  }
}

// --- multi-packet wire frame (EncodePacketBatch / DecodePacketBatch) ---

std::vector<Packet> RandomBatch(Rng* rng, size_t max_packets,
                                size_t max_payload) {
  std::vector<Packet> packets;
  const size_t n = rng->NextBelow(max_packets) + 1;
  for (size_t i = 0; i < n; ++i) {
    Packet p;
    p.from = SiteId(rng->NextBelow(1000) + 1);
    p.to = SiteId(rng->NextBelow(1000) + 1);
    const size_t len = rng->NextBelow(max_payload);
    for (size_t b = 0; b < len; ++b) {
      p.payload.push_back(static_cast<char>(rng->NextBelow(256)));
    }
    packets.push_back(std::move(p));
  }
  return packets;
}

TEST(PacketBatchTest, RoundTripRandomBatches) {
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<Packet> batch = RandomBatch(&rng, 16, 200);
    const std::string frame = EncodePacketBatch(batch);
    ASSERT_TRUE(IsPacketBatch(frame));
    const Result<std::vector<Packet>> decoded = DecodePacketBatch(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_EQ(decoded.value().size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(decoded.value()[i].from, batch[i].from);
      EXPECT_EQ(decoded.value()[i].to, batch[i].to);
      EXPECT_EQ(decoded.value()[i].payload, batch[i].payload);
    }
  }
}

TEST(PacketBatchTest, SingleMessageFramesAreNotBatches) {
  // A protocol message's first byte is the codec version, which must
  // never collide with the batch magic — otherwise receivers would try
  // to unpack ordinary messages.
  ByteWriter w;
  w.PutU8(1);  // kProtocolVersion
  w.PutVarint(12345);
  EXPECT_FALSE(IsPacketBatch(w.buffer()));
  EXPECT_FALSE(IsPacketBatch(""));
  EXPECT_FALSE(IsPacketBatch("\xb7"));       // magic0 alone
  EXPECT_FALSE(IsPacketBatch("\xb7Q"));      // wrong magic1
  EXPECT_FALSE(DecodePacketBatch("hello").ok());
}

TEST(PacketBatchTest, EveryTruncationFailsCleanly) {
  Rng rng(99);
  const std::vector<Packet> batch = RandomBatch(&rng, 8, 64);
  const std::string frame = EncodePacketBatch(batch);
  for (size_t len = 0; len < frame.size(); ++len) {
    const Result<std::vector<Packet>> decoded =
        DecodePacketBatch(frame.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " decoded";
  }
}

TEST(PacketBatchTest, EveryBitFlipFailsCleanlyOrDecodes) {
  // The CRC covers everything after the header, and the header is
  // magic + version + the CRC itself — so ANY single bit flip must be
  // rejected (flips in the magic/version make it a non-batch, flips
  // elsewhere break the checksum).
  Rng rng(7);
  const std::vector<Packet> batch = RandomBatch(&rng, 6, 48);
  const std::string frame = EncodePacketBatch(batch);
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = frame;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      EXPECT_FALSE(DecodePacketBatch(corrupt).ok())
          << "flip at byte " << byte << " bit " << bit << " decoded";
    }
  }
}

TEST(PacketBatchTest, TrailingGarbageRejected) {
  Rng rng(11);
  const std::vector<Packet> batch = RandomBatch(&rng, 4, 32);
  std::string frame = EncodePacketBatch(batch);
  frame.push_back('x');
  EXPECT_FALSE(DecodePacketBatch(frame).ok());
}

TEST(PacketBatchTest, RandomBytesNeverCrash) {
  Rng rng(31337);
  for (int trial = 0; trial < 500; ++trial) {
    std::string noise;
    const size_t len = rng.NextBelow(128);
    for (size_t i = 0; i < len; ++i) {
      noise.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    // Force the magic sometimes so the CRC/structure paths get exercised.
    if (noise.size() >= 3 && trial % 2 == 0) {
      noise[0] = static_cast<char>(kPacketBatchMagic0);
      noise[1] = static_cast<char>(kPacketBatchMagic1);
      noise[2] = static_cast<char>(kPacketBatchVersion);
    }
    (void)DecodePacketBatch(noise);  // must not crash / UB
  }
}

TEST(CodecTest, FuzzRoundTripRandomPolyValues) {
  Rng rng(4242);
  for (int trial = 0; trial < 100; ++trial) {
    PolyValue pv = PolyValue::Certain(Value::Int(rng.NextInt(-5, 5)));
    const int layers = rng.NextBelow(4);
    for (int i = 0; i < layers; ++i) {
      pv = PolyValue::InstallUncertain(
          TxnId(rng.NextBelow(6) + 1),
          PolyValue::Certain(Value::Int(rng.NextInt(-5, 5))), pv);
    }
    EXPECT_EQ(RoundTrip(pv, EncodePolyValue, DecodePolyValue), pv);
  }
}

}  // namespace
}  // namespace polyvalue
