// Stress for the sharded ItemStore and the engine hot path under real
// threads: disjoint key ranges must proceed in parallel without
// corruption, overlapping ranges must serialise without lost updates,
// and snapshot iteration must stay consistent while writers run. This
// is the suite the TSan CI job leans on.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/store/item_store.h"
#include "src/system/cluster.h"

namespace polyvalue {
namespace {

std::string Key(int owner, int i) {
  return "r" + std::to_string(owner) + "/k" + std::to_string(i);
}

TEST(ItemStoreShardStressTest, DisjointWritersNeverInterfere) {
  ItemStore store;
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 64;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kKeysPerThread; ++i) {
          store.Write(Key(t, i), PolyValue::Certain(Value::Int(round)));
          const auto read = store.Read(Key(t, i));
          EXPECT_TRUE(read.ok());
          EXPECT_EQ(read.value().certain_value(), Value::Int(round));
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(store.size(), size_t{kThreads} * kKeysPerThread);
  store.ForEach([](const ItemKey&, const PolyValue& value) {
    EXPECT_EQ(value.certain_value(), Value::Int(kRounds - 1));
  });
}

TEST(ItemStoreShardStressTest, IterationIsSafeAndSortedUnderWriters) {
  ItemStore store;
  for (int i = 0; i < 100; ++i) {
    store.Write(Key(0, i), PolyValue::Certain(Value::Int(0)));
  }
  std::atomic<bool> stop{false};
  std::thread writer([&store, &stop] {
    int round = 1;
    while (!stop.load()) {
      for (int i = 0; i < 100; ++i) {
        store.Write(Key(0, i), PolyValue::Certain(Value::Int(round)));
      }
      ++round;
    }
  });
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<ItemKey> seen;
    store.ForEach([&seen](const ItemKey& key, const PolyValue& value) {
      EXPECT_TRUE(value.is_certain());
      seen.push_back(key);
    });
    EXPECT_EQ(seen.size(), 100u);
    EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
    EXPECT_EQ(store.UncertainCount(), 0u);
  }
  stop.store(true);
  writer.join();
}

TEST(ItemStoreShardStressTest, LockPlaneSerialisesOverlappingTxns) {
  ItemStore store;
  constexpr int kThreads = 8;
  constexpr int kAttemptsPerThread = 300;
  // All threads fight over the same 4 keys through the lock plane;
  // holders mutate, then release. No lost updates allowed.
  std::atomic<int> applied{0};
  for (int i = 0; i < 4; ++i) {
    store.Write(Key(9, i), PolyValue::Certain(Value::Int(0)));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &applied, t] {
      for (int a = 0; a < kAttemptsPerThread; ++a) {
        const TxnId txn(static_cast<uint64_t>(t) * kAttemptsPerThread + a +
                        1);
        const std::string key = Key(9, a % 4);
        if (!store.Lock(key, txn).ok()) {
          continue;  // contention abort, as the engine would
        }
        const auto read = store.Read(key);
        EXPECT_TRUE(read.ok());
        store.Write(key,
                    PolyValue::Certain(Value::Int(
                        read.value().certain_value().int_value() + 1)));
        ++applied;
        store.UnlockAll(txn);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  int64_t total = 0;
  for (int i = 0; i < 4; ++i) {
    total += store.Read(Key(9, i)).value().certain_value().int_value();
  }
  EXPECT_EQ(total, applied.load());
  EXPECT_GT(applied.load(), 0);
  EXPECT_EQ(store.locked_count(), 0u);
}

EngineConfig StressConfig() {
  EngineConfig config;
  config.prepare_timeout = 2.0;
  config.ready_timeout = 2.0;
  config.wait_timeout = 1.0;
  config.inquiry_interval = 0.1;
  return config;
}

TxnSpec Increment(const ItemKey& key, SiteId site) {
  TxnSpec spec;
  spec.ReadWrite(key, site);
  spec.Logic([key](const TxnReads& reads) {
    TxnEffect e;
    e.writes[key] = Value::Int(reads.IntAt(key) + 1);
    return e;
  });
  return spec;
}

TEST(EngineShardStressTest, DisjointAndOverlappingRangesThroughEngine) {
  ThreadCluster::Options options;
  options.site_count = 4;
  options.engine = StressConfig();
  ThreadCluster cluster(options);

  constexpr int kClients = 8;
  constexpr int kDisjointPerClient = 6;
  // Disjoint plane: client t owns keys d<t>/0..5 at site t%4.
  for (int t = 0; t < kClients; ++t) {
    for (int i = 0; i < kDisjointPerClient; ++i) {
      cluster.Load(t % 4, "d" + std::to_string(t) + "/" + std::to_string(i),
                   Value::Int(0));
    }
  }
  // Overlap plane: two hot keys everyone fights over.
  cluster.Load(0, "hot/x", Value::Int(0));
  cluster.Load(1, "hot/y", Value::Int(0));

  std::atomic<int> disjoint_committed{0};
  std::atomic<int> hot_committed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&cluster, &disjoint_committed, &hot_committed,
                          t] {
      // Disjoint keys: must always commit (nobody else touches them).
      for (int i = 0; i < kDisjointPerClient; ++i) {
        const std::string key =
            "d" + std::to_string(t) + "/" + std::to_string(i);
        const auto result = cluster.SubmitAndWait(
            (t + 1) % 4, Increment(key, cluster.site_id(t % 4)), 20.0);
        if (result.has_value() && result->committed()) {
          ++disjoint_committed;
        }
      }
      // Hot keys: retry until one increment lands.
      const std::string hot = (t % 2 == 0) ? "hot/x" : "hot/y";
      const SiteId owner = cluster.site_id(t % 2);
      for (int attempt = 0; attempt < 60; ++attempt) {
        const auto result =
            cluster.SubmitAndWait(t % 4, Increment(hot, owner), 20.0);
        if (result.has_value() && result->committed()) {
          ++hot_committed;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  EXPECT_EQ(disjoint_committed.load(), kClients * kDisjointPerClient);
  EXPECT_EQ(hot_committed.load(), kClients);

  // Settle, then audit: every disjoint key is exactly 1 and the hot keys
  // sum to the number of committed hot increments (no lost updates).
  const auto settled = [&cluster] {
    for (size_t s = 0; s < 4; ++s) {
      if (cluster.site(s).store().UncertainCount() != 0) {
        return false;
      }
    }
    return true;
  };
  for (int i = 0; i < 1000 && !settled(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(settled());
  for (int t = 0; t < kClients; ++t) {
    for (int i = 0; i < kDisjointPerClient; ++i) {
      const std::string key =
          "d" + std::to_string(t) + "/" + std::to_string(i);
      EXPECT_EQ(cluster.site(t % 4).Peek(key).value().certain_value(),
                Value::Int(1))
          << key;
    }
  }
  const int64_t hot_total =
      cluster.site(0).Peek("hot/x").value().certain_value().int_value() +
      cluster.site(1).Peek("hot/y").value().certain_value().int_value();
  EXPECT_EQ(hot_total, hot_committed.load());
}

TEST(EngineShardStressTest, BatchedTransportUnderConcurrentLoad) {
  // Same engine-level hammering, with the BatchingTransport decorator in
  // front of MemTransport — the coalescing path must be just as safe.
  ThreadCluster::Options options;
  options.site_count = 3;
  options.engine = StressConfig();
  options.enable_batching = true;
  options.batching.window_seconds = 0.0005;
  ThreadCluster cluster(options);
  constexpr int kClients = 6;
  for (int t = 0; t < kClients; ++t) {
    cluster.Load(t % 3, "b/" + std::to_string(t), Value::Int(0));
  }
  std::atomic<int> committed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&cluster, &committed, t] {
      for (int round = 0; round < 5; ++round) {
        const auto result = cluster.SubmitAndWait(
            (t + 1) % 3,
            Increment("b/" + std::to_string(t), cluster.site_id(t % 3)),
            20.0);
        if (result.has_value() && result->committed()) {
          ++committed;
        }
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  EXPECT_EQ(committed.load(), kClients * 5);
  // Whether frames actually coalesced here is timing-dependent; the
  // deterministic coalescing checks live in batching_transport_test.
}

}  // namespace
}  // namespace polyvalue
