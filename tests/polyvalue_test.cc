// Unit tests for the PolyValue core: construction, the §3.1
// simplification rules, reduction, and queries.
#include "src/poly/polyvalue.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

const TxnId kT1(1);
const TxnId kT2(2);
const TxnId kT3(3);

TEST(PolyValueTest, DefaultIsCertainNull) {
  PolyValue pv;
  EXPECT_TRUE(pv.is_certain());
  EXPECT_EQ(pv.certain_value(), Value::Null());
}

TEST(PolyValueTest, CertainRoundTrip) {
  const PolyValue pv = PolyValue::Certain(Value::Int(42));
  EXPECT_TRUE(pv.is_certain());
  EXPECT_EQ(pv.certain_value(), Value::Int(42));
  EXPECT_EQ(pv.size(), 1u);
  EXPECT_TRUE(pv.Dependencies().empty());
  EXPECT_EQ(pv.ToString(), "42");
}

TEST(PolyValueTest, PaperConstruction) {
  // §3.1: {⟨v, T⟩, ⟨v', ¬T⟩} — new value if T completes, old otherwise.
  const PolyValue pv = PolyValue::InstallUncertain(
      kT1, PolyValue::Certain(Value::Int(950)),
      PolyValue::Certain(Value::Int(1000)));
  EXPECT_FALSE(pv.is_certain());
  EXPECT_EQ(pv.size(), 2u);
  EXPECT_EQ(pv.Dependencies(), std::vector<TxnId>{kT1});
  EXPECT_EQ(pv.ValueUnder({{kT1, true}}).value(), Value::Int(950));
  EXPECT_EQ(pv.ValueUnder({{kT1, false}}).value(), Value::Int(1000));
}

TEST(PolyValueTest, InstallUncertainSameValueStaysCertain) {
  // Rule 2 + Blake form: if the computed value equals the previous one
  // the conditions merge to T + ¬T = true.
  const PolyValue pv = PolyValue::InstallUncertain(
      kT1, PolyValue::Certain(Value::Int(5)),
      PolyValue::Certain(Value::Int(5)));
  EXPECT_TRUE(pv.is_certain());
  EXPECT_EQ(pv.certain_value(), Value::Int(5));
}

TEST(PolyValueTest, NestedInstallFlattens) {
  // Rule 1: installing over an already-uncertain previous value ANDs
  // conditions instead of nesting polyvalues.
  const PolyValue inner = PolyValue::InstallUncertain(
      kT1, PolyValue::Certain(Value::Int(10)),
      PolyValue::Certain(Value::Int(20)));
  const PolyValue outer = PolyValue::InstallUncertain(
      kT2, PolyValue::Certain(Value::Int(99)), inner);
  EXPECT_EQ(outer.size(), 3u);
  EXPECT_EQ(outer.ValueUnder({{kT1, true}, {kT2, true}}).value(),
            Value::Int(99));
  EXPECT_EQ(outer.ValueUnder({{kT1, true}, {kT2, false}}).value(),
            Value::Int(10));
  EXPECT_EQ(outer.ValueUnder({{kT1, false}, {kT2, false}}).value(),
            Value::Int(20));
  EXPECT_TRUE(outer.Validate());
}

TEST(PolyValueTest, FalseConditionPairsDropped) {
  const PolyValue pv = PolyValue::Of(
      {{Value::Int(1), Condition::Committed(kT1)},
       {Value::Int(2), Condition::Aborted(kT1)},
       {Value::Int(3), Condition::False()}});
  EXPECT_EQ(pv.size(), 2u);
}

TEST(PolyValueTest, EqualValuesMergeConditions) {
  const PolyValue pv = PolyValue::Of(
      {{Value::Int(7), Condition::Committed(kT1)},
       {Value::Int(7), Condition::Aborted(kT1)}});
  EXPECT_TRUE(pv.is_certain());
  EXPECT_EQ(pv.certain_value(), Value::Int(7));
}

TEST(PolyValueTest, ReduceCommitSelectsNewValue) {
  const PolyValue pv = PolyValue::InstallUncertain(
      kT1, PolyValue::Certain(Value::Int(950)),
      PolyValue::Certain(Value::Int(1000)));
  const PolyValue committed = pv.Reduce(kT1, true);
  EXPECT_TRUE(committed.is_certain());
  EXPECT_EQ(committed.certain_value(), Value::Int(950));
  const PolyValue aborted = pv.Reduce(kT1, false);
  EXPECT_TRUE(aborted.is_certain());
  EXPECT_EQ(aborted.certain_value(), Value::Int(1000));
}

TEST(PolyValueTest, ReducePartialKeepsRemainingUncertainty) {
  const PolyValue inner = PolyValue::InstallUncertain(
      kT1, PolyValue::Certain(Value::Int(10)),
      PolyValue::Certain(Value::Int(20)));
  const PolyValue outer = PolyValue::InstallUncertain(
      kT2, PolyValue::Certain(Value::Int(99)), inner);
  const PolyValue partial = outer.Reduce(kT2, false);
  EXPECT_FALSE(partial.is_certain());
  EXPECT_EQ(partial.Dependencies(), std::vector<TxnId>{kT1});
  EXPECT_EQ(partial, inner);
}

TEST(PolyValueTest, ReduceAllResolvesEverything) {
  const PolyValue inner = PolyValue::InstallUncertain(
      kT1, PolyValue::Certain(Value::Int(10)),
      PolyValue::Certain(Value::Int(20)));
  const PolyValue outer = PolyValue::InstallUncertain(
      kT2, PolyValue::Certain(Value::Int(99)), inner);
  const PolyValue resolved =
      outer.ReduceAll({{kT1, true}, {kT2, false}});
  EXPECT_TRUE(resolved.is_certain());
  EXPECT_EQ(resolved.certain_value(), Value::Int(10));
}

TEST(PolyValueTest, ReduceUnrelatedTxnIsIdentity) {
  const PolyValue pv = PolyValue::InstallUncertain(
      kT1, PolyValue::Certain(Value::Int(1)),
      PolyValue::Certain(Value::Int(2)));
  EXPECT_EQ(pv.Reduce(kT3, true), pv);
}

TEST(PolyValueTest, MinMaxPossible) {
  // §5 reservations: grant if even the largest possible count fits.
  const PolyValue seats = PolyValue::InstallUncertain(
      kT1, PolyValue::Certain(Value::Int(97)),
      PolyValue::Certain(Value::Int(96)));
  EXPECT_EQ(seats.MaxPossible().value(), Value::Int(97));
  EXPECT_EQ(seats.MinPossible().value(), Value::Int(96));
}

TEST(PolyValueTest, MinMaxErrorsOnNonNumeric) {
  const PolyValue pv = PolyValue::Of(
      {{Value::Str("a"), Condition::Committed(kT1)},
       {Value::Int(1), Condition::Aborted(kT1)}});
  EXPECT_FALSE(pv.MaxPossible().ok());
}

TEST(PolyValueTest, ForAllAndExists) {
  const PolyValue pv = PolyValue::InstallUncertain(
      kT1, PolyValue::Certain(Value::Int(950)),
      PolyValue::Certain(Value::Int(1000)));
  EXPECT_TRUE(pv.ForAllValues([](const Value& v) {
    return v.int_value() >= 900;
  }));
  EXPECT_FALSE(pv.ForAllValues([](const Value& v) {
    return v.int_value() >= 1000;
  }));
  EXPECT_TRUE(pv.ExistsValue([](const Value& v) {
    return v.int_value() >= 1000;
  }));
}

TEST(PolyValueTest, ExpectedValueWithProbabilities) {
  const PolyValue pv = PolyValue::InstallUncertain(
      kT1, PolyValue::Certain(Value::Int(100)),
      PolyValue::Certain(Value::Int(0)));
  EXPECT_DOUBLE_EQ(pv.ExpectedValue({{kT1, 0.9}}).value(), 90.0);
  EXPECT_DOUBLE_EQ(pv.ExpectedValue({}, 0.5).value(), 50.0);
}

TEST(PolyValueTest, ValidateDetectsIncompleteness) {
  const PolyValue bogus = PolyValue::Of(
      {{Value::Int(1), Condition::Committed(kT1)},
       {Value::Int(2),
        Condition::And(Condition::Aborted(kT1), Condition::Committed(kT2))}});
  EXPECT_FALSE(bogus.Validate());
  const PolyValue good = PolyValue::InstallUncertain(
      kT1, PolyValue::Certain(Value::Int(1)),
      PolyValue::Certain(Value::Int(2)));
  EXPECT_TRUE(good.Validate());
}

TEST(PolyValueTest, ValueUnderRequiresCompleteAssignment) {
  const PolyValue pv = PolyValue::InstallUncertain(
      kT1, PolyValue::Certain(Value::Int(1)),
      PolyValue::Certain(Value::Int(2)));
  EXPECT_FALSE(pv.ValueUnder({}).ok());
}

TEST(PolyValueTest, ToStringUncertainListsAlternatives) {
  const PolyValue pv = PolyValue::InstallUncertain(
      kT1, PolyValue::Certain(Value::Int(1)),
      PolyValue::Certain(Value::Int(2)));
  const std::string s = pv.ToString();
  EXPECT_NE(s.find("1 if T1"), std::string::npos);
  EXPECT_NE(s.find("2 if ¬T1"), std::string::npos);
}

TEST(PolyValueTest, PossibleValuesDistinct) {
  const PolyValue inner = PolyValue::InstallUncertain(
      kT1, PolyValue::Certain(Value::Int(10)),
      PolyValue::Certain(Value::Int(20)));
  const PolyValue outer = PolyValue::InstallUncertain(
      kT2, PolyValue::Certain(Value::Int(10)), inner);
  // 10 appears under two conditions but merges into one pair.
  EXPECT_EQ(outer.PossibleValues().size(), 2u);
}

}  // namespace
}  // namespace polyvalue
