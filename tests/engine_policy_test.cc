// In-doubt policy comparison tests: the same stranded-coordinator
// scenario under kPolyvalue, kBlock and kArbitrary shows exactly the
// trade-off the paper describes in §2.
#include <gtest/gtest.h>

#include "src/system/cluster.h"

namespace polyvalue {
namespace {

EngineConfig ConfigWithPolicy(InDoubtPolicy policy) {
  EngineConfig config;
  config.prepare_timeout = 0.25;
  config.ready_timeout = 0.25;
  config.wait_timeout = 0.05;
  config.inquiry_interval = 0.2;
  config.policy = policy;
  config.validate_installs = true;
  return config;
}

// Strands a transfer a(site1) -> b(site2) with coordinator site0 crashed
// mid-commit, then probes availability of "a" with a second transaction.
struct Scenario {
  explicit Scenario(InDoubtPolicy policy) : cluster(MakeOptions(policy)) {
    cluster.Load(1, "a", Value::Int(100));
    cluster.Load(2, "b", Value::Int(50));
    txn = cluster.Submit(
        0,
        [this] {
          TxnSpec spec;
          spec.ReadWrite("a", cluster.site_id(1));
          spec.ReadWrite("b", cluster.site_id(2));
          spec.Logic([](const TxnReads& reads) {
            TxnEffect e;
            e.writes["a"] = Value::Int(reads.IntAt("a") - 30);
            e.writes["b"] = Value::Int(reads.IntAt("b") + 30);
            return e;
          });
          return spec;
        }(),
        [](const TxnResult&) {});
    cluster.sim().At(0.035, [this] { cluster.CrashSite(0); });
    cluster.RunFor(0.3);  // well past the wait timeout
  }

  static SimCluster::Options MakeOptions(InDoubtPolicy policy) {
    SimCluster::Options options;
    options.site_count = 3;
    options.engine = ConfigWithPolicy(policy);
    options.min_delay = 0.01;
    options.max_delay = 0.01;
    return options;
  }

  // Attempts to read-modify-write "a" from site 2.
  TxnDisposition ProbeItemA() {
    TxnSpec spec;
    spec.ReadWrite("a", cluster.site_id(1));
    spec.Logic([](const TxnReads& reads) {
      TxnEffect e;
      e.writes["a"] = Value::Int(reads.IntAt("a") + 1);
      return e;
    });
    const auto result = cluster.SubmitAndRun(2, std::move(spec));
    EXPECT_TRUE(result.has_value());
    return result->disposition;
  }

  SimCluster cluster;
  TxnId txn;
};

TEST(PolicyTest, PolyvaluePolicyKeepsItemsAvailable) {
  Scenario s(InDoubtPolicy::kPolyvalue);
  EXPECT_EQ(s.cluster.site(1).store().locked_count(), 0u);
  EXPECT_FALSE(s.cluster.site(1).Peek("a").value().is_certain());
  EXPECT_EQ(s.ProbeItemA(), TxnDisposition::kCommitted);
}

TEST(PolicyTest, BlockingPolicyHoldsLocksAndRejectsAccess) {
  Scenario s(InDoubtPolicy::kBlock);
  // Classic 2PC: the in-doubt participant still holds its lock.
  EXPECT_GE(s.cluster.site(1).store().locked_count(), 1u);
  EXPECT_TRUE(s.cluster.site(1).Peek("a").value().is_certain());
  EXPECT_EQ(s.ProbeItemA(), TxnDisposition::kAborted);
  EXPECT_GE(s.cluster.TotalMetrics().blocked_holds, 1u);
}

TEST(PolicyTest, BlockingPolicyFinishesWhenCoordinatorReturns) {
  Scenario s(InDoubtPolicy::kBlock);
  s.cluster.RecoverSite(0);
  s.cluster.RunFor(2.0);
  // Presumed abort: values restored, locks released, item usable again.
  EXPECT_EQ(s.cluster.site(1).store().locked_count(), 0u);
  EXPECT_EQ(s.cluster.site(1).Peek("a").value().certain_value(),
            Value::Int(100));
  EXPECT_EQ(s.ProbeItemA(), TxnDisposition::kCommitted);
}

TEST(PolicyTest, ArbitraryPolicyCommitsUnilaterally) {
  Scenario s(InDoubtPolicy::kArbitrary);
  // Relaxed consistency: the participant guessed commit and moved on.
  EXPECT_EQ(s.cluster.site(1).store().locked_count(), 0u);
  const PolyValue a = s.cluster.site(1).Peek("a").value();
  ASSERT_TRUE(a.is_certain());
  EXPECT_EQ(a.certain_value(), Value::Int(70));
  EXPECT_GE(s.cluster.TotalMetrics().arbitrary_commits, 1u);
  EXPECT_EQ(s.ProbeItemA(), TxnDisposition::kCommitted);
}

TEST(PolicyTest, ArbitraryPolicyViolatesAtomicityOnAbort) {
  Scenario s(InDoubtPolicy::kArbitrary);
  s.cluster.RecoverSite(0);
  s.cluster.RunFor(2.0);
  // The coordinator's truth is ABORT (presumed), but the participants
  // already applied the writes: the database is now inconsistent — money
  // was moved by a transaction that never committed. This is the §2.3
  // failure mode the polyvalue mechanism avoids.
  const auto decided =
      s.cluster.site(0).engine().DecidedOutcome(s.txn);
  EXPECT_NE(decided, true);  // never decided commit
  EXPECT_EQ(s.cluster.site(1).Peek("a").value().certain_value(),
            Value::Int(70));
  EXPECT_EQ(s.cluster.site(2).Peek("b").value().certain_value(),
            Value::Int(80));
  // Conservation check: total should be 150, is 150 here only because
  // both guessed commit; the workload-level audits show drift when
  // guesses diverge. What *must* hold for correctness — agreement with
  // the coordinator decision — is violated:
  EXPECT_FALSE(decided.has_value());
}

TEST(PolicyTest, PolyvaluePolicyPreservesAtomicityThroughRecovery) {
  Scenario s(InDoubtPolicy::kPolyvalue);
  s.cluster.RecoverSite(0);
  s.cluster.RunFor(2.0);
  EXPECT_EQ(s.cluster.site(1).Peek("a").value().certain_value(),
            Value::Int(100));
  EXPECT_EQ(s.cluster.site(2).Peek("b").value().certain_value(),
            Value::Int(50));
  EXPECT_EQ(s.cluster.TotalUncertainItems(), 0u);
}

}  // namespace
}  // namespace polyvalue
