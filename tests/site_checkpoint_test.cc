// Tests for Site::Checkpoint: snapshot + WAL truncation + restart.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/system/cluster.h"

namespace polyvalue {
namespace {

EngineConfig FastConfig() {
  EngineConfig config;
  config.prepare_timeout = 0.25;
  config.ready_timeout = 0.25;
  config.wait_timeout = 0.05;
  config.inquiry_interval = 0.2;
  return config;
}

class SiteCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = testing::TempDir() + "site_checkpoint_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    for (int i = 0; i < 2; ++i) {
      wal_paths_[i] = base_ + "_site" + std::to_string(i) + ".wal";
      std::remove(wal_paths_[i].c_str());
      std::remove((wal_paths_[i] + ".snap").c_str());
    }
    faults_.SetDelayRange(0.01, 0.01);
    transport_ = std::make_unique<SimTransport>(&sim_, &faults_, &rng_);
    scheduler_ = std::make_unique<SimScheduler>(&sim_);
    for (int i = 0; i < 2; ++i) {
      sites_[i] = MakeSite(i);
      ASSERT_TRUE(sites_[i]->Start().ok());
    }
  }

  void TearDown() override {
    for (int i = 0; i < 2; ++i) {
      sites_[i].reset();
      std::remove(wal_paths_[i].c_str());
      std::remove((wal_paths_[i] + ".snap").c_str());
    }
  }

  std::unique_ptr<Site> MakeSite(int index) {
    Site::Options options;
    options.engine = FastConfig();
    options.wal_path = wal_paths_[index];
    return std::make_unique<Site>(SiteId(index + 1), transport_.get(),
                                  scheduler_.get(), options);
  }

  void RestartFromDisk(int index) {
    sites_[index].reset();
    sites_[index] = MakeSite(index);
    ASSERT_TRUE(sites_[index]->Start().ok());
    sites_[index]->engine().Recover();
  }

  // Increment "x" at site 1 coordinated by site 0; returns success.
  bool Bump() {
    TxnSpec spec;
    spec.ReadWrite("x", SiteId(2));
    spec.Logic([](const TxnReads& reads) {
      TxnEffect e;
      e.writes["x"] = Value::Int(reads.IntAt("x") + 1);
      return e;
    });
    std::optional<TxnResult> result;
    sites_[0]->Submit(std::move(spec),
                      [&result](const TxnResult& r) { result = r; });
    sim_.RunUntil(sim_.now() + 1.0);
    return result.has_value() && result->committed();
  }

  std::string base_;
  Simulator sim_;
  FaultPlan faults_;
  Rng rng_{23};
  std::unique_ptr<SimTransport> transport_;
  std::unique_ptr<SimScheduler> scheduler_;
  std::string wal_paths_[2];
  std::unique_ptr<Site> sites_[2];
};

size_t FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return 0;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size < 0 ? 0 : static_cast<size_t>(size);
}

TEST_F(SiteCheckpointTest, CheckpointTruncatesWalAndPreservesState) {
  sites_[1]->Load("x", Value::Int(0));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(Bump());
  }
  const size_t wal_before = FileSize(wal_paths_[1]);
  ASSERT_GT(wal_before, 0u);

  ASSERT_TRUE(sites_[1]->Checkpoint().ok());
  EXPECT_EQ(FileSize(wal_paths_[1]), 0u);
  EXPECT_GT(FileSize(wal_paths_[1] + ".snap"), 0u);

  // State intact after restart from snapshot alone.
  RestartFromDisk(1);
  EXPECT_EQ(sites_[1]->Peek("x").value().certain_value(), Value::Int(10));
}

TEST_F(SiteCheckpointTest, SnapshotPlusWalTailRestores) {
  sites_[1]->Load("x", Value::Int(0));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(Bump());
  }
  ASSERT_TRUE(sites_[1]->Checkpoint().ok());
  // More traffic after the checkpoint lands in the fresh WAL.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(Bump());
  }
  RestartFromDisk(1);
  EXPECT_EQ(sites_[1]->Peek("x").value().certain_value(), Value::Int(8));
}

TEST_F(SiteCheckpointTest, CheckpointPreservesUncertainState) {
  sites_[1]->Load("x", Value::Int(100));
  ASSERT_TRUE(Bump());  // durable baseline via WAL
  // Strand an update so "x" holds a polyvalue.
  TxnSpec spec;
  spec.ReadWrite("x", SiteId(2));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["x"] = Value::Int(reads.IntAt("x") - 30);
    return e;
  });
  const TxnId txn =
      sites_[0]->Submit(std::move(spec), [](const TxnResult&) {});
  sim_.At(sim_.now() + 0.035, [this] { sites_[0]->Crash(&faults_); });
  sim_.RunUntil(sim_.now() + 0.3);
  ASSERT_FALSE(sites_[1]->Peek("x").value().is_certain());

  // Checkpoint while uncertain, then restart from snapshot.
  ASSERT_TRUE(sites_[1]->Checkpoint().ok());
  RestartFromDisk(1);
  const PolyValue x = sites_[1]->Peek("x").value();
  ASSERT_FALSE(x.is_certain());
  EXPECT_EQ(x.Dependencies(), std::vector<TxnId>{txn});

  // The restored outcome table still drives inquiry to resolution.
  sites_[0]->Recover(&faults_);
  sim_.RunUntil(sim_.now() + 2.0);
  EXPECT_EQ(sites_[1]->Peek("x").value().certain_value(),
            Value::Int(101));  // bump applied, stranded debit aborted
}

TEST_F(SiteCheckpointTest, CheckpointWithoutWalFails) {
  Site::Options options;
  Site bare(SiteId(9), transport_.get(), scheduler_.get(), options);
  ASSERT_TRUE(bare.Start().ok());
  EXPECT_EQ(bare.Checkpoint().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace polyvalue
