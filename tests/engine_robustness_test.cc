// Robustness tests: duplicate, stale, reordered and nonsensical protocol
// messages must never corrupt a site. Drives TxnEngine::OnMessage
// directly with hand-built messages.
#include <gtest/gtest.h>

#include "src/system/cluster.h"

namespace polyvalue {
namespace {

EngineConfig FastConfig() {
  EngineConfig config;
  config.prepare_timeout = 0.25;
  config.ready_timeout = 0.25;
  config.wait_timeout = 0.05;
  config.inquiry_interval = 0.2;
  config.validate_installs = true;
  return config;
}

SimCluster::Options ClusterOptions(size_t sites) {
  SimCluster::Options options;
  options.site_count = sites;
  options.engine = FastConfig();
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  return options;
}

// A fabricated id that looks like it was coordinated by `site`.
TxnId FakeTxn(uint64_t site, uint64_t seq) {
  return TxnId((site << kTxnSiteShift) | seq);
}

TEST(RobustnessTest, DuplicatePrepareIgnored) {
  SimCluster cluster(ClusterOptions(2));
  cluster.Load(1, "x", Value::Int(5));
  TxnEngine& participant = cluster.site(1).engine();
  const TxnId txn = FakeTxn(1, 900);
  const Message prepare =
      MakePrepare(txn, cluster.site_id(0), {"x"}, {"x"});
  participant.OnMessage(cluster.site_id(0), prepare);
  participant.OnMessage(cluster.site_id(0), prepare);  // duplicate
  // Exactly one lock held for the txn, one PrepareReply queued.
  EXPECT_EQ(cluster.site(1).store().LockHolder("x"), txn);
  cluster.RunFor(2.0);  // compute timeout fires, lock released
  EXPECT_EQ(cluster.site(1).store().locked_count(), 0u);
}

TEST(RobustnessTest, WriteReqWithoutPrepareIgnored) {
  SimCluster cluster(ClusterOptions(2));
  cluster.Load(1, "x", Value::Int(5));
  TxnEngine& participant = cluster.site(1).engine();
  const TxnId txn = FakeTxn(1, 901);
  participant.OnMessage(
      cluster.site_id(0),
      MakeWriteReq(txn, {{"x", PolyValue::Certain(Value::Int(99))}}));
  cluster.RunFor(1.0);
  // Never voted, never installed.
  EXPECT_EQ(cluster.site(1).Peek("x").value().certain_value(),
            Value::Int(5));
}

TEST(RobustnessTest, DuplicateCompleteIsIdempotent) {
  SimCluster cluster(ClusterOptions(2));
  cluster.Load(1, "x", Value::Int(0));
  TxnSpec spec;
  spec.ReadWrite("x", cluster.site_id(1));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["x"] = Value::Int(reads.IntAt("x") + 1);
    return e;
  });
  const auto result = cluster.SubmitAndRun(0, std::move(spec));
  ASSERT_TRUE(result.has_value() && result->committed());
  cluster.RunFor(0.5);
  // Replay COMPLETE for the finished txn several times.
  TxnEngine& participant = cluster.site(1).engine();
  for (int i = 0; i < 3; ++i) {
    participant.OnMessage(cluster.site_id(0), MakeComplete(result->id));
  }
  cluster.RunFor(0.5);
  EXPECT_EQ(cluster.site(1).Peek("x").value().certain_value(),
            Value::Int(1));
}

TEST(RobustnessTest, ConflictingLateOutcomeDoesNotFlip) {
  // After a txn resolved as committed, a (bogus or corrupted) ABORT for
  // the same txn must not undo anything: the first learned outcome wins.
  SimCluster cluster(ClusterOptions(2));
  cluster.Load(1, "x", Value::Int(0));
  TxnSpec spec;
  spec.ReadWrite("x", cluster.site_id(1));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["x"] = Value::Int(reads.IntAt("x") + 1);
    return e;
  });
  const auto result = cluster.SubmitAndRun(0, std::move(spec));
  ASSERT_TRUE(result.has_value() && result->committed());
  cluster.RunFor(0.5);
  cluster.site(1).engine().OnMessage(cluster.site_id(0),
                                     MakeAbort(result->id));
  cluster.RunFor(0.5);
  EXPECT_EQ(cluster.site(1).Peek("x").value().certain_value(),
            Value::Int(1));
}

TEST(RobustnessTest, StaleReadyIgnored) {
  SimCluster cluster(ClusterOptions(2));
  TxnEngine& coordinator = cluster.site(0).engine();
  // READY for a transaction this coordinator never ran.
  coordinator.OnMessage(cluster.site_id(1), MakeReady(FakeTxn(1, 902)));
  cluster.RunFor(0.5);
  EXPECT_EQ(coordinator.metrics().txns_committed, 0u);
}

TEST(RobustnessTest, OutcomeRequestForUnknownTxnAtNonCoordinator) {
  SimCluster cluster(ClusterOptions(3));
  // Ask site 1 about a txn coordinated by site 2 that site 1 never saw:
  // it must answer known=false (only the coordinator may presume abort).
  TxnEngine& bystander = cluster.site(1).engine();
  bystander.OnMessage(cluster.site_id(0),
                      MakeOutcomeRequest(FakeTxn(3, 903)));
  // And the coordinator itself answers presumed-abort for unknown ids.
  TxnEngine& coordinator = cluster.site(2).engine();
  coordinator.OnMessage(cluster.site_id(0),
                        MakeOutcomeRequest(FakeTxn(3, 904)));
  cluster.RunFor(0.5);  // replies flow; nothing crashes
}

TEST(RobustnessTest, OutcomeNotifyForUnknownTxnIsHarmless) {
  SimCluster cluster(ClusterOptions(2));
  cluster.Load(1, "x", Value::Int(5));
  cluster.site(1).engine().OnMessage(cluster.site_id(0),
                                     MakeOutcomeNotify(FakeTxn(1, 905),
                                                       true));
  cluster.RunFor(0.5);
  EXPECT_EQ(cluster.site(1).Peek("x").value().certain_value(),
            Value::Int(5));
}

TEST(RobustnessTest, PrepareReplyFromUninvolvedSiteIgnored) {
  SimCluster cluster(ClusterOptions(3));
  cluster.Load(1, "x", Value::Int(5));
  TxnSpec spec;
  spec.ReadWrite("x", cluster.site_id(1));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["x"] = Value::Int(reads.IntAt("x") + 1);
    return e;
  });
  std::optional<TxnResult> result;
  const TxnId txn = cluster.Submit(
      0, std::move(spec), [&result](const TxnResult& r) { result = r; });
  // A third site injects a bogus PrepareReply with poisoned values.
  cluster.site(0).engine().OnMessage(
      cluster.site_id(2),
      MakePrepareReply(txn, {{"x", PolyValue::Certain(Value::Int(666))}}));
  cluster.RunFor(2.0);
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->committed());
  EXPECT_EQ(cluster.site(1).Peek("x").value().certain_value(),
            Value::Int(6));  // 5+1, not 666+1
}

TEST(RobustnessTest, MalformedPacketsDroppedBySite) {
  SimCluster cluster(ClusterOptions(2));
  cluster.Load(1, "x", Value::Int(5));
  // Raw garbage through the transport.
  ASSERT_TRUE(cluster.transport()
                  .Send({cluster.site_id(0), cluster.site_id(1),
                         "\xde\xad\xbe\xef garbage"})
                  .ok());
  cluster.RunFor(0.5);
  EXPECT_EQ(cluster.site(1).Peek("x").value().certain_value(),
            Value::Int(5));
}

TEST(RobustnessTest, MessagesToCrashedSiteVanish) {
  SimCluster cluster(ClusterOptions(2));
  cluster.Load(1, "x", Value::Int(5));
  cluster.site(1).Crash(&cluster.faults());
  cluster.site(1).engine().OnMessage(
      cluster.site_id(0),
      MakePrepare(FakeTxn(1, 906), cluster.site_id(0), {"x"}, {"x"}));
  // Crashed engine ignores direct delivery too.
  EXPECT_EQ(cluster.site(1).store().locked_count(), 0u);
}

}  // namespace
}  // namespace polyvalue
