// Tests for the §4.2 stochastic simulation, including agreement with the
// analytic model in its validity region (the Table 2 comparison).
#include "src/sim/poly_sim.h"

#include <gtest/gtest.h>

#include "src/model/analytic.h"

namespace polyvalue {
namespace {

PolySimParams BaseParams() {
  PolySimParams p;
  p.updates_per_second = 10;
  p.failure_probability = 0.01;
  p.items = 10000;
  p.recovery_rate = 0.01;
  p.overwrite_probability = 0;
  p.dependency_degree = 1;
  p.seed = 1;
  p.warmup_seconds = 1500;
  p.measure_seconds = 6000;
  return p;
}

ModelParams ToModel(const PolySimParams& p) {
  ModelParams m;
  m.updates_per_second = p.updates_per_second;
  m.failure_probability = p.failure_probability;
  m.items = static_cast<double>(p.items);
  m.recovery_rate = p.recovery_rate;
  m.overwrite_probability = p.overwrite_probability;
  m.dependency_degree = p.dependency_degree;
  return m;
}

TEST(PolySimTest, DeterministicForSeed) {
  PolySimParams p = BaseParams();
  p.warmup_seconds = 100;
  p.measure_seconds = 500;
  const PolySimStats a = RunPolySim(p);
  const PolySimStats b = RunPolySim(p);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_DOUBLE_EQ(a.average_polyvalues, b.average_polyvalues);
}

TEST(PolySimTest, NoFailuresNoPolyvalues) {
  PolySimParams p = BaseParams();
  p.failure_probability = 0;
  p.warmup_seconds = 10;
  p.measure_seconds = 200;
  const PolySimStats stats = RunPolySim(p);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_DOUBLE_EQ(stats.average_polyvalues, 0.0);
  EXPECT_DOUBLE_EQ(stats.final_polyvalues, 0.0);
}

TEST(PolySimTest, UpdateRateHonoured) {
  PolySimParams p = BaseParams();
  p.warmup_seconds = 0;
  p.measure_seconds = 2000;
  const PolySimStats stats = RunPolySim(p);
  // U = 10/s over 2000 s -> ~20000 updates.
  EXPECT_NEAR(static_cast<double>(stats.updates), 20000.0, 800.0);
  // F = 1% of updates fail.
  EXPECT_NEAR(static_cast<double>(stats.failures),
              static_cast<double>(stats.updates) * 0.01,
              static_cast<double>(stats.updates) * 0.004);
}

TEST(PolySimTest, EveryFailureEventuallyRecovers) {
  PolySimParams p = BaseParams();
  p.warmup_seconds = 0;
  p.measure_seconds = 3000;
  PolySim sim(p);
  sim.AdvanceTo(3000);
  // Stop introducing updates by advancing only recoveries: recoveries
  // scheduled within the horizon have mean 1/R = 100 s, so after another
  // long stretch every polyvalue should be gone... but updates keep
  // coming. Instead check the bookkeeping invariant: recoveries never
  // exceed failures and the gap is bounded by outstanding ones.
  const PolySimStats stats = sim.Stats();
  EXPECT_LE(stats.recoveries, stats.failures);
  EXPECT_LE(stats.final_polyvalues,
            static_cast<double>(stats.failures - stats.recoveries) + 1 +
                static_cast<double>(stats.propagations));
}

class Table2Case {
 public:
  double u, f, y, d;
  double paper_predicted;
  double paper_actual;
};

class PolySimTable2Test : public ::testing::TestWithParam<Table2Case> {};

TEST_P(PolySimTable2Test, SimulationTracksModelAsInPaper) {
  const Table2Case& c = GetParam();
  PolySimParams p = BaseParams();
  p.updates_per_second = c.u;
  p.failure_probability = c.f;
  p.overwrite_probability = c.y;
  p.dependency_degree = c.d;
  const Prediction pred = Predict(ToModel(p));
  EXPECT_NEAR(pred.steady_state, c.paper_predicted,
              c.paper_predicted * 0.02);
  // Average over three seeds to damp stochastic noise; the paper notes
  // "the number of polyvalues obtained in the simulation is in general
  // smaller than predicted", so accept [0.4, 1.3] x prediction.
  double total = 0;
  for (uint64_t seed : {11u, 22u, 33u}) {
    p.seed = seed;
    total += RunPolySim(p).average_polyvalues;
  }
  const double average = total / 3.0;
  EXPECT_GT(average, c.paper_predicted * 0.4)
      << "U=" << c.u << " F=" << c.f << " Y=" << c.y << " D=" << c.d;
  EXPECT_LT(average, c.paper_predicted * 1.3)
      << "U=" << c.u << " F=" << c.f << " Y=" << c.y << " D=" << c.d;
}

// The six rows of Table 2 (I = 10000, R = 0.01 throughout).
INSTANTIATE_TEST_SUITE_P(
    Table2, PolySimTable2Test,
    ::testing::Values(Table2Case{2, 0.01, 0, 1, 2.04, 2.00},
                      Table2Case{5, 0.01, 0, 1, 5.26, 2.71},
                      Table2Case{10, 0.01, 0, 1, 11.11, 9.5},
                      Table2Case{10, 0.001, 0, 1, 1.11, 0.74},
                      Table2Case{10, 0.01, 0, 5, 20.0, 19.8},
                      Table2Case{10, 0.01, 1, 5, 16.7, 15.8}));

TEST(PolySimTest, HigherFailureRateMorePolyvalues) {
  PolySimParams low = BaseParams();
  low.warmup_seconds = 500;
  low.measure_seconds = 2000;
  PolySimParams high = low;
  high.failure_probability = 0.05;
  EXPECT_LT(RunPolySim(low).average_polyvalues,
            RunPolySim(high).average_polyvalues);
}

TEST(PolySimTest, FasterRecoveryFewerPolyvalues) {
  PolySimParams slow = BaseParams();
  slow.warmup_seconds = 500;
  slow.measure_seconds = 2000;
  PolySimParams fast = slow;
  fast.recovery_rate = 0.1;
  EXPECT_GT(RunPolySim(slow).average_polyvalues,
            RunPolySim(fast).average_polyvalues);
}

TEST(PolySimTest, PropagationRequiresDependencies) {
  PolySimParams p = BaseParams();
  p.dependency_degree = 0;
  p.overwrite_probability = 1;  // never keeps previous value either
  p.warmup_seconds = 100;
  p.measure_seconds = 1000;
  const PolySimStats stats = RunPolySim(p);
  EXPECT_EQ(stats.propagations, 0u);
}

TEST(PolySimTest, StabilityAfterBurst) {
  // The paper's stability claim, empirically: a burst of polyvalues
  // decays back to the steady band rather than growing.
  PolySimParams p = BaseParams();
  p.failure_probability = 0.25;  // burst regime
  PolySim sim(p);
  sim.AdvanceTo(500);
  const size_t during_burst = sim.CurrentPolyvalues();
  EXPECT_GT(during_burst, 10u);
  // Note: parameters cannot be changed mid-run in this API; instead run a
  // second sim with normal F and a large warm start implied by burst —
  // here we simply verify the burst itself stabilises (births ≈ deaths).
  sim.AdvanceTo(4000);
  const size_t later = sim.CurrentPolyvalues();
  const Prediction pred = Predict(ToModel(p));
  ASSERT_TRUE(pred.stable);
  EXPECT_LT(static_cast<double>(later), pred.steady_state * 2.5);
}

}  // namespace
}  // namespace polyvalue

namespace polyvalue {
namespace {

TEST(PolySimTest, HotspotSkewIncreasesPolyvalues) {
  PolySimParams uniform;
  uniform.updates_per_second = 10;
  uniform.failure_probability = 0.01;
  uniform.items = 10000;
  uniform.recovery_rate = 0.01;
  uniform.dependency_degree = 3;
  uniform.warmup_seconds = 1000;
  uniform.measure_seconds = 5000;
  uniform.seed = 5;
  PolySimParams skewed = uniform;
  skewed.hotspot_fraction = 0.1;
  skewed.hotspot_access_probability = 0.7;
  // Skew concentrates both failures and reads on the hot set: more
  // propagation, more polyvalues — the §4.2 "effective size" effect.
  EXPECT_GT(RunPolySim(skewed).average_polyvalues,
            RunPolySim(uniform).average_polyvalues * 1.5);
}

TEST(PolySimTest, HotspotDisabledByDefault) {
  PolySimParams p;
  EXPECT_EQ(p.hotspot_fraction, 0.0);
  EXPECT_EQ(p.hotspot_access_probability, 0.0);
}

}  // namespace
}  // namespace polyvalue
