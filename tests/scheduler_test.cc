// Tests for the scheduler abstraction (sim + wall clock).
#include "src/txn/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/common/thread_annotations.h"

namespace polyvalue {
namespace {

TEST(SimSchedulerTest, DelegatesToSimulator) {
  Simulator sim;
  SimScheduler scheduler(&sim);
  double fired_at = -1;
  scheduler.ScheduleAfter(2.0, [&] { fired_at = scheduler.Now(); });
  sim.RunAll();
  EXPECT_DOUBLE_EQ(fired_at, 2.0);
}

TEST(SimSchedulerTest, CancelWorks) {
  Simulator sim;
  SimScheduler scheduler(&sim);
  bool fired = false;
  const auto id = scheduler.ScheduleAfter(1.0, [&] { fired = true; });
  EXPECT_TRUE(scheduler.Cancel(id));
  sim.RunAll();
  EXPECT_FALSE(fired);
}

TEST(ThreadSchedulerTest, FiresAfterDelay) {
  ThreadScheduler scheduler;
  std::atomic<bool> fired{false};
  const double start = scheduler.Now();
  scheduler.ScheduleAfter(0.05, [&] { fired = true; });
  for (int i = 0; i < 200 && !fired; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(fired.load());
  EXPECT_GE(scheduler.Now() - start, 0.045);
}

TEST(ThreadSchedulerTest, OrderingOfMultipleTimers) {
  ThreadScheduler scheduler;
  Mutex mu;
  std::vector<int> order;
  std::atomic<int> done{0};
  scheduler.ScheduleAfter(0.09, [&] {
    MutexLock lock(&mu);
    order.push_back(3);
    ++done;
  });
  scheduler.ScheduleAfter(0.03, [&] {
    MutexLock lock(&mu);
    order.push_back(1);
    ++done;
  });
  scheduler.ScheduleAfter(0.06, [&] {
    MutexLock lock(&mu);
    order.push_back(2);
    ++done;
  });
  for (int i = 0; i < 400 && done < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  MutexLock lock(&mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ThreadSchedulerTest, CancelBeforeFire) {
  ThreadScheduler scheduler;
  std::atomic<bool> fired{false};
  const auto id = scheduler.ScheduleAfter(0.2, [&] { fired = true; });
  EXPECT_TRUE(scheduler.Cancel(id));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_FALSE(fired.load());
  EXPECT_FALSE(scheduler.Cancel(id));
}

TEST(ThreadSchedulerTest, ActionsMayReschedule) {
  ThreadScheduler scheduler;
  std::atomic<int> count{0};
  std::function<void()> tick = [&] {
    if (++count < 3) {
      scheduler.ScheduleAfter(0.01, tick);
    }
  };
  scheduler.ScheduleAfter(0.01, tick);
  for (int i = 0; i < 400 && count < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadSchedulerTest, DestructionWithPendingTimersIsClean) {
  std::atomic<bool> fired{false};
  {
    ThreadScheduler scheduler;
    scheduler.ScheduleAfter(10.0, [&] { fired = true; });
  }
  EXPECT_FALSE(fired.load());
}

}  // namespace
}  // namespace polyvalue
