// Tests for the failure-injection workload harness (the machinery behind
// the availability benches).
#include "src/workload/transfer.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

WorkloadParams SmallParams(InDoubtPolicy policy) {
  WorkloadParams p;
  p.sites = 3;
  p.accounts_per_site = 8;
  p.initial_balance = 1000;
  p.txn_rate = 20;
  p.duration = 12;
  p.settle_time = 20;
  p.crash_site = 0;
  p.crash_time = 3;
  p.recover_time = 8;
  p.seed = 5;
  p.engine.prepare_timeout = 0.25;
  p.engine.ready_timeout = 0.25;
  p.engine.wait_timeout = 0.05;
  p.engine.inquiry_interval = 0.2;
  p.engine.policy = policy;
  return p;
}

TEST(WorkloadTest, PolyvaluePolicyConservesMoneyAndResolves) {
  const WorkloadReport report =
      RunTransferWorkload(SmallParams(InDoubtPolicy::kPolyvalue));
  EXPECT_GT(report.submitted, 50u);
  EXPECT_GT(report.committed, 0u);
  // Every uncertainty drains after healing...
  EXPECT_TRUE(report.all_items_certain) << report.Summary();
  // ...and transfers conserve total balance exactly.
  EXPECT_EQ(report.conservation_drift, 0) << report.Summary();
  EXPECT_EQ(report.no_response, 0u) << report.Summary();
}

TEST(WorkloadTest, BlockingPolicyAlsoConservesMoney) {
  const WorkloadReport report =
      RunTransferWorkload(SmallParams(InDoubtPolicy::kBlock));
  EXPECT_TRUE(report.all_items_certain) << report.Summary();
  EXPECT_EQ(report.conservation_drift, 0) << report.Summary();
}

TEST(WorkloadTest, PolyvalueBeatsBlockingDuringOutage) {
  // The paper's core claim, quantified: while the failure is outstanding
  // the polyvalue cluster keeps committing at least as much as the
  // blocking cluster (and in stressed configurations strictly more; the
  // bench sweeps that regime — here we assert the weak inequality plus
  // the blocking signature).
  WorkloadParams params = SmallParams(InDoubtPolicy::kPolyvalue);
  params.recover_time = 10;
  params.txn_rate = 120;       // hot traffic: the crash lands mid-protocol
  params.min_delay = 0.01;     // wide READY->COMPLETE window
  params.max_delay = 0.02;
  const WorkloadReport poly = RunTransferWorkload(params);
  params.engine.policy = InDoubtPolicy::kBlock;
  const WorkloadReport block = RunTransferWorkload(params);
  EXPECT_GE(poly.outage_committed, block.outage_committed)
      << "poly: " << poly.Summary() << "\nblock: " << block.Summary();
  EXPECT_GT(block.metrics.blocked_holds + block.metrics.wait_timeouts, 0u);
}

TEST(WorkloadTest, NoFailuresMeansNoPolyvalues) {
  WorkloadParams params = SmallParams(InDoubtPolicy::kPolyvalue);
  params.crash_time = 1e9;  // never
  params.recover_time = 2e9;
  const WorkloadReport report = RunTransferWorkload(params);
  EXPECT_EQ(report.polyvalue_installs, 0u);
  EXPECT_EQ(report.uncertain_outputs, 0u);
  EXPECT_TRUE(report.all_items_certain);
  EXPECT_EQ(report.conservation_drift, 0);
  EXPECT_GT(report.committed, 0u);
}

TEST(WorkloadTest, DeterministicForSeed) {
  const WorkloadReport a =
      RunTransferWorkload(SmallParams(InDoubtPolicy::kPolyvalue));
  const WorkloadReport b =
      RunTransferWorkload(SmallParams(InDoubtPolicy::kPolyvalue));
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.outage_committed, b.outage_committed);
}

TEST(WorkloadTest, ReportSummaryIsInformative) {
  const WorkloadReport report =
      RunTransferWorkload(SmallParams(InDoubtPolicy::kPolyvalue));
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("submitted="), std::string::npos);
  EXPECT_NE(summary.find("drift="), std::string::npos);
}

}  // namespace
}  // namespace polyvalue
