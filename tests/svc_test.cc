// Serving front door tests: admission control, deadline budgets,
// retry budgets, and — the point of the layer — deterministic overload
// behaviour on the simulated cluster. The overload cases run entirely
// in virtual time, so "goodput does not collapse at 2x saturation" is
// a reproducible assertion, not a flaky benchmark.
#include "src/svc/front_door.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/obs/audit.h"

namespace polyvalue {
namespace {

TxnSpec Increment(const ItemKey& key, SiteId site) {
  TxnSpec spec;
  spec.ReadWrite(key, site);
  spec.Logic([key](const TxnReads& reads) {
    TxnEffect e;
    e.writes[key] = Value::Int(reads.IntAt(key) + 1);
    return e;
  });
  return spec;
}

TxnSpec ReadMissing(SiteId site) {
  TxnSpec spec;
  spec.Read("missing", site);
  spec.Logic([](const TxnReads&) { return TxnEffect{}; });
  return spec;
}

// ----------------------------------------------------------------
// AdmissionController / RetryBudget units
// ----------------------------------------------------------------

TEST(AdmissionControllerTest, TokenBucketShedsAboveRate) {
  AdmissionController::Options options;
  options.rate_limit = 10.0;
  options.burst = 5.0;
  AdmissionController admission(options);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(admission.Admit(0.0).ok()) << i;
    admission.Release();
  }
  bool rate_limited = false;
  const Status shed = admission.Admit(0.0, &rate_limited);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(rate_limited);
  EXPECT_EQ(admission.shed_rate(), 1u);
  // Half a second refills 5 tokens.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(admission.Admit(0.5).ok()) << i;
    admission.Release();
  }
  EXPECT_FALSE(admission.Admit(0.5).ok());
  EXPECT_EQ(admission.admitted(), 10u);
  EXPECT_EQ(admission.shed(), 2u);
}

TEST(AdmissionControllerTest, InflightCapShedsUntilRelease) {
  AdmissionController::Options options;
  options.max_inflight = 2;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.Admit(0.0).ok());
  EXPECT_TRUE(admission.Admit(0.0).ok());
  bool rate_limited = true;
  const Status shed = admission.Admit(0.0, &rate_limited);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(rate_limited);  // capacity, not rate
  EXPECT_EQ(admission.shed_capacity(), 1u);
  EXPECT_EQ(admission.inflight(), 2u);
  admission.Release();
  EXPECT_TRUE(admission.Admit(0.0).ok());
}

TEST(AdmissionControllerTest, UnlimitedByDefault) {
  AdmissionController admission(AdmissionController::Options{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(admission.Admit(0.0).ok());
  }
  EXPECT_EQ(admission.inflight(), 100u);
  EXPECT_EQ(admission.shed(), 0u);
}

TEST(RetryBudgetTest, SpendsDownThenEarnsByAttempts) {
  RetryBudget::Options options;
  options.initial = 2.0;
  options.ratio = 0.25;  // exactly representable: 4 attempts = 1 retry
  options.cap = 50.0;
  RetryBudget budget(options);
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_FALSE(budget.TrySpend());
  EXPECT_EQ(budget.denied(), 1u);
  // Four first attempts earn exactly one retry.
  for (int i = 0; i < 4; ++i) {
    budget.OnAttempt();
  }
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_FALSE(budget.TrySpend());
}

TEST(RetryBudgetTest, BalanceIsCapped) {
  RetryBudget::Options options;
  options.initial = 0.0;
  options.ratio = 1.0;
  options.cap = 3.0;
  RetryBudget budget(options);
  for (int i = 0; i < 100; ++i) {
    budget.OnAttempt();
  }
  EXPECT_DOUBLE_EQ(budget.balance(), 3.0);
}

// ----------------------------------------------------------------
// SimFrontDoor: typed refusal, deadlines, retries
// ----------------------------------------------------------------

TEST(SimFrontDoorTest, CommitsUncontendedCall) {
  SimCluster::Options options;
  options.site_count = 2;
  SimCluster cluster(options);
  cluster.Load(1, "x", Value::Int(41));
  SimFrontDoor door(&cluster, SvcOptions{});
  const SvcResult result = door.CallAndRun(0, [&cluster] {
    return Increment("x", cluster.site_id(1));
  });
  EXPECT_TRUE(result.ok());
  ASSERT_TRUE(result.txn.has_value());
  EXPECT_TRUE(result.txn->committed());
  EXPECT_EQ(result.attempts, 1);
  EXPECT_GT(result.latency, 0.0);
  EXPECT_EQ(door.counters().committed.load(), 1u);
  EXPECT_EQ(door.admission().inflight(), 0u);
}

TEST(SimFrontDoorTest, InflightCapShedsTyped) {
  SimCluster::Options options;
  options.site_count = 2;
  SimCluster cluster(options);
  cluster.Load(1, "x", Value::Int(0));
  SvcOptions svc;
  svc.admission.max_inflight = 2;
  SimFrontDoor door(&cluster, svc);
  std::vector<SvcResult> results;
  for (int i = 0; i < 5; ++i) {
    door.Call(0, [&cluster] { return Increment("x", cluster.site_id(1)); },
              [&results](const SvcResult& r) { results.push_back(r); });
  }
  // The three over-cap calls were refused synchronously and typed as
  // RESOURCE_EXHAUSTED (nothing ran yet: refusal is pre-engine).
  ASSERT_EQ(results.size(), 3u);
  for (const SvcResult& r : results) {
    EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(r.attempts, 0);
    EXPECT_FALSE(r.txn.has_value());
  }
  cluster.RunAll();
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(door.counters().committed.load(), 2u);
  EXPECT_EQ(door.admission().shed_capacity(), 3u);
  EXPECT_EQ(door.admission().inflight(), 0u);
}

TEST(SimFrontDoorTest, DeadlineFiresMidRetry) {
  SimCluster::Options options;
  options.site_count = 2;
  SimCluster cluster(options);
  VectorTraceSink trace;
  SvcOptions svc;
  svc.trace = &trace;
  svc.max_attempts = 100;          // deadline must bind first
  svc.initial_backoff = 0.002;
  svc.max_backoff = 0.004;
  svc.retry_budget.initial = 50.0;
  SimFrontDoor door(&cluster, svc);
  // Every attempt aborts (missing item); the 30ms deadline expires
  // while the retry loop is still going.
  const SvcResult result = door.CallAndRun(
      0, [&cluster] { return ReadMissing(cluster.site_id(1)); },
      /*deadline_seconds=*/0.03);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(result.attempts, 2);
  EXPECT_EQ(door.counters().deadline_exceeded.load(), 1u);
  EXPECT_GE(door.counters().retries.load(), 1u);
  // The settlement is on the deadline budget, give or take one backoff
  // step (the overshoot check settles early rather than sleeping past).
  EXPECT_LE(result.latency, 0.03 + 1e-9);
  bool saw_deadline_event = false;
  bool saw_retry_event = false;
  for (const TraceEvent& e : trace.Snapshot()) {
    saw_deadline_event |= e.type == TraceEventType::kSvcDeadlineExceeded;
    saw_retry_event |= e.type == TraceEventType::kSvcRetry;
  }
  EXPECT_TRUE(saw_deadline_event);
  EXPECT_TRUE(saw_retry_event);
}

TEST(SimFrontDoorTest, ZeroDeadlineIsTypedDeadlineNotShed) {
  SimCluster::Options options;
  options.site_count = 2;
  SimCluster cluster(options);
  cluster.Load(1, "x", Value::Int(0));
  SimFrontDoor door(&cluster, SvcOptions{});
  const SvcResult result = door.CallAndRun(
      0, [&cluster] { return Increment("x", cluster.site_id(1)); },
      /*deadline_seconds=*/0.0);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.attempts, 0);
  // It was ADMITTED (occupied a slot, recorded latency) — deadline
  // expiry is not load shedding.
  EXPECT_EQ(door.admission().admitted(), 1u);
  EXPECT_EQ(door.admission().shed(), 0u);
  EXPECT_EQ(door.counters().deadline_exceeded.load(), 1u);
}

TEST(SimFrontDoorTest, RetryBudgetExhaustionIsTyped) {
  SimCluster::Options options;
  options.site_count = 2;
  SimCluster cluster(options);
  SvcOptions svc;
  svc.max_attempts = 100;
  svc.default_deadline = 10.0;     // deadline must NOT bind
  svc.retry_budget.initial = 3.0;  // three retries, then denial
  svc.retry_budget.ratio = 0.0;
  SimFrontDoor door(&cluster, svc);
  const SvcResult result = door.CallAndRun(
      0, [&cluster] { return ReadMissing(cluster.site_id(1)); });
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(result.attempts, 4);  // 1 first attempt + 3 budgeted retries
  EXPECT_EQ(door.counters().budget_exhausted.load(), 1u);
  EXPECT_EQ(door.retry_budget().denied(), 1u);
}

TEST(SimFrontDoorTest, AbortedAfterMaxAttempts) {
  SimCluster::Options options;
  options.site_count = 2;
  SimCluster cluster(options);
  SvcOptions svc;
  svc.max_attempts = 3;
  svc.default_deadline = 10.0;
  svc.retry_budget.initial = 50.0;
  SimFrontDoor door(&cluster, svc);
  const SvcResult result = door.CallAndRun(
      0, [&cluster] { return ReadMissing(cluster.site_id(1)); });
  EXPECT_EQ(result.status.code(), StatusCode::kAborted);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(door.counters().aborted.load(), 1u);
}

TEST(SimFrontDoorTest, ExportsMetricsFamily) {
  SimCluster::Options options;
  options.site_count = 2;
  SimCluster cluster(options);
  cluster.Load(1, "x", Value::Int(0));
  SimFrontDoor door(&cluster, SvcOptions{});
  for (int i = 0; i < 8; ++i) {
    const SvcResult result = door.CallAndRun(0, [&cluster] {
      return Increment("x", cluster.site_id(1));
    });
    EXPECT_TRUE(result.ok());
  }
  MetricsRegistry registry;
  door.ExportMetrics(&registry);
  EXPECT_EQ(registry.counter("svc.admitted"), 8u);
  EXPECT_EQ(registry.counter("svc.committed"), 8u);
  EXPECT_EQ(registry.counter("svc.shed"), 0u);
  EXPECT_EQ(registry.counter("svc.latency_count"), 8u);
  // Commit latency is a couple of network round trips: the percentile
  // gauges must be positive and ordered.
  const double p50 = registry.gauge("svc.latency_p50");
  const double p99 = registry.gauge("svc.latency_p99");
  const double p999 = registry.gauge("svc.latency_p999");
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
}

// ----------------------------------------------------------------
// Deterministic overload behaviour at and beyond saturation
// ----------------------------------------------------------------

struct OverloadOutcome {
  uint64_t offered = 0;
  double goodput = 0.0;        // commits per second of virtual time
  double shed_fraction = 0.0;  // of offered
  uint64_t deadline_exceeded = 0;
};

// Open-loop Poisson arrivals at `offered_rps` for `duration` virtual
// seconds against a small hot item set — contention, not CPU, is what
// saturates the simulated cluster. Deterministic per seed.
OverloadOutcome RunOverload(double offered_rps, double duration,
                            double rate_limit, uint64_t seed) {
  SimCluster::Options options;
  options.site_count = 2;
  options.seed = seed;
  SimCluster cluster(options);
  constexpr int kItems = 8;
  for (int i = 0; i < kItems; ++i) {
    cluster.Load(1, "h" + std::to_string(i), Value::Int(0));
  }
  SvcOptions svc;
  svc.admission.rate_limit = rate_limit;
  svc.admission.max_inflight = 24;
  svc.default_deadline = 0.5;
  svc.initial_backoff = 0.004;
  svc.max_backoff = 0.05;
  svc.seed = seed ^ 0x5eedu;
  SimFrontDoor door(&cluster, svc);

  Rng arrivals(seed);
  Rng pick(seed ^ 0xbeefu);
  uint64_t offered = 0;
  double t = arrivals.NextExponential(1.0 / offered_rps);
  while (t < duration) {
    const std::string key =
        "h" + std::to_string(pick.NextBelow(kItems));
    cluster.sim().At(t, [&door, &cluster, key] {
      door.Call(0, [&cluster, key] {
        return Increment(key, cluster.site_id(1));
      });
    });
    ++offered;
    t += arrivals.NextExponential(1.0 / offered_rps);
  }
  cluster.RunAll();
  OverloadOutcome outcome;
  outcome.offered = offered;
  outcome.goodput =
      static_cast<double>(door.counters().committed.load()) / duration;
  outcome.shed_fraction =
      static_cast<double>(door.admission().shed()) /
      static_cast<double>(offered);
  outcome.deadline_exceeded = door.counters().deadline_exceeded.load();
  return outcome;
}

TEST(SimFrontDoorOverloadTest, GoodputHoldsAtTwiceSaturation) {
  // Rate limit pinned at 300 admitted/s; the hot-set capacity is above
  // that, so at 1x the cluster runs near saturation and commits most of
  // what it admits.
  constexpr double kRate = 300.0;
  constexpr double kDuration = 4.0;
  const OverloadOutcome at_peak = RunOverload(kRate, kDuration, kRate, 7);
  const OverloadOutcome at_2x =
      RunOverload(2.0 * kRate, kDuration, kRate, 7);

  // Peak actually saturates: goodput at 1x is a healthy fraction of
  // the offered rate.
  EXPECT_GT(at_peak.goodput, 0.6 * kRate);

  // THE acceptance property: doubling offered load past saturation
  // does not collapse goodput — admission control converts overload
  // into typed sheds instead of lock-conflict livelock. Bounded
  // factor: at 2x we keep at least 70% of peak goodput.
  EXPECT_GT(at_2x.goodput, 0.7 * at_peak.goodput);

  // The surplus was shed, and shed is bounded too: roughly the
  // overload fraction (1/2), not everything.
  EXPECT_GT(at_2x.shed_fraction, 0.25);
  EXPECT_LT(at_2x.shed_fraction, 0.75);
}

TEST(SimFrontDoorOverloadTest, OverloadRunIsDeterministic) {
  const OverloadOutcome a = RunOverload(400.0, 2.0, 200.0, 11);
  const OverloadOutcome b = RunOverload(400.0, 2.0, 200.0, 11);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_DOUBLE_EQ(a.goodput, b.goodput);
  EXPECT_DOUBLE_EQ(a.shed_fraction, b.shed_fraction);
  EXPECT_EQ(a.deadline_exceeded, b.deadline_exceeded);
}

TEST(SimFrontDoorOverloadTest, TraceStaysAuditCleanUnderOverload) {
  SimCluster::Options options;
  options.site_count = 2;
  options.seed = 13;
  VectorTraceSink trace;
  options.trace = &trace;
  SimCluster cluster(options);
  for (int i = 0; i < 4; ++i) {
    cluster.Load(1, "h" + std::to_string(i), Value::Int(0));
  }
  SvcOptions svc;
  svc.admission.rate_limit = 100.0;
  svc.admission.max_inflight = 8;
  svc.default_deadline = 0.3;
  svc.trace = &trace;  // svc_* events interleave with protocol events
  SimFrontDoor door(&cluster, svc);
  Rng arrivals(13);
  Rng pick(14);
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    t += arrivals.NextExponential(1.0 / 400.0);
    const std::string key = "h" + std::to_string(pick.NextBelow(4));
    cluster.sim().At(t, [&door, &cluster, key] {
      door.Call(0, [&cluster, key] {
        return Increment(key, cluster.site_id(1));
      });
    });
  }
  cluster.RunAll();
  // The protocol invariants hold with the serving layer in front, and
  // the auditor tolerates the svc_* event kinds.
  const Status audit = TraceAuditor::Check(trace.Snapshot());
  EXPECT_TRUE(audit.ok()) << audit;
}

// ----------------------------------------------------------------
// ThreadFrontDoor smoke (runs under TSan in CI with the full suite)
// ----------------------------------------------------------------

TEST(ThreadFrontDoorTest, SmokeCommitShedAndDeadline) {
  ThreadCluster::Options options;
  options.site_count = 2;
  options.engine.prepare_timeout = 1.0;
  options.engine.ready_timeout = 1.0;
  ThreadCluster cluster(options);
  cluster.Load(1, "x", Value::Int(0));
  SvcOptions svc;
  // One token, refilled far too slowly to matter in-process: the
  // second call must shed deterministically even on a slow machine.
  svc.admission.rate_limit = 0.01;
  svc.admission.burst = 1.0;
  svc.default_deadline = 5.0;
  ThreadFrontDoor door(&cluster, svc);

  const SvcResult ok = door.Call(0, [&cluster] {
    return Increment("x", cluster.site_id(1));
  });
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.attempts, 1);
  EXPECT_GT(ok.latency, 0.0);

  const SvcResult shed = door.Call(0, [&cluster] {
    return Increment("x", cluster.site_id(1));
  });
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.attempts, 0);

  const SvcResult late = door.Call(
      0, [&cluster] { return Increment("x", cluster.site_id(1)); },
      /*deadline_seconds=*/0.0);
  // Also shed (the bucket is still empty) — which is exactly the typed
  // distinction: this would be DEADLINE_EXCEEDED with admission room.
  EXPECT_EQ(late.status.code(), StatusCode::kResourceExhausted);

  EXPECT_EQ(door.counters().committed.load(), 1u);
  EXPECT_EQ(door.admission().shed(), 2u);
  EXPECT_EQ(door.admission().inflight(), 0u);
  MetricsRegistry registry;
  door.ExportMetrics(&registry);
  EXPECT_EQ(registry.counter("svc.admitted"), 1u);
  EXPECT_EQ(registry.counter("svc.shed"), 2u);
}

TEST(ThreadFrontDoorTest, DeadlineExceededOnZeroBudget) {
  ThreadCluster::Options options;
  options.site_count = 2;
  ThreadCluster cluster(options);
  cluster.Load(1, "x", Value::Int(0));
  ThreadFrontDoor door(&cluster, SvcOptions{});
  const SvcResult late = door.Call(
      0, [&cluster] { return Increment("x", cluster.site_id(1)); },
      /*deadline_seconds=*/0.0);
  EXPECT_EQ(late.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.attempts, 0);
  EXPECT_EQ(door.counters().deadline_exceeded.load(), 1u);
}

TEST(ThreadFrontDoorTest, ConcurrentCallsRespectInflightAccounting) {
  ThreadCluster::Options options;
  options.site_count = 2;
  ThreadCluster cluster(options);
  for (int i = 0; i < 8; ++i) {
    cluster.Load(1, "k" + std::to_string(i), Value::Int(0));
  }
  SvcOptions svc;
  svc.admission.max_inflight = 4;
  svc.default_deadline = 5.0;
  svc.retry_budget.initial = 50.0;
  ThreadFrontDoor door(&cluster, svc);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 4;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> ok_calls{0};
  std::atomic<uint64_t> typed_failures{0};
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&door, &cluster, &ok_calls, &typed_failures,
                          th] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        const std::string key = "k" + std::to_string((th + i) % 8);
        const SvcResult r = door.Call(0, [&cluster, key] {
          return Increment(key, cluster.site_id(1));
        });
        if (r.ok()) {
          ok_calls.fetch_add(1);
        } else {
          // Every failure must be typed from the svc error space.
          const StatusCode c = r.status.code();
          EXPECT_TRUE(c == StatusCode::kResourceExhausted ||
                      c == StatusCode::kDeadlineExceeded ||
                      c == StatusCode::kAborted)
              << r.status;
          typed_failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_GT(ok_calls.load(), 0u);
  EXPECT_EQ(ok_calls.load() + typed_failures.load(),
            static_cast<uint64_t>(kThreads * kCallsPerThread));
  EXPECT_EQ(door.admission().inflight(), 0u);
  // Settlements (latency recordings) match admissions exactly.
  EXPECT_EQ(door.latency().count(), door.admission().admitted());
}

}  // namespace
}  // namespace polyvalue
