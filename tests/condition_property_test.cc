// Property tests: the SOP algebra against the BDD oracle on randomly
// generated formulas. Every connective, Assume, and the semantic queries
// must agree with the exact BDD semantics; the Blake canonical form must
// make syntactic equality coincide with semantic equivalence.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/condition/bdd.h"
#include "src/condition/condition.h"

namespace polyvalue {
namespace {

constexpr int kVariableCount = 4;

// Generates a random condition over kVariableCount transactions with the
// given recursion depth.
Condition RandomCondition(Rng* rng, int depth) {
  if (depth == 0) {
    const uint64_t pick = rng->NextBelow(kVariableCount + 2);
    if (pick == 0) {
      return Condition::True();
    }
    if (pick == 1) {
      return Condition::False();
    }
    const TxnId txn(pick - 1);
    return rng->NextBool(0.5) ? Condition::Committed(txn)
                              : Condition::Aborted(txn);
  }
  const uint64_t op = rng->NextBelow(3);
  if (op == 0) {
    return Condition::And(RandomCondition(rng, depth - 1),
                          RandomCondition(rng, depth - 1));
  }
  if (op == 1) {
    return Condition::Or(RandomCondition(rng, depth - 1),
                         RandomCondition(rng, depth - 1));
  }
  return Condition::Not(RandomCondition(rng, depth - 1));
}

// Exhaustive agreement between a Condition and a BDD over all 2^n
// assignments.
void ExpectSameFunction(const Condition& c, BddManager* bdd, BddRef f) {
  for (uint64_t bits = 0; bits < (1u << kVariableCount); ++bits) {
    std::unordered_map<TxnId, bool> outcomes;
    BddRef restricted = f;
    for (int v = 0; v < kVariableCount; ++v) {
      const bool value = (bits >> v) & 1;
      outcomes.emplace(TxnId(v + 1), value);
      restricted = bdd->Restrict(restricted, TxnId(v + 1), value);
    }
    ASSERT_TRUE(restricted == BddManager::kTrue ||
                restricted == BddManager::kFalse);
    EXPECT_EQ(c.Evaluate(outcomes), restricted == BddManager::kTrue)
        << c.ToString() << " under bits=" << bits;
  }
}

class ConditionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConditionPropertyTest, ConnectivesMatchBddSemantics) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    BddManager bdd;
    const Condition a = RandomCondition(&rng, 3);
    const Condition b = RandomCondition(&rng, 3);
    const BddRef fa = bdd.FromCondition(a);
    const BddRef fb = bdd.FromCondition(b);
    ExpectSameFunction(Condition::And(a, b), &bdd, bdd.And(fa, fb));
    ExpectSameFunction(Condition::Or(a, b), &bdd, bdd.Or(fa, fb));
    ExpectSameFunction(Condition::Not(a), &bdd, bdd.Not(fa));
  }
}

TEST_P(ConditionPropertyTest, AssumeMatchesRestrict) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 40; ++trial) {
    BddManager bdd;
    const Condition c = RandomCondition(&rng, 3);
    const TxnId txn(1 + rng.NextBelow(kVariableCount));
    const bool value = rng.NextBool(0.5);
    const Condition assumed = c.Assume(txn, value);
    BddRef restricted = bdd.Restrict(bdd.FromCondition(c), txn, value);
    // The assumed condition must not mention txn any more.
    for (TxnId var : assumed.Variables()) {
      EXPECT_NE(var, txn);
    }
    ExpectSameFunction(assumed, &bdd, restricted);
  }
}

TEST_P(ConditionPropertyTest, SemanticQueriesMatchBdd) {
  Rng rng(GetParam() ^ 0x123456);
  for (int trial = 0; trial < 40; ++trial) {
    BddManager bdd;
    const Condition a = RandomCondition(&rng, 3);
    const Condition b = RandomCondition(&rng, 3);
    const BddRef fa = bdd.FromCondition(a);
    const BddRef fb = bdd.FromCondition(b);
    EXPECT_EQ(a.IsTautology(), fa == BddManager::kTrue) << a.ToString();
    EXPECT_EQ(a.Implies(b),
              bdd.Or(bdd.Not(fa), fb) == BddManager::kTrue);
    EXPECT_EQ(a.EquivalentTo(b), fa == fb);
    EXPECT_EQ(a.DisjointWith(b), bdd.And(fa, fb) == BddManager::kFalse);
  }
}

TEST_P(ConditionPropertyTest, BlakeFormIsCanonical) {
  // Equivalent formulas must canonicalise to syntactically equal
  // conditions — this is what lets polyvalue pair-merging recognise
  // certainty.
  Rng rng(GetParam() ^ 0x777);
  for (int trial = 0; trial < 60; ++trial) {
    BddManager bdd;
    const Condition a = RandomCondition(&rng, 3);
    const Condition b = RandomCondition(&rng, 3);
    const bool equivalent =
        bdd.FromCondition(a) == bdd.FromCondition(b);
    EXPECT_EQ(a == b, equivalent)
        << a.ToString() << " vs " << b.ToString();
  }
}

TEST_P(ConditionPropertyTest, CountModelsMatchesBdd) {
  Rng rng(GetParam() ^ 0xbeef);
  std::vector<TxnId> vars;
  for (int v = 1; v <= kVariableCount; ++v) {
    vars.push_back(TxnId(v));
  }
  for (int trial = 0; trial < 40; ++trial) {
    BddManager bdd;
    const Condition c = RandomCondition(&rng, 3);
    EXPECT_EQ(c.CountModels(vars),
              bdd.CountModels(bdd.FromCondition(c), vars));
  }
}

TEST_P(ConditionPropertyTest, BddRoundTripPreservesFunction) {
  Rng rng(GetParam() ^ 0x5555);
  for (int trial = 0; trial < 40; ++trial) {
    BddManager bdd;
    const Condition c = RandomCondition(&rng, 3);
    const BddRef f = bdd.FromCondition(c);
    EXPECT_EQ(bdd.FromCondition(bdd.ToCondition(f)), f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConditionPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace polyvalue
