// Golden trace for the paper's opening scenario: a funds transfer
// between accounts at two different sites (Figure 1's state machine on
// the happy path). With a fixed seed and a fixed network delay, the
// deterministic simulator must produce the exact same event sequence on
// every run — any reordering of the protocol's steps shows up as a diff
// against the golden sequence below, making the protocol's choreography
// itself a regression test.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/audit.h"
#include "src/system/cluster.h"

namespace polyvalue {
namespace {

// "type site" (plus the item key where present) for every engine-level
// event; transport deliveries are elided — they carry no protocol
// decision, only latency.
std::vector<std::string> EngineEventLines(
    const std::vector<TraceEvent>& events) {
  std::vector<std::string> lines;
  for (const TraceEvent& e : events) {
    if (e.type == TraceEventType::kMsgDelivered ||
        e.type == TraceEventType::kMsgDropped) {
      continue;
    }
    std::string line =
        std::string(TraceEventTypeName(e.type)) + " " + ToString(e.site);
    if (!e.key.empty()) {
      line += " " + e.key;
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

TEST(GoldenTraceTest, Figure1FundsTransfer) {
  VectorTraceSink trace;
  SimCluster::Options options;
  options.site_count = 2;
  options.seed = 7;
  options.trace = &trace;
  // A single fixed delay keeps message arrival order fully determined.
  options.min_delay = 0.001;
  options.max_delay = 0.001;
  SimCluster cluster(options);

  cluster.Load(0, "acct/savings", Value::Int(100));
  cluster.Load(1, "acct/checking", Value::Int(50));

  TxnSpec spec;
  spec.ReadWrite("acct/savings", cluster.site_id(0));
  spec.ReadWrite("acct/checking", cluster.site_id(1));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["acct/savings"] = Value::Int(reads.IntAt("acct/savings") - 10);
    e.writes["acct/checking"] = Value::Int(reads.IntAt("acct/checking") + 10);
    e.output = Value::Bool(true);
    return e;
  });

  const std::optional<TxnResult> result =
      cluster.SubmitAndRun(0, std::move(spec));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  cluster.RunAll();  // drain the COMPLETE deliveries

  EXPECT_EQ(cluster.site(0).Peek("acct/savings")->certain_value().int_value(),
            90);
  EXPECT_EQ(
      cluster.site(1).Peek("acct/checking")->certain_value().int_value(),
      60);

  // The exact choreography: submit, both participants enter compute,
  // the coordinator executes and ships, both vote READY, the
  // coordinator decides, and the outcome propagates to both sides.
  const std::vector<std::string> kGolden = {
      "submit S1",
      "prepare_recv S1",
      "prepare_replied S1",
      "prepare_recv S2",
      "prepare_replied S2",
      "vote_collected S1",
      "vote_collected S1",
      "write_shipped S1",
      "ready_sent S1",
      "ready_sent S2",
      "vote_collected S1",
      "vote_collected S1",
      "decision_commit S1",
      "outcome_learned S1",
      "outcome_learned S2",
  };
  EXPECT_EQ(EngineEventLines(trace.Snapshot()), kGolden);

  // And the sequence is legal by the auditor's invariants.
  const Status audit = TraceAuditor::Check(trace.Snapshot());
  EXPECT_TRUE(audit.ok()) << audit.message();
}

}  // namespace
}  // namespace polyvalue
