// Unit tests for string helpers.
#include "src/common/strings.h"

#include <gtest/gtest.h>

#include <vector>

namespace polyvalue {
namespace {

TEST(StringsTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("x=", 42, ", y=", 1.5), "x=42, y=1.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, StrJoin) {
  const std::vector<int> v = {1, 2, 3};
  EXPECT_EQ(StrJoin(v, ", "), "1, 2, 3");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ","), "");
  EXPECT_EQ(StrJoin(std::vector<int>{7}, ","), "7");
}

TEST(StringsTest, StrSplitKeepsEmptyFields) {
  const auto parts = StrSplit("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, StrSplitNoSeparator) {
  const auto parts = StrSplit("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("acct/3/1", "acct/"));
  EXPECT_FALSE(StartsWith("ac", "acct/"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringsTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(2.50), "2.5");
  EXPECT_EQ(FormatDouble(0.001), "0.001");
  EXPECT_EQ(FormatDouble(-1.20), "-1.2");
}

TEST(StringsTest, FormatDoubleRespectsMaxDecimals) {
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 1), "0.3");
}

}  // namespace
}  // namespace polyvalue
