// Tests for the runtime lock-order validator (src/common/lockdep.h).
//
// The recorder's API (OnAcquire/OnRelease/OnDestroy) is exercised
// directly so the detector logic is covered in every build mode; the
// final test drives it through the instrumented Mutex itself and is
// meaningful only under -DPOLYV_LOCKDEP=ON (it skips otherwise).
// polyverify's --check-lockdep consumes the JSON dump whose shape the
// last tests pin down.
#include "src/common/lockdep.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"

namespace polyvalue {
namespace {

// The report handler is a plain function pointer, so captures go
// through a file-level vector. EmitLocked invokes the handler under
// lockdep's own lock, which serialises appends from test threads.
std::vector<std::string>& Reports() {
  static std::vector<std::string>* reports = new std::vector<std::string>;
  return *reports;
}

void CaptureReport(const std::string& text) { Reports().push_back(text); }

bool Mentions(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

int CountMentions(const std::string& text, const std::string& needle) {
  int n = 0;
  for (size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdep::ResetForTest();
    Reports().clear();
    prev_ = lockdep::SetReportHandler(&CaptureReport);
  }
  void TearDown() override {
    lockdep::SetReportHandler(prev_);
    lockdep::ResetForTest();
  }
  lockdep::ReportHandler prev_ = nullptr;
};

TEST_F(LockdepTest, RankRespectingNestingIsSilent) {
  int lo = 0, hi = 0;  // any distinct addresses work as mutex identities
  lockdep::OnAcquire(&lo, static_cast<int>(LockRank::kClientWait));
  lockdep::OnAcquire(&hi, static_cast<int>(LockRank::kEngine));
  lockdep::OnRelease(&hi);
  lockdep::OnRelease(&lo);
  EXPECT_EQ(lockdep::ReportCount(), 0);
  EXPECT_TRUE(Reports().empty());
}

TEST_F(LockdepTest, RankInversionNamesBothSitesAndRanks) {
  int lo = 0, hi = 0;
  lockdep::OnAcquire(&hi, static_cast<int>(LockRank::kEngine));
  lockdep::OnAcquire(&lo, static_cast<int>(LockRank::kClientWait));
  lockdep::OnRelease(&lo);
  lockdep::OnRelease(&hi);
  ASSERT_EQ(Reports().size(), 1u);
  const std::string& report = Reports()[0];
  EXPECT_TRUE(Mentions(report, "lock-rank violation")) << report;
  EXPECT_TRUE(Mentions(report, "kEngine")) << report;
  EXPECT_TRUE(Mentions(report, "kClientWait")) << report;
  // Both the held acquisition and the violating acquisition are in this
  // file, and the report names each site.
  EXPECT_EQ(CountMentions(report, "lockdep_test.cc"), 2) << report;
}

TEST_F(LockdepTest, RankInversionIsReportedOncePerPair) {
  int lo = 0, hi = 0;
  for (int i = 0; i < 3; ++i) {
    lockdep::OnAcquire(&hi, static_cast<int>(LockRank::kEngine));
    lockdep::OnAcquire(&lo, static_cast<int>(LockRank::kClientWait));
    lockdep::OnRelease(&lo);
    lockdep::OnRelease(&hi);
  }
  EXPECT_EQ(Reports().size(), 1u);
}

TEST_F(LockdepTest, RecursiveAcquisitionReported) {
  int mu = 0;
  lockdep::OnAcquire(&mu, 0);
  lockdep::OnAcquire(&mu, 0);
  ASSERT_GE(Reports().size(), 1u);
  EXPECT_TRUE(Mentions(Reports()[0], "recursive acquisition"))
      << Reports()[0];
}

// The classic ABBA deadlock between two unranked mutexes: thread one
// nests a -> b, thread two nests b -> a. Neither thread alone is wrong
// (no rank is declared), but the merged graph has a cycle, and the
// report must name the acquisition site of every edge so the deadlock
// can be fixed without reproducing it.
TEST_F(LockdepTest, AbbaCycleNamesBothAcquisitionSites) {
  int a = 0, b = 0;
  std::thread first([&] {
    lockdep::OnAcquire(&a, 0);
    lockdep::OnAcquire(&b, 0);
    lockdep::OnRelease(&b);
    lockdep::OnRelease(&a);
  });
  first.join();
  std::thread second([&] {
    lockdep::OnAcquire(&b, 0);
    lockdep::OnAcquire(&a, 0);
    lockdep::OnRelease(&a);
    lockdep::OnRelease(&b);
  });
  second.join();
  ASSERT_EQ(Reports().size(), 1u);
  const std::string& report = Reports()[0];
  EXPECT_TRUE(Mentions(report, "lock-order cycle")) << report;
  // One "while acquiring ... at <site>" line per edge of the 2-cycle,
  // each naming its inner acquisition site in this file.
  EXPECT_EQ(CountMentions(report, "while acquiring"), 2) << report;
  EXPECT_GE(CountMentions(report, "lockdep_test.cc"), 2) << report;
  // The same cycle is not re-reported on later releases.
  lockdep::OnAcquire(&a, 0);
  lockdep::OnRelease(&a);
  EXPECT_EQ(Reports().size(), 1u);
}

TEST_F(LockdepTest, DestroyPrunesEdgesSoAddressReuseCannotFabricateCycles) {
  int a = 0, b = 0;
  lockdep::OnAcquire(&a, 0);
  lockdep::OnAcquire(&b, 0);
  lockdep::OnRelease(&b);
  lockdep::OnRelease(&a);
  // "a" dies and its storage is reused by a fresh mutex; the old a -> b
  // edge must not survive to combine with the new b -> a nesting.
  lockdep::OnDestroy(&a);
  lockdep::OnAcquire(&b, 0);
  lockdep::OnAcquire(&a, 0);
  lockdep::OnRelease(&a);
  lockdep::OnRelease(&b);
  EXPECT_EQ(lockdep::ReportCount(), 0) << Reports()[0];
}

TEST_F(LockdepTest, DumpJsonCarriesRankTableEdgesAndReports) {
  int lo = 0, hi = 0;
  lockdep::OnAcquire(&lo, static_cast<int>(LockRank::kClientWait));
  lockdep::OnAcquire(&hi, static_cast<int>(LockRank::kEngine));
  lockdep::OnRelease(&hi);
  lockdep::OnRelease(&lo);
  const std::string json = lockdep::DumpJson();
  // The declared rank table rides along so --check-lockdep can detect a
  // binary built from a different tree.
  EXPECT_TRUE(Mentions(json, "\"rank_order\"")) << json;
  EXPECT_TRUE(Mentions(json, "{\"name\": \"kClientWait\", \"rank\": 30}"))
      << json;
  // The observed nesting appears as a ranked edge with both sites.
  EXPECT_TRUE(Mentions(json, "\"held_name\": \"kClientWait\"")) << json;
  EXPECT_TRUE(Mentions(json, "\"acquired_name\": \"kEngine\"")) << json;
  EXPECT_EQ(CountMentions(json, "lockdep_test.cc"), 2) << json;
  EXPECT_TRUE(Mentions(json, "\"reports\": []")) << json;
}

#if defined(POLYV_LOCKDEP)
// End-to-end through the instrumented Mutex: Lock/Unlock drive the
// recorder without any explicit calls.
TEST_F(LockdepTest, InstrumentedMutexReportsAbba) {
  Mutex a;  // unranked: the rank check stays silent, cycle detection
  Mutex b;  // still applies
  std::thread first([&] {
    a.Lock();
    b.Lock();
    b.Unlock();
    a.Unlock();
  });
  first.join();
  std::thread second([&] {
    b.Lock();
    a.Lock();
    a.Unlock();
    b.Unlock();
  });
  second.join();
  ASSERT_EQ(Reports().size(), 1u);
  EXPECT_TRUE(Mentions(Reports()[0], "lock-order cycle")) << Reports()[0];
}
#else
TEST_F(LockdepTest, InstrumentedMutexReportsAbba) {
  GTEST_SKIP() << "configure with -DPOLYV_LOCKDEP=ON to drive the "
                  "recorder through the instrumented Mutex";
}
#endif

}  // namespace
}  // namespace polyvalue
