// Site-level behaviours: stats, lifecycle guards, default factories.
#include "src/system/site.h"

#include <gtest/gtest.h>

#include "src/net/sim_transport.h"
#include "src/system/cluster.h"

namespace polyvalue {
namespace {

TEST(SiteTest, StartTwiceFails) {
  Simulator sim;
  FaultPlan faults;
  Rng rng(1);
  SimTransport transport(&sim, &faults, &rng);
  SimScheduler scheduler(&sim);
  Site site(SiteId(1), &transport, &scheduler);
  ASSERT_TRUE(site.Start().ok());
  EXPECT_EQ(site.Start().code(), StatusCode::kFailedPrecondition);
}

TEST(SiteTest, DefaultFactoryServesMissingItems) {
  Simulator sim;
  FaultPlan faults;
  Rng rng(1);
  SimTransport transport(&sim, &faults, &rng);
  SimScheduler scheduler(&sim);
  Site::Options options;
  options.default_factory = [](const ItemKey&) {
    return PolyValue::Certain(Value::Int(0));
  };
  Site site(SiteId(1), &transport, &scheduler, options);
  ASSERT_TRUE(site.Start().ok());
  EXPECT_EQ(site.Peek("anything").value().certain_value(), Value::Int(0));
}

TEST(SiteTest, GetStatsReflectsState) {
  SimCluster::Options options;
  options.site_count = 2;
  options.engine.wait_timeout = 0.05;
  options.engine.inquiry_interval = 0.2;
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  SimCluster cluster(options);
  cluster.Load(1, "a", Value::Int(100));
  cluster.Load(1, "b", Value::Int(50));

  Site::Stats stats = cluster.site(1).GetStats();
  EXPECT_EQ(stats.items, 2u);
  EXPECT_EQ(stats.uncertain_items, 0u);
  EXPECT_EQ(stats.locked_items, 0u);
  EXPECT_EQ(stats.tracked_transactions, 0u);

  // Strand an update: uncertain item + tracked transaction appear.
  TxnSpec spec;
  spec.ReadWrite("a", cluster.site_id(1));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["a"] = Value::Int(reads.IntAt("a") - 1);
    return e;
  });
  cluster.Submit(0, std::move(spec), [](const TxnResult&) {});
  cluster.sim().At(0.035, [&cluster] { cluster.CrashSite(0); });
  cluster.RunFor(0.3);

  stats = cluster.site(1).GetStats();
  EXPECT_EQ(stats.items, 2u);
  EXPECT_EQ(stats.uncertain_items, 1u);
  EXPECT_EQ(stats.locked_items, 0u);  // polyvalue policy released locks
  EXPECT_EQ(stats.tracked_transactions, 1u);
  EXPECT_EQ(stats.engine.polyvalue_installs, 1u);

  // Recovery clears everything.
  cluster.RecoverSite(0);
  cluster.RunFor(2.0);
  stats = cluster.site(1).GetStats();
  EXPECT_EQ(stats.uncertain_items, 0u);
  EXPECT_EQ(stats.tracked_transactions, 0u);
  EXPECT_EQ(stats.engine.polyvalues_resolved, 1u);
}

TEST(SiteTest, PhaseInstrumentationAccumulates) {
  SimCluster::Options options;
  options.site_count = 2;
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  SimCluster cluster(options);
  cluster.Load(1, "x", Value::Int(0));
  TxnSpec spec;
  spec.ReadWrite("x", cluster.site_id(1));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["x"] = Value::Int(reads.IntAt("x") + 1);
    return e;
  });
  ASSERT_TRUE(cluster.SubmitAndRun(0, std::move(spec)).has_value());
  cluster.RunFor(0.5);
  const EngineMetrics m = cluster.site(1).engine().metrics();
  EXPECT_EQ(m.compute_phase_count, 1u);
  EXPECT_EQ(m.wait_phase_count, 1u);
  // 10 ms links: compute = reply+writereq = 20 ms, window = ready+complete
  // = 20 ms.
  EXPECT_NEAR(m.compute_phase_seconds, 0.02, 0.005);
  EXPECT_NEAR(m.wait_phase_seconds, 0.02, 0.005);
}

}  // namespace
}  // namespace polyvalue
