// Sim-vs-thread equivalence: one seeded workload, four runtimes.
//
// The same deterministic transaction sequence is driven through a
// SimCluster and a ThreadCluster, each with message batching off and on
// (the threaded batched run also turns on group-commit WAL). All four
// runs must produce identical per-transaction outcomes and an identical
// final committed database — the knobs may only change WHEN things
// happen, never WHAT the protocol decides.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/system/cluster.h"

namespace polyvalue {
namespace {

constexpr size_t kSites = 3;
constexpr int kItems = 8;
constexpr int kTxns = 30;
constexpr uint64_t kSeed = 0xC0FFEE;

std::string ItemName(int j) { return "item" + std::to_string(j); }

// One step of the workload, precomputed from the seed so every runtime
// executes the exact same transaction list.
struct Step {
  size_t coordinator;
  std::vector<int> items;  // distinct item indices
  int64_t delta;
};

std::vector<Step> MakeWorkload() {
  Rng rng(kSeed);
  std::vector<Step> steps;
  for (int i = 0; i < kTxns; ++i) {
    Step step;
    step.coordinator = rng.NextBelow(kSites);
    const int first = static_cast<int>(rng.NextBelow(kItems));
    step.items.push_back(first);
    if (rng.NextBelow(2) == 1) {
      const int second = static_cast<int>(rng.NextBelow(kItems));
      if (second != first) {
        step.items.push_back(second);
      }
    }
    step.delta = rng.NextInt(1, 9);
    steps.push_back(std::move(step));
  }
  return steps;
}

TxnSpec SpecFor(const Step& step,
                const std::function<SiteId(int)>& owner_of) {
  TxnSpec spec;
  for (int item : step.items) {
    spec.ReadWrite(ItemName(item), owner_of(item));
  }
  spec.Logic([step](const TxnReads& reads) {
    TxnEffect e;
    for (int item : step.items) {
      e.writes[ItemName(item)] =
          Value::Int(reads.IntAt(ItemName(item)) + step.delta);
    }
    return e;
  });
  return spec;
}

// What a run produces: the per-step commit/abort sequence and each
// site's final certain database.
struct RunResult {
  std::vector<bool> outcomes;
  // site index -> key -> final certain value
  std::vector<std::map<std::string, Value>> db;

  bool operator==(const RunResult& other) const {
    return outcomes == other.outcomes && db == other.db;
  }
};

// Quiescent: decision distributed, every lock released, every
// polyvalue reduced. The workload waits for this between transactions —
// the client callback fires at decision time, BEFORE the COMPLETE round
// releases participant locks, so back-to-back submissions would hit
// transient lock conflicts and make outcomes timing-dependent.
template <typename Cluster>
bool Quiescent(Cluster& cluster) {
  for (size_t s = 0; s < kSites; ++s) {
    if (cluster.site(s).store().UncertainCount() != 0 ||
        cluster.site(s).store().locked_count() != 0) {
      return false;
    }
  }
  return true;
}

template <typename Cluster>
std::vector<std::map<std::string, Value>> SnapshotDb(Cluster& cluster) {
  std::vector<std::map<std::string, Value>> db(kSites);
  for (size_t s = 0; s < kSites; ++s) {
    cluster.site(s).store().ForEach(
        [&db, s](const ItemKey& key, const PolyValue& value) {
          ASSERT_TRUE(value.is_certain()) << key << " still uncertain";
          db[s][key] = value.certain_value();
        });
  }
  return db;
}

EngineConfig Config(ProtocolLeg leg = ProtocolLeg::kTwoPhase) {
  EngineConfig config;
  config.prepare_timeout = 1.0;
  config.ready_timeout = 1.0;
  config.wait_timeout = 0.5;
  config.inquiry_interval = 0.1;
  config.leg = leg;
  config.paxos_failover_timeout = 0.3;
  return config;
}

RunResult RunOnSim(bool batching,
                   ProtocolLeg leg = ProtocolLeg::kTwoPhase) {
  SimCluster::Options options;
  options.site_count = kSites;
  options.engine = Config(leg);
  options.seed = kSeed;
  options.enable_batching = batching;
  SimCluster cluster(options);
  for (int j = 0; j < kItems; ++j) {
    cluster.Load(j % kSites, ItemName(j), Value::Int(0));
  }
  RunResult run;
  const auto owner_of = [&cluster](int item) {
    return cluster.site_id(item % kSites);
  };
  for (const Step& step : MakeWorkload()) {
    const auto result =
        cluster.SubmitAndRun(step.coordinator, SpecFor(step, owner_of));
    run.outcomes.push_back(result.has_value() && result->committed());
    for (int i = 0; i < 600 && !Quiescent(cluster); ++i) {
      cluster.RunFor(0.05);
    }
  }
  EXPECT_TRUE(Quiescent(cluster));
  run.db = SnapshotDb(cluster);
  return run;
}

RunResult RunOnThreads(bool batching, const std::string& wal_dir,
                       ProtocolLeg leg = ProtocolLeg::kTwoPhase) {
  ThreadCluster::Options options;
  options.site_count = kSites;
  options.engine = Config(leg);
  options.seed = kSeed;
  options.enable_batching = batching;
  if (!wal_dir.empty()) {
    options.wal_dir = wal_dir;
    options.wal.sync_policy = Wal::SyncPolicy::kGroupCommit;
  }
  ThreadCluster cluster(options);
  for (int j = 0; j < kItems; ++j) {
    cluster.Load(j % kSites, ItemName(j), Value::Int(0));
  }
  RunResult run;
  const auto owner_of = [&cluster](int item) {
    return cluster.site_id(item % kSites);
  };
  for (const Step& step : MakeWorkload()) {
    const auto result = cluster.SubmitAndWait(
        step.coordinator, SpecFor(step, owner_of), /*timeout_seconds=*/20.0);
    run.outcomes.push_back(result.has_value() && result->committed());
    for (int i = 0; i < 4000 && !Quiescent(cluster); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_TRUE(Quiescent(cluster));
  run.db = SnapshotDb(cluster);
  return run;
}

TEST(SimThreadEquivalenceTest, FourRuntimesOneHistory) {
  // The workload is sequential (each transaction completes before the
  // next is submitted), so every runtime must commit all of them and
  // land on the same database.
  const RunResult sim_plain = RunOnSim(/*batching=*/false);
  for (bool committed : sim_plain.outcomes) {
    EXPECT_TRUE(committed);
  }

  const RunResult sim_batched = RunOnSim(/*batching=*/true);
  EXPECT_TRUE(sim_plain == sim_batched)
      << "sim batching changed protocol outcomes";

  const RunResult threads_plain = RunOnThreads(/*batching=*/false, "");
  EXPECT_TRUE(sim_plain == threads_plain)
      << "threaded runtime diverged from simulator";

  const std::string wal_dir = testing::TempDir() + "equiv_wal";
  std::remove((wal_dir + "/site0.wal").c_str());
  std::remove((wal_dir + "/site1.wal").c_str());
  std::remove((wal_dir + "/site2.wal").c_str());
  mkdir(wal_dir.c_str(), 0755);
  const RunResult threads_batched = RunOnThreads(/*batching=*/true, wal_dir);
  EXPECT_TRUE(sim_plain == threads_batched)
      << "batched+group-commit threaded runtime diverged";
}

TEST(SimThreadEquivalenceTest, SimBatchingIsDeterministicPerSeed) {
  // Two identical batched sim runs must agree event-for-event — here
  // checked through outcomes, final DB, and the packet counters.
  SimCluster::Options options;
  options.site_count = kSites;
  options.engine = Config();
  options.seed = kSeed;
  options.enable_batching = true;

  uint64_t first_packets = 0;
  RunResult first;
  for (int round = 0; round < 2; ++round) {
    SimCluster cluster(options);
    for (int j = 0; j < kItems; ++j) {
      cluster.Load(j % kSites, ItemName(j), Value::Int(0));
    }
    RunResult run;
    const auto owner_of = [&cluster](int item) {
      return cluster.site_id(item % kSites);
    };
    for (const Step& step : MakeWorkload()) {
      const auto result =
          cluster.SubmitAndRun(step.coordinator, SpecFor(step, owner_of));
      run.outcomes.push_back(result.has_value() && result->committed());
    }
    cluster.RunFor(30.0);
    run.db = SnapshotDb(cluster);
    if (round == 0) {
      first = run;
      first_packets = cluster.transport().packets_sent();
    } else {
      EXPECT_TRUE(first == run);
      EXPECT_EQ(first_packets, cluster.transport().packets_sent());
    }
  }
}

TEST(SimThreadEquivalenceTest, PaxosLegAgreesAcrossRuntimes) {
  // The Paxos Commit leg must make the SAME decisions as it does on the
  // simulator when run on real threads: runtimes change scheduling,
  // never protocol outcomes. The sequential workload commits everywhere
  // and both runtimes land on the identical database — which must also
  // equal what 2PC commits for this contention-free history.
  const RunResult sim_paxos =
      RunOnSim(/*batching=*/false, ProtocolLeg::kPaxosCommit);
  for (bool committed : sim_paxos.outcomes) {
    EXPECT_TRUE(committed);
  }

  const RunResult threads_paxos =
      RunOnThreads(/*batching=*/false, "", ProtocolLeg::kPaxosCommit);
  EXPECT_TRUE(sim_paxos == threads_paxos)
      << "threaded Paxos runtime diverged from simulator";

  const RunResult sim_2pc = RunOnSim(/*batching=*/false);
  EXPECT_TRUE(sim_paxos.db == sim_2pc.db)
      << "Paxos Commit and 2PC disagree on a contention-free history";
}

}  // namespace
}  // namespace polyvalue
