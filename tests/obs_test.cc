// Unit tests for the observability layer: MetricsRegistry JSON export
// (escaping, empty registry, histogram buckets, merge semantics) and the
// TraceAuditor's rejection of hand-built illegal traces — the negative
// side of the invariant checks the chaos suite exercises positively.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/audit.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace polyvalue {
namespace {

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, EmptyRegistryJson) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.ToJson(),
            "{\"counters\": {}, \"gauges\": {}, \"stats\": {}, "
            "\"histograms\": {}}");
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_FALSE(registry.Has("anything"));
  EXPECT_EQ(registry.counter("anything"), 0u);
}

TEST(MetricsRegistryTest, CountersAndGauges) {
  MetricsRegistry registry;
  registry.Counter("a");
  registry.Counter("a", 4);
  registry.SetCounter("b", 7);
  registry.Gauge("g", 1.5);
  EXPECT_EQ(registry.counter("a"), 5u);
  EXPECT_EQ(registry.counter("b"), 7u);
  EXPECT_DOUBLE_EQ(registry.gauge("g"), 1.5);
  EXPECT_TRUE(registry.Has("a"));
  EXPECT_TRUE(registry.Has("g"));
  EXPECT_EQ(registry.ToJson(),
            "{\"counters\": {\"a\": 5, \"b\": 7}, \"gauges\": {\"g\": 1.5}, "
            "\"stats\": {}, \"histograms\": {}}");
}

TEST(MetricsRegistryTest, EscapeJson) {
  EXPECT_EQ(MetricsRegistry::EscapeJson("plain"), "plain");
  EXPECT_EQ(MetricsRegistry::EscapeJson("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(MetricsRegistry::EscapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(MetricsRegistry::EscapeJson("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(MetricsRegistry::EscapeJson("tab\there"), "tab\\there");
  EXPECT_EQ(MetricsRegistry::EscapeJson("cr\rhere"), "cr\\rhere");
  EXPECT_EQ(MetricsRegistry::EscapeJson(std::string("nul\x01")),
            "nul\\u0001");
}

TEST(MetricsRegistryTest, EscapedKeysInJsonOutput) {
  MetricsRegistry registry;
  registry.SetCounter("weird \"key\"\n", 1);
  EXPECT_EQ(registry.ToJson(),
            "{\"counters\": {\"weird \\\"key\\\"\\n\": 1}, \"gauges\": {}, "
            "\"stats\": {}, \"histograms\": {}}");
}

TEST(MetricsRegistryTest, StatsJson) {
  MetricsRegistry registry;
  RunningStat* stat = registry.Stat("latency");
  stat->Add(1.0);
  stat->Add(3.0);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"latency\": {\"count\": 2, \"mean\": 2"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"min\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\": 4"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, HistogramBucketsJson) {
  MetricsRegistry registry;
  Histogram* hist = registry.Hist("delay", 0.0, 10.0, 5);
  hist->Add(-1.0);  // underflow
  hist->Add(1.0);   // bucket 0
  hist->Add(3.0);   // bucket 1
  hist->Add(3.5);   // bucket 1
  hist->Add(99.0);  // overflow
  // Re-requesting an existing name ignores the shape and returns the
  // same accumulator.
  EXPECT_EQ(registry.Hist("delay", 0.0, 1.0, 1), hist);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"delay\": {\"lo\": 0, \"hi\": 10, \"count\": 5, "
                      "\"underflow\": 1, \"overflow\": 1, "
                      "\"buckets\": [1, 2, 0, 0, 0]}"),
            std::string::npos)
      << json;
}

TEST(MetricsRegistryTest, MergeSemantics) {
  MetricsRegistry a;
  a.SetCounter("c", 2);
  a.Gauge("g", 1.0);
  a.Stat("s")->Add(1.0);
  a.Hist("h", 0.0, 10.0, 2)->Add(1.0);

  MetricsRegistry b;
  b.SetCounter("c", 3);
  b.Gauge("g", 9.0);
  b.Stat("s")->Add(3.0);
  b.Hist("h", 0.0, 10.0, 2)->Add(7.0);
  b.SetCounter("only_b", 1);

  a.Merge(b);
  EXPECT_EQ(a.counter("c"), 5u);           // counters add
  EXPECT_DOUBLE_EQ(a.gauge("g"), 9.0);     // gauges overwrite
  EXPECT_EQ(a.Stat("s")->count(), 2u);     // stats merge
  EXPECT_DOUBLE_EQ(a.Stat("s")->mean(), 2.0);
  EXPECT_EQ(a.Hist("h", 0, 0, 0)->count(), 2u);  // histograms merge
  EXPECT_EQ(a.counter("only_b"), 1u);
}

TEST(MetricsRegistryTest, WriteJsonFileRoundTrip) {
  MetricsRegistry registry;
  registry.SetCounter("x", 42);
  const std::string path =
      ::testing::TempDir() + "/metrics_registry_test.json";
  ASSERT_TRUE(registry.WriteJsonFile(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), registry.ToJson());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// TraceAuditor negatives: hand-built illegal traces must be rejected.
// ---------------------------------------------------------------------

TraceEvent Ev(TraceEventType type, uint64_t site, uint64_t txn = 0) {
  TraceEvent e;
  e.type = type;
  e.site = SiteId(site);
  e.txn = TxnId(txn);
  return e;
}

TraceEvent EvKey(TraceEventType type, uint64_t site, const ItemKey& key,
                 uint64_t txn = 0) {
  TraceEvent e = Ev(type, site, txn);
  e.key = key;
  return e;
}

TraceEvent EvFlag(TraceEventType type, uint64_t site, uint64_t txn,
                  bool flag) {
  TraceEvent e = Ev(type, site, txn);
  e.flag = flag;
  return e;
}

TEST(TraceAuditorTest, AcceptsLegalHappyPath) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kSubmit, 1, 100),
      Ev(TraceEventType::kPrepareRecv, 2, 100),
      Ev(TraceEventType::kReadySent, 2, 100),
      Ev(TraceEventType::kDecisionCommit, 1, 100),
      EvFlag(TraceEventType::kOutcomeLearned, 2, 100, true),
  };
  EXPECT_TRUE(TraceAuditor::Check(trace).ok());
  EXPECT_TRUE(TraceAuditor().Audit(trace).empty());
}

TEST(TraceAuditorTest, RejectsCommitAfterAbort) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kSubmit, 1, 100),
      Ev(TraceEventType::kDecisionAbort, 1, 100),
      Ev(TraceEventType::kDecisionCommit, 1, 100),
  };
  const auto violations = TraceAuditor().Audit(trace);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().event_index, 2u);
  EXPECT_NE(violations.front().message.find("second terminal decision"),
            std::string::npos);
  EXPECT_FALSE(TraceAuditor::Check(trace).ok());
}

TEST(TraceAuditorTest, RejectsDoubleCommit) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kSubmit, 1, 100),
      Ev(TraceEventType::kDecisionCommit, 1, 100),
      Ev(TraceEventType::kDecisionCommit, 1, 100),
  };
  EXPECT_FALSE(TraceAuditor::Check(trace).ok());
}

TEST(TraceAuditorTest, RejectsEventFromCrashedSite) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kCrash, 2),
      Ev(TraceEventType::kSubmit, 2, 200),
      Ev(TraceEventType::kDecisionCommit, 2, 200),
  };
  const auto violations = TraceAuditor().Audit(trace);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("crashed site"),
            std::string::npos);
  // After recovery the same events are legal (the submit also terminates).
  const std::vector<TraceEvent> healed = {
      Ev(TraceEventType::kCrash, 2),
      Ev(TraceEventType::kRecover, 2),
      Ev(TraceEventType::kSubmit, 2, 200),
      Ev(TraceEventType::kDecisionCommit, 2, 200),
  };
  EXPECT_TRUE(TraceAuditor::Check(healed).ok());
}

TEST(TraceAuditorTest, DropsAreExemptFromCrashSilence) {
  // A packet in flight when the receiver crashed is recorded as dropped;
  // that bookkeeping is not activity of the down site.
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kCrash, 2),
      Ev(TraceEventType::kMsgDropped, 2),
      Ev(TraceEventType::kRecover, 2),
  };
  EXPECT_TRUE(TraceAuditor::Check(trace).ok());
}

TEST(TraceAuditorTest, RejectsContradictoryLearnedOutcomes) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kSubmit, 1, 100),
      Ev(TraceEventType::kDecisionCommit, 1, 100),
      EvFlag(TraceEventType::kOutcomeLearned, 2, 100, true),
      EvFlag(TraceEventType::kOutcomeLearned, 3, 100, false),
  };
  const auto violations = TraceAuditor().Audit(trace);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("contradicting"),
            std::string::npos);
}

TEST(TraceAuditorTest, RejectsLearnedCommitWithoutDecision) {
  // A3: "committed" cannot be learned before the coordinator decided.
  // (Learned aborts are fine: presumed abort manufactures them.)
  const std::vector<TraceEvent> bad = {
      Ev(TraceEventType::kSubmit, 1, 100),
      EvFlag(TraceEventType::kOutcomeLearned, 2, 100, true),
  };
  EXPECT_FALSE(TraceAuditor::Check(bad, {.expect_quiescent = false}).ok());
  const std::vector<TraceEvent> presumed_abort = {
      EvFlag(TraceEventType::kOutcomeLearned, 2, 100, false),
  };
  EXPECT_TRUE(TraceAuditor::Check(presumed_abort).ok());
}

TEST(TraceAuditorTest, RejectsNotifyWithoutKnowledge) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kSubmit, 1, 100),
      Ev(TraceEventType::kDecisionCommit, 1, 100),
      EvFlag(TraceEventType::kOutcomeNotify, 2, 100, true),
  };
  const auto violations = TraceAuditor().Audit(trace);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("without having learned"),
            std::string::npos);
}

TEST(TraceAuditorTest, RejectsInDoubtWindowWithoutVote) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kSubmit, 1, 100),
      Ev(TraceEventType::kWaitTimeout, 2, 100),
      Ev(TraceEventType::kDecisionAbort, 1, 100),
  };
  const auto violations = TraceAuditor().Audit(trace);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("without a prior READY"),
            std::string::npos);
}

TEST(TraceAuditorTest, QuiescentTraceMustDrainUncertainty) {
  const std::vector<TraceEvent> open = {
      EvKey(TraceEventType::kPolyInstall, 2, "acct/a", 100),
  };
  EXPECT_FALSE(TraceAuditor::Check(open).ok());
  // The same trace is fine when the run is not expected to quiesce.
  EXPECT_TRUE(TraceAuditor::Check(open, {.expect_quiescent = false}).ok());
  // And fine once reduced.
  const std::vector<TraceEvent> drained = {
      EvKey(TraceEventType::kPolyInstall, 2, "acct/a", 100),
      EvKey(TraceEventType::kPolyReduce, 2, "acct/a", 100),
  };
  EXPECT_TRUE(TraceAuditor::Check(drained).ok());
}

TEST(TraceAuditorTest, RejectsReduceWithoutInstall) {
  const std::vector<TraceEvent> trace = {
      EvKey(TraceEventType::kPolyReduce, 2, "acct/a", 100),
  };
  EXPECT_FALSE(TraceAuditor::Check(trace).ok());
}

TEST(TraceAuditorTest, QuiescentTraceMustTerminateSubmits) {
  const std::vector<TraceEvent> dangling = {
      Ev(TraceEventType::kSubmit, 1, 100),
  };
  EXPECT_FALSE(TraceAuditor::Check(dangling).ok());
  EXPECT_TRUE(
      TraceAuditor::Check(dangling, {.expect_quiescent = false}).ok());
  // A coordinator crash after the submit legitimately orphans the client.
  const std::vector<TraceEvent> orphaned = {
      Ev(TraceEventType::kSubmit, 1, 100),
      Ev(TraceEventType::kCrash, 1),
      Ev(TraceEventType::kRecover, 1),
  };
  EXPECT_TRUE(TraceAuditor::Check(orphaned).ok());
}

TEST(TraceAuditorTest, ViolationMessagesNameTheEvent) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kSubmit, 1, 100),
      Ev(TraceEventType::kDecisionAbort, 1, 100),
      Ev(TraceEventType::kDecisionCommit, 1, 100),
  };
  const Status status = TraceAuditor::Check(trace);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("event[2]"), std::string::npos)
      << status.message();
}

}  // namespace
}  // namespace polyvalue
