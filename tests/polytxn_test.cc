// Unit tests for polytransaction execution (§3.2).
#include "src/txn/polytxn.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

const TxnId kT1(1);
const TxnId kT2(2);

PolyValue TwoWay(TxnId txn, int64_t if_commit, int64_t if_abort) {
  return PolyValue::InstallUncertain(
      txn, PolyValue::Certain(Value::Int(if_commit)),
      PolyValue::Certain(Value::Int(if_abort)));
}

TEST(PolyTxnTest, CertainInputsSingleAlternative) {
  std::map<ItemKey, PolyValue> inputs = {
      {"x", PolyValue::Certain(Value::Int(5))}};
  const auto result = ExecutePolyTransaction(
      inputs, inputs,
      [](const TxnReads& reads) {
        TxnEffect e;
        e.writes["x"] = Value::Int(reads.IntAt("x") + 1);
        e.output = Value::Int(reads.IntAt("x"));
        return e;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->alternatives_executed, 1u);
  EXPECT_TRUE(result->writes.at("x").is_certain());
  EXPECT_EQ(result->writes.at("x").certain_value(), Value::Int(6));
  EXPECT_EQ(result->output.certain_value(), Value::Int(5));
}

TEST(PolyTxnTest, UncertainInputForksAlternatives) {
  std::map<ItemKey, PolyValue> inputs = {{"x", TwoWay(kT1, 10, 20)}};
  const auto result = ExecutePolyTransaction(
      inputs, inputs,
      [](const TxnReads& reads) {
        TxnEffect e;
        e.writes["x"] = Value::Int(reads.IntAt("x") * 2);
        return e;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->alternatives_executed, 2u);
  const PolyValue& out = result->writes.at("x");
  EXPECT_EQ(out.ValueUnder({{kT1, true}}).value(), Value::Int(20));
  EXPECT_EQ(out.ValueUnder({{kT1, false}}).value(), Value::Int(40));
  EXPECT_TRUE(out.Validate());
}

TEST(PolyTxnTest, TwoIndependentUncertainInputsFourAlternatives) {
  std::map<ItemKey, PolyValue> inputs = {{"x", TwoWay(kT1, 1, 2)},
                                         {"y", TwoWay(kT2, 10, 20)}};
  const auto result = ExecutePolyTransaction(
      inputs, {},
      [](const TxnReads& reads) {
        TxnEffect e;
        e.writes["sum"] = Value::Int(reads.IntAt("x") + reads.IntAt("y"));
        return e;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->alternatives_executed, 4u);
  const PolyValue& sum = result->writes.at("sum");
  EXPECT_EQ(sum.size(), 4u);
  EXPECT_EQ(sum.ValueUnder({{kT1, false}, {kT2, true}}).value(),
            Value::Int(12));
}

TEST(PolyTxnTest, CorrelatedInputsPruneFalseCombinations) {
  // Both items depend on the same transaction: 2 reachable combinations,
  // 2 pruned.
  std::map<ItemKey, PolyValue> inputs = {{"x", TwoWay(kT1, 1, 2)},
                                         {"y", TwoWay(kT1, 10, 20)}};
  const auto result = ExecutePolyTransaction(
      inputs, {},
      [](const TxnReads& reads) {
        TxnEffect e;
        e.writes["sum"] = Value::Int(reads.IntAt("x") + reads.IntAt("y"));
        return e;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->alternatives_executed, 2u);
  EXPECT_EQ(result->alternatives_pruned, 2u);
  const PolyValue& sum = result->writes.at("sum");
  EXPECT_EQ(sum.ValueUnder({{kT1, true}}).value(), Value::Int(11));
  EXPECT_EQ(sum.ValueUnder({{kT1, false}}).value(), Value::Int(22));
}

TEST(PolyTxnTest, UnwrittenItemFallsBackToPreviousValue) {
  // §3.2: an alternative that does not write an item contributes the
  // item's previous value under its condition.
  std::map<ItemKey, PolyValue> inputs = {{"x", TwoWay(kT1, 100, 0)}};
  std::map<ItemKey, PolyValue> previous = {
      {"flag", PolyValue::Certain(Value::Str("old"))}};
  const auto result = ExecutePolyTransaction(
      inputs, previous,
      [](const TxnReads& reads) {
        TxnEffect e;
        if (reads.IntAt("x") >= 50) {
          e.writes["flag"] = Value::Str("rich");
        }
        return e;
      });
  ASSERT_TRUE(result.ok());
  const PolyValue& flag = result->writes.at("flag");
  EXPECT_EQ(flag.ValueUnder({{kT1, true}}).value(), Value::Str("rich"));
  EXPECT_EQ(flag.ValueUnder({{kT1, false}}).value(), Value::Str("old"));
  EXPECT_TRUE(flag.Validate());
}

TEST(PolyTxnTest, AlternativesAgreeingProduceCertainOutput) {
  // §3.4/§5: a reservation can be granted when every alternative agrees.
  std::map<ItemKey, PolyValue> inputs = {{"seats", TwoWay(kT1, 96, 97)}};
  const auto result = ExecutePolyTransaction(
      inputs, inputs,
      [](const TxnReads& reads) {
        TxnEffect e;
        e.output = Value::Bool(reads.IntAt("seats") < 100);
        return e;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->output.is_certain());
  EXPECT_EQ(result->output.certain_value(), Value::Bool(true));
  EXPECT_TRUE(result->writes.empty());
}

TEST(PolyTxnTest, DisagreeingOutputsStayUncertain) {
  std::map<ItemKey, PolyValue> inputs = {{"seats", TwoWay(kT1, 99, 101)}};
  const auto result = ExecutePolyTransaction(
      inputs, inputs,
      [](const TxnReads& reads) {
        TxnEffect e;
        e.output = Value::Bool(reads.IntAt("seats") < 100);
        return e;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->output.is_certain());
}

TEST(PolyTxnTest, AnyAlternativeAbortAbortsWhole) {
  std::map<ItemKey, PolyValue> inputs = {{"bal", TwoWay(kT1, 100, 10)}};
  const auto result = ExecutePolyTransaction(
      inputs, inputs,
      [](const TxnReads& reads) {
        if (reads.IntAt("bal") < 50) {
          return TxnEffect::Abort("insufficient funds");
        }
        TxnEffect e;
        e.writes["bal"] = Value::Int(reads.IntAt("bal") - 50);
        return e;
      });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_EQ(result.status().message(), "insufficient funds");
}

TEST(PolyTxnTest, FanOutCapEnforced) {
  std::map<ItemKey, PolyValue> inputs;
  for (int i = 0; i < 6; ++i) {
    inputs.emplace("k" + std::to_string(i),
                   TwoWay(TxnId(i + 1), i, i + 100));
  }
  PolyTxnOptions options;
  options.max_alternatives = 16;  // 2^6 = 64 > 16
  const auto result = ExecutePolyTransaction(
      inputs, {},
      [](const TxnReads&) { return TxnEffect{}; }, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PolyTxnTest, NestedDependenciesCompose) {
  // An input that depends on two transactions (three alternatives).
  const PolyValue nested = PolyValue::InstallUncertain(
      kT2, PolyValue::Certain(Value::Int(7)), TwoWay(kT1, 5, 3));
  std::map<ItemKey, PolyValue> inputs = {{"x", nested}};
  const auto result = ExecutePolyTransaction(
      inputs, inputs,
      [](const TxnReads& reads) {
        TxnEffect e;
        e.writes["x"] = Value::Int(reads.IntAt("x") * 10);
        return e;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->alternatives_executed, 3u);
  const PolyValue& out = result->writes.at("x");
  EXPECT_EQ(out.ValueUnder({{kT1, true}, {kT2, true}}).value(),
            Value::Int(70));
  EXPECT_EQ(out.ValueUnder({{kT1, true}, {kT2, false}}).value(),
            Value::Int(50));
  EXPECT_EQ(out.ValueUnder({{kT1, false}, {kT2, false}}).value(),
            Value::Int(30));
  EXPECT_TRUE(out.Validate());
}

TEST(PolyTxnTest, EqualResultsCollapseToCertain) {
  // Uncertainty that cannot affect the computation disappears.
  std::map<ItemKey, PolyValue> inputs = {{"x", TwoWay(kT1, 3, -3)}};
  const auto result = ExecutePolyTransaction(
      inputs, inputs,
      [](const TxnReads& reads) {
        TxnEffect e;
        const int64_t x = reads.IntAt("x");
        e.writes["sq"] = Value::Int(x * x);
        return e;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->writes.at("sq").is_certain());
  EXPECT_EQ(result->writes.at("sq").certain_value(), Value::Int(9));
}

}  // namespace
}  // namespace polyvalue
