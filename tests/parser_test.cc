// Unit and round-trip tests for the condition text parser.
#include "src/condition/parser.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace polyvalue {
namespace {

const TxnId kT1(1);
const TxnId kT2(2);
const TxnId kT3(3);

TEST(ParserTest, Constants) {
  EXPECT_TRUE(ParseCondition("true").value().is_true());
  EXPECT_TRUE(ParseCondition("false").value().is_false());
  EXPECT_TRUE(ParseCondition("  true  ").value().is_true());
}

TEST(ParserTest, SingleLiterals) {
  EXPECT_EQ(ParseCondition("T1").value(), Condition::Committed(kT1));
  EXPECT_EQ(ParseCondition("¬T2").value(), Condition::Aborted(kT2));
  EXPECT_EQ(ParseCondition("!T2").value(), Condition::Aborted(kT2));
  EXPECT_EQ(ParseCondition("~T2").value(), Condition::Aborted(kT2));
}

TEST(ParserTest, TermsAndSums) {
  const Condition expected = Condition::Or(
      Condition::And(Condition::Committed(kT1), Condition::Aborted(kT2)),
      Condition::Committed(kT3));
  EXPECT_EQ(ParseCondition("T1·¬T2 + T3").value(), expected);
  EXPECT_EQ(ParseCondition("T1 & !T2 + T3").value(), expected);
  EXPECT_EQ(ParseCondition("T1*~T2+T3").value(), expected);
}

TEST(ParserTest, ParsingCanonicalises) {
  EXPECT_TRUE(ParseCondition("T1 + !T1").value().is_true());
  EXPECT_EQ(ParseCondition("T1&T2 + T1&!T2").value(),
            Condition::Committed(kT1));
  EXPECT_TRUE(ParseCondition("T1 & !T1").value().is_false());
}

TEST(ParserTest, SiteDotSeqIds) {
  const Condition c = ParseCondition("T3.7").value();
  const std::vector<TxnId> vars = c.Variables();
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0].value(), (3ULL << kTxnSiteShift) | 7);
  // Round-trip through the printer.
  EXPECT_EQ(c.ToString(), "T3.7");
  EXPECT_EQ(ParseCondition(c.ToString()).value(), c);
}

TEST(ParserTest, Rejections) {
  EXPECT_FALSE(ParseCondition("").ok());
  EXPECT_FALSE(ParseCondition("X1").ok());
  EXPECT_FALSE(ParseCondition("T").ok());
  EXPECT_FALSE(ParseCondition("T1 +").ok());
  EXPECT_FALSE(ParseCondition("T1 T2").ok());
  EXPECT_FALSE(ParseCondition("T1 & ").ok());
  EXPECT_FALSE(ParseCondition("truefalse").ok());
  EXPECT_FALSE(ParseCondition("T99999999999999999999999").ok());
}

TEST(ParserTest, RandomRoundTrips) {
  Rng rng(515);
  for (int trial = 0; trial < 200; ++trial) {
    // Random canonical condition via random terms.
    std::vector<Term> terms;
    const int n_terms = 1 + rng.NextBelow(4);
    for (int t = 0; t < n_terms; ++t) {
      std::vector<Literal> literals;
      const int n_lits = 1 + rng.NextBelow(3);
      for (int l = 0; l < n_lits; ++l) {
        literals.push_back(
            {TxnId(1 + rng.NextBelow(5)), rng.NextBool(0.5)});
      }
      terms.push_back(Term::Of(std::move(literals)));
    }
    const Condition c = Condition::Of(std::move(terms));
    EXPECT_EQ(ParseCondition(c.ToString()).value(), c) << c.ToString();
  }
}

}  // namespace
}  // namespace polyvalue
