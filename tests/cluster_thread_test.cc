// Integration tests on the threaded runtimes: the same engine driven by
// real threads over the in-memory transport and over TCP loopback.
#include <gtest/gtest.h>

#include <atomic>

#include "src/net/tcp_transport.h"
#include "src/system/cluster.h"

namespace polyvalue {
namespace {

EngineConfig ThreadConfig() {
  EngineConfig config;
  config.prepare_timeout = 1.0;
  config.ready_timeout = 1.0;
  config.wait_timeout = 0.5;
  config.inquiry_interval = 0.1;
  return config;
}

TxnSpec Increment(const ItemKey& key, SiteId site) {
  TxnSpec spec;
  spec.ReadWrite(key, site);
  spec.Logic([key](const TxnReads& reads) {
    TxnEffect e;
    e.writes[key] = Value::Int(reads.IntAt(key) + 1);
    return e;
  });
  return spec;
}

TEST(ThreadClusterTest, CrossSiteTransactionOverMemTransport) {
  ThreadCluster::Options options;
  options.site_count = 3;
  options.engine = ThreadConfig();
  ThreadCluster cluster(options);
  cluster.Load(1, "a", Value::Int(10));
  cluster.Load(2, "b", Value::Int(20));
  TxnSpec spec;
  spec.ReadWrite("a", cluster.site_id(1));
  spec.ReadWrite("b", cluster.site_id(2));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["a"] = Value::Int(reads.IntAt("a") - 5);
    e.writes["b"] = Value::Int(reads.IntAt("b") + 5);
    e.output = Value::Bool(true);
    return e;
  });
  const auto result = cluster.SubmitAndWait(0, std::move(spec));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  // Wait for COMPLETE to land at both participants.
  for (int i = 0; i < 200; ++i) {
    const auto a = cluster.site(1).Peek("a");
    const auto b = cluster.site(2).Peek("b");
    if (a.value().is_certain() &&
        a.value().certain_value() == Value::Int(5) &&
        b.value().is_certain() &&
        b.value().certain_value() == Value::Int(25)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(cluster.site(1).Peek("a").value().certain_value(),
            Value::Int(5));
  EXPECT_EQ(cluster.site(2).Peek("b").value().certain_value(),
            Value::Int(25));
}

TEST(ThreadClusterTest, ConcurrentDisjointTransactionsAllCommit) {
  ThreadCluster::Options options;
  options.site_count = 4;
  options.engine = ThreadConfig();
  ThreadCluster cluster(options);
  for (int i = 0; i < 16; ++i) {
    cluster.Load(i % 4, "k" + std::to_string(i), Value::Int(0));
  }
  std::atomic<int> committed{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 16; ++i) {
    clients.emplace_back([&cluster, &committed, i] {
      const auto result = cluster.SubmitAndWait(
          i % 4,
          Increment("k" + std::to_string(i), cluster.site_id(i % 4)));
      if (result.has_value() && result->committed()) {
        ++committed;
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  EXPECT_EQ(committed.load(), 16);
}

TEST(ThreadClusterTest, ContendedItemSerialises) {
  ThreadCluster::Options options;
  options.site_count = 2;
  options.engine = ThreadConfig();
  ThreadCluster cluster(options);
  cluster.Load(1, "hot", Value::Int(0));
  std::atomic<int> committed{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&cluster, &committed] {
      for (int attempt = 0; attempt < 20; ++attempt) {
        const auto result =
            cluster.SubmitAndWait(0, Increment("hot", cluster.site_id(1)));
        if (result.has_value() && result->committed()) {
          ++committed;
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  // Every client eventually succeeded exactly once and the counter shows
  // no lost updates.
  EXPECT_EQ(committed.load(), 8);
  for (int i = 0; i < 400; ++i) {
    const auto v = cluster.site(1).Peek("hot");
    if (v.ok() && v.value().is_certain() &&
        v.value().certain_value() == Value::Int(8)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(cluster.site(1).Peek("hot").value().certain_value(),
            Value::Int(8));
}

TEST(ThreadClusterTest, FullStackOverTcpLoopback) {
  TcpTransport tcp;
  ThreadCluster::Options options;
  options.site_count = 3;
  options.engine = ThreadConfig();
  options.transport = &tcp;
  ThreadCluster cluster(options);
  cluster.Load(1, "a", Value::Int(100));
  cluster.Load(2, "b", Value::Int(0));
  TxnSpec spec;
  spec.ReadWrite("a", cluster.site_id(1));
  spec.ReadWrite("b", cluster.site_id(2));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["a"] = Value::Int(reads.IntAt("a") - 25);
    e.writes["b"] = Value::Int(reads.IntAt("b") + 25);
    return e;
  });
  const auto result = cluster.SubmitAndWait(0, std::move(spec), 15.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  for (int i = 0; i < 400; ++i) {
    const auto a = cluster.site(1).Peek("a");
    const auto b = cluster.site(2).Peek("b");
    if (a.ok() && a.value().is_certain() &&
        a.value().certain_value() == Value::Int(75) && b.ok() &&
        b.value().is_certain() &&
        b.value().certain_value() == Value::Int(25)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(cluster.site(1).Peek("a").value().certain_value(),
            Value::Int(75));
  EXPECT_EQ(cluster.site(2).Peek("b").value().certain_value(),
            Value::Int(25));
}

TEST(ThreadClusterTest, ReadOnlyQueriesInParallel) {
  ThreadCluster::Options options;
  options.site_count = 2;
  options.engine = ThreadConfig();
  ThreadCluster cluster(options);
  cluster.Load(1, "x", Value::Int(99));
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&cluster, &answered] {
      // Reads take exclusive item locks, so contending queries may abort;
      // retry as a real client would.
      for (int attempt = 0; attempt < 40; ++attempt) {
        TxnSpec spec;
        spec.Read("x", cluster.site_id(1));
        spec.Logic([](const TxnReads& reads) {
          TxnEffect e;
          e.output = Value::Int(reads.IntAt("x"));
          return e;
        });
        const auto result = cluster.SubmitAndWait(0, std::move(spec));
        if (result.has_value() && result->committed() &&
            result->output.certain_value() == Value::Int(99)) {
          ++answered;
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  EXPECT_EQ(answered.load(), 8);
}

}  // namespace
}  // namespace polyvalue
