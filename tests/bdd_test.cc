// Unit tests for the BDD engine.
#include "src/condition/bdd.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

const TxnId kT1(1);
const TxnId kT2(2);
const TxnId kT3(3);

TEST(BddTest, Terminals) {
  BddManager bdd;
  EXPECT_TRUE(bdd.IsTautology(BddManager::kTrue));
  EXPECT_TRUE(bdd.IsContradiction(BddManager::kFalse));
  EXPECT_FALSE(bdd.IsTautology(BddManager::kFalse));
}

TEST(BddTest, VarIsInterned) {
  BddManager bdd;
  EXPECT_EQ(bdd.Var(kT1), bdd.Var(kT1));
  EXPECT_NE(bdd.Var(kT1), bdd.Var(kT2));
}

TEST(BddTest, BasicConnectives) {
  BddManager bdd;
  const BddRef a = bdd.Var(kT1);
  const BddRef b = bdd.Var(kT2);
  EXPECT_EQ(bdd.And(a, BddManager::kTrue), a);
  EXPECT_EQ(bdd.And(a, BddManager::kFalse), BddManager::kFalse);
  EXPECT_EQ(bdd.Or(a, BddManager::kFalse), a);
  EXPECT_EQ(bdd.Or(a, BddManager::kTrue), BddManager::kTrue);
  EXPECT_EQ(bdd.And(a, a), a);
  EXPECT_EQ(bdd.Or(a, b), bdd.Or(b, a));  // canonical: same node
}

TEST(BddTest, ComplementLaws) {
  BddManager bdd;
  const BddRef a = bdd.Var(kT1);
  EXPECT_EQ(bdd.Or(a, bdd.Not(a)), BddManager::kTrue);
  EXPECT_EQ(bdd.And(a, bdd.Not(a)), BddManager::kFalse);
  EXPECT_EQ(bdd.Not(bdd.Not(a)), a);
}

TEST(BddTest, EquivalentFormulasShareNodes) {
  BddManager bdd;
  const BddRef a = bdd.Var(kT1);
  const BddRef b = bdd.Var(kT2);
  // Distribution: a·(b+c) == a·b + a·c.
  const BddRef c = bdd.Var(kT3);
  const BddRef lhs = bdd.And(a, bdd.Or(b, c));
  const BddRef rhs = bdd.Or(bdd.And(a, b), bdd.And(a, c));
  EXPECT_EQ(lhs, rhs);
}

TEST(BddTest, IteMatchesDefinition) {
  BddManager bdd;
  const BddRef f = bdd.Var(kT1);
  const BddRef g = bdd.Var(kT2);
  const BddRef h = bdd.Var(kT3);
  const BddRef ite = bdd.Ite(f, g, h);
  const BddRef expanded = bdd.Or(bdd.And(f, g), bdd.And(bdd.Not(f), h));
  EXPECT_EQ(ite, expanded);
}

TEST(BddTest, RestrictFixesVariable) {
  BddManager bdd;
  const BddRef f = bdd.And(bdd.Var(kT1), bdd.Var(kT2));
  EXPECT_EQ(bdd.Restrict(f, kT1, true), bdd.Var(kT2));
  EXPECT_EQ(bdd.Restrict(f, kT1, false), BddManager::kFalse);
  // Restricting an absent variable is identity.
  EXPECT_EQ(bdd.Restrict(f, kT3, true), f);
}

TEST(BddTest, FromConditionRoundTrip) {
  BddManager bdd;
  const Condition original = Condition::Or(
      Condition::And(Condition::Committed(kT1), Condition::Aborted(kT2)),
      Condition::Committed(kT3));
  const BddRef compiled = bdd.FromCondition(original);
  const Condition back = bdd.ToCondition(compiled);
  EXPECT_TRUE(back.EquivalentTo(original));
  // Recompiling the round-tripped condition hits the same node.
  EXPECT_EQ(bdd.FromCondition(back), compiled);
}

TEST(BddTest, FromConditionConstants) {
  BddManager bdd;
  EXPECT_EQ(bdd.FromCondition(Condition::True()), BddManager::kTrue);
  EXPECT_EQ(bdd.FromCondition(Condition::False()), BddManager::kFalse);
}

TEST(BddTest, CountModels) {
  BddManager bdd;
  const std::vector<TxnId> vars = {kT1, kT2, kT3};
  EXPECT_EQ(bdd.CountModels(BddManager::kTrue, vars), 8u);
  EXPECT_EQ(bdd.CountModels(BddManager::kFalse, vars), 0u);
  EXPECT_EQ(bdd.CountModels(bdd.Var(kT1), vars), 4u);
  const BddRef majority = bdd.Or(
      bdd.Or(bdd.And(bdd.Var(kT1), bdd.Var(kT2)),
             bdd.And(bdd.Var(kT1), bdd.Var(kT3))),
      bdd.And(bdd.Var(kT2), bdd.Var(kT3)));
  EXPECT_EQ(bdd.CountModels(majority, vars), 4u);
}

TEST(BddTest, XorProperties) {
  BddManager bdd;
  const BddRef a = bdd.Var(kT1);
  const BddRef b = bdd.Var(kT2);
  EXPECT_EQ(bdd.Xor(a, a), BddManager::kFalse);
  EXPECT_EQ(bdd.Xor(a, BddManager::kFalse), a);
  EXPECT_EQ(bdd.Xor(bdd.Xor(a, b), b), a);
}

TEST(BddTest, NodeCountStaysReducedOnRepeatedOps) {
  BddManager bdd;
  const BddRef a = bdd.Var(kT1);
  const BddRef b = bdd.Var(kT2);
  const size_t before = bdd.node_count();
  for (int i = 0; i < 100; ++i) {
    (void)bdd.And(a, b);
    (void)bdd.Or(a, b);
  }
  EXPECT_LE(bdd.node_count(), before + 2);  // fully memoised
}

}  // namespace
}  // namespace polyvalue
