// Tests for the single-site fast path (§2.1-style lock avoidance: local
// transactions skip the distributed protocol entirely).
#include <gtest/gtest.h>

#include "src/system/cluster.h"

namespace polyvalue {
namespace {

SimCluster::Options Options(bool fast_path) {
  SimCluster::Options options;
  options.site_count = 2;
  options.engine.enable_local_fast_path = fast_path;
  options.engine.wait_timeout = 0.05;
  options.engine.inquiry_interval = 0.2;
  options.engine.validate_installs = true;
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  return options;
}

TxnSpec LocalBump(SiteId site) {
  TxnSpec spec;
  spec.ReadWrite("x", site);
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["x"] = Value::Int(reads.IntAt("x") + 1);
    e.output = Value::Int(reads.IntAt("x"));
    return e;
  });
  return spec;
}

TEST(FastPathTest, LocalTxnCompletesWithoutMessages) {
  SimCluster cluster(Options(true));
  cluster.Load(0, "x", Value::Int(7));
  const uint64_t packets_before = cluster.transport().packets_sent();
  std::optional<TxnResult> result;
  cluster.Submit(0, LocalBump(cluster.site_id(0)),
                 [&result](const TxnResult& r) { result = r; });
  // Callback fires synchronously — no simulator steps needed.
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  EXPECT_EQ(result->output.certain_value(), Value::Int(7));
  EXPECT_EQ(cluster.transport().packets_sent(), packets_before);
  EXPECT_EQ(cluster.site(0).Peek("x").value().certain_value(),
            Value::Int(8));
  EXPECT_EQ(cluster.site(0).engine().metrics().local_fast_path, 1u);
}

TEST(FastPathTest, DisabledFlagForcesFullProtocol) {
  SimCluster cluster(Options(false));
  cluster.Load(0, "x", Value::Int(7));
  const auto result = cluster.SubmitAndRun(0, LocalBump(cluster.site_id(0)));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  EXPECT_GT(cluster.transport().packets_sent(), 0u);
  EXPECT_EQ(cluster.site(0).engine().metrics().local_fast_path, 0u);
  cluster.RunFor(0.5);
  EXPECT_EQ(cluster.site(0).Peek("x").value().certain_value(),
            Value::Int(8));
}

TEST(FastPathTest, RemoteItemStillUsesProtocol) {
  SimCluster cluster(Options(true));
  cluster.Load(1, "x", Value::Int(7));
  const auto result = cluster.SubmitAndRun(0, LocalBump(cluster.site_id(1)));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  EXPECT_EQ(cluster.site(0).engine().metrics().local_fast_path, 0u);
}

TEST(FastPathTest, LockConflictAbortsImmediately) {
  SimCluster cluster(Options(true));
  cluster.Load(0, "x", Value::Int(0));
  ASSERT_TRUE(cluster.site(0).store().Lock("x", TxnId(12345)).ok());
  std::optional<TxnResult> result;
  cluster.Submit(0, LocalBump(cluster.site_id(0)),
                 [&result](const TxnResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->disposition, TxnDisposition::kAborted);
  // Fast-path abort leaves the foreign lock untouched.
  EXPECT_EQ(cluster.site(0).store().LockHolder("x"), TxnId(12345));
}

TEST(FastPathTest, LogicAbortPropagates) {
  SimCluster cluster(Options(true));
  cluster.Load(0, "x", Value::Int(0));
  TxnSpec spec;
  spec.ReadWrite("x", cluster.site_id(0));
  spec.Logic([](const TxnReads&) {
    return TxnEffect::Abort("business rule");
  });
  std::optional<TxnResult> result;
  cluster.Submit(0, std::move(spec),
                 [&result](const TxnResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->abort_reason, "business rule");
  EXPECT_EQ(cluster.site(0).store().locked_count(), 0u);
}

TEST(FastPathTest, ReadOnlyLocalQuery) {
  SimCluster cluster(Options(true));
  cluster.Load(0, "x", Value::Int(9));
  TxnSpec spec;
  spec.Read("x", cluster.site_id(0));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.output = Value::Int(reads.IntAt("x") * 2);
    return e;
  });
  std::optional<TxnResult> result;
  cluster.Submit(0, std::move(spec),
                 [&result](const TxnResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->disposition, TxnDisposition::kReadOnly);
  EXPECT_EQ(result->output.certain_value(), Value::Int(18));
}

TEST(FastPathTest, LocalPolytransactionOverUncertainItem) {
  SimCluster cluster(Options(true));
  // Plant a polyvalue locally, then run a local txn over it.
  cluster.site(0).store().Write(
      "x", PolyValue::InstallUncertain(TxnId((9ULL << 40) | 1),
                                       PolyValue::Certain(Value::Int(10)),
                                       PolyValue::Certain(Value::Int(20))));
  std::optional<TxnResult> result;
  cluster.Submit(0, LocalBump(cluster.site_id(0)),
                 [&result](const TxnResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  EXPECT_FALSE(result->output.is_certain());
  const PolyValue x = cluster.site(0).Peek("x").value();
  EXPECT_EQ(x.ValueUnder({{TxnId((9ULL << 40) | 1), true}}).value(),
            Value::Int(11));
  EXPECT_EQ(cluster.site(0).engine().metrics().polytxns, 1u);
}

TEST(FastPathTest, DecisionIsDurableForInquiries) {
  SimCluster cluster(Options(true));
  cluster.Load(0, "x", Value::Int(0));
  std::optional<TxnResult> result;
  cluster.Submit(0, LocalBump(cluster.site_id(0)),
                 [&result](const TxnResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(cluster.site(0).engine().DecidedOutcome(result->id), true);
}

}  // namespace
}  // namespace polyvalue

namespace polyvalue {
namespace {

// --- execution_delay (simulated computation) coverage ---

TEST(ExecutionDelayTest, DelaysShippingByConfiguredTime) {
  SimCluster::Options options;
  options.site_count = 2;
  options.engine.execution_delay = 0.5;
  options.engine.prepare_timeout = 5.0;
  options.engine.ready_timeout = 5.0;
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  SimCluster cluster(options);
  cluster.Load(1, "x", Value::Int(0));
  TxnSpec spec;
  spec.ReadWrite("x", cluster.site_id(1));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["x"] = Value::Int(reads.IntAt("x") + 1);
    return e;
  });
  std::optional<TxnResult> result;
  cluster.Submit(0, std::move(spec),
                 [&result](const TxnResult& r) { result = r; });
  // Without the delay the commit lands by ~0.06 s; with 0.5 s execution
  // it cannot have finished yet.
  cluster.RunFor(0.3);
  EXPECT_FALSE(result.has_value());
  cluster.RunFor(1.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
}

TEST(ExecutionDelayTest, PrepareTimeoutAbortsDuringComputation) {
  SimCluster::Options options;
  options.site_count = 2;
  options.engine.execution_delay = 2.0;
  options.engine.prepare_timeout = 0.5;  // fires mid-computation
  options.engine.ready_timeout = 0.5;
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  SimCluster cluster(options);
  cluster.Load(1, "x", Value::Int(0));
  TxnSpec spec;
  spec.ReadWrite("x", cluster.site_id(1));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["x"] = Value::Int(reads.IntAt("x") + 1);
    return e;
  });
  std::optional<TxnResult> result;
  cluster.Submit(0, std::move(spec),
                 [&result](const TxnResult& r) { result = r; });
  cluster.RunFor(5.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->committed());
  // The delayed execution callback must be a no-op: no writes, no locks.
  EXPECT_EQ(cluster.site(1).Peek("x").value().certain_value(),
            Value::Int(0));
  EXPECT_EQ(cluster.site(1).store().locked_count(), 0u);
}

}  // namespace
}  // namespace polyvalue
