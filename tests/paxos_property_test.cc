// Property test for the Paxos Commit leg: across many seeds, wide
// message-delay jitter, random drops, and leader/standby crashes, one
// consensus instance never chooses two different values, all deciders
// fix the same outcome, and the trace honours every auditor invariant
// (including A9 ballot monotonicity and A10/A11 agreement). Run under
// ASan/TSan like the rest of the suite.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/audit.h"
#include "src/system/cluster.h"

namespace polyvalue {
namespace {

struct RunOutcome {
  std::vector<std::optional<bool>> per_site;  // DecidedOutcome at each site
  std::optional<TxnResult> client;
};

SimCluster::Options HarshOptions(uint64_t seed) {
  SimCluster::Options options;
  options.site_count = 5;
  options.seed = seed;
  options.engine.leg = ProtocolLeg::kPaxosCommit;
  options.engine.prepare_timeout = 0.15;
  options.engine.ready_timeout = 0.15;
  options.engine.paxos_failover_timeout = 0.08;
  // Wide jitter: a 30x delay spread reorders every protocol phase.
  options.min_delay = 0.001;
  options.max_delay = 0.03;
  return options;
}

TxnSpec CrossSiteSpec(SimCluster& cluster, int delta) {
  TxnSpec spec;
  spec.ReadWrite("a", cluster.site_id(0));
  spec.ReadWrite("b", cluster.site_id(1));
  spec.ReadWrite("c", cluster.site_id(2));
  spec.Logic([delta](const TxnReads& reads) {
    TxnEffect e;
    e.writes["a"] = Value::Int(reads.IntAt("a") + delta);
    e.writes["b"] = Value::Int(reads.IntAt("b") - delta);
    e.writes["c"] = Value::Int(reads.IntAt("c") + 1);
    e.output = Value::Int(reads.IntAt("c"));
    return e;
  });
  return spec;
}

// Every site that knows an outcome must know the SAME outcome, and if
// the client heard commit/abort the sites must agree with it.
void CheckAgreement(SimCluster& cluster, TxnId txn,
                    const std::optional<TxnResult>& client) {
  std::optional<bool> consensus;
  for (size_t i = 0; i < cluster.size(); ++i) {
    const std::optional<bool> outcome = cluster.site(i).DecidedOutcome(txn);
    if (!outcome.has_value()) {
      continue;
    }
    if (consensus.has_value()) {
      EXPECT_EQ(*consensus, *outcome)
          << "site " << i + 1 << " disagrees on " << ToString(txn);
    } else {
      consensus = outcome;
    }
  }
  if (client.has_value() &&
      client->disposition != TxnDisposition::kReadOnly &&
      consensus.has_value()) {
    EXPECT_EQ(client->committed(), *consensus)
        << "client result contradicts the cluster for " << ToString(txn);
  }
}

TEST(PaxosPropertyTest, JitteredInterleavingsNeverSplitDecisions) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    SCOPED_TRACE(seed);
    VectorTraceSink trace;
    SimCluster::Options options = HarshOptions(seed);
    options.trace = &trace;
    SimCluster cluster(options);
    cluster.Load(0, "a", Value::Int(100));
    cluster.Load(1, "b", Value::Int(100));
    cluster.Load(2, "c", Value::Int(0));

    std::vector<TxnId> txns;
    std::vector<std::optional<TxnResult>> results(4);
    for (int t = 0; t < 4; ++t) {
      const size_t coordinator = t % cluster.size();
      auto* slot = &results[t];
      txns.push_back(cluster.Submit(coordinator,
                                    CrossSiteSpec(cluster, t + 1),
                                    [slot](const TxnResult& r) {
                                      *slot = r;
                                    }));
      cluster.RunFor(0.05);  // overlap the protocols, don't serialise
    }
    cluster.RunFor(5.0);

    for (size_t t = 0; t < txns.size(); ++t) {
      SCOPED_TRACE(t);
      ASSERT_TRUE(results[t].has_value());
      CheckAgreement(cluster, txns[t], results[t]);
    }
    const Status audit = TraceAuditor::Check(trace.Snapshot());
    EXPECT_TRUE(audit.ok()) << audit.message();
  }
}

TEST(PaxosPropertyTest, DropsAndCrashesNeverSplitDecisions) {
  for (uint64_t seed = 100; seed < 130; ++seed) {
    SCOPED_TRACE(seed);
    VectorTraceSink trace;
    SimCluster::Options options = HarshOptions(seed);
    options.trace = &trace;
    SimCluster cluster(options);
    cluster.Load(0, "a", Value::Int(100));
    cluster.Load(1, "b", Value::Int(100));
    cluster.Load(2, "c", Value::Int(0));

    // 10% message loss the whole run: votes, echoes, and decisions all
    // get lost; failover timers and re-nudges must converge anyway.
    cluster.faults().SetDropProbability(0.1);

    std::optional<TxnResult> result;
    const TxnId txn = cluster.Submit(0, CrossSiteSpec(cluster, 7),
                                     [&result](const TxnResult& r) {
                                       result = r;
                                     });
    // Crash the leader mid-protocol and the first standby a beat later:
    // the second standby (or any nudged survivor) must finish. The
    // crash time sweeps from before the prepares land to after the RMs
    // have voted, so both the evaporate and the failover-completes
    // regimes are exercised.
    const double leader_crash = 0.05 + (seed % 10) * 0.03;
    cluster.sim().At(leader_crash, [&cluster] { cluster.CrashSite(0); });
    cluster.sim().At(leader_crash + 0.1,
                     [&cluster] { cluster.CrashSite(1); });
    cluster.RunFor(4.0);
    cluster.RecoverSite(0);
    cluster.RecoverSite(1);
    cluster.faults().SetDropProbability(0.0);
    cluster.RunFor(6.0);

    // The crash may land before any RM voted — then the transaction
    // legitimately evaporates (watchdogs discard, nothing decides). The
    // invariants that must hold regardless: every decider agrees, the
    // writes are all-or-nothing across sites, and no lock outlives the
    // drain (a prepared RM re-nudges standbys until an outcome lands).
    CheckAgreement(cluster, txn, result);
    const int64_t a =
        cluster.site(0).Peek("a")->certain_value().int_value();
    const int64_t b =
        cluster.site(1).Peek("b")->certain_value().int_value();
    const int64_t c =
        cluster.site(2).Peek("c")->certain_value().int_value();
    EXPECT_EQ(a + b, 200) << "transfer was torn across sites";
    EXPECT_TRUE((a == 107 && b == 93 && c == 1) ||
                (a == 100 && b == 100 && c == 0))
        << "partial installation: a=" << a << " b=" << b << " c=" << c;
    for (size_t i = 0; i < cluster.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(cluster.site(i).store().locked_count(), 0u);
    }

    AuditOptions audit_options;
    audit_options.expect_quiescent = false;  // client orphaned by crash
    const Status audit = TraceAuditor::Check(trace.Snapshot(),
                                             audit_options);
    EXPECT_TRUE(audit.ok()) << audit.message();
  }
}

// A transaction whose locks collide with an in-flight one is refused
// no-wait and aborts before any vote; the winning transaction still
// commits, and nothing deadlocks or stalls.
TEST(PaxosPropertyTest, ContentionAbortsBeforeVotesAreSafe) {
  for (uint64_t seed = 200; seed < 215; ++seed) {
    SCOPED_TRACE(seed);
    VectorTraceSink trace;
    SimCluster::Options options = HarshOptions(seed);
    options.trace = &trace;
    SimCluster cluster(options);
    cluster.Load(0, "a", Value::Int(100));
    cluster.Load(1, "b", Value::Int(100));
    cluster.Load(2, "c", Value::Int(0));

    std::vector<TxnId> txns;
    std::vector<std::optional<TxnResult>> results(6);
    // Give the first transaction a head start: by t=0.1 its prepares
    // have landed and its locks are held at every site, so the five
    // contenders submitted next are refused no-wait and must abort
    // before casting any vote. (Submitting all six at once can mutually
    // kill every transaction — legal under no-wait locking, but then
    // there is no commit to assert on.)
    auto submit = [&](int t) {
      auto* slot = &results[t];
      txns.push_back(cluster.Submit(t % cluster.size(),
                                    CrossSiteSpec(cluster, 1),
                                    [slot](const TxnResult& r) {
                                      *slot = r;
                                    }));
    };
    submit(0);
    cluster.RunFor(0.1);
    for (int t = 1; t < 6; ++t) {
      submit(t);
    }
    cluster.RunFor(8.0);

    int committed = 0;
    for (size_t t = 0; t < txns.size(); ++t) {
      SCOPED_TRACE(t);
      ASSERT_TRUE(results[t].has_value());
      committed += results[t]->committed() ? 1 : 0;
      CheckAgreement(cluster, txns[t], results[t]);
    }
    EXPECT_GE(committed, 1) << "contention livelocked every transaction";
    // a + b is conserved by every committed transfer.
    EXPECT_EQ(
        cluster.site(0).Peek("a")->certain_value().int_value() +
            cluster.site(1).Peek("b")->certain_value().int_value(),
        200);
    for (size_t i = 0; i < cluster.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(cluster.site(i).store().locked_count(), 0u);
    }
    const Status audit = TraceAuditor::Check(trace.Snapshot());
    EXPECT_TRUE(audit.ok()) << audit.message();
  }
}

}  // namespace
}  // namespace polyvalue
