// Unit tests for CRC-32.
#include "src/common/crc32.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE CRC-32 test vectors.
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
  EXPECT_EQ(Crc32(std::string("123456789")), 0xcbf43926u);
  EXPECT_EQ(Crc32(std::string("The quick brown fox jumps over the lazy dog")),
            0x414fa339u);
}

TEST(Crc32Test, SensitiveToSingleBitFlip) {
  std::string data = "hello, world";
  const uint32_t original = Crc32(data);
  data[3] ^= 0x01;
  EXPECT_NE(Crc32(data), original);
}

TEST(Crc32Test, SensitiveToTruncation) {
  const std::string data = "abcdefgh";
  EXPECT_NE(Crc32(data.data(), data.size()),
            Crc32(data.data(), data.size() - 1));
}

TEST(Crc32Test, DeterministicAcrossCalls) {
  const std::string data = "stable";
  EXPECT_EQ(Crc32(data), Crc32(data));
}

}  // namespace
}  // namespace polyvalue
