// Unit tests for the Value variant and checked arithmetic.
#include "src/value/value.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

TEST(ValueTest, DefaultIsNull) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(), Value::Null());
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int(3).type(), ValueType::kInt);
  EXPECT_EQ(Value::Real(1.5).type(), ValueType::kReal);
  EXPECT_EQ(Value::Str("x").type(), ValueType::kString);
  EXPECT_TRUE(Value::Int(3).is_numeric());
  EXPECT_TRUE(Value::Real(3).is_numeric());
  EXPECT_FALSE(Value::Str("3").is_numeric());
}

TEST(ValueTest, AccessorsReturnPayload) {
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int(-7).int_value(), -7);
  EXPECT_DOUBLE_EQ(Value::Real(2.25).real_value(), 2.25);
  EXPECT_EQ(Value::Str("hi").string_value(), "hi");
}

TEST(ValueTest, EqualityIsExactNoCoercion) {
  EXPECT_EQ(Value::Int(1), Value::Int(1));
  EXPECT_NE(Value::Int(1), Value::Real(1.0));
  EXPECT_NE(Value::Int(1), Value::Str("1"));
  EXPECT_NE(Value::Bool(false), Value::Null());
}

TEST(ValueTest, AsRealWidensInt) {
  EXPECT_DOUBLE_EQ(Value::Int(5).AsReal().value(), 5.0);
  EXPECT_FALSE(Value::Str("5").AsReal().ok());
}

TEST(ValueTest, AsIntRequiresIntegral) {
  EXPECT_EQ(Value::Real(4.0).AsInt().value(), 4);
  EXPECT_FALSE(Value::Real(4.5).AsInt().ok());
  EXPECT_FALSE(Value::Bool(true).AsInt().ok());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Real(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Real(2.0).ToString(), "2");
  EXPECT_EQ(Value::Str("a").ToString(), "\"a\"");
}

TEST(ValueArithmeticTest, IntAddExact) {
  EXPECT_EQ(Add(Value::Int(2), Value::Int(3)).value(), Value::Int(5));
}

TEST(ValueArithmeticTest, IntOverflowDetected) {
  EXPECT_FALSE(Add(Value::Int(INT64_MAX), Value::Int(1)).ok());
  EXPECT_FALSE(Sub(Value::Int(INT64_MIN), Value::Int(1)).ok());
  EXPECT_FALSE(Mul(Value::Int(INT64_MAX), Value::Int(2)).ok());
  EXPECT_FALSE(Neg(Value::Int(INT64_MIN)).ok());
  EXPECT_FALSE(Div(Value::Int(INT64_MIN), Value::Int(-1)).ok());
}

TEST(ValueArithmeticTest, MixedNumericWidensToReal) {
  const Value r = Add(Value::Int(1), Value::Real(0.5)).value();
  EXPECT_TRUE(r.is_real());
  EXPECT_DOUBLE_EQ(r.real_value(), 1.5);
}

TEST(ValueArithmeticTest, StringConcat) {
  EXPECT_EQ(Add(Value::Str("foo"), Value::Str("bar")).value(),
            Value::Str("foobar"));
  EXPECT_FALSE(Add(Value::Str("foo"), Value::Int(1)).ok());
}

TEST(ValueArithmeticTest, DivisionByZero) {
  EXPECT_FALSE(Div(Value::Int(1), Value::Int(0)).ok());
  EXPECT_FALSE(Div(Value::Real(1), Value::Real(0)).ok());
  EXPECT_EQ(Div(Value::Int(7), Value::Int(2)).value(), Value::Int(3));
}

TEST(ValueArithmeticTest, MinMax) {
  EXPECT_EQ(Min(Value::Int(3), Value::Int(5)).value(), Value::Int(3));
  EXPECT_EQ(Max(Value::Int(3), Value::Real(5.5)).value(), Value::Real(5.5));
  EXPECT_FALSE(Min(Value::Int(3), Value::Str("a")).ok());
}

TEST(ValueComparisonTest, NumericCrossType) {
  EXPECT_TRUE(Less(Value::Int(1), Value::Real(1.5)).value());
  EXPECT_FALSE(Less(Value::Real(2.0), Value::Int(2)).value());
  EXPECT_TRUE(LessEq(Value::Int(2), Value::Int(2)).value());
  EXPECT_TRUE(GreaterEq(Value::Int(2), Value::Int(2)).value());
  EXPECT_TRUE(Greater(Value::Int(3), Value::Int(2)).value());
}

TEST(ValueComparisonTest, StringsLexicographic) {
  EXPECT_TRUE(Less(Value::Str("a"), Value::Str("b")).value());
  EXPECT_FALSE(Less(Value::Str("b"), Value::Str("a")).value());
}

TEST(ValueComparisonTest, BoolsOrdered) {
  EXPECT_TRUE(Less(Value::Bool(false), Value::Bool(true)).value());
  EXPECT_FALSE(Less(Value::Bool(true), Value::Bool(true)).value());
}

TEST(ValueComparisonTest, MixedTypesError) {
  EXPECT_FALSE(Less(Value::Str("a"), Value::Int(1)).ok());
  EXPECT_FALSE(Less(Value::Null(), Value::Null()).ok());
}

TEST(ValueTest, TotalOrderForCanonicalisation) {
  // By type tag first, then payload.
  EXPECT_TRUE(Value::Null() < Value::Bool(false));
  EXPECT_TRUE(Value::Bool(true) < Value::Int(0));
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  EXPECT_NE(Value::Int(7).Hash(), Value::Real(7.0).Hash());
}

}  // namespace
}  // namespace polyvalue
