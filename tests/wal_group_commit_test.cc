// Group-commit WAL tests: batch coalescing, the Flush() durability
// barrier, and an exhaustive torn-tail fuzz — truncating and bit-flipping
// every byte of the final batch must recover EXACTLY the acknowledged
// prefix: never DATA_LOSS for a torn tail, never a phantom record.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "src/store/wal.h"

namespace polyvalue {
namespace {

class WalGroupCommitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "wal_gc_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  static Wal::Options GroupCommit(size_t max_batch = 128) {
    Wal::Options options;
    options.sync_policy = Wal::SyncPolicy::kGroupCommit;
    options.max_batch = max_batch;
    return options;
  }

  std::string ReadFile() const {
    std::ifstream in(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  void WriteFile(const std::string& data) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  std::string path_;
};

TEST_F(WalGroupCommitTest, AppendsBufferUntilFlush) {
  auto wal = Wal::Open(path_, GroupCommit()).value();
  ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(1), true)).ok());
  ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(2), false)).ok());
  // Nothing on disk yet: appends only buffer.
  EXPECT_TRUE(Wal::ReplayFile(path_).value().empty());
  EXPECT_EQ(wal->batches_flushed(), 0u);

  ASSERT_TRUE(wal->Flush().ok());
  const auto records = Wal::ReplayFile(path_).value();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].txn, TxnId(1));
  EXPECT_EQ(records[1].txn, TxnId(2));
  // Both records rode ONE physical batch.
  EXPECT_EQ(wal->batches_flushed(), 1u);
  EXPECT_EQ(wal->records_flushed(), 2u);
}

TEST_F(WalGroupCommitTest, FlushIsIdempotentAndEmptyFlushIsFree) {
  auto wal = Wal::Open(path_, GroupCommit()).value();
  ASSERT_TRUE(wal->Flush().ok());
  EXPECT_EQ(wal->batches_flushed(), 0u);
  ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(1), true)).ok());
  ASSERT_TRUE(wal->Flush().ok());
  ASSERT_TRUE(wal->Flush().ok());
  EXPECT_EQ(wal->batches_flushed(), 1u);
  EXPECT_EQ(Wal::ReplayFile(path_).value().size(), 1u);
}

TEST_F(WalGroupCommitTest, MaxBatchTriggersInlineFlush) {
  auto wal = Wal::Open(path_, GroupCommit(/*max_batch=*/4)).value();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(i + 1), true)).ok());
  }
  // The 4th append crossed max_batch and flushed without a barrier call.
  EXPECT_EQ(wal->batches_flushed(), 1u);
  EXPECT_EQ(Wal::ReplayFile(path_).value().size(), 4u);
}

TEST_F(WalGroupCommitTest, ConcurrentAppendersShareBatches) {
  // A small linger window makes leaders wait for joiners, so coalescing
  // happens even if the scheduler serialises the threads.
  Wal::Options options = GroupCommit();
  options.group_window_seconds = 0.002;
  auto wal = Wal::Open(path_, options).value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(
            wal->Append(WalRecord::Outcome(TxnId(t * kPerThread + i + 1),
                                           true))
                .ok());
        EXPECT_TRUE(wal->Flush().ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const auto records = Wal::ReplayFile(path_).value();
  EXPECT_EQ(records.size(), size_t{kThreads} * kPerThread);
  EXPECT_EQ(wal->records_flushed(), size_t{kThreads} * kPerThread);
  // The whole point: with 8 threads racing, flush leaders pick up
  // records appended by the other threads, so there are FEWER physical
  // batches than records. (Worst case equality would mean zero
  // coalescing ever happened across 400 concurrent flushes.)
  EXPECT_LT(wal->batches_flushed(), wal->records_flushed());
}

TEST_F(WalGroupCommitTest, GroupWindowLingersForJoiners) {
  Wal::Options options = GroupCommit();
  options.group_window_seconds = 0.002;
  auto wal = Wal::Open(path_, options).value();
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      EXPECT_TRUE(wal->Append(WalRecord::Outcome(TxnId(t + 1), true)).ok());
      EXPECT_TRUE(wal->Flush().ok());
      ++done;
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(done.load(), 4);
  EXPECT_EQ(Wal::ReplayFile(path_).value().size(), 4u);
}

TEST_F(WalGroupCommitTest, ResetDiscardsUnflushedRecords) {
  auto wal = Wal::Open(path_, GroupCommit()).value();
  ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(1), true)).ok());
  ASSERT_TRUE(wal->Reset().ok());
  ASSERT_TRUE(wal->Flush().ok());
  EXPECT_TRUE(Wal::ReplayFile(path_).value().empty());
  // The log still works after the reset.
  ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(2), true)).ok());
  ASSERT_TRUE(wal->Flush().ok());
  EXPECT_EQ(Wal::ReplayFile(path_).value().size(), 1u);
}

TEST_F(WalGroupCommitTest, DestructorFlushesBufferedRecords) {
  {
    auto wal = Wal::Open(path_, GroupCommit()).value();
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(7), true)).ok());
    // No explicit Flush: destruction is best-effort durable.
  }
  const auto records = Wal::ReplayFile(path_).value();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].txn, TxnId(7));
}

TEST_F(WalGroupCommitTest, MixedBatchAndSingleFramesReplayInOrder) {
  {
    auto wal = Wal::Open(path_, GroupCommit()).value();
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(1), true)).ok());
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(2), false)).ok());
    ASSERT_TRUE(wal->Flush().ok());  // batch of 2
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(3), true)).ok());
    ASSERT_TRUE(wal->Flush().ok());  // single frame
  }
  // Append more with the plain per-append policy on the same file.
  {
    auto wal = Wal::Open(path_).value();
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(4), false)).ok());
  }
  const auto records = Wal::ReplayFile(path_).value();
  ASSERT_EQ(records.size(), 4u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].txn, TxnId(i + 1));
  }
}

// --- the torn-tail fuzz ---
//
// Layout: two ACKED batches (flushed, their records acknowledged), then
// one final batch. Damage the final batch at every byte offset — by
// truncation and by bit flip — and require recovery to return exactly
// the acked prefix, with OK status, every single time.

class WalTornTailFuzz : public WalGroupCommitTest {
 protected:
  // Writes the log and returns (acked record count, file size before the
  // final batch).
  void BuildLog() {
    auto wal = Wal::Open(path_, GroupCommit()).value();
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(1), true)).ok());
    ASSERT_TRUE(
        wal->Append(WalRecord::Write(
                        "acct/a", PolyValue::InstallUncertain(
                                      TxnId(1),
                                      PolyValue::Certain(Value::Int(10)),
                                      PolyValue::Certain(Value::Int(0)))))
            .ok());
    ASSERT_TRUE(wal->Flush().ok());  // acked batch #1 (2 records)
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(2), false)).ok());
    ASSERT_TRUE(wal->Flush().ok());  // acked batch #2 (1 record)
    acked_ = ReadFile();

    ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(3), true)).ok());
    ASSERT_TRUE(
        wal->Append(WalRecord::Write("acct/b",
                                     PolyValue::Certain(Value::Int(42))))
            .ok());
    ASSERT_TRUE(wal->Append(WalRecord::Outcome(TxnId(4), false)).ok());
    ASSERT_TRUE(wal->Flush().ok());  // the final batch (3 records)
    full_ = ReadFile();
    ASSERT_GT(full_.size(), acked_.size());
  }

  void ExpectExactlyAckedPrefix(const std::string& context) {
    const auto records = Wal::ReplayFile(path_);
    ASSERT_TRUE(records.ok()) << context << ": " << records.status();
    ASSERT_EQ(records->size(), 3u) << context;
    EXPECT_EQ((*records)[0].txn, TxnId(1)) << context;
    EXPECT_EQ((*records)[1].key, "acct/a") << context;
    EXPECT_EQ((*records)[2].txn, TxnId(2)) << context;
  }

  std::string acked_;
  std::string full_;
};

TEST_F(WalTornTailFuzz, EveryTruncationRecoversAckedPrefix) {
  BuildLog();
  // Every cut point inside the final batch, including cutting it off
  // entirely and leaving all but its last byte.
  for (size_t len = acked_.size(); len < full_.size(); ++len) {
    WriteFile(full_.substr(0, len));
    ExpectExactlyAckedPrefix("truncated to " + std::to_string(len));
  }
}

TEST_F(WalTornTailFuzz, EveryByteCorruptionRecoversAckedPrefix) {
  BuildLog();
  for (size_t pos = acked_.size(); pos < full_.size(); ++pos) {
    for (int bit : {0, 3, 7}) {
      std::string damaged = full_;
      damaged[pos] = static_cast<char>(damaged[pos] ^ (1 << bit));
      WriteFile(damaged);
      ExpectExactlyAckedPrefix("bit " + std::to_string(bit) + " of byte " +
                               std::to_string(pos));
    }
  }
}

TEST_F(WalTornTailFuzz, IntactLogReplaysEverything) {
  BuildLog();
  const auto records = Wal::ReplayFile(path_).value();
  ASSERT_EQ(records.size(), 6u);
  EXPECT_EQ(records[3].txn, TxnId(3));
  EXPECT_EQ(records[4].key, "acct/b");
  EXPECT_EQ(records[5].txn, TxnId(4));
}

TEST_F(WalTornTailFuzz, CorruptionBeforeIntactSuffixIsStillDataLoss) {
  BuildLog();
  // Flip a byte inside acked batch #1's BODY (past the two batch
  // headers' 8 bytes) while the rest of the file stays intact: that is
  // real mid-file corruption, not a torn tail, and recovery must say so
  // rather than silently dropping acknowledged records.
  std::string damaged = full_;
  damaged[10] = static_cast<char>(damaged[10] ^ 0x20);
  WriteFile(damaged);
  const auto records = Wal::ReplayFile(path_);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace polyvalue
