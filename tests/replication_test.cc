// Tests for replicated items (§3's "a set of individual items, one for
// each site").
#include "src/system/replication.h"

#include <gtest/gtest.h>

#include "src/obs/trace.h"
#include "src/replica/consistency.h"

namespace polyvalue {
namespace {

SimCluster::Options Options() {
  SimCluster::Options options;
  options.site_count = 3;
  options.engine.wait_timeout = 0.05;
  options.engine.inquiry_interval = 0.2;
  options.engine.validate_installs = true;
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  return options;
}

TEST(ReplicationTest, KeysArePerSite) {
  const ReplicaSet replicas("counter", {SiteId(1), SiteId(2), SiteId(3)});
  EXPECT_EQ(replicas.KeyAt(SiteId(2)), "counter@2");
  EXPECT_EQ(replicas.size(), 3u);
}

TEST(ReplicationTest, UpdateWritesAllCopies) {
  SimCluster cluster(Options());
  const ReplicaSet replicas("counter", {SiteId(1), SiteId(2), SiteId(3)});
  LoadReplicated(&cluster, replicas, Value::Int(0));

  const auto result = cluster.SubmitAndRun(
      0, replicas.MakeUpdate([](const Value& v) {
        return Add(v, Value::Int(5));
      }));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  EXPECT_EQ(result->output.certain_value(), Value::Int(5));
  cluster.RunFor(0.5);
  for (SiteId site : replicas.sites()) {
    EXPECT_EQ(cluster.site(site.value() - 1)
                  .Peek(replicas.KeyAt(site))
                  .value()
                  .certain_value(),
              Value::Int(5))
        << site;
  }
  EXPECT_TRUE(ReplicasConsistent(&cluster, replicas));
}

TEST(ReplicationTest, ReadReturnsLogicalValue) {
  SimCluster cluster(Options());
  const ReplicaSet replicas("cfg", {SiteId(2), SiteId(3)});
  LoadReplicated(&cluster, replicas, Value::Str("v1"));
  const auto result =
      cluster.SubmitAndRun(0, replicas.MakeRead(SiteId(2)));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->output.certain_value(), Value::Str("v1"));
}

TEST(ReplicationTest, UpdateAbortsCleanlyOnLogicFailure) {
  SimCluster cluster(Options());
  const ReplicaSet replicas("counter", {SiteId(1), SiteId(2)});
  LoadReplicated(&cluster, replicas, Value::Str("not-a-number"));
  const auto result = cluster.SubmitAndRun(
      0, replicas.MakeUpdate([](const Value& v) {
        return Add(v, Value::Int(1));  // type error -> abort
      }));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->committed());
  cluster.RunFor(0.5);
  EXPECT_TRUE(ReplicasConsistent(&cluster, replicas));
}

TEST(ReplicationTest, StrandedUpdateLeavesIdenticalPolyvaluesEverywhere) {
  SimCluster cluster(Options());
  const ReplicaSet replicas("counter", {SiteId(1), SiteId(2), SiteId(3)});
  LoadReplicated(&cluster, replicas, Value::Int(10));

  // Strand an update: coordinator crashes in the in-doubt window.
  cluster.Submit(0, replicas.MakeUpdate([](const Value& v) {
                   return Add(v, Value::Int(1));
                 }),
                 [](const TxnResult&) {});
  cluster.sim().At(0.035, [&cluster] { cluster.CrashSite(0); });
  cluster.RunFor(0.3);

  // Sites 2 and 3 hold identical polyvalues for their copies. (Site 1's
  // copy is on the crashed coordinator itself; it catches up at
  // recovery.)
  const PolyValue copy2 =
      cluster.site(1).Peek(replicas.KeyAt(SiteId(2))).value();
  const PolyValue copy3 =
      cluster.site(2).Peek(replicas.KeyAt(SiteId(3))).value();
  EXPECT_FALSE(copy2.is_certain());
  EXPECT_EQ(copy2.PossibleValues(), copy3.PossibleValues());

  // Recovery: every copy resolves to the same certain value.
  cluster.RecoverSite(0);
  cluster.RunFor(3.0);
  EXPECT_TRUE(ReplicasConsistent(&cluster, replicas));
  EXPECT_EQ(cluster.site(1)
                .Peek(replicas.KeyAt(SiteId(2)))
                .value()
                .certain_value(),
            Value::Int(10));  // presumed abort
}

TEST(ReplicationTest, SurvivingReplicasServeReadsDuringSiteOutage) {
  SimCluster cluster(Options());
  const ReplicaSet primary_down("cfg", {SiteId(2), SiteId(3)});
  LoadReplicated(&cluster, primary_down, Value::Int(7));
  cluster.CrashSite(2);  // site 3 = the second replica holder
  // Read through the surviving replica (site 2, index 1) still works.
  const auto result =
      cluster.SubmitAndRun(0, primary_down.MakeRead(SiteId(2)));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->output.certain_value(), Value::Int(7));
}

// --- Consistency checker and repair tool (src/replica/consistency.h) --

TEST(ReplicaConsistencyTest, CleanSetReportsConsistent) {
  SimCluster cluster(Options());
  const ReplicaSet replicas("cfg", {SiteId(1), SiteId(2), SiteId(3)});
  LoadReplicated(&cluster, replicas, Value::Int(5));
  const ReplicaCheckReport report = CheckReplicaSet(&cluster, replicas);
  EXPECT_TRUE(report.consistent());
  EXPECT_EQ(report.copies_checked, 3u);
  EXPECT_EQ(report.divergent, 0u);
  EXPECT_TRUE(report.problems.empty());
}

TEST(ReplicaConsistencyTest, DetectsDivergentCopy) {
  SimCluster cluster(Options());
  const ReplicaSet replicas("cfg", {SiteId(1), SiteId(2), SiteId(3)});
  LoadReplicated(&cluster, replicas, Value::Int(5));
  // Corrupt the minority copy behind the protocol's back.
  cluster.site(2).Load(replicas.KeyAt(SiteId(3)), Value::Int(999));
  const ReplicaCheckReport report = CheckReplicaSet(&cluster, replicas);
  EXPECT_FALSE(report.consistent());
  EXPECT_EQ(report.divergent, 1u);
  ASSERT_EQ(report.problems.size(), 1u);
  EXPECT_NE(report.problems[0].find("cfg@3"), std::string::npos);
}

TEST(ReplicaConsistencyTest, DetectsCopyCountMismatch) {
  SimCluster cluster(Options());
  // Copies loaded only at two of the three declared sites.
  const ReplicaSet loaded("cfg", {SiteId(1), SiteId(2)});
  const ReplicaSet declared("cfg", {SiteId(1), SiteId(2), SiteId(3)});
  LoadReplicated(&cluster, loaded, Value::Int(5));
  const ReplicaCheckReport report = CheckReplicaSet(&cluster, declared);
  EXPECT_FALSE(report.consistent());
  EXPECT_EQ(report.missing, 1u);
  EXPECT_EQ(report.copies_checked, 3u);
}

TEST(ReplicaConsistencyTest, SkipsCopiesOnDownSites) {
  SimCluster cluster(Options());
  const ReplicaSet replicas("cfg", {SiteId(1), SiteId(2), SiteId(3)});
  LoadReplicated(&cluster, replicas, Value::Int(5));
  cluster.CrashSite(2);
  const ReplicaCheckReport report = CheckReplicaSet(&cluster, replicas);
  EXPECT_TRUE(report.consistent());
  EXPECT_EQ(report.copies_checked, 2u);
  EXPECT_EQ(report.skipped_down, 1u);
}

TEST(ReplicaConsistencyTest, RepairRoundTrip) {
  SimCluster cluster(Options());
  const ReplicaSet replicas("cfg", {SiteId(1), SiteId(2), SiteId(3)});
  LoadReplicated(&cluster, replicas, Value::Int(5));
  cluster.site(2).Load(replicas.KeyAt(SiteId(3)), Value::Int(999));
  ASSERT_FALSE(CheckReplicaSet(&cluster, replicas).consistent());

  VectorTraceSink trace;
  const size_t repaired = RepairReplicaSet(&cluster, replicas, &trace);
  EXPECT_EQ(repaired, 1u);
  EXPECT_TRUE(CheckReplicaSet(&cluster, replicas).consistent());
  EXPECT_EQ(cluster.site(2)
                .Peek(replicas.KeyAt(SiteId(3)))
                .value()
                .certain_value(),
            Value::Int(5));

  // The repair announced the restored digest, so a later certain read
  // of the majority value passes A13 — and a second repair is a no-op.
  bool announced = false;
  for (const TraceEvent& e : trace.Snapshot()) {
    announced = announced || (e.type == TraceEventType::kReplicaRepair &&
                              e.arg == DigestValue(Value::Int(5)));
  }
  EXPECT_TRUE(announced);
  EXPECT_EQ(RepairReplicaSet(&cluster, replicas, &trace), 0u);
}

TEST(ReplicaConsistencyTest, RepairLeavesUncertainCopiesAlone) {
  SimCluster cluster(Options());
  const ReplicaSet replicas("counter", {SiteId(1), SiteId(2), SiteId(3)});
  LoadReplicated(&cluster, replicas, Value::Int(10));
  // Strand an update so the copies hold polyvalues.
  cluster.Submit(0, replicas.MakeUpdate([](const Value& v) {
                   return Add(v, Value::Int(1));
                 }),
                 [](const TxnResult&) {});
  cluster.sim().At(0.035, [&cluster] { cluster.CrashSite(0); });
  cluster.RunFor(0.3);
  ASSERT_FALSE(cluster.site(1)
                   .Peek(replicas.KeyAt(SiteId(2)))
                   .value()
                   .is_certain());
  // No certain majority and uncertain copies are out of scope: repair
  // must not clobber in-doubt state that propagation will resolve.
  EXPECT_EQ(RepairReplicaSet(&cluster, replicas, nullptr), 0u);
  EXPECT_FALSE(cluster.site(1)
                   .Peek(replicas.KeyAt(SiteId(2)))
                   .value()
                   .is_certain());
}

}  // namespace
}  // namespace polyvalue
