// Unit tests for the SOP condition algebra (Term + Condition).
#include "src/condition/condition.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

const TxnId kT1(1);
const TxnId kT2(2);
const TxnId kT3(3);

TEST(TermTest, EmptyTermIsTrue) {
  Term t;
  EXPECT_TRUE(t.is_true());
  EXPECT_FALSE(t.is_contradiction());
  EXPECT_EQ(t.ToString(), "true");
}

TEST(TermTest, SingleLiteral) {
  const Term t = Term::Committed(kT1);
  EXPECT_FALSE(t.is_true());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.PolarityOf(kT1), 1);
  EXPECT_EQ(t.PolarityOf(kT2), 0);
  EXPECT_EQ(t.ToString(), "T1");
}

TEST(TermTest, NegatedLiteral) {
  const Term t = Term::Aborted(kT2);
  EXPECT_EQ(t.PolarityOf(kT2), -1);
  EXPECT_EQ(t.ToString(), "¬T2");
}

TEST(TermTest, ContradictionDetected) {
  const Term t = Term::Of({{kT1, true}, {kT1, false}});
  EXPECT_TRUE(t.is_contradiction());
}

TEST(TermTest, DuplicateLiteralsCollapse) {
  const Term t = Term::Of({{kT1, true}, {kT1, true}});
  EXPECT_EQ(t.size(), 1u);
}

TEST(TermTest, LiteralsSortedById) {
  const Term t = Term::Of({{kT3, true}, {kT1, false}, {kT2, true}});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.literals()[0].txn, kT1);
  EXPECT_EQ(t.literals()[1].txn, kT2);
  EXPECT_EQ(t.literals()[2].txn, kT3);
}

TEST(TermTest, AndMergesLiterals) {
  const Term t = Term::And(Term::Committed(kT1), Term::Aborted(kT2));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.PolarityOf(kT1), 1);
  EXPECT_EQ(t.PolarityOf(kT2), -1);
}

TEST(TermTest, AndDetectsContradiction) {
  const Term t = Term::And(Term::Committed(kT1), Term::Aborted(kT1));
  EXPECT_TRUE(t.is_contradiction());
}

TEST(TermTest, AssumeSatisfiedLiteralDrops) {
  const Term t = Term::And(Term::Committed(kT1), Term::Committed(kT2));
  const Term reduced = t.Assume(kT1, true);
  EXPECT_EQ(reduced.size(), 1u);
  EXPECT_EQ(reduced.PolarityOf(kT2), 1);
}

TEST(TermTest, AssumeViolatedLiteralContradicts) {
  const Term t = Term::Committed(kT1);
  EXPECT_TRUE(t.Assume(kT1, false).is_contradiction());
}

TEST(TermTest, AssumeUnrelatedTxnNoChange) {
  const Term t = Term::Committed(kT1);
  EXPECT_EQ(t.Assume(kT3, true), t);
}

TEST(TermTest, SubsumesSubset) {
  const Term small = Term::Committed(kT1);
  const Term big = Term::And(Term::Committed(kT1), Term::Committed(kT2));
  EXPECT_TRUE(small.Subsumes(big));
  EXPECT_FALSE(big.Subsumes(small));
  EXPECT_TRUE(Term().Subsumes(small));
}

TEST(TermTest, EvaluateChecksAllLiterals) {
  const Term t = Term::And(Term::Committed(kT1), Term::Aborted(kT2));
  EXPECT_TRUE(t.Evaluate({{kT1, true}, {kT2, false}}));
  EXPECT_FALSE(t.Evaluate({{kT1, true}, {kT2, true}}));
  EXPECT_FALSE(t.Evaluate({{kT1, false}, {kT2, false}}));
}

// --- Condition ---

TEST(ConditionTest, TrueAndFalseConstants) {
  EXPECT_TRUE(Condition::True().is_true());
  EXPECT_FALSE(Condition::True().is_false());
  EXPECT_TRUE(Condition::False().is_false());
  EXPECT_EQ(Condition::True().ToString(), "true");
  EXPECT_EQ(Condition::False().ToString(), "false");
}

TEST(ConditionTest, CommittedAborted) {
  EXPECT_EQ(Condition::Committed(kT1).ToString(), "T1");
  EXPECT_EQ(Condition::Aborted(kT1).ToString(), "¬T1");
}

TEST(ConditionTest, AndOfAtoms) {
  const Condition c =
      Condition::And(Condition::Committed(kT1), Condition::Committed(kT2));
  EXPECT_EQ(c.terms().size(), 1u);
  EXPECT_EQ(c.ToString(), "T1·T2");
}

TEST(ConditionTest, AndWithFalseIsFalse) {
  EXPECT_TRUE(
      Condition::And(Condition::Committed(kT1), Condition::False())
          .is_false());
}

TEST(ConditionTest, AndWithTrueIsIdentity) {
  const Condition c = Condition::Committed(kT1);
  EXPECT_EQ(Condition::And(c, Condition::True()), c);
}

TEST(ConditionTest, OrWithComplementIsTrue) {
  // Blake canonical form: T + ¬T collapses to true via consensus.
  const Condition c =
      Condition::Or(Condition::Committed(kT1), Condition::Aborted(kT1));
  EXPECT_TRUE(c.is_true());
}

TEST(ConditionTest, ConsensusCollapsesSharedFactor) {
  // T1·T2 + T1·¬T2 == T1.
  const Condition a =
      Condition::And(Condition::Committed(kT1), Condition::Committed(kT2));
  const Condition b =
      Condition::And(Condition::Committed(kT1), Condition::Aborted(kT2));
  const Condition c = Condition::Or(a, b);
  EXPECT_EQ(c, Condition::Committed(kT1));
}

TEST(ConditionTest, AbsorptionRemovesRedundantTerm) {
  // T1 + T1·T2 == T1.
  const Condition c = Condition::Or(
      Condition::Committed(kT1),
      Condition::And(Condition::Committed(kT1), Condition::Committed(kT2)));
  EXPECT_EQ(c, Condition::Committed(kT1));
}

TEST(ConditionTest, NotOfAtom) {
  EXPECT_EQ(Condition::Not(Condition::Committed(kT1)),
            Condition::Aborted(kT1));
}

TEST(ConditionTest, NotOfTrueIsFalse) {
  EXPECT_TRUE(Condition::Not(Condition::True()).is_false());
  EXPECT_TRUE(Condition::Not(Condition::False()).is_true());
}

TEST(ConditionTest, DeMorgan) {
  const Condition t1_and_t2 =
      Condition::And(Condition::Committed(kT1), Condition::Committed(kT2));
  const Condition negated = Condition::Not(t1_and_t2);
  const Condition expected =
      Condition::Or(Condition::Aborted(kT1), Condition::Aborted(kT2));
  EXPECT_TRUE(negated.EquivalentTo(expected));
}

TEST(ConditionTest, DoubleNegationIsIdentity) {
  const Condition c = Condition::Or(
      Condition::And(Condition::Committed(kT1), Condition::Aborted(kT2)),
      Condition::Committed(kT3));
  EXPECT_TRUE(Condition::Not(Condition::Not(c)).EquivalentTo(c));
}

TEST(ConditionTest, AssumeReducesToGround) {
  // The paper's example: T1·(T2 + T3).
  const Condition c = Condition::And(
      Condition::Committed(kT1),
      Condition::Or(Condition::Committed(kT2), Condition::Committed(kT3)));
  EXPECT_TRUE(
      c.Assume(kT1, true).Assume(kT2, true).is_true());
  EXPECT_TRUE(c.Assume(kT1, false).is_false());
  EXPECT_TRUE(c.Assume(kT2, false).Assume(kT3, false).is_false());
}

TEST(ConditionTest, VariablesSortedDistinct) {
  const Condition c = Condition::Or(
      Condition::And(Condition::Committed(kT3), Condition::Aborted(kT1)),
      Condition::Committed(kT1));
  const std::vector<TxnId> vars = c.Variables();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], kT1);
  EXPECT_EQ(vars[1], kT3);
}

TEST(ConditionTest, EvaluateMatchesPaperSemantics) {
  // "T1·(T2 + T3) would be true if T1 and at least one of T2 and T3 were
  // completed."
  const Condition c = Condition::And(
      Condition::Committed(kT1),
      Condition::Or(Condition::Committed(kT2), Condition::Committed(kT3)));
  EXPECT_TRUE(c.Evaluate({{kT1, true}, {kT2, true}, {kT3, false}}));
  EXPECT_TRUE(c.Evaluate({{kT1, true}, {kT2, false}, {kT3, true}}));
  EXPECT_FALSE(c.Evaluate({{kT1, false}, {kT2, true}, {kT3, true}}));
  EXPECT_FALSE(c.Evaluate({{kT1, true}, {kT2, false}, {kT3, false}}));
}

TEST(ConditionTest, TautologyDetection) {
  // (T1·T2) + ¬T1 + ¬T2 is a tautology.
  const Condition c = Condition::Or(
      Condition::Or(
          Condition::And(Condition::Committed(kT1),
                         Condition::Committed(kT2)),
          Condition::Aborted(kT1)),
      Condition::Aborted(kT2));
  EXPECT_TRUE(c.IsTautology());
  EXPECT_FALSE(Condition::Committed(kT1).IsTautology());
}

TEST(ConditionTest, ImpliesAndEquivalence) {
  const Condition t1t2 =
      Condition::And(Condition::Committed(kT1), Condition::Committed(kT2));
  EXPECT_TRUE(t1t2.Implies(Condition::Committed(kT1)));
  EXPECT_FALSE(Condition::Committed(kT1).Implies(t1t2));
  EXPECT_TRUE(t1t2.EquivalentTo(
      Condition::And(Condition::Committed(kT2), Condition::Committed(kT1))));
}

TEST(ConditionTest, Disjointness) {
  EXPECT_TRUE(Condition::Committed(kT1).DisjointWith(
      Condition::Aborted(kT1)));
  EXPECT_FALSE(Condition::Committed(kT1).DisjointWith(
      Condition::Committed(kT2)));
}

TEST(ConditionTest, CompleteAndDisjointPair) {
  EXPECT_TRUE(ConditionsCompleteAndDisjoint(
      {Condition::Committed(kT1), Condition::Aborted(kT1)}));
  // Incomplete.
  EXPECT_FALSE(ConditionsCompleteAndDisjoint(
      {Condition::Committed(kT1),
       Condition::And(Condition::Aborted(kT1), Condition::Committed(kT2))}));
  // Overlapping.
  EXPECT_FALSE(ConditionsCompleteAndDisjoint(
      {Condition::True(), Condition::Committed(kT1)}));
}

TEST(ConditionTest, CompleteAndDisjointThreeWay) {
  // {T1·T2, T1·¬T2, ¬T1} partitions the outcome space.
  EXPECT_TRUE(ConditionsCompleteAndDisjoint(
      {Condition::And(Condition::Committed(kT1), Condition::Committed(kT2)),
       Condition::And(Condition::Committed(kT1), Condition::Aborted(kT2)),
       Condition::Aborted(kT1)}));
}

TEST(ConditionTest, CountModels) {
  const std::vector<TxnId> vars = {kT1, kT2};
  EXPECT_EQ(Condition::True().CountModels(vars), 4u);
  EXPECT_EQ(Condition::False().CountModels(vars), 0u);
  EXPECT_EQ(Condition::Committed(kT1).CountModels(vars), 2u);
  EXPECT_EQ(Condition::And(Condition::Committed(kT1),
                           Condition::Committed(kT2))
                .CountModels(vars),
            1u);
  EXPECT_EQ(Condition::Or(Condition::Committed(kT1),
                          Condition::Committed(kT2))
                .CountModels(vars),
            3u);
}

TEST(ConditionTest, HashEqualForEqualConditions) {
  const Condition a =
      Condition::Or(Condition::Committed(kT1), Condition::Committed(kT2));
  const Condition b =
      Condition::Or(Condition::Committed(kT2), Condition::Committed(kT1));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ConditionTest, SumOfProductsStringForm) {
  const Condition c = Condition::Or(
      Condition::And(Condition::Committed(kT1), Condition::Aborted(kT2)),
      Condition::Committed(kT3));
  EXPECT_EQ(c.ToString(), "T1·¬T2 + T3");
}

}  // namespace
}  // namespace polyvalue

namespace polyvalue {
namespace {

TEST(ConditionTest, ConsensusCapFallsBackGracefully) {
  // Build a condition whose consensus closure would be expensive: a wide
  // XOR-ish structure over many transactions. Past the 64-term cap,
  // canonicalisation keeps absorption only — semantic queries must stay
  // exact regardless.
  Condition parity = Condition::False();
  for (int i = 1; i <= 9; ++i) {
    parity = Condition::Or(
        Condition::And(parity.IsTautology() ? Condition::True() : parity,
                       Condition::Aborted(TxnId(i))),
        Condition::And(Condition::Not(parity), Condition::Committed(TxnId(i))));
  }
  // parity = odd number of commits among T1..T9. Not a tautology, not
  // false; its negation ORed with it IS a tautology.
  EXPECT_FALSE(parity.is_false());
  EXPECT_FALSE(parity.IsTautology());
  EXPECT_TRUE(Condition::Or(parity, Condition::Not(parity)).IsTautology());
  EXPECT_TRUE(parity.DisjointWith(Condition::Not(parity)));
  // Model count: exactly half of 2^9 assignments have odd parity.
  std::vector<TxnId> vars;
  for (int i = 1; i <= 9; ++i) {
    vars.push_back(TxnId(i));
  }
  EXPECT_EQ(parity.CountModels(vars), 256u);
}

}  // namespace
}  // namespace polyvalue
