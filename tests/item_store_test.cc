// Unit tests for the per-site item store and its 2PL lock plane.
#include "src/store/item_store.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

const TxnId kT1(1);
const TxnId kT2(2);

TEST(ItemStoreTest, ReadMissingIsNotFound) {
  ItemStore store;
  EXPECT_EQ(store.Read("nope").status().code(), StatusCode::kNotFound);
}

TEST(ItemStoreTest, WriteThenRead) {
  ItemStore store;
  store.Write("k", PolyValue::Certain(Value::Int(5)));
  EXPECT_EQ(store.Read("k").value().certain_value(), Value::Int(5));
  EXPECT_TRUE(store.Contains("k"));
  EXPECT_EQ(store.size(), 1u);
}

TEST(ItemStoreTest, OverwriteReplaces) {
  ItemStore store;
  store.Write("k", PolyValue::Certain(Value::Int(1)));
  store.Write("k", PolyValue::Certain(Value::Int(2)));
  EXPECT_EQ(store.Read("k").value().certain_value(), Value::Int(2));
  EXPECT_EQ(store.size(), 1u);
}

TEST(ItemStoreTest, DefaultFactorySuppliesMissingItems) {
  ItemStore store([](const ItemKey& key) {
    return PolyValue::Certain(Value::Str(key));
  });
  EXPECT_EQ(store.Read("auto").value().certain_value(), Value::Str("auto"));
  // Factory reads do not persist the item.
  EXPECT_FALSE(store.Contains("auto"));
}

TEST(ItemStoreTest, UncertainCountTracksPolyvalues) {
  ItemStore store;
  store.Write("a", PolyValue::Certain(Value::Int(1)));
  EXPECT_EQ(store.UncertainCount(), 0u);
  store.Write("b", PolyValue::InstallUncertain(
                       kT1, PolyValue::Certain(Value::Int(2)),
                       PolyValue::Certain(Value::Int(3))));
  EXPECT_EQ(store.UncertainCount(), 1u);
  EXPECT_EQ(store.UncertainKeys(), std::vector<ItemKey>{"b"});
  store.Write("b", PolyValue::Certain(Value::Int(2)));
  EXPECT_EQ(store.UncertainCount(), 0u);
}

TEST(ItemStoreTest, ForEachVisitsAll) {
  ItemStore store;
  store.Write("a", PolyValue::Certain(Value::Int(1)));
  store.Write("b", PolyValue::Certain(Value::Int(2)));
  int64_t sum = 0;
  store.ForEach([&](const ItemKey&, const PolyValue& v) {
    sum += v.certain_value().int_value();
  });
  EXPECT_EQ(sum, 3);
}

TEST(ItemStoreLockTest, ExclusiveAcquisition) {
  ItemStore store;
  EXPECT_TRUE(store.Lock("k", kT1).ok());
  EXPECT_EQ(store.Lock("k", kT2).code(), StatusCode::kAborted);
  EXPECT_EQ(store.LockHolder("k"), kT1);
}

TEST(ItemStoreLockTest, ReentrantForSameTxn) {
  ItemStore store;
  EXPECT_TRUE(store.Lock("k", kT1).ok());
  EXPECT_TRUE(store.Lock("k", kT1).ok());
  EXPECT_EQ(store.locked_count(), 1u);
}

TEST(ItemStoreLockTest, UnlockAllReleasesEverything) {
  ItemStore store;
  EXPECT_TRUE(store.Lock("a", kT1).ok());
  EXPECT_TRUE(store.Lock("b", kT1).ok());
  EXPECT_TRUE(store.Lock("c", kT2).ok());
  store.UnlockAll(kT1);
  EXPECT_EQ(store.locked_count(), 1u);
  EXPECT_FALSE(store.LockHolder("a").has_value());
  EXPECT_TRUE(store.Lock("a", kT2).ok());
  EXPECT_EQ(store.LockHolder("c"), kT2);
}

TEST(ItemStoreLockTest, UnlockAllUnknownTxnIsNoOp) {
  ItemStore store;
  store.UnlockAll(kT1);
  EXPECT_EQ(store.locked_count(), 0u);
}

TEST(ItemStoreLockTest, LockOnNonexistentItemAllowed) {
  // Locks protect names, not stored values — a transaction creating a new
  // item must be able to lock it first.
  ItemStore store;
  EXPECT_TRUE(store.Lock("new-item", kT1).ok());
}

}  // namespace
}  // namespace polyvalue
