// Unit tests for the leveled logger.
#include "src/common/logging.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Logger::Get().level();
    Logger::Get().set_capture(true);
  }
  void TearDown() override {
    Logger::Get().set_capture(false);
    Logger::Get().set_level(saved_level_);
  }
  LogLevel saved_level_;
};

TEST_F(LoggingTest, LevelsFilter) {
  Logger::Get().set_level(LogLevel::kWarn);
  POLYV_DEBUG << "too quiet";
  POLYV_INFO << "still too quiet";
  POLYV_WARN << "warning!";
  POLYV_ERROR << "error!";
  const std::string captured = Logger::Get().TakeCaptured();
  EXPECT_EQ(captured.find("too quiet"), std::string::npos);
  EXPECT_NE(captured.find("WARN warning!"), std::string::npos);
  EXPECT_NE(captured.find("ERROR error!"), std::string::npos);
}

TEST_F(LoggingTest, StreamFormatting) {
  Logger::Get().set_level(LogLevel::kInfo);
  POLYV_INFO << "x=" << 42 << " y=" << 1.5;
  EXPECT_NE(Logger::Get().TakeCaptured().find("x=42 y=1.5"),
            std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::Get().set_level(LogLevel::kOff);
  POLYV_ERROR << "even errors";
  EXPECT_TRUE(Logger::Get().TakeCaptured().empty());
}

TEST_F(LoggingTest, TakeCapturedDrains) {
  Logger::Get().set_level(LogLevel::kInfo);
  POLYV_INFO << "once";
  EXPECT_FALSE(Logger::Get().TakeCaptured().empty());
  EXPECT_TRUE(Logger::Get().TakeCaptured().empty());
}

TEST(LogLevelTest, Names) {
  EXPECT_STREQ(LogLevelName(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace polyvalue
