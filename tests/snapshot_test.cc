// Tests for site snapshots / checkpointing.
#include "src/store/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace polyvalue {
namespace {

const TxnId kT1(1);
const TxnId kT2((2ULL << 40) | 5);
const SiteId kS1(1);
const SiteId kS2(2);

PolyValue Uncertain() {
  return PolyValue::InstallUncertain(kT1,
                                     PolyValue::Certain(Value::Int(1)),
                                     PolyValue::Certain(Value::Int(2)));
}

SiteSnapshot MakeRich() {
  SiteSnapshot snap;
  snap.items.emplace("a", PolyValue::Certain(Value::Int(42)));
  snap.items.emplace("b", Uncertain());
  snap.items.emplace("c", PolyValue::Certain(Value::Str("text")));
  SiteSnapshot::PendingTxn pending;
  pending.txn = kT1;
  pending.dependent_items = {"b"};
  pending.downstream_sites = {kS1, kS2};
  snap.pending.push_back(pending);
  SiteSnapshot::PreparedTxn prepared;
  prepared.txn = kT2;
  prepared.coordinator = kS2;
  prepared.writes.emplace("a", PolyValue::Certain(Value::Int(99)));
  snap.prepared.push_back(prepared);
  snap.decided.emplace(kT2, true);
  snap.decided.emplace(TxnId(77), false);
  return snap;
}

void ExpectEqualSnapshots(const SiteSnapshot& a, const SiteSnapshot& b) {
  EXPECT_EQ(a.items, b.items);
  ASSERT_EQ(a.pending.size(), b.pending.size());
  for (size_t i = 0; i < a.pending.size(); ++i) {
    EXPECT_EQ(a.pending[i].txn, b.pending[i].txn);
    EXPECT_EQ(a.pending[i].dependent_items, b.pending[i].dependent_items);
    EXPECT_EQ(a.pending[i].downstream_sites,
              b.pending[i].downstream_sites);
  }
  ASSERT_EQ(a.prepared.size(), b.prepared.size());
  for (size_t i = 0; i < a.prepared.size(); ++i) {
    EXPECT_EQ(a.prepared[i].txn, b.prepared[i].txn);
    EXPECT_EQ(a.prepared[i].coordinator, b.prepared[i].coordinator);
    EXPECT_EQ(a.prepared[i].writes, b.prepared[i].writes);
  }
  EXPECT_EQ(a.decided, b.decided);
}

TEST(SnapshotTest, EncodeDecodeRoundTrip) {
  const SiteSnapshot original = MakeRich();
  const Result<SiteSnapshot> decoded =
      SiteSnapshot::Decode(original.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectEqualSnapshots(original, decoded.value());
}

TEST(SnapshotTest, EmptySnapshotRoundTrips) {
  const SiteSnapshot empty;
  const Result<SiteSnapshot> decoded =
      SiteSnapshot::Decode(empty.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->items.empty());
  EXPECT_TRUE(decoded->pending.empty());
}

TEST(SnapshotTest, CaptureAndRestoreStores) {
  ItemStore items;
  OutcomeTable outcomes;
  items.Write("x", PolyValue::Certain(Value::Int(7)));
  items.Write("y", Uncertain());
  outcomes.RecordDependentItem(kT1, "y");
  outcomes.RecordDownstreamSite(kT1, kS2);

  const SiteSnapshot snap = CaptureStores(items, outcomes);
  ItemStore items2;
  OutcomeTable outcomes2;
  RestoreStores(snap, &items2, &outcomes2);

  EXPECT_EQ(items2.Read("x").value().certain_value(), Value::Int(7));
  EXPECT_EQ(items2.Read("y").value(), Uncertain());
  EXPECT_TRUE(outcomes2.IsTracking(kT1));
  const auto entry = outcomes2.EntryFor(kT1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->dependent_items.count("y"), 1u);
  EXPECT_EQ(entry->downstream_sites.count(kS2), 1u);
}

class SnapshotFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "snapshot_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".snap";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SnapshotFileTest, FileRoundTrip) {
  const SiteSnapshot original = MakeRich();
  ASSERT_TRUE(WriteSnapshotFile(original, path_).ok());
  const Result<SiteSnapshot> loaded = ReadSnapshotFile(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectEqualSnapshots(original, loaded.value());
}

TEST_F(SnapshotFileTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadSnapshotFile(path_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SnapshotFileTest, CorruptionDetected) {
  ASSERT_TRUE(WriteSnapshotFile(MakeRich(), path_).ok());
  // Flip a byte inside the body.
  std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(20);
  file.put('\x5a');
  file.close();
  EXPECT_EQ(ReadSnapshotFile(path_).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(SnapshotFileTest, BadMagicDetected) {
  std::ofstream out(path_, std::ios::binary);
  out << "NOTASNAPxxxxxxxxxxxx";
  out.close();
  EXPECT_EQ(ReadSnapshotFile(path_).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(SnapshotFileTest, OverwriteIsAtomicReplacement) {
  ASSERT_TRUE(WriteSnapshotFile(MakeRich(), path_).ok());
  SiteSnapshot small;
  small.items.emplace("only", PolyValue::Certain(Value::Int(1)));
  ASSERT_TRUE(WriteSnapshotFile(small, path_).ok());
  const Result<SiteSnapshot> loaded = ReadSnapshotFile(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->items.size(), 1u);
}

}  // namespace
}  // namespace polyvalue
