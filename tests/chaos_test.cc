// Chaos property tests: randomised failure schedules against global
// invariants.
//
// For any schedule of message drops, site crashes and recoveries, after
// the network heals and the system quiesces:
//   I1. every item is certain (all uncertainty drains),
//   I2. money is conserved (transfers are atomic),
//   I3. a client-reported COMMIT implies both writes survived and a
//       client-reported certain output was truthful,
//   I4. no locks remain held,
//   I5. the recorded protocol trace satisfies every TraceAuditor
//       invariant (the path was legal, not just the end state).
// Runs under the polyvalue policy (the paper) and the blocking baseline,
// across a seed x policy x drop-rate x lock-wait grid.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/obs/audit.h"
#include "src/system/cluster.h"

namespace polyvalue {
namespace {

struct ChaosParams {
  uint64_t seed;
  InDoubtPolicy policy;
  double drop_probability;
  LockWaitPolicy lock_wait = LockWaitPolicy::kNoWait;
  ProtocolLeg leg = ProtocolLeg::kTwoPhase;
};

class ChaosTest : public ::testing::TestWithParam<ChaosParams> {};

TEST_P(ChaosTest, InvariantsHoldThroughRandomFailures) {
  const ChaosParams& params = GetParam();
  VectorTraceSink trace;
  SimCluster::Options options;
  options.trace = &trace;
  options.site_count = 4;
  options.seed = params.seed;
  options.engine.prepare_timeout = 0.3;
  options.engine.ready_timeout = 0.3;
  options.engine.wait_timeout = 0.1;
  options.engine.inquiry_interval = 0.25;
  options.engine.policy = params.policy;
  options.engine.lock_wait = params.lock_wait;
  options.engine.leg = params.leg;
  options.engine.paxos_failover_timeout = 0.2;
  options.engine.validate_installs = true;
  options.min_delay = 0.005;
  options.max_delay = 0.02;
  SimCluster cluster(options);

  constexpr int kAccountsPerSite = 6;
  constexpr int64_t kInitial = 500;
  for (size_t s = 0; s < 4; ++s) {
    for (int a = 0; a < kAccountsPerSite; ++a) {
      cluster.Load(s, "acct/" + std::to_string(s) + "/" + std::to_string(a),
                   Value::Int(kInitial));
    }
  }
  const int64_t expected_total = 4 * kAccountsPerSite * kInitial;

  Rng rng(params.seed * 7919);
  Simulator& sim = cluster.sim();

  // Random crash/recovery schedule over the first 20 s: each site crashes
  // once at a random time for a random 1-4 s outage (never all at once —
  // site 3 stays up to keep some quorum of activity).
  for (size_t s = 0; s < 3; ++s) {
    const double crash_at = 2.0 + rng.NextDouble() * 12.0;
    const double recover_at = crash_at + 1.0 + rng.NextDouble() * 3.0;
    sim.At(crash_at, [&cluster, s] { cluster.CrashSite(s); });
    sim.At(recover_at, [&cluster, s] { cluster.RecoverSite(s); });
  }
  cluster.faults().SetDropProbability(params.drop_probability);

  // Offered load: random transfers for 20 s.
  struct Outcome {
    bool committed;
    bool output_certain;
  };
  std::map<TxnId, Outcome> outcomes;
  int submitted = 0;
  std::function<void()> pump = [&] {
    if (sim.now() > 20.0) {
      return;
    }
    sim.After(rng.NextExponential(1.0 / 25.0), [&] {
      pump();
      const size_t coordinator = rng.NextBelow(4);
      if (cluster.site(coordinator).crashed()) {
        return;
      }
      const size_t fs = rng.NextBelow(4);
      size_t ts = rng.NextBelow(4);
      const int fa = rng.NextBelow(kAccountsPerSite);
      int ta = rng.NextBelow(kAccountsPerSite);
      if (fs == ts && fa == ta) {
        ta = (ta + 1) % kAccountsPerSite;
      }
      const ItemKey from =
          "acct/" + std::to_string(fs) + "/" + std::to_string(fa);
      const ItemKey to =
          "acct/" + std::to_string(ts) + "/" + std::to_string(ta);
      const int64_t amount = rng.NextInt(1, 25);
      TxnSpec spec;
      spec.ReadWrite(from, cluster.site_id(fs));
      spec.ReadWrite(to, cluster.site_id(ts));
      spec.Logic([from, to, amount](const TxnReads& reads) {
        const int64_t have = reads.IntAt(from);
        if (have < amount) {
          return TxnEffect::Abort("insufficient");
        }
        TxnEffect e;
        e.writes[from] = Value::Int(have - amount);
        e.writes[to] = Value::Int(reads.IntAt(to) + amount);
        e.output = Value::Bool(true);
        return e;
      });
      ++submitted;
      const TxnId txn = cluster.Submit(
          coordinator, std::move(spec), [&outcomes](const TxnResult& r) {
            outcomes[r.id] = {r.committed(), r.output.is_certain()};
          });
      (void)txn;
    });
  };
  pump();
  cluster.RunFor(22.0);

  // Heal everything and quiesce.
  for (size_t s = 0; s < 4; ++s) {
    if (cluster.site(s).crashed()) {
      cluster.RecoverSite(s);
    }
  }
  cluster.faults().SetDropProbability(0.0);
  cluster.faults().HealAll();
  cluster.RunFor(30.0);

  ASSERT_GT(submitted, 100);

  // I1: all certain.
  EXPECT_EQ(cluster.TotalUncertainItems(), 0u)
      << "policy=" << InDoubtPolicyName(params.policy)
      << " seed=" << params.seed;

  // I2: conservation.
  int64_t total = 0;
  for (size_t s = 0; s < 4; ++s) {
    cluster.site(s).store().ForEach(
        [&total](const ItemKey&, const PolyValue& v) {
          ASSERT_TRUE(v.is_certain());
          total += v.certain_value().int_value();
        });
  }
  EXPECT_EQ(total, expected_total)
      << "policy=" << InDoubtPolicyName(params.policy)
      << " seed=" << params.seed;

  // I3: commits the coordinator reported match its durable decision.
  for (const auto& [txn, outcome] : outcomes) {
    if (outcome.committed) {
      const size_t coord_index =
          TxnEngine::CoordinatorOf(txn).value() - 1;
      EXPECT_EQ(cluster.site(coord_index).DecidedOutcome(txn), true);
    }
  }

  // I4: no stuck locks.
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(cluster.site(s).store().locked_count(), 0u) << "site " << s;
  }

  // I5: the event sequence itself obeys the protocol invariants.
  const std::vector<TraceEvent> events = trace.Snapshot();
  ASSERT_GT(events.size(), 0u);
  const Status audit = TraceAuditor::Check(events);
  EXPECT_TRUE(audit.ok()) << "policy=" << InDoubtPolicyName(params.policy)
                          << " seed=" << params.seed << "\n"
                          << audit.message();
}

// Full grid: every (policy, lock-wait, drop-rate) combination, plus
// extra polyvalue-policy schedules (the paper's configuration gets the
// widest seed coverage), plus Paxos Commit cells — the same random
// crash/recovery schedules exercise leader crashes mid-Phase2a,
// acceptor minority loss (one of four acceptors down still leaves the
// 3-site majority), and vote/decision drops. Seeds are distinct across
// the whole grid, so the auditor sees 33 different randomized failure
// schedules.
std::vector<ChaosParams> ChaosGrid() {
  std::vector<ChaosParams> grid;
  uint64_t seed = 1;
  for (InDoubtPolicy policy :
       {InDoubtPolicy::kPolyvalue, InDoubtPolicy::kBlock}) {
    for (LockWaitPolicy lock_wait :
         {LockWaitPolicy::kNoWait, LockWaitPolicy::kWaitDie}) {
      for (double drop : {0.0, 0.02, 0.05}) {
        grid.push_back(ChaosParams{seed++, policy, drop, lock_wait});
      }
    }
  }
  while (seed <= 24) {
    grid.push_back(ChaosParams{seed, InDoubtPolicy::kPolyvalue, 0.03,
                               seed % 2 == 0 ? LockWaitPolicy::kWaitDie
                                             : LockWaitPolicy::kNoWait});
    ++seed;
  }
  for (double drop : {0.0, 0.02, 0.05}) {
    for (int i = 0; i < 3; ++i) {
      grid.push_back(ChaosParams{seed++, InDoubtPolicy::kPolyvalue, drop,
                                 LockWaitPolicy::kNoWait,
                                 ProtocolLeg::kPaxosCommit});
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ChaosTest, ::testing::ValuesIn(ChaosGrid()),
    [](const ::testing::TestParamInfo<ChaosParams>& i) {
      const bool paxos = i.param.leg == ProtocolLeg::kPaxosCommit;
      return "seed" + std::to_string(i.param.seed) + "_" +
             (paxos ? "paxos" : InDoubtPolicyName(i.param.policy)) +
             "_drop" +
             std::to_string(
                 static_cast<int>(i.param.drop_probability * 100)) +
             (i.param.lock_wait == LockWaitPolicy::kWaitDie ? "_waitdie"
                                                            : "_nowait");
    });

}  // namespace
}  // namespace polyvalue
