// Unit tests for the deterministic RNG and its distributions.
#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace polyvalue {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextBelowUnbiasedRoughly) {
  Rng rng(99);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.NextBelow(8)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int heads = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    heads += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(heads / static_cast<double>(n), 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(4.0);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.NextPoisson(2.5));
  }
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesApproximation) {
  Rng rng(23);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.NextPoisson(100.0));
  }
  EXPECT_NEAR(sum / n, 100.0, 1.5);
}

TEST(RngTest, SampleDistinctProducesDistinct) {
  Rng rng(29);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleDistinct(100, 20);
    EXPECT_EQ(sample.size(), 20u);
    std::set<uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (uint64_t v : sample) {
      EXPECT_LT(v, 100u);
    }
  }
}

TEST(RngTest, SampleDistinctFullRange) {
  Rng rng(31);
  const auto sample = rng.SampleDistinct(10, 10);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ForkedStreamsIndependent) {
  Rng parent(37);
  Rng child = parent.Fork();
  // The two streams should not be identical.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace polyvalue
