// Unit tests for the statistics accumulators.
#include "src/common/stats.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

TEST(RunningStatTest, EmptyDefaults) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, SampleVarianceUsesNMinusOne) {
  RunningStat s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat merged_a;
  RunningStat merged_b;
  RunningStat sequential;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    sequential.Add(x);
    (i % 2 == 0 ? merged_a : merged_b).Add(x);
  }
  merged_a.Merge(merged_b);
  EXPECT_EQ(merged_a.count(), sequential.count());
  EXPECT_NEAR(merged_a.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(merged_a.variance(), sequential.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged_a.min(), sequential.min());
  EXPECT_DOUBLE_EQ(merged_a.max(), sequential.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(5.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(TimeWeightedStatTest, ConstantLevel) {
  TimeWeightedStat s;
  s.Observe(0.0, 0.0);   // establish start
  s.Observe(10.0, 3.0);  // level 3 held from t=0 to t=10
  EXPECT_DOUBLE_EQ(s.average(), 3.0);
}

TEST(TimeWeightedStatTest, StepFunction) {
  TimeWeightedStat s;
  s.Observe(0.0, 0.0);
  s.Observe(4.0, 1.0);   // level 1 for 4s
  s.Observe(6.0, 5.0);   // level 5 for 2s
  // average = (1*4 + 5*2) / 6
  EXPECT_DOUBLE_EQ(s.average(), 14.0 / 6.0);
}

TEST(TimeWeightedStatTest, ResetDiscardsHistory) {
  TimeWeightedStat s;
  s.Observe(0.0, 0.0);
  s.Observe(5.0, 100.0);
  s.Reset(5.0);
  s.Observe(10.0, 2.0);
  EXPECT_DOUBLE_EQ(s.average(), 2.0);
  EXPECT_DOUBLE_EQ(s.elapsed(), 5.0);
}

TEST(TimeWeightedStatTest, ZeroSpanIsZero) {
  TimeWeightedStat s;
  s.Observe(1.0, 7.0);
  EXPECT_DOUBLE_EQ(s.average(), 0.0);
}

TEST(HistogramTest, CountsAndPercentiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.Add(i * 0.1);  // uniform over [0, 10)
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.Percentile(50), 5.0, 1.0);
  EXPECT_NEAR(h.Percentile(90), 9.0, 1.0);
}

TEST(HistogramTest, OverUnderflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(99.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1.0);
}

}  // namespace
}  // namespace polyvalue
