// Unit tests for the statistics accumulators.
#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

namespace polyvalue {
namespace {

TEST(RunningStatTest, EmptyDefaults) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, SampleVarianceUsesNMinusOne) {
  RunningStat s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat merged_a;
  RunningStat merged_b;
  RunningStat sequential;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    sequential.Add(x);
    (i % 2 == 0 ? merged_a : merged_b).Add(x);
  }
  merged_a.Merge(merged_b);
  EXPECT_EQ(merged_a.count(), sequential.count());
  EXPECT_NEAR(merged_a.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(merged_a.variance(), sequential.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged_a.min(), sequential.min());
  EXPECT_DOUBLE_EQ(merged_a.max(), sequential.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(5.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(TimeWeightedStatTest, ConstantLevel) {
  TimeWeightedStat s;
  s.Observe(0.0, 0.0);   // establish start
  s.Observe(10.0, 3.0);  // level 3 held from t=0 to t=10
  EXPECT_DOUBLE_EQ(s.average(), 3.0);
}

TEST(TimeWeightedStatTest, StepFunction) {
  TimeWeightedStat s;
  s.Observe(0.0, 0.0);
  s.Observe(4.0, 1.0);   // level 1 for 4s
  s.Observe(6.0, 5.0);   // level 5 for 2s
  // average = (1*4 + 5*2) / 6
  EXPECT_DOUBLE_EQ(s.average(), 14.0 / 6.0);
}

TEST(TimeWeightedStatTest, ResetDiscardsHistory) {
  TimeWeightedStat s;
  s.Observe(0.0, 0.0);
  s.Observe(5.0, 100.0);
  s.Reset(5.0);
  s.Observe(10.0, 2.0);
  EXPECT_DOUBLE_EQ(s.average(), 2.0);
  EXPECT_DOUBLE_EQ(s.elapsed(), 5.0);
}

TEST(TimeWeightedStatTest, ZeroSpanIsZero) {
  TimeWeightedStat s;
  s.Observe(1.0, 7.0);
  EXPECT_DOUBLE_EQ(s.average(), 0.0);
}

TEST(HistogramTest, CountsAndPercentiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.Add(i * 0.1);  // uniform over [0, 10)
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.Percentile(50), 5.0, 1.0);
  EXPECT_NEAR(h.Percentile(90), 9.0, 1.0);
}

TEST(HistogramTest, OverUnderflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(99.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1.0);
}

TEST(LogHistogramTest, EmptyDefaults) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(LogHistogramTest, BucketEdgesAreGeometric) {
  LogHistogram::Options options;
  options.lo = 1.0;
  options.growth = 2.0;
  options.buckets = 8;
  LogHistogram h(options);
  for (size_t i = 0; i < options.buckets; ++i) {
    EXPECT_DOUBLE_EQ(h.bucket_lower(i), std::pow(2.0, double(i)));
    EXPECT_DOUBLE_EQ(h.bucket_upper(i), std::pow(2.0, double(i + 1)));
  }
}

// The core accuracy contract: a reported percentile is the upper edge
// of the bucket holding the true quantile, so it never understates and
// overstates by at most one growth factor.
TEST(LogHistogramTest, PercentileAccuracyBounds) {
  LogHistogram h;  // default shape: lo=1us, growth=1.25
  std::vector<double> values;
  // Latency-shaped samples spanning several decades, deterministic.
  for (int i = 1; i <= 2000; ++i) {
    values.push_back(1e-4 * (1.0 + 0.017 * i) * (1 + (i % 7)));
  }
  for (double v : values) {
    h.Add(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const size_t rank = std::min(
        values.size() - 1,
        static_cast<size_t>(std::ceil(p / 100.0 * values.size())));
    const double exact = values[rank == 0 ? 0 : rank - 1];
    const double reported = h.Percentile(p);
    EXPECT_GE(reported, exact * (1.0 - 1e-9)) << "p" << p;
    EXPECT_LE(reported, exact * h.growth() * (1.0 + 1e-9)) << "p" << p;
  }
}

TEST(LogHistogramTest, MergeMatchesSequential) {
  LogHistogram merged_a;
  LogHistogram merged_b;
  LogHistogram sequential;
  for (int i = 1; i <= 500; ++i) {
    const double x = 1e-5 * i * (1 + (i % 13));
    sequential.Add(x);
    (i % 2 == 0 ? merged_a : merged_b).Add(x);
  }
  merged_a.Merge(merged_b);
  EXPECT_EQ(merged_a.count(), sequential.count());
  for (size_t i = 0; i < merged_a.bucket_count(); ++i) {
    EXPECT_EQ(merged_a.bucket(i), sequential.bucket(i)) << "bucket " << i;
  }
  for (double p : {50.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(merged_a.Percentile(p), sequential.Percentile(p));
  }
}

TEST(LogHistogramTest, OverflowAndUnderflowBuckets) {
  LogHistogram::Options options;
  options.lo = 1e-3;
  options.growth = 2.0;
  options.buckets = 10;  // top edge = 1e-3 * 2^10 ~= 1.024
  LogHistogram h(options);
  h.Add(1e-9);   // below lo -> underflow
  h.Add(0.0);    // non-positive -> underflow
  h.Add(1e6);    // beyond the top edge -> overflow
  h.Add(0.5);    // in range
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  // Underflow reports lo (the floor of resolution); overflow clamps to
  // the top finite edge rather than inventing a value.
  EXPECT_DOUBLE_EQ(h.Percentile(1), options.lo);
  EXPECT_DOUBLE_EQ(h.Percentile(100), h.bucket_upper(options.buckets - 1));
}

TEST(LogHistogramTest, CopyIsSnapshot) {
  LogHistogram h;
  h.Add(0.01);
  LogHistogram copy = h;
  h.Add(0.02);
  EXPECT_EQ(copy.count(), 1u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(LogHistogramTest, ConcurrentAddsLoseNothing) {
  LogHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 1; i <= kPerThread; ++i) {
        h.Add(1e-5 * ((t + 1) * i % 1000 + 1));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(h.count(), uint64_t(kThreads) * kPerThread);
  uint64_t total = h.underflow() + h.overflow();
  for (size_t i = 0; i < h.bucket_count(); ++i) {
    total += h.bucket(i);
  }
  EXPECT_EQ(total, h.count());
}

}  // namespace
}  // namespace polyvalue
