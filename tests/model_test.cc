// Unit tests for the §4.1 analytic model, including the paper's Table 1
// values.
#include "src/model/analytic.h"

#include <gtest/gtest.h>

#include <cmath>

namespace polyvalue {
namespace {

ModelParams Typical() {
  ModelParams p;
  p.updates_per_second = 10;
  p.failure_probability = 1e-4;
  p.items = 1e6;
  p.recovery_rate = 1e-3;
  p.overwrite_probability = 0;
  p.dependency_degree = 1;
  return p;
}

TEST(ModelTest, TypicalDatabaseMatchesPaper) {
  // Paper Table 1, first row: P = 1.01.
  const Prediction pred = Predict(Typical());
  EXPECT_TRUE(pred.stable);
  EXPECT_NEAR(pred.steady_state, 1.0101, 0.001);
}

TEST(ModelTest, SteadyStateFormula) {
  // P = UFI / (IR + UY - UD) checked against a hand computation.
  ModelParams p = Typical();
  p.updates_per_second = 10;
  p.failure_probability = 0.01;
  p.items = 10000;
  p.recovery_rate = 0.01;
  p.dependency_degree = 5;
  // UFI = 1000, denom = 100 + 0 - 50 = 50 -> P = 20 (paper Table 2 row 5).
  EXPECT_NEAR(Predict(p).steady_state, 20.0, 1e-9);
}

TEST(ModelTest, OverwriteProbabilityShrinksP) {
  ModelParams p = Typical();
  p.items = 10000;
  p.failure_probability = 0.01;
  p.recovery_rate = 0.01;
  p.dependency_degree = 5;
  const double without_y = Predict(p).steady_state;
  p.overwrite_probability = 1;
  const double with_y = Predict(p).steady_state;
  EXPECT_LT(with_y, without_y);
  // Paper Table 2 rows 5/6: 20 vs 16.7.
  EXPECT_NEAR(with_y, 1000.0 / 60.0, 1e-9);
}

TEST(ModelTest, InstabilityWhenDependencyOutpacesRecovery) {
  ModelParams p = Typical();
  p.recovery_rate = 1e-4;       // IR = 100
  p.dependency_degree = 10;     // UD = 100
  const Prediction pred = Predict(p);
  EXPECT_FALSE(pred.stable);
  EXPECT_TRUE(std::isinf(pred.steady_state));
}

TEST(ModelTest, TransientConvergesToSteadyState) {
  const ModelParams p = Typical();
  const Prediction pred = Predict(p);
  EXPECT_NEAR(TransientP(p, 0.0, 0.0), 0.0, 1e-12);
  // After 10 time constants, within a whisker of steady state.
  const double t10 = 10.0 / pred.decay_rate;
  EXPECT_NEAR(TransientP(p, 0.0, t10), pred.steady_state,
              pred.steady_state * 1e-3);
  // From above, it decays down.
  EXPECT_GT(TransientP(p, 100.0, 0.0), pred.steady_state);
  EXPECT_NEAR(TransientP(p, 100.0, t10), pred.steady_state,
              pred.steady_state * 1e-2);
}

TEST(ModelTest, TransientStabilityClaim) {
  // The paper: "if the number of polyvalues temporarily becomes larger
  // than the predicted number, then the number can be expected to
  // decrease with time."
  const ModelParams p = Typical();
  const Prediction pred = Predict(p);
  const double above = pred.steady_state * 3;
  double previous = above;
  for (double t = 10; t <= 1000; t += 10) {
    const double now = TransientP(p, above, t);
    EXPECT_LT(now, previous);
    previous = now;
  }
}

TEST(ModelTest, UnstableTransientGrowsWithoutBound) {
  ModelParams p = Typical();
  p.recovery_rate = 1e-5;
  p.dependency_degree = 20;
  EXPECT_GT(TransientP(p, 0.0, 1e5), 1e3);
  EXPECT_GT(TransientP(p, 0.0, 2e5), TransientP(p, 0.0, 1e5));
}

TEST(ModelTest, Table1RowsMatchPaperWhereLegible) {
  for (const Table1Row& row : Table1Rows()) {
    const Prediction pred = Predict(row.params);
    if (std::isnan(row.paper_value)) {
      continue;  // scan illegible: computed-only row
    }
    EXPECT_TRUE(pred.stable) << row.params.ToString();
    // The paper prints two decimals; allow 1% plus rounding slack.
    EXPECT_NEAR(pred.steady_state, row.paper_value,
                std::max(0.02, row.paper_value * 0.01))
        << row.params.ToString() << " (" << row.note << ")";
  }
}

TEST(ModelTest, Table1HasElevenRows) {
  EXPECT_EQ(Table1Rows().size(), 11u);
}

TEST(ModelTest, SaturationReported) {
  ModelParams p = Typical();
  p.failure_probability = 0.5;  // absurd failure rate
  p.items = 100;
  const Prediction pred = Predict(p);
  if (pred.stable) {
    EXPECT_GT(pred.saturation, 0.01);
  } else {
    EXPECT_EQ(pred.saturation, 1.0);
  }
}

}  // namespace
}  // namespace polyvalue
