// Unit tests for the wire-format primitives.
#include "src/net/wire.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace polyvalue {
namespace {

TEST(WireTest, VarintRoundTrip) {
  ByteWriter w;
  const std::vector<uint64_t> values = {0,    1,     127,        128,
                                        300,  16383, 16384,      UINT32_MAX,
                                        UINT64_MAX};
  for (uint64_t v : values) {
    w.PutVarint(v);
  }
  ByteReader r(w.buffer());
  for (uint64_t v : values) {
    EXPECT_EQ(r.GetVarint().value(), v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, VarintCompactness) {
  ByteWriter w;
  w.PutVarint(5);
  EXPECT_EQ(w.size(), 1u);
  ByteWriter w2;
  w2.PutVarint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(WireTest, SignedZigZag) {
  ByteWriter w;
  const std::vector<int64_t> values = {0, -1, 1, -64, 63, INT64_MIN,
                                       INT64_MAX};
  for (int64_t v : values) {
    w.PutSigned(v);
  }
  ByteReader r(w.buffer());
  for (int64_t v : values) {
    EXPECT_EQ(r.GetSigned().value(), v);
  }
}

TEST(WireTest, SmallNegativesAreCompact) {
  ByteWriter w;
  w.PutSigned(-1);
  EXPECT_EQ(w.size(), 1u);
}

TEST(WireTest, DoubleBitExact) {
  ByteWriter w;
  const std::vector<double> values = {0.0, -0.0, 1.5, -3.25e300, 1e-300};
  for (double v : values) {
    w.PutDouble(v);
  }
  ByteReader r(w.buffer());
  for (double v : values) {
    const double got = r.GetDouble().value();
    EXPECT_EQ(std::memcmp(&got, &v, sizeof(v)), 0);
  }
}

TEST(WireTest, StringRoundTrip) {
  ByteWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string("\0binary\xff", 8));
  ByteReader r(w.buffer());
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_EQ(r.GetString().value(), "");
  EXPECT_EQ(r.GetString().value(), std::string("\0binary\xff", 8));
}

TEST(WireTest, BoolValidation) {
  ByteWriter w;
  w.PutBool(true);
  w.PutBool(false);
  w.PutU8(7);  // invalid bool
  ByteReader r(w.buffer());
  EXPECT_TRUE(r.GetBool().value());
  EXPECT_FALSE(r.GetBool().value());
  EXPECT_FALSE(r.GetBool().ok());
}

TEST(WireTest, TruncationDetected) {
  ByteWriter w;
  w.PutFixed64(0x1122334455667788ULL);
  const std::string full = w.buffer();
  ByteReader r(full.data(), 4);
  EXPECT_FALSE(r.GetFixed64().ok());
  EXPECT_EQ(r.GetFixed64().status().code(), StatusCode::kDataLoss);
}

TEST(WireTest, StringLengthBeyondBufferDetected) {
  ByteWriter w;
  w.PutVarint(1000);  // claims 1000 bytes follow
  w.PutRaw("abc", 3);
  ByteReader r(w.buffer());
  EXPECT_FALSE(r.GetString().ok());
}

TEST(WireTest, OverlongVarintDetected) {
  std::string bad(11, '\x80');
  ByteReader r(bad);
  EXPECT_FALSE(r.GetVarint().ok());
}

TEST(WireTest, Fixed32RoundTrip) {
  ByteWriter w;
  w.PutFixed32(0xdeadbeef);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.GetFixed32().value(), 0xdeadbeefu);
}

TEST(WireTest, FuzzRandomSequences) {
  // Random mixed-field round trips.
  Rng rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    ByteWriter w;
    std::vector<std::pair<int, uint64_t>> script;
    const int fields = 1 + rng.NextBelow(10);
    for (int i = 0; i < fields; ++i) {
      const int kind = rng.NextBelow(4);
      const uint64_t payload = rng.NextUint64();
      script.push_back({kind, payload});
      switch (kind) {
        case 0:
          w.PutVarint(payload);
          break;
        case 1:
          w.PutSigned(static_cast<int64_t>(payload));
          break;
        case 2:
          w.PutFixed64(payload);
          break;
        case 3:
          w.PutString(std::string(payload % 32, 'x'));
          break;
      }
    }
    ByteReader r(w.buffer());
    for (const auto& [kind, payload] : script) {
      switch (kind) {
        case 0:
          EXPECT_EQ(r.GetVarint().value(), payload);
          break;
        case 1:
          EXPECT_EQ(r.GetSigned().value(), static_cast<int64_t>(payload));
          break;
        case 2:
          EXPECT_EQ(r.GetFixed64().value(), payload);
          break;
        case 3:
          EXPECT_EQ(r.GetString().value().size(), payload % 32);
          break;
      }
    }
    EXPECT_TRUE(r.AtEnd());
  }
}

}  // namespace
}  // namespace polyvalue
