// Scale soak: a larger cluster under sustained mixed traffic and rolling
// failures, checked against the global invariants. Complements the chaos
// suite with size (10 sites, 60 s virtual, several hundred items) rather
// than schedule variety.
#include <gtest/gtest.h>

#include "src/system/cluster.h"

namespace polyvalue {
namespace {

struct ScaleCase {
  InDoubtPolicy policy;
  LockWaitPolicy lock_wait;
};

class ScaleTest : public ::testing::TestWithParam<ScaleCase> {};

TEST_P(ScaleTest, TenSitesRollingFailures) {
  constexpr size_t kSites = 10;
  constexpr int kItemsPerSite = 20;
  constexpr int64_t kInitial = 1000;

  SimCluster::Options options;
  options.site_count = kSites;
  options.seed = 99;
  options.engine.prepare_timeout = 0.3;
  options.engine.ready_timeout = 0.3;
  options.engine.wait_timeout = 0.1;
  options.engine.inquiry_interval = 0.25;
  options.engine.policy = GetParam().policy;
  options.engine.lock_wait = GetParam().lock_wait;
  options.min_delay = 0.002;
  options.max_delay = 0.01;
  SimCluster cluster(options);

  for (size_t s = 0; s < kSites; ++s) {
    for (int a = 0; a < kItemsPerSite; ++a) {
      cluster.Load(s, "k/" + std::to_string(s) + "/" + std::to_string(a),
                   Value::Int(kInitial));
    }
  }
  const int64_t expected_total = kSites * kItemsPerSite * kInitial;

  // Rolling failures: each site except the last goes down once for 2 s,
  // staggered 5 s apart, through the 50 s load window.
  for (size_t s = 0; s + 1 < kSites; ++s) {
    const double down_at = 3.0 + 5.0 * s;
    cluster.sim().At(down_at, [&cluster, s] { cluster.CrashSite(s); });
    cluster.sim().At(down_at + 2.0,
                     [&cluster, s] { cluster.RecoverSite(s); });
  }

  Rng rng(31415);
  int submitted = 0;
  int committed = 0;
  std::function<void()> pump = [&] {
    if (cluster.sim().now() > 50.0) {
      return;
    }
    cluster.sim().After(rng.NextExponential(1.0 / 60.0), [&] {
      pump();
      const size_t coordinator = rng.NextBelow(kSites);
      if (cluster.site(coordinator).crashed()) {
        return;
      }
      const size_t fs = rng.NextBelow(kSites);
      size_t ts = rng.NextBelow(kSites);
      const int fa = rng.NextBelow(kItemsPerSite);
      int ta = rng.NextBelow(kItemsPerSite);
      if (fs == ts && fa == ta) {
        ta = (ta + 1) % kItemsPerSite;
      }
      const ItemKey from =
          "k/" + std::to_string(fs) + "/" + std::to_string(fa);
      const ItemKey to =
          "k/" + std::to_string(ts) + "/" + std::to_string(ta);
      const int64_t amount = rng.NextInt(1, 10);
      TxnSpec spec;
      spec.ReadWrite(from, cluster.site_id(fs));
      spec.ReadWrite(to, cluster.site_id(ts));
      spec.Logic([from, to, amount](const TxnReads& reads) {
        const int64_t have = reads.IntAt(from);
        if (have < amount) {
          return TxnEffect::Abort("insufficient");
        }
        TxnEffect e;
        e.writes[from] = Value::Int(have - amount);
        e.writes[to] = Value::Int(reads.IntAt(to) + amount);
        return e;
      });
      ++submitted;
      cluster.Submit(coordinator, std::move(spec),
                     [&committed](const TxnResult& r) {
                       if (r.committed()) {
                         ++committed;
                       }
                     });
    });
  };
  pump();
  cluster.RunFor(55.0);
  for (size_t s = 0; s < kSites; ++s) {
    if (cluster.site(s).crashed()) {
      cluster.RecoverSite(s);
    }
  }
  cluster.RunFor(30.0);

  ASSERT_GT(submitted, 1000);
  EXPECT_GT(committed, submitted / 2);

  EXPECT_EQ(cluster.TotalUncertainItems(), 0u);
  int64_t total = 0;
  for (size_t s = 0; s < kSites; ++s) {
    cluster.site(s).store().ForEach(
        [&total](const ItemKey&, const PolyValue& v) {
          ASSERT_TRUE(v.is_certain());
          total += v.certain_value().int_value();
        });
    EXPECT_EQ(cluster.site(s).store().locked_count(), 0u) << "site " << s;
  }
  EXPECT_EQ(total, expected_total)
      << "policy=" << InDoubtPolicyName(GetParam().policy);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ScaleTest,
    ::testing::Values(
        ScaleCase{InDoubtPolicy::kPolyvalue, LockWaitPolicy::kNoWait},
        ScaleCase{InDoubtPolicy::kPolyvalue, LockWaitPolicy::kWaitDie},
        ScaleCase{InDoubtPolicy::kBlock, LockWaitPolicy::kNoWait}));

}  // namespace
}  // namespace polyvalue
