// Scale soak: a larger cluster under sustained mixed traffic and rolling
// failures, checked against the global invariants. Complements the chaos
// suite with size (10 sites, 60 s virtual, several hundred items) rather
// than schedule variety. The virtual-client ramp at the bottom scales a
// different axis: the CLIENT POPULATION, 1k -> 1M over the workload
// driver, proving memory stays O(in-flight).
#include <gtest/gtest.h>

#include "src/system/cluster.h"
#include "src/workload/driver.h"

namespace polyvalue {
namespace {

struct ScaleCase {
  InDoubtPolicy policy;
  LockWaitPolicy lock_wait;
};

class ScaleTest : public ::testing::TestWithParam<ScaleCase> {};

TEST_P(ScaleTest, TenSitesRollingFailures) {
  constexpr size_t kSites = 10;
  constexpr int kItemsPerSite = 20;
  constexpr int64_t kInitial = 1000;

  SimCluster::Options options;
  options.site_count = kSites;
  options.seed = 99;
  options.engine.prepare_timeout = 0.3;
  options.engine.ready_timeout = 0.3;
  options.engine.wait_timeout = 0.1;
  options.engine.inquiry_interval = 0.25;
  options.engine.policy = GetParam().policy;
  options.engine.lock_wait = GetParam().lock_wait;
  options.min_delay = 0.002;
  options.max_delay = 0.01;
  SimCluster cluster(options);

  for (size_t s = 0; s < kSites; ++s) {
    for (int a = 0; a < kItemsPerSite; ++a) {
      cluster.Load(s, "k/" + std::to_string(s) + "/" + std::to_string(a),
                   Value::Int(kInitial));
    }
  }
  const int64_t expected_total = kSites * kItemsPerSite * kInitial;

  // Rolling failures: each site except the last goes down once for 2 s,
  // staggered 5 s apart, through the 50 s load window.
  for (size_t s = 0; s + 1 < kSites; ++s) {
    const double down_at = 3.0 + 5.0 * s;
    cluster.sim().At(down_at, [&cluster, s] { cluster.CrashSite(s); });
    cluster.sim().At(down_at + 2.0,
                     [&cluster, s] { cluster.RecoverSite(s); });
  }

  Rng rng(31415);
  int submitted = 0;
  int committed = 0;
  std::function<void()> pump = [&] {
    if (cluster.sim().now() > 50.0) {
      return;
    }
    cluster.sim().After(rng.NextExponential(1.0 / 60.0), [&] {
      pump();
      const size_t coordinator = rng.NextBelow(kSites);
      if (cluster.site(coordinator).crashed()) {
        return;
      }
      const size_t fs = rng.NextBelow(kSites);
      size_t ts = rng.NextBelow(kSites);
      const int fa = rng.NextBelow(kItemsPerSite);
      int ta = rng.NextBelow(kItemsPerSite);
      if (fs == ts && fa == ta) {
        ta = (ta + 1) % kItemsPerSite;
      }
      const ItemKey from =
          "k/" + std::to_string(fs) + "/" + std::to_string(fa);
      const ItemKey to =
          "k/" + std::to_string(ts) + "/" + std::to_string(ta);
      const int64_t amount = rng.NextInt(1, 10);
      TxnSpec spec;
      spec.ReadWrite(from, cluster.site_id(fs));
      spec.ReadWrite(to, cluster.site_id(ts));
      spec.Logic([from, to, amount](const TxnReads& reads) {
        const int64_t have = reads.IntAt(from);
        if (have < amount) {
          return TxnEffect::Abort("insufficient");
        }
        TxnEffect e;
        e.writes[from] = Value::Int(have - amount);
        e.writes[to] = Value::Int(reads.IntAt(to) + amount);
        return e;
      });
      ++submitted;
      cluster.Submit(coordinator, std::move(spec),
                     [&committed](const TxnResult& r) {
                       if (r.committed()) {
                         ++committed;
                       }
                     });
    });
  };
  pump();
  cluster.RunFor(55.0);
  for (size_t s = 0; s < kSites; ++s) {
    if (cluster.site(s).crashed()) {
      cluster.RecoverSite(s);
    }
  }
  cluster.RunFor(30.0);

  ASSERT_GT(submitted, 1000);
  EXPECT_GT(committed, submitted / 2);

  EXPECT_EQ(cluster.TotalUncertainItems(), 0u);
  int64_t total = 0;
  for (size_t s = 0; s < kSites; ++s) {
    cluster.site(s).store().ForEach(
        [&total](const ItemKey&, const PolyValue& v) {
          ASSERT_TRUE(v.is_certain());
          total += v.certain_value().int_value();
        });
    EXPECT_EQ(cluster.site(s).store().locked_count(), 0u) << "site " << s;
  }
  EXPECT_EQ(total, expected_total)
      << "policy=" << InDoubtPolicyName(GetParam().policy);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, ScaleTest,
    ::testing::Values(
        ScaleCase{InDoubtPolicy::kPolyvalue, LockWaitPolicy::kNoWait},
        ScaleCase{InDoubtPolicy::kPolyvalue, LockWaitPolicy::kWaitDie},
        ScaleCase{InDoubtPolicy::kBlock, LockWaitPolicy::kNoWait}));

// Cluster-wide metrics are exactly the field-by-field sum of per-site
// metrics, both through TotalMetrics() and through the MetricsRegistry
// export — on a larger cluster than the soak above uses.
TEST(MetricsAggregationTest, ClusterMetricsEqualSumOfSites) {
  constexpr size_t kSites = 16;
  constexpr int kItemsPerSite = 8;

  SimCluster::Options options;
  options.site_count = kSites;
  options.seed = 1234;
  options.engine.prepare_timeout = 0.3;
  options.engine.ready_timeout = 0.3;
  options.engine.wait_timeout = 0.1;
  options.engine.inquiry_interval = 0.25;
  SimCluster cluster(options);

  for (size_t s = 0; s < kSites; ++s) {
    for (int a = 0; a < kItemsPerSite; ++a) {
      cluster.Load(s, "k/" + std::to_string(s) + "/" + std::to_string(a),
                   Value::Int(100));
    }
  }

  // Mixed traffic touching every site, with one mid-run outage and a
  // lossy network so the failure-path counters (timeouts, installs,
  // inquiries) are non-zero.
  cluster.sim().At(2.0, [&cluster] { cluster.CrashSite(3); });
  cluster.sim().At(4.5, [&cluster] { cluster.RecoverSite(3); });
  cluster.faults().SetDropProbability(0.05);
  cluster.sim().At(8.5, [&cluster] {
    cluster.faults().SetDropProbability(0.0);
    cluster.faults().HealAll();
  });

  Rng rng(4242);
  int submitted = 0;
  std::function<void()> pump = [&] {
    if (cluster.sim().now() > 8.0) {
      return;
    }
    cluster.sim().After(rng.NextExponential(1.0 / 50.0), [&] {
      pump();
      const size_t coordinator = rng.NextBelow(kSites);
      if (cluster.site(coordinator).crashed()) {
        return;
      }
      const size_t fs = rng.NextBelow(kSites);
      size_t ts = rng.NextBelow(kSites);
      const int fa = rng.NextBelow(kItemsPerSite);
      int ta = rng.NextBelow(kItemsPerSite);
      if (fs == ts && fa == ta) {
        ta = (ta + 1) % kItemsPerSite;
      }
      const ItemKey from =
          "k/" + std::to_string(fs) + "/" + std::to_string(fa);
      const ItemKey to = "k/" + std::to_string(ts) + "/" + std::to_string(ta);
      TxnSpec spec;
      spec.ReadWrite(from, cluster.site_id(fs));
      spec.ReadWrite(to, cluster.site_id(ts));
      spec.Logic([from, to](const TxnReads& reads) {
        TxnEffect e;
        e.writes[from] = Value::Int(reads.IntAt(from) - 1);
        e.writes[to] = Value::Int(reads.IntAt(to) + 1);
        return e;
      });
      ++submitted;
      cluster.Submit(coordinator, std::move(spec), [](const TxnResult&) {});
    });
  };
  pump();
  cluster.RunFor(10.0);
  cluster.RunFor(20.0);  // quiesce
  ASSERT_GT(submitted, 100);

  // Field-by-field: TotalMetrics() == sum of every site's own metrics.
  EngineMetrics sum;
  for (size_t s = 0; s < kSites; ++s) {
    sum.Accumulate(cluster.site(s).GetStats().engine);
  }
  const EngineMetrics total = cluster.TotalMetrics();
  EXPECT_EQ(total.txns_submitted, sum.txns_submitted);
  EXPECT_EQ(total.txns_committed, sum.txns_committed);
  EXPECT_EQ(total.txns_aborted, sum.txns_aborted);
  EXPECT_EQ(total.txns_read_only, sum.txns_read_only);
  EXPECT_EQ(total.polytxns, sum.polytxns);
  EXPECT_EQ(total.alternatives_executed, sum.alternatives_executed);
  EXPECT_EQ(total.uncertain_outputs, sum.uncertain_outputs);
  EXPECT_EQ(total.polyvalue_installs, sum.polyvalue_installs);
  EXPECT_EQ(total.polyvalues_resolved, sum.polyvalues_resolved);
  EXPECT_EQ(total.wait_timeouts, sum.wait_timeouts);
  EXPECT_EQ(total.blocked_holds, sum.blocked_holds);
  EXPECT_EQ(total.arbitrary_commits, sum.arbitrary_commits);
  EXPECT_EQ(total.outcome_inquiries, sum.outcome_inquiries);
  EXPECT_EQ(total.outcome_notifies, sum.outcome_notifies);
  EXPECT_EQ(total.local_fast_path, sum.local_fast_path);
  EXPECT_EQ(total.lock_waits, sum.lock_waits);
  EXPECT_EQ(total.lock_wait_resumes, sum.lock_wait_resumes);
  EXPECT_EQ(total.compute_phase_count, sum.compute_phase_count);
  EXPECT_EQ(total.wait_phase_count, sum.wait_phase_count);
  EXPECT_DOUBLE_EQ(total.compute_phase_seconds, sum.compute_phase_seconds);
  EXPECT_DOUBLE_EQ(total.wait_phase_seconds, sum.wait_phase_seconds);
  EXPECT_GT(total.txns_submitted, 0u);
  EXPECT_GT(total.wait_timeouts, 0u);  // the outage produced in-doubt windows

  // Registry export: every "cluster.<field>" counter equals the sum of
  // the "site<i>.<field>" counters it aggregates.
  MetricsRegistry registry;
  cluster.ExportMetrics(&registry);
  const char* kFields[] = {
      "txns_submitted",     "txns_committed",    "txns_aborted",
      "txns_read_only",     "polytxns",          "polyvalue_installs",
      "polyvalues_resolved", "wait_timeouts",    "outcome_inquiries",
      "outcome_notifies",   "local_fast_path",   "uncertain_items"};
  for (const char* field : kFields) {
    uint64_t site_sum = 0;
    for (size_t s = 0; s < kSites; ++s) {
      site_sum +=
          registry.counter("site" + std::to_string(s) + "." + field);
    }
    EXPECT_EQ(registry.counter(std::string("cluster.") + field), site_sum)
        << field;
  }
  EXPECT_EQ(registry.counter("cluster.packets_sent"),
            cluster.transport().packets_sent());
  EXPECT_TRUE(registry.Has("cluster.sim_time_seconds"));
}

// Virtual-client ramp: the workload driver multiplexes ever larger
// client populations (1k -> 1M) over the same front door. Clients are
// an id space, not objects — the driver may only track a client while
// it has a request in flight, so the tracked-client peak must stay
// bounded by the admission concurrency cap at EVERY population size,
// while the schedule stays deterministic per seed.
class VirtualClientRampTest
    : public ::testing::TestWithParam<uint64_t> {};

ClusterWorkloadParams RampParams(uint64_t clients) {
  ClusterWorkloadParams params;
  params.sites = 4;
  params.keys = 64;
  params.virtual_clients = clients;
  params.key_dist.kind = KeyDistKind::kZipfian;
  params.arrival.rate = 120.0;
  params.mix = WriteHeavyMix();
  params.duration = 10.0;
  params.settle_time = 4.0;
  params.deadline = 0.5;
  params.svc.admission.rate_limit = 150.0;
  params.svc.admission.max_inflight = 32;
  params.seed = 0xc11e57;
  return params;
}

TEST_P(VirtualClientRampTest, MemoryTracksInflightNotPopulation) {
  const uint64_t clients = GetParam();
  const ClusterWorkloadReport report =
      ClusterWorkload(RampParams(clients)).Run();
  SCOPED_TRACE(report.Summary());

  ASSERT_GT(report.arrivals, 500u);
  EXPECT_GT(report.committed, 0u);
  EXPECT_TRUE(report.ExactlyOnce());

  // The O(in-flight) bound: even with a million-client population the
  // driver holds at most cap(+1 mid-admission) client records, and the
  // front door's own concurrency honours its cap.
  EXPECT_LE(report.peak_tracked_clients, 33u) << clients << " clients";
  EXPECT_LE(report.peak_inflight, 32u);
  EXPECT_GT(report.peak_tracked_clients, 1u);

  // Identical seed, identical population => byte-identical schedule and
  // identical outcome counters (full determinism at every scale).
  const ClusterWorkloadReport again =
      ClusterWorkload(RampParams(clients)).Run();
  EXPECT_EQ(report.schedule_hash, again.schedule_hash);
  EXPECT_EQ(report.arrivals, again.arrivals);
  EXPECT_EQ(report.committed, again.committed);
  EXPECT_EQ(report.aborted, again.aborted);
  EXPECT_EQ(report.shed, again.shed);
}

// Different populations under the same seed must produce different
// schedules (the client id feeds coordinator choice and jitter).
TEST(VirtualClientRampTest, PopulationChangesTheSchedule) {
  const ClusterWorkloadReport small =
      ClusterWorkload(RampParams(1000)).Run();
  const ClusterWorkloadReport large =
      ClusterWorkload(RampParams(1u << 20)).Run();
  EXPECT_NE(small.schedule_hash, large.schedule_hash);
}

INSTANTIATE_TEST_SUITE_P(Ramp, VirtualClientRampTest,
                         ::testing::Values(1000u, 10000u, 100000u,
                                           1u << 20),
                         [](const ::testing::TestParamInfo<uint64_t>& i) {
                           return "clients_" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace polyvalue
