// Unit tests for strong identifiers and their formatting.
#include "src/common/ids.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace polyvalue {
namespace {

TEST(IdsTest, DefaultIsInvalid) {
  TxnId txn;
  SiteId site;
  EXPECT_FALSE(txn.valid());
  EXPECT_FALSE(site.valid());
  EXPECT_TRUE(TxnId(0).valid());
}

TEST(IdsTest, EqualityAndOrdering) {
  EXPECT_EQ(TxnId(5), TxnId(5));
  EXPECT_NE(TxnId(5), TxnId(6));
  EXPECT_LT(TxnId(5), TxnId(6));
  EXPECT_LE(TxnId(5), TxnId(5));
  EXPECT_GT(SiteId(9), SiteId(2));
  EXPECT_GE(SiteId(9), SiteId(9));
}

TEST(IdsTest, DistinctTypesDoNotCompare) {
  // Compile-time property: TxnId and SiteId are different types. The
  // static_assert documents it; runtime check keeps the test meaningful.
  static_assert(!std::is_same_v<TxnId, SiteId>);
  SUCCEED();
}

TEST(IdsTest, HashWorksInUnorderedContainers) {
  std::unordered_set<TxnId> txns;
  txns.insert(TxnId(1));
  txns.insert(TxnId(2));
  txns.insert(TxnId(1));
  EXPECT_EQ(txns.size(), 2u);
  std::unordered_set<SiteId> sites;
  sites.insert(SiteId(3));
  EXPECT_EQ(sites.count(SiteId(3)), 1u);
}

TEST(IdsTest, PlainTxnIdFormatting) {
  std::ostringstream oss;
  oss << TxnId(42);
  EXPECT_EQ(oss.str(), "T42");
  EXPECT_EQ(ToString(TxnId(42)), "T42");
}

TEST(IdsTest, CoordinatorEncodedTxnIdFormatting) {
  const TxnId txn((3ULL << kTxnSiteShift) | 17);
  EXPECT_EQ(ToString(txn), "T3.17");
  std::ostringstream oss;
  oss << txn;
  EXPECT_EQ(oss.str(), "T3.17");
}

TEST(IdsTest, InvalidIdFormatting) {
  EXPECT_EQ(ToString(TxnId()), "T?");
  EXPECT_EQ(ToString(SiteId()), "S?");
}

TEST(IdsTest, SiteIdFormatting) {
  EXPECT_EQ(ToString(SiteId(7)), "S7");
  std::ostringstream oss;
  oss << SiteId(7);
  EXPECT_EQ(oss.str(), "S7");
}

}  // namespace
}  // namespace polyvalue
