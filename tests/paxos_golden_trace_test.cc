// Golden traces for the Paxos Commit leg: the protocol's choreography,
// byte-stable under a fixed seed and fixed network delay, for the three
// shapes that matter — a nominal commit, a leader crash bridged by
// standby failover, and a compute-phase abort. Any reordering of the
// Gray-Lamport steps diffs against the sequences below.
//
// Regenerate after an intentional protocol change with
//   POLYV_REGEN_GOLDEN=1 ./paxos_golden_trace_test
// and paste the printed lines.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/obs/audit.h"
#include "src/system/cluster.h"

namespace polyvalue {
namespace {

// "type site" (plus key/peer where present) for every engine-level
// event; transport deliveries are elided — they carry no protocol
// decision, only latency.
std::vector<std::string> EngineEventLines(
    const std::vector<TraceEvent>& events) {
  std::vector<std::string> lines;
  for (const TraceEvent& e : events) {
    if (e.type == TraceEventType::kMsgDelivered ||
        e.type == TraceEventType::kMsgDropped) {
      continue;
    }
    std::string line =
        std::string(TraceEventTypeName(e.type)) + " " + ToString(e.site);
    if (!e.key.empty()) {
      line += " " + e.key;
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

void MaybePrint(const std::vector<std::string>& lines) {
  if (std::getenv("POLYV_REGEN_GOLDEN") == nullptr) {
    return;
  }
  for (const std::string& line : lines) {
    std::cout << "      \"" << line << "\",\n";
  }
}

SimCluster::Options PaxosOptions(size_t sites) {
  SimCluster::Options options;
  options.site_count = sites;
  options.seed = 7;
  options.min_delay = 0.001;
  options.max_delay = 0.001;
  options.engine.leg = ProtocolLeg::kPaxosCommit;
  options.engine.paxos_failover_timeout = 0.05;
  return options;
}

TxnSpec TransferSpec(SimCluster& cluster) {
  TxnSpec spec;
  spec.ReadWrite("acct/savings", cluster.site_id(0));
  spec.ReadWrite("acct/checking", cluster.site_id(1));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["acct/savings"] = Value::Int(reads.IntAt("acct/savings") - 10);
    e.writes["acct/checking"] =
        Value::Int(reads.IntAt("acct/checking") + 10);
    e.output = Value::Bool(true);
    return e;
  });
  return spec;
}

TEST(PaxosGoldenTraceTest, NominalCommit) {
  VectorTraceSink trace;
  SimCluster::Options options = PaxosOptions(3);
  options.trace = &trace;
  SimCluster cluster(options);

  cluster.Load(0, "acct/savings", Value::Int(100));
  cluster.Load(1, "acct/checking", Value::Int(50));

  const std::optional<TxnResult> result =
      cluster.SubmitAndRun(0, TransferSpec(cluster));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  cluster.RunAll();  // drain the decision broadcast

  EXPECT_EQ(
      cluster.site(0).Peek("acct/savings")->certain_value().int_value(), 90);
  EXPECT_EQ(
      cluster.site(1).Peek("acct/checking")->certain_value().int_value(),
      60);

  // Every site must know the outcome (no in-doubt residue anywhere).
  for (size_t i = 0; i < cluster.size(); ++i) {
    SCOPED_TRACE(i);
    const std::optional<bool> outcome =
        cluster.site(i).DecidedOutcome(result->id);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_TRUE(*outcome);
  }

  const std::vector<std::string> actual = EngineEventLines(trace.Snapshot());
  MaybePrint(actual);
  const std::vector<std::string> kGolden = {
      "submit S1",
      "prepare_recv S1",
      "prepare_replied S1",
      "prepare_recv S2",
      "prepare_replied S2",
      "vote_collected S1",
      "vote_collected S1",
      "write_shipped S1",
      "paxos_vote S1",
      "paxos_vote S2",
      "paxos_accept S1",
      "paxos_accept S2",
      "paxos_accept S3",
      "paxos_accept S1",
      "paxos_accept S2",
      "paxos_accept S3",
      "vote_collected S1",
      "paxos_chosen S1",
      "msg_ignored S1",
      "vote_collected S1",
      "paxos_chosen S1",
      "paxos_decide S1",
      "decision_commit S1",
      "msg_ignored S1",
      "outcome_learned S1",
      "outcome_learned S2",
      "outcome_learned S3",
  };
  EXPECT_EQ(actual, kGolden);

  const Status audit = TraceAuditor::Check(trace.Snapshot());
  EXPECT_TRUE(audit.ok()) << audit.message();
}

TEST(PaxosGoldenTraceTest, LeaderCrashFailoverFinishesCommit) {
  VectorTraceSink trace;
  SimCluster::Options options = PaxosOptions(3);
  options.trace = &trace;
  SimCluster cluster(options);

  cluster.Load(0, "acct/savings", Value::Int(100));
  cluster.Load(1, "acct/checking", Value::Int(50));

  std::optional<TxnResult> result;
  const TxnId txn = cluster.Submit(0, TransferSpec(cluster),
                                   [&result](const TxnResult& r) {
                                     result = r;
                                   });
  // Both RMs have broadcast Phase2a(ballot 0, Prepared) by t=0.004;
  // kill the leader before the Phase2b echoes reach it at t=0.005. The
  // votes are durable at a majority of acceptors, so the standby can —
  // and must — finish the commit.
  cluster.sim().At(0.0045, [&cluster] { cluster.CrashSite(0); });
  cluster.RunFor(2.0);

  // The client channel died with the leader...
  EXPECT_FALSE(result.has_value());
  // ...but the decision completed: both surviving sites committed.
  for (size_t i : {size_t{1}, size_t{2}}) {
    SCOPED_TRACE(i);
    const std::optional<bool> outcome = cluster.site(i).DecidedOutcome(txn);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_TRUE(*outcome);
  }
  EXPECT_EQ(
      cluster.site(1).Peek("acct/checking")->certain_value().int_value(),
      60);

  // The crashed leader recovers, re-votes, and learns the outcome from
  // the standby's durable decision.
  cluster.RecoverSite(0);
  cluster.RunFor(2.0);
  const std::optional<bool> recovered = cluster.site(0).DecidedOutcome(txn);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(*recovered);
  EXPECT_EQ(
      cluster.site(0).Peek("acct/savings")->certain_value().int_value(), 90);

  const std::vector<std::string> actual = EngineEventLines(trace.Snapshot());
  MaybePrint(actual);
  const std::vector<std::string> kGolden = {
      "submit S1",
      "prepare_recv S1",
      "prepare_replied S1",
      "prepare_recv S2",
      "prepare_replied S2",
      "vote_collected S1",
      "vote_collected S1",
      "write_shipped S1",
      "paxos_vote S1",
      "paxos_vote S2",
      "paxos_accept S1",
      "paxos_accept S2",
      "paxos_accept S3",
      "paxos_accept S1",
      "paxos_accept S2",
      "paxos_accept S3",
      "crash S1",
      "paxos_failover S2",
      "paxos_recovery_ballot S2",
      "paxos_promise S2",
      "paxos_promise S3",
      "vote_collected S2",
      "vote_collected S2",
      "paxos_accept S2",
      "paxos_accept S3",
      "paxos_accept S2",
      "paxos_accept S3",
      "vote_collected S2",
      "paxos_chosen S2",
      "vote_collected S2",
      "paxos_chosen S2",
      "paxos_decide S2",
      "outcome_learned S2",
      "outcome_learned S3",
      "recover S1",
      "paxos_vote S1",
      "paxos_accept S1",
      "msg_ignored S2",
      "msg_ignored S3",
      "msg_ignored S1",
      "paxos_failover S1",
      "outcome_replied S2",
      "outcome_learned S1",
  };
  EXPECT_EQ(actual, kGolden);

  const Status audit = TraceAuditor::Check(trace.Snapshot());
  EXPECT_TRUE(audit.ok()) << audit.message();
}

TEST(PaxosGoldenTraceTest, ComputePhaseAbort) {
  VectorTraceSink trace;
  SimCluster::Options options = PaxosOptions(3);
  options.trace = &trace;
  SimCluster cluster(options);

  cluster.Load(0, "acct/savings", Value::Int(100));
  cluster.Load(1, "acct/checking", Value::Int(50));

  TxnSpec spec = TransferSpec(cluster);
  spec.Logic([](const TxnReads& reads) {
    (void)reads;
    TxnEffect e;
    e.abort = true;
    e.abort_reason = "insufficient funds";
    return e;
  });

  const std::optional<TxnResult> result =
      cluster.SubmitAndRun(0, std::move(spec));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->committed());
  EXPECT_EQ(result->abort_reason, "insufficient funds");
  cluster.RunAll();

  // No vote was ever cast: the unilateral abort is safe and nothing is
  // left locked or prepared anywhere.
  EXPECT_EQ(
      cluster.site(0).Peek("acct/savings")->certain_value().int_value(),
      100);
  for (size_t i = 0; i < cluster.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(cluster.site(i).store().locked_count(), 0u);
  }

  const std::vector<std::string> actual = EngineEventLines(trace.Snapshot());
  MaybePrint(actual);
  const std::vector<std::string> kGolden = {
      "submit S1",
      "prepare_recv S1",
      "prepare_replied S1",
      "prepare_recv S2",
      "prepare_replied S2",
      "vote_collected S1",
      "vote_collected S1",
      "decision_abort S1",
      "outcome_learned S1",
      "outcome_learned S2",
  };
  EXPECT_EQ(actual, kGolden);

  const Status audit = TraceAuditor::Check(trace.Snapshot());
  EXPECT_TRUE(audit.ok()) << audit.message();
}

}  // namespace
}  // namespace polyvalue
