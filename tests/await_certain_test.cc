// Tests for §3.4's withhold-until-resolved option: SubscribeOutcome and
// Site::AwaitCertain.
#include <gtest/gtest.h>

#include "src/system/cluster.h"

namespace polyvalue {
namespace {

EngineConfig FastConfig() {
  EngineConfig config;
  config.prepare_timeout = 0.25;
  config.ready_timeout = 0.25;
  config.wait_timeout = 0.05;
  config.inquiry_interval = 0.2;
  return config;
}

SimCluster::Options ClusterOptions(size_t sites) {
  SimCluster::Options options;
  options.site_count = sites;
  options.engine = FastConfig();
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  return options;
}

TxnSpec Bump(const ItemKey& key, SiteId site, int64_t delta) {
  TxnSpec spec;
  spec.ReadWrite(key, site);
  spec.Logic([key, delta](const TxnReads& reads) {
    TxnEffect e;
    e.writes[key] = Value::Int(reads.IntAt(key) + delta);
    return e;
  });
  return spec;
}

// Strands a delta update to "x" at site 1; returns the stranded txn.
TxnId Strand(SimCluster* cluster, int64_t delta) {
  const TxnId txn = cluster->Submit(
      0, Bump("x", cluster->site_id(1), delta), [](const TxnResult&) {});
  cluster->sim().At(cluster->sim().now() + 0.035,
                    [cluster] { cluster->CrashSite(0); });
  cluster->RunFor(0.3);
  return txn;
}

TEST(SubscribeOutcomeTest, KnownOutcomeFiresImmediately) {
  SimCluster cluster(ClusterOptions(2));
  cluster.Load(1, "x", Value::Int(0));
  const auto result = cluster.SubmitAndRun(0, Bump("x", SiteId(2), 1));
  ASSERT_TRUE(result.has_value() && result->committed());
  cluster.RunFor(0.5);
  std::optional<bool> heard;
  cluster.site(0).engine().SubscribeOutcome(
      result->id, [&heard](bool committed) { heard = committed; });
  EXPECT_EQ(heard, true);  // coordinator knows: immediate
}

TEST(SubscribeOutcomeTest, FiresWhenOutcomeArrives) {
  SimCluster cluster(ClusterOptions(3));
  cluster.Load(1, "x", Value::Int(100));
  const TxnId txn = Strand(&cluster, -30);
  std::optional<bool> heard;
  // Subscribe at site 2, a bystander that holds no dependent items.
  cluster.site(2).engine().SubscribeOutcome(
      txn, [&heard](bool committed) { heard = committed; });
  cluster.RunFor(1.0);
  EXPECT_FALSE(heard.has_value());  // coordinator still down
  cluster.RecoverSite(0);
  cluster.RunFor(2.0);
  ASSERT_TRUE(heard.has_value());
  EXPECT_FALSE(*heard);  // presumed abort
}

TEST(AwaitCertainTest, CertainValueDeliversSynchronously) {
  SimCluster cluster(ClusterOptions(2));
  std::optional<Value> delivered;
  cluster.site(0).AwaitCertain(
      PolyValue::Certain(Value::Int(9)),
      [&delivered](const Value& v) { delivered = v; });
  EXPECT_EQ(delivered, Value::Int(9));
}

TEST(AwaitCertainTest, UncertainValueDeliversAfterResolution) {
  SimCluster cluster(ClusterOptions(3));
  cluster.Load(1, "x", Value::Int(100));
  Strand(&cluster, -30);
  const PolyValue x = cluster.site(1).Peek("x").value();
  ASSERT_FALSE(x.is_certain());

  std::optional<Value> delivered;
  cluster.site(1).AwaitCertain(
      x, [&delivered](const Value& v) { delivered = v; });
  cluster.RunFor(1.0);
  EXPECT_FALSE(delivered.has_value());  // withheld, §3.4
  cluster.RecoverSite(0);
  cluster.RunFor(2.0);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(*delivered, Value::Int(100));  // aborted: old value is truth
}

TEST(AwaitCertainTest, MultiDependencyValueWaitsForAll) {
  SimCluster cluster(ClusterOptions(4));
  cluster.Load(1, "x", Value::Int(100));
  // Two stranded updates from different coordinators.
  Strand(&cluster, -30);
  const TxnId txn2 = cluster.Submit(
      3, Bump("x", cluster.site_id(1), -50), [](const TxnResult&) {});
  (void)txn2;
  cluster.sim().At(cluster.sim().now() + 0.035,
                   [&cluster] { cluster.CrashSite(3); });
  cluster.RunFor(0.3);

  const PolyValue x = cluster.site(1).Peek("x").value();
  ASSERT_EQ(x.Dependencies().size(), 2u);

  std::optional<Value> delivered;
  cluster.site(1).AwaitCertain(
      x, [&delivered](const Value& v) { delivered = v; });
  cluster.RecoverSite(0);
  cluster.RunFor(2.0);
  EXPECT_FALSE(delivered.has_value());  // one dependency still unknown
  cluster.RecoverSite(3);
  cluster.RunFor(2.0);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(*delivered, Value::Int(100));  // both presumed-aborted
}

TEST(AwaitCertainTest, ResolvedDependencyDeliversWithoutWaiting) {
  SimCluster cluster(ClusterOptions(3));
  cluster.Load(1, "x", Value::Int(100));
  Strand(&cluster, -30);
  const PolyValue x = cluster.site(1).Peek("x").value();
  cluster.RecoverSite(0);
  cluster.RunFor(2.0);  // resolves the item AND caches the outcome
  // Await on the stale polyvalue snapshot: outcome already known.
  std::optional<Value> delivered;
  cluster.site(1).AwaitCertain(
      x, [&delivered](const Value& v) { delivered = v; });
  cluster.RunFor(0.1);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(*delivered, Value::Int(100));
}

}  // namespace
}  // namespace polyvalue
