// Round-trip and robustness tests for the protocol message codec.
#include "src/txn/messages.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace polyvalue {
namespace {

const TxnId kTxn((5ULL << 40) | 17);  // coordinator-encoding id
const SiteId kS1(1);

Message RoundTrip(const Message& m) {
  const Result<Message> decoded = Message::Decode(m.Encode());
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  return decoded.value();
}

TEST(MessagesTest, PrepareRoundTrip) {
  const Message m = RoundTrip(
      MakePrepare(kTxn, kS1, {"read1", "read2"}, {"write1"}));
  EXPECT_EQ(m.type, MsgType::kPrepare);
  EXPECT_EQ(m.txn, kTxn);
  EXPECT_EQ(m.coordinator, kS1);
  EXPECT_EQ(m.read_keys, (std::vector<ItemKey>{"read1", "read2"}));
  EXPECT_EQ(m.write_keys, std::vector<ItemKey>{"write1"});
}

TEST(MessagesTest, PrepareReplyCarriesPolyValues) {
  const PolyValue pv = PolyValue::InstallUncertain(
      TxnId(3), PolyValue::Certain(Value::Int(1)),
      PolyValue::Certain(Value::Int(2)));
  const Message m =
      RoundTrip(MakePrepareReply(kTxn, {{"k", pv}, {"j", PolyValue()}}));
  EXPECT_EQ(m.type, MsgType::kPrepareReply);
  EXPECT_TRUE(m.ok);
  EXPECT_EQ(m.values.at("k"), pv);
  EXPECT_EQ(m.values.at("j"), PolyValue());
}

TEST(MessagesTest, PrepareRefusalCarriesError) {
  const Message m = RoundTrip(MakePrepareRefusal(kTxn, "lock conflict"));
  EXPECT_FALSE(m.ok);
  EXPECT_EQ(m.error, "lock conflict");
}

TEST(MessagesTest, WriteReqRoundTrip) {
  const Message m = RoundTrip(
      MakeWriteReq(kTxn, {{"a", PolyValue::Certain(Value::Int(7))}}));
  EXPECT_EQ(m.type, MsgType::kWriteReq);
  EXPECT_EQ(m.writes.at("a").certain_value(), Value::Int(7));
}

TEST(MessagesTest, BareMessages) {
  EXPECT_EQ(RoundTrip(MakeReady(kTxn)).type, MsgType::kReady);
  EXPECT_EQ(RoundTrip(MakeComplete(kTxn)).type, MsgType::kComplete);
  EXPECT_EQ(RoundTrip(MakeAbort(kTxn)).type, MsgType::kAbort);
  EXPECT_EQ(RoundTrip(MakeOutcomeRequest(kTxn)).type,
            MsgType::kOutcomeRequest);
}

TEST(MessagesTest, OutcomeReplyStates) {
  Message m = RoundTrip(MakeOutcomeReply(kTxn, true, true));
  EXPECT_TRUE(m.known);
  EXPECT_TRUE(m.committed);
  m = RoundTrip(MakeOutcomeReply(kTxn, false, false));
  EXPECT_FALSE(m.known);
  m = RoundTrip(MakeOutcomeNotify(kTxn, false));
  EXPECT_EQ(m.type, MsgType::kOutcomeNotify);
  EXPECT_FALSE(m.committed);
}

TEST(MessagesTest, WrongProtocolVersionRejected) {
  std::string bytes = MakeReady(kTxn).Encode();
  bytes[0] = static_cast<char>(kProtocolVersion + 1);
  const Result<Message> decoded = Message::Decode(bytes);
  EXPECT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("protocol version"),
            std::string::npos);
}

TEST(MessagesTest, VersionIsFirstByte) {
  EXPECT_EQ(static_cast<uint8_t>(MakeReady(kTxn).Encode()[0]),
            kProtocolVersion);
}

TEST(MessagesTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Message::Decode("").ok());
  EXPECT_FALSE(Message::Decode("\xff\xff\xff").ok());
  EXPECT_FALSE(Message::Decode(std::string(1, '\0')).ok());
}

TEST(MessagesTest, DecodeRejectsTrailingBytes) {
  std::string bytes = MakeReady(kTxn).Encode();
  bytes += "extra";
  EXPECT_FALSE(Message::Decode(bytes).ok());
}

TEST(MessagesTest, TruncatedPrefixesNeverCrash) {
  const std::string full =
      MakePrepareReply(kTxn, {{"key", PolyValue::Certain(Value::Str("v"))}})
          .Encode();
  for (size_t len = 0; len < full.size(); ++len) {
    (void)Message::Decode(full.substr(0, len));
  }
}

TEST(MessagesTest, RandomBytesNeverCrash) {
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    std::string noise;
    const size_t len = rng.NextBelow(48);
    for (size_t i = 0; i < len; ++i) {
      noise.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    (void)Message::Decode(noise);
  }
}

}  // namespace
}  // namespace polyvalue
