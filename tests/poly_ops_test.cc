// Unit tests for lifted polyvalue operations.
#include "src/poly/poly_ops.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

const TxnId kT1(1);
const TxnId kT2(2);

PolyValue TwoWay(TxnId txn, int64_t if_commit, int64_t if_abort) {
  return PolyValue::InstallUncertain(
      txn, PolyValue::Certain(Value::Int(if_commit)),
      PolyValue::Certain(Value::Int(if_abort)));
}

TEST(PolyOpsTest, AddCertainCertain) {
  const Result<PolyValue> sum = PolyAdd(PolyValue::Certain(Value::Int(2)),
                                        PolyValue::Certain(Value::Int(3)));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->certain_value(), Value::Int(5));
}

TEST(PolyOpsTest, AddCertainUncertain) {
  const Result<PolyValue> sum =
      PolyAdd(TwoWay(kT1, 10, 20), PolyValue::Certain(Value::Int(1)));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->size(), 2u);
  EXPECT_EQ(sum->ValueUnder({{kT1, true}}).value(), Value::Int(11));
  EXPECT_EQ(sum->ValueUnder({{kT1, false}}).value(), Value::Int(21));
}

TEST(PolyOpsTest, AddTwoUncertainIndependent) {
  const Result<PolyValue> sum = PolyAdd(TwoWay(kT1, 1, 2), TwoWay(kT2, 10, 20));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->size(), 4u);
  EXPECT_EQ(sum->ValueUnder({{kT1, true}, {kT2, false}}).value(),
            Value::Int(21));
  EXPECT_TRUE(sum->Validate());
}

TEST(PolyOpsTest, CorrelatedInputsPruneImpossibleBranches) {
  // Both inputs depend on the same transaction: only 2 of the 4
  // combinations are reachable.
  const Result<PolyValue> sum = PolyAdd(TwoWay(kT1, 1, 2), TwoWay(kT1, 10, 20));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->size(), 2u);
  EXPECT_EQ(sum->ValueUnder({{kT1, true}}).value(), Value::Int(11));
  EXPECT_EQ(sum->ValueUnder({{kT1, false}}).value(), Value::Int(22));
}

TEST(PolyOpsTest, PrunedBranchErrorNeverEvaluated) {
  // Division by the zero alternative is unreachable (same condition
  // conflict), so the lifted divide succeeds — the §3.2 efficiency rule.
  const PolyValue numerator = TwoWay(kT1, 100, 200);
  const PolyValue denominator = TwoWay(kT1, 10, 0);
  // Under T1: 100/10; under ¬T1: 200/0 — wait, that IS reachable.
  // Use matching polarity so the zero pairs only with the committed
  // numerator branch being pruned:
  const PolyValue safe_denominator = PolyValue::Of(
      {{Value::Int(0), Condition::Committed(kT1)},
       {Value::Int(10), Condition::Aborted(kT1)}});
  const PolyValue guarded_numerator = PolyValue::Of(
      {{Value::Int(0), Condition::Committed(kT1)},
       {Value::Int(100), Condition::Aborted(kT1)}});
  // 0/0 under T1 would fail, but pair ⟨0,T1⟩ with ⟨10,¬T1⟩ prunes.
  const Result<PolyValue> fine =
      PolyDiv(guarded_numerator, PolyValue::Certain(Value::Int(10)));
  ASSERT_TRUE(fine.ok());
  // And a genuinely reachable division by zero fails:
  const Result<PolyValue> bad = PolyDiv(numerator, safe_denominator);
  EXPECT_FALSE(bad.ok());
}

TEST(PolyOpsTest, SubMulDiv) {
  const PolyValue a = TwoWay(kT1, 10, 20);
  EXPECT_EQ(PolySub(a, PolyValue::Certain(Value::Int(5)))
                ->ValueUnder({{kT1, true}})
                .value(),
            Value::Int(5));
  EXPECT_EQ(PolyMul(a, PolyValue::Certain(Value::Int(2)))
                ->ValueUnder({{kT1, false}})
                .value(),
            Value::Int(40));
  EXPECT_EQ(PolyDiv(a, PolyValue::Certain(Value::Int(10)))
                ->ValueUnder({{kT1, true}})
                .value(),
            Value::Int(1));
}

TEST(PolyOpsTest, ApplyUnary) {
  const Result<PolyValue> negated =
      ApplyUnary(TwoWay(kT1, 5, -5), [](const Value& v) { return Neg(v); });
  ASSERT_TRUE(negated.ok());
  EXPECT_EQ(negated->ValueUnder({{kT1, true}}).value(), Value::Int(-5));
  EXPECT_EQ(negated->ValueUnder({{kT1, false}}).value(), Value::Int(5));
}

TEST(PolyOpsTest, ApplyUnaryMergesEqualResults) {
  const Result<PolyValue> squared = ApplyUnary(
      TwoWay(kT1, 3, -3), [](const Value& v) { return Mul(v, v); });
  ASSERT_TRUE(squared.ok());
  // 9 under both conditions: certainty re-emerges.
  EXPECT_TRUE(squared->is_certain());
  EXPECT_EQ(squared->certain_value(), Value::Int(9));
}

TEST(PolyOpsTest, LiftedComparison) {
  const Result<PolyValue> cmp =
      PolyGreaterEq(TwoWay(kT1, 100, 50), PolyValue::Certain(Value::Int(75)));
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ(cmp->ValueUnder({{kT1, true}}).value(), Value::Bool(true));
  EXPECT_EQ(cmp->ValueUnder({{kT1, false}}).value(), Value::Bool(false));
}

TEST(PolyOpsTest, DecideUniformAgreement) {
  // Both alternatives >= 10: the answer is certain despite uncertainty.
  const Result<PolyValue> cmp =
      PolyGreaterEq(TwoWay(kT1, 100, 50), PolyValue::Certain(Value::Int(10)));
  ASSERT_TRUE(cmp.ok());
  EXPECT_TRUE(DecideUniform(*cmp).value());
}

TEST(PolyOpsTest, DecideUniformDisagreementIsUncertain) {
  const Result<PolyValue> cmp =
      PolyGreaterEq(TwoWay(kT1, 100, 50), PolyValue::Certain(Value::Int(75)));
  ASSERT_TRUE(cmp.ok());
  const Result<bool> decision = DecideUniform(*cmp);
  EXPECT_FALSE(decision.ok());
  EXPECT_EQ(decision.status().code(), StatusCode::kUncertain);
}

TEST(PolyOpsTest, TypeErrorsPropagate) {
  const PolyValue text = PolyValue::Certain(Value::Str("x"));
  EXPECT_FALSE(PolyAdd(text, PolyValue::Certain(Value::Int(1))).ok());
  EXPECT_FALSE(DecideUniform(PolyValue::Certain(Value::Int(1))).ok());
}

}  // namespace
}  // namespace polyvalue
