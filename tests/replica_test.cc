// Tests for the partial-replication subsystem (src/replica/): region
// topology, deterministic k-of-n placement, the logical-item catalog,
// the failover read router, the WAN latency/chaos model, the A12/A13
// trace invariants, and a short replicated end-to-end soak.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/obs/audit.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/replica/catalog.h"
#include "src/replica/consistency.h"
#include "src/replica/placement.h"
#include "src/replica/router.h"
#include "src/replica/topology.h"
#include "src/replica/wan.h"
#include "src/workload/driver.h"

namespace polyvalue {
namespace {

SimCluster::Options ClusterOptions(size_t sites) {
  SimCluster::Options options;
  options.site_count = sites;
  options.engine.wait_timeout = 0.05;
  options.engine.inquiry_interval = 0.2;
  options.engine.validate_installs = true;
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  return options;
}

PlacementPolicy Policy(size_t k) {
  PlacementPolicy policy;
  policy.replication_factor = k;
  return policy;
}

TEST(TopologyTest, SymmetricGridShape) {
  const RegionTopology topo = RegionTopology::SymmetricGrid(3, 3);
  EXPECT_EQ(topo.region_count(), 3u);
  EXPECT_EQ(topo.site_count(), 9u);
  EXPECT_EQ(topo.region(0).name, "r0");
  EXPECT_EQ(topo.region(2).name, "r2");
  // Row-major: region 0 holds sites 1..3, region 2 holds 7..9.
  EXPECT_EQ(topo.RegionOf(SiteId(1)), 0u);
  EXPECT_EQ(topo.RegionOf(SiteId(3)), 0u);
  EXPECT_EQ(topo.RegionOf(SiteId(4)), 1u);
  EXPECT_EQ(topo.RegionOf(SiteId(9)), 2u);
  EXPECT_EQ(topo.RegionNameOf(SiteId(5)), "r1");
  EXPECT_TRUE(topo.Contains(SiteId(9)));
  EXPECT_FALSE(topo.Contains(SiteId(10)));
  EXPECT_EQ(topo.AllSites().size(), 9u);
}

TEST(PlacementTest, PureFunctionOfSeedAndTopology) {
  const RegionTopology topo = RegionTopology::SymmetricGrid(3, 3);
  const ReplicaPlacement a(topo, Policy(3));
  const ReplicaPlacement b(topo, Policy(3));
  for (int i = 0; i < 64; ++i) {
    const std::string name = "item/" + std::to_string(i);
    EXPECT_EQ(a.SitesFor(name), b.SitesFor(name)) << name;
  }
}

TEST(PlacementTest, SpreadsCopiesAcrossRegions) {
  const RegionTopology topo = RegionTopology::SymmetricGrid(3, 3);
  const ReplicaPlacement placement(topo, Policy(3));
  for (int i = 0; i < 128; ++i) {
    const std::vector<SiteId> sites =
        placement.SitesFor("item/" + std::to_string(i));
    ASSERT_EQ(sites.size(), 3u);
    std::set<size_t> regions;
    std::set<uint64_t> distinct;
    for (SiteId site : sites) {
      regions.insert(topo.RegionOf(site));
      distinct.insert(site.value());
    }
    EXPECT_EQ(regions.size(), 3u) << "item/" << i;
    EXPECT_EQ(distinct.size(), 3u) << "item/" << i;
  }
}

TEST(PlacementTest, ReusesRegionsOnlyWhenKExceedsThem) {
  const RegionTopology topo = RegionTopology::SymmetricGrid(2, 3);
  const ReplicaPlacement placement(topo, Policy(4));
  for (int i = 0; i < 64; ++i) {
    const std::vector<SiteId> sites =
        placement.SitesFor("item/" + std::to_string(i));
    ASSERT_EQ(sites.size(), 4u);
    std::set<size_t> regions;
    std::set<uint64_t> distinct;
    for (SiteId site : sites) {
      regions.insert(topo.RegionOf(site));
      distinct.insert(site.value());
    }
    EXPECT_EQ(regions.size(), 2u);   // both regions used...
    EXPECT_EQ(distinct.size(), 4u);  // ...and never the same site twice
  }
}

TEST(PlacementTest, SeedChangesTheLayout) {
  const RegionTopology topo = RegionTopology::SymmetricGrid(3, 3);
  PlacementPolicy other = Policy(3);
  other.seed ^= 0xdeadbeefULL;
  const ReplicaPlacement a(topo, Policy(3));
  const ReplicaPlacement b(topo, other);
  int moved = 0;
  for (int i = 0; i < 128; ++i) {
    const std::string name = "item/" + std::to_string(i);
    if (a.SitesFor(name) != b.SitesFor(name)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(CatalogTest, UniformNamesAndLookup) {
  const RegionTopology topo = RegionTopology::SymmetricGrid(2, 2);
  const ReplicaPlacement placement(topo, Policy(2));
  const ReplicaCatalog catalog =
      ReplicaCatalog::Uniform(placement, "g/", 8);
  EXPECT_EQ(catalog.size(), 8u);
  EXPECT_EQ(catalog.at(3).logical_name(), "g/3");
  EXPECT_EQ(catalog.Find("g/5").logical_name(), "g/5");
  EXPECT_EQ(catalog.at(0).size(), 2u);
}

TEST(CatalogTest, LoadAllSeedsEveryCopyAndAnnouncesDigests) {
  SimCluster cluster(ClusterOptions(4));
  const RegionTopology topo = RegionTopology::SymmetricGrid(2, 2);
  const ReplicaPlacement placement(topo, Policy(2));
  const ReplicaCatalog catalog =
      ReplicaCatalog::Uniform(placement, "g/", 8);
  VectorTraceSink trace;
  catalog.LoadAll(&cluster, Value::Int(100), &trace);

  for (size_t i = 0; i < catalog.size(); ++i) {
    const ReplicaSet& set = catalog.at(i);
    for (SiteId site : set.sites()) {
      EXPECT_EQ(cluster.site(site.value() - 1)
                    .Peek(set.KeyAt(site))
                    .value()
                    .certain_value(),
                Value::Int(100));
    }
  }
  size_t announced = 0;
  for (const TraceEvent& e : trace.Snapshot()) {
    if (e.type == TraceEventType::kReplicaWrite) {
      ++announced;
      EXPECT_EQ(e.arg, DigestValue(Value::Int(100)));
    }
  }
  EXPECT_EQ(announced, catalog.size());
}

// --- Read router -----------------------------------------------------

struct RouterFixture {
  SimCluster cluster;
  RegionTopology topo;
  ReplicaCatalog catalog;

  RouterFixture()
      : cluster(ClusterOptions(4)),
        topo(RegionTopology::SymmetricGrid(2, 2)),
        catalog(ReplicaCatalog::Uniform(
            ReplicaPlacement(topo, Policy(2)), "g/", 8)) {
    catalog.LoadAll(&cluster, Value::Int(7), nullptr);
  }
};

TEST(RouterTest, PreferenceOrderPutsLocalRegionFirst) {
  RouterFixture f;
  ReadRouterOptions options;
  options.local_region = 1;
  ReadRouter router(&f.cluster, &f.topo, options);
  for (size_t i = 0; i < f.catalog.size(); ++i) {
    const std::vector<SiteId> order =
        router.PreferenceOrder(f.catalog.at(i));
    ASSERT_EQ(order.size(), 2u);
    // k=2 over two regions puts one copy in each; region 1 leads.
    EXPECT_EQ(f.topo.RegionOf(order[0]), 1u);
    EXPECT_EQ(f.topo.RegionOf(order[1]), 0u);
  }
}

TEST(RouterTest, ServesCertainValue) {
  RouterFixture f;
  ReadRouter router(&f.cluster, &f.topo, ReadRouterOptions{});
  std::optional<Result<Value>> got;
  router.Read(f.catalog.at(0), [&](const Result<Value>& r) { got = r; });
  f.cluster.RunFor(1.0);
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok());
  EXPECT_EQ(got->value(), Value::Int(7));
  EXPECT_EQ(router.counters().served, 1u);
  EXPECT_EQ(router.counters().failed, 0u);
}

TEST(RouterTest, FailsOverPastCrashedCopy) {
  RouterFixture f;
  VectorTraceSink trace;
  ReadRouterOptions options;
  options.trace = &trace;
  ReadRouter router(&f.cluster, &f.topo, options);
  const ReplicaSet& set = f.catalog.at(0);
  const std::vector<SiteId> order = router.PreferenceOrder(set);
  f.cluster.CrashSite(order[0].value() - 1);

  std::optional<Result<Value>> got;
  router.Read(set, [&](const Result<Value>& r) { got = r; });
  f.cluster.RunFor(1.0);
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok());
  EXPECT_EQ(got->value(), Value::Int(7));
  EXPECT_GE(router.counters().failovers, 1u);
  bool saw_failover = false;
  for (const TraceEvent& e : trace.Snapshot()) {
    saw_failover = saw_failover ||
                   e.type == TraceEventType::kReplicaFailover;
  }
  EXPECT_TRUE(saw_failover);
}

TEST(RouterTest, UnavailableWhenEveryCopyIsDown) {
  RouterFixture f;
  ReadRouter router(&f.cluster, &f.topo, ReadRouterOptions{});
  const ReplicaSet& set = f.catalog.at(0);
  for (SiteId site : set.sites()) {
    f.cluster.CrashSite(site.value() - 1);
  }
  std::optional<Result<Value>> got;
  router.Read(set, [&](const Result<Value>& r) { got = r; });
  f.cluster.RunFor(1.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->ok());
  EXPECT_EQ(got->status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(router.counters().failed, 1u);

  MetricsRegistry metrics;
  router.ExportMetrics(&metrics);
  EXPECT_EQ(metrics.counter("replica.failed"), 1u);
}

// --- WAN model -------------------------------------------------------

TEST(WanTest, ProfileShapesInterRegionDelays) {
  const RegionTopology topo = RegionTopology::SymmetricGrid(2, 2);
  FaultPlan faults;
  faults.SetDelayRange(0.001, 0.001);
  WanProfile profile;
  InstallWanProfile(topo, profile, &faults);
  Rng rng(42);
  for (int i = 0; i < 64; ++i) {
    // Site 1 (r0) -> site 3 (r1): inter-region range.
    const double inter = faults.SampleDelay(SiteId(1), SiteId(3), &rng);
    EXPECT_GE(inter, profile.inter_min);
    EXPECT_LE(inter, profile.inter_max);
    // Site 1 -> site 2: same region.
    const double intra = faults.SampleDelay(SiteId(1), SiteId(2), &rng);
    EXPECT_GE(intra, profile.intra_min);
    EXPECT_LE(intra, profile.intra_max);
  }
}

TEST(WanTest, NoOverrideMatchesDefaultDrawForDraw) {
  FaultPlan faults;
  faults.SetDelayRange(0.002, 0.01);
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(faults.SampleDelay(&a),
              faults.SampleDelay(SiteId(1), SiteId(2), &b));
  }
}

TEST(WanTest, OneWayPartitionCutsOneDirectionOnly) {
  const RegionTopology topo = RegionTopology::SymmetricGrid(2, 2);
  SimCluster cluster(ClusterOptions(4));
  ScheduleOneWayPartition(&cluster, topo, 0, 1, 1.0, 2.0);
  cluster.RunFor(1.5);
  Rng rng(1);
  // r0 -> r1 cut, reverse direction still delivering.
  EXPECT_FALSE(cluster.faults().ShouldDeliver(SiteId(1), SiteId(3), &rng));
  EXPECT_TRUE(cluster.faults().ShouldDeliver(SiteId(3), SiteId(1), &rng));
  cluster.RunFor(1.0);
  EXPECT_TRUE(cluster.faults().ShouldDeliver(SiteId(1), SiteId(3), &rng));
}

TEST(WanTest, RegionLossAndRollingRecovery) {
  const RegionTopology topo = RegionTopology::SymmetricGrid(2, 2);
  SimCluster cluster(ClusterOptions(4));
  ScheduleRegionLoss(&cluster, topo, 1, 1.0);
  ScheduleRollingRecovery(&cluster, topo, 1, 2.0, 0.5);
  cluster.RunFor(1.5);
  EXPECT_FALSE(cluster.site(0).crashed());
  EXPECT_TRUE(cluster.site(2).crashed());
  EXPECT_TRUE(cluster.site(3).crashed());
  cluster.RunFor(0.75);  // t=2.25: first r1 site back, second still down
  EXPECT_FALSE(cluster.site(2).crashed());
  EXPECT_TRUE(cluster.site(3).crashed());
  cluster.RunFor(0.5);
  EXPECT_FALSE(cluster.site(3).crashed());
}

// --- A12 / A13 auditor -----------------------------------------------

TraceEvent Ev(TraceEventType type, int site, const std::string& key,
              uint64_t arg, bool flag = false) {
  TraceEvent e;
  e.type = type;
  e.site = SiteId(site);
  e.key = key;
  e.arg = arg;
  e.flag = flag;
  return e;
}

TEST(ReplicaAuditTest, ConvergedSweepPasses) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kReplicaSetInfo, 1, "g/0", 2),
      Ev(TraceEventType::kReplicaDigest, 1, "g/0", 77),
      Ev(TraceEventType::kReplicaDigest, 2, "g/0", 77),
  };
  EXPECT_TRUE(TraceAuditor::Check(trace, AuditOptions{}).ok());
}

TEST(ReplicaAuditTest, DivergentCopiesViolateA12) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kReplicaSetInfo, 1, "g/0", 2),
      Ev(TraceEventType::kReplicaDigest, 1, "g/0", 77),
      Ev(TraceEventType::kReplicaDigest, 2, "g/0", 78),
  };
  const Status status = TraceAuditor::Check(trace, AuditOptions{});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("diverge"), std::string::npos);
}

TEST(ReplicaAuditTest, CopyCountMismatchViolatesA12) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kReplicaSetInfo, 1, "g/0", 3),
      Ev(TraceEventType::kReplicaDigest, 1, "g/0", 77),
      Ev(TraceEventType::kReplicaDigest, 2, "g/0", 77),
  };
  EXPECT_FALSE(TraceAuditor::Check(trace, AuditOptions{}).ok());
}

TEST(ReplicaAuditTest, ZeroDigestViolatesA12) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kReplicaSetInfo, 1, "g/0", 2),
      Ev(TraceEventType::kReplicaDigest, 1, "g/0", 77),
      Ev(TraceEventType::kReplicaDigest, 2, "g/0", 0),
  };
  const Status status = TraceAuditor::Check(trace, AuditOptions{});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unconverged"), std::string::npos);
}

TEST(ReplicaAuditTest, DigestOutsideSweepIsFlagged) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kReplicaDigest, 1, "g/0", 77),
  };
  EXPECT_FALSE(TraceAuditor::Check(trace, AuditOptions{}).ok());
}

TEST(ReplicaAuditTest, AnnouncedReadSatisfiesA13) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kReplicaWrite, 1, "g/0", 55),
      Ev(TraceEventType::kReplicaRead, 2, "g/0", 55, true),
  };
  EXPECT_TRUE(TraceAuditor::Check(trace, AuditOptions{}).ok());
}

TEST(ReplicaAuditTest, LateAnnouncementStillSatisfiesA13) {
  // The announcement may trail the read (a commit whose output was
  // still uncertain when the client saw it announces at settlement);
  // the whole-trace pre-pass must accept this ordering.
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kReplicaRead, 2, "g/0", 55, true),
      Ev(TraceEventType::kReplicaWrite, 1, "g/0", 55),
  };
  EXPECT_TRUE(TraceAuditor::Check(trace, AuditOptions{}).ok());
}

TEST(ReplicaAuditTest, UnannouncedCertainReadViolatesA13) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kReplicaWrite, 1, "g/0", 55),
      Ev(TraceEventType::kReplicaRead, 2, "g/0", 56, true),
  };
  const Status status = TraceAuditor::Check(trace, AuditOptions{});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("aborted-branch"), std::string::npos);
}

TEST(ReplicaAuditTest, UncertainReadIsNotConstrained) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kReplicaRead, 2, "g/0", 56, false),
  };
  EXPECT_TRUE(TraceAuditor::Check(trace, AuditOptions{}).ok());
}

TEST(ReplicaAuditTest, RepairCountsAsAnnouncement) {
  const std::vector<TraceEvent> trace = {
      Ev(TraceEventType::kReplicaRepair, 1, "g/0", 55),
      Ev(TraceEventType::kReplicaRead, 2, "g/0", 55, true),
  };
  EXPECT_TRUE(TraceAuditor::Check(trace, AuditOptions{}).ok());
}

// --- Replicated end-to-end soak --------------------------------------

TEST(ReplicatedWorkloadTest, ShortSoakHoldsEveryInvariant) {
  VectorTraceSink trace;
  ClusterWorkloadParams params;
  params.sites = 4;
  params.regions = 2;
  params.replication_factor = 2;
  params.keys = 32;
  params.virtual_clients = 10000;
  params.arrival.rate = 40.0;
  params.mix = MultiSiteMix();
  params.duration = 10.0;
  params.settle_time = 4.0;
  params.deadline = 0.5;
  params.seed = 20260808;
  params.trace = &trace;

  ClusterWorkload wl(params);
  ASSERT_TRUE(wl.replicated());
  ASSERT_NE(wl.catalog(), nullptr);
  EXPECT_EQ(wl.catalog()->size(), params.keys);
  // Lose one region mid-load; the driver heals before the settle.
  ScheduleRegionLoss(&wl.cluster(), *wl.topology(), 1, 3.0);

  const ClusterWorkloadReport report = wl.Run();
  EXPECT_TRUE(report.ExactlyOnce()) << report.Summary();
  EXPECT_EQ(report.conservation_drift, 0) << report.Summary();
  EXPECT_EQ(report.final_uncertain_items, 0u) << report.Summary();
  EXPECT_GT(report.committed, 0u);

  const Status audit = TraceAuditor::Check(trace.Snapshot(), AuditOptions{});
  EXPECT_TRUE(audit.ok()) << audit.message();

  // The driver's end-of-run digest sweep must cover every logical item.
  size_t sweeps = 0;
  for (const TraceEvent& e : trace.Snapshot()) {
    if (e.type == TraceEventType::kReplicaSetInfo) {
      ++sweeps;
    }
  }
  EXPECT_EQ(sweeps, params.keys);

  // Copies really converged (the stores agree with the trace).
  for (size_t i = 0; i < wl.catalog()->size(); ++i) {
    const ReplicaCheckReport check =
        CheckReplicaSet(&wl.cluster(), wl.catalog()->at(i));
    EXPECT_TRUE(check.consistent())
        << wl.catalog()->at(i).logical_name();
  }
}

TEST(ReplicatedWorkloadTest, ScheduleIsReproducible) {
  auto run = [] {
    ClusterWorkloadParams params;
    params.sites = 4;
    params.regions = 2;
    params.replication_factor = 2;
    params.keys = 16;
    params.virtual_clients = 5000;
    params.arrival.rate = 30.0;
    params.duration = 5.0;
    params.settle_time = 2.0;
    params.deadline = 0.5;
    params.seed = 99;
    ClusterWorkload wl(params);
    return wl.Run();
  };
  const ClusterWorkloadReport a = run();
  const ClusterWorkloadReport b = run();
  EXPECT_EQ(a.schedule_hash, b.schedule_hash);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.Summary(), b.Summary());
}

}  // namespace
}  // namespace polyvalue
