// Failure-path engine tests: the in-doubt window, polyvalue installation,
// polytransactions over uncertain items, and §3.3 outcome propagation.
#include <gtest/gtest.h>

#include "src/system/cluster.h"

namespace polyvalue {
namespace {

EngineConfig FastConfig() {
  EngineConfig config;
  config.prepare_timeout = 0.25;
  config.ready_timeout = 0.25;
  config.wait_timeout = 0.05;
  config.inquiry_interval = 0.2;
  config.validate_installs = true;
  return config;
}

SimCluster::Options ClusterOptions(size_t sites) {
  SimCluster::Options options;
  options.site_count = sites;
  options.engine = FastConfig();
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  return options;
}

TxnSpec Transfer(const ItemKey& from, SiteId from_site, const ItemKey& to,
                 SiteId to_site, int64_t amount) {
  TxnSpec spec;
  spec.ReadWrite(from, from_site);
  spec.ReadWrite(to, to_site);
  spec.Logic([from, to, amount](const TxnReads& reads) {
    const int64_t have = reads.IntAt(from);
    if (have < amount) {
      return TxnEffect::Abort("insufficient funds");
    }
    TxnEffect e;
    e.writes[from] = Value::Int(have - amount);
    e.writes[to] = Value::Int(reads.IntAt(to) + amount);
    return e;
  });
  return spec;
}

// Timeline with 10 ms links: prepare replies ~t+0.02, WRITE_REQ arrives
// ~t+0.03 (READY voted), COMPLETE arrives ~t+0.05. Crashing the
// coordinator at t+0.035 leaves both participants in the wait state —
// the paper's in-doubt window.
class InDoubtScenario : public ::testing::Test {
 protected:
  InDoubtScenario() : cluster_(ClusterOptions(3)) {
    cluster_.Load(1, "a", Value::Int(100));
    cluster_.Load(2, "b", Value::Int(50));
  }

  // Returns the txn id of the stranded transfer.
  TxnId StrandTransfer() {
    const TxnId txn = cluster_.Submit(
        0, Transfer("a", cluster_.site_id(1), "b", cluster_.site_id(2), 30),
        [this](const TxnResult& r) { result_ = r; });
    cluster_.sim().At(cluster_.sim().now() + 0.035,
                      [this] { cluster_.CrashSite(0); });
    cluster_.RunFor(0.2);  // past the wait timeout
    return txn;
  }

  SimCluster cluster_;
  std::optional<TxnResult> result_;
};

TEST_F(InDoubtScenario, ParticipantsInstallPolyvaluesAndReleaseLocks) {
  const TxnId txn = StrandTransfer();
  // No client answer (coordinator died before deciding).
  EXPECT_FALSE(result_.has_value());
  // Both written items are now polyvalues conditioned on txn.
  const PolyValue a = cluster_.site(1).Peek("a").value();
  const PolyValue b = cluster_.site(2).Peek("b").value();
  ASSERT_FALSE(a.is_certain());
  ASSERT_FALSE(b.is_certain());
  EXPECT_EQ(a.Dependencies(), std::vector<TxnId>{txn});
  EXPECT_EQ(a.ValueUnder({{txn, true}}).value(), Value::Int(70));
  EXPECT_EQ(a.ValueUnder({{txn, false}}).value(), Value::Int(100));
  EXPECT_EQ(b.ValueUnder({{txn, true}}).value(), Value::Int(80));
  EXPECT_EQ(b.ValueUnder({{txn, false}}).value(), Value::Int(50));
  // Locks are gone: that is the entire point of the mechanism.
  EXPECT_EQ(cluster_.site(1).store().locked_count(), 0u);
  EXPECT_EQ(cluster_.site(2).store().locked_count(), 0u);
  EXPECT_GE(cluster_.TotalMetrics().polyvalue_installs, 2u);
}

TEST_F(InDoubtScenario, RecoveryResolvesToPresumedAbort) {
  const TxnId txn = StrandTransfer();
  (void)txn;
  cluster_.RecoverSite(0);
  cluster_.RunFor(2.0);  // inquiry interval is 0.2: plenty
  // The coordinator never decided commit, so presumed abort: original
  // values return and uncertainty is gone everywhere.
  EXPECT_EQ(cluster_.TotalUncertainItems(), 0u);
  EXPECT_EQ(cluster_.site(1).Peek("a").value().certain_value(),
            Value::Int(100));
  EXPECT_EQ(cluster_.site(2).Peek("b").value().certain_value(),
            Value::Int(50));
}

TEST_F(InDoubtScenario, UncertainItemsRemainAvailableForNewTransactions) {
  StrandTransfer();
  // A new transaction reads the uncertain "a" and writes "c" on site 2:
  // it must COMMIT (no blocking), produce an uncertain output, and leave
  // "c" a polyvalue — a polytransaction.
  TxnSpec spec;
  spec.Read("a", cluster_.site_id(1));
  spec.Write("c", cluster_.site_id(2));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["c"] = Value::Int(reads.IntAt("a") * 2);
    e.output = Value::Int(reads.IntAt("a"));
    return e;
  });
  const auto result = cluster_.SubmitAndRun(2, std::move(spec));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  EXPECT_FALSE(result->output.is_certain());
  cluster_.RunFor(0.2);
  const PolyValue c = cluster_.site(2).Peek("c").value();
  ASSERT_FALSE(c.is_certain());
  EXPECT_EQ(c.MaxPossible().value(), Value::Int(200));
  EXPECT_EQ(c.MinPossible().value(), Value::Int(140));
  EXPECT_GE(cluster_.TotalMetrics().polytxns, 1u);
}

TEST_F(InDoubtScenario, PropagatedUncertaintyResolvesTransitively) {
  StrandTransfer();
  // Propagate uncertainty from a (site 1) into c (site 2)...
  TxnSpec spec;
  spec.Read("a", cluster_.site_id(1));
  spec.Write("c", cluster_.site_id(2));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["c"] = Value::Int(reads.IntAt("a") * 2);
    return e;
  });
  ASSERT_TRUE(cluster_.SubmitAndRun(2, std::move(spec)).has_value());
  cluster_.RunFor(0.2);
  ASSERT_FALSE(cluster_.site(2).Peek("c").value().is_certain());
  // ...then recover the coordinator: the outcome (abort) must reach every
  // dependent item, including the transitively created "c".
  cluster_.RecoverSite(0);
  cluster_.RunFor(3.0);
  EXPECT_EQ(cluster_.TotalUncertainItems(), 0u);
  EXPECT_EQ(cluster_.site(2).Peek("c").value().certain_value(),
            Value::Int(200));  // a resolved to 100
}

TEST_F(InDoubtScenario, AgreementAcrossAlternativesGivesCertainAnswers) {
  StrandTransfer();
  // "Is a >= 50?" — true under both alternatives (70 and 100): the
  // answer is certain despite the uncertainty (§3.4).
  TxnSpec spec;
  spec.Read("a", cluster_.site_id(1));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.output = Value::Bool(reads.IntAt("a") >= 50);
    return e;
  });
  const auto result = cluster_.SubmitAndRun(2, std::move(spec));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->output.is_certain());
  EXPECT_EQ(result->output.certain_value(), Value::Bool(true));
}

TEST(EngineFailureTest, LostCompleteResolvedByInquiry) {
  // The coordinator decides COMMIT but one participant's COMPLETE is lost
  // (link cut at the critical moment). That participant installs
  // polyvalues, then learns the truth by inquiry — both sides must end
  // committed.
  SimCluster cluster(ClusterOptions(3));
  cluster.Load(1, "a", Value::Int(100));
  cluster.Load(2, "b", Value::Int(50));
  std::optional<TxnResult> result;
  cluster.Submit(
      0, Transfer("a", cluster.site_id(1), "b", cluster.site_id(2), 30),
      [&result](const TxnResult& r) { result = r; });
  // COMPLETE leaves the coordinator at ~0.04 (delivery checks happen at
  // send time); cut S0–S2 at 0.035 — after the READYs (sent 0.03) but
  // before the COMPLETE send — and heal later.
  cluster.sim().At(0.035, [&cluster] {
    cluster.faults().SetLinkDown(cluster.site_id(0), cluster.site_id(2),
                                 true);
  });
  cluster.RunFor(0.15);  // S2 hits its wait timeout, installs polyvalues
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  EXPECT_EQ(cluster.site(1).Peek("a").value().certain_value(),
            Value::Int(70));
  EXPECT_FALSE(cluster.site(2).Peek("b").value().is_certain());
  // Heal; inquiry reaches the coordinator; commit propagates.
  cluster.faults().HealLinks();
  cluster.RunFor(2.0);
  EXPECT_EQ(cluster.site(2).Peek("b").value().certain_value(),
            Value::Int(80));
  EXPECT_EQ(cluster.TotalUncertainItems(), 0u);
}

TEST(EngineFailureTest, ParticipantCrashDuringPrepareAbortsTxn) {
  SimCluster cluster(ClusterOptions(3));
  cluster.Load(1, "a", Value::Int(100));
  cluster.Load(2, "b", Value::Int(50));
  cluster.CrashSite(2);  // participant dead before submission
  const auto result = cluster.SubmitAndRun(
      0, Transfer("a", cluster.site_id(1), "b", cluster.site_id(2), 30),
      /*max_seconds=*/5.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->disposition, TxnDisposition::kAborted);
  cluster.RunFor(1.0);
  // Site 1 is untouched and unlocked.
  EXPECT_EQ(cluster.site(1).Peek("a").value().certain_value(),
            Value::Int(100));
  EXPECT_EQ(cluster.site(1).store().locked_count(), 0u);
}

TEST(EngineFailureTest, SubmitToCrashedCoordinatorFailsFast) {
  SimCluster cluster(ClusterOptions(2));
  cluster.Load(1, "x", Value::Int(1));
  cluster.CrashSite(0);
  TxnSpec spec;
  spec.Read("x", cluster.site_id(1));
  spec.Logic([](const TxnReads&) { return TxnEffect{}; });
  const auto result = cluster.SubmitAndRun(0, std::move(spec));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->disposition, TxnDisposition::kAborted);
}

TEST(EngineFailureTest, RepeatedFailuresStackConditions) {
  // Two different stranded transactions on the same item produce nested
  // conditions; both resolve correctly.
  SimCluster cluster(ClusterOptions(4));
  cluster.Load(1, "a", Value::Int(100));
  cluster.Load(2, "b", Value::Int(0));
  cluster.Load(3, "c", Value::Int(0));

  // First stranded transfer a->b coordinated by site 0.
  const TxnId txn1 = cluster.Submit(
      0, Transfer("a", cluster.site_id(1), "b", cluster.site_id(2), 10),
      [](const TxnResult&) {});
  cluster.sim().At(cluster.sim().now() + 0.035,
                   [&cluster] { cluster.CrashSite(0); });
  cluster.RunFor(0.3);
  ASSERT_FALSE(cluster.site(1).Peek("a").value().is_certain());

  // Second transfer a->c coordinated by site 3 — a polytransaction whose
  // writes depend on txn1; strand it too.
  const TxnId txn2 = cluster.Submit(
      3, Transfer("a", cluster.site_id(1), "c", cluster.site_id(3), 5),
      [](const TxnResult&) {});
  cluster.sim().At(cluster.sim().now() + 0.035,
                   [&cluster] { cluster.CrashSite(3); });
  cluster.RunFor(0.3);

  const PolyValue a = cluster.site(1).Peek("a").value();
  ASSERT_FALSE(a.is_certain());
  // All four outcome combinations must be represented and correct.
  EXPECT_EQ(a.ValueUnder({{txn1, true}, {txn2, true}}).value(),
            Value::Int(85));
  EXPECT_EQ(a.ValueUnder({{txn1, true}, {txn2, false}}).value(),
            Value::Int(90));
  EXPECT_EQ(a.ValueUnder({{txn1, false}, {txn2, true}}).value(),
            Value::Int(95));
  EXPECT_EQ(a.ValueUnder({{txn1, false}, {txn2, false}}).value(),
            Value::Int(100));
  EXPECT_TRUE(a.Validate());

  // Recover both coordinators: everything resolves to presumed abort.
  cluster.RecoverSite(0);
  cluster.RecoverSite(3);
  cluster.RunFor(3.0);
  EXPECT_EQ(cluster.TotalUncertainItems(), 0u);
  EXPECT_EQ(cluster.site(1).Peek("a").value().certain_value(),
            Value::Int(100));
}

}  // namespace
}  // namespace polyvalue
