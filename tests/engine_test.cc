// End-to-end engine tests on the deterministic cluster: the happy paths
// of the two-phase protocol (Figure 1 without failures).
#include <gtest/gtest.h>

#include "src/system/cluster.h"

namespace polyvalue {
namespace {

EngineConfig FastConfig() {
  EngineConfig config;
  config.prepare_timeout = 0.25;
  config.ready_timeout = 0.25;
  config.wait_timeout = 0.05;
  config.inquiry_interval = 0.2;
  config.validate_installs = true;
  return config;
}

SimCluster::Options ClusterOptions(size_t sites) {
  SimCluster::Options options;
  options.site_count = sites;
  options.engine = FastConfig();
  options.min_delay = 0.01;
  options.max_delay = 0.01;  // fixed latency: deterministic timelines
  return options;
}

TxnSpec Transfer(const ItemKey& from, SiteId from_site, const ItemKey& to,
                 SiteId to_site, int64_t amount) {
  TxnSpec spec;
  spec.ReadWrite(from, from_site);
  spec.ReadWrite(to, to_site);
  spec.Logic([from, to, amount](const TxnReads& reads) {
    const int64_t have = reads.IntAt(from);
    if (have < amount) {
      return TxnEffect::Abort("insufficient funds");
    }
    TxnEffect e;
    e.writes[from] = Value::Int(have - amount);
    e.writes[to] = Value::Int(reads.IntAt(to) + amount);
    e.output = Value::Int(have - amount);
    return e;
  });
  return spec;
}

TEST(EngineTest, SingleSiteTransactionCommits) {
  SimCluster cluster(ClusterOptions(1));
  cluster.Load(0, "x", Value::Int(10));
  TxnSpec spec;
  spec.ReadWrite("x", cluster.site_id(0));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["x"] = Value::Int(reads.IntAt("x") + 1);
    e.output = Value::Str("ok");
    return e;
  });
  const auto result = cluster.SubmitAndRun(0, std::move(spec));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->disposition, TxnDisposition::kCommitted);
  EXPECT_EQ(result->output.certain_value(), Value::Str("ok"));
  cluster.RunFor(1.0);
  EXPECT_EQ(cluster.site(0).Peek("x").value().certain_value(),
            Value::Int(11));
}

TEST(EngineTest, CrossSiteTransferCommitsAtomically) {
  SimCluster cluster(ClusterOptions(3));
  cluster.Load(1, "a", Value::Int(100));
  cluster.Load(2, "b", Value::Int(5));
  const auto result = cluster.SubmitAndRun(
      0, Transfer("a", cluster.site_id(1), "b", cluster.site_id(2), 40));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->disposition, TxnDisposition::kCommitted);
  cluster.RunFor(1.0);
  EXPECT_EQ(cluster.site(1).Peek("a").value().certain_value(),
            Value::Int(60));
  EXPECT_EQ(cluster.site(2).Peek("b").value().certain_value(),
            Value::Int(45));
  EXPECT_EQ(cluster.TotalUncertainItems(), 0u);
}

TEST(EngineTest, LogicAbortRollsBackEverywhere) {
  SimCluster cluster(ClusterOptions(2));
  cluster.Load(0, "a", Value::Int(10));
  cluster.Load(1, "b", Value::Int(0));
  const auto result = cluster.SubmitAndRun(
      0, Transfer("a", cluster.site_id(0), "b", cluster.site_id(1), 9999));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->disposition, TxnDisposition::kAborted);
  EXPECT_EQ(result->abort_reason, "insufficient funds");
  cluster.RunFor(1.0);
  EXPECT_EQ(cluster.site(0).Peek("a").value().certain_value(),
            Value::Int(10));
  EXPECT_EQ(cluster.site(1).Peek("b").value().certain_value(),
            Value::Int(0));
}

TEST(EngineTest, ReadOnlyTransactionSkipsCommitRound) {
  SimCluster cluster(ClusterOptions(2));
  cluster.Load(1, "x", Value::Int(7));
  TxnSpec spec;
  spec.Read("x", cluster.site_id(1));
  spec.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.output = Value::Int(reads.IntAt("x") * 2);
    return e;
  });
  const auto result = cluster.SubmitAndRun(0, std::move(spec));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->disposition, TxnDisposition::kReadOnly);
  EXPECT_EQ(result->output.certain_value(), Value::Int(14));
  cluster.RunFor(0.5);
  // Locks released everywhere: a subsequent writer proceeds.
  TxnSpec writer;
  writer.ReadWrite("x", cluster.site_id(1));
  writer.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["x"] = Value::Int(reads.IntAt("x") + 1);
    return e;
  });
  const auto write_result = cluster.SubmitAndRun(0, std::move(writer));
  ASSERT_TRUE(write_result.has_value());
  EXPECT_TRUE(write_result->committed());
}

TEST(EngineTest, MissingItemAbortsTransaction) {
  SimCluster cluster(ClusterOptions(2));
  TxnSpec spec;
  spec.Read("ghost", cluster.site_id(1));
  spec.Logic([](const TxnReads&) { return TxnEffect{}; });
  const auto result = cluster.SubmitAndRun(0, std::move(spec));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->disposition, TxnDisposition::kAborted);
}

TEST(EngineTest, LockConflictAbortsSecondTransaction) {
  SimCluster cluster(ClusterOptions(2));
  cluster.Load(1, "hot", Value::Int(0));
  int committed = 0;
  int aborted = 0;
  auto count = [&](const TxnResult& r) {
    r.committed() ? ++committed : ++aborted;
  };
  TxnSpec spec1;
  spec1.ReadWrite("hot", cluster.site_id(1));
  spec1.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["hot"] = Value::Int(reads.IntAt("hot") + 1);
    return e;
  });
  TxnSpec spec2 = spec1;
  // Submit both before any messages flow: they race to the lock.
  cluster.Submit(0, std::move(spec1), count);
  cluster.Submit(0, std::move(spec2), count);
  cluster.RunFor(2.0);
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(aborted, 1);
  EXPECT_EQ(cluster.site(1).Peek("hot").value().certain_value(),
            Value::Int(1));
}

TEST(EngineTest, SequentialTransactionsAllCommit) {
  SimCluster cluster(ClusterOptions(3));
  cluster.Load(0, "acct", Value::Int(0));
  for (int i = 0; i < 10; ++i) {
    TxnSpec spec;
    spec.ReadWrite("acct", cluster.site_id(0));
    spec.Logic([](const TxnReads& reads) {
      TxnEffect e;
      e.writes["acct"] = Value::Int(reads.IntAt("acct") + 1);
      return e;
    });
    const auto result = cluster.SubmitAndRun(i % 3, std::move(spec));
    ASSERT_TRUE(result.has_value());
    ASSERT_TRUE(result->committed());
    cluster.RunFor(0.2);  // let COMPLETE land before the next txn
  }
  EXPECT_EQ(cluster.site(0).Peek("acct").value().certain_value(),
            Value::Int(10));
}

TEST(EngineTest, PureComputationNeedsNoSites) {
  SimCluster cluster(ClusterOptions(1));
  TxnSpec spec;
  spec.Logic([](const TxnReads&) {
    TxnEffect e;
    e.output = Value::Int(42);
    return e;
  });
  const auto result = cluster.SubmitAndRun(0, std::move(spec));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->disposition, TxnDisposition::kReadOnly);
  EXPECT_EQ(result->output.certain_value(), Value::Int(42));
}

TEST(EngineTest, TxnIdsEncodeCoordinator) {
  SimCluster cluster(ClusterOptions(3));
  cluster.Load(1, "x", Value::Int(0));
  TxnSpec spec;
  spec.Read("x", cluster.site_id(1));
  spec.Logic([](const TxnReads&) { return TxnEffect{}; });
  bool called = false;
  const TxnId txn = cluster.Submit(2, std::move(spec),
                                   [&called](const TxnResult&) {
                                     called = true;
                                   });
  EXPECT_EQ(TxnEngine::CoordinatorOf(txn), cluster.site_id(2));
  cluster.RunFor(1.0);
  EXPECT_TRUE(called);
}

TEST(EngineTest, MetricsCountCommitsAndAborts) {
  SimCluster cluster(ClusterOptions(2));
  cluster.Load(0, "a", Value::Int(100));
  cluster.Load(1, "b", Value::Int(0));
  ASSERT_TRUE(cluster
                  .SubmitAndRun(0, Transfer("a", cluster.site_id(0), "b",
                                            cluster.site_id(1), 10))
                  .has_value());
  cluster.RunFor(0.5);
  ASSERT_TRUE(cluster
                  .SubmitAndRun(0, Transfer("a", cluster.site_id(0), "b",
                                            cluster.site_id(1), 100000))
                  .has_value());
  cluster.RunFor(0.5);
  const EngineMetrics m = cluster.site(0).engine().metrics();
  EXPECT_EQ(m.txns_submitted, 2u);
  EXPECT_EQ(m.txns_committed, 1u);
  EXPECT_EQ(m.txns_aborted, 1u);
  EXPECT_EQ(m.polyvalue_installs, 0u);
}

TEST(EngineTest, NoPolyvaluesInFailureFreeRuns) {
  SimCluster cluster(ClusterOptions(4));
  for (size_t s = 0; s < 4; ++s) {
    cluster.Load(s, "acct/" + std::to_string(s), Value::Int(100));
  }
  for (int i = 0; i < 20; ++i) {
    const size_t from = i % 4;
    const size_t to = (i + 1) % 4;
    const auto result = cluster.SubmitAndRun(
        i % 4, Transfer("acct/" + std::to_string(from),
                        cluster.site_id(from),
                        "acct/" + std::to_string(to), cluster.site_id(to),
                        1));
    ASSERT_TRUE(result.has_value());
    cluster.RunFor(0.2);
  }
  EXPECT_EQ(cluster.TotalUncertainItems(), 0u);
  EXPECT_EQ(cluster.TotalMetrics().wait_timeouts, 0u);
}

}  // namespace
}  // namespace polyvalue
