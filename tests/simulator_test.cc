// Unit tests for the discrete-event simulation kernel.
#include "src/event/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace polyvalue {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(3.0, [&] { order.push_back(3); });
  sim.At(1.0, [&] { order.push_back(1); });
  sim.At(2.0, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, EqualTimesFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(1.0, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, AfterIsRelative) {
  Simulator sim;
  double fired_at = -1;
  sim.At(5.0, [&] {
    sim.After(2.5, [&] { fired_at = sim.now(); });
  });
  sim.RunAll();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.At(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // double-cancel reports false
  sim.RunAll();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const auto id = sim.At(1.0, [] {});
  sim.RunAll();
  EXPECT_FALSE(sim.Cancel(id));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<double> fired;
  sim.At(1.0, [&] { fired.push_back(1.0); });
  sim.At(2.0, [&] { fired.push_back(2.0); });
  sim.At(5.0, [&] { fired.push_back(5.0); });
  sim.RunUntil(3.0);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(sim.now(), 3.0);  // time advances to the deadline
  sim.RunUntil(10.0);
  EXPECT_EQ(fired.size(), 3u);
}

TEST(SimulatorTest, RunUntilAdvancesTimeOnEmptyQueue) {
  Simulator sim;
  sim.RunUntil(42.0);
  EXPECT_EQ(sim.now(), 42.0);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      sim.After(1.0, chain);
    }
  };
  sim.After(1.0, chain);
  sim.RunAll();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 5.0);
}

TEST(SimulatorTest, PendingCountTracksLiveEvents) {
  Simulator sim;
  const auto a = sim.At(1.0, [] {});
  sim.At(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.RunAll();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_processed(), 1u);
}

TEST(SimulatorDeathTest, SchedulingIntoPastChecks) {
  Simulator sim;
  sim.At(5.0, [] {});
  sim.RunAll();
  EXPECT_DEATH(sim.At(1.0, [] {}), "past");
}

}  // namespace
}  // namespace polyvalue
