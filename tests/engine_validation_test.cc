// Tests for the real-engine model-validation harness.
#include "src/baseline/engine_validation.h"

#include <gtest/gtest.h>

namespace polyvalue {
namespace {

EngineValidationParams QuickParams() {
  EngineValidationParams p;
  p.sites = 4;
  p.items = 500;
  p.updates_per_second = 10;
  p.failure_probability = 0.05;
  p.recovery_rate = 0.2;  // short outages: quick test
  p.dependency_degree = 1;
  p.warmup_seconds = 10;
  p.measure_seconds = 60;
  p.seed = 9;
  return p;
}

TEST(EngineValidationTest, ProducesStrandsAndUncertainty) {
  const EngineValidationReport report =
      RunEngineValidation(QuickParams());
  EXPECT_GT(report.submitted, 500u);
  EXPECT_GT(report.committed, 400u);
  EXPECT_GT(report.stranded, 5u);
  EXPECT_EQ(report.polyvalue_installs, report.stranded);
  EXPECT_GT(report.avg_uncertain_items, 0.0);
  EXPECT_GT(report.model_prediction, 0.0);
}

TEST(EngineValidationTest, EngineTracksModelWithinBand) {
  // Generous band — this is a short run; the bench uses long ones. The
  // point: the measured steady state is the same order as the model and
  // (like the paper's simulation) tends below it.
  const EngineValidationReport report =
      RunEngineValidation(QuickParams());
  EXPECT_GT(report.avg_uncertain_items, report.model_prediction * 0.3);
  EXPECT_LT(report.avg_uncertain_items, report.model_prediction * 1.5);
}

TEST(EngineValidationTest, NoFailuresNoUncertainty) {
  EngineValidationParams p = QuickParams();
  p.failure_probability = 0;
  p.measure_seconds = 20;
  const EngineValidationReport report = RunEngineValidation(p);
  EXPECT_EQ(report.stranded, 0u);
  EXPECT_EQ(report.avg_uncertain_items, 0.0);
  EXPECT_EQ(report.polyvalue_installs, 0u);
}

TEST(EngineValidationTest, FasterRecoveryLowersUncertainty) {
  EngineValidationParams slow = QuickParams();
  slow.recovery_rate = 0.1;
  EngineValidationParams fast = QuickParams();
  fast.recovery_rate = 0.5;
  EXPECT_GT(RunEngineValidation(slow).avg_uncertain_items,
            RunEngineValidation(fast).avg_uncertain_items);
}

TEST(EngineValidationTest, DeterministicForSeed) {
  const EngineValidationReport a = RunEngineValidation(QuickParams());
  const EngineValidationReport b = RunEngineValidation(QuickParams());
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.stranded, b.stranded);
  EXPECT_DOUBLE_EQ(a.avg_uncertain_items, b.avg_uncertain_items);
}

}  // namespace
}  // namespace polyvalue
