// Statistical and determinism properties of the workload generators
// (src/workload): the distributions match their declared shapes, the
// arrival curves honour their declared rates, identical seeds replay
// byte-identical schedules, and distinct seeds actually disperse.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/arrival.h"
#include "src/workload/distribution.h"
#include "src/workload/mix.h"

namespace polyvalue {
namespace {

// --- key distributions ------------------------------------------------

TEST(KeyDistributionTest, UniformCoversUniverseEvenly) {
  constexpr uint64_t kUniverse = 64;
  constexpr int kDraws = 128000;
  KeyDistribution dist(KeyDistParams{}, kUniverse);
  Rng rng(11);
  std::vector<int> counts(kUniverse, 0);
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t k = dist.Pick(&rng);
    ASSERT_LT(k, kUniverse);
    ++counts[k];
  }
  const double expected = static_cast<double>(kDraws) / kUniverse;
  for (uint64_t k = 0; k < kUniverse; ++k) {
    EXPECT_NEAR(counts[k], expected, 0.25 * expected) << "key " << k;
    EXPECT_DOUBLE_EQ(dist.Probability(k), 1.0 / kUniverse);
  }
}

TEST(KeyDistributionTest, ZipfianRankFrequencyMatchesProbability) {
  constexpr uint64_t kUniverse = 1000;
  constexpr int kDraws = 400000;
  KeyDistParams params;
  params.kind = KeyDistKind::kZipfian;
  params.zipf_theta = 0.99;
  KeyDistribution dist(params, kUniverse);
  Rng rng(17);
  std::vector<int> counts(kUniverse, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[dist.Pick(&rng)];
  }
  // Ranks 0 and 1 are drawn exactly from the zeta sum (the closed-form
  // generator special-cases them), so they match 1/(rank^theta * zeta)
  // tightly; deeper ranks come from the continuous approximation, which
  // distorts the near-head by up to ~20% — the shape holds, the exact
  // per-rank mass only asymptotically.
  for (uint64_t rank : {0u, 1u}) {
    const double expected = dist.Probability(rank) * kDraws;
    EXPECT_NEAR(counts[rank], expected, 0.10 * expected) << "rank " << rank;
  }
  for (uint64_t rank : {2u, 5u, 10u, 50u}) {
    const double expected = dist.Probability(rank) * kDraws;
    ASSERT_GT(expected, 100.0);  // enough mass to test against
    EXPECT_NEAR(counts[rank], expected, 0.30 * expected) << "rank " << rank;
  }
  // Rank 0 is the hottest, and by a wide margin (theta ~ 1 puts ~2x
  // between successive top ranks' 1/rank frequencies).
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], 3 * counts[7]);
  // Probabilities are a distribution: monotone in rank, summing to 1.
  double sum = 0.0;
  for (uint64_t k = 0; k < kUniverse; ++k) {
    sum += dist.Probability(k);
    if (k > 0) {
      EXPECT_LE(dist.Probability(k), dist.Probability(k - 1));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(KeyDistributionTest, HotSetGetsConfiguredShareOfDraws) {
  constexpr uint64_t kUniverse = 200;
  constexpr int kDraws = 200000;
  KeyDistParams params;
  params.kind = KeyDistKind::kHotSet;
  params.hot_fraction = 0.1;       // keys [0, 20)
  params.hot_probability = 0.9;
  KeyDistribution dist(params, kUniverse);
  Rng rng(23);
  int hot = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (dist.Pick(&rng) < 20) {
      ++hot;
    }
  }
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, 0.9, 0.01);
  EXPECT_NEAR(dist.Probability(0), 0.9 / 20, 1e-12);
  EXPECT_NEAR(dist.Probability(20), 0.1 / 180, 1e-12);
}

TEST(KeyDistributionTest, DrawExponentialCountHasExactMean) {
  constexpr int kDraws = 400000;
  constexpr double kMean = 2.7;
  Rng rng(31);
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(DrawExponentialCount(&rng, kMean));
  }
  EXPECT_NEAR(sum / kDraws, kMean, 0.05 * kMean);
  EXPECT_EQ(DrawExponentialCount(&rng, 0.0), 0u);
  EXPECT_EQ(DrawExponentialCount(&rng, -1.0), 0u);
}

// --- arrival curves ---------------------------------------------------

// Mean and coefficient of variation of the inter-arrival gaps over the
// first `n` arrivals.
struct GapStats {
  double mean;
  double cv;
};

GapStats MeasureGaps(ArrivalProcess* arrivals, int n) {
  double prev = 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double t = arrivals->Next();
    const double gap = t - prev;
    prev = t;
    sum += gap;
    sum_sq += gap * gap;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  return {mean, std::sqrt(std::max(0.0, var)) / mean};
}

TEST(ArrivalProcessTest, PoissonGapsAreExponential) {
  ArrivalParams params;
  params.kind = ArrivalCurveKind::kPoisson;
  params.rate = 50.0;
  ArrivalProcess arrivals(params, 41);
  const GapStats stats = MeasureGaps(&arrivals, 100000);
  // Exponential gaps: mean 1/rate, CV exactly 1.
  EXPECT_NEAR(stats.mean, 1.0 / 50.0, 0.02 / 50.0);
  EXPECT_NEAR(stats.cv, 1.0, 0.03);
}

TEST(ArrivalProcessTest, ConstantIsAMetronome) {
  ArrivalParams params;
  params.kind = ArrivalCurveKind::kConstant;
  params.rate = 40.0;
  ArrivalProcess arrivals(params, 43);
  const GapStats stats = MeasureGaps(&arrivals, 10000);
  EXPECT_NEAR(stats.mean, 1.0 / 40.0, 1e-9);
  EXPECT_NEAR(stats.cv, 0.0, 1e-6);
}

TEST(ArrivalProcessTest, DiurnalPeaksAndTroughsAroundMeanRate) {
  ArrivalParams params;
  params.kind = ArrivalCurveKind::kDiurnal;
  params.rate = 100.0;
  params.diurnal_period = 40.0;
  params.diurnal_amplitude = 0.8;
  ArrivalProcess arrivals(params, 47);
  // Count arrivals in the rising half-period [0, 20) (envelope above
  // the mean) vs the falling half [20, 40), over many periods.
  int peak = 0;
  int trough = 0;
  int total = 0;
  double t = 0.0;
  const double horizon = 400.0;  // 10 periods
  while ((t = arrivals.Next()) < horizon) {
    ++total;
    const double phase = std::fmod(t, 40.0);
    (phase < 20.0 ? peak : trough)++;
  }
  // Long-run mean rate is honoured...
  EXPECT_NEAR(total / horizon, 100.0, 5.0);
  // ...but mass concentrates in the high-envelope half. For amplitude
  // 0.8 the half-period means are 1 +- 2*0.8/pi, i.e. ~3:1.
  const double ratio = static_cast<double>(peak) / trough;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(ArrivalProcessTest, HerdBurstsClusterOnTheInterval) {
  ArrivalParams params;
  params.kind = ArrivalCurveKind::kHerd;
  params.rate = 100.0;
  params.herd_background_fraction = 0.5;
  params.herd_interval = 10.0;
  params.herd_spread = 0.05;
  ArrivalProcess arrivals(params, 53);
  int in_burst_window = 0;
  int total = 0;
  double prev = 0.0;
  double t = 0.0;
  const double horizon = 200.0;  // 20 bursts
  while ((t = arrivals.Next()) < horizon) {
    EXPECT_GE(t, prev);  // never runs backwards, even across bursts
    prev = t;
    ++total;
    const double phase = std::fmod(t, 10.0);
    if (phase < 0.05) {
      ++in_burst_window;
    }
  }
  // Mean rate honoured; the burst half of the traffic lands in windows
  // covering 0.5% of the timeline.
  EXPECT_NEAR(total / horizon, 100.0, 6.0);
  const double burst_share = static_cast<double>(in_burst_window) / total;
  EXPECT_GT(burst_share, 0.40);
}

// --- determinism and dispersion ---------------------------------------

TEST(WorkloadDeterminismTest, SameSeedReplaysIdenticalSchedule) {
  for (ArrivalCurveKind kind :
       {ArrivalCurveKind::kConstant, ArrivalCurveKind::kPoisson,
        ArrivalCurveKind::kDiurnal, ArrivalCurveKind::kHerd}) {
    ArrivalParams params;
    params.kind = kind;
    params.rate = 80.0;
    ArrivalProcess a(params, 97);
    ArrivalProcess b(params, 97);
    for (int i = 0; i < 5000; ++i) {
      // Byte-identical, not merely close: the schedule is a pure
      // function of (params, seed).
      ASSERT_EQ(a.Next(), b.Next())
          << ArrivalCurveKindName(kind) << " arrival " << i;
    }
  }
  KeyDistParams zipf;
  zipf.kind = KeyDistKind::kZipfian;
  KeyDistribution da(zipf, 500);
  KeyDistribution db(zipf, 500);
  Rng ra(7);
  Rng rb(7);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(da.Pick(&ra), db.Pick(&rb));
  }
}

TEST(WorkloadDeterminismTest, DistinctSeedsDisperse) {
  // Mirrors retry_test's jitter-dispersion idiom: across seeds the
  // schedules must actually differ (no accidental seed collapse).
  std::set<uint64_t> first_arrival_bits;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    ArrivalParams params;
    params.kind = ArrivalCurveKind::kPoisson;
    params.rate = 100.0;
    ArrivalProcess arrivals(params, seed);
    const double first = arrivals.Next();
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(first));
    std::memcpy(&bits, &first, sizeof(bits));
    first_arrival_bits.insert(bits);
  }
  EXPECT_GE(first_arrival_bits.size(), 3u);
}

// --- transaction mixes ------------------------------------------------

TEST(TxnMixTest, PickHonoursWeights) {
  const MixParams params = WriteHeavyMix();  // 10 / 60 / 10 / 20
  TxnMix mix(params);
  Rng rng(61);
  constexpr int kDraws = 100000;
  int counts[kTxnShapeCount] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<int>(mix.Pick(&rng))];
  }
  const double expected[] = {0.10, 0.60, 0.10, 0.20};
  for (int s = 0; s < kTxnShapeCount; ++s) {
    EXPECT_NEAR(static_cast<double>(counts[s]) / kDraws, expected[s], 0.01)
        << TxnShapeKindName(static_cast<TxnShapeKind>(s));
  }
}

TEST(TxnMixTest, ShapeDeltasFollowTheConservationContract) {
  SimCluster::Options options;
  options.site_count = 3;
  SimCluster cluster(options);
  Keyspace keyspace(3, 60);
  keyspace.LoadAll(&cluster, 100);
  KeyDistribution dist(KeyDistParams{}, keyspace.keys());
  Rng rng(71);
  for (int i = 0; i < 200; ++i) {
    for (TxnShapeKind shape :
         {TxnShapeKind::kReadOnly, TxnShapeKind::kTransfer,
          TxnShapeKind::kIncrement, TxnShapeKind::kMultiTransfer}) {
      int64_t delta = -1;
      MakeShapeSpec(shape, keyspace, cluster, dist, &rng, &delta);
      if (shape == TxnShapeKind::kIncrement) {
        // Increments grow the total balance by the written amount...
        EXPECT_GT(delta, 0);
        EXPECT_LE(delta, 5);
      } else {
        // ...every other shape conserves it exactly.
        EXPECT_EQ(delta, 0) << TxnShapeKindName(shape);
      }
    }
  }
}

}  // namespace
}  // namespace polyvalue
