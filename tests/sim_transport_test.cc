// Unit tests for the deterministic simulated transport and FaultPlan.
#include "src/net/sim_transport.h"

#include <gtest/gtest.h>

#include <vector>

namespace polyvalue {
namespace {

const SiteId kA(1);
const SiteId kB(2);
const SiteId kC(3);

struct Fixture {
  Simulator sim;
  FaultPlan faults;
  Rng rng{1};
  SimTransport transport{&sim, &faults, &rng};
  std::vector<Packet> received_a;
  std::vector<Packet> received_b;

  Fixture() {
    EXPECT_TRUE(transport
                    .Register(kA, [this](Packet p) {
                      received_a.push_back(std::move(p));
                    })
                    .ok());
    EXPECT_TRUE(transport
                    .Register(kB, [this](Packet p) {
                      received_b.push_back(std::move(p));
                    })
                    .ok());
  }
};

TEST(SimTransportTest, DeliversWithDelay) {
  Fixture f;
  f.faults.SetDelayRange(0.5, 0.5);
  EXPECT_TRUE(f.transport.Send({kA, kB, "hello"}).ok());
  EXPECT_TRUE(f.received_b.empty());
  f.sim.RunAll();
  ASSERT_EQ(f.received_b.size(), 1u);
  EXPECT_EQ(f.received_b[0].payload, "hello");
  EXPECT_EQ(f.received_b[0].from, kA);
  EXPECT_DOUBLE_EQ(f.sim.now(), 0.5);
}

TEST(SimTransportTest, SelfSendWorks) {
  Fixture f;
  EXPECT_TRUE(f.transport.Send({kA, kA, "loop"}).ok());
  f.sim.RunAll();
  ASSERT_EQ(f.received_a.size(), 1u);
}

TEST(SimTransportTest, UnregisteredSenderRejected) {
  Fixture f;
  EXPECT_FALSE(f.transport.Send({kC, kB, "x"}).ok());
}

TEST(SimTransportTest, UnknownReceiverSilentlyDropped) {
  Fixture f;
  EXPECT_TRUE(f.transport.Send({kA, kC, "x"}).ok());
  f.sim.RunAll();
  EXPECT_EQ(f.transport.packets_delivered(), 0u);
}

TEST(SimTransportTest, DuplicateRegisterRejected) {
  Fixture f;
  EXPECT_EQ(f.transport.Register(kA, [](Packet) {}).code(),
            StatusCode::kAlreadyExists);
}

TEST(SimTransportTest, UnregisterStopsDelivery) {
  Fixture f;
  EXPECT_TRUE(f.transport.Send({kA, kB, "1"}).ok());
  EXPECT_TRUE(f.transport.Unregister(kB).ok());
  f.sim.RunAll();
  EXPECT_TRUE(f.received_b.empty());
  EXPECT_FALSE(f.transport.Unregister(kB).ok());
}

TEST(SimTransportTest, DownSiteNeitherSendsNorReceives) {
  Fixture f;
  f.faults.SetSiteDown(kB, true);
  EXPECT_TRUE(f.transport.Send({kA, kB, "to-down"}).ok());
  EXPECT_TRUE(f.transport.Send({kB, kA, "from-down"}).ok());
  f.sim.RunAll();
  EXPECT_TRUE(f.received_b.empty());
  EXPECT_TRUE(f.received_a.empty());
  f.faults.SetSiteDown(kB, false);
  EXPECT_TRUE(f.transport.Send({kA, kB, "after-up"}).ok());
  f.sim.RunAll();
  EXPECT_EQ(f.received_b.size(), 1u);
}

TEST(SimTransportTest, CrashWhilePacketInFlightDropsIt) {
  Fixture f;
  f.faults.SetDelayRange(1.0, 1.0);
  EXPECT_TRUE(f.transport.Send({kA, kB, "in-flight"}).ok());
  // Receiver crashes at t=0.5, before delivery at t=1.0.
  f.sim.At(0.5, [&f] { f.faults.SetSiteDown(kB, true); });
  f.sim.RunAll();
  EXPECT_TRUE(f.received_b.empty());
}

TEST(SimTransportTest, LinkCutBlocksBothDirections) {
  Fixture f;
  f.faults.SetLinkDown(kA, kB, true);
  EXPECT_TRUE(f.transport.Send({kA, kB, "x"}).ok());
  EXPECT_TRUE(f.transport.Send({kB, kA, "y"}).ok());
  f.sim.RunAll();
  EXPECT_TRUE(f.received_a.empty());
  EXPECT_TRUE(f.received_b.empty());
  f.faults.SetLinkDown(kA, kB, false);
  EXPECT_TRUE(f.transport.Send({kA, kB, "z"}).ok());
  f.sim.RunAll();
  EXPECT_EQ(f.received_b.size(), 1u);
}

TEST(SimTransportTest, PartitionCutsCrossTraffic) {
  Fixture f;
  Rng rng2(2);
  std::vector<Packet> received_c;
  EXPECT_TRUE(f.transport
                  .Register(kC,
                            [&received_c](Packet p) {
                              received_c.push_back(std::move(p));
                            })
                  .ok());
  f.faults.Partition({kA}, {kB, kC});
  EXPECT_TRUE(f.transport.Send({kA, kB, "cross"}).ok());
  EXPECT_TRUE(f.transport.Send({kB, kC, "same-side"}).ok());
  f.sim.RunAll();
  EXPECT_TRUE(f.received_b.empty());
  EXPECT_EQ(received_c.size(), 1u);
  f.faults.HealLinks();
  EXPECT_TRUE(f.transport.Send({kA, kB, "healed"}).ok());
  f.sim.RunAll();
  EXPECT_EQ(f.received_b.size(), 1u);
}

TEST(SimTransportTest, RandomDropProbability) {
  Fixture f;
  f.faults.SetDropProbability(0.5);
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(f.transport.Send({kA, kB, "p"}).ok());
  }
  f.sim.RunAll();
  EXPECT_GT(f.received_b.size(), n * 0.4);
  EXPECT_LT(f.received_b.size(), n * 0.6);
  EXPECT_EQ(f.transport.packets_sent(), static_cast<uint64_t>(n));
  EXPECT_EQ(f.transport.packets_dropped(),
            n - f.received_b.size());
}

TEST(SimTransportTest, FifoPerLinkWithConstantDelay) {
  Fixture f;
  f.faults.SetDelayRange(0.01, 0.01);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(f.transport.Send({kA, kB, std::to_string(i)}).ok());
  }
  f.sim.RunAll();
  ASSERT_EQ(f.received_b.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(f.received_b[i].payload, std::to_string(i));
  }
}

TEST(SimTransportTest, ByteCounters) {
  Fixture f;
  EXPECT_TRUE(f.transport.Send({kA, kB, "12345"}).ok());
  EXPECT_EQ(f.transport.bytes_sent(), 5u);
}

}  // namespace
}  // namespace polyvalue
