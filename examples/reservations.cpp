// §5 worked example: an airline reservation system.
//
// "If the number of reservations granted is a polyvalue, then a new
//  reservation can be granted so long as the largest value in that
//  polyvalue is less than the number of available seats."
//
// A booking desk keeps selling seats while the seat counter is uncertain
// (a failure stranded an earlier booking): every alternative agrees
// there is room, so each sale gets an immediate, definite YES. Only when
// the plane approaches full do answers turn uncertain — and the desk can
// then choose to wait or to quote the uncertainty to the customer
// (§3.4's two options).
//
// Build & run:  ./build/examples/reservations
#include <cstdio>

#include "src/system/cluster.h"

using namespace polyvalue;

namespace {

constexpr int64_t kCapacity = 100;

TxnSpec BookSeat(SiteId counter_site) {
  TxnSpec spec;
  spec.ReadWrite("flight42/seats_taken", counter_site);
  spec.Logic([](const TxnReads& reads) {
    const int64_t taken = reads.IntAt("flight42/seats_taken");
    if (taken >= kCapacity) {
      TxnEffect sold_out;
      sold_out.output = Value::Bool(false);
      return sold_out;
    }
    TxnEffect grant;
    grant.writes["flight42/seats_taken"] = Value::Int(taken + 1);
    grant.output = Value::Bool(true);
    return grant;
  });
  return spec;
}

}  // namespace

int main() {
  SimCluster::Options options;
  options.site_count = 3;
  options.engine.wait_timeout = 0.05;
  options.engine.inquiry_interval = 0.2;
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  SimCluster cluster(options);
  const SiteId counter_site = cluster.site_id(1);

  cluster.Load(1, "flight42/seats_taken", Value::Int(95));
  std::printf("flight 42: capacity %lld, seats taken 95\n\n",
              static_cast<long long>(kCapacity));

  // A booking is stranded by a coordinator failure: the counter becomes
  // the polyvalue {96 if T; 95 if ¬T}.
  std::printf("a booking gets stranded by a site failure...\n");
  cluster.Submit(0, BookSeat(counter_site), [](const TxnResult&) {});
  cluster.sim().At(0.035, [&cluster] { cluster.CrashSite(0); });
  cluster.RunFor(0.3);
  std::printf("seat counter is now: %s\n\n",
              cluster.site(1)
                  .Peek("flight42/seats_taken")
                  .value()
                  .ToString()
                  .c_str());

  // The desk keeps selling.
  std::printf("%-6s %-34s %s\n", "sale", "counter before", "answer");
  for (int sale = 1; sale <= 6; ++sale) {
    const std::string before =
        cluster.site(1).Peek("flight42/seats_taken").value().ToString();
    const auto result = cluster.SubmitAndRun(2, BookSeat(counter_site));
    cluster.RunFor(0.2);
    std::string answer;
    if (!result.has_value() || !result->committed()) {
      answer = "UNAVAILABLE";
    } else if (result->output.is_certain()) {
      answer = result->output.certain_value().bool_value()
                   ? "GRANTED (definite)"
                   : "SOLD OUT (definite)";
    } else {
      answer = "UNCERTAIN: " + result->output.ToString();
    }
    std::printf("%-6d %-34s %s\n", sale, before.c_str(), answer.c_str());
  }

  // Recover the failed site: the stranded booking resolves (presumed
  // abort) and the counter collapses to a simple value.
  std::printf("\nrecovering the failed site...\n");
  cluster.RecoverSite(0);
  cluster.RunFor(2.0);
  std::printf("seat counter after recovery: %s (certain again)\n",
              cluster.site(1)
                  .Peek("flight42/seats_taken")
                  .value()
                  .ToString()
                  .c_str());
  return 0;
}
