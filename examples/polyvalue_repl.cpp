// Interactive cluster REPL: drive a simulated polyvalue cluster by hand.
//
//   $ ./build/examples/polyvalue_repl [site_count]
//   poly> load 1 alice 100          # put item on site 1
//   poly> transfer 0 alice bob 30   # coordinator 0 moves 30 alice->bob
//   poly> crash 0                   # crash a site
//   poly> run 0.5                   # advance virtual time 0.5 s
//   poly> peek alice                # show an item (polyvalues and all)
//   poly> stats                     # per-site summary
//   poly> await alice                # §3.4: print alice once certain
//   poly> recover 0
//   poly> help / quit
//
// Reads commands from stdin; a scripted session can be piped in (the
// repository's tests do exactly that).
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/system/cluster.h"

using namespace polyvalue;

namespace {

class Repl {
 public:
  explicit Repl(size_t sites) : cluster_(MakeOptions(sites)) {}

  static SimCluster::Options MakeOptions(size_t sites) {
    SimCluster::Options options;
    options.site_count = sites;
    options.engine.wait_timeout = 0.05;
    options.engine.inquiry_interval = 0.2;
    options.min_delay = 0.01;
    options.max_delay = 0.01;
    return options;
  }

  int Run(std::istream& in, bool interactive) {
    std::string line;
    while (true) {
      if (interactive) {
        std::printf("poly[t=%.2fs]> ", cluster_.sim().now());
        std::fflush(stdout);
      }
      if (!std::getline(in, line)) {
        break;
      }
      if (!Dispatch(line)) {
        break;
      }
    }
    return 0;
  }

 private:
  bool Dispatch(const std::string& line) {
    std::istringstream iss(line);
    std::string cmd;
    if (!(iss >> cmd) || cmd[0] == '#') {
      return true;
    }
    if (cmd == "quit" || cmd == "exit") {
      return false;
    }
    if (cmd == "help") {
      Help();
    } else if (cmd == "load") {
      size_t site;
      std::string key;
      int64_t value;
      if (iss >> site >> key >> value && site < cluster_.size()) {
        cluster_.Load(site, key, Value::Int(value));
        owner_[key] = site;
        std::printf("loaded %s=%lld at site %zu\n", key.c_str(),
                    static_cast<long long>(value), site);
      } else {
        std::printf("usage: load <site> <key> <int>\n");
      }
    } else if (cmd == "peek") {
      std::string key;
      if (!(iss >> key)) {
        std::printf("usage: peek <key>\n");
        return true;
      }
      auto it = owner_.find(key);
      if (it == owner_.end()) {
        std::printf("unknown item '%s'\n", key.c_str());
        return true;
      }
      const auto value = cluster_.site(it->second).Peek(key);
      std::printf("%s = %s\n", key.c_str(),
                  value.ok() ? value.value().ToString().c_str()
                             : value.status().ToString().c_str());
    } else if (cmd == "await") {
      std::string key;
      if (!(iss >> key) || !owner_.count(key)) {
        std::printf("usage: await <key>\n");
        return true;
      }
      Site& site = cluster_.site(owner_[key]);
      const auto value = site.Peek(key);
      if (!value.ok()) {
        std::printf("%s\n", value.status().ToString().c_str());
        return true;
      }
      site.AwaitCertain(value.value(), [key](const Value& v) {
        std::printf("  [await %s -> %s]\n", key.c_str(),
                    v.ToString().c_str());
      });
      if (!value.value().is_certain()) {
        std::printf("withheld until its transactions resolve (§3.4); "
                    "'run' + 'recover' to trigger\n");
      }
    } else if (cmd == "transfer") {
      size_t coordinator;
      std::string from, to;
      int64_t amount;
      if (!(iss >> coordinator >> from >> to >> amount) ||
          coordinator >= cluster_.size() || !owner_.count(from) ||
          !owner_.count(to)) {
        std::printf("usage: transfer <coord_site> <from> <to> <amount>\n");
        return true;
      }
      TxnSpec spec;
      spec.ReadWrite(from, cluster_.site_id(owner_[from]));
      spec.ReadWrite(to, cluster_.site_id(owner_[to]));
      spec.Logic([from, to, amount](const TxnReads& reads) {
        const int64_t have = reads.IntAt(from);
        if (have < amount) {
          return TxnEffect::Abort("insufficient funds");
        }
        TxnEffect e;
        e.writes[from] = Value::Int(have - amount);
        e.writes[to] = Value::Int(reads.IntAt(to) + amount);
        return e;
      });
      const TxnId txn = cluster_.Submit(
          coordinator, std::move(spec), [](const TxnResult& r) {
            std::printf("  [%s %s%s]\n", ToString(r.id).c_str(),
                        r.committed() ? "committed" : "aborted",
                        r.abort_reason.empty()
                            ? ""
                            : (": " + r.abort_reason).c_str());
          });
      std::printf("submitted %s (run time to see it settle)\n",
                  ToString(txn).c_str());
    } else if (cmd == "run") {
      double seconds = 1.0;
      iss >> seconds;
      cluster_.RunFor(seconds);
      std::printf("advanced to t=%.2fs\n", cluster_.sim().now());
    } else if (cmd == "crash") {
      size_t site;
      if (iss >> site && site < cluster_.size()) {
        cluster_.CrashSite(site);
        std::printf("site %zu down\n", site);
      }
    } else if (cmd == "recover") {
      size_t site;
      if (iss >> site && site < cluster_.size()) {
        cluster_.RecoverSite(site);
        std::printf("site %zu up\n", site);
      }
    } else if (cmd == "stats") {
      for (size_t s = 0; s < cluster_.size(); ++s) {
        const Site::Stats stats = cluster_.site(s).GetStats();
        std::printf(
            "site %zu%s: items=%zu uncertain=%zu locks=%zu tracked=%zu "
            "committed=%llu aborted=%llu poly-installs=%llu\n", s,
            cluster_.site(s).crashed() ? " (DOWN)" : "", stats.items,
            stats.uncertain_items, stats.locked_items,
            stats.tracked_transactions,
            static_cast<unsigned long long>(stats.engine.txns_committed),
            static_cast<unsigned long long>(stats.engine.txns_aborted),
            static_cast<unsigned long long>(
                stats.engine.polyvalue_installs));
      }
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }

  void Help() {
    std::printf(
        "commands:\n"
        "  load <site> <key> <int>            seed an item\n"
        "  transfer <coord> <from> <to> <amt> submit a transfer\n"
        "  peek <key>                         show an item's (poly)value\n"
        "  run [seconds]                      advance virtual time\n"
        "  await <key>                        deliver value once certain\n"
        "  crash <site> / recover <site>      failure injection\n"
        "  stats                              per-site summary\n"
        "  quit\n");
  }

  SimCluster cluster_;
  std::unordered_map<std::string, size_t> owner_;
};

}  // namespace

int main(int argc, char** argv) {
  const size_t sites = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  Repl repl(sites == 0 ? 3 : sites);
  const bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("polyvalue cluster REPL — %zu sites (try 'help')\n",
                sites);
  }
  return repl.Run(std::cin, interactive);
}
