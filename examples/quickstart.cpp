// Quickstart: the polyvalue library in one file.
//
//   1. build a 3-site simulated cluster;
//   2. run an ordinary distributed transfer (two-phase commit);
//   3. crash the coordinator in the in-doubt window and watch the
//      participants install POLYVALUES instead of blocking;
//   4. keep transacting against the uncertain items;
//   5. recover the failed site and watch the uncertainty drain away.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/system/cluster.h"

using namespace polyvalue;

namespace {

TxnSpec Transfer(const ItemKey& from, SiteId from_site, const ItemKey& to,
                 SiteId to_site, int64_t amount) {
  TxnSpec spec;
  spec.ReadWrite(from, from_site);
  spec.ReadWrite(to, to_site);
  spec.Logic([from, to, amount](const TxnReads& reads) {
    const int64_t have = reads.IntAt(from);
    if (have < amount) {
      return TxnEffect::Abort("insufficient funds");
    }
    TxnEffect e;
    e.writes[from] = Value::Int(have - amount);
    e.writes[to] = Value::Int(reads.IntAt(to) + amount);
    e.output = Value::Bool(true);
    return e;
  });
  return spec;
}

void Show(SimCluster& cluster, const char* when) {
  std::printf("%s\n", when);
  std::printf("  alice = %s\n",
              cluster.site(1).Peek("alice").value().ToString().c_str());
  std::printf("  bob   = %s\n",
              cluster.site(2).Peek("bob").value().ToString().c_str());
}

}  // namespace

int main() {
  // --- 1. a three-site cluster on the deterministic simulator ---------
  SimCluster::Options options;
  options.site_count = 3;
  options.engine.wait_timeout = 0.05;      // in-doubt window: 50 ms
  options.engine.inquiry_interval = 0.2;   // outcome polling: 200 ms
  options.min_delay = 0.01;                // 10 ms links
  options.max_delay = 0.01;
  SimCluster cluster(options);

  cluster.Load(1, "alice", Value::Int(100));  // alice lives at site 1
  cluster.Load(2, "bob", Value::Int(50));     // bob lives at site 2
  Show(cluster, "initial state:");

  // --- 2. a normal distributed transfer -------------------------------
  auto result = cluster.SubmitAndRun(
      0, Transfer("alice", cluster.site_id(1), "bob", cluster.site_id(2),
                  20));
  cluster.RunFor(0.5);
  std::printf("\ntransfer #1 (20): %s\n",
              result->committed() ? "COMMITTED" : "ABORTED");
  Show(cluster, "after a clean commit:");

  // --- 3. strand a transfer: crash the coordinator mid-commit ---------
  std::printf("\nsubmitting transfer #2 (30) and crashing its coordinator "
              "in the in-doubt window...\n");
  cluster.Submit(0,
                 Transfer("alice", cluster.site_id(1), "bob",
                          cluster.site_id(2), 30),
                 [](const TxnResult&) {});
  cluster.sim().At(cluster.sim().now() + 0.035,
                   [&cluster] { cluster.CrashSite(0); });
  cluster.RunFor(0.3);
  Show(cluster, "after the failure (polyvalues installed, locks FREE):");

  // --- 4. the uncertain items remain fully usable ---------------------
  // A read-only query: "can alice afford 40 under every alternative?"
  TxnSpec query;
  query.Read("alice", cluster.site_id(1));
  query.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.output = Value::Bool(reads.IntAt("alice") >= 40);
    return e;
  });
  result = cluster.SubmitAndRun(2, std::move(query));
  std::printf("\nquery 'alice >= 40?' during the outage -> %s (certain "
              "despite the uncertainty: every alternative agrees)\n",
              result->output.ToString().c_str());

  // Another transfer through the uncertain account — a polytransaction.
  result = cluster.SubmitAndRun(
      2, Transfer("alice", cluster.site_id(1), "bob", cluster.site_id(2),
                  10));
  cluster.RunFor(0.3);
  std::printf("transfer #3 (10) during the outage: %s\n",
              result->committed() ? "COMMITTED (as a polytransaction)"
                                  : "ABORTED");
  Show(cluster, "uncertainty propagated through new work:");

  // --- 5. recovery drains the uncertainty -----------------------------
  std::printf("\nrecovering the crashed coordinator...\n");
  cluster.RecoverSite(0);
  cluster.RunFor(2.0);
  Show(cluster, "after recovery (transfer #2 resolved by presumed abort):");
  std::printf("\nuncertain items remaining: %zu — every polyvalue was "
              "reduced to a simple value.\n",
              cluster.TotalUncertainItems());
  return 0;
}
