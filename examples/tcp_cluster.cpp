// Running the full stack over real TCP sockets.
//
// Three sites, each with its own epoll-driven loopback endpoint, a
// write-ahead log on disk, and the same engine the simulator drives —
// demonstrating that the protocol implementation is a real networked
// system, not simulator-only code. Performs a distributed transfer, then
// restarts one site from its WAL and shows the data survived.
//
// Build & run:  ./build/examples/tcp_cluster
#include <chrono>
#include <cstdio>
#include <thread>

#include "src/net/tcp_transport.h"
#include "src/system/site.h"

using namespace polyvalue;

int main() {
  TcpTransport transport;
  ThreadScheduler scheduler;

  const std::string wal_dir = "/tmp/polyvalue_tcp_demo";
  (void)std::system(("rm -rf " + wal_dir + " && mkdir -p " + wal_dir).c_str());

  auto make_site = [&](int index) {
    Site::Options options;
    options.engine.prepare_timeout = 2.0;
    options.engine.ready_timeout = 2.0;
    options.engine.wait_timeout = 0.5;
    options.engine.inquiry_interval = 0.2;
    options.wal_path = wal_dir + "/site" + std::to_string(index) + ".wal";
    return std::make_unique<Site>(SiteId(index), &transport, &scheduler,
                                  options);
  };

  auto s1 = make_site(1);
  auto s2 = make_site(2);
  auto s3 = make_site(3);
  for (Site* site : {s1.get(), s2.get(), s3.get()}) {
    const Status started = site->Start();
    if (!started.ok()) {
      std::printf("site failed to start: %s\n", started.ToString().c_str());
      return 1;
    }
  }
  std::printf("three sites listening on 127.0.0.1 ports %u / %u / %u\n",
              transport.PortOf(SiteId(1)), transport.PortOf(SiteId(2)),
              transport.PortOf(SiteId(3)));

  // Seed data durably (through transactions so the WAL records it).
  auto run = [&](Site* coordinator, TxnSpec spec) {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<TxnResult> result;
    coordinator->Submit(std::move(spec), [&](const TxnResult& r) {
      std::lock_guard<std::mutex> lock(mu);
      result = r;
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(10),
                [&result] { return result.has_value(); });
    return result;
  };

  TxnSpec seed;
  seed.Write("alice", SiteId(2));
  seed.Write("bob", SiteId(3));
  seed.Logic([](const TxnReads&) {
    TxnEffect e;
    e.writes["alice"] = Value::Int(100);
    e.writes["bob"] = Value::Int(50);
    return e;
  });
  auto seeded = run(s1.get(), std::move(seed));
  std::printf("seeded accounts: %s\n",
              seeded.has_value() && seeded->committed() ? "ok" : "FAILED");

  TxnSpec transfer;
  transfer.ReadWrite("alice", SiteId(2));
  transfer.ReadWrite("bob", SiteId(3));
  transfer.Logic([](const TxnReads& reads) {
    TxnEffect e;
    e.writes["alice"] = Value::Int(reads.IntAt("alice") - 30);
    e.writes["bob"] = Value::Int(reads.IntAt("bob") + 30);
    return e;
  });
  auto moved = run(s1.get(), std::move(transfer));
  std::printf("transfer over TCP: %s\n",
              moved.has_value() && moved->committed() ? "COMMITTED"
                                                      : "FAILED");
  // Allow COMPLETEs to land.
  for (int i = 0; i < 100; ++i) {
    const auto alice = s2->Peek("alice");
    if (alice.ok() && alice.value().is_certain() &&
        alice.value().certain_value() == Value::Int(70)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::printf("alice = %s, bob = %s\n",
              s2->Peek("alice").value().ToString().c_str(),
              s3->Peek("bob").value().ToString().c_str());

  // Restart site 2 from its WAL: the balance must survive.
  std::printf("\nrestarting site 2 from its write-ahead log...\n");
  s2.reset();
  s2 = make_site(2);
  if (!s2->Start().ok()) {
    std::printf("restart failed\n");
    return 1;
  }
  s2->engine().Recover();
  std::printf("alice after restart = %s (recovered from %s)\n",
              s2->Peek("alice").value().ToString().c_str(),
              (wal_dir + "/site2.wal").c_str());

  std::printf("\ntotal frames over TCP this run: %llu sent, %llu "
              "delivered\n",
              static_cast<unsigned long long>(transport.packets_sent()),
              static_cast<unsigned long long>(transport.packets_delivered()));
  return 0;
}
