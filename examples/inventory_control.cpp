// §5 worked example: inventory / process control.
//
// "Again, real time operation is important; however, the exact values of
//  the items in the database are frequently not needed for the important
//  real time effects."
//
// A warehouse controller reorders stock when inventory drops below a
// threshold. Uncertain inventory counts (stranded receipts/shipments)
// still drive correct real-time decisions: the controller acts when
// every alternative is below threshold, stays calm when every
// alternative is above, and uses the probability-weighted expectation
// (commit probabilities from operational statistics) for the grey zone —
// an extension built on PolyValue::ExpectedValue.
//
// This example runs on the THREADED runtime (real concurrency, in-memory
// transport) rather than the simulator.
//
// Build & run:  ./build/examples/inventory_control
#include <chrono>
#include <cstdio>
#include <thread>

#include "src/system/cluster.h"

using namespace polyvalue;

namespace {

constexpr int64_t kReorderThreshold = 40;

TxnSpec AdjustStock(const ItemKey& sku, SiteId site, int64_t delta) {
  TxnSpec spec;
  spec.ReadWrite(sku, site);
  spec.Logic([sku, delta](const TxnReads& reads) {
    TxnEffect e;
    e.writes[sku] = Value::Int(reads.IntAt(sku) + delta);
    return e;
  });
  return spec;
}

const char* Decide(const PolyValue& stock, TxnId stranded) {
  // Definite cases first: every alternative on the same side.
  const bool all_low = stock.ForAllValues([](const Value& v) {
    return v.int_value() < kReorderThreshold;
  });
  const bool all_high = stock.ForAllValues([](const Value& v) {
    return v.int_value() >= kReorderThreshold;
  });
  if (all_low) {
    return "REORDER (definite)";
  }
  if (all_high) {
    return "stock OK (definite)";
  }
  // Grey zone: weight by the stranded transaction's commit probability
  // (operations data: most in-doubt transactions eventually commit).
  const double expected =
      stock.ExpectedValue({{stranded, 0.9}}).value_or(0.0);
  return expected < kReorderThreshold ? "REORDER (expected-value)"
                                      : "hold (expected-value)";
}

}  // namespace

int main() {
  ThreadCluster::Options options;
  options.site_count = 3;
  options.engine.prepare_timeout = 1.0;
  options.engine.ready_timeout = 1.0;
  options.engine.wait_timeout = 0.2;
  options.engine.inquiry_interval = 0.1;
  ThreadCluster cluster(options);
  const SiteId warehouse = cluster.site_id(1);

  cluster.Load(1, "sku/widget", Value::Int(60));
  std::printf("widget stock: 60 (reorder threshold %lld)\n\n",
              static_cast<long long>(kReorderThreshold));

  // Normal operation: shipments drain stock, threaded clients in parallel.
  std::vector<std::thread> shipments;
  for (int i = 0; i < 4; ++i) {
    shipments.emplace_back([&cluster, warehouse] {
      for (int n = 0; n < 2; ++n) {
        (void)cluster.SubmitAndWait(2, AdjustStock("sku/widget", warehouse,
                                                   -2));
      }
    });
  }
  for (auto& t : shipments) {
    t.join();
  }
  std::printf("after 8 concurrent shipments of 2: stock = %s\n\n",
              cluster.site(1).Peek("sku/widget").value().ToString().c_str());

  // A receipt of 25 units gets stranded in the in-doubt window: submit it
  // at site 0 and let the wait timeout fire by "losing" the coordinator.
  // On the threaded runtime we emulate the loss by simply crashing the
  // coordinator's engine mid-flight.
  std::printf("a +25 receipt gets stranded by a coordinator failure...\n");
  cluster.Submit(0, AdjustStock("sku/widget", warehouse, 25),
                 [](const TxnResult&) {});
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  cluster.site(0).Crash();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  PolyValue stock = cluster.site(1).Peek("sku/widget").value();
  std::printf("stock is now: %s\n\n", stock.ToString().c_str());

  const std::vector<TxnId> deps = stock.Dependencies();
  const TxnId stranded = deps.empty() ? TxnId(0) : deps.front();

  // The controller keeps making real-time decisions against the
  // uncertain count while more shipments leave.
  for (int round = 1; round <= 4; ++round) {
    const auto result = cluster.SubmitAndWait(
        2, AdjustStock("sku/widget", warehouse, -5));
    if (!result.has_value() || !result->committed()) {
      std::printf("round %d: shipment failed (%s)\n", round,
                  result.has_value() ? result->abort_reason.c_str()
                                     : "timeout");
      continue;
    }
    stock = cluster.site(1).Peek("sku/widget").value();
    std::printf("round %d: shipped 5, stock = %-28s -> %s\n", round,
                stock.ToString().c_str(), Decide(stock, stranded));
  }

  // Recovery: the stranded receipt resolves (presumed abort) and the
  // count becomes definite again.
  std::printf("\nrecovering the failed site...\n");
  cluster.site(0).Recover();
  for (int i = 0; i < 100; ++i) {
    if (cluster.site(1).Peek("sku/widget").value().is_certain()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::printf("final stock: %s\n",
              cluster.site(1).Peek("sku/widget").value().ToString().c_str());
  return 0;
}
