// Command-line driver for the §4.2 polyvalue-count simulation.
//
// Explore the parameter space beyond the paper's tables:
//
//   polysim_cli --u=10 --f=0.01 --i=10000 --r=0.01 --y=0 --d=1 \
//               --warmup=2000 --measure=10000 --seed=1 [--series]
//
// Prints the simulated steady-state polyvalue count next to the model
// prediction; --series additionally prints a P(t) time series (useful
// for plotting the transient).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/model/analytic.h"
#include "src/sim/poly_sim.h"

using namespace polyvalue;

namespace {

bool ParseFlag(const char* arg, const char* name, double* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  *out = std::atof(arg + prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double u = 10, f = 0.01, i = 10000, r = 0.01, y = 0, d = 1;
  double warmup = 2000, measure = 10000, seed = 1;
  bool series = false;
  for (int k = 1; k < argc; ++k) {
    if (ParseFlag(argv[k], "u", &u) || ParseFlag(argv[k], "f", &f) ||
        ParseFlag(argv[k], "i", &i) || ParseFlag(argv[k], "r", &r) ||
        ParseFlag(argv[k], "y", &y) || ParseFlag(argv[k], "d", &d) ||
        ParseFlag(argv[k], "warmup", &warmup) ||
        ParseFlag(argv[k], "measure", &measure) ||
        ParseFlag(argv[k], "seed", &seed)) {
      continue;
    }
    if (std::strcmp(argv[k], "--series") == 0) {
      series = true;
      continue;
    }
    std::fprintf(stderr, "unknown flag %s\n", argv[k]);
    return 2;
  }

  ModelParams m;
  m.updates_per_second = u;
  m.failure_probability = f;
  m.items = i;
  m.recovery_rate = r;
  m.overwrite_probability = y;
  m.dependency_degree = d;
  const Prediction pred = Predict(m);

  PolySimParams p;
  p.updates_per_second = u;
  p.failure_probability = f;
  p.items = static_cast<uint64_t>(i);
  p.recovery_rate = r;
  p.overwrite_probability = y;
  p.dependency_degree = d;
  p.seed = static_cast<uint64_t>(seed);
  p.warmup_seconds = warmup;
  p.measure_seconds = measure;

  std::printf("parameters: %s\n", m.ToString().c_str());
  if (pred.stable) {
    std::printf("model: P = %.3f (decay rate k = %.5f /s, saturation "
                "P/I = %.5f)\n",
                pred.steady_state, pred.decay_rate, pred.saturation);
  } else {
    std::printf("model: UNSTABLE (IR + UY - UD <= 0); expect saturation "
                "behaviour\n");
  }

  if (series) {
    PolySim sim(p);
    std::printf("\n%-10s %-10s\n", "t (s)", "P(t)");
    const double horizon = warmup + measure;
    const double step = horizon / 40.0;
    for (double t = step; t <= horizon + 1e-9; t += step) {
      sim.AdvanceTo(t);
      std::printf("%-10.0f %zu\n", t, sim.CurrentPolyvalues());
    }
    sim.StartMeasurement();
    return 0;
  }

  const PolySimStats stats = RunPolySim(p);
  std::printf("sim:   P = %.3f (peak %.0f; %llu updates, %llu failures, "
              "%llu recoveries, %llu propagations, %llu overwrites)\n",
              stats.average_polyvalues, stats.peak_polyvalues,
              static_cast<unsigned long long>(stats.updates),
              static_cast<unsigned long long>(stats.failures),
              static_cast<unsigned long long>(stats.recoveries),
              static_cast<unsigned long long>(stats.propagations),
              static_cast<unsigned long long>(stats.overwrites));
  if (pred.stable && pred.steady_state > 0) {
    std::printf("sim / model = %.3f\n",
                stats.average_polyvalues / pred.steady_state);
  }
  return 0;
}
