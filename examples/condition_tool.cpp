// Condition calculator: explore the paper's condition algebra from the
// command line.
//
// Usage:
//   condition_tool 'T1·¬T2 + T3'                 # canonicalise (Blake form)
//   condition_tool 'T1&T2 + T1&!T2'              # consensus collapses to T1
//   condition_tool 'T1 + !T1'                    # tautology -> true
//   condition_tool --implies 'T1&T2' 'T1'        # implication check
//   condition_tool --disjoint 'T1' '!T1'         # disjointness check
//   condition_tool --assume T1=commit 'T1·T2 + ¬T1·T3'   # §3.3 reduction
//
// ASCII operators are accepted: & or * for AND, ! or ~ for NOT, + for OR.
#include <cstdio>
#include <cstring>
#include <string>

#include "src/condition/bdd.h"
#include "src/condition/parser.h"

using namespace polyvalue;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void Describe(const Condition& c) {
  std::printf("canonical (Blake) form : %s\n", c.ToString().c_str());
  std::printf("terms                  : %zu\n", c.terms().size());
  const std::vector<TxnId> vars = c.Variables();
  std::printf("transactions           : ");
  if (vars.empty()) {
    std::printf("(none)\n");
  } else {
    for (size_t i = 0; i < vars.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", ToString(vars[i]).c_str());
    }
    std::printf("\n");
  }
  if (!vars.empty()) {
    std::printf("satisfying outcomes    : %llu / %llu\n",
                static_cast<unsigned long long>(c.CountModels(vars)),
                static_cast<unsigned long long>(1ULL << vars.size()));
  }
  std::printf("tautology              : %s\n",
              c.IsTautology() ? "yes" : "no");
  std::printf("unsatisfiable          : %s\n", c.is_false() ? "yes" : "no");
  // Cross-check against the BDD oracle.
  BddManager bdd;
  const BddRef compiled = bdd.FromCondition(c);
  std::printf("BDD nodes              : %zu (oracle agrees: %s)\n",
              bdd.node_count() - 2,
              bdd.FromCondition(bdd.ToCondition(compiled)) == compiled
                  ? "yes"
                  : "NO — bug!");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s [--implies A B | --disjoint A B | "
                 "--assume Tn=commit|abort EXPR | EXPR]\n",
                 argv[0]);
    return 2;
  }

  const std::string mode = argv[1];
  if (mode == "--implies" || mode == "--disjoint") {
    if (argc != 4) {
      std::fprintf(stderr, "%s needs two expressions\n", mode.c_str());
      return 2;
    }
    const Result<Condition> a = ParseCondition(argv[2]);
    if (!a.ok()) {
      return Fail(a.status());
    }
    const Result<Condition> b = ParseCondition(argv[3]);
    if (!b.ok()) {
      return Fail(b.status());
    }
    if (mode == "--implies") {
      std::printf("(%s) implies (%s): %s\n", a->ToString().c_str(),
                  b->ToString().c_str(),
                  a->Implies(b.value()) ? "yes" : "no");
    } else {
      std::printf("(%s) disjoint with (%s): %s\n", a->ToString().c_str(),
                  b->ToString().c_str(),
                  a->DisjointWith(b.value()) ? "yes" : "no");
    }
    return 0;
  }

  if (mode == "--assume") {
    if (argc != 4) {
      std::fprintf(stderr, "--assume needs Tn=commit|abort and EXPR\n");
      return 2;
    }
    const std::string assignment = argv[2];
    const size_t eq = assignment.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad assignment '%s'\n", assignment.c_str());
      return 2;
    }
    const Result<Condition> var =
        ParseCondition(assignment.substr(0, eq));
    if (!var.ok() || var->Variables().size() != 1) {
      std::fprintf(stderr, "bad transaction in '%s'\n", assignment.c_str());
      return 2;
    }
    const std::string verdict = assignment.substr(eq + 1);
    const bool committed = verdict == "commit" || verdict == "true";
    if (!committed && verdict != "abort" && verdict != "false") {
      std::fprintf(stderr, "verdict must be commit|abort\n");
      return 2;
    }
    const Result<Condition> expr = ParseCondition(argv[3]);
    if (!expr.ok()) {
      return Fail(expr.status());
    }
    const Condition reduced =
        expr->Assume(var->Variables().front(), committed);
    std::printf("%s with %s %s:\n  %s\n", expr->ToString().c_str(),
                ToString(var->Variables().front()).c_str(),
                committed ? "committed" : "aborted",
                reduced.ToString().c_str());
    return 0;
  }

  const Result<Condition> c = ParseCondition(argv[1]);
  if (!c.ok()) {
    return Fail(c.status());
  }
  Describe(c.value());
  return 0;
}
