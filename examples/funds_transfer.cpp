// §5 worked example: electronic funds transfer / credit authorisation.
//
// "Such transactions depend very loosely on the state of the database in
//  that the important effect depends only on the fact that the relevant
//  accounts contain enough funds, not on exactly how much."
//
// A card network authorises purchases against an account whose balance
// is uncertain (an in-doubt debit is outstanding). Authorisations check
// the WORST-CASE balance, so customers are served promptly and the bank
// never over-extends — whichever way the stranded debit resolves.
//
// Build & run:  ./build/examples/funds_transfer
#include <cstdio>

#include "src/system/cluster.h"

using namespace polyvalue;

namespace {

TxnSpec Purchase(const ItemKey& account, SiteId site, int64_t amount) {
  TxnSpec spec;
  spec.ReadWrite(account, site);
  spec.Logic([account, amount](const TxnReads& reads) {
    const int64_t balance = reads.IntAt(account);
    if (balance < amount) {
      TxnEffect declined;
      declined.output = Value::Str("DECLINED");
      return declined;
    }
    TxnEffect approved;
    approved.writes[account] = Value::Int(balance - amount);
    approved.output = Value::Str("APPROVED");
    return approved;
  });
  return spec;
}

TxnSpec Debit(const ItemKey& account, SiteId site, int64_t amount) {
  TxnSpec spec;
  spec.ReadWrite(account, site);
  spec.Logic([account, amount](const TxnReads& reads) {
    TxnEffect e;
    e.writes[account] = Value::Int(reads.IntAt(account) - amount);
    return e;
  });
  return spec;
}

}  // namespace

int main() {
  SimCluster::Options options;
  options.site_count = 3;
  options.engine.wait_timeout = 0.05;
  options.engine.inquiry_interval = 0.2;
  options.min_delay = 0.01;
  options.max_delay = 0.01;
  SimCluster cluster(options);
  const SiteId bank = cluster.site_id(1);

  cluster.Load(1, "acct/carol", Value::Int(500));
  std::printf("carol's account: 500\n\n");

  // A 150-unit debit (say, a cheque clearing against another bank) is
  // stranded by a coordinator failure.
  std::printf("a 150-unit debit is stranded by a failure...\n");
  cluster.Submit(0, Debit("acct/carol", bank, 150), [](const TxnResult&) {});
  cluster.sim().At(0.035, [&cluster] { cluster.CrashSite(0); });
  cluster.RunFor(0.3);
  const PolyValue balance = cluster.site(1).Peek("acct/carol").value();
  std::printf("balance is now %s — worst case %s, best case %s\n\n",
              balance.ToString().c_str(),
              balance.MinPossible().value().ToString().c_str(),
              balance.MaxPossible().value().ToString().c_str());

  // Purchases keep flowing during the outage.
  struct Tx {
    const char* what;
    int64_t amount;
  };
  const Tx purchases[] = {{"coffee", 4},
                          {"groceries", 61},
                          {"bicycle", 210},
                          {"rent", 400}};
  std::printf("%-12s %-8s %-38s %s\n", "purchase", "amount",
              "balance before", "card network says");
  for (const Tx& tx : purchases) {
    const std::string before =
        cluster.site(1).Peek("acct/carol").value().ToString();
    const auto result =
        cluster.SubmitAndRun(2, Purchase("acct/carol", bank, tx.amount));
    cluster.RunFor(0.2);
    std::string verdict = "unavailable";
    if (result.has_value() && result->committed()) {
      verdict = result->output.is_certain()
                    ? result->output.certain_value().string_value()
                    : "UNCERTAIN — hold for resolution (" +
                          result->output.ToString() + ")";
    }
    std::printf("%-12s %-8lld %-38s %s\n", tx.what,
                static_cast<long long>(tx.amount), before.c_str(),
                verdict.c_str());
  }

  // Resolve: the failed coordinator returns; presumed abort cancels the
  // stranded debit and the account snaps back to a definite balance.
  std::printf("\nthe failed bank site recovers...\n");
  cluster.RecoverSite(0);
  cluster.RunFor(2.0);
  std::printf("final balance: %s (all approved purchases applied; the "
              "stranded debit aborted)\n",
              cluster.site(1).Peek("acct/carol").value().ToString().c_str());
  return 0;
}
