// Text form parser for conditions.
//
// Accepts the same grammar the printer emits, plus ASCII conveniences:
//
//   condition := 'true' | 'false' | term ('+' term)*
//   term      := literal (('·' | '&' | '*') literal)*
//   literal   := ('¬' | '!' | '~')? txn
//   txn       := 'T' digits ['.' digits]      (site.seq or raw id)
//
// Whitespace is free. Parsing canonicalises, so
// ParseCondition(c.ToString()) == c for every condition c.
#ifndef SRC_CONDITION_PARSER_H_
#define SRC_CONDITION_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/condition/condition.h"

namespace polyvalue {

Result<Condition> ParseCondition(const std::string& text);

}  // namespace polyvalue

#endif  // SRC_CONDITION_PARSER_H_
