// Boolean conditions over transaction identifiers (§3 of the paper).
//
// Every polyvalue pair ⟨v, c⟩ carries a condition c: a predicate whose
// variables are transaction identifiers, true exactly when v is the
// current value. The paper prescribes reduction to sum-of-products form
// (§3.1, simplification rule 3); Condition keeps that normal form
// canonicalised at all times:
//
//   * a Term is a conjunction of literals (T or ¬T), sorted by id, with
//     no repeated transaction (a contradictory term T·¬T is dropped at
//     construction);
//   * a Condition is a set of Terms, sorted, deduplicated, and absorbed
//     (a term that is a superset of another term's literals is redundant
//     and removed);
//   * TRUE is the single empty term; FALSE is the empty term set.
//
// Canonical SOP with absorption is not a decision procedure for
// equivalence (x + ¬x stays as two terms), so the semantic queries —
// IsTautology / Implies / EquivalentTo / DisjointWith — are answered
// exactly by Shannon expansion over the (small) variable set. The BDD
// engine in bdd.h provides an independent oracle used by the tests.
#ifndef SRC_CONDITION_CONDITION_H_
#define SRC_CONDITION_CONDITION_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"

namespace polyvalue {

// One literal: a transaction identifier, possibly negated. "T7" means
// transaction 7 committed; "¬T7" means it aborted.
struct Literal {
  TxnId txn;
  bool positive = true;

  friend bool operator==(const Literal& a, const Literal& b) {
    return a.txn == b.txn && a.positive == b.positive;
  }
  friend bool operator<(const Literal& a, const Literal& b) {
    if (a.txn != b.txn) {
      return a.txn < b.txn;
    }
    return a.positive < b.positive;
  }
};

// A conjunction of literals over distinct transactions.
class Term {
 public:
  // The empty term, i.e. TRUE.
  Term() = default;

  // Builds a term from literals. Returns a contradictory marker (see
  // is_contradiction) if some transaction appears with both polarities.
  static Term Of(std::vector<Literal> literals);

  // Singleton terms.
  static Term Committed(TxnId txn) { return Of({{txn, true}}); }
  static Term Aborted(TxnId txn) { return Of({{txn, false}}); }

  bool is_true() const { return !contradiction_ && literals_.empty(); }
  bool is_contradiction() const { return contradiction_; }
  const std::vector<Literal>& literals() const { return literals_; }
  size_t size() const { return literals_.size(); }

  // Conjunction of two terms (may be contradictory).
  static Term And(const Term& a, const Term& b);

  // Polarity of `txn` in this term, or nullopt-like: 0 = absent,
  // +1 = positive, -1 = negative.
  int PolarityOf(TxnId txn) const;

  // Substitutes an outcome for `txn`: committed=true removes a positive
  // literal / contradicts a negative one, and vice versa.
  // Returns the reduced term.
  Term Assume(TxnId txn, bool committed) const;

  // True if this term's literal set is a subset of other's (so this term
  // absorbs other: this OR other == this).
  bool Subsumes(const Term& other) const;

  // Evaluates under a complete assignment (missing variables default to
  // the map's absence meaning "don't care": only literals present in the
  // term are consulted; every one must be satisfied).
  bool Evaluate(const std::unordered_map<TxnId, bool>& outcomes) const;

  bool operator==(const Term& other) const {
    return contradiction_ == other.contradiction_ &&
           literals_ == other.literals_;
  }
  bool operator<(const Term& other) const;

  std::string ToString() const;
  size_t Hash() const;

 private:
  std::vector<Literal> literals_;  // sorted by txn id, distinct txns
  bool contradiction_ = false;
};

// Canonical sum-of-products condition.
class Condition {
 public:
  // FALSE (no terms).
  Condition() = default;

  static Condition True() { return Condition({Term()}); }
  static Condition False() { return Condition(); }

  // Atomic conditions: "T committed" / "T aborted".
  static Condition Committed(TxnId txn) {
    return Condition({Term::Committed(txn)});
  }
  static Condition Aborted(TxnId txn) {
    return Condition({Term::Aborted(txn)});
  }

  // Builds from arbitrary terms (canonicalises).
  static Condition Of(std::vector<Term> terms);

  bool is_true() const {
    return terms_.size() == 1 && terms_[0].is_true();
  }
  bool is_false() const { return terms_.empty(); }
  const std::vector<Term>& terms() const { return terms_; }

  // Structural connectives (canonicalising).
  static Condition And(const Condition& a, const Condition& b);
  static Condition Or(const Condition& a, const Condition& b);
  static Condition Not(const Condition& a);

  // Substitutes the now-known outcome of `txn` and re-simplifies: this is
  // the §3.3 reduction step applied when a failure is recovered.
  Condition Assume(TxnId txn, bool committed) const;

  // All transactions mentioned (sorted ascending).
  std::vector<TxnId> Variables() const;

  // True if no transaction identifier appears (condition is TRUE or FALSE).
  bool IsGround() const { return Variables().empty(); }

  // Evaluates under a complete assignment of outcomes. Transactions not in
  // the map are treated as a CHECK failure — the caller must supply every
  // variable.
  bool Evaluate(const std::unordered_map<TxnId, bool>& outcomes) const;

  // --- Exact semantic queries (Shannon expansion) ---
  bool IsTautology() const;
  bool Implies(const Condition& other) const;
  bool EquivalentTo(const Condition& other) const;
  // a ∧ b unsatisfiable?
  bool DisjointWith(const Condition& other) const;

  // Number of satisfying assignments over the union variable set of size
  // `total_vars` (used by tests; total_vars >= |Variables()|).
  uint64_t CountModels(const std::vector<TxnId>& variables) const;

  bool operator==(const Condition& other) const {
    return terms_ == other.terms_;
  }
  bool operator!=(const Condition& other) const { return !(*this == other); }

  // "T1·¬T2 + T3", "true", "false".
  std::string ToString() const;
  size_t Hash() const;

 private:
  explicit Condition(std::vector<Term> terms) : terms_(std::move(terms)) {
    Canonicalize();
  }

  void Canonicalize();

  std::vector<Term> terms_;  // sorted, absorbed; empty == FALSE
};

inline std::ostream& operator<<(std::ostream& os, const Condition& c) {
  return os << c.ToString();
}

// Verifies the paper's §3 invariant on a set of conditions: they must be
// *complete* (their disjunction is a tautology) and *disjoint* (pairwise
// unsatisfiable conjunctions). Exact.
bool ConditionsCompleteAndDisjoint(const std::vector<Condition>& conditions);

}  // namespace polyvalue

namespace std {
template <>
struct hash<polyvalue::Condition> {
  size_t operator()(const polyvalue::Condition& c) const noexcept {
    return c.Hash();
  }
};
}  // namespace std

#endif  // SRC_CONDITION_CONDITION_H_
