// Reduced ordered binary decision diagrams over transaction identifiers.
//
// The SOP Condition class is the representation the paper prescribes, but
// SOP-with-absorption is not canonical under equivalence. BddManager gives
// exact, hash-consed semantics: two equivalent formulas always map to the
// same node. The transaction engine uses it for fast completeness /
// disjointness validation of installed polyvalues, and the test suite uses
// it as an independent oracle against the SOP algebra.
//
// Variable order is TxnId value order. Nodes are interned in a unique
// table; And/Or/Not/Ite results are memoised in an apply cache. Nodes are
// never freed (managers are short-lived, scoped to one validation pass or
// one test).
#ifndef SRC_CONDITION_BDD_H_
#define SRC_CONDITION_BDD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/condition/condition.h"

namespace polyvalue {

// Index of a node inside a BddManager. 0 = FALSE, 1 = TRUE.
using BddRef = uint32_t;

class BddManager {
 public:
  BddManager();

  static constexpr BddRef kFalse = 0;
  static constexpr BddRef kTrue = 1;

  // The variable "txn committed".
  BddRef Var(TxnId txn);

  BddRef And(BddRef a, BddRef b);
  BddRef Or(BddRef a, BddRef b);
  BddRef Not(BddRef a);
  BddRef Xor(BddRef a, BddRef b);
  // if-then-else, the universal connective.
  BddRef Ite(BddRef f, BddRef g, BddRef h);

  // Restricts variable `txn` to a constant.
  BddRef Restrict(BddRef f, TxnId txn, bool value);

  // Compiles a SOP condition.
  BddRef FromCondition(const Condition& c);

  bool IsTautology(BddRef f) const { return f == kTrue; }
  bool IsContradiction(BddRef f) const { return f == kFalse; }

  // Number of satisfying assignments over exactly the variables in
  // `variables` (each BDD variable used by f must appear in the list).
  uint64_t CountModels(BddRef f, const std::vector<TxnId>& variables);

  // Decompiles back to a (non-canonical) SOP condition, one term per
  // satisfying path. Used in tests for round-trip checks.
  Condition ToCondition(BddRef f);

  size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    uint64_t var;  // TxnId value; irrelevant for terminals
    BddRef lo;     // var = false branch
    BddRef hi;     // var = true branch
  };

  struct NodeKey {
    uint64_t var;
    BddRef lo;
    BddRef hi;
    bool operator==(const NodeKey& other) const {
      return var == other.var && lo == other.lo && hi == other.hi;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const {
      size_t h = std::hash<uint64_t>()(k.var);
      h = h * 1000003u ^ k.lo;
      h = h * 1000003u ^ k.hi;
      return h;
    }
  };

  struct OpKey {
    uint8_t op;  // 0=and 1=or 2=xor
    BddRef a;
    BddRef b;
    bool operator==(const OpKey& other) const {
      return op == other.op && a == other.a && b == other.b;
    }
  };
  struct OpKeyHash {
    size_t operator()(const OpKey& k) const {
      return (static_cast<size_t>(k.op) << 60) ^
             (static_cast<size_t>(k.a) * 2654435761u) ^ k.b;
    }
  };

  BddRef MakeNode(uint64_t var, BddRef lo, BddRef hi);
  BddRef Apply(uint8_t op, BddRef a, BddRef b);
  static bool ApplyTerminal(uint8_t op, BddRef a, BddRef b, BddRef* out);
  uint64_t TopVar(BddRef a, BddRef b) const;

  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, BddRef, NodeKeyHash> unique_;
  std::unordered_map<OpKey, BddRef, OpKeyHash> cache_;
};

}  // namespace polyvalue

#endif  // SRC_CONDITION_BDD_H_
