#include "src/condition/parser.h"

#include <cctype>

#include "src/common/ids.h"
#include "src/common/strings.h"

namespace polyvalue {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Condition> Parse() {
    SkipSpace();
    if (Consume("true")) {
      SkipSpace();
      POLYV_RETURN_IF_ERROR(ExpectEnd());
      return Condition::True();
    }
    if (Consume("false")) {
      SkipSpace();
      POLYV_RETURN_IF_ERROR(ExpectEnd());
      return Condition::False();
    }
    std::vector<Term> terms;
    for (;;) {
      POLYV_ASSIGN_OR_RETURN(Term term, ParseTerm());
      terms.push_back(std::move(term));
      SkipSpace();
      if (!ConsumeChar('+')) {
        break;
      }
    }
    POLYV_RETURN_IF_ERROR(ExpectEnd());
    return Condition::Of(std::move(terms));
  }

 private:
  Result<Term> ParseTerm() {
    std::vector<Literal> literals;
    for (;;) {
      POLYV_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      literals.push_back(lit);
      SkipSpace();
      if (!ConsumeChar('&') && !ConsumeChar('*') && !Consume("·")) {
        break;
      }
    }
    return Term::Of(std::move(literals));
  }

  Result<Literal> ParseLiteral() {
    SkipSpace();
    bool positive = true;
    if (ConsumeChar('!') || ConsumeChar('~') || Consume("¬")) {
      positive = false;
      SkipSpace();
    }
    if (!ConsumeChar('T')) {
      return ParseError("expected 'T'");
    }
    POLYV_ASSIGN_OR_RETURN(uint64_t first, ParseNumber());
    uint64_t id = first;
    if (ConsumeChar('.')) {
      POLYV_ASSIGN_OR_RETURN(uint64_t seq, ParseNumber());
      if (first >= (1ULL << (64 - kTxnSiteShift)) ||
          seq >= (1ULL << kTxnSiteShift)) {
        return ParseError("site.seq out of range");
      }
      id = (first << kTxnSiteShift) | seq;
    }
    if (id == TxnId::kInvalid) {
      return ParseError("invalid transaction id");
    }
    return Literal{TxnId(id), positive};
  }

  Result<uint64_t> ParseNumber() {
    if (pos_ >= text_.size() || !std::isdigit(Peek())) {
      return ParseError("expected digits");
    }
    uint64_t value = 0;
    while (pos_ < text_.size() && std::isdigit(Peek())) {
      const uint64_t digit = static_cast<uint64_t>(Peek() - '0');
      if (value > (UINT64_MAX - digit) / 10) {
        return ParseError("number overflow");
      }
      value = value * 10 + digit;
      ++pos_;
    }
    return value;
  }

  Status ExpectEnd() {
    SkipSpace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError(
          StrCat("trailing input at offset ", pos_, " in '", text_, "'"));
    }
    return OkStatus();
  }

  Status ParseError(const std::string& what) {
    return InvalidArgumentError(
        StrCat(what, " at offset ", pos_, " in '", text_, "'"));
  }

  char Peek() const { return text_[pos_]; }

  bool ConsumeChar(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Consume(const std::string& token) {
    if (text_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Condition> ParseCondition(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace polyvalue
