#include "src/condition/bdd.h"

#include <algorithm>

#include "src/common/check.h"

namespace polyvalue {

namespace {
constexpr uint64_t kTerminalVar = ~0ULL;  // sorts after every real variable
}  // namespace

BddManager::BddManager() {
  nodes_.push_back({kTerminalVar, 0, 0});  // FALSE
  nodes_.push_back({kTerminalVar, 1, 1});  // TRUE
}

BddRef BddManager::MakeNode(uint64_t var, BddRef lo, BddRef hi) {
  if (lo == hi) {
    return lo;  // reduction rule
  }
  const NodeKey key{var, lo, hi};
  auto it = unique_.find(key);
  if (it != unique_.end()) {
    return it->second;
  }
  const BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::Var(TxnId txn) {
  POLYV_CHECK(txn.valid());
  return MakeNode(txn.value(), kFalse, kTrue);
}

uint64_t BddManager::TopVar(BddRef a, BddRef b) const {
  return std::min(nodes_[a].var, nodes_[b].var);
}

bool BddManager::ApplyTerminal(uint8_t op, BddRef a, BddRef b, BddRef* out) {
  switch (op) {
    case 0:  // and
      if (a == kFalse || b == kFalse) {
        *out = kFalse;
        return true;
      }
      if (a == kTrue) {
        *out = b;
        return true;
      }
      if (b == kTrue) {
        *out = a;
        return true;
      }
      if (a == b) {
        *out = a;
        return true;
      }
      return false;
    case 1:  // or
      if (a == kTrue || b == kTrue) {
        *out = kTrue;
        return true;
      }
      if (a == kFalse) {
        *out = b;
        return true;
      }
      if (b == kFalse) {
        *out = a;
        return true;
      }
      if (a == b) {
        *out = a;
        return true;
      }
      return false;
    case 2:  // xor
      if (a == b) {
        *out = kFalse;
        return true;
      }
      if (a == kFalse) {
        *out = b;
        return true;
      }
      if (b == kFalse) {
        *out = a;
        return true;
      }
      return false;
    default:
      return false;
  }
}

BddRef BddManager::Apply(uint8_t op, BddRef a, BddRef b) {
  BddRef terminal;
  if (ApplyTerminal(op, a, b, &terminal)) {
    return terminal;
  }
  // Commutative ops: normalise operand order for better cache hits.
  if (a > b) {
    std::swap(a, b);
  }
  const OpKey key{op, a, b};
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    return it->second;
  }
  const uint64_t var = TopVar(a, b);
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  const BddRef a_lo = (na.var == var) ? na.lo : a;
  const BddRef a_hi = (na.var == var) ? na.hi : a;
  const BddRef b_lo = (nb.var == var) ? nb.lo : b;
  const BddRef b_hi = (nb.var == var) ? nb.hi : b;
  const BddRef lo = Apply(op, a_lo, b_lo);
  const BddRef hi = Apply(op, a_hi, b_hi);
  const BddRef result = MakeNode(var, lo, hi);
  cache_.emplace(key, result);
  return result;
}

BddRef BddManager::And(BddRef a, BddRef b) { return Apply(0, a, b); }
BddRef BddManager::Or(BddRef a, BddRef b) { return Apply(1, a, b); }
BddRef BddManager::Xor(BddRef a, BddRef b) { return Apply(2, a, b); }

BddRef BddManager::Not(BddRef a) { return Xor(a, kTrue); }

BddRef BddManager::Ite(BddRef f, BddRef g, BddRef h) {
  return Or(And(f, g), And(Not(f), h));
}

BddRef BddManager::Restrict(BddRef f, TxnId txn, bool value) {
  if (f <= kTrue) {
    return f;
  }
  const Node node = nodes_[f];
  if (node.var > txn.value()) {
    return f;  // var below txn in the order: txn does not occur
  }
  if (node.var == txn.value()) {
    return value ? node.hi : node.lo;
  }
  const BddRef lo = Restrict(node.lo, txn, value);
  const BddRef hi = Restrict(node.hi, txn, value);
  return MakeNode(node.var, lo, hi);
}

BddRef BddManager::FromCondition(const Condition& c) {
  BddRef acc = kFalse;
  for (const Term& term : c.terms()) {
    BddRef product = kTrue;
    for (const Literal& lit : term.literals()) {
      const BddRef v = Var(lit.txn);
      product = And(product, lit.positive ? v : Not(v));
    }
    acc = Or(acc, product);
  }
  return acc;
}

uint64_t BddManager::CountModels(BddRef f,
                                 const std::vector<TxnId>& variables) {
  std::vector<TxnId> sorted = variables;
  std::sort(sorted.begin(), sorted.end());
  std::unordered_map<BddRef, uint64_t> memo;

  // Counts models of node `ref` over sorted[i..]; the node's variable must
  // be >= sorted[i].
  std::function<uint64_t(BddRef, size_t)> count = [&](BddRef ref,
                                                      size_t i) -> uint64_t {
    if (i == sorted.size()) {
      POLYV_CHECK_MSG(ref <= kTrue, "variable list does not cover BDD");
      return ref == kTrue ? 1 : 0;
    }
    const Node& node = nodes_[ref];
    if (ref <= kTrue || node.var > sorted[i].value()) {
      // Variable sorted[i] is free here: both branches count.
      return 2 * count(ref, i + 1);
    }
    POLYV_CHECK_EQ(node.var, sorted[i].value());
    return count(node.lo, i + 1) + count(node.hi, i + 1);
  };
  return count(f, 0);
}

Condition BddManager::ToCondition(BddRef f) {
  if (f == kFalse) {
    return Condition::False();
  }
  if (f == kTrue) {
    return Condition::True();
  }
  std::vector<Term> terms;
  std::vector<Literal> path;
  std::function<void(BddRef)> walk = [&](BddRef ref) {
    if (ref == kFalse) {
      return;
    }
    if (ref == kTrue) {
      terms.push_back(Term::Of(path));
      return;
    }
    const Node node = nodes_[ref];
    path.push_back({TxnId(node.var), false});
    walk(node.lo);
    path.back().positive = true;
    walk(node.hi);
    path.pop_back();
  };
  walk(f);
  return Condition::Of(std::move(terms));
}

}  // namespace polyvalue
