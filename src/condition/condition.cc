#include "src/condition/condition.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <set>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace polyvalue {

// ---------------------------------------------------------------------------
// Term
// ---------------------------------------------------------------------------

Term Term::Of(std::vector<Literal> literals) {
  std::sort(literals.begin(), literals.end());
  Term term;
  for (const Literal& lit : literals) {
    POLYV_CHECK(lit.txn.valid());
    if (!term.literals_.empty() && term.literals_.back().txn == lit.txn) {
      if (term.literals_.back().positive != lit.positive) {
        term.contradiction_ = true;
        term.literals_.clear();
        return term;
      }
      continue;  // duplicate literal
    }
    term.literals_.push_back(lit);
  }
  return term;
}

Term Term::And(const Term& a, const Term& b) {
  if (a.contradiction_ || b.contradiction_) {
    Term t;
    t.contradiction_ = true;
    return t;
  }
  std::vector<Literal> merged = a.literals_;
  merged.insert(merged.end(), b.literals_.begin(), b.literals_.end());
  return Of(std::move(merged));
}

int Term::PolarityOf(TxnId txn) const {
  auto it = std::lower_bound(
      literals_.begin(), literals_.end(), Literal{txn, false},
      [](const Literal& a, const Literal& b) { return a.txn < b.txn; });
  if (it == literals_.end() || it->txn != txn) {
    return 0;
  }
  return it->positive ? 1 : -1;
}

Term Term::Assume(TxnId txn, bool committed) const {
  if (contradiction_) {
    return *this;
  }
  Term out;
  for (const Literal& lit : literals_) {
    if (lit.txn == txn) {
      if (lit.positive != committed) {
        out.contradiction_ = true;
        out.literals_.clear();
        return out;
      }
      continue;  // literal satisfied; drop it
    }
    out.literals_.push_back(lit);
  }
  return out;
}

bool Term::Subsumes(const Term& other) const {
  if (contradiction_) {
    return false;
  }
  if (other.contradiction_) {
    return true;
  }
  // this ⊆ other (as literal sets) => this OR other == this.
  return std::includes(other.literals_.begin(), other.literals_.end(),
                       literals_.begin(), literals_.end());
}

bool Term::Evaluate(const std::unordered_map<TxnId, bool>& outcomes) const {
  if (contradiction_) {
    return false;
  }
  for (const Literal& lit : literals_) {
    auto it = outcomes.find(lit.txn);
    POLYV_CHECK_MSG(it != outcomes.end(),
                    "Evaluate: missing outcome for " << lit.txn);
    if (it->second != lit.positive) {
      return false;
    }
  }
  return true;
}

bool Term::operator<(const Term& other) const {
  if (contradiction_ != other.contradiction_) {
    return other.contradiction_;  // contradictions sort last
  }
  return literals_ < other.literals_;
}

std::string Term::ToString() const {
  if (contradiction_) {
    return "⊥";
  }
  if (literals_.empty()) {
    return "true";
  }
  std::string out;
  for (size_t i = 0; i < literals_.size(); ++i) {
    if (i > 0) {
      out += "·";
    }
    if (!literals_[i].positive) {
      out += "¬";
    }
    out += polyvalue::ToString(literals_[i].txn);
  }
  return out;
}

size_t Term::Hash() const {
  size_t h = contradiction_ ? 0x9e3779b9u : 0u;
  for (const Literal& lit : literals_) {
    h = h * 1000003u + lit.txn.value() * 2u + (lit.positive ? 1u : 0u);
  }
  return h;
}

// ---------------------------------------------------------------------------
// Condition
// ---------------------------------------------------------------------------

Condition Condition::Of(std::vector<Term> terms) {
  return Condition(std::move(terms));
}

namespace {

// Removes duplicates and subsumed terms (absorption law: A + A·B = A).
// Assumes no contradictory terms in the input.
void Absorb(std::vector<Term>* terms) {
  std::sort(terms->begin(), terms->end());
  terms->erase(std::unique(terms->begin(), terms->end()), terms->end());
  // Decide redundancy first, move survivors afterwards — moving during
  // the scan would leave hollow terms that spuriously subsume everything.
  const size_t n = terms->size();
  std::vector<bool> redundant(n, false);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      // After dedupe, strict subsumption only (equal terms impossible).
      if (i != j && !redundant[j] && (*terms)[j].Subsumes((*terms)[i])) {
        redundant[i] = true;
        break;
      }
    }
  }
  std::vector<Term> kept;
  kept.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!redundant[i]) {
      kept.push_back(std::move((*terms)[i]));
    }
  }
  *terms = std::move(kept);
}

// Consensus of two terms: if exactly one transaction appears with opposite
// polarity, returns the conjunction of the remaining literals (nullopt for
// zero or >= 2 opposite variables, or a contradictory result).
std::optional<Term> Consensus(const Term& a, const Term& b) {
  TxnId clash;
  int clashes = 0;
  for (const Literal& lit : a.literals()) {
    const int pol = b.PolarityOf(lit.txn);
    if (pol != 0 && (pol > 0) != lit.positive) {
      clash = lit.txn;
      if (++clashes > 1) {
        return std::nullopt;
      }
    }
  }
  if (clashes != 1) {
    return std::nullopt;
  }
  std::vector<Literal> merged;
  for (const Literal& lit : a.literals()) {
    if (lit.txn != clash) {
      merged.push_back(lit);
    }
  }
  for (const Literal& lit : b.literals()) {
    if (lit.txn != clash) {
      merged.push_back(lit);
    }
  }
  Term t = Term::Of(std::move(merged));
  if (t.is_contradiction()) {
    return std::nullopt;
  }
  return t;
}

// Caps the consensus closure: beyond this many terms we fall back to
// absorption-only canonicalisation (semantic queries remain exact via
// Shannon expansion; only syntactic minimality degrades).
constexpr size_t kConsensusTermLimit = 64;

}  // namespace

void Condition::Canonicalize() {
  // Drop contradictory terms.
  std::vector<Term> kept;
  kept.reserve(terms_.size());
  for (Term& t : terms_) {
    if (!t.is_contradiction()) {
      kept.push_back(std::move(t));
    }
  }
  Absorb(&kept);

  // Iterated consensus to closure: yields the Blake canonical form (the
  // set of all prime implicants), which is unique per boolean function.
  // This is what makes syntactic checks semantically meaningful:
  // a tautology always reduces to {true} (e.g. T + ¬T), so a merged
  // polyvalue pair whose condition covers all outcomes reads as certain.
  bool changed = true;
  while (changed && kept.size() <= kConsensusTermLimit) {
    changed = false;
    const size_t n = kept.size();
    std::vector<Term> additions;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        std::optional<Term> c = Consensus(kept[i], kept[j]);
        if (!c.has_value()) {
          continue;
        }
        bool subsumed = false;
        for (const Term& t : kept) {
          if (t.Subsumes(*c)) {
            subsumed = true;
            break;
          }
        }
        if (!subsumed) {
          additions.push_back(std::move(*c));
        }
      }
    }
    if (!additions.empty()) {
      kept.insert(kept.end(), additions.begin(), additions.end());
      Absorb(&kept);
      changed = true;
    }
  }
  terms_ = std::move(kept);

  // TRUE absorbs everything (already guaranteed by Absorb since the empty
  // term subsumes all others; kept as a cheap final normalisation).
  for (const Term& t : terms_) {
    if (t.is_true()) {
      terms_ = {Term()};
      return;
    }
  }
}

Condition Condition::And(const Condition& a, const Condition& b) {
  std::vector<Term> products;
  products.reserve(a.terms_.size() * b.terms_.size());
  for (const Term& ta : a.terms_) {
    for (const Term& tb : b.terms_) {
      Term p = Term::And(ta, tb);
      if (!p.is_contradiction()) {
        products.push_back(std::move(p));
      }
    }
  }
  return Condition(std::move(products));
}

Condition Condition::Or(const Condition& a, const Condition& b) {
  std::vector<Term> merged = a.terms_;
  merged.insert(merged.end(), b.terms_.begin(), b.terms_.end());
  return Condition(std::move(merged));
}

Condition Condition::Not(const Condition& a) {
  // De Morgan: ¬(t1 + t2 + ...) = ¬t1 · ¬t2 · ...; each ¬ti is a sum of
  // negated literals. Multiply out.
  if (a.is_false()) {
    return True();
  }
  Condition acc = True();
  for (const Term& t : a.terms_) {
    std::vector<Term> negated;
    negated.reserve(t.literals().size());
    for (const Literal& lit : t.literals()) {
      negated.push_back(Term::Of({{lit.txn, !lit.positive}}));
    }
    acc = And(acc, Condition(std::move(negated)));
    if (acc.is_false()) {
      return acc;
    }
  }
  return acc;
}

Condition Condition::Assume(TxnId txn, bool committed) const {
  std::vector<Term> out;
  out.reserve(terms_.size());
  for (const Term& t : terms_) {
    Term reduced = t.Assume(txn, committed);
    if (!reduced.is_contradiction()) {
      out.push_back(std::move(reduced));
    }
  }
  return Condition(std::move(out));
}

std::vector<TxnId> Condition::Variables() const {
  std::set<TxnId> vars;
  for (const Term& t : terms_) {
    for (const Literal& lit : t.literals()) {
      vars.insert(lit.txn);
    }
  }
  return std::vector<TxnId>(vars.begin(), vars.end());
}

bool Condition::Evaluate(
    const std::unordered_map<TxnId, bool>& outcomes) const {
  for (const Term& t : terms_) {
    if (t.Evaluate(outcomes)) {
      return true;
    }
  }
  return false;
}

namespace {

// Shannon expansion: is `c` true under every assignment of its variables?
bool TautologyRecursive(const Condition& c) {
  if (c.is_true()) {
    return true;
  }
  if (c.is_false()) {
    return false;
  }
  const std::vector<TxnId> vars = c.Variables();
  POLYV_CHECK(!vars.empty());
  const TxnId pivot = vars.front();
  return TautologyRecursive(c.Assume(pivot, true)) &&
         TautologyRecursive(c.Assume(pivot, false));
}

bool SatisfiableRecursive(const Condition& c) {
  // Canonical SOP is satisfiable iff it has at least one
  // (non-contradictory) term — contradictions are dropped eagerly.
  return !c.is_false();
}

}  // namespace

bool Condition::IsTautology() const { return TautologyRecursive(*this); }

bool Condition::Implies(const Condition& other) const {
  // a ⇒ b iff a ∧ ¬b unsatisfiable.
  return !SatisfiableRecursive(And(*this, Not(other)));
}

bool Condition::EquivalentTo(const Condition& other) const {
  return Implies(other) && other.Implies(*this);
}

bool Condition::DisjointWith(const Condition& other) const {
  return !SatisfiableRecursive(And(*this, other));
}

uint64_t Condition::CountModels(const std::vector<TxnId>& variables) const {
  // Recursive count over the given variable list.
  std::function<uint64_t(const Condition&, size_t)> count =
      [&](const Condition& c, size_t i) -> uint64_t {
    if (c.is_false()) {
      return 0;
    }
    if (i == variables.size()) {
      POLYV_CHECK_MSG(c.is_true() || c.is_false(),
                      "CountModels: variables list does not cover " <<
                      c.ToString());
      return c.is_true() ? 1 : 0;
    }
    if (c.is_true()) {
      return 1ULL << (variables.size() - i);
    }
    return count(c.Assume(variables[i], true), i + 1) +
           count(c.Assume(variables[i], false), i + 1);
  };
  return count(*this, 0);
}

std::string Condition::ToString() const {
  if (is_false()) {
    return "false";
  }
  if (is_true()) {
    return "true";
  }
  std::vector<std::string> parts;
  parts.reserve(terms_.size());
  for (const Term& t : terms_) {
    parts.push_back(t.ToString());
  }
  return StrJoin(parts, " + ");
}

size_t Condition::Hash() const {
  size_t h = 14695981039346656037ULL;
  for (const Term& t : terms_) {
    h = (h ^ t.Hash()) * 1099511628211ULL;
  }
  return h;
}

bool ConditionsCompleteAndDisjoint(
    const std::vector<Condition>& conditions) {
  Condition disjunction = Condition::False();
  for (size_t i = 0; i < conditions.size(); ++i) {
    for (size_t j = i + 1; j < conditions.size(); ++j) {
      if (!conditions[i].DisjointWith(conditions[j])) {
        return false;
      }
    }
    disjunction = Condition::Or(disjunction, conditions[i]);
  }
  return disjunction.IsTautology();
}

}  // namespace polyvalue
