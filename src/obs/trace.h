// Protocol trace: structured events for every transaction lifecycle
// transition, emitted by the engine, the sites, and the simulated
// transport.
//
// The §4 model is validated entirely by counting invisible state
// transitions over time — in-doubt entry/exit, polyvalue install and
// reduction, outcome propagation. A TraceSink makes those transitions
// first-class: every run can record its own event stream, and the
// TraceAuditor (audit.h) replays the stream against the protocol's
// invariants, turning any randomized schedule into a protocol test.
//
// Cost contract: tracing must be free when no sink is attached. Every
// emission point is guarded by a single null-pointer check before any
// event is constructed; bench_throughput verifies the no-sink path shows
// no measurable regression.
//
// Event ordering: on the deterministic simulator, events are appended in
// execution order, which is causal order — the auditor relies on the
// sequence, not on timestamps (events at the same virtual time keep
// their emission order). On the threaded runtime the sink is
// thread-safe but cross-site ordering is best-effort; audit sim traces.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/thread_annotations.h"

namespace polyvalue {

// Every observable lifecycle transition. Grouped by emitter:
// coordinator, participant, shared outcome machinery, site lifecycle,
// transport.
enum class TraceEventType : uint8_t {
  // -- coordinator --
  kSubmit = 1,        // transaction accepted at its coordinator
  kLocalFastPath,     // single-site txn ran without message rounds
  kWriteShipped,      // computed writes fanned out (arg = participants)
  kAlternativeFork,   // polytransaction forked (arg = alternatives run)
  kDecisionCommit,    // coordinator durably decided COMMIT
  kDecisionAbort,     // coordinator decided ABORT (flag unused)
  kReadOnlyDone,      // terminal read-only disposition (no atomic update)
  // -- participant (Figure 1) --
  kPrepareRecv,       // idle -> compute: locks acquired or queued
  kPrepareRefused,    // prepare refused (lock conflict / missing item)
  kReadySent,         // compute -> wait: READY voted, writes durable
  kWaitTimeout,       // in-doubt window expired; policy applies next
  kBlockedHold,       // kBlock policy: locks held past the timeout
  kArbitraryCommit,   // kArbitrary policy: unilateral commit
  // -- items --
  kPolyInstall,       // an item transitioned certain -> uncertain
  kPolyReduce,        // an item transitioned uncertain -> certain
  // -- outcome propagation (§3.3) --
  kOutcomeInquiry,    // pull: OUTCOME_REQUEST sent (arg = coordinator)
  kOutcomeLearned,    // this site learned txn's outcome (flag = commit)
  kOutcomeNotify,     // push: OUTCOME_NOTIFY sent (arg = target site)
  // -- site lifecycle --
  kCrash,             // site lost volatile state
  kRecover,           // site back up; in-doubt policy re-applied
  kWalReplay,         // durable state rebuilt from the log (arg = records)
  kCheckpoint,        // snapshot written, WAL truncated
  // -- transport --
  kMsgDropped,        // packet lost (site = sender, peer = target)
  kMsgDelivered,      // packet handed to a live site (site = receiver)
  // -- handler return paths --
  // Added so EVERY engine message-handler return path emits an event
  // (tools/polyverify rule TR01); appended after the original kinds so
  // recorded streams keep their numbering.
  kPrepareReplied,    // participant answered PREPARE (flag = accepted)
  kVoteCollected,     // coordinator absorbed one vote; others pending
  kOutcomeReplied,    // coordinator answered OUTCOME_REQUEST (flag = known)
  kMsgIgnored,        // stale/duplicate message discarded (arg = MsgType)
  kComputeDiscard,    // compute result discarded: txn already resolved
  kUncertainRelease,  // kPolyvalue policy: locks freed, values uncertain
  // -- serving front door (src/svc/) --
  // Emitted by the admission/deadline layer in FRONT of the sites, with
  // `site` naming the coordinator the request was aimed at. The auditor
  // exempts them from A5 (crash silence): the serving layer keeps
  // running — and keeps shedding — while the site behind it is down.
  kSvcAdmitted,       // request admitted (arg = in-flight count after)
  kSvcShed,           // admission refused (flag: true = rate, false = cap)
  kSvcDeadlineExceeded,  // deadline budget ran out (arg = attempts made)
  kSvcRetry,          // retry scheduled after an abort (arg = attempt #)
  // -- Paxos Commit leg (src/paxos/) --
  // One consensus instance per participant RM; `peer` carries the
  // instance owner (the RM) where noted, `arg` carries the ballot.
  kPaxosVote,         // RM broadcast Phase2a(ballot 0) (flag = prepared)
  kPaxosAccept,       // acceptor accepted a Phase2a (peer = rm,
                      //   arg = ballot, flag = prepared)
  kPaxosPromise,      // acceptor promised a Phase1a ballot (arg = ballot)
  kPaxosChosen,       // leader saw a majority for one instance (peer = rm,
                      //   arg = ballot, flag = prepared)
  kPaxosDecide,       // a leader fixed the global outcome (flag = commit);
                      //   may fire at several sites, values must agree
  kPaxosFailover,     // RM nudged a standby leader (peer = standby,
                      //   arg = attempt #)
  kPaxosRecoveryBallot,  // standby started Phase1a (arg = ballot)
  // -- partial replication (src/replica/) --
  // Emitted by the replica routing/auditing layer ABOVE the sites (the
  // read router, the consistency sweep, the repair tool, the workload
  // harness), never by the engines — so the engine state machines and
  // their extracted sm_*.json specs are untouched. Like the svc_*
  // events they are exempt from A5: the routing layer keeps running
  // (and keeps failing over) while a site behind it is down. `key`
  // always carries the LOGICAL item name, not a per-site copy key.
  // Digests are FNV-1a over Value::ToString and never 0 (0 means
  // "no certain value" in a sweep).
  kReplicaWrite,      // committed write announced (arg = value digest);
                      //   also emitted for initial loads and repairs
  kReplicaRead,       // router served a read (site = serving replica,
                      //   arg = digest, flag = value was certain)
  kReplicaFailover,   // router abandoned a copy (site = abandoned,
                      //   peer = next tried, arg = attempt #)
  kReplicaSetInfo,    // consistency sweep opened (arg = copy count)
  kReplicaDigest,     // one copy's digest in a sweep (site = copy's
                      //   site, arg = digest, 0 = missing/uncertain)
  kReplicaRepair,     // repair tool rewrote a copy (site = copy's site,
                      //   arg = digest written)
};

const char* TraceEventTypeName(TraceEventType type);

// One observed transition. Fields beyond (time, type, site) are
// populated only where meaningful; see the enum comments.
struct TraceEvent {
  double time = 0;                 // virtual (sim) or wall-clock seconds
  TraceEventType type = TraceEventType::kSubmit;
  SiteId site;                     // the site the event happened at
  TxnId txn;                       // transaction scope, when any
  ItemKey key;                     // item scope, when any
  SiteId peer;                     // message events: the other endpoint
  bool flag = false;               // outcome flag (true = committed)
  uint64_t arg = 0;                // counts (alternatives, bytes, sites)

  std::string ToString() const;
};

// Receives every event from the components it is attached to. Emit may
// be called from simulator steps or from transport/scheduler threads;
// implementations must be thread-safe.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const TraceEvent& event) = 0;
};

// Records events in order for later audit or golden comparison.
class VectorTraceSink : public TraceSink {
 public:
  void Emit(const TraceEvent& event) override {
    MutexLock lock(&mu_);
    events_.push_back(event);
  }

  size_t size() const {
    MutexLock lock(&mu_);
    return events_.size();
  }

  // Copies the events recorded so far.
  std::vector<TraceEvent> Snapshot() const {
    MutexLock lock(&mu_);
    return events_;
  }

  void Clear() {
    MutexLock lock(&mu_);
    events_.clear();
  }

 private:
  mutable Mutex mu_ POLYV_MUTEX_RANK(kTrace);
  std::vector<TraceEvent> events_ GUARDED_BY(mu_);
};

// Counts events without storing them — the cheapest live sink; used by
// benches to measure tracing overhead with emission still active.
class CountingTraceSink : public TraceSink {
 public:
  void Emit(const TraceEvent&) override {
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
};

}  // namespace polyvalue

#endif  // SRC_OBS_TRACE_H_
