// TraceAuditor: replays a recorded protocol trace and checks that the
// path the system took — not just the end state — was legal.
//
// Gray & Lamport frame commit protocols as transition systems whose
// correctness is a property of the transition sequence; the auditor
// states our protocol the same way, over the TraceEvent stream:
//
//   A1  Decision uniqueness — a transaction reaches at most one
//       terminal decision (commit / abort / read-only) at its
//       coordinator, and never both commit and abort.
//   A2  Outcome agreement — every outcome any site learns for a
//       transaction carries the same commit flag (atomicity: no site
//       applies a commit another site saw aborted).
//   A3  Commit provenance — a site may learn "committed" only after
//       the coordinator emitted its durable commit decision. (Aborts
//       need no provenance: presumed abort manufactures them.)
//   A4  Notify follows knowledge — a site sends OUTCOME_NOTIFY for a
//       transaction only after it learned that outcome itself, with
//       the same flag.
//   A5  Crash silence — a crashed site emits nothing between its
//       crash and its recover (a down site neither sends, receives,
//       nor mutates state).
//   A6  Vote before doubt — a wait-timeout / blocked-hold /
//       polyvalue-bearing participant voted READY for that
//       transaction first (Figure 1: `wait` is only entered from
//       `compute` via the vote).
//   When the trace is quiescent (network healed, system drained):
//   A7  Uncertainty drains — every polyvalue install is matched by a
//       later reduction of the same item at the same site.
//   A8  Submits terminate — every submit reaches a terminal decision,
//       unless its coordinator crashed after the submit (the client
//       is legitimately orphaned; its outcome resolves by inquiry).
//   A9–A11 (Paxos Commit leg) — ballot monotonicity, chosen-value
//       agreement, decide uniqueness; see the switch arms below.
//   Partial replication (src/replica/, PR 10):
//   A12 Replica convergence — within each consistency sweep
//       (`replica_set_info` opener plus its `replica_digest` events),
//       every copy of the logical item reports the same nonzero
//       digest and the copy count matches the set size. The harness
//       emits sweeps only once no outcome is in doubt for the set, so
//       a 0 digest (missing / still-uncertain copy) or a divergent
//       digest is a convergence failure.
//   A13 Read provenance — every certain value served by the read
//       router (`replica_read` with the certain flag) carries a digest
//       some committed write (`replica_write`, including initial loads
//       and repairs) announced for that logical item, ANYWHERE in the
//       trace — never a value from an aborted branch. Announcements
//       are collected over the whole trace before checking because a
//       commit whose output was still uncertain at settlement
//       announces its resolved value later than dependent reads may
//       observe it. Nonzero post-quiescence sweep digests also count
//       as announcements: a converged value is committed-branch by
//       definition, which covers writes whose client abandoned them at
//       the deadline and that resolved to commit during recovery — no
//       client-side callback ever sees those. (Digest equality
//       approximates value equality; 64-bit FNV collisions are
//       accepted.)
//
// Events are checked in recorded (execution) order; see trace.h for
// the ordering guarantee on the deterministic simulator.
#ifndef SRC_OBS_AUDIT_H_
#define SRC_OBS_AUDIT_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/trace.h"

namespace polyvalue {

struct AuditOptions {
  // The trace covers a run that healed and drained: enforce A7/A8.
  bool expect_quiescent = true;
};

struct AuditViolation {
  size_t event_index;   // offending event, or trace.size() for
                        // end-of-trace (quiescence) violations
  std::string message;

  std::string ToString() const;
};

class TraceAuditor {
 public:
  explicit TraceAuditor(AuditOptions options = {}) : options_(options) {}

  // Returns every invariant violation found (empty = trace is legal).
  std::vector<AuditViolation> Audit(
      const std::vector<TraceEvent>& trace) const;

  // Convenience: OK iff Audit() finds nothing; otherwise an error
  // whose message lists the first violations.
  static Status Check(const std::vector<TraceEvent>& trace,
                      AuditOptions options = {});

 private:
  AuditOptions options_;
};

}  // namespace polyvalue

#endif  // SRC_OBS_AUDIT_H_
