#include "src/obs/trace.h"

#include <sstream>

namespace polyvalue {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSubmit:
      return "submit";
    case TraceEventType::kLocalFastPath:
      return "local_fast_path";
    case TraceEventType::kWriteShipped:
      return "write_shipped";
    case TraceEventType::kAlternativeFork:
      return "alternative_fork";
    case TraceEventType::kDecisionCommit:
      return "decision_commit";
    case TraceEventType::kDecisionAbort:
      return "decision_abort";
    case TraceEventType::kReadOnlyDone:
      return "read_only_done";
    case TraceEventType::kPrepareRecv:
      return "prepare_recv";
    case TraceEventType::kPrepareRefused:
      return "prepare_refused";
    case TraceEventType::kReadySent:
      return "ready_sent";
    case TraceEventType::kWaitTimeout:
      return "wait_timeout";
    case TraceEventType::kBlockedHold:
      return "blocked_hold";
    case TraceEventType::kArbitraryCommit:
      return "arbitrary_commit";
    case TraceEventType::kPolyInstall:
      return "poly_install";
    case TraceEventType::kPolyReduce:
      return "poly_reduce";
    case TraceEventType::kOutcomeInquiry:
      return "outcome_inquiry";
    case TraceEventType::kOutcomeLearned:
      return "outcome_learned";
    case TraceEventType::kOutcomeNotify:
      return "outcome_notify";
    case TraceEventType::kCrash:
      return "crash";
    case TraceEventType::kRecover:
      return "recover";
    case TraceEventType::kWalReplay:
      return "wal_replay";
    case TraceEventType::kCheckpoint:
      return "checkpoint";
    case TraceEventType::kMsgDropped:
      return "msg_dropped";
    case TraceEventType::kMsgDelivered:
      return "msg_delivered";
    case TraceEventType::kPrepareReplied:
      return "prepare_replied";
    case TraceEventType::kVoteCollected:
      return "vote_collected";
    case TraceEventType::kOutcomeReplied:
      return "outcome_replied";
    case TraceEventType::kMsgIgnored:
      return "msg_ignored";
    case TraceEventType::kComputeDiscard:
      return "compute_discard";
    case TraceEventType::kUncertainRelease:
      return "uncertain_release";
    case TraceEventType::kSvcAdmitted:
      return "svc_admitted";
    case TraceEventType::kSvcShed:
      return "svc_shed";
    case TraceEventType::kSvcDeadlineExceeded:
      return "svc_deadline_exceeded";
    case TraceEventType::kSvcRetry:
      return "svc_retry";
    case TraceEventType::kPaxosVote:
      return "paxos_vote";
    case TraceEventType::kPaxosAccept:
      return "paxos_accept";
    case TraceEventType::kPaxosPromise:
      return "paxos_promise";
    case TraceEventType::kPaxosChosen:
      return "paxos_chosen";
    case TraceEventType::kPaxosDecide:
      return "paxos_decide";
    case TraceEventType::kPaxosFailover:
      return "paxos_failover";
    case TraceEventType::kPaxosRecoveryBallot:
      return "paxos_recovery_ballot";
    case TraceEventType::kReplicaWrite:
      return "replica_write";
    case TraceEventType::kReplicaRead:
      return "replica_read";
    case TraceEventType::kReplicaFailover:
      return "replica_failover";
    case TraceEventType::kReplicaSetInfo:
      return "replica_set_info";
    case TraceEventType::kReplicaDigest:
      return "replica_digest";
    case TraceEventType::kReplicaRepair:
      return "replica_repair";
  }
  return "?";
}

std::string TraceEvent::ToString() const {
  std::ostringstream oss;
  oss << "[" << time << "] " << TraceEventTypeName(type) << " " << site;
  if (txn.valid()) {
    oss << " " << txn;
  }
  if (!key.empty()) {
    oss << " '" << key << "'";
  }
  if (peer.valid()) {
    oss << " peer=" << peer;
  }
  if (flag) {
    oss << " flag";
  }
  if (arg != 0) {
    oss << " arg=" << arg;
  }
  return oss.str();
}

}  // namespace polyvalue
