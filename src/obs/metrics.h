// Named metrics registry with JSON export.
//
// The engine's EngineMetrics struct is a fixed set of totals; the
// registry is the generic layer above it: counters, gauges, running
// stats and histograms keyed by name, mergeable across sites for
// cluster-wide aggregation, and serialisable to machine-readable JSON
// that benches dump and CI archives. Reuses RunningStat/Histogram from
// src/common/stats.h as the underlying accumulators.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/stats.h"
#include "src/common/status.h"

namespace polyvalue {

class MetricsRegistry {
 public:
  // Monotonic counters.
  void Counter(const std::string& name, uint64_t delta = 1);
  void SetCounter(const std::string& name, uint64_t value);
  uint64_t counter(const std::string& name) const;

  // Point-in-time values (last write wins).
  void Gauge(const std::string& name, double value);
  double gauge(const std::string& name) const;

  // Distribution accumulators. The returned pointers stay valid for the
  // registry's lifetime; Hist() with a name seen before ignores the
  // shape arguments and returns the existing histogram.
  RunningStat* Stat(const std::string& name);
  Histogram* Hist(const std::string& name, double lo, double hi,
                  size_t buckets);

  bool Has(const std::string& name) const;
  size_t size() const;

  // Adds `other` into this registry: counters add, gauges overwrite,
  // stats and histograms merge (histogram shapes must match).
  void Merge(const MetricsRegistry& other);

  // Serialises everything as one JSON object:
  //   {"counters": {...}, "gauges": {...},
  //    "stats": {name: {count, mean, stddev, min, max, sum}},
  //    "histograms": {name: {lo, hi, count, underflow, overflow,
  //                          buckets: [...]}}}
  // Keys are escaped; output is deterministic (maps iterate sorted).
  std::string ToJson() const;

  // Writes ToJson() to `path` (overwriting).
  Status WriteJsonFile(const std::string& path) const;

  // JSON string escaping (exposed for tests).
  static std::string EscapeJson(const std::string& s);

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, RunningStat> stats_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace polyvalue

#endif  // SRC_OBS_METRICS_H_
