#include "src/obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace polyvalue {
namespace {

// JSON has no Inf/NaN; clamp to null-safe zero (registries hold
// finite measurements in practice).
void AppendDouble(std::ostringstream* out, double v) {
  if (v != v || v == std::numeric_limits<double>::infinity() ||
      v == -std::numeric_limits<double>::infinity()) {
    *out << 0;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out << buf;
}

}  // namespace

void MetricsRegistry::Counter(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::SetCounter(const std::string& name, uint64_t value) {
  counters_[name] = value;
}

uint64_t MetricsRegistry::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::Gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

double MetricsRegistry::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

RunningStat* MetricsRegistry::Stat(const std::string& name) {
  return &stats_[name];
}

Histogram* MetricsRegistry::Hist(const std::string& name, double lo,
                                 double hi, size_t buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(lo, hi, buckets)).first;
  }
  return &it->second;
}

bool MetricsRegistry::Has(const std::string& name) const {
  return counters_.count(name) > 0 || gauges_.count(name) > 0 ||
         stats_.count(name) > 0 || histograms_.count(name) > 0;
}

size_t MetricsRegistry::size() const {
  return counters_.size() + gauges_.size() + stats_.size() +
         histograms_.size();
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauges_[name] = value;
  }
  for (const auto& [name, stat] : other.stats_) {
    stats_[name].Merge(stat);
  }
  for (const auto& [name, hist] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, hist);
    } else {
      it->second.Merge(hist);
    }
  }
}

std::string MetricsRegistry::EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream out;
  out << "{";
  out << "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out << (first ? "" : ", ") << "\"" << EscapeJson(name)
        << "\": " << value;
    first = false;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out << (first ? "" : ", ") << "\"" << EscapeJson(name) << "\": ";
    AppendDouble(&out, value);
    first = false;
  }
  out << "}, \"stats\": {";
  first = true;
  for (const auto& [name, stat] : stats_) {
    out << (first ? "" : ", ") << "\"" << EscapeJson(name)
        << "\": {\"count\": " << stat.count() << ", \"mean\": ";
    AppendDouble(&out, stat.mean());
    out << ", \"stddev\": ";
    AppendDouble(&out, stat.stddev());
    out << ", \"min\": ";
    AppendDouble(&out, stat.min());
    out << ", \"max\": ";
    AppendDouble(&out, stat.max());
    out << ", \"sum\": ";
    AppendDouble(&out, stat.sum());
    out << "}";
    first = false;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out << (first ? "" : ", ") << "\"" << EscapeJson(name)
        << "\": {\"lo\": ";
    AppendDouble(&out, hist.lo());
    out << ", \"hi\": ";
    AppendDouble(&out, hist.hi());
    out << ", \"count\": " << hist.count()
        << ", \"underflow\": " << hist.underflow()
        << ", \"overflow\": " << hist.overflow() << ", \"buckets\": [";
    for (size_t i = 0; i < hist.bucket_count(); ++i) {
      out << (i == 0 ? "" : ", ") << hist.bucket(i);
    }
    out << "]}";
    first = false;
  }
  out << "}}";
  return out.str();
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError("cannot open metrics file '" + path + "'");
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) {
    return UnavailableError("short write to metrics file '" + path + "'");
  }
  return OkStatus();
}

}  // namespace polyvalue
