#include "src/obs/audit.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace polyvalue {
namespace {

// Per-transaction roll-up built while scanning the trace.
struct TxnState {
  bool submitted = false;
  size_t submit_index = 0;
  SiteId coordinator;
  int commits = 0;
  int aborts = 0;
  int read_onlys = 0;
  // Paxos Commit leg: decide events may fire at several sites (the
  // original leader and any recovery leader); they must all agree and a
  // commit one counts as provenance for A3.
  int paxos_commits = 0;
  bool outcome_known = false;  // some learned/decision flag seen
  bool outcome_flag = false;   // ...and its value
  bool terminal() const { return commits + aborts + read_onlys > 0; }
};

uint64_t SiteTxnKey(SiteId site, TxnId txn) {
  return site.value() * 0x9e3779b97f4a7c15ULL ^ txn.value();
}

}  // namespace

std::string AuditViolation::ToString() const {
  std::ostringstream oss;
  oss << "event[" << event_index << "]: " << message;
  return oss.str();
}

std::vector<AuditViolation> TraceAuditor::Audit(
    const std::vector<TraceEvent>& trace) const {
  std::vector<AuditViolation> violations;
  auto violate = [&violations](size_t index, std::string message) {
    violations.push_back({index, std::move(message)});
  };

  std::unordered_map<uint64_t, TxnState> txns;  // by TxnId value
  std::unordered_set<uint64_t> down_sites;      // by SiteId value
  // Sites that crashed at least once, with the index of their latest
  // crash: submits preceding any crash of their coordinator are exempt
  // from A8.
  std::unordered_map<uint64_t, size_t> last_crash_index;
  std::unordered_set<uint64_t> ready_voted;     // SiteTxnKey
  std::unordered_set<uint64_t> learned_here;    // SiteTxnKey
  // Paxos acceptors: highest ballot seen per (site, txn) — A9 requires
  // promises to strictly increase and accepts to never regress.
  std::unordered_map<uint64_t, uint64_t> paxos_ballot_floor;  // SiteTxnKey
  // Chosen value per (instance rm, txn) — A10 requires every chooser to
  // agree on each instance's value.
  std::unordered_map<uint64_t, bool> paxos_chosen;  // SiteTxnKey(rm, txn)
  // Outstanding uncertain items: "site|key" -> index of the install.
  std::map<std::string, size_t> uncertain_items;

  // Checks exempt from A5 (crash silence): the crash/recover boundary
  // itself, transport drop bookkeeping (a drop may be recorded while
  // either endpoint is down — the packet was in flight), and WAL replay
  // (restart machinery runs before the site is marked up).
  auto exempt_from_silence = [](TraceEventType type) {
    return type == TraceEventType::kRecover ||
           type == TraceEventType::kMsgDropped ||
           type == TraceEventType::kWalReplay ||
           // Serving-layer events name the coordinator site but are
           // emitted by the front door, which outlives a crashed site
           // (shedding and deadline-failing traffic aimed at it).
           type == TraceEventType::kSvcAdmitted ||
           type == TraceEventType::kSvcShed ||
           type == TraceEventType::kSvcDeadlineExceeded ||
           type == TraceEventType::kSvcRetry ||
           // Replica-layer events name copy sites but are emitted by
           // the routing/auditing layer above the sites, which keeps
           // running — and failing over — while a copy's site is down.
           type == TraceEventType::kReplicaWrite ||
           type == TraceEventType::kReplicaRead ||
           type == TraceEventType::kReplicaFailover ||
           type == TraceEventType::kReplicaSetInfo ||
           type == TraceEventType::kReplicaDigest ||
           type == TraceEventType::kReplicaRepair;
  };

  // A13 pre-pass: committed-value digests announced per logical item,
  // collected over the WHOLE trace (see audit.h for why order-free).
  // Post-quiescence sweep digests count too: a converged copy value is
  // committed-branch by definition (an aborted branch persisting to
  // quiescence is an atomicity violation other audits flag), and it
  // covers the one commit no client-side announcement can — a write
  // whose client abandoned it at the deadline and that resolved to
  // commit during recovery.
  std::unordered_map<std::string, std::unordered_set<uint64_t>> announced;
  for (const TraceEvent& e : trace) {
    if (e.type == TraceEventType::kReplicaWrite ||
        e.type == TraceEventType::kReplicaRepair ||
        (e.type == TraceEventType::kReplicaDigest && e.arg != 0)) {
      announced[e.key].insert(e.arg);
    }
  }

  // A12 sweeps currently open, by logical item.
  struct ReplicaSweep {
    size_t opened_at = 0;
    uint64_t expected = 0;
    std::vector<uint64_t> digests;
  };
  std::unordered_map<std::string, ReplicaSweep> open_sweeps;
  auto finalize_sweep = [&violate](const std::string& key,
                                   const ReplicaSweep& sweep) {
    if (sweep.digests.size() != sweep.expected) {
      violate(sweep.opened_at,
              "replica sweep of '" + key + "' reported " +
                  std::to_string(sweep.digests.size()) + " copies, set has " +
                  std::to_string(sweep.expected));
    }
    uint64_t reference = 0;
    for (uint64_t digest : sweep.digests) {
      if (digest == 0) {
        violate(sweep.opened_at,
                "replica sweep of '" + key +
                    "' found a copy with no certain value "
                    "(missing or unconverged)");
        return;
      }
      if (reference == 0) {
        reference = digest;
      } else if (digest != reference) {
        violate(sweep.opened_at,
                "replica copies of '" + key + "' diverge after quiescence");
        return;
      }
    }
  };

  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace[i];

    // A5: nothing happens at a down site.
    if (!exempt_from_silence(e.type) &&
        down_sites.count(e.site.value()) > 0) {
      violate(i, std::string("event '") + TraceEventTypeName(e.type) +
                     "' at crashed site " + polyvalue::ToString(e.site));
    }

    TxnState* txn = nullptr;
    if (e.txn.valid()) {
      txn = &txns[e.txn.value()];
    }

    switch (e.type) {
      case TraceEventType::kSubmit:
        if (txn == nullptr) {
          break;
        }
        txn->submitted = true;
        txn->submit_index = i;
        txn->coordinator = e.site;
        break;

      case TraceEventType::kDecisionCommit:
      case TraceEventType::kDecisionAbort:
      case TraceEventType::kReadOnlyDone: {
        if (txn == nullptr) {
          break;
        }
        const bool commit = e.type == TraceEventType::kDecisionCommit;
        const bool read_only = e.type == TraceEventType::kReadOnlyDone;
        // A1: at most one terminal decision, never both kinds.
        if (txn->terminal()) {
          const char* earlier = txn->commits > 0   ? "commit"
                                : txn->aborts > 0  ? "abort"
                                                   : "read-only";
          violate(i, "second terminal decision '" +
                         std::string(TraceEventTypeName(e.type)) +
                         "' for " + polyvalue::ToString(e.txn) +
                         " (already decided " + earlier + ")");
        }
        if (commit) {
          ++txn->commits;
        } else if (read_only) {
          ++txn->read_onlys;
        } else {
          ++txn->aborts;
        }
        // A2: the decision agrees with anything already learned.
        if (!read_only) {
          if (txn->outcome_known && txn->outcome_flag != commit) {
            violate(i, "decision for " + polyvalue::ToString(e.txn) +
                           " contradicts a previously learned outcome");
          }
          txn->outcome_known = true;
          txn->outcome_flag = commit;
        }
        break;
      }

      case TraceEventType::kOutcomeLearned:
        if (txn == nullptr) {
          break;
        }
        // A2: all sites agree on the outcome.
        if (txn->outcome_known && txn->outcome_flag != e.flag) {
          violate(i, polyvalue::ToString(e.site) + " learned " +
                         (e.flag ? "COMMIT" : "ABORT") + " for " +
                         polyvalue::ToString(e.txn) +
                         " contradicting the known outcome");
        }
        // A3: commits must originate from a coordinator decision (2PC)
        // or a Paxos decide (any tally-completing leader).
        if (e.flag && txn->commits == 0 && txn->paxos_commits == 0) {
          violate(i, polyvalue::ToString(e.site) + " learned COMMIT for " +
                         polyvalue::ToString(e.txn) +
                         " before any coordinator commit decision");
        }
        txn->outcome_known = true;
        txn->outcome_flag = e.flag;
        learned_here.insert(SiteTxnKey(e.site, e.txn));
        break;

      case TraceEventType::kOutcomeNotify:
        if (txn == nullptr) {
          break;
        }
        // A4: notify only what this site itself knows.
        if (learned_here.count(SiteTxnKey(e.site, e.txn)) == 0) {
          violate(i, polyvalue::ToString(e.site) + " notified outcome of " +
                         polyvalue::ToString(e.txn) +
                         " without having learned it");
        }
        if (txn->outcome_known && txn->outcome_flag != e.flag) {
          violate(i, polyvalue::ToString(e.site) +
                         " notified a contradicting outcome for " +
                         polyvalue::ToString(e.txn));
        }
        break;

      case TraceEventType::kReadySent:
        ready_voted.insert(SiteTxnKey(e.site, e.txn));
        break;

      case TraceEventType::kWaitTimeout:
      case TraceEventType::kBlockedHold:
      case TraceEventType::kArbitraryCommit:
      case TraceEventType::kUncertainRelease:
        // A6: the in-doubt window only exists after a READY vote.
        if (ready_voted.count(SiteTxnKey(e.site, e.txn)) == 0) {
          violate(i, std::string("'") + TraceEventTypeName(e.type) +
                         "' at " + polyvalue::ToString(e.site) + " for " +
                         polyvalue::ToString(e.txn) +
                         " without a prior READY vote");
        }
        break;

      case TraceEventType::kPolyInstall:
        uncertain_items[polyvalue::ToString(e.site) + "|" + e.key] = i;
        break;

      case TraceEventType::kPolyReduce: {
        const std::string item_key =
            polyvalue::ToString(e.site) + "|" + e.key;
        if (uncertain_items.erase(item_key) == 0) {
          violate(i, "reduction of '" + e.key + "' at " +
                         polyvalue::ToString(e.site) +
                         " which was never installed uncertain");
        }
        break;
      }

      case TraceEventType::kCrash:
        if (!down_sites.insert(e.site.value()).second) {
          violate(i, "crash of already-crashed site " +
                         polyvalue::ToString(e.site));
        }
        last_crash_index[e.site.value()] = i;
        break;

      case TraceEventType::kRecover:
        // Recover without a recorded crash is legal: WAL-restart tests
        // rebuild a site object and call Recover() on first start.
        down_sites.erase(e.site.value());
        break;

      case TraceEventType::kWalReplay:
        // A replay means the site is restarting: events it emits while
        // rebuilding (e.g. re-announcing surviving uncertain items) are
        // part of recovery, not post-crash activity.
        down_sites.erase(e.site.value());
        break;

      case TraceEventType::kPaxosDecide: {
        if (txn == nullptr) {
          break;
        }
        // A11: every Paxos decide for a transaction fixes the same
        // outcome (Paxos safety), and it agrees with anything learned.
        if (txn->outcome_known && txn->outcome_flag != e.flag) {
          violate(i, polyvalue::ToString(e.site) + " paxos-decided " +
                         (e.flag ? "COMMIT" : "ABORT") + " for " +
                         polyvalue::ToString(e.txn) +
                         " contradicting the known outcome");
        }
        if (e.flag) {
          ++txn->paxos_commits;
        }
        txn->outcome_known = true;
        txn->outcome_flag = e.flag;
        break;
      }

      case TraceEventType::kPaxosPromise: {
        // A9: an acceptor's promised ballot strictly increases.
        uint64_t& floor = paxos_ballot_floor[SiteTxnKey(e.site, e.txn)];
        if (e.arg <= floor) {
          violate(i, polyvalue::ToString(e.site) + " promised ballot " +
                         std::to_string(e.arg) + " for " +
                         polyvalue::ToString(e.txn) +
                         " at or below its prior ballot " +
                         std::to_string(floor));
        }
        floor = std::max(floor, e.arg);
        break;
      }

      case TraceEventType::kPaxosAccept: {
        // A9: accepts never regress below the promised ballot.
        uint64_t& floor = paxos_ballot_floor[SiteTxnKey(e.site, e.txn)];
        if (e.arg < floor) {
          violate(i, polyvalue::ToString(e.site) + " accepted ballot " +
                         std::to_string(e.arg) + " for " +
                         polyvalue::ToString(e.txn) +
                         " below its promised ballot " +
                         std::to_string(floor));
        }
        floor = std::max(floor, e.arg);
        break;
      }

      case TraceEventType::kPaxosChosen: {
        // A10: once an instance (txn, rm) chooses a value, every later
        // chooser — e.g. a recovery leader re-running the tally — sees
        // the same value.
        const auto [it, inserted] = paxos_chosen.emplace(
            SiteTxnKey(e.peer, e.txn), e.flag);
        if (!inserted && it->second != e.flag) {
          violate(i, polyvalue::ToString(e.site) + " chose " +
                         (e.flag ? "PREPARED" : "ABORTED") +
                         " for instance (" + polyvalue::ToString(e.txn) +
                         ", " + polyvalue::ToString(e.peer) +
                         ") contradicting an earlier choice");
        }
        break;
      }

      // Observed but not (yet) constrained by an invariant. Spelled out
      // rather than `default:` so that adding a TraceEventType forces a
      // decision about how the auditor treats it (polyverify SW01).
      case TraceEventType::kLocalFastPath:
      case TraceEventType::kWriteShipped:
      case TraceEventType::kAlternativeFork:
      case TraceEventType::kPrepareRecv:
      case TraceEventType::kPrepareRefused:
      case TraceEventType::kPrepareReplied:
      case TraceEventType::kVoteCollected:
      case TraceEventType::kOutcomeInquiry:
      case TraceEventType::kOutcomeReplied:
      case TraceEventType::kMsgIgnored:
      case TraceEventType::kComputeDiscard:
      case TraceEventType::kCheckpoint:
      case TraceEventType::kMsgDropped:
      case TraceEventType::kMsgDelivered:
      case TraceEventType::kSvcAdmitted:
      case TraceEventType::kSvcShed:
      case TraceEventType::kSvcDeadlineExceeded:
      case TraceEventType::kSvcRetry:
        break;

      case TraceEventType::kReplicaSetInfo: {
        // A12: open a sweep (finalizing any prior one for the item).
        auto it = open_sweeps.find(e.key);
        if (it != open_sweeps.end()) {
          finalize_sweep(e.key, it->second);
          open_sweeps.erase(it);
        }
        open_sweeps[e.key] = ReplicaSweep{i, e.arg, {}};
        break;
      }

      case TraceEventType::kReplicaDigest: {
        auto it = open_sweeps.find(e.key);
        if (it == open_sweeps.end()) {
          violate(i, "replica digest for '" + e.key +
                         "' outside any sweep (no replica_set_info)");
          break;
        }
        it->second.digests.push_back(e.arg);
        break;
      }

      case TraceEventType::kReplicaRead:
        // A13: a certain read must return an announced committed value.
        if (e.flag && announced[e.key].count(e.arg) == 0) {
          violate(i, polyvalue::ToString(e.site) + " served a read of '" +
                         e.key +
                         "' with a value no committed write announced "
                         "(possible aborted-branch leak)");
        }
        break;

      case TraceEventType::kReplicaWrite:
      case TraceEventType::kReplicaRepair:
        // Collected in the A13 pre-pass.
        break;

      case TraceEventType::kPaxosVote:
      case TraceEventType::kPaxosFailover:
      case TraceEventType::kPaxosRecoveryBallot:
      case TraceEventType::kReplicaFailover:
        break;
    }
  }

  // A12: finalize sweeps still open at end of trace.
  for (const auto& [key, sweep] : open_sweeps) {
    finalize_sweep(key, sweep);
  }

  if (options_.expect_quiescent) {
    // A7: all uncertainty drained.
    for (const auto& [item, index] : uncertain_items) {
      violate(index,
              "polyvalue installed at " + item +
                  " was never reduced (uncertainty did not drain)");
    }
    // A8: every submit terminated, unless the coordinator crashed
    // after it (orphaned client; outcome resolves via inquiry).
    for (const auto& [id, txn] : txns) {
      if (!txn.submitted || txn.terminal()) {
        continue;
      }
      auto crash = last_crash_index.find(txn.coordinator.value());
      const bool orphaned_by_crash = crash != last_crash_index.end() &&
                                     crash->second >= txn.submit_index;
      if (!orphaned_by_crash) {
        violate(txn.submit_index,
                "submit of " + polyvalue::ToString(TxnId(id)) +
                    " never reached a terminal decision");
      }
    }
  }

  return violations;
}

Status TraceAuditor::Check(const std::vector<TraceEvent>& trace,
                           AuditOptions options) {
  const std::vector<AuditViolation> violations =
      TraceAuditor(options).Audit(trace);
  if (violations.empty()) {
    return OkStatus();
  }
  std::ostringstream oss;
  oss << violations.size() << " protocol invariant violation(s):";
  const size_t shown = std::min<size_t>(violations.size(), 5);
  for (size_t i = 0; i < shown; ++i) {
    oss << "\n  " << violations[i].ToString();
  }
  if (shown < violations.size()) {
    oss << "\n  ...";
  }
  return InternalError(oss.str());
}

}  // namespace polyvalue
