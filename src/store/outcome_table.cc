#include "src/store/outcome_table.h"

#include <algorithm>

namespace polyvalue {

void OutcomeTable::RecordDependentItem(TxnId txn, const ItemKey& key) {
  MutexLock lock(&mu_);
  pending_[txn].dependent_items.insert(key);
}

void OutcomeTable::RecordDownstreamSite(TxnId txn, SiteId site) {
  MutexLock lock(&mu_);
  pending_[txn].downstream_sites.insert(site);
}

void OutcomeTable::ForgetDependentItem(TxnId txn, const ItemKey& key) {
  MutexLock lock(&mu_);
  auto it = pending_.find(txn);
  if (it == pending_.end()) {
    return;
  }
  it->second.dependent_items.erase(key);
  // Keep the entry even if empty: we may still owe downstream
  // notifications, and the outcome itself is still unknown.
}

OutcomeTable::Resolution OutcomeTable::LearnOutcome(TxnId txn,
                                                    bool committed) {
  MutexLock lock(&mu_);
  Resolution res;
  res.committed = committed;
  auto resolved_it = resolved_.find(txn);
  if (resolved_it != resolved_.end()) {
    res.already_known = true;
    res.committed = resolved_it->second;
    return res;
  }
  auto it = pending_.find(txn);
  if (it != pending_.end()) {
    res.items_to_reduce.assign(it->second.dependent_items.begin(),
                               it->second.dependent_items.end());
    res.sites_to_notify.assign(it->second.downstream_sites.begin(),
                               it->second.downstream_sites.end());
    pending_.erase(it);
  }
  resolved_.emplace(txn, committed);
  resolved_order_.push_back(txn);
  while (resolved_order_.size() > resolved_capacity_) {
    resolved_.erase(resolved_order_.front());
    resolved_order_.pop_front();
  }
  return res;
}

bool OutcomeTable::IsTracking(TxnId txn) const {
  MutexLock lock(&mu_);
  return pending_.count(txn) > 0;
}

std::optional<bool> OutcomeTable::KnownOutcome(TxnId txn) const {
  MutexLock lock(&mu_);
  auto it = resolved_.find(txn);
  if (it == resolved_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<TxnId> OutcomeTable::UnknownTransactions() const {
  MutexLock lock(&mu_);
  std::vector<TxnId> out;
  out.reserve(pending_.size());
  for (const auto& [txn, entry] : pending_) {
    out.push_back(txn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t OutcomeTable::tracked_count() const {
  MutexLock lock(&mu_);
  return pending_.size();
}

std::optional<OutcomeTable::Entry> OutcomeTable::EntryFor(TxnId txn) const {
  MutexLock lock(&mu_);
  auto it = pending_.find(txn);
  if (it == pending_.end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace polyvalue
