// Site state reconstruction from a replayed WAL.
#ifndef SRC_STORE_RECOVERY_H_
#define SRC_STORE_RECOVERY_H_

#include <vector>

#include "src/common/status.h"
#include "src/obs/trace.h"
#include "src/store/item_store.h"
#include "src/store/outcome_table.h"
#include "src/store/wal.h"

namespace polyvalue {

// Applies `records` in order, rebuilding the item store and outcome table
// exactly as they stood at the last intact log record. The targets should
// be freshly constructed. When `trace` is non-null, emits a kWalReplay
// event (arg = record count) plus one kPolyInstall per item left
// uncertain after replay, attributed to `site`.
Status RecoverSiteState(const std::vector<WalRecord>& records,
                        ItemStore* items, OutcomeTable* outcomes,
                        TraceSink* trace = nullptr, SiteId site = SiteId());

}  // namespace polyvalue

#endif  // SRC_STORE_RECOVERY_H_
