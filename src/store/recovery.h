// Site state reconstruction from a replayed WAL.
#ifndef SRC_STORE_RECOVERY_H_
#define SRC_STORE_RECOVERY_H_

#include <vector>

#include "src/common/status.h"
#include "src/store/item_store.h"
#include "src/store/outcome_table.h"
#include "src/store/wal.h"

namespace polyvalue {

// Applies `records` in order, rebuilding the item store and outcome table
// exactly as they stood at the last intact log record. The targets should
// be freshly constructed.
Status RecoverSiteState(const std::vector<WalRecord>& records,
                        ItemStore* items, OutcomeTable* outcomes);

}  // namespace polyvalue

#endif  // SRC_STORE_RECOVERY_H_
