// Per-site item storage with two-phase locking.
//
// A site's database: a map from item keys to polyvalues (a certain item
// is simply the degenerate single-pair polyvalue). Items are created on
// first write; reads of unknown keys fail with NOT_FOUND unless the store
// was configured with a default value factory.
//
// Locking implements strict two-phase locking at item granularity —
// enough to serialise transactions *within* a site; cross-site atomicity
// is the commit protocol's job. Crucially, installing a polyvalue
// RELEASES the lock: that is the paper's entire point. A blocked 2PC
// participant would hold the lock through the in-doubt window; a
// polyvalue participant records the uncertainty in the data itself and
// lets the next transaction in.
//
// Concurrency: the DATA plane (items) is sharded — each bucket owns its
// own mutex, so reads and installs on different items proceed in
// parallel under the threaded runtimes. The LOCK plane (2PL lock table +
// wait-die queues) stays under one dedicated mutex: its critical
// sections are a few map operations, and per-transaction bookkeeping
// (held/waiting sets) spans shards anyway. Cross-shard iteration
// (ForEach, UncertainKeys) gathers then sorts, so observable order stays
// deterministic regardless of shard count.
#ifndef SRC_STORE_ITEM_STORE_H_
#define SRC_STORE_ITEM_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/poly/polyvalue.h"

namespace polyvalue {

class ItemStore {
 public:
  static constexpr size_t kDefaultShards = 16;

  // Optional factory invoked for reads of missing keys (examples use it to
  // model "accounts start at 0"). Null disables auto-creation.
  using DefaultFactory = std::function<PolyValue(const ItemKey&)>;

  explicit ItemStore(DefaultFactory default_factory = nullptr,
                     size_t shard_count = kDefaultShards);

  // --- data plane (sharded) ---

  // Reads the current (poly)value of an item.
  Result<PolyValue> Read(const ItemKey& key) const;

  // Unconditional write (used by initial loading and by the engine once a
  // transaction's fate is decided).
  void Write(const ItemKey& key, PolyValue value);

  bool Contains(const ItemKey& key) const;
  size_t size() const;
  size_t shard_count() const { return shards_.size(); }

  // Number of items currently holding an uncertain polyvalue. This is the
  // P(t) the paper's §4 analysis tracks.
  size_t UncertainCount() const;

  // Keys of uncertain items (sorted, for deterministic iteration).
  std::vector<ItemKey> UncertainKeys() const;

  // Applies `fn` to every (key, value) pair in sorted key order. Pairs
  // are copied out shard by shard first, so `fn` runs without any store
  // lock held and the iteration order is shard-count independent.
  void ForEach(
      const std::function<void(const ItemKey&, const PolyValue&)>& fn) const;

  // --- lock plane (strict 2PL, exclusive item locks) ---

  // Acquires `key` for `txn`. Fails with ABORTED on conflict (the engine
  // uses immediate-abort rather than deadlock-prone waiting). Re-entrant
  // for the same transaction.
  Status Lock(const ItemKey& key, TxnId txn);

  // Wait-die variant: on conflict, an OLDER requester (smaller txn id —
  // ids grow over time) is queued behind the holder instead of refused;
  // a younger requester still "dies" (kRefused). Deadlock-free: waits
  // only ever point from older to younger, so no cycles form.
  enum class LockAttempt { kGranted, kQueued, kRefused };
  LockAttempt LockOrQueue(const ItemKey& key, TxnId txn);

  // Releases every lock held by `txn`, granting each freed item to its
  // eldest waiter. Returns the (txn, key) grants made, so the engine can
  // resume parked work. Also removes `txn` from any wait queues.
  struct Grant {
    TxnId txn;
    ItemKey key;
  };
  std::vector<Grant> UnlockAll(TxnId txn);

  // Abandons `txn`'s queued (not yet granted) waits without touching the
  // locks it already holds.
  void CancelWaits(TxnId txn);

  // The transaction currently holding `key`, if any.
  std::optional<TxnId> LockHolder(const ItemKey& key) const;
  size_t locked_count() const;

 private:
  struct Shard {
    mutable Mutex mu POLYV_MUTEX_RANK(kStoreShard);
    std::map<ItemKey, PolyValue> items GUARDED_BY(mu);
  };

  Shard& ShardFor(const ItemKey& key) const {
    return shards_[std::hash<ItemKey>()(key) % shards_.size()];
  }

  // Shards are heap-allocated once and never moved (mutexes pin them).
  mutable std::vector<Shard> shards_;
  DefaultFactory default_factory_;

  // Lock plane: one mutex, disjoint from every shard mutex. Never held
  // together with a shard mutex; it still gets a rank below the shards
  // so that if the planes ever do nest, lockdep fixes the direction.
  mutable Mutex lock_mu_ POLYV_MUTEX_RANK(kStoreLockPlane);
  std::unordered_map<ItemKey, TxnId> locks_ GUARDED_BY(lock_mu_);
  std::unordered_map<TxnId, std::vector<ItemKey>> held_ GUARDED_BY(lock_mu_);
  // Per-item wait queues (wait-die), kept sorted eldest-first.
  std::unordered_map<ItemKey, std::vector<TxnId>> waiters_
      GUARDED_BY(lock_mu_);
};

}  // namespace polyvalue

#endif  // SRC_STORE_ITEM_STORE_H_
