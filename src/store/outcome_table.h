// The §3.3 outcome table.
//
// Each site records, for every transaction T whose outcome it does not
// yet know:
//   * the local items holding polyvalues that depend on T, and
//   * the downstream sites to which polyvalues depending on T were sent
//     (by polytransaction result shipping).
//
// When the site learns T's outcome it (1) reduces the listed local items,
// (2) forwards the outcome to each listed downstream site, and then (3)
// deletes the entry — "once this is done, that site can forget the
// outcome of T". A bounded recently-resolved cache answers duplicate
// notifications without re-propagating them.
#ifndef SRC_STORE_OUTCOME_TABLE_H_
#define SRC_STORE_OUTCOME_TABLE_H_

#include <deque>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/thread_annotations.h"

namespace polyvalue {

class OutcomeTable {
 public:
  struct Entry {
    std::set<ItemKey> dependent_items;
    std::set<SiteId> downstream_sites;
  };

  // What LearnOutcome hands back for the caller to act on.
  struct Resolution {
    bool already_known = false;
    bool committed = false;
    std::vector<ItemKey> items_to_reduce;
    std::vector<SiteId> sites_to_notify;
  };

  explicit OutcomeTable(size_t resolved_cache_capacity = 4096)
      : resolved_capacity_(resolved_cache_capacity) {}

  // Registers that local item `key` now depends on unknown-outcome `txn`.
  void RecordDependentItem(TxnId txn, const ItemKey& key);

  // Registers that a polyvalue depending on `txn` was shipped to `site`.
  void RecordDownstreamSite(TxnId txn, SiteId site);

  // Deregisters an item (e.g. it was overwritten with a simple value, so
  // its uncertainty is moot — the paper's UY term).
  void ForgetDependentItem(TxnId txn, const ItemKey& key);

  // Processes a learned outcome: returns the cleanup work and deletes the
  // entry. Idempotent — a second call reports already_known with no work.
  Resolution LearnOutcome(TxnId txn, bool committed);

  // True if this site is currently tracking `txn` as unknown.
  bool IsTracking(TxnId txn) const;

  // The cached outcome of a recently resolved transaction, if still held.
  std::optional<bool> KnownOutcome(TxnId txn) const;

  // Transactions currently tracked as unknown (sorted).
  std::vector<TxnId> UnknownTransactions() const;

  size_t tracked_count() const;

  // Introspection for tests.
  std::optional<Entry> EntryFor(TxnId txn) const;

 private:
  mutable Mutex mu_ POLYV_MUTEX_RANK(kOutcomeTable);
  std::unordered_map<TxnId, Entry> pending_ GUARDED_BY(mu_);
  // Bounded FIFO cache of resolved outcomes.
  std::unordered_map<TxnId, bool> resolved_ GUARDED_BY(mu_);
  std::deque<TxnId> resolved_order_ GUARDED_BY(mu_);
  const size_t resolved_capacity_;
};

}  // namespace polyvalue

#endif  // SRC_STORE_OUTCOME_TABLE_H_
