// Per-site write-ahead log.
//
// A site logs every durable state change — item writes (including
// polyvalue installs and reductions), learned transaction outcomes, and
// outcome-table bookkeeping — before applying it. After a crash,
// ReplayFile() reconstructs the records and recovery.h rebuilds the
// ItemStore and OutcomeTable, so a site that failed during the in-doubt
// window wakes up still knowing which polyvalues it owes reductions for.
//
// On-disk format, per record:
//     [u32 body_len][u32 crc32(body)][body]
// A torn tail (truncated or CRC-failing final record) is detected and
// ignored — the write was never acknowledged. Corruption *before* the
// tail is reported as DATA_LOSS.
#ifndef SRC_STORE_WAL_H_
#define SRC_STORE_WAL_H_

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/poly/polyvalue.h"

namespace polyvalue {

enum class WalRecordType : uint8_t {
  kWrite = 1,       // key + polyvalue
  kOutcome = 2,     // txn + committed flag
  kTrackItem = 3,   // txn + key  (outcome table: local dependent item)
  kTrackSite = 4,   // txn + site (outcome table: downstream site)
  kUntrackItem = 5, // txn + key  (dependency overwritten)
  kForgetTxn = 6,   // txn        (outcome table entry deleted)
  kPrepared = 7,    // txn + coordinator site + pending writes (READY vote)
  kPreparedResolved = 8,  // txn (participation finished / policy applied)
};

struct WalRecord {
  WalRecordType type;
  ItemKey key;
  PolyValue value;
  TxnId txn;
  bool committed = false;
  SiteId site;
  std::map<ItemKey, PolyValue> writes;  // kPrepared only

  static WalRecord Write(ItemKey key, PolyValue value);
  static WalRecord Outcome(TxnId txn, bool committed);
  static WalRecord TrackItem(TxnId txn, ItemKey key);
  static WalRecord TrackSite(TxnId txn, SiteId site);
  static WalRecord UntrackItem(TxnId txn, ItemKey key);
  static WalRecord ForgetTxn(TxnId txn);
  static WalRecord Prepared(TxnId txn, SiteId coordinator,
                            std::map<ItemKey, PolyValue> writes);
  static WalRecord PreparedResolved(TxnId txn);

  std::string Encode() const;
  static Result<WalRecord> Decode(const std::string& body);
};

class Wal {
 public:
  // Opens (creating or appending to) the log at `path`. When
  // `sync_every_append` is set each Append fsyncs — slow but the honest
  // durability story; tests mostly run without it.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           bool sync_every_append = false);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  Status Append(const WalRecord& record);
  Status Sync();

  // Truncates the log to empty (after a successful snapshot has captured
  // everything the log recorded).
  Status Reset();

  const std::string& path() const { return path_; }
  uint64_t records_appended() const { return records_appended_; }

  // Reads every intact record from the file. A torn final record is
  // silently dropped; earlier corruption returns DATA_LOSS.
  static Result<std::vector<WalRecord>> ReplayFile(const std::string& path);

 private:
  Wal(std::string path, std::FILE* file, bool sync_every_append)
      : path_(std::move(path)), file_(file),
        sync_every_append_(sync_every_append) {}

  std::string path_;
  std::FILE* file_;
  bool sync_every_append_;
  std::mutex mu_;
  uint64_t records_appended_ = 0;
};

}  // namespace polyvalue

#endif  // SRC_STORE_WAL_H_
