// Per-site write-ahead log.
//
// A site logs every durable state change — item writes (including
// polyvalue installs and reductions), learned transaction outcomes, and
// outcome-table bookkeeping — before applying it. After a crash,
// ReplayFile() reconstructs the records and recovery.h rebuilds the
// ItemStore and OutcomeTable, so a site that failed during the in-doubt
// window wakes up still knowing which polyvalues it owes reductions for.
//
// On-disk format, per frame:
//     [u32 body_len][u32 crc32(body)][body]
// A body is either a single encoded record or — under group commit — a
// batch container (tag kWalBatchTag) holding several records written and
// fsynced as one unit. A torn tail (truncated or CRC-failing final
// frame, or a CRC failure after which no intact frame chain follows) is
// detected and ignored — those writes were never acknowledged.
// Corruption *before* an intact suffix is reported as DATA_LOSS.
//
// Sync policies:
//   kFlushOnly   — fflush per append, no fsync (fast, default; durability
//                  against process death, not power loss).
//   kEveryAppend — fflush + fsync per append (the honest per-record
//                  durability story; slow).
//   kGroupCommit — appends only buffer in memory; Flush() coalesces every
//                  buffered record into ONE batch frame + fsync. The
//                  engine calls Flush() before releasing any externally
//                  visible effect (message send, client callback), so an
//                  acknowledged write is always durable, while concurrent
//                  transactions share the same physical write+fsync.
#ifndef SRC_STORE_WAL_H_
#define SRC_STORE_WAL_H_

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/poly/polyvalue.h"

namespace polyvalue {

enum class WalRecordType : uint8_t {
  kWrite = 1,       // key + polyvalue
  kOutcome = 2,     // txn + committed flag
  kTrackItem = 3,   // txn + key  (outcome table: local dependent item)
  kTrackSite = 4,   // txn + site (outcome table: downstream site)
  kUntrackItem = 5, // txn + key  (dependency overwritten)
  kForgetTxn = 6,   // txn        (outcome table entry deleted)
  kPrepared = 7,    // txn + coordinator site + pending writes (READY vote)
  kPreparedResolved = 8,  // txn (participation finished / policy applied)
};

// First body byte of a group-commit batch frame. Outside the
// WalRecordType range, so a batch container can never be confused with a
// single record (and old readers fail loudly instead of misparsing).
inline constexpr uint8_t kWalBatchTag = 0xB7;

struct WalRecord {
  WalRecordType type;
  ItemKey key;
  PolyValue value;
  TxnId txn;
  bool committed = false;
  SiteId site;
  std::map<ItemKey, PolyValue> writes;  // kPrepared only

  static WalRecord Write(ItemKey key, PolyValue value);
  static WalRecord Outcome(TxnId txn, bool committed);
  static WalRecord TrackItem(TxnId txn, ItemKey key);
  static WalRecord TrackSite(TxnId txn, SiteId site);
  static WalRecord UntrackItem(TxnId txn, ItemKey key);
  static WalRecord ForgetTxn(TxnId txn);
  static WalRecord Prepared(TxnId txn, SiteId coordinator,
                            std::map<ItemKey, PolyValue> writes);
  static WalRecord PreparedResolved(TxnId txn);

  std::string Encode() const;
  static Result<WalRecord> Decode(const std::string& body);
};

class Wal {
 public:
  enum class SyncPolicy : uint8_t {
    kFlushOnly,    // write + fflush per append (today's default)
    kEveryAppend,  // write + fflush + fsync per append
    kGroupCommit,  // buffer appends; Flush() writes one batch + fsync
  };

  struct Options {
    SyncPolicy sync_policy = SyncPolicy::kFlushOnly;
    // Group commit only: how long a flushing thread lingers (wall clock)
    // with the buffer open so concurrent appenders can join the batch.
    // 0 = flush immediately (still coalesces whatever is already
    // buffered; deterministic under the simulator).
    double group_window_seconds = 0.0;
    // Group commit only: buffered records that trigger an inline flush
    // without waiting for the Flush() barrier.
    size_t max_batch = 128;
  };

  // Opens (creating or appending to) the log at `path`.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           Options options);
  // Back-compat convenience: `sync_every_append` maps to kEveryAppend.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path,
                                           bool sync_every_append = false);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  Status Append(const WalRecord& record);

  // Group-commit barrier: blocks until every record appended before this
  // call is durable (one coalesced write + fsync, shared with concurrent
  // callers). No-op under the per-append policies, whose appends are
  // already as durable as they will get.
  Status Flush();

  // Strong barrier: Flush() plus an unconditional fsync.
  Status Sync();

  // Truncates the log to empty (after a successful snapshot has captured
  // everything the log recorded). Discards any unflushed buffered
  // records — the snapshot preceding a Reset captures live state, which
  // supersedes them.
  Status Reset();

  const std::string& path() const { return path_; }
  uint64_t records_appended() const;

  // Group-commit accounting: physical batch frames written and records
  // they carried (counts singles written by per-append policies too, as
  // batches of one).
  uint64_t batches_flushed() const;
  uint64_t records_flushed() const;

  // Reads every intact record from the file. A torn final frame is
  // silently dropped; earlier corruption returns DATA_LOSS.
  static Result<std::vector<WalRecord>> ReplayFile(const std::string& path);

 private:
  Wal(std::string path, std::FILE* file, Options options)
      : path_(std::move(path)), options_(options), file_(file) {}

  // Writes `bodies` as one frame (batch container for >1) to `file` and
  // syncs. Caller must NOT hold mu_ — file writes happen outside the
  // lock; `file` is the pointer read under mu_ before unlocking, and the
  // flushing_ token keeps Reset() from replacing it mid-write.
  static Status WriteAndSync(const std::vector<std::string>& bodies,
                             std::FILE* file);

  const std::string path_;
  const Options options_;
  mutable Mutex mu_ POLYV_MUTEX_RANK(kWal);
  CondVar cv_;
  // Replaced by Reset() under mu_; flushes read it under mu_ and write
  // outside the lock, fenced by flushing_ (Reset waits for !flushing_).
  std::FILE* file_ GUARDED_BY(mu_);
  // Group commit: encoded record bodies awaiting the next flush.
  std::vector<std::string> pending_ GUARDED_BY(mu_);
  bool flushing_ GUARDED_BY(mu_) = false;
  uint64_t appended_seq_ GUARDED_BY(mu_) = 0;  // records accepted by Append
  uint64_t durable_seq_ GUARDED_BY(mu_) = 0;   // covered by a flush
  uint64_t records_appended_ GUARDED_BY(mu_) = 0;
  uint64_t batches_flushed_ GUARDED_BY(mu_) = 0;
  uint64_t records_flushed_ GUARDED_BY(mu_) = 0;
};

}  // namespace polyvalue

#endif  // SRC_STORE_WAL_H_
