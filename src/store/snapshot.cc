#include "src/store/snapshot.h"

#include <cstdio>

#include "src/common/crc32.h"
#include "src/common/strings.h"
#include "src/net/codec.h"
#include "src/net/wire.h"

namespace polyvalue {

namespace {
constexpr char kMagic[] = "PVSNAP01";
constexpr size_t kMagicLen = 8;
constexpr uint64_t kSaneCount = 1ULL << 24;
}  // namespace

std::string SiteSnapshot::Encode() const {
  ByteWriter w;
  w.PutVarint(items.size());
  for (const auto& [key, value] : items) {
    w.PutString(key);
    EncodePolyValue(value, &w);
  }
  w.PutVarint(pending.size());
  for (const PendingTxn& p : pending) {
    w.PutVarint(p.txn.value());
    w.PutVarint(p.dependent_items.size());
    for (const ItemKey& key : p.dependent_items) {
      w.PutString(key);
    }
    w.PutVarint(p.downstream_sites.size());
    for (SiteId site : p.downstream_sites) {
      w.PutVarint(site.value());
    }
  }
  w.PutVarint(prepared.size());
  for (const PreparedTxn& p : prepared) {
    w.PutVarint(p.txn.value());
    w.PutVarint(p.coordinator.value());
    w.PutVarint(p.writes.size());
    for (const auto& [key, value] : p.writes) {
      w.PutString(key);
      EncodePolyValue(value, &w);
    }
  }
  w.PutVarint(decided.size());
  for (const auto& [txn, committed] : decided) {
    w.PutVarint(txn.value());
    w.PutBool(committed);
  }
  return w.Take();
}

Result<SiteSnapshot> SiteSnapshot::Decode(const std::string& body) {
  ByteReader r(body);
  SiteSnapshot snap;
  POLYV_ASSIGN_OR_RETURN(uint64_t n_items, r.GetVarint());
  if (n_items > kSaneCount) {
    return DataLossError("snapshot item count implausible");
  }
  for (uint64_t i = 0; i < n_items; ++i) {
    POLYV_ASSIGN_OR_RETURN(std::string key, r.GetString());
    POLYV_ASSIGN_OR_RETURN(PolyValue value, DecodePolyValue(&r));
    snap.items.emplace(std::move(key), std::move(value));
  }
  POLYV_ASSIGN_OR_RETURN(uint64_t n_pending, r.GetVarint());
  if (n_pending > kSaneCount) {
    return DataLossError("snapshot pending count implausible");
  }
  for (uint64_t i = 0; i < n_pending; ++i) {
    PendingTxn p;
    POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
    p.txn = TxnId(txn);
    POLYV_ASSIGN_OR_RETURN(uint64_t n_deps, r.GetVarint());
    if (n_deps > kSaneCount) {
      return DataLossError("snapshot dep count implausible");
    }
    for (uint64_t j = 0; j < n_deps; ++j) {
      POLYV_ASSIGN_OR_RETURN(std::string key, r.GetString());
      p.dependent_items.push_back(std::move(key));
    }
    POLYV_ASSIGN_OR_RETURN(uint64_t n_sites, r.GetVarint());
    if (n_sites > kSaneCount) {
      return DataLossError("snapshot site count implausible");
    }
    for (uint64_t j = 0; j < n_sites; ++j) {
      POLYV_ASSIGN_OR_RETURN(uint64_t site, r.GetVarint());
      p.downstream_sites.push_back(SiteId(site));
    }
    snap.pending.push_back(std::move(p));
  }
  POLYV_ASSIGN_OR_RETURN(uint64_t n_prepared, r.GetVarint());
  if (n_prepared > kSaneCount) {
    return DataLossError("snapshot prepared count implausible");
  }
  for (uint64_t i = 0; i < n_prepared; ++i) {
    PreparedTxn p;
    POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
    p.txn = TxnId(txn);
    POLYV_ASSIGN_OR_RETURN(uint64_t coordinator, r.GetVarint());
    p.coordinator = SiteId(coordinator);
    POLYV_ASSIGN_OR_RETURN(uint64_t n_writes, r.GetVarint());
    if (n_writes > kSaneCount) {
      return DataLossError("snapshot write count implausible");
    }
    for (uint64_t j = 0; j < n_writes; ++j) {
      POLYV_ASSIGN_OR_RETURN(std::string key, r.GetString());
      POLYV_ASSIGN_OR_RETURN(PolyValue value, DecodePolyValue(&r));
      p.writes.emplace(std::move(key), std::move(value));
    }
    snap.prepared.push_back(std::move(p));
  }
  POLYV_ASSIGN_OR_RETURN(uint64_t n_decided, r.GetVarint());
  if (n_decided > kSaneCount) {
    return DataLossError("snapshot decided count implausible");
  }
  for (uint64_t i = 0; i < n_decided; ++i) {
    POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
    POLYV_ASSIGN_OR_RETURN(bool committed, r.GetBool());
    snap.decided.emplace(TxnId(txn), committed);
  }
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes in snapshot");
  }
  return snap;
}

SiteSnapshot CaptureStores(const ItemStore& items,
                           const OutcomeTable& outcomes) {
  SiteSnapshot snap;
  items.ForEach([&snap](const ItemKey& key, const PolyValue& value) {
    snap.items.emplace(key, value);
  });
  for (TxnId txn : outcomes.UnknownTransactions()) {
    const auto entry = outcomes.EntryFor(txn);
    if (!entry.has_value()) {
      continue;
    }
    SiteSnapshot::PendingTxn p;
    p.txn = txn;
    p.dependent_items.assign(entry->dependent_items.begin(),
                             entry->dependent_items.end());
    p.downstream_sites.assign(entry->downstream_sites.begin(),
                              entry->downstream_sites.end());
    snap.pending.push_back(std::move(p));
  }
  return snap;
}

void RestoreStores(const SiteSnapshot& snapshot, ItemStore* items,
                   OutcomeTable* outcomes) {
  for (const auto& [key, value] : snapshot.items) {
    items->Write(key, value);
  }
  for (const SiteSnapshot::PendingTxn& p : snapshot.pending) {
    for (const ItemKey& key : p.dependent_items) {
      outcomes->RecordDependentItem(p.txn, key);
    }
    for (SiteId site : p.downstream_sites) {
      outcomes->RecordDownstreamSite(p.txn, site);
    }
  }
}

Status WriteSnapshotFile(const SiteSnapshot& snapshot,
                         const std::string& path) {
  const std::string body = snapshot.Encode();
  ByteWriter frame;
  frame.PutRaw(kMagic, kMagicLen);
  frame.PutFixed32(static_cast<uint32_t>(body.size()));
  frame.PutFixed32(Crc32(body));
  frame.PutRaw(body.data(), body.size());

  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return UnavailableError(StrCat("cannot create ", tmp));
  }
  const std::string& bytes = frame.buffer();
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  const bool flushed = std::fflush(file) == 0;
  std::fclose(file);
  if (!wrote || !flushed) {
    std::remove(tmp.c_str());
    return UnavailableError("snapshot write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return UnavailableError("snapshot rename failed");
  }
  return OkStatus();
}

Result<SiteSnapshot> ReadSnapshotFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError(StrCat("no snapshot at ", path));
  }
  std::string data;
  char buf[64 * 1024];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    data.append(buf, n);
  }
  std::fclose(file);
  if (data.size() < kMagicLen + 8 ||
      data.compare(0, kMagicLen, kMagic) != 0) {
    return DataLossError("bad snapshot magic");
  }
  ByteReader header(data.data() + kMagicLen, 8);
  const uint32_t len = header.GetFixed32().value();
  const uint32_t crc = header.GetFixed32().value();
  if (data.size() != kMagicLen + 8 + len) {
    return DataLossError("snapshot size mismatch");
  }
  const std::string body = data.substr(kMagicLen + 8);
  if (Crc32(body) != crc) {
    return DataLossError("snapshot CRC mismatch");
  }
  return SiteSnapshot::Decode(body);
}

}  // namespace polyvalue
