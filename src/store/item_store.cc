#include "src/store/item_store.h"

#include <algorithm>
#include <utility>

#include "src/common/strings.h"

namespace polyvalue {

ItemStore::ItemStore(DefaultFactory default_factory, size_t shard_count)
    : shards_(shard_count == 0 ? 1 : shard_count),
      default_factory_(std::move(default_factory)) {}

Result<PolyValue> ItemStore::Read(const ItemKey& key) const {
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(&shard.mu);
    auto it = shard.items.find(key);
    if (it != shard.items.end()) {
      return it->second;
    }
  }
  if (default_factory_ != nullptr) {
    return default_factory_(key);
  }
  return NotFoundError(StrCat("item '", key, "' does not exist"));
}

void ItemStore::Write(const ItemKey& key, PolyValue value) {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  shard.items.insert_or_assign(key, std::move(value));
}

bool ItemStore::Contains(const ItemKey& key) const {
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  return shard.items.count(key) > 0;
}

size_t ItemStore::size() const {
  size_t n = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    n += shard.items.size();
  }
  return n;
}

size_t ItemStore::UncertainCount() const {
  size_t n = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (const auto& [key, value] : shard.items) {
      if (!value.is_certain()) {
        ++n;
      }
    }
  }
  return n;
}

std::vector<ItemKey> ItemStore::UncertainKeys() const {
  std::vector<ItemKey> keys;
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (const auto& [key, value] : shard.items) {
      if (!value.is_certain()) {
        keys.push_back(key);
      }
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void ItemStore::ForEach(
    const std::function<void(const ItemKey&, const PolyValue&)>& fn) const {
  std::vector<std::pair<ItemKey, PolyValue>> snapshot;
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    for (const auto& [key, value] : shard.items) {
      snapshot.emplace_back(key, value);
    }
  }
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, value] : snapshot) {
    fn(key, value);
  }
}

Status ItemStore::Lock(const ItemKey& key, TxnId txn) {
  MutexLock lock(&lock_mu_);
  auto it = locks_.find(key);
  if (it != locks_.end()) {
    if (it->second == txn) {
      return OkStatus();  // re-entrant
    }
    return AbortedError(StrCat("item '", key, "' locked by ", it->second));
  }
  locks_.emplace(key, txn);
  held_[txn].push_back(key);
  return OkStatus();
}

ItemStore::LockAttempt ItemStore::LockOrQueue(const ItemKey& key,
                                              TxnId txn) {
  MutexLock lock(&lock_mu_);
  auto it = locks_.find(key);
  if (it == locks_.end()) {
    locks_.emplace(key, txn);
    held_[txn].push_back(key);
    return LockAttempt::kGranted;
  }
  if (it->second == txn) {
    return LockAttempt::kGranted;  // re-entrant
  }
  // Wait-die: only an older transaction may wait for a younger holder.
  if (!(txn < it->second)) {
    return LockAttempt::kRefused;
  }
  std::vector<TxnId>& queue = waiters_[key];
  if (std::find(queue.begin(), queue.end(), txn) == queue.end()) {
    queue.insert(
        std::upper_bound(queue.begin(), queue.end(), txn), txn);
  }
  return LockAttempt::kQueued;
}

std::vector<ItemStore::Grant> ItemStore::UnlockAll(TxnId txn) {
  MutexLock lock(&lock_mu_);
  std::vector<Grant> grants;
  auto it = held_.find(txn);
  if (it != held_.end()) {
    for (const ItemKey& key : it->second) {
      auto lock_it = locks_.find(key);
      if (lock_it == locks_.end() || lock_it->second != txn) {
        continue;
      }
      locks_.erase(lock_it);
      // Hand the item to its eldest waiter, if any.
      auto queue_it = waiters_.find(key);
      if (queue_it != waiters_.end() && !queue_it->second.empty()) {
        const TxnId next = queue_it->second.front();
        queue_it->second.erase(queue_it->second.begin());
        if (queue_it->second.empty()) {
          waiters_.erase(queue_it);
        }
        locks_.emplace(key, next);
        held_[next].push_back(key);
        grants.push_back({next, key});
      }
    }
    held_.erase(it);
  }
  // Drop any waits the departing transaction still had queued.
  for (auto queue_it = waiters_.begin(); queue_it != waiters_.end();) {
    auto& queue = queue_it->second;
    queue.erase(std::remove(queue.begin(), queue.end(), txn), queue.end());
    if (queue.empty()) {
      queue_it = waiters_.erase(queue_it);
    } else {
      ++queue_it;
    }
  }
  return grants;
}

void ItemStore::CancelWaits(TxnId txn) {
  MutexLock lock(&lock_mu_);
  for (auto queue_it = waiters_.begin(); queue_it != waiters_.end();) {
    auto& queue = queue_it->second;
    queue.erase(std::remove(queue.begin(), queue.end(), txn), queue.end());
    if (queue.empty()) {
      queue_it = waiters_.erase(queue_it);
    } else {
      ++queue_it;
    }
  }
}

std::optional<TxnId> ItemStore::LockHolder(const ItemKey& key) const {
  MutexLock lock(&lock_mu_);
  auto it = locks_.find(key);
  if (it == locks_.end()) {
    return std::nullopt;
  }
  return it->second;
}

size_t ItemStore::locked_count() const {
  MutexLock lock(&lock_mu_);
  return locks_.size();
}

}  // namespace polyvalue
