// Site state snapshots (checkpoints).
//
// A WAL grows without bound; a snapshot captures the full durable state
// of a site — items, outcome-table pending entries, engine prepared
// votes and coordinator decisions — in one CRC-protected file, after
// which the WAL can be truncated. Recovery = load snapshot, then replay
// the (short) WAL tail.
//
// File layout:
//     [8-byte magic "PVSNAP01"]
//     [u32 body_len][u32 crc32(body)][body]
// The body is a single wire-encoded record; a torn or corrupt snapshot
// is detected and reported (callers fall back to pure WAL replay).
#ifndef SRC_STORE_SNAPSHOT_H_
#define SRC_STORE_SNAPSHOT_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/poly/polyvalue.h"
#include "src/store/item_store.h"
#include "src/store/outcome_table.h"

namespace polyvalue {

// Everything a site must persist across restarts.
struct SiteSnapshot {
  std::map<ItemKey, PolyValue> items;
  // Outcome table: pending transactions with their dependents.
  struct PendingTxn {
    TxnId txn;
    std::vector<ItemKey> dependent_items;
    std::vector<SiteId> downstream_sites;
  };
  std::vector<PendingTxn> pending;
  // Engine durable state.
  struct PreparedTxn {
    TxnId txn;
    SiteId coordinator;
    std::map<ItemKey, PolyValue> writes;
  };
  std::vector<PreparedTxn> prepared;
  std::map<TxnId, bool> decided;

  std::string Encode() const;
  static Result<SiteSnapshot> Decode(const std::string& body);
};

// Captures the current state of the given stores. (Engine durable state
// is supplied by the caller; see Site::Checkpoint.)
SiteSnapshot CaptureStores(const ItemStore& items,
                           const OutcomeTable& outcomes);

// Applies a snapshot into freshly constructed stores.
void RestoreStores(const SiteSnapshot& snapshot, ItemStore* items,
                   OutcomeTable* outcomes);

// Atomic file I/O (write to temp + rename).
Status WriteSnapshotFile(const SiteSnapshot& snapshot,
                         const std::string& path);
Result<SiteSnapshot> ReadSnapshotFile(const std::string& path);

}  // namespace polyvalue

#endif  // SRC_STORE_SNAPSHOT_H_
