#include "src/store/recovery.h"

namespace polyvalue {

Status RecoverSiteState(const std::vector<WalRecord>& records,
                        ItemStore* items, OutcomeTable* outcomes) {
  for (const WalRecord& record : records) {
    switch (record.type) {
      case WalRecordType::kWrite:
        items->Write(record.key, record.value);
        break;
      case WalRecordType::kOutcome:
        // Re-learning is idempotent; cleanup work was either done before
        // the crash (later records reflect it) or will be redone by the
        // caller walking the rebuilt outcome table.
        outcomes->LearnOutcome(record.txn, record.committed);
        break;
      case WalRecordType::kTrackItem:
        outcomes->RecordDependentItem(record.txn, record.key);
        break;
      case WalRecordType::kTrackSite:
        outcomes->RecordDownstreamSite(record.txn, record.site);
        break;
      case WalRecordType::kUntrackItem:
        outcomes->ForgetDependentItem(record.txn, record.key);
        break;
      case WalRecordType::kPrepared:
      case WalRecordType::kPreparedResolved:
        // Engine-level records: consumed by TxnEngine::RestoreDurableState.
        break;
      case WalRecordType::kForgetTxn: {
        // Entry removal is modelled by LearnOutcome in the table; a
        // standalone forget record only appears for entries that were
        // fully propagated, so dropping it is safe. (Reserved for future
        // compaction.)
        break;
      }
    }
  }
  return OkStatus();
}

}  // namespace polyvalue
