#include "src/store/recovery.h"

namespace polyvalue {

Status RecoverSiteState(const std::vector<WalRecord>& records,
                        ItemStore* items, OutcomeTable* outcomes,
                        TraceSink* trace, SiteId site) {
  for (const WalRecord& record : records) {
    switch (record.type) {
      case WalRecordType::kWrite:
        items->Write(record.key, record.value);
        break;
      case WalRecordType::kOutcome:
        // Re-learning is idempotent; cleanup work was either done before
        // the crash (later records reflect it) or will be redone by the
        // caller walking the rebuilt outcome table.
        outcomes->LearnOutcome(record.txn, record.committed);
        break;
      case WalRecordType::kTrackItem:
        outcomes->RecordDependentItem(record.txn, record.key);
        break;
      case WalRecordType::kTrackSite:
        outcomes->RecordDownstreamSite(record.txn, record.site);
        break;
      case WalRecordType::kUntrackItem:
        outcomes->ForgetDependentItem(record.txn, record.key);
        break;
      case WalRecordType::kPrepared:
      case WalRecordType::kPreparedResolved:
        // Engine-level records: consumed by TxnEngine::RestoreDurableState.
        break;
      case WalRecordType::kForgetTxn: {
        // Entry removal is modelled by LearnOutcome in the table; a
        // standalone forget record only appears for entries that were
        // fully propagated, so dropping it is safe. (Reserved for future
        // compaction.)
        break;
      }
    }
  }
  if (trace != nullptr) {
    TraceEvent replay;
    replay.type = TraceEventType::kWalReplay;
    replay.site = site;
    replay.arg = records.size();
    trace->Emit(replay);
    // Items still uncertain after replay re-enter the auditor's open set:
    // the in-doubt window survived the crash and must still drain.
    for (const ItemKey& key : items->UncertainKeys()) {
      const Result<PolyValue> value = items->Read(key);
      if (!value.ok()) {
        continue;
      }
      const std::vector<TxnId> deps = value.value().Dependencies();
      TraceEvent install;
      install.type = TraceEventType::kPolyInstall;
      install.site = site;
      install.txn = deps.empty() ? TxnId() : deps.front();
      install.key = key;
      trace->Emit(install);
    }
  }
  return OkStatus();
}

}  // namespace polyvalue
