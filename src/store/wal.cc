#include "src/store/wal.h"

#include <unistd.h>

#include "src/common/crc32.h"
#include "src/common/strings.h"
#include "src/net/codec.h"
#include "src/net/wire.h"

namespace polyvalue {

WalRecord WalRecord::Write(ItemKey key, PolyValue value) {
  WalRecord r;
  r.type = WalRecordType::kWrite;
  r.key = std::move(key);
  r.value = std::move(value);
  return r;
}

WalRecord WalRecord::Outcome(TxnId txn, bool committed) {
  WalRecord r;
  r.type = WalRecordType::kOutcome;
  r.txn = txn;
  r.committed = committed;
  return r;
}

WalRecord WalRecord::TrackItem(TxnId txn, ItemKey key) {
  WalRecord r;
  r.type = WalRecordType::kTrackItem;
  r.txn = txn;
  r.key = std::move(key);
  return r;
}

WalRecord WalRecord::TrackSite(TxnId txn, SiteId site) {
  WalRecord r;
  r.type = WalRecordType::kTrackSite;
  r.txn = txn;
  r.site = site;
  return r;
}

WalRecord WalRecord::UntrackItem(TxnId txn, ItemKey key) {
  WalRecord r;
  r.type = WalRecordType::kUntrackItem;
  r.txn = txn;
  r.key = std::move(key);
  return r;
}

WalRecord WalRecord::ForgetTxn(TxnId txn) {
  WalRecord r;
  r.type = WalRecordType::kForgetTxn;
  r.txn = txn;
  return r;
}

WalRecord WalRecord::Prepared(TxnId txn, SiteId coordinator,
                              std::map<ItemKey, PolyValue> writes) {
  WalRecord r;
  r.type = WalRecordType::kPrepared;
  r.txn = txn;
  r.site = coordinator;
  r.writes = std::move(writes);
  return r;
}

WalRecord WalRecord::PreparedResolved(TxnId txn) {
  WalRecord r;
  r.type = WalRecordType::kPreparedResolved;
  r.txn = txn;
  return r;
}

std::string WalRecord::Encode() const {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  switch (type) {
    case WalRecordType::kWrite:
      w.PutString(key);
      EncodePolyValue(value, &w);
      break;
    case WalRecordType::kOutcome:
      w.PutVarint(txn.value());
      w.PutBool(committed);
      break;
    case WalRecordType::kTrackItem:
    case WalRecordType::kUntrackItem:
      w.PutVarint(txn.value());
      w.PutString(key);
      break;
    case WalRecordType::kTrackSite:
      w.PutVarint(txn.value());
      w.PutVarint(site.value());
      break;
    case WalRecordType::kForgetTxn:
    case WalRecordType::kPreparedResolved:
      w.PutVarint(txn.value());
      break;
    case WalRecordType::kPrepared:
      w.PutVarint(txn.value());
      w.PutVarint(site.value());
      w.PutVarint(writes.size());
      for (const auto& [k, v] : writes) {
        w.PutString(k);
        EncodePolyValue(v, &w);
      }
      break;
  }
  return w.Take();
}

Result<WalRecord> WalRecord::Decode(const std::string& body) {
  ByteReader r(body);
  POLYV_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  WalRecord record;
  record.type = static_cast<WalRecordType>(tag);
  switch (record.type) {
    case WalRecordType::kWrite: {
      POLYV_ASSIGN_OR_RETURN(record.key, r.GetString());
      POLYV_ASSIGN_OR_RETURN(record.value, DecodePolyValue(&r));
      break;
    }
    case WalRecordType::kOutcome: {
      POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
      record.txn = TxnId(txn);
      POLYV_ASSIGN_OR_RETURN(record.committed, r.GetBool());
      break;
    }
    case WalRecordType::kTrackItem:
    case WalRecordType::kUntrackItem: {
      POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
      record.txn = TxnId(txn);
      POLYV_ASSIGN_OR_RETURN(record.key, r.GetString());
      break;
    }
    case WalRecordType::kTrackSite: {
      POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
      record.txn = TxnId(txn);
      POLYV_ASSIGN_OR_RETURN(uint64_t site, r.GetVarint());
      record.site = SiteId(site);
      break;
    }
    case WalRecordType::kForgetTxn:
    case WalRecordType::kPreparedResolved: {
      POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
      record.txn = TxnId(txn);
      break;
    }
    case WalRecordType::kPrepared: {
      POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
      record.txn = TxnId(txn);
      POLYV_ASSIGN_OR_RETURN(uint64_t site, r.GetVarint());
      record.site = SiteId(site);
      POLYV_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
      if (n > (1u << 20)) {
        return DataLossError("prepared write set too large");
      }
      for (uint64_t i = 0; i < n; ++i) {
        POLYV_ASSIGN_OR_RETURN(std::string k, r.GetString());
        POLYV_ASSIGN_OR_RETURN(PolyValue v, DecodePolyValue(&r));
        record.writes.emplace(std::move(k), std::move(v));
      }
      break;
    }
    default:
      return DataLossError(StrCat("unknown WAL record type ", int(tag)));
  }
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes in WAL record");
  }
  return record;
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       bool sync_every_append) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return UnavailableError(StrCat("cannot open WAL at ", path));
  }
  return std::unique_ptr<Wal>(new Wal(path, file, sync_every_append));
}

Wal::~Wal() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status Wal::Append(const WalRecord& record) {
  const std::string body = record.Encode();
  ByteWriter frame;
  frame.PutFixed32(static_cast<uint32_t>(body.size()));
  frame.PutFixed32(Crc32(body));
  frame.PutRaw(body.data(), body.size());

  std::lock_guard<std::mutex> lock(mu_);
  const std::string& bytes = frame.buffer();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return UnavailableError("WAL write failed");
  }
  if (std::fflush(file_) != 0) {
    return UnavailableError("WAL flush failed");
  }
  if (sync_every_append_) {
    if (fsync(fileno(file_)) != 0) {
      return UnavailableError("WAL fsync failed");
    }
  }
  ++records_appended_;
  return OkStatus();
}

Status Wal::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* replacement = std::freopen(path_.c_str(), "wb", file_);
  if (replacement == nullptr) {
    return UnavailableError(StrCat("WAL reset failed for ", path_));
  }
  file_ = replacement;
  return OkStatus();
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fflush(file_) != 0 || fsync(fileno(file_)) != 0) {
    return UnavailableError("WAL sync failed");
  }
  return OkStatus();
}

Result<std::vector<WalRecord>> Wal::ReplayFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return std::vector<WalRecord>{};  // no log yet: empty history
  }
  std::string data;
  char buf[64 * 1024];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    data.append(buf, n);
  }
  std::fclose(file);

  std::vector<WalRecord> records;
  size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      break;  // torn header at tail: drop
    }
    ByteReader header(data.data() + pos, 8);
    const uint32_t len = header.GetFixed32().value();
    const uint32_t crc = header.GetFixed32().value();
    if (data.size() - pos - 8 < len) {
      break;  // torn body at tail: drop
    }
    const std::string body(data.data() + pos + 8, len);
    if (Crc32(body) != crc) {
      if (pos + 8 + len == data.size()) {
        break;  // corrupt final record: torn write, drop
      }
      return DataLossError(
          StrCat("WAL corruption at offset ", pos, " in ", path));
    }
    Result<WalRecord> record = WalRecord::Decode(body);
    if (!record.ok()) {
      return record.status();
    }
    records.push_back(std::move(record).value());
    pos += 8 + len;
  }
  return records;
}

}  // namespace polyvalue
