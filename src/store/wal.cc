#include "src/store/wal.h"

#include <unistd.h>

#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/net/codec.h"
#include "src/net/wire.h"

namespace polyvalue {

WalRecord WalRecord::Write(ItemKey key, PolyValue value) {
  WalRecord r;
  r.type = WalRecordType::kWrite;
  r.key = std::move(key);
  r.value = std::move(value);
  return r;
}

WalRecord WalRecord::Outcome(TxnId txn, bool committed) {
  WalRecord r;
  r.type = WalRecordType::kOutcome;
  r.txn = txn;
  r.committed = committed;
  return r;
}

WalRecord WalRecord::TrackItem(TxnId txn, ItemKey key) {
  WalRecord r;
  r.type = WalRecordType::kTrackItem;
  r.txn = txn;
  r.key = std::move(key);
  return r;
}

WalRecord WalRecord::TrackSite(TxnId txn, SiteId site) {
  WalRecord r;
  r.type = WalRecordType::kTrackSite;
  r.txn = txn;
  r.site = site;
  return r;
}

WalRecord WalRecord::UntrackItem(TxnId txn, ItemKey key) {
  WalRecord r;
  r.type = WalRecordType::kUntrackItem;
  r.txn = txn;
  r.key = std::move(key);
  return r;
}

WalRecord WalRecord::ForgetTxn(TxnId txn) {
  WalRecord r;
  r.type = WalRecordType::kForgetTxn;
  r.txn = txn;
  return r;
}

WalRecord WalRecord::Prepared(TxnId txn, SiteId coordinator,
                              std::map<ItemKey, PolyValue> writes) {
  WalRecord r;
  r.type = WalRecordType::kPrepared;
  r.txn = txn;
  r.site = coordinator;
  r.writes = std::move(writes);
  return r;
}

WalRecord WalRecord::PreparedResolved(TxnId txn) {
  WalRecord r;
  r.type = WalRecordType::kPreparedResolved;
  r.txn = txn;
  return r;
}

std::string WalRecord::Encode() const {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  switch (type) {
    case WalRecordType::kWrite:
      w.PutString(key);
      EncodePolyValue(value, &w);
      break;
    case WalRecordType::kOutcome:
      w.PutVarint(txn.value());
      w.PutBool(committed);
      break;
    case WalRecordType::kTrackItem:
    case WalRecordType::kUntrackItem:
      w.PutVarint(txn.value());
      w.PutString(key);
      break;
    case WalRecordType::kTrackSite:
      w.PutVarint(txn.value());
      w.PutVarint(site.value());
      break;
    case WalRecordType::kForgetTxn:
    case WalRecordType::kPreparedResolved:
      w.PutVarint(txn.value());
      break;
    case WalRecordType::kPrepared:
      w.PutVarint(txn.value());
      w.PutVarint(site.value());
      w.PutVarint(writes.size());
      for (const auto& [k, v] : writes) {
        w.PutString(k);
        EncodePolyValue(v, &w);
      }
      break;
  }
  return w.Take();
}

Result<WalRecord> WalRecord::Decode(const std::string& body) {
  ByteReader r(body);
  POLYV_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  WalRecord record;
  record.type = static_cast<WalRecordType>(tag);
  switch (record.type) {
    case WalRecordType::kWrite: {
      POLYV_ASSIGN_OR_RETURN(record.key, r.GetString());
      POLYV_ASSIGN_OR_RETURN(record.value, DecodePolyValue(&r));
      break;
    }
    case WalRecordType::kOutcome: {
      POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
      record.txn = TxnId(txn);
      POLYV_ASSIGN_OR_RETURN(record.committed, r.GetBool());
      break;
    }
    case WalRecordType::kTrackItem:
    case WalRecordType::kUntrackItem: {
      POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
      record.txn = TxnId(txn);
      POLYV_ASSIGN_OR_RETURN(record.key, r.GetString());
      break;
    }
    case WalRecordType::kTrackSite: {
      POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
      record.txn = TxnId(txn);
      POLYV_ASSIGN_OR_RETURN(uint64_t site, r.GetVarint());
      record.site = SiteId(site);
      break;
    }
    case WalRecordType::kForgetTxn:
    case WalRecordType::kPreparedResolved: {
      POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
      record.txn = TxnId(txn);
      break;
    }
    case WalRecordType::kPrepared: {
      POLYV_ASSIGN_OR_RETURN(uint64_t txn, r.GetVarint());
      record.txn = TxnId(txn);
      POLYV_ASSIGN_OR_RETURN(uint64_t site, r.GetVarint());
      record.site = SiteId(site);
      POLYV_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
      if (n > (1u << 20)) {
        return DataLossError("prepared write set too large");
      }
      for (uint64_t i = 0; i < n; ++i) {
        POLYV_ASSIGN_OR_RETURN(std::string k, r.GetString());
        POLYV_ASSIGN_OR_RETURN(PolyValue v, DecodePolyValue(&r));
        record.writes.emplace(std::move(k), std::move(v));
      }
      break;
    }
    default:
      return DataLossError(StrCat("unknown WAL record type ", int(tag)));
  }
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes in WAL record");
  }
  return record;
}

namespace {

// Frames `body` as [len][crc][body] onto `out`.
void FrameBody(const std::string& body, ByteWriter* out) {
  out->PutFixed32(static_cast<uint32_t>(body.size()));
  out->PutFixed32(Crc32(body));
  out->PutRaw(body.data(), body.size());
}

// Batch container body: tag + count + length-prefixed record bodies.
std::string BatchBody(const std::vector<std::string>& bodies) {
  ByteWriter w;
  w.PutU8(kWalBatchTag);
  w.PutVarint(bodies.size());
  for (const std::string& body : bodies) {
    w.PutString(body);
  }
  return w.Take();
}

// Decodes one frame body — single record or batch container — onto
// `records`.
Status AppendDecoded(const std::string& body,
                     std::vector<WalRecord>* records) {
  if (!body.empty() &&
      static_cast<uint8_t>(body[0]) == kWalBatchTag) {
    ByteReader r(body);
    (void)r.GetU8();
    POLYV_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
    if (n > (1u << 20)) {
      return DataLossError("WAL batch record count too large");
    }
    for (uint64_t i = 0; i < n; ++i) {
      POLYV_ASSIGN_OR_RETURN(std::string sub, r.GetString());
      POLYV_ASSIGN_OR_RETURN(WalRecord record, WalRecord::Decode(sub));
      records->push_back(std::move(record));
    }
    if (!r.AtEnd()) {
      return DataLossError("trailing bytes in WAL batch frame");
    }
    return OkStatus();
  }
  POLYV_ASSIGN_OR_RETURN(WalRecord record, WalRecord::Decode(body));
  records->push_back(std::move(record));
  return OkStatus();
}

// True when `data[pos..]` parses as a chain of structurally intact,
// CRC-clean frames reaching EOF. Used to tell mid-file corruption (an
// intact suffix follows: DATA_LOSS) from a torn tail (nothing intact
// follows: the write was never acknowledged, drop it).
bool IntactChainFollows(const std::string& data, size_t pos) {
  if (pos >= data.size()) {
    return false;  // nothing follows: the damaged frame was the tail
  }
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      return false;
    }
    ByteReader header(data.data() + pos, 8);
    const uint32_t len = header.GetFixed32().value();
    const uint32_t crc = header.GetFixed32().value();
    if (data.size() - pos - 8 < len) {
      return false;
    }
    if (Crc32(std::string(data.data() + pos + 8, len)) != crc) {
      return false;
    }
    pos += 8 + len;
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       Options options) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return UnavailableError(StrCat("cannot open WAL at ", path));
  }
  return std::unique_ptr<Wal>(new Wal(path, file, options));
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                       bool sync_every_append) {
  Options options;
  options.sync_policy =
      sync_every_append ? SyncPolicy::kEveryAppend : SyncPolicy::kFlushOnly;
  return Open(path, options);
}

Wal::~Wal() {
  if (options_.sync_policy == SyncPolicy::kGroupCommit) {
    // Best-effort: records appended but never flushed were never
    // acknowledged, but there is no reason to drop them on a clean exit.
    (void)Flush();
  }
  MutexLock lock(&mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Status Wal::WriteAndSync(const std::vector<std::string>& bodies,
                         std::FILE* file) {
  ByteWriter frame;
  if (bodies.size() == 1) {
    FrameBody(bodies.front(), &frame);
  } else {
    FrameBody(BatchBody(bodies), &frame);
  }
  const std::string& bytes = frame.buffer();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
    return UnavailableError("WAL write failed");
  }
  if (std::fflush(file) != 0) {
    return UnavailableError("WAL flush failed");
  }
  if (fsync(fileno(file)) != 0) {
    return UnavailableError("WAL fsync failed");
  }
  return OkStatus();
}

Status Wal::Append(const WalRecord& record) {
  std::string body = record.Encode();

  if (options_.sync_policy == SyncPolicy::kGroupCommit) {
    bool flush_now = false;
    {
      MutexLock lock(&mu_);
      pending_.push_back(std::move(body));
      ++appended_seq_;
      ++records_appended_;
      flush_now = pending_.size() >= options_.max_batch;
    }
    // A full buffer flushes inline; otherwise the record waits for the
    // next Flush() barrier (engine ack point) or a concurrent flusher.
    return flush_now ? Flush() : OkStatus();
  }

  ByteWriter frame;
  FrameBody(body, &frame);
  MutexLock lock(&mu_);
  const std::string& bytes = frame.buffer();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return UnavailableError("WAL write failed");
  }
  if (std::fflush(file_) != 0) {
    return UnavailableError("WAL flush failed");
  }
  if (options_.sync_policy == SyncPolicy::kEveryAppend) {
    if (fsync(fileno(file_)) != 0) {
      return UnavailableError("WAL fsync failed");
    }
  }
  ++records_appended_;
  ++appended_seq_;
  durable_seq_ = appended_seq_;
  ++batches_flushed_;
  ++records_flushed_;
  return OkStatus();
}

Status Wal::Flush() {
  if (options_.sync_policy != SyncPolicy::kGroupCommit) {
    return OkStatus();  // per-append policies are already durable-as-promised
  }
  mu_.Lock();
  const uint64_t target = appended_seq_;
  Status result = OkStatus();
  while (durable_seq_ < target) {
    if (flushing_) {
      // Another thread's flush is in flight and will cover our records
      // (or we re-check and lead the next batch).
      cv_.Wait(&mu_);
      continue;
    }
    flushing_ = true;
    if (options_.group_window_seconds > 0 &&
        pending_.size() < options_.max_batch) {
      // Linger with the batch open so concurrent appenders can join.
      (void)cv_.WaitFor(&mu_, options_.group_window_seconds);
    }
    std::vector<std::string> batch;
    batch.swap(pending_);
    const uint64_t batch_target = appended_seq_;
    // file_ is read under mu_; the write itself happens unlocked, fenced
    // by the flushing_ token (Reset waits for !flushing_ to freopen).
    std::FILE* file = file_;
    mu_.Unlock();
    const Status s = batch.empty() ? OkStatus() : WriteAndSync(batch, file);
    mu_.Lock();
    flushing_ = false;
    // Advance even on failure so waiters do not spin forever; the error
    // is surfaced to the caller (and the records in `batch` are lost,
    // exactly as a failed per-append write would have been).
    durable_seq_ = batch_target;
    if (!batch.empty()) {
      ++batches_flushed_;
      records_flushed_ += batch.size();
    }
    if (!s.ok()) {
      POLYV_ERROR << "WAL group flush failed: " << s;
      result = s;
    }
    cv_.NotifyAll();
  }
  mu_.Unlock();
  return result;
}

Status Wal::Reset() {
  MutexLock lock(&mu_);
  while (flushing_) {
    cv_.Wait(&mu_);
  }
  pending_.clear();
  durable_seq_ = appended_seq_;
  std::FILE* replacement = std::freopen(path_.c_str(), "wb", file_);
  if (replacement == nullptr) {
    return UnavailableError(StrCat("WAL reset failed for ", path_));
  }
  file_ = replacement;
  return OkStatus();
}

Status Wal::Sync() {
  POLYV_RETURN_IF_ERROR(Flush());
  MutexLock lock(&mu_);
  while (flushing_) {
    cv_.Wait(&mu_);
  }
  if (std::fflush(file_) != 0 || fsync(fileno(file_)) != 0) {
    return UnavailableError("WAL sync failed");
  }
  return OkStatus();
}

uint64_t Wal::records_appended() const {
  MutexLock lock(&mu_);
  return records_appended_;
}

uint64_t Wal::batches_flushed() const {
  MutexLock lock(&mu_);
  return batches_flushed_;
}

uint64_t Wal::records_flushed() const {
  MutexLock lock(&mu_);
  return records_flushed_;
}

Result<std::vector<WalRecord>> Wal::ReplayFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return std::vector<WalRecord>{};  // no log yet: empty history
  }
  std::string data;
  char buf[64 * 1024];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    data.append(buf, n);
  }
  std::fclose(file);

  std::vector<WalRecord> records;
  size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      break;  // torn header at tail: drop
    }
    ByteReader header(data.data() + pos, 8);
    const uint32_t len = header.GetFixed32().value();
    const uint32_t crc = header.GetFixed32().value();
    if (data.size() - pos - 8 < len) {
      break;  // torn body at tail: drop
    }
    const std::string body(data.data() + pos + 8, len);
    if (Crc32(body) != crc) {
      if (IntactChainFollows(data, pos + 8 + len)) {
        // Clean frames continue past the damage: real mid-file
        // corruption, not a torn write.
        return DataLossError(
            StrCat("WAL corruption at offset ", pos, " in ", path));
      }
      break;  // damaged tail (possibly a torn batch): drop the rest
    }
    const Status decoded = AppendDecoded(body, &records);
    if (!decoded.ok()) {
      return decoded;
    }
    pos += 8 + len;
  }
  return records;
}

}  // namespace polyvalue
