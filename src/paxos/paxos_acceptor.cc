// RM + acceptor roles. The RM half mirrors the 2PC participant's
// compute phase (lock, read, reply, await writes), but instead of READY
// it durably saves the shipped writes and broadcasts its own Paxos
// instance's Phase2a(ballot 0, Prepared) to every acceptor — after
// which it is *never* in doubt about whom to ask: any site can finish
// the decision. The acceptor half is textbook Paxos, one instance per
// RM in the group, keyed by (txn, rm).
#include "src/paxos/paxos_engine.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/strings.h"

namespace polyvalue {

void PaxosEngine::HandlePrepare(SiteId from, const Message& msg,
                                Outbox* out) {
  (void)from;
  const TxnId txn = msg.txn;
  if (participations_.count(txn) > 0 || prepared_.count(txn) > 0 ||
      decided_.count(txn) > 0) {
    Trace(TraceEventType::kMsgIgnored, txn, false,
          static_cast<uint64_t>(MsgType::kPrepare));
    return;  // duplicate PREPARE (or txn already settled here)
  }

  // idle -> compute: lock every item this site contributes, then read.
  // The Paxos leg always locks no-wait: its decisions never stall on a
  // failed coordinator, so lock queues would only add deadlock risk.
  Participation part;
  part.leader = msg.coordinator;
  part.state = PartState::kCompute;
  part.group = msg.group;
  part.compute_entered_at = scheduler_->Now();

  std::vector<ItemKey> all_keys = msg.read_keys;
  all_keys.insert(all_keys.end(), msg.write_keys.begin(),
                  msg.write_keys.end());
  std::sort(all_keys.begin(), all_keys.end());
  all_keys.erase(std::unique(all_keys.begin(), all_keys.end()),
                 all_keys.end());

  for (const ItemKey& key : all_keys) {
    const Status lock_status = items_->Lock(key, txn);
    if (!lock_status.ok()) {
      ReleaseLocks(txn, out);
      Trace(TraceEventType::kPrepareRefused, txn);
      out->sends.emplace_back(msg.coordinator,
                              MakePrepareRefusal(txn, lock_status.message()));
      return;
    }
    part.locked_keys.push_back(key);
  }

  std::map<ItemKey, PolyValue> values;
  for (const ItemKey& key : all_keys) {
    Result<PolyValue> value = items_->Read(key);
    if (!value.ok()) {
      const bool is_write_only =
          std::find(msg.read_keys.begin(), msg.read_keys.end(), key) ==
          msg.read_keys.end();
      if (is_write_only) {
        // Creating a new item: previous value is Null.
        values.emplace(key, PolyValue::Certain(Value::Null()));
        continue;
      }
      ReleaseLocks(txn, out);
      Trace(TraceEventType::kPrepareRefused, txn);
      out->sends.emplace_back(
          msg.coordinator,
          MakePrepareRefusal(txn, value.status().message()));
      return;
    }
    values.emplace(key, std::move(value).value());
  }

  // Compute-phase watchdog: if the leader dies before shipping writes,
  // discard. We have not voted, so unilateral abort is safe — and the
  // leader's own compute-phase timeout fixes ABORT for the client.
  part.timer = ScheduleGuarded(
      config_.prepare_timeout + config_.ready_timeout,
      [this, txn] { ComputeWatchdog(txn); });

  auto [it, inserted] = participations_.emplace(txn, std::move(part));
  POLYV_CHECK(inserted);
  Trace(TraceEventType::kPrepareRecv, txn);
  Trace(TraceEventType::kPrepareReplied, txn, /*flag=*/true);
  out->sends.emplace_back(it->second.leader,
                          MakePrepareReply(txn, std::move(values)));
}

void PaxosEngine::ComputeWatchdog(TxnId txn) {
  Outbox out;
  {
    MutexLock lock(&mu_);
    if (crashed_) {
      return;
    }
    auto it = participations_.find(txn);
    if (it == participations_.end() ||
        it->second.state != PartState::kCompute) {
      return;  // writes arrived (or outcome already applied)
    }
    ReleaseLocks(txn, &out);
    participations_.erase(it);
    Trace(TraceEventType::kComputeDiscard, txn);
  }
  FlushOutbox(&out);
}

void PaxosEngine::HandleWriteReq(SiteId from, const Message& msg,
                                 Outbox* out) {
  (void)from;
  const TxnId txn = msg.txn;
  auto it = participations_.find(txn);
  if (it == participations_.end() ||
      it->second.state != PartState::kCompute) {
    Trace(TraceEventType::kMsgIgnored, txn, false,
          static_cast<uint64_t>(MsgType::kWriteReq));
    return;  // discarded by the watchdog, or a duplicate
  }
  Participation& part = it->second;
  if (part.timer != 0) {
    scheduler_->Cancel(part.timer);
    part.timer = 0;
  }
  const double now = scheduler_->Now();
  metrics_.compute_phase_seconds += now - part.compute_entered_at;
  ++metrics_.compute_phase_count;
  part.state = PartState::kWait;
  part.wait_entered_at = now;

  // The durable vote: saving the writes and casting Phase2a(0, Prepared)
  // are one atomic step by contract (prepared_ survives Crash()).
  Prepared prep;
  prep.leader = part.leader;
  prep.group = part.group;
  prep.writes = msg.writes;
  prepared_.emplace(txn, std::move(prep));
  VoteAndArm(txn, &part, out);
}

void PaxosEngine::VoteAndArm(TxnId txn, Participation* part, Outbox* out) {
  ++metrics_.paxos_votes;
  Trace(TraceEventType::kPaxosVote, txn, /*flag=*/true,
        config_.cluster_sites);
  const Message vote =
      MakePaxosPhase2a(txn, /*ballot=*/0, self_, /*prepared=*/true,
                       part->group);
  for (size_t i = 0; i < config_.cluster_sites; ++i) {
    out->sends.emplace_back(SiteAt(i), vote);
  }
  part->attempt = 0;
  part->timer = ScheduleGuarded(config_.paxos_failover_timeout,
                                [this, txn] { FailoverTick(txn); });
}

void PaxosEngine::FailoverTick(TxnId txn) {
  Outbox out;
  {
    MutexLock lock(&mu_);
    if (crashed_) {
      return;
    }
    auto it = participations_.find(txn);
    if (it == participations_.end() ||
        it->second.state != PartState::kWait) {
      return;  // outcome landed — no failover needed
    }
    const auto decided = decided_.find(txn);
    if (decided != decided_.end()) {
      // The outcome is already durable here but the decision message
      // that would have installed it was lost (drops apply even to the
      // self-addressed copy of a broadcast). Install directly.
      ApplyOutcome(txn, decided->second, &out);
      return;
    }
    Participation& part = it->second;
    ++part.attempt;
    const SiteId standby = StandbyLeader(txn, part.attempt);
    ++metrics_.paxos_failovers;
    Trace(TraceEventType::kPaxosFailover, txn, /*peer=*/standby,
          /*flag=*/standby == self_,
          static_cast<uint64_t>(part.attempt));
    if (standby == self_) {
      StartRecovery(txn, part.group, &out);
    } else {
      out.sends.emplace_back(standby, MakePaxosNudge(txn, part.group));
    }
    part.timer = ScheduleGuarded(config_.paxos_failover_timeout,
                                 [this, txn] { FailoverTick(txn); });
  }
  FlushOutbox(&out);
}

void PaxosEngine::HandlePhase1a(SiteId from, const Message& msg,
                                Outbox* out) {
  const auto decided = decided_.find(msg.txn);
  if (decided != decided_.end()) {
    // The outcome is already fixed; a would-be recovery leader just
    // needs to hear it, not run a ballot.
    Trace(TraceEventType::kOutcomeReplied, msg.txn, /*flag=*/true,
          from.value());
    out->sends.emplace_back(from,
                            MakePaxosDecision(msg.txn, decided->second));
    return;
  }
  AcceptorTxn& acc = acceptor_[msg.txn];
  if (msg.ballot <= acc.promised) {
    Trace(TraceEventType::kMsgIgnored, msg.txn, false,
          static_cast<uint64_t>(MsgType::kPaxosPhase1a));
    return;  // an equal or higher ballot already holds our promise
  }
  acc.promised = msg.ballot;
  Trace(TraceEventType::kPaxosPromise, msg.txn, /*peer=*/from,
        /*flag=*/false, msg.ballot);
  std::vector<Message::PaxosInstance> instances;
  instances.reserve(acc.accepted.size());
  for (const auto& [rm, accepted] : acc.accepted) {
    instances.push_back({rm, accepted.first, accepted.second});
  }
  out->sends.emplace_back(
      from, MakePaxosPhase1b(msg.txn, msg.ballot, std::move(instances),
                             acc.group));
}

void PaxosEngine::HandlePhase2a(SiteId from, const Message& msg,
                                Outbox* out) {
  (void)from;
  AcceptorTxn& acc = acceptor_[msg.txn];
  if (msg.ballot < acc.promised) {
    Trace(TraceEventType::kMsgIgnored, msg.txn, false,
          static_cast<uint64_t>(MsgType::kPaxosPhase2a));
    return;  // promised away to a higher ballot
  }
  acc.promised = std::max(acc.promised, msg.ballot);
  acc.accepted[msg.rm] = {msg.ballot, msg.ok};
  if (acc.group.empty()) {
    acc.group = msg.group;
  }
  ++metrics_.paxos_accepts;
  Trace(TraceEventType::kPaxosAccept, msg.txn, /*peer=*/msg.rm,
        /*flag=*/msg.ok, msg.ballot);
  out->sends.emplace_back(
      BallotOwner(msg.txn, msg.ballot),
      MakePaxosPhase2b(msg.txn, msg.ballot, msg.rm, msg.ok));
}

void PaxosEngine::HandleDecision(SiteId from, const Message& msg,
                                 Outbox* out) {
  (void)from;
  const bool news = decided_.count(msg.txn) == 0;
  RecordDecision(msg.txn, msg.committed);
  // "Learned" when the message teaches us the outcome OR makes us apply
  // it to a still-pending participation (the decider hearing its own
  // broadcast); ignored when it does neither.
  const bool learned = news || participations_.count(msg.txn) > 0;
  Trace(learned ? TraceEventType::kOutcomeLearned
                : TraceEventType::kMsgIgnored,
        msg.txn, /*flag=*/learned && msg.committed,
        learned ? 0 : static_cast<uint64_t>(MsgType::kPaxosDecision));
  auto lead_it = leaderships_.find(msg.txn);
  if (lead_it != leaderships_.end()) {
    // Another leader finished the decision first. If we are the
    // original leader, the client is still waiting on us.
    if (lead_it->second.has_spec) {
      DeliverClientResult(msg.txn, &lead_it->second, msg.committed,
                          msg.committed ? "" : "aborted by recovery leader",
                          out);
    } else {
      if (lead_it->second.timer != 0) {
        scheduler_->Cancel(lead_it->second.timer);
      }
      leaderships_.erase(lead_it);
    }
  }
  if (participations_.count(msg.txn) > 0) {
    ApplyOutcome(msg.txn, msg.committed, out);
  }
}

void PaxosEngine::HandleNudge(SiteId from, const Message& msg, Outbox* out) {
  const auto decided = decided_.find(msg.txn);
  if (decided != decided_.end()) {
    Trace(TraceEventType::kOutcomeReplied, msg.txn, /*flag=*/true,
          from.value());
    out->sends.emplace_back(from,
                            MakePaxosDecision(msg.txn, decided->second));
    return;
  }
  if (leaderships_.count(msg.txn) > 0) {
    // Already driving this transaction (original tally or an earlier
    // nudge); our own timers escalate if it stalls again.
    Trace(TraceEventType::kMsgIgnored, msg.txn, false,
          static_cast<uint64_t>(MsgType::kPaxosNudge));
    return;
  }
  StartRecovery(msg.txn, msg.group, out);
}

void PaxosEngine::ApplyOutcome(TxnId txn, bool committed, Outbox* out) {
  auto it = participations_.find(txn);
  if (it != participations_.end()) {
    Participation& part = it->second;
    if (part.timer != 0) {
      scheduler_->Cancel(part.timer);
      part.timer = 0;
    }
    if (part.state == PartState::kWait) {
      const double waited = scheduler_->Now() - part.wait_entered_at;
      metrics_.wait_phase_seconds += waited;
      ++metrics_.wait_phase_count;
      metrics_.wait_phase_max = std::max(metrics_.wait_phase_max, waited);
    }
    const auto prep = prepared_.find(txn);
    if (committed && prep != prepared_.end()) {
      for (const auto& [key, value] : prep->second.writes) {
        items_->Write(key, value);
      }
    }
    ReleaseLocks(txn, out);
    participations_.erase(it);
  }
  prepared_.erase(txn);
}

void PaxosEngine::ReleaseLocks(TxnId txn, Outbox* out) {
  (void)out;
  items_->CancelWaits(txn);
  // No-wait locking: UnlockAll never wakes queued waiters in this leg.
  (void)items_->UnlockAll(txn);
}

}  // namespace polyvalue
