// Shared PaxosEngine internals: construction, message dispatch, decision
// recording/broadcast, crash/recovery, outbox plumbing.
#include "src/paxos/paxos_engine.h"

#include "src/common/check.h"
#include "src/common/logging.h"

namespace polyvalue {

PaxosEngine::PaxosEngine(SiteId self, ItemStore* items, Scheduler* scheduler,
                         SendFn send, EngineConfig config)
    : self_(self),
      items_(items),
      scheduler_(scheduler),
      send_(std::move(send)),
      config_(config) {
  POLYV_CHECK(self.valid());
  POLYV_CHECK_GE(config_.cluster_sites, 1u);
  POLYV_CHECK_LE(self.value(), config_.cluster_sites);
  POLYV_CHECK_LT(self.value(), 1ULL << (64 - kTxnSiteShift));
}

PaxosEngine::~PaxosEngine() { *alive_ = false; }

Scheduler::TimerId PaxosEngine::ScheduleGuarded(double delay,
                                                std::function<void()> fn) {
  return scheduler_->ScheduleAfter(
      delay, [alive = alive_, fn = std::move(fn)] {
        if (*alive) {
          fn();
        }
      });
}

TxnId PaxosEngine::AllocateTxnId() {
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  return TxnId((self_.value() << kTxnSiteShift) | seq);
}

void PaxosEngine::RaiseSeqFloor(uint64_t max_seq) {
  uint64_t cur = next_seq_.load(std::memory_order_relaxed);
  while (max_seq >= cur &&
         !next_seq_.compare_exchange_weak(cur, max_seq + 1,
                                          std::memory_order_relaxed)) {
  }
}

SiteId PaxosEngine::CoordinatorOf(TxnId txn) {
  return TxnEngine::CoordinatorOf(txn);
}

SiteId PaxosEngine::BallotOwner(TxnId txn, uint64_t ballot) const {
  if (ballot == 0) {
    return CoordinatorOf(txn);
  }
  return SiteAt(ballot % config_.cluster_sites);
}

uint64_t PaxosEngine::RecoveryBallot(int round) const {
  // round >= 1, so recovery ballots are always > 0 and partitioned by
  // site: no two sites can ever own the same ballot.
  return static_cast<uint64_t>(round) * config_.cluster_sites +
         (self_.value() - 1);
}

SiteId PaxosEngine::StandbyLeader(TxnId txn, int attempt) const {
  const size_t base = CoordinatorOf(txn).value() - 1;
  return SiteAt((base + static_cast<size_t>(attempt)) %
                config_.cluster_sites);
}

TxnId PaxosEngine::Submit(TxnSpec spec, TxnCallback callback) {
  return Submit(std::move(spec), std::move(callback), AllocateTxnId());
}

TxnId PaxosEngine::Submit(TxnSpec spec, TxnCallback callback, TxnId txn) {
  Outbox out;
  SubmitUnderLock(std::move(spec), std::move(callback), txn, &out);
  FlushOutbox(&out);
  return txn;
}

void PaxosEngine::OnMessage(SiteId from, const Message& msg) {
  Outbox out;
  {
    MutexLock lock(&mu_);
    if (crashed_) {
      return;  // a down site neither sends nor receives
    }
    POLYV_TRACE << self_ << " <- " << from << " " << MsgTypeName(msg.type)
                << " " << msg.txn;
    switch (msg.type) {
      case MsgType::kPrepare:
        HandlePrepare(from, msg, &out);
        break;
      case MsgType::kPrepareReply:
        HandlePrepareReply(from, msg, &out);
        break;
      case MsgType::kWriteReq:
        HandleWriteReq(from, msg, &out);
        break;
      case MsgType::kPaxosPhase1a:
        HandlePhase1a(from, msg, &out);
        break;
      case MsgType::kPaxosPhase1b:
        HandlePhase1b(from, msg, &out);
        break;
      case MsgType::kPaxosPhase2a:
        HandlePhase2a(from, msg, &out);
        break;
      case MsgType::kPaxosPhase2b:
        HandlePhase2b(from, msg, &out);
        break;
      case MsgType::kPaxosDecision:
        HandleDecision(from, msg, &out);
        break;
      case MsgType::kPaxosNudge:
        HandleNudge(from, msg, &out);
        break;
      case MsgType::kReady:
      case MsgType::kComplete:
      case MsgType::kAbort:
      case MsgType::kOutcomeRequest:
      case MsgType::kOutcomeReply:
      case MsgType::kOutcomeNotify:
        // 2PC-leg traffic; a Paxos cluster never generates it, so any
        // arrival is a stray — discard loudly.
        Trace(TraceEventType::kMsgIgnored, msg.txn, false,
              static_cast<uint64_t>(msg.type));
        break;
    }
  }
  FlushOutbox(&out);
}

void PaxosEngine::FlushOutbox(Outbox* out) {
  for (auto& [to, msg] : out->sends) {
    send_(to, msg);
  }
  for (auto& thunk : out->thunks) {
    thunk();
  }
  out->sends.clear();
  out->thunks.clear();
}

void PaxosEngine::RecordDecision(TxnId txn, bool committed) {
  const auto [it, inserted] = decided_.emplace(txn, committed);
  // Paxos safety: every decider must fix the same outcome. A
  // disagreement here is a protocol bug, never a runtime condition.
  POLYV_CHECK_EQ(it->second, committed);
}

void PaxosEngine::BroadcastDecision(TxnId txn, bool committed, Outbox* out) {
  // Every site hears the outcome: RMs install/discard, standbys answer
  // later nudges from their decided_ table instead of running ballots.
  const Message decision = MakePaxosDecision(txn, committed);
  for (size_t i = 0; i < config_.cluster_sites; ++i) {
    out->sends.emplace_back(SiteAt(i), decision);
  }
}

void PaxosEngine::Crash() {
  MutexLock lock(&mu_);
  Trace(TraceEventType::kCrash, TxnId());
  crashed_ = true;
  for (auto& [txn, lead] : leaderships_) {
    if (lead.timer != 0) {
      scheduler_->Cancel(lead.timer);
    }
    // In-flight clients never hear back — the real failure mode. With
    // Paxos Commit the *decision* still completes via failover; only
    // this site's client channel is lost.
  }
  leaderships_.clear();
  for (auto& [txn, part] : participations_) {
    if (part.timer != 0) {
      scheduler_->Cancel(part.timer);
    }
    items_->CancelWaits(txn);
    (void)items_->UnlockAll(txn);
  }
  participations_.clear();
  // acceptor_, prepared_, decided_ survive: they are the durable state
  // Gray-Lamport requires of acceptors and prepared RMs.
}

void PaxosEngine::Recover() {
  Outbox out;
  {
    MutexLock lock(&mu_);
    crashed_ = false;
    Trace(TraceEventType::kRecover, TxnId());
    std::vector<TxnId> pending;
    pending.reserve(prepared_.size());
    for (const auto& [txn, prep] : prepared_) {
      pending.push_back(txn);
    }
    for (TxnId txn : pending) {
      const Prepared& prep = prepared_.at(txn);
      // The prepared writes are this RM's vote: re-guard them until the
      // outcome lands (same re-lock discipline as TxnEngine::Recover).
      Participation part;
      part.leader = prep.leader;
      part.state = PartState::kWait;
      part.group = prep.group;
      part.wait_entered_at = scheduler_->Now();
      for (const auto& [key, value] : prep.writes) {
        (void)items_->Lock(key, txn);
        part.locked_keys.push_back(key);
      }
      auto [it, inserted] = participations_.emplace(txn, std::move(part));
      const auto decided = decided_.find(txn);
      if (decided != decided_.end()) {
        ApplyOutcome(txn, decided->second, &out);
      } else {
        // Re-vote — idempotent at the acceptors — and re-arm failover.
        VoteAndArm(txn, &it->second, &out);
      }
    }
  }
  FlushOutbox(&out);
}

EngineMetrics PaxosEngine::metrics() const {
  MutexLock lock(&mu_);
  return metrics_;
}

std::optional<bool> PaxosEngine::DecidedOutcome(TxnId txn) const {
  MutexLock lock(&mu_);
  const auto it = decided_.find(txn);
  if (it == decided_.end()) {
    return std::nullopt;
  }
  return it->second;
}

uint64_t PaxosEngine::PromisedBallot(TxnId txn) const {
  MutexLock lock(&mu_);
  const auto it = acceptor_.find(txn);
  if (it == acceptor_.end()) {
    return 0;
  }
  return it->second.promised;
}

}  // namespace polyvalue
