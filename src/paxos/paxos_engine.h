// Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit"): the
// third protocol leg, beside blocking 2PC and the polyvalue engine.
//
// 2PC's in-doubt window exists because one process — the coordinator —
// holds the only copy of the commit decision while participants sit
// prepared. Paxos Commit replicates that decision instead: each
// participant RM's Prepared/Aborted vote is the value of one Paxos
// consensus instance run across 2F+1 acceptors (here: every site), and
// the global outcome is commit iff every instance chooses Prepared. A
// crashed leader delays nothing for long — any site can become the
// leader of a higher ballot, read the acceptors' state, and finish the
// decision. The window the polyvalue mechanism exists to tolerate never
// opens (beyond one failover timeout), at the price of 2F+1-way message
// amplification on every commit.
//
// Protocol flow (nominal, per transaction):
//
//   1. compute phase — identical wire messages to 2PC: the leader
//      (the submitting site) fans out PREPARE, RMs lock + read + reply,
//      the leader executes the logic and ships WRITE_REQ per RM. The
//      PREPARE carries the RM group so every vote can embed it.
//   2. vote — each RM durably saves its writes and broadcasts
//      Phase2a(ballot 0, Prepared) for its own instance to all
//      acceptors; ballot 0 belongs to the RM itself, so no Phase1 is
//      needed (the Gray-Lamport "free" round).
//   3. tally — acceptors accept and echo Phase2b to the ballot's
//      leader; a majority for an instance makes its value *chosen*.
//      When every instance in the group has chosen Prepared, the
//      leader fixes COMMIT, records it durably, answers the client and
//      broadcasts PAXOS_DECISION to every site.
//
// Failover: after voting, each RM runs a timer; on expiry it nudges the
// next site in ring order (PAXOS_NUDGE). A nudged site runs a classic
// recovery round with a self-owned ballot b = round*N + index:
// Phase1a(b) to all acceptors, a majority of Phase1b promises, then
// Phase2a(b, v) per instance where v is the highest-ballot accepted
// value reported — or Aborted if the majority saw none (safe: its
// promises block any older ballot from ever completing). Ballots are
// partitioned by site, so two concurrent recovery leaders can never
// collide on a ballot; Paxos safety guarantees all deciders agree.
//
// Same engine idiom as TxnEngine: one mutex, every handler defers sends
// and callbacks into an Outbox flushed after unlock, timers are guarded
// by a liveness token, and acceptor state + prepared writes + decisions
// are durable-by-contract (they survive Crash()).
#ifndef SRC_PAXOS_PAXOS_ENGINE_H_
#define SRC_PAXOS_PAXOS_ENGINE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/obs/trace.h"
#include "src/store/item_store.h"
#include "src/txn/engine.h"
#include "src/txn/messages.h"
#include "src/txn/scheduler.h"
#include "src/txn/txn_types.h"

namespace polyvalue {

class PaxosEngine : public CommitProtocol {
 public:
  using SendFn = std::function<void(SiteId to, const Message& msg)>;

  // `config.cluster_sites` must name the full cluster size N (sites
  // 1..N are all acceptors; majority = N/2 + 1).
  PaxosEngine(SiteId self, ItemStore* items, Scheduler* scheduler,
              SendFn send, EngineConfig config);
  ~PaxosEngine() override;

  // Optional observability; same cost contract as TxnEngine.
  void AttachTrace(TraceSink* sink) {
    MutexLock lock(&mu_);
    trace_ = sink;
  }

  SiteId self() const { return self_; }
  const EngineConfig& config() const { return config_; }

  // Txn ids share the TxnEngine encoding (coordinator in the high bits),
  // so ring-order failover can always locate the initial leader.
  TxnId AllocateTxnId();
  static SiteId CoordinatorOf(TxnId txn);
  void RaiseSeqFloor(uint64_t max_seq);

  // --- CommitProtocol ---
  TxnId Submit(TxnSpec spec, TxnCallback callback) override;
  TxnId Submit(TxnSpec spec, TxnCallback callback, TxnId txn);
  void OnMessage(SiteId from, const Message& msg) override;
  void Crash() override;
  void Recover() override;
  EngineMetrics metrics() const override;
  std::optional<bool> DecidedOutcome(TxnId txn) const override;

  // Acceptor-side introspection for tests: the highest ballot this
  // site has promised for `txn` (0 if it never promised).
  uint64_t PromisedBallot(TxnId txn) const;

 private:
  // ---- leader state ----
  // One Leadership drives a transaction at whichever site is currently
  // pushing it: the submitting site (ballot 0, with the client spec) or
  // a standby running a recovery ballot (no spec, no client).
  enum class LeaderPhase {
    kCollecting,  // compute phase: awaiting PREPARE_REPLYs
    kRecovering,  // Phase1a sent: awaiting a majority of promises
    kVoting,      // Phase2a round live: tallying Phase2b per instance
  };
  struct Leadership {
    TxnSpec spec;
    bool has_spec = false;  // recovery leaderships carry no client
    LeaderPhase phase = LeaderPhase::kCollecting;
    std::vector<SiteId> participants;  // the RM group (instance set)
    std::set<SiteId> awaiting;         // PREPARE_REPLYs outstanding
    std::map<ItemKey, PolyValue> collected;
    TxnCallback callback;
    Scheduler::TimerId timer = 0;
    PolyValue output;
    // The ballot this leadership currently runs: 0 for the initial
    // leader's tally of the RMs' own votes, round*N + index for
    // recovery rounds.
    uint64_t ballot = 0;
    int round = 0;
    // Phase1b bookkeeping (recovery only).
    std::set<SiteId> promised_from;
    std::map<SiteId, std::pair<uint64_t, bool>> best_accepted;
    // Phase2b tally for `ballot`: value proposed per instance, the
    // acceptors that echoed it, and the instances already chosen.
    std::map<SiteId, bool> proposed;
    std::map<SiteId, std::set<SiteId>> acks;
    std::set<SiteId> chosen;
  };

  // ---- RM state (volatile; prepared writes live in prepared_) ----
  enum class PartState { kCompute, kWait };
  struct Participation {
    SiteId leader;
    PartState state = PartState::kCompute;
    std::vector<SiteId> group;
    std::vector<ItemKey> locked_keys;
    Scheduler::TimerId timer = 0;  // compute watchdog, then failover
    int attempt = 0;               // failover ring position
    double compute_entered_at = 0;
    double wait_entered_at = 0;
  };

  // ---- acceptor state (durable-by-contract) ----
  struct AcceptorTxn {
    uint64_t promised = 0;
    // instance rm -> (ballot, prepared) it last accepted.
    std::map<SiteId, std::pair<uint64_t, bool>> accepted;
    std::vector<SiteId> group;
  };

  // ---- RM durable votes ----
  struct Prepared {
    SiteId leader;
    std::vector<SiteId> group;
    std::map<ItemKey, PolyValue> writes;
  };

  struct Outbox {
    std::vector<std::pair<SiteId, Message>> sends;
    std::vector<std::function<void()>> thunks;
  };

  // -- leader internals (paxos_leader.cc) --
  void SubmitUnderLock(TxnSpec spec, TxnCallback callback, TxnId txn,
                       Outbox* out) EXCLUDES(mu_);
  void HandlePrepareReply(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  void ExecuteAndShip(TxnId txn, Leadership* lead, Outbox* out)
      REQUIRES(mu_);
  // Compute-phase abort: no RM has voted yet, so no instance can ever
  // choose Prepared — deciding ABORT locally is safe.
  void AbortBeforeVotes(TxnId txn, Leadership* lead,
                        const std::string& reason, Outbox* out)
      REQUIRES(mu_);
  void HandlePhase1b(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  void HandlePhase2b(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  // Starts (or escalates) a recovery ballot for `txn`; `group_hint`
  // seeds the instance set until Phase1b reports refine it.
  void StartRecovery(TxnId txn, const std::vector<SiteId>& group_hint,
                     Outbox* out) REQUIRES(mu_);
  // All instances chosen: fix the outcome, tell the world.
  void FinishTally(TxnId txn, Leadership* lead, Outbox* out) REQUIRES(mu_);
  void DeliverClientResult(TxnId txn, Leadership* lead, bool commit,
                           const std::string& reason, Outbox* out)
      REQUIRES(mu_);
  void LeaderTimeout(TxnId txn);

  // -- RM + acceptor internals (paxos_acceptor.cc) --
  void HandlePrepare(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  void HandleWriteReq(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  void HandlePhase1a(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  void HandlePhase2a(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  void HandleDecision(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  void HandleNudge(SiteId from, const Message& msg, Outbox* out)
      REQUIRES(mu_);
  // Applies a learned outcome at this site: installs or discards the
  // prepared writes, releases locks, stops failover timers.
  void ApplyOutcome(TxnId txn, bool committed, Outbox* out) REQUIRES(mu_);
  void ReleaseLocks(TxnId txn, Outbox* out) REQUIRES(mu_);
  void FailoverTick(TxnId txn);
  void ComputeWatchdog(TxnId txn);
  // Broadcasts this RM's Phase2a(ballot 0, Prepared) to every acceptor
  // and arms the failover timer.
  void VoteAndArm(TxnId txn, Participation* part, Outbox* out)
      REQUIRES(mu_);

  // -- shared internals (paxos_engine.cc) --
  void RecordDecision(TxnId txn, bool committed) REQUIRES(mu_);
  void BroadcastDecision(TxnId txn, bool committed, Outbox* out)
      REQUIRES(mu_);
  void FlushOutbox(Outbox* out) EXCLUDES(mu_);
  Scheduler::TimerId ScheduleGuarded(double delay, std::function<void()> fn);

  size_t Majority() const { return config_.cluster_sites / 2 + 1; }
  SiteId SiteAt(size_t index) const { return SiteId(index + 1); }
  // The site a ballot belongs to: ballot 0 is the initial leader's
  // (encoded in the txn id); recovery ballots encode their owner.
  SiteId BallotOwner(TxnId txn, uint64_t ballot) const;
  uint64_t RecoveryBallot(int round) const;
  // Ring order for failover: attempt k nudges the k-th site after the
  // initial leader (wrapping; k = N retries the leader itself).
  SiteId StandbyLeader(TxnId txn, int attempt) const;

  // Trace emission; null check first, same cost contract as TxnEngine.
  void Trace(TraceEventType type, TxnId txn, bool flag = false,
             uint64_t arg = 0) REQUIRES(mu_) {
    if (trace_ == nullptr) {
      return;
    }
    TraceEvent event;
    event.time = scheduler_->Now();
    event.type = type;
    event.site = self_;
    event.txn = txn;
    event.flag = flag;
    event.arg = arg;
    trace_->Emit(event);
  }
  void Trace(TraceEventType type, TxnId txn, SiteId peer, bool flag,
             uint64_t arg) REQUIRES(mu_) {
    if (trace_ == nullptr) {
      return;
    }
    TraceEvent event;
    event.time = scheduler_->Now();
    event.type = type;
    event.site = self_;
    event.txn = txn;
    event.peer = peer;
    event.flag = flag;
    event.arg = arg;
    trace_->Emit(event);
  }

  const SiteId self_;
  ItemStore* const items_;
  Scheduler* const scheduler_;
  const SendFn send_;
  const EngineConfig config_;
  TraceSink* trace_ GUARDED_BY(mu_) = nullptr;

  mutable Mutex mu_ POLYV_MUTEX_RANK(kPaxosEngine);
  std::atomic<uint64_t> next_seq_{1};
  std::map<TxnId, Leadership> leaderships_ GUARDED_BY(mu_);
  std::map<TxnId, Participation> participations_ GUARDED_BY(mu_);

  // Durable-by-contract (survive Crash): acceptor promises/accepts,
  // RM prepared writes, and learned/decided outcomes.
  std::map<TxnId, AcceptorTxn> acceptor_ GUARDED_BY(mu_);
  std::map<TxnId, Prepared> prepared_ GUARDED_BY(mu_);
  std::map<TxnId, bool> decided_ GUARDED_BY(mu_);

  bool crashed_ GUARDED_BY(mu_) = false;
  EngineMetrics metrics_ GUARDED_BY(mu_);
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace polyvalue

#endif  // SRC_PAXOS_PAXOS_ENGINE_H_
