// Leader role: Submit → PREPARE fan-out → execute (poly)transaction →
// WRITE_REQ fan-out → Phase2b tally per RM instance → decision
// broadcast. Also the recovery-ballot leader (Phase1a/1b → Phase2a)
// that any site becomes when nudged about a stalled transaction.
#include <algorithm>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/paxos/paxos_engine.h"

namespace polyvalue {

void PaxosEngine::SubmitUnderLock(TxnSpec spec, TxnCallback callback,
                                  TxnId txn, Outbox* out) {
  MutexLock lock(&mu_);
  ++metrics_.txns_submitted;
  if (crashed_) {
    out->thunks.push_back([callback = std::move(callback), txn] {
      TxnResult r;
      r.id = txn;
      r.disposition = TxnDisposition::kAborted;
      r.abort_reason = "coordinator site is down";
      callback(r);
    });
    return;
  }
  Trace(TraceEventType::kSubmit, txn);
  Leadership lead;
  lead.has_spec = true;
  lead.participants = spec.Participants();
  lead.callback = std::move(callback);

  if (lead.participants.empty()) {
    // Pure computation: no RM group, no Paxos instances. Execute
    // immediately against an empty read set, same as the 2PC leg.
    TxnEffect effect = spec.logic(TxnReads{});
    TxnResult r;
    r.id = txn;
    if (effect.abort) {
      ++metrics_.txns_aborted;
      Trace(TraceEventType::kDecisionAbort, txn);
      r.disposition = TxnDisposition::kAborted;
      r.abort_reason = effect.abort_reason;
    } else {
      POLYV_CHECK_MSG(effect.writes.empty(),
                      "transaction writes items but declared no sites");
      ++metrics_.txns_read_only;
      Trace(TraceEventType::kReadOnlyDone, txn);
      r.disposition = TxnDisposition::kReadOnly;
      r.output = PolyValue::Certain(effect.output.value_or(Value::Null()));
    }
    out->thunks.push_back([cb = std::move(lead.callback), r] { cb(r); });
    return;
  }

  // Compute phase, identical wire traffic to 2PC — except the PREPARE
  // carries the RM group, so every vote/nudge can name the full
  // instance set to a future recovery leader.
  for (SiteId site : lead.participants) {
    std::vector<ItemKey> reads;
    std::vector<ItemKey> writes;
    for (const auto& [key, owner] : spec.read_set) {
      if (owner == site) {
        reads.push_back(key);
      }
    }
    for (const auto& [key, owner] : spec.write_set) {
      if (owner == site) {
        writes.push_back(key);
      }
    }
    lead.awaiting.insert(site);
    Message prepare =
        MakePrepare(txn, self_, std::move(reads), std::move(writes));
    prepare.group = lead.participants;
    out->sends.emplace_back(site, std::move(prepare));
  }
  lead.spec = std::move(spec);
  lead.timer = ScheduleGuarded(config_.prepare_timeout,
                               [this, txn] { LeaderTimeout(txn); });
  leaderships_.emplace(txn, std::move(lead));
}

void PaxosEngine::HandlePrepareReply(SiteId from, const Message& msg,
                                     Outbox* out) {
  auto it = leaderships_.find(msg.txn);
  if (it == leaderships_.end() ||
      it->second.phase != LeaderPhase::kCollecting) {
    Trace(TraceEventType::kMsgIgnored, msg.txn, false,
          static_cast<uint64_t>(MsgType::kPrepareReply));
    return;  // stale (txn decided or already past the compute phase)
  }
  Leadership& lead = it->second;
  if (!msg.ok) {
    AbortBeforeVotes(msg.txn, &lead,
                     StrCat("participant ", from, " refused: ", msg.error),
                     out);
    return;
  }
  if (lead.awaiting.erase(from) == 0) {
    Trace(TraceEventType::kMsgIgnored, msg.txn, false,
          static_cast<uint64_t>(MsgType::kPrepareReply));
    return;  // duplicate
  }
  for (const auto& [key, value] : msg.values) {
    lead.collected.insert_or_assign(key, value);
  }
  Trace(TraceEventType::kVoteCollected, msg.txn,
        /*flag=*/lead.awaiting.empty(), lead.awaiting.size());
  if (!lead.awaiting.empty()) {
    return;
  }
  ExecuteAndShip(msg.txn, &lead, out);
}

void PaxosEngine::ExecuteAndShip(TxnId txn, Leadership* lead, Outbox* out) {
  scheduler_->Cancel(lead->timer);
  lead->timer = 0;

  // Split the collected values into logic inputs (read set) and
  // previous values (write set); a read-write item appears in both.
  std::map<ItemKey, PolyValue> inputs;
  std::map<ItemKey, PolyValue> previous;
  for (const auto& [key, owner] : lead->spec.read_set) {
    auto found = lead->collected.find(key);
    POLYV_CHECK_MSG(found != lead->collected.end(),
                    "participant did not return read item '" << key << "'");
    inputs.emplace(key, found->second);
  }
  for (const auto& [key, owner] : lead->spec.write_set) {
    auto found = lead->collected.find(key);
    if (found != lead->collected.end()) {
      previous.emplace(key, found->second);
    }
  }

  PolyTxnOptions options;
  options.max_alternatives = config_.max_alternatives;
  Result<PolyTxnResult> result =
      ExecutePolyTransaction(inputs, previous, lead->spec.logic, options);
  if (!result.ok()) {
    AbortBeforeVotes(txn, lead, result.status().message(), out);
    return;
  }
  metrics_.alternatives_executed += result->alternatives_executed;
  lead->output = result->output;

  if (result->writes.empty()) {
    // Read-only: nothing to choose. Fix ABORT so the RMs release their
    // locks (they have no prepared writes to lose) and report success.
    RecordDecision(txn, /*committed=*/false);
    TxnResult r;
    r.id = txn;
    r.disposition = TxnDisposition::kReadOnly;
    r.output = lead->output;
    ++metrics_.txns_read_only;
    Trace(TraceEventType::kReadOnlyDone, txn);
    for (SiteId site : lead->participants) {
      out->sends.emplace_back(site, MakePaxosDecision(txn, false));
    }
    out->thunks.push_back([cb = lead->callback, r] { cb(r); });
    leaderships_.erase(txn);
    return;
  }

  // Ship each RM its writes; on receipt it saves them durably and casts
  // its Phase2a(ballot 0, Prepared) vote to every acceptor. This leader
  // tallies the echoes at ballot 0.
  lead->phase = LeaderPhase::kVoting;
  lead->ballot = 0;
  for (SiteId site : lead->participants) {
    std::map<ItemKey, PolyValue> site_writes;
    for (const auto& [key, value] : result->writes) {
      auto owner = lead->spec.write_set.find(key);
      POLYV_CHECK_MSG(owner != lead->spec.write_set.end(),
                      "logic wrote undeclared item '" << key << "'");
      if (owner->second == site) {
        site_writes.emplace(key, value);
      }
    }
    out->sends.emplace_back(site, MakeWriteReq(txn, std::move(site_writes)));
  }
  Trace(TraceEventType::kWriteShipped, txn, false,
        lead->participants.size());
  lead->timer = ScheduleGuarded(config_.ready_timeout,
                                [this, txn] { LeaderTimeout(txn); });
}

void PaxosEngine::AbortBeforeVotes(TxnId txn, Leadership* lead,
                                   const std::string& reason, Outbox* out) {
  // No RM has voted yet (votes only follow WRITE_REQ), so no instance
  // can ever choose Prepared — deciding ABORT locally is safe, and no
  // recovery leader can contradict it.
  RecordDecision(txn, /*committed=*/false);
  for (SiteId site : lead->participants) {
    out->sends.emplace_back(site, MakePaxosDecision(txn, false));
  }
  DeliverClientResult(txn, lead, /*commit=*/false, reason, out);
}

void PaxosEngine::HandlePhase2b(SiteId from, const Message& msg,
                                Outbox* out) {
  (void)out;
  auto it = leaderships_.find(msg.txn);
  if (it == leaderships_.end() ||
      it->second.phase != LeaderPhase::kVoting ||
      msg.ballot != it->second.ballot) {
    Trace(TraceEventType::kMsgIgnored, msg.txn, false,
          static_cast<uint64_t>(MsgType::kPaxosPhase2b));
    return;  // stale ballot, or this site is no longer tallying
  }
  Leadership& lead = it->second;
  const bool known_instance =
      std::find(lead.participants.begin(), lead.participants.end(),
                msg.rm) != lead.participants.end();
  if (!known_instance || lead.chosen.count(msg.rm) > 0) {
    Trace(TraceEventType::kMsgIgnored, msg.txn, false,
          static_cast<uint64_t>(MsgType::kPaxosPhase2b));
    return;
  }
  std::set<SiteId>& echoes = lead.acks[msg.rm];
  echoes.insert(from);
  if (echoes.size() < Majority()) {
    Trace(TraceEventType::kVoteCollected, msg.txn, /*flag=*/false,
          echoes.size());
    return;
  }
  lead.chosen.insert(msg.rm);
  const bool value =
      lead.ballot == 0 ? msg.ok : lead.proposed[msg.rm];
  Trace(TraceEventType::kPaxosChosen, msg.txn, /*peer=*/msg.rm,
        /*flag=*/value, lead.ballot);
  if (lead.chosen.size() < lead.participants.size()) {
    return;
  }
  FinishTally(msg.txn, &lead, out);
}

void PaxosEngine::FinishTally(TxnId txn, Leadership* lead, Outbox* out) {
  // Every instance chose: commit iff every one chose Prepared. At
  // ballot 0 the RMs only ever propose Prepared, so the tally is
  // trivially commit; recovery ballots carry whatever Phase1b reported.
  bool commit = true;
  if (lead->ballot != 0) {
    for (SiteId rm : lead->participants) {
      const auto proposed = lead->proposed.find(rm);
      commit = commit && proposed != lead->proposed.end() &&
               proposed->second;
    }
  }
  RecordDecision(txn, commit);
  Trace(TraceEventType::kPaxosDecide, txn, /*flag=*/commit, lead->ballot);
  BroadcastDecision(txn, commit, out);
  if (lead->has_spec) {
    DeliverClientResult(txn, lead, commit,
                        commit ? "" : "paxos instances chose abort", out);
    return;
  }
  if (lead->timer != 0) {
    scheduler_->Cancel(lead->timer);
  }
  leaderships_.erase(txn);
}

void PaxosEngine::DeliverClientResult(TxnId txn, Leadership* lead,
                                      bool commit, const std::string& reason,
                                      Outbox* out) {
  if (lead->timer != 0) {
    scheduler_->Cancel(lead->timer);
    lead->timer = 0;
  }
  TxnResult r;
  r.id = txn;
  Trace(commit ? TraceEventType::kDecisionCommit
               : TraceEventType::kDecisionAbort,
        txn);
  if (commit) {
    ++metrics_.txns_committed;
    r.disposition = TxnDisposition::kCommitted;
    r.output = lead->output;
  } else {
    ++metrics_.txns_aborted;
    r.disposition = TxnDisposition::kAborted;
    r.abort_reason = reason;
  }
  out->thunks.push_back([cb = lead->callback, r] {
    if (cb) {
      cb(r);
    }
  });
  leaderships_.erase(txn);  // invalidates lead
}

void PaxosEngine::StartRecovery(TxnId txn,
                                const std::vector<SiteId>& group_hint,
                                Outbox* out) {
  // Claim (or escalate) the recovery leadership with a fresh self-owned
  // ballot. Ballots are partitioned by site (round*N + index), so two
  // concurrent recovery leaders can never collide on one.
  Leadership& lead = leaderships_[txn];
  lead.round = std::max(lead.round + 1, 1);
  lead.ballot = RecoveryBallot(lead.round);
  lead.phase = LeaderPhase::kRecovering;
  for (SiteId rm : group_hint) {
    if (std::find(lead.participants.begin(), lead.participants.end(), rm) ==
        lead.participants.end()) {
      lead.participants.push_back(rm);
    }
  }
  std::sort(lead.participants.begin(), lead.participants.end());
  lead.promised_from.clear();
  lead.best_accepted.clear();
  lead.proposed.clear();
  lead.acks.clear();
  lead.chosen.clear();
  if (lead.timer != 0) {
    scheduler_->Cancel(lead.timer);
  }
  ++metrics_.paxos_recovery_ballots;
  Trace(TraceEventType::kPaxosRecoveryBallot, txn, /*flag=*/false,
        lead.ballot);
  const Message phase1a = MakePaxosPhase1a(txn, lead.ballot);
  for (size_t i = 0; i < config_.cluster_sites; ++i) {
    out->sends.emplace_back(SiteAt(i), phase1a);
  }
  lead.timer = ScheduleGuarded(config_.paxos_failover_timeout,
                               [this, txn] { LeaderTimeout(txn); });
}

void PaxosEngine::HandlePhase1b(SiteId from, const Message& msg,
                                Outbox* out) {
  auto it = leaderships_.find(msg.txn);
  if (it == leaderships_.end() ||
      it->second.phase != LeaderPhase::kRecovering ||
      msg.ballot != it->second.ballot) {
    Trace(TraceEventType::kMsgIgnored, msg.txn, false,
          static_cast<uint64_t>(MsgType::kPaxosPhase1b));
    return;
  }
  Leadership& lead = it->second;
  for (SiteId rm : msg.group) {
    if (std::find(lead.participants.begin(), lead.participants.end(), rm) ==
        lead.participants.end()) {
      lead.participants.push_back(rm);
    }
  }
  std::sort(lead.participants.begin(), lead.participants.end());
  for (const Message::PaxosInstance& inst : msg.instances) {
    auto best = lead.best_accepted.find(inst.rm);
    if (best == lead.best_accepted.end() ||
        inst.ballot >= best->second.first) {
      lead.best_accepted[inst.rm] = {inst.ballot, inst.prepared};
    }
  }
  lead.promised_from.insert(from);
  Trace(TraceEventType::kVoteCollected, msg.txn,
        /*flag=*/lead.promised_from.size() >= Majority(),
        lead.promised_from.size());
  if (lead.promised_from.size() < Majority()) {
    return;
  }

  // A majority promised: older ballots can no longer complete behind our
  // back. Propose, per instance, the highest-ballot accepted value any
  // promiser reported — or Aborted if none did (that RM never voted, and
  // our promise majority blocks it from sneaking a vote past ballot 0).
  lead.phase = LeaderPhase::kVoting;
  if (lead.participants.empty()) {
    // No promiser had ever heard of this transaction and the nudge
    // carried no group: nothing was prepared anywhere — fix ABORT.
    RecordDecision(msg.txn, /*committed=*/false);
    Trace(TraceEventType::kPaxosDecide, msg.txn, /*flag=*/false,
          lead.ballot);
    BroadcastDecision(msg.txn, false, out);
    if (lead.timer != 0) {
      scheduler_->Cancel(lead.timer);
    }
    leaderships_.erase(msg.txn);
    return;
  }
  for (SiteId rm : lead.participants) {
    const auto best = lead.best_accepted.find(rm);
    const bool value =
        best != lead.best_accepted.end() && best->second.second;
    lead.proposed[rm] = value;
    const Message phase2a =
        MakePaxosPhase2a(msg.txn, lead.ballot, rm, value, lead.participants);
    for (size_t i = 0; i < config_.cluster_sites; ++i) {
      out->sends.emplace_back(SiteAt(i), phase2a);
    }
  }
}

void PaxosEngine::LeaderTimeout(TxnId txn) {
  Outbox out;
  {
    MutexLock lock(&mu_);
    if (crashed_) {
      return;
    }
    auto it = leaderships_.find(txn);
    if (it == leaderships_.end() || decided_.count(txn) > 0) {
      return;  // already settled
    }
    Leadership& lead = it->second;
    if (lead.phase == LeaderPhase::kCollecting) {
      // Compute phase stalled: nobody voted, unilateral abort is safe.
      AbortBeforeVotes(txn, &lead, "timeout collecting prepare replies",
                       &out);
    } else {
      // Ballot-0 tally or a previous recovery round stalled (lost votes,
      // dead acceptors): escalate to the next self-owned ballot.
      StartRecovery(txn, lead.participants, &out);
    }
  }
  FlushOutbox(&out);
}

}  // namespace polyvalue
