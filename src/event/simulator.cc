#include "src/event/simulator.h"

namespace polyvalue {

Simulator::EventId Simulator::At(SimTime when, Action action) {
  POLYV_CHECK_MSG(when >= now_, "scheduling into the past: " << when
                                << " < " << now_);
  const EventId id = next_id_++;
  queue_.push({when, next_seq_++, id});
  actions_.emplace(id, std::move(action));
  ++live_events_;
  return id;
}

Simulator::EventId Simulator::After(SimTime delay, Action action) {
  POLYV_CHECK_GE(delay, 0.0);
  return At(now_ + delay, std::move(action));
}

bool Simulator::Cancel(EventId id) {
  auto it = actions_.find(id);
  if (it == actions_.end()) {
    return false;
  }
  actions_.erase(it);
  --live_events_;
  return true;
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    auto it = actions_.find(entry.id);
    if (it == actions_.end()) {
      continue;  // cancelled
    }
    Action action = std::move(it->second);
    actions_.erase(it);
    --live_events_;
    now_ = entry.when;
    ++events_processed_;
    action();
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty()) {
    // Skip cancelled heads without advancing time.
    const Entry& head = queue_.top();
    if (actions_.find(head.id) == actions_.end()) {
      queue_.pop();
      continue;
    }
    if (head.when > deadline) {
      break;
    }
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void Simulator::RunAll(uint64_t max_events) {
  uint64_t executed = 0;
  while (Step()) {
    POLYV_CHECK_MSG(++executed <= max_events,
                    "simulator exceeded event budget (" << max_events
                    << ") — livelock?");
  }
}

}  // namespace polyvalue
