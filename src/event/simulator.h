// Discrete-event simulation kernel.
//
// Both analysis tracks of the paper run on this kernel: the cluster
// simulation that drives the protocol state machines through failures,
// and the §4.2 stochastic polyvalue birth/death simulation. Time is a
// double in seconds (matching the paper's parameter units: updates per
// second, failures recovered per second). Events at equal times fire in
// scheduling order, so a run is a pure function of (program, seed).
#ifndef SRC_EVENT_SIMULATOR_H_
#define SRC_EVENT_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"

namespace polyvalue {

using SimTime = double;

class Simulator {
 public:
  using Action = std::function<void()>;

  // Token that identifies a scheduled event so it can be cancelled.
  using EventId = uint64_t;

  SimTime now() const { return now_; }

  // Schedules `action` at absolute time `when` (>= now).
  EventId At(SimTime when, Action action);

  // Schedules `action` `delay` seconds from now.
  EventId After(SimTime delay, Action action);

  // Cancels a pending event. Returns false if it already fired or was
  // already cancelled. Cancellation is O(1) (lazy: the queue entry stays
  // but becomes a no-op).
  bool Cancel(EventId id);

  // Runs the next event. Returns false when the queue is empty.
  bool Step();

  // Runs events until the queue empties or the next event is after
  // `deadline`; time advances to `deadline` at most.
  void RunUntil(SimTime deadline);

  // Runs everything; CHECK-fails after `max_events` as a runaway guard.
  void RunAll(uint64_t max_events = 100'000'000);

  uint64_t events_processed() const { return events_processed_; }
  size_t pending() const { return live_events_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;  // FIFO tie-break for equal times
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t events_processed_ = 0;
  size_t live_events_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // id -> action; erased on fire/cancel. Entries without a mapping are
  // cancelled.
  std::unordered_map<EventId, Action> actions_;
};

}  // namespace polyvalue

#endif  // SRC_EVENT_SIMULATOR_H_
