#include "src/poly/poly_ops.h"

namespace polyvalue {

Result<PolyValue> ApplyUnary(
    const PolyValue& input,
    const std::function<Result<Value>(const Value&)>& fn) {
  std::vector<PolyPair> out;
  out.reserve(input.pairs().size());
  for (const PolyPair& p : input.pairs()) {
    POLYV_ASSIGN_OR_RETURN(Value v, fn(p.value));
    out.push_back({std::move(v), p.condition});
  }
  return PolyValue::Of(std::move(out));
}

Result<PolyValue> ApplyBinary(
    const PolyValue& lhs, const PolyValue& rhs,
    const std::function<Result<Value>(const Value&, const Value&)>& fn) {
  std::vector<PolyPair> out;
  out.reserve(lhs.pairs().size() * rhs.pairs().size());
  for (const PolyPair& a : lhs.pairs()) {
    for (const PolyPair& b : rhs.pairs()) {
      Condition joint = Condition::And(a.condition, b.condition);
      if (joint.is_false()) {
        continue;  // unreachable combination: prune before computing
      }
      POLYV_ASSIGN_OR_RETURN(Value v, fn(a.value, b.value));
      out.push_back({std::move(v), std::move(joint)});
    }
  }
  return PolyValue::Of(std::move(out));
}

Result<PolyValue> PolyAdd(const PolyValue& a, const PolyValue& b) {
  return ApplyBinary(a, b, [](const Value& x, const Value& y) {
    return Add(x, y);
  });
}

Result<PolyValue> PolySub(const PolyValue& a, const PolyValue& b) {
  return ApplyBinary(a, b, [](const Value& x, const Value& y) {
    return Sub(x, y);
  });
}

Result<PolyValue> PolyMul(const PolyValue& a, const PolyValue& b) {
  return ApplyBinary(a, b, [](const Value& x, const Value& y) {
    return Mul(x, y);
  });
}

Result<PolyValue> PolyDiv(const PolyValue& a, const PolyValue& b) {
  return ApplyBinary(a, b, [](const Value& x, const Value& y) {
    return Div(x, y);
  });
}

Result<PolyValue> PolyLess(const PolyValue& a, const PolyValue& b) {
  return ApplyBinary(a, b, [](const Value& x, const Value& y) -> Result<Value> {
    POLYV_ASSIGN_OR_RETURN(bool lt, Less(x, y));
    return Value::Bool(lt);
  });
}

Result<PolyValue> PolyGreaterEq(const PolyValue& a, const PolyValue& b) {
  return ApplyBinary(a, b, [](const Value& x, const Value& y) -> Result<Value> {
    POLYV_ASSIGN_OR_RETURN(bool ge, GreaterEq(x, y));
    return Value::Bool(ge);
  });
}

Result<bool> DecideUniform(const PolyValue& boolean_poly) {
  bool first = true;
  bool decision = false;
  for (const PolyPair& p : boolean_poly.pairs()) {
    POLYV_ASSIGN_OR_RETURN(bool b, p.value.AsBool());
    if (first) {
      decision = b;
      first = false;
    } else if (b != decision) {
      return UncertainError("alternatives disagree: " +
                            boolean_poly.ToString());
    }
  }
  if (first) {
    return InternalError("empty polyvalue");
  }
  return decision;
}

}  // namespace polyvalue
