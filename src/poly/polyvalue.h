// The polyvalue: the paper's central data structure (§3).
//
// A polyvalue is a set of pairs ⟨v, c⟩ where v is a simple Value and c a
// Condition over transaction identifiers; exactly one condition is true
// under any assignment of outcomes, and the paired value is then the
// item's correct value. A certain item is the degenerate polyvalue
// {⟨v, true⟩}.
//
// The §3.1 simplification rules are maintained as invariants:
//   1. no nesting — pairs always hold simple Values (nesting is resolved
//      at construction: combining a computed polyvalue with a previous
//      polyvalue ANDs the conditions, see InstallUncertain);
//   2. equal values merge — at most one pair per distinct Value, its
//      condition the OR of the merged conditions;
//   3. sum-of-products + dead-pair elimination — conditions are canonical
//      SOP (see Condition) and pairs with false conditions are dropped.
//
// The class does not *enforce* completeness/disjointness on every
// construction (that would cost an exact SAT check per update); the
// engine's constructors guarantee it by the paper's evolution rules, and
// Validate() performs the exact check for tests and debug paths.
#ifndef SRC_POLY_POLYVALUE_H_
#define SRC_POLY_POLYVALUE_H_

#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/condition/condition.h"
#include "src/value/value.h"

namespace polyvalue {

// One alternative: value v is current when condition c holds.
struct PolyPair {
  Value value;
  Condition condition;

  friend bool operator==(const PolyPair& a, const PolyPair& b) {
    return a.value == b.value && a.condition == b.condition;
  }
};

class PolyValue {
 public:
  // Certain null.
  PolyValue() : pairs_{{Value::Null(), Condition::True()}} {}

  // {⟨v, true⟩}.
  static PolyValue Certain(Value v);

  // Builds from raw pairs, applying simplification rules 2 and 3 (merge
  // equal values, drop false conditions). The caller is responsible for
  // the completeness/disjointness of the given conditions.
  static PolyValue Of(std::vector<PolyPair> pairs);

  // The §3.1 wait-phase construction: transaction `txn` computed
  // `computed` for this item (itself possibly a polyvalue when txn was a
  // polytransaction) but txn's outcome is unknown. The result holds the
  // computed alternatives under "txn committed" and the previous
  // alternatives under "txn aborted":
  //     {⟨v, c∧T⟩ : ⟨v,c⟩ ∈ computed} ∪ {⟨v', c'∧¬T⟩ : ⟨v',c'⟩ ∈ previous}
  // This is exactly {⟨v,T⟩, ⟨v',¬T⟩} generalised per simplification rule 1.
  static PolyValue InstallUncertain(TxnId txn, const PolyValue& computed,
                                    const PolyValue& previous);

  const std::vector<PolyPair>& pairs() const { return pairs_; }
  size_t size() const { return pairs_.size(); }

  // True when only one alternative remains and its condition is TRUE.
  bool is_certain() const {
    return pairs_.size() == 1 && pairs_[0].condition.is_true();
  }

  // The value when certain; CHECK-fails otherwise.
  const Value& certain_value() const;

  // The value if certain, nullopt otherwise.
  std::optional<Value> TryCertain() const;

  // §3.3 reduction: substitutes the learned outcome of `txn` into every
  // condition, drops dead pairs, re-merges. When the outcomes of all
  // transactions a polyvalue depends on are known this collapses it to a
  // certain value.
  PolyValue Reduce(TxnId txn, bool committed) const;

  // Applies several outcomes at once.
  PolyValue ReduceAll(const std::unordered_map<TxnId, bool>& outcomes) const;

  // Transactions this polyvalue depends on (sorted ascending). Empty iff
  // certain.
  std::vector<TxnId> Dependencies() const;

  // All distinct possible values (one per pair, by invariant 2).
  std::vector<Value> PossibleValues() const;

  // Extremes over numeric alternatives — the reservation example of §5
  // grants a booking when Max() of "seats taken" is below capacity.
  // Errors if any alternative is non-numeric.
  Result<Value> MinPossible() const;
  Result<Value> MaxPossible() const;

  // True if `predicate` holds for every alternative: the "output does not
  // depend on the exact value" test of §3.4 — a uniform predicate yields a
  // certain external output even from an uncertain item.
  bool ForAllValues(const std::function<bool(const Value&)>& predicate) const;
  bool ExistsValue(const std::function<bool(const Value&)>& predicate) const;

  // Expected value under independent per-transaction commit probabilities
  // (missing entries default to `default_commit_probability`). Extension
  // beyond the paper, useful for the process-control example.
  Result<double> ExpectedValue(
      const std::unordered_map<TxnId, double>& commit_probability,
      double default_commit_probability = 0.5) const;

  // Exact check of the paper's §3 invariant: conditions complete and
  // pairwise disjoint. O(2^vars); meant for tests/assertions.
  bool Validate() const;

  // The value selected by a complete outcome assignment.
  Result<Value> ValueUnder(
      const std::unordered_map<TxnId, bool>& outcomes) const;

  bool operator==(const PolyValue& other) const {
    return pairs_ == other.pairs_;
  }
  bool operator!=(const PolyValue& other) const { return !(*this == other); }

  // "{10 if T1; 25 if ¬T1}" or just "10" when certain.
  std::string ToString() const;

 private:
  explicit PolyValue(std::vector<PolyPair> pairs) : pairs_(std::move(pairs)) {
    Canonicalize();
  }

  // Simplification rules 2 + 3; sorts pairs by value for determinism.
  void Canonicalize();

  std::vector<PolyPair> pairs_;
};

inline std::ostream& operator<<(std::ostream& os, const PolyValue& pv) {
  return os << pv.ToString();
}

}  // namespace polyvalue

#endif  // SRC_POLY_POLYVALUE_H_
