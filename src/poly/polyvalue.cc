#include "src/poly/polyvalue.h"

#include <algorithm>
#include <map>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace polyvalue {

PolyValue PolyValue::Certain(Value v) {
  return PolyValue({{std::move(v), Condition::True()}});
}

PolyValue PolyValue::Of(std::vector<PolyPair> pairs) {
  return PolyValue(std::move(pairs));
}

PolyValue PolyValue::InstallUncertain(TxnId txn, const PolyValue& computed,
                                      const PolyValue& previous) {
  POLYV_CHECK(txn.valid());
  const Condition committed = Condition::Committed(txn);
  const Condition aborted = Condition::Aborted(txn);
  std::vector<PolyPair> pairs;
  pairs.reserve(computed.pairs_.size() + previous.pairs_.size());
  for (const PolyPair& p : computed.pairs_) {
    pairs.push_back({p.value, Condition::And(p.condition, committed)});
  }
  for (const PolyPair& p : previous.pairs_) {
    pairs.push_back({p.value, Condition::And(p.condition, aborted)});
  }
  return PolyValue(std::move(pairs));
}

void PolyValue::Canonicalize() {
  // Rule 3: drop pairs whose condition is (syntactically, in canonical
  // SOP) false.
  // Rule 2: merge pairs with equal values by OR-ing conditions.
  std::map<Value, Condition> merged;
  for (PolyPair& p : pairs_) {
    if (p.condition.is_false()) {
      continue;
    }
    auto [it, inserted] = merged.emplace(std::move(p.value), p.condition);
    if (!inserted) {
      it->second = Condition::Or(it->second, p.condition);
    }
  }
  pairs_.clear();
  pairs_.reserve(merged.size());
  for (auto& [value, condition] : merged) {
    pairs_.push_back({value, std::move(condition)});
  }
  // A polyvalue must describe *some* value; an empty pair set can only
  // arise from caller error (all conditions false).
  if (pairs_.empty()) {
    pairs_.push_back({Value::Null(), Condition::True()});
    return;
  }
  // If any single pair's condition simplifies to TRUE, disjointness of the
  // evolution rules means it is the only live pair.
  if (pairs_.size() > 1) {
    for (const PolyPair& p : pairs_) {
      if (p.condition.is_true()) {
        PolyPair only = p;
        pairs_ = {std::move(only)};
        break;
      }
    }
  }
}

const Value& PolyValue::certain_value() const {
  POLYV_CHECK_MSG(is_certain(), "polyvalue is uncertain: " << ToString());
  return pairs_[0].value;
}

std::optional<Value> PolyValue::TryCertain() const {
  if (is_certain()) {
    return pairs_[0].value;
  }
  return std::nullopt;
}

PolyValue PolyValue::Reduce(TxnId txn, bool committed) const {
  std::vector<PolyPair> out;
  out.reserve(pairs_.size());
  for (const PolyPair& p : pairs_) {
    out.push_back({p.value, p.condition.Assume(txn, committed)});
  }
  return PolyValue(std::move(out));
}

PolyValue PolyValue::ReduceAll(
    const std::unordered_map<TxnId, bool>& outcomes) const {
  std::vector<PolyPair> out;
  out.reserve(pairs_.size());
  for (const PolyPair& p : pairs_) {
    Condition c = p.condition;
    for (const auto& [txn, committed] : outcomes) {
      c = c.Assume(txn, committed);
      if (c.is_false()) {
        break;
      }
    }
    out.push_back({p.value, std::move(c)});
  }
  return PolyValue(std::move(out));
}

std::vector<TxnId> PolyValue::Dependencies() const {
  std::vector<TxnId> all;
  for (const PolyPair& p : pairs_) {
    const std::vector<TxnId> vars = p.condition.Variables();
    all.insert(all.end(), vars.begin(), vars.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::vector<Value> PolyValue::PossibleValues() const {
  std::vector<Value> out;
  out.reserve(pairs_.size());
  for (const PolyPair& p : pairs_) {
    out.push_back(p.value);
  }
  return out;
}

Result<Value> PolyValue::MinPossible() const {
  Value best = pairs_[0].value;
  for (size_t i = 1; i < pairs_.size(); ++i) {
    POLYV_ASSIGN_OR_RETURN(best, Min(best, pairs_[i].value));
  }
  return best;
}

Result<Value> PolyValue::MaxPossible() const {
  Value best = pairs_[0].value;
  for (size_t i = 1; i < pairs_.size(); ++i) {
    POLYV_ASSIGN_OR_RETURN(best, Max(best, pairs_[i].value));
  }
  return best;
}

bool PolyValue::ForAllValues(
    const std::function<bool(const Value&)>& predicate) const {
  for (const PolyPair& p : pairs_) {
    if (!predicate(p.value)) {
      return false;
    }
  }
  return true;
}

bool PolyValue::ExistsValue(
    const std::function<bool(const Value&)>& predicate) const {
  for (const PolyPair& p : pairs_) {
    if (predicate(p.value)) {
      return true;
    }
  }
  return false;
}

namespace {

// Probability that `c` holds, assuming independent commit events.
double ConditionProbability(
    const Condition& c,
    const std::unordered_map<TxnId, double>& commit_probability,
    double fallback) {
  if (c.is_true()) {
    return 1.0;
  }
  if (c.is_false()) {
    return 0.0;
  }
  const TxnId pivot = c.Variables().front();
  auto it = commit_probability.find(pivot);
  const double p = it == commit_probability.end() ? fallback : it->second;
  return p * ConditionProbability(c.Assume(pivot, true), commit_probability,
                                  fallback) +
         (1.0 - p) * ConditionProbability(c.Assume(pivot, false),
                                          commit_probability, fallback);
}

}  // namespace

Result<double> PolyValue::ExpectedValue(
    const std::unordered_map<TxnId, double>& commit_probability,
    double default_commit_probability) const {
  double expectation = 0.0;
  for (const PolyPair& p : pairs_) {
    POLYV_ASSIGN_OR_RETURN(double v, p.value.AsReal());
    expectation += v * ConditionProbability(p.condition, commit_probability,
                                            default_commit_probability);
  }
  return expectation;
}

bool PolyValue::Validate() const {
  std::vector<Condition> conditions;
  conditions.reserve(pairs_.size());
  for (const PolyPair& p : pairs_) {
    conditions.push_back(p.condition);
  }
  return ConditionsCompleteAndDisjoint(conditions);
}

Result<Value> PolyValue::ValueUnder(
    const std::unordered_map<TxnId, bool>& outcomes) const {
  for (const PolyPair& p : pairs_) {
    bool covered = true;
    for (TxnId txn : p.condition.Variables()) {
      if (outcomes.find(txn) == outcomes.end()) {
        covered = false;
        break;
      }
    }
    if (!covered) {
      return InvalidArgumentError(
          "incomplete outcome assignment for " + ToString());
    }
    if (p.condition.Evaluate(outcomes)) {
      return p.value;
    }
  }
  return InternalError("no alternative satisfied — polyvalue incomplete: " +
                       ToString());
}

std::string PolyValue::ToString() const {
  if (is_certain()) {
    return pairs_[0].value.ToString();
  }
  std::vector<std::string> parts;
  parts.reserve(pairs_.size());
  for (const PolyPair& p : pairs_) {
    parts.push_back(
        StrCat(p.value.ToString(), " if ", p.condition.ToString()));
  }
  return "{" + StrJoin(parts, "; ") + "}";
}

}  // namespace polyvalue
