// Lifted operations over polyvalues (§3.2 in miniature).
//
// A full polytransaction forks alternative executions of arbitrary user
// logic (see src/txn/polytxn.h). For straight-line expressions these
// lifted combinators are equivalent and much cheaper: they enumerate the
// cross-product of input alternatives, AND the conditions, prune
// logically-false combinations, and merge equal results — exactly the
// alternative-transaction rules, specialised to one operator.
#ifndef SRC_POLY_POLY_OPS_H_
#define SRC_POLY_POLY_OPS_H_

#include <functional>

#include "src/common/status.h"
#include "src/poly/polyvalue.h"

namespace polyvalue {

// Applies a fallible unary function to every alternative. Fails if the
// function fails on any reachable alternative.
Result<PolyValue> ApplyUnary(
    const PolyValue& input,
    const std::function<Result<Value>(const Value&)>& fn);

// Applies a fallible binary function over the cross-product of
// alternatives. Combinations whose ANDed condition is false are pruned
// *before* the function runs (the §3.2 efficiency rule), so e.g. dividing
// by an alternative that is zero only under an impossible condition
// succeeds.
Result<PolyValue> ApplyBinary(
    const PolyValue& lhs, const PolyValue& rhs,
    const std::function<Result<Value>(const Value&, const Value&)>& fn);

// Arithmetic conveniences.
Result<PolyValue> PolyAdd(const PolyValue& a, const PolyValue& b);
Result<PolyValue> PolySub(const PolyValue& a, const PolyValue& b);
Result<PolyValue> PolyMul(const PolyValue& a, const PolyValue& b);
Result<PolyValue> PolyDiv(const PolyValue& a, const PolyValue& b);

// Lifted comparison: a polyvalue of booleans.
Result<PolyValue> PolyLess(const PolyValue& a, const PolyValue& b);
Result<PolyValue> PolyGreaterEq(const PolyValue& a, const PolyValue& b);

// Three-valued test of a lifted boolean: returns true/false when every
// alternative agrees, or kUncertain when alternatives differ — the §3.4
// distinction between certain and uncertain external outputs.
Result<bool> DecideUniform(const PolyValue& boolean_poly);

}  // namespace polyvalue

#endif  // SRC_POLY_POLY_OPS_H_
