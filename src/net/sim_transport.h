// Deterministic transport on the discrete-event simulator.
//
// Every Send consults the FaultPlan at send time (site/link cuts, random
// drops) and, if deliverable, schedules the handler invocation after a
// sampled delay. The receiving site is re-checked at delivery time, so a
// site that crashes while a packet is in flight never sees it — matching
// the paper's failure model where a down site neither sends nor receives.
#ifndef SRC_NET_SIM_TRANSPORT_H_
#define SRC_NET_SIM_TRANSPORT_H_

#include <unordered_map>

#include "src/event/simulator.h"
#include "src/net/transport.h"
#include "src/obs/trace.h"

namespace polyvalue {

class SimTransport : public Transport {
 public:
  // The simulator, fault plan and rng must outlive the transport.
  SimTransport(Simulator* sim, FaultPlan* faults, Rng* rng)
      : sim_(sim), faults_(faults), rng_(rng) {}

  Status Register(SiteId site, Handler handler) override;
  Status Unregister(SiteId site) override;
  Status Send(Packet packet) override;

  // Native batching: the whole frame gets ONE fault decision and ONE
  // sampled delay, then unpacks into in-order handler invocations at
  // delivery — deterministic, and consuming fewer rng draws than N
  // separate Sends (which is the point: batching must change the event
  // schedule only in the ways it says it does). Falls back to per-packet
  // Send when a filter is installed, so protocol-aware drop rules keep
  // their exact per-message semantics.
  Status SendBatch(std::vector<Packet> packets) override;

  // Optional packet filter consulted (after the FaultPlan) at send time;
  // returning false drops the packet. Enables protocol-aware fault
  // injection — e.g. stranding specific transactions by dropping their
  // COMPLETE messages — which whole-site crashes cannot express.
  using Filter = std::function<bool(const Packet&)>;
  void set_filter(Filter filter) { filter_ = std::move(filter); }

  // Optional trace sink: emits kMsgDropped / kMsgDelivered events for
  // every packet fate. Null (the default) costs nothing on the hot path.
  void set_trace(TraceSink* trace) { trace_ = trace; }

  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_delivered() const { return packets_delivered_; }
  uint64_t packets_dropped() const { return packets_sent_ - packets_delivered_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  // Frames sent through SendBatch carrying more than one packet.
  uint64_t batched_frames() const { return batched_frames_; }

 private:
  Simulator* sim_;
  FaultPlan* faults_;
  Rng* rng_;
  Filter filter_;
  TraceSink* trace_ = nullptr;

  void TracePacket(TraceEventType type, const Packet& packet);
  std::unordered_map<SiteId, Handler> handlers_;
  uint64_t packets_sent_ = 0;
  uint64_t packets_delivered_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t batched_frames_ = 0;
};

}  // namespace polyvalue

#endif  // SRC_NET_SIM_TRANSPORT_H_
