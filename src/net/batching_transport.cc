#include "src/net/batching_transport.h"

#include <chrono>

#include "src/net/codec.h"

namespace polyvalue {

BatchingTransport::BatchingTransport(Transport* inner, Options options)
    : inner_(inner), options_(options) {
  if (options_.enabled && options_.auto_flush) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
}

BatchingTransport::~BatchingTransport() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  if (flusher_.joinable()) {
    flusher_.join();
  }
  FlushAll();  // drain whatever the flusher did not get to
}

Status BatchingTransport::Register(SiteId site, Handler handler) {
  // Unpack batch frames so the engine above always sees single
  // messages, whatever the inner transport did with them.
  return inner_->Register(
      site, [handler = std::move(handler)](Packet packet) {
        if (IsPacketBatch(packet.payload)) {
          Result<std::vector<Packet>> unpacked =
              DecodePacketBatch(packet.payload);
          if (!unpacked.ok()) {
            return;  // corrupt frame: the whole batch is lost (tolerated)
          }
          for (Packet& p : unpacked.value()) {
            handler(std::move(p));
          }
          return;
        }
        handler(std::move(packet));
      });
}

Status BatchingTransport::Unregister(SiteId site) {
  return inner_->Unregister(site);
}

Status BatchingTransport::Send(Packet packet) {
  if (!options_.enabled) {
    return inner_->Send(std::move(packet));
  }
  std::vector<Packet> flush_now;
  bool newly_pending = false;
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      return inner_->Send(std::move(packet));
    }
    LinkQueue& queue =
        queues_[{packet.from.value(), packet.to.value()}];
    newly_pending = queue.packets.empty();
    queue.bytes += packet.payload.size();
    queue.packets.push_back(std::move(packet));
    if (queue.packets.size() >= options_.max_batch ||
        queue.bytes >= options_.max_bytes) {
      flush_now.swap(queue.packets);
      queue.bytes = 0;
      newly_pending = false;
    }
  }
  if (!flush_now.empty()) {
    Dispatch(std::move(flush_now));
  } else if (newly_pending) {
    std::function<void()> hook;
    {
      MutexLock lock(&mu_);
      hook = flush_hook_;
    }
    if (hook) {
      hook();
    }
  }
  return OkStatus();
}

Status BatchingTransport::SendBatch(std::vector<Packet> packets) {
  if (!options_.enabled) {
    return inner_->SendBatch(std::move(packets));
  }
  for (Packet& packet : packets) {
    POLYV_RETURN_IF_ERROR(Send(std::move(packet)));
  }
  return OkStatus();
}

void BatchingTransport::Dispatch(std::vector<Packet> packets) {
  if (packets.empty()) {
    return;
  }
  if (packets.size() == 1) {
    (void)inner_->Send(std::move(packets.front()));
    return;
  }
  {
    MutexLock lock(&mu_);
    ++batched_frames_;
    packets_coalesced_ += packets.size();
  }
  (void)inner_->SendBatch(std::move(packets));
}

void BatchingTransport::FlushAll() {
  std::map<LinkKey, LinkQueue> drained;
  {
    MutexLock lock(&mu_);
    drained.swap(queues_);
  }
  for (auto& [link, queue] : drained) {
    Dispatch(std::move(queue.packets));
  }
}

void BatchingTransport::set_flush_hook(std::function<void()> hook) {
  MutexLock lock(&mu_);
  flush_hook_ = std::move(hook);
}

void BatchingTransport::FlusherLoop() {
  const auto window = std::chrono::duration<double>(
      options_.window_seconds > 0 ? options_.window_seconds : 0.0002);
  mu_.Lock();
  while (!stopping_) {
    (void)cv_.WaitFor(&mu_, window.count());
    if (stopping_) {
      break;
    }
    mu_.Unlock();
    FlushAll();
    mu_.Lock();
  }
  mu_.Unlock();
}

uint64_t BatchingTransport::batched_frames() const {
  MutexLock lock(&mu_);
  return batched_frames_;
}

uint64_t BatchingTransport::packets_coalesced() const {
  MutexLock lock(&mu_);
  return packets_coalesced_;
}

}  // namespace polyvalue
