#include "src/net/mem_transport.h"

#include "src/common/strings.h"
#include "src/net/codec.h"

namespace polyvalue {

MemTransport::MemTransport(FaultPlan* faults, uint64_t seed)
    : faults_(faults), send_rng_(seed) {}

MemTransport::~MemTransport() {
  std::unordered_map<SiteId, std::unique_ptr<Mailbox>> boxes;
  {
    MutexLock lock(&mu_);
    boxes.swap(mailboxes_);
  }
  for (auto& [site, box] : boxes) {
    {
      MutexLock lock(&box->mu);
      box->stopping = true;
    }
    box->cv.NotifyAll();
    if (box->dispatcher.joinable()) {
      box->dispatcher.join();
    }
  }
}

Status MemTransport::Register(SiteId site, Handler handler) {
  MutexLock lock(&mu_);
  if (mailboxes_.count(site)) {
    return AlreadyExistsError(StrCat("site ", site, " already registered"));
  }
  auto box = std::make_unique<Mailbox>();
  box->handler = std::move(handler);
  Mailbox* raw = box.get();
  box->dispatcher = std::thread([this, raw] { DispatchLoop(raw); });
  mailboxes_.emplace(site, std::move(box));
  return OkStatus();
}

Status MemTransport::Unregister(SiteId site) {
  std::unique_ptr<Mailbox> box;
  {
    MutexLock lock(&mu_);
    auto it = mailboxes_.find(site);
    if (it == mailboxes_.end()) {
      return NotFoundError(StrCat("site ", site, " not registered"));
    }
    box = std::move(it->second);
    mailboxes_.erase(it);
  }
  {
    MutexLock lock(&box->mu);
    box->stopping = true;
  }
  box->cv.NotifyAll();
  if (box->dispatcher.joinable()) {
    box->dispatcher.join();
  }
  return OkStatus();
}

Status MemTransport::Send(Packet packet) {
  std::chrono::microseconds delay(0);
  {
    MutexLock lock(&mu_);
    ++packets_sent_;
    if (mailboxes_.find(packet.from) == mailboxes_.end()) {
      return InvalidArgumentError(
          StrCat("sender ", packet.from, " not registered"));
    }
    if (faults_ != nullptr) {
      if (!faults_->ShouldDeliver(packet.from, packet.to, &send_rng_)) {
        return OkStatus();  // dropped
      }
      delay = std::chrono::microseconds(
          static_cast<int64_t>(faults_->SampleDelay(&send_rng_) * 1e6));
    }
  }
  MutexLock outer(&mu_);
  auto it = mailboxes_.find(packet.to);
  if (it == mailboxes_.end()) {
    return OkStatus();  // receiver does not exist: drop
  }
  Mailbox* box = it->second.get();
  {
    MutexLock lock(&box->mu);
    box->queue.push(
        {std::chrono::steady_clock::now() + delay, next_seq_++,
         std::move(packet)});
  }
  box->cv.NotifyOne();
  return OkStatus();
}

Status MemTransport::SendBatch(std::vector<Packet> packets) {
  if (packets.empty()) {
    return OkStatus();
  }
  if (packets.size() == 1) {
    return Send(std::move(packets.front()));
  }
  // One envelope frame for the whole batch: one fault-plan decision (a
  // dropped frame drops every packet it carries, as a real wire frame
  // would), one delivery deadline, one dispatcher wakeup.
  Packet envelope;
  envelope.from = packets.front().from;
  envelope.to = packets.front().to;
  envelope.payload = EncodePacketBatch(packets);
  std::chrono::microseconds delay(0);
  {
    MutexLock lock(&mu_);
    packets_sent_ += packets.size();
    ++batched_frames_;
    if (mailboxes_.find(envelope.from) == mailboxes_.end()) {
      return InvalidArgumentError(
          StrCat("sender ", envelope.from, " not registered"));
    }
    if (faults_ != nullptr) {
      if (!faults_->ShouldDeliver(envelope.from, envelope.to, &send_rng_)) {
        return OkStatus();  // dropped
      }
      delay = std::chrono::microseconds(
          static_cast<int64_t>(faults_->SampleDelay(&send_rng_) * 1e6));
    }
  }
  MutexLock outer(&mu_);
  auto it = mailboxes_.find(envelope.to);
  if (it == mailboxes_.end()) {
    return OkStatus();  // receiver does not exist: drop
  }
  Mailbox* box = it->second.get();
  {
    MutexLock lock(&box->mu);
    box->queue.push(
        {std::chrono::steady_clock::now() + delay, next_seq_++,
         std::move(envelope)});
  }
  box->cv.NotifyOne();
  return OkStatus();
}

void MemTransport::DispatchLoop(Mailbox* box) {
  box->mu.Lock();
  for (;;) {
    if (box->stopping) {
      box->mu.Unlock();
      return;
    }
    if (box->queue.empty()) {
      // Spurious wakeups are fine: the loop head re-checks.
      box->cv.Wait(&box->mu);
      continue;
    }
    const SteadyTime deadline = box->queue.top().deliver_at;
    if (std::chrono::steady_clock::now() < deadline) {
      (void)box->cv.WaitUntil(&box->mu, deadline);
      continue;
    }
    Packet packet = std::move(const_cast<Timed&>(box->queue.top()).packet);
    box->queue.pop();
    // Re-check receiver liveness at delivery time.
    if (faults_ != nullptr && faults_->IsSiteDown(packet.to)) {
      continue;
    }
    box->idle = false;
    box->mu.Unlock();
    if (IsPacketBatch(packet.payload)) {
      // Native unpack: the handler sees single protocol payloads.
      Result<std::vector<Packet>> unpacked =
          DecodePacketBatch(packet.payload);
      if (unpacked.ok()) {
        const size_t count = unpacked.value().size();
        for (Packet& p : unpacked.value()) {
          box->handler(std::move(p));
        }
        MutexLock stats(&stats_mu_);
        packets_delivered_ += count;
      }
    } else {
      box->handler(std::move(packet));
      MutexLock stats(&stats_mu_);
      ++packets_delivered_;
    }
    box->mu.Lock();
    box->idle = true;
    box->cv.NotifyAll();  // wake Flush waiters
  }
}

void MemTransport::Flush() {
  for (;;) {
    std::vector<Mailbox*> boxes;
    {
      MutexLock lock(&mu_);
      boxes.reserve(mailboxes_.size());
      for (auto& [site, box] : mailboxes_) {
        boxes.push_back(box.get());
      }
    }
    bool all_idle = true;
    for (Mailbox* box : boxes) {
      MutexLock lock(&box->mu);
      if (!box->queue.empty() || !box->idle) {
        all_idle = false;
        // Wait for this mailbox to drain (with a poll fallback for
        // delayed packets).
        (void)box->cv.WaitFor(&box->mu, 0.001);
      }
    }
    if (all_idle) {
      return;
    }
  }
}

uint64_t MemTransport::packets_sent() const {
  MutexLock lock(&mu_);
  return packets_sent_;
}

uint64_t MemTransport::packets_delivered() const {
  MutexLock lock(&stats_mu_);
  return packets_delivered_;
}

uint64_t MemTransport::batched_frames() const {
  MutexLock lock(&mu_);
  return batched_frames_;
}

}  // namespace polyvalue
