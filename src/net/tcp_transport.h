// TCP loopback transport.
//
// Proves the protocol stack runs over a real network edge: every
// registered site gets a listening socket on 127.0.0.1 (kernel-assigned
// port, recorded in an in-process registry) and one epoll-driven I/O
// thread. Outbound connections are created lazily per (from, to) pair and
// cached. Frames are length-prefixed:
//
//     [u32 little-endian payload length][payload]
//     payload = varint(from) varint(to) bytes
//
// Partial reads/writes are handled; a peer that disappears mid-frame
// costs the in-flight packets and nothing else, which is exactly the loss
// model the commit protocol already tolerates.
#ifndef SRC_NET_TCP_TRANSPORT_H_
#define SRC_NET_TCP_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "src/net/transport.h"

namespace polyvalue {

class TcpTransport : public Transport {
 public:
  TcpTransport();
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status Register(SiteId site, Handler handler) override;
  Status Unregister(SiteId site) override;
  Status Send(Packet packet) override;

  // Native batching: same-link packets ride one TCP frame (one
  // length-prefixed write instead of N); the receiving endpoint unpacks
  // the multi-packet payload before invoking the handler.
  Status SendBatch(std::vector<Packet> packets) override;

  // The loopback port a site listens on (0 if unknown). Exposed for tests.
  uint16_t PortOf(SiteId site) const;

  uint64_t packets_sent() const;
  uint64_t packets_delivered() const;
  // Frames sent through SendBatch carrying more than one packet.
  uint64_t batched_frames() const;

 private:
  struct Endpoint;

  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace polyvalue

#endif  // SRC_NET_TCP_TRANSPORT_H_
