// Wire codecs for the data-model types (Value, Condition, PolyValue).
//
// Encode* appends to a ByteWriter; Decode* consumes from a ByteReader and
// fails with DATA_LOSS on malformed input. Round-tripping is covered by
// fuzz-flavoured property tests.
#ifndef SRC_NET_CODEC_H_
#define SRC_NET_CODEC_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/condition/condition.h"
#include "src/net/transport.h"
#include "src/net/wire.h"
#include "src/poly/polyvalue.h"
#include "src/value/value.h"

namespace polyvalue {

void EncodeValue(const Value& v, ByteWriter* w);
Result<Value> DecodeValue(ByteReader* r);

void EncodeCondition(const Condition& c, ByteWriter* w);
Result<Condition> DecodeCondition(ByteReader* r);

void EncodePolyValue(const PolyValue& pv, ByteWriter* w);
Result<PolyValue> DecodePolyValue(ByteReader* r);

// --- multi-packet wire frame (message batching) ---
//
// Layout: magic0 magic1 version [u32 crc32(tail)] tail, where
// tail = varint(count) then per packet: varint(from) varint(to)
// length-prefixed payload. The CRC makes any truncation or bit flip
// after the magic a deterministic Status error, never UB and never a
// half-decoded batch.

// True when `payload` starts with the batch magic (cheap dispatch test;
// a plain protocol message can never match).
bool IsPacketBatch(const std::string& payload);

// Encodes `packets` into one batch frame payload.
std::string EncodePacketBatch(const std::vector<Packet>& packets);

// Decodes a batch frame; fails with DATA_LOSS on bad magic, bad CRC,
// truncation, or trailing bytes.
Result<std::vector<Packet>> DecodePacketBatch(const std::string& payload);

}  // namespace polyvalue

#endif  // SRC_NET_CODEC_H_
