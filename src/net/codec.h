// Wire codecs for the data-model types (Value, Condition, PolyValue).
//
// Encode* appends to a ByteWriter; Decode* consumes from a ByteReader and
// fails with DATA_LOSS on malformed input. Round-tripping is covered by
// fuzz-flavoured property tests.
#ifndef SRC_NET_CODEC_H_
#define SRC_NET_CODEC_H_

#include "src/common/status.h"
#include "src/condition/condition.h"
#include "src/net/wire.h"
#include "src/poly/polyvalue.h"
#include "src/value/value.h"

namespace polyvalue {

void EncodeValue(const Value& v, ByteWriter* w);
Result<Value> DecodeValue(ByteReader* r);

void EncodeCondition(const Condition& c, ByteWriter* w);
Result<Condition> DecodeCondition(ByteReader* r);

void EncodePolyValue(const PolyValue& pv, ByteWriter* w);
Result<PolyValue> DecodePolyValue(ByteReader* r);

}  // namespace polyvalue

#endif  // SRC_NET_CODEC_H_
