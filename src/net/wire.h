// Binary wire format primitives.
//
// Every protocol message, value, condition and polyvalue that crosses a
// site boundary is encoded with these: LEB128 varints (zig-zag for signed
// integers), bit-cast doubles, and length-prefixed byte strings. Decoding
// is bounds-checked and never trusts the peer: a truncated or corrupt
// frame produces a Status error, not UB.
#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/common/status.h"

namespace polyvalue {

// Multi-packet wire frame ("packet batch") magic. A batch frame starts
// with these two bytes followed by a format version; the first byte is
// far outside the protocol-message version range (messages start with
// kProtocolVersion == 1), so a batch frame can never be mistaken for a
// single encoded message, and vice versa. Encoding/decoding lives in
// src/net/codec.h (EncodePacketBatch / DecodePacketBatch).
inline constexpr uint8_t kPacketBatchMagic0 = 0xB7;
inline constexpr uint8_t kPacketBatchMagic1 = 0x50;  // 'P'
inline constexpr uint8_t kPacketBatchVersion = 1;

class ByteWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      PutU8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    PutU8(static_cast<uint8_t>(v));
  }

  void PutSigned(int64_t v) {
    // Zig-zag.
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }

  void PutBool(bool b) { PutU8(b ? 1 : 0); }

  void PutDouble(double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    PutFixed64(bits);
  }

  void PutFixed64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      PutU8(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void PutFixed32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      PutU8(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void PutString(const std::string& s) {
    PutVarint(s.size());
    buffer_.append(s);
  }

  void PutRaw(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::string& data)
      : data_(data.data()), size_(data.size()) {}
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> GetU8() {
    if (pos_ >= size_) {
      return Truncated();
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift > 63) {
        return DataLossError("varint too long");
      }
      POLYV_ASSIGN_OR_RETURN(uint8_t byte, GetU8());
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        return v;
      }
      shift += 7;
    }
  }

  Result<int64_t> GetSigned() {
    POLYV_ASSIGN_OR_RETURN(uint64_t z, GetVarint());
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  Result<bool> GetBool() {
    POLYV_ASSIGN_OR_RETURN(uint8_t b, GetU8());
    if (b > 1) {
      return DataLossError("bad bool");
    }
    return b == 1;
  }

  Result<uint64_t> GetFixed64() {
    if (pos_ + 8 > size_) {
      return Truncated();
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }

  Result<uint32_t> GetFixed32() {
    if (pos_ + 4 > size_) {
      return Truncated();
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }

  Result<double> GetDouble() {
    POLYV_ASSIGN_OR_RETURN(uint64_t bits, GetFixed64());
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }

  Result<std::string> GetString() {
    POLYV_ASSIGN_OR_RETURN(uint64_t len, GetVarint());
    if (len > size_ - pos_) {
      return Truncated();
    }
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  static Status Truncated() { return DataLossError("truncated frame"); }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace polyvalue

#endif  // SRC_NET_WIRE_H_
