#include "src/net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <vector>

#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/common/thread_annotations.h"
#include "src/common/strings.h"
#include "src/net/codec.h"
#include "src/net/wire.h"

namespace polyvalue {

namespace {

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  POLYV_CHECK_GE(flags, 0);
  POLYV_CHECK_GE(fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Serialises a packet into one frame.
std::string BuildFrame(const Packet& packet) {
  ByteWriter body;
  body.PutVarint(packet.from.value());
  body.PutVarint(packet.to.value());
  body.PutRaw(packet.payload.data(), packet.payload.size());
  ByteWriter frame;
  frame.PutFixed32(static_cast<uint32_t>(body.size()));
  frame.PutRaw(body.buffer().data(), body.size());
  return frame.Take();
}

}  // namespace

// Per-connection state: frame reassembly buffer and pending output.
struct Connection {
  int fd = -1;
  std::string inbox;   // raw bytes awaiting frame completion
  std::deque<std::string> outbox;
  size_t out_offset = 0;  // bytes of outbox.front() already written
  bool want_write = false;
};

// One registered site: listener, epoll loop thread, outbound connections.
struct TcpTransport::Endpoint {
  SiteId site;
  Transport::Handler handler;
  uint16_t port = 0;
  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;  // eventfd to interrupt epoll_wait
  std::thread io_thread;

  Mutex mu POLYV_MUTEX_RANK(kTransportEndpoint);
  bool stopping GUARDED_BY(mu) = false;
  // fd -> connection (inbound accepted + outbound established). The map
  // itself is guarded; Connection internals are touched only by the io
  // thread (via pointers obtained under mu).
  std::unordered_map<int, Connection> connections GUARDED_BY(mu);
  // destination site -> fd of the cached outbound connection.
  std::unordered_map<SiteId, int> outbound GUARDED_BY(mu);
  // packets queued by Send before the io thread picks them up.
  std::deque<Packet> pending_sends GUARDED_BY(mu);
};

class TcpTransport::Impl {
 public:
  ~Impl() {
    std::vector<std::unique_ptr<Endpoint>> eps;
    {
      MutexLock lock(&mu_);
      for (auto& [site, ep] : endpoints_) {
        eps.push_back(std::move(ep));
      }
      endpoints_.clear();
    }
    for (auto& ep : eps) {
      StopEndpoint(ep.get());
    }
  }

  Status Register(SiteId site, Transport::Handler handler) {
    auto ep = std::make_unique<Endpoint>();
    ep->site = site;
    ep->handler = std::move(handler);

    ep->listen_fd = socket(AF_INET, SOCK_STREAM, 0);
    if (ep->listen_fd < 0) {
      return UnavailableError("socket() failed");
    }
    int one = 1;
    setsockopt(ep->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (bind(ep->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
        listen(ep->listen_fd, 64) < 0) {
      close(ep->listen_fd);
      return UnavailableError("bind/listen failed");
    }
    socklen_t len = sizeof(addr);
    getsockname(ep->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ep->port = ntohs(addr.sin_port);
    SetNonBlocking(ep->listen_fd);

    ep->epoll_fd = epoll_create1(0);
    ep->wake_fd = eventfd(0, EFD_NONBLOCK);
    POLYV_CHECK_GE(ep->epoll_fd, 0);
    POLYV_CHECK_GE(ep->wake_fd, 0);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = ep->listen_fd;
    epoll_ctl(ep->epoll_fd, EPOLL_CTL_ADD, ep->listen_fd, &ev);
    ev.data.fd = ep->wake_fd;
    epoll_ctl(ep->epoll_fd, EPOLL_CTL_ADD, ep->wake_fd, &ev);

    Endpoint* raw = ep.get();
    {
      MutexLock lock(&mu_);
      if (endpoints_.count(site)) {
        close(raw->listen_fd);
        close(raw->epoll_fd);
        close(raw->wake_fd);
        return AlreadyExistsError(StrCat("site ", site, " registered"));
      }
      ports_[site] = ep->port;
      endpoints_.emplace(site, std::move(ep));
    }
    raw->io_thread = std::thread([this, raw] { IoLoop(raw); });
    return OkStatus();
  }

  Status Unregister(SiteId site) {
    std::unique_ptr<Endpoint> ep;
    {
      MutexLock lock(&mu_);
      auto it = endpoints_.find(site);
      if (it == endpoints_.end()) {
        return NotFoundError(StrCat("site ", site, " not registered"));
      }
      ep = std::move(it->second);
      endpoints_.erase(it);
      ports_.erase(site);
    }
    StopEndpoint(ep.get());
    return OkStatus();
  }

  Status Send(Packet packet) {
    Endpoint* from = nullptr;
    {
      MutexLock lock(&mu_);
      auto it = endpoints_.find(packet.from);
      if (it == endpoints_.end()) {
        return InvalidArgumentError(
            StrCat("sender ", packet.from, " not registered"));
      }
      from = it->second.get();
      ++packets_sent_;
    }
    {
      MutexLock lock(&from->mu);
      from->pending_sends.push_back(std::move(packet));
    }
    Wake(from);
    return OkStatus();
  }

  Status SendBatch(std::vector<Packet> packets) {
    if (packets.empty()) {
      return OkStatus();
    }
    if (packets.size() == 1) {
      return Send(std::move(packets.front()));
    }
    Packet envelope;
    envelope.from = packets.front().from;
    envelope.to = packets.front().to;
    const size_t count = packets.size();
    envelope.payload = EncodePacketBatch(packets);
    Endpoint* from = nullptr;
    {
      MutexLock lock(&mu_);
      auto it = endpoints_.find(envelope.from);
      if (it == endpoints_.end()) {
        return InvalidArgumentError(
            StrCat("sender ", envelope.from, " not registered"));
      }
      from = it->second.get();
      packets_sent_ += count;
      ++batched_frames_;
    }
    {
      MutexLock lock(&from->mu);
      from->pending_sends.push_back(std::move(envelope));
    }
    Wake(from);
    return OkStatus();
  }

  uint16_t PortOf(SiteId site) const {
    MutexLock lock(&mu_);
    auto it = ports_.find(site);
    return it == ports_.end() ? 0 : it->second;
  }

  uint64_t packets_sent() const {
    MutexLock lock(&mu_);
    return packets_sent_;
  }
  uint64_t packets_delivered() const {
    MutexLock lock(&mu_);
    return packets_delivered_;
  }
  uint64_t batched_frames() const {
    MutexLock lock(&mu_);
    return batched_frames_;
  }

 private:
  static void Wake(Endpoint* ep) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(ep->wake_fd, &one, sizeof(one));
  }

  void StopEndpoint(Endpoint* ep) {
    {
      MutexLock lock(&ep->mu);
      ep->stopping = true;
    }
    Wake(ep);
    if (ep->io_thread.joinable()) {
      ep->io_thread.join();
    }
    MutexLock lock(&ep->mu);
    for (auto& [fd, conn] : ep->connections) {
      close(fd);
    }
    close(ep->listen_fd);
    close(ep->epoll_fd);
    close(ep->wake_fd);
  }

  // Establishes (or reuses) an outbound connection from `ep` to `dest`.
  // Returns -1 when the destination is unknown or connect fails.
  int OutboundFd(Endpoint* ep, SiteId dest) {
    {
      MutexLock lock(&ep->mu);
      auto it = ep->outbound.find(dest);
      if (it != ep->outbound.end()) {
        return it->second;
      }
    }
    uint16_t port = PortOf(dest);
    if (port == 0) {
      return -1;
    }
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    // Blocking connect on loopback: completes immediately or fails.
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      close(fd);
      return -1;
    }
    SetNonBlocking(fd);
    SetNoDelay(fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(ep->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    {
      MutexLock lock(&ep->mu);
      Connection conn;
      conn.fd = fd;
      ep->connections[fd] = std::move(conn);
      ep->outbound[dest] = fd;
    }
    return fd;
  }

  void CloseConnection(Endpoint* ep, int fd) {
    epoll_ctl(ep->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    close(fd);
    MutexLock lock(&ep->mu);
    ep->connections.erase(fd);
    for (auto it = ep->outbound.begin(); it != ep->outbound.end();) {
      if (it->second == fd) {
        it = ep->outbound.erase(it);
      } else {
        ++it;
      }
    }
  }

  void UpdateWriteInterest(Endpoint* ep, Connection* conn) {
    const bool want = !conn->outbox.empty();
    if (want == conn->want_write) {
      return;
    }
    conn->want_write = want;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.fd = conn->fd;
    epoll_ctl(ep->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  }

  void FlushPendingSends(Endpoint* ep) {
    std::deque<Packet> pending;
    {
      MutexLock lock(&ep->mu);
      pending.swap(ep->pending_sends);
    }
    for (Packet& packet : pending) {
      const int fd = OutboundFd(ep, packet.to);
      if (fd < 0) {
        continue;  // destination unreachable: packet lost (tolerated)
      }
      Connection* conn;
      {
        MutexLock lock(&ep->mu);
        auto it = ep->connections.find(fd);
        if (it == ep->connections.end()) {
          continue;
        }
        conn = &it->second;
        conn->outbox.push_back(BuildFrame(packet));
      }
      TryWrite(ep, conn);
    }
  }

  void TryWrite(Endpoint* ep, Connection* conn) {
    for (;;) {
      std::string* front = nullptr;
      {
        MutexLock lock(&ep->mu);
        if (conn->outbox.empty()) {
          break;
        }
        front = &conn->outbox.front();
      }
      const ssize_t n =
          write(conn->fd, front->data() + conn->out_offset,
                front->size() - conn->out_offset);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        CloseConnection(ep, conn->fd);
        return;
      }
      conn->out_offset += static_cast<size_t>(n);
      if (conn->out_offset == front->size()) {
        MutexLock lock(&ep->mu);
        conn->outbox.pop_front();
        conn->out_offset = 0;
      }
    }
    UpdateWriteInterest(ep, conn);
  }

  void HandleReadable(Endpoint* ep, int fd) {
    Connection* conn;
    {
      MutexLock lock(&ep->mu);
      auto it = ep->connections.find(fd);
      if (it == ep->connections.end()) {
        return;
      }
      conn = &it->second;
    }
    char buf[16 * 1024];
    for (;;) {
      const ssize_t n = read(fd, buf, sizeof(buf));
      if (n > 0) {
        conn->inbox.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      // EOF or error: deliver what is complete, then drop the connection.
      DrainFrames(ep, conn);
      CloseConnection(ep, fd);
      return;
    }
    DrainFrames(ep, conn);
  }

  void DrainFrames(Endpoint* ep, Connection* conn) {
    for (;;) {
      if (conn->inbox.size() < 4) {
        return;
      }
      ByteReader header(conn->inbox.data(), 4);
      const uint32_t body_len = header.GetFixed32().value();
      if (body_len > 64u * 1024 * 1024) {
        // Corrupt length: poison the connection.
        conn->inbox.clear();
        CloseConnection(ep, conn->fd);
        return;
      }
      if (conn->inbox.size() < 4u + body_len) {
        return;
      }
      ByteReader body(conn->inbox.data() + 4, body_len);
      auto from = body.GetVarint();
      auto to = body.GetVarint();
      if (from.ok() && to.ok()) {
        Packet packet;
        packet.from = SiteId(from.value());
        packet.to = SiteId(to.value());
        packet.payload.assign(conn->inbox.data() + 4 + (body_len - body.remaining()),
                              body.remaining());
        if (IsPacketBatch(packet.payload)) {
          // Native unpack: deliver each carried packet individually.
          Result<std::vector<Packet>> unpacked =
              DecodePacketBatch(packet.payload);
          if (unpacked.ok()) {
            {
              MutexLock lock(&mu_);
              packets_delivered_ += unpacked.value().size();
            }
            for (Packet& p : unpacked.value()) {
              ep->handler(std::move(p));
            }
          }
        } else {
          {
            MutexLock lock(&mu_);
            ++packets_delivered_;
          }
          ep->handler(std::move(packet));
        }
      }
      conn->inbox.erase(0, 4u + body_len);
    }
  }

  void HandleAccept(Endpoint* ep) {
    for (;;) {
      const int fd = accept(ep->listen_fd, nullptr, nullptr);
      if (fd < 0) {
        return;
      }
      SetNonBlocking(fd);
      SetNoDelay(fd);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      epoll_ctl(ep->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
      MutexLock lock(&ep->mu);
      Connection conn;
      conn.fd = fd;
      ep->connections[fd] = std::move(conn);
    }
  }

  void IoLoop(Endpoint* ep) {
    epoll_event events[64];
    for (;;) {
      {
        MutexLock lock(&ep->mu);
        if (ep->stopping) {
          return;
        }
      }
      FlushPendingSends(ep);
      const int n = epoll_wait(ep->epoll_fd, events, 64, 50);
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == ep->wake_fd) {
          uint64_t drain;
          [[maybe_unused]] ssize_t r =
              read(ep->wake_fd, &drain, sizeof(drain));
          continue;
        }
        if (fd == ep->listen_fd) {
          HandleAccept(ep);
          continue;
        }
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          HandleReadable(ep, fd);  // drain then close
          continue;
        }
        if (events[i].events & EPOLLIN) {
          HandleReadable(ep, fd);
        }
        if (events[i].events & EPOLLOUT) {
          std::unordered_map<int, Connection>::iterator it;
          {
            MutexLock lock(&ep->mu);
            it = ep->connections.find(fd);
            if (it == ep->connections.end()) {
              continue;
            }
          }
          TryWrite(ep, &it->second);
        }
      }
    }
  }

  mutable Mutex mu_ POLYV_MUTEX_RANK(kTransport);
  std::unordered_map<SiteId, std::unique_ptr<Endpoint>> endpoints_
      GUARDED_BY(mu_);
  std::unordered_map<SiteId, uint16_t> ports_ GUARDED_BY(mu_);
  uint64_t packets_sent_ GUARDED_BY(mu_) = 0;
  uint64_t packets_delivered_ GUARDED_BY(mu_) = 0;
  uint64_t batched_frames_ GUARDED_BY(mu_) = 0;
};

TcpTransport::TcpTransport() : impl_(std::make_unique<Impl>()) {}
TcpTransport::~TcpTransport() = default;

Status TcpTransport::Register(SiteId site, Handler handler) {
  return impl_->Register(site, std::move(handler));
}
Status TcpTransport::Unregister(SiteId site) {
  return impl_->Unregister(site);
}
Status TcpTransport::Send(Packet packet) {
  return impl_->Send(std::move(packet));
}
Status TcpTransport::SendBatch(std::vector<Packet> packets) {
  return impl_->SendBatch(std::move(packets));
}
uint16_t TcpTransport::PortOf(SiteId site) const {
  return impl_->PortOf(site);
}
uint64_t TcpTransport::packets_sent() const { return impl_->packets_sent(); }
uint64_t TcpTransport::packets_delivered() const {
  return impl_->packets_delivered();
}
uint64_t TcpTransport::batched_frames() const {
  return impl_->batched_frames();
}

}  // namespace polyvalue
