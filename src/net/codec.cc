#include "src/net/codec.h"

#include "src/common/crc32.h"

namespace polyvalue {

namespace {
// Sanity caps: a peer (or a corrupt frame) cannot make us allocate
// unbounded structures.
constexpr uint64_t kMaxTermsPerCondition = 1 << 16;
constexpr uint64_t kMaxLiteralsPerTerm = 1 << 12;
constexpr uint64_t kMaxPairsPerPolyValue = 1 << 16;
constexpr uint64_t kMaxPacketsPerBatch = 1 << 16;
}  // namespace

void EncodeValue(const Value& v, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      w->PutBool(v.bool_value());
      break;
    case ValueType::kInt:
      w->PutSigned(v.int_value());
      break;
    case ValueType::kReal:
      w->PutDouble(v.real_value());
      break;
    case ValueType::kString:
      w->PutString(v.string_value());
      break;
  }
}

Result<Value> DecodeValue(ByteReader* r) {
  POLYV_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      POLYV_ASSIGN_OR_RETURN(bool b, r->GetBool());
      return Value::Bool(b);
    }
    case ValueType::kInt: {
      POLYV_ASSIGN_OR_RETURN(int64_t i, r->GetSigned());
      return Value::Int(i);
    }
    case ValueType::kReal: {
      POLYV_ASSIGN_OR_RETURN(double d, r->GetDouble());
      return Value::Real(d);
    }
    case ValueType::kString: {
      POLYV_ASSIGN_OR_RETURN(std::string s, r->GetString());
      return Value::Str(std::move(s));
    }
  }
  return DataLossError("bad value tag");
}

void EncodeCondition(const Condition& c, ByteWriter* w) {
  w->PutVarint(c.terms().size());
  for (const Term& t : c.terms()) {
    w->PutVarint(t.literals().size());
    for (const Literal& lit : t.literals()) {
      w->PutVarint(lit.txn.value());
      w->PutBool(lit.positive);
    }
  }
}

Result<Condition> DecodeCondition(ByteReader* r) {
  POLYV_ASSIGN_OR_RETURN(uint64_t n_terms, r->GetVarint());
  if (n_terms > kMaxTermsPerCondition) {
    return DataLossError("condition too large");
  }
  std::vector<Term> terms;
  terms.reserve(n_terms);
  for (uint64_t i = 0; i < n_terms; ++i) {
    POLYV_ASSIGN_OR_RETURN(uint64_t n_lits, r->GetVarint());
    if (n_lits > kMaxLiteralsPerTerm) {
      return DataLossError("term too large");
    }
    std::vector<Literal> literals;
    literals.reserve(n_lits);
    for (uint64_t j = 0; j < n_lits; ++j) {
      POLYV_ASSIGN_OR_RETURN(uint64_t txn, r->GetVarint());
      POLYV_ASSIGN_OR_RETURN(bool positive, r->GetBool());
      if (txn == TxnId::kInvalid) {
        return DataLossError("invalid txn id in condition");
      }
      literals.push_back({TxnId(txn), positive});
    }
    terms.push_back(Term::Of(std::move(literals)));
  }
  return Condition::Of(std::move(terms));
}

void EncodePolyValue(const PolyValue& pv, ByteWriter* w) {
  w->PutVarint(pv.pairs().size());
  for (const PolyPair& p : pv.pairs()) {
    EncodeValue(p.value, w);
    EncodeCondition(p.condition, w);
  }
}

Result<PolyValue> DecodePolyValue(ByteReader* r) {
  POLYV_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n == 0 || n > kMaxPairsPerPolyValue) {
    return DataLossError("bad polyvalue pair count");
  }
  std::vector<PolyPair> pairs;
  pairs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    POLYV_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    POLYV_ASSIGN_OR_RETURN(Condition c, DecodeCondition(r));
    pairs.push_back({std::move(v), std::move(c)});
  }
  return PolyValue::Of(std::move(pairs));
}

bool IsPacketBatch(const std::string& payload) {
  return payload.size() >= 3 &&
         static_cast<uint8_t>(payload[0]) == kPacketBatchMagic0 &&
         static_cast<uint8_t>(payload[1]) == kPacketBatchMagic1 &&
         static_cast<uint8_t>(payload[2]) == kPacketBatchVersion;
}

std::string EncodePacketBatch(const std::vector<Packet>& packets) {
  ByteWriter tail;
  tail.PutVarint(packets.size());
  for (const Packet& packet : packets) {
    tail.PutVarint(packet.from.value());
    tail.PutVarint(packet.to.value());
    tail.PutString(packet.payload);
  }
  ByteWriter frame;
  frame.PutU8(kPacketBatchMagic0);
  frame.PutU8(kPacketBatchMagic1);
  frame.PutU8(kPacketBatchVersion);
  frame.PutFixed32(Crc32(tail.buffer()));
  frame.PutRaw(tail.buffer().data(), tail.size());
  return frame.Take();
}

Result<std::vector<Packet>> DecodePacketBatch(const std::string& payload) {
  if (!IsPacketBatch(payload)) {
    return DataLossError("not a packet batch frame");
  }
  ByteReader r(payload);
  (void)r.GetU8();
  (void)r.GetU8();
  (void)r.GetU8();
  POLYV_ASSIGN_OR_RETURN(uint32_t crc, r.GetFixed32());
  if (Crc32(payload.data() + 7, payload.size() - 7) != crc) {
    return DataLossError("packet batch CRC mismatch");
  }
  POLYV_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  if (count > kMaxPacketsPerBatch) {
    return DataLossError("packet batch count too large");
  }
  std::vector<Packet> packets;
  packets.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Packet packet;
    POLYV_ASSIGN_OR_RETURN(uint64_t from, r.GetVarint());
    POLYV_ASSIGN_OR_RETURN(uint64_t to, r.GetVarint());
    packet.from = SiteId(from);
    packet.to = SiteId(to);
    POLYV_ASSIGN_OR_RETURN(packet.payload, r.GetString());
    packets.push_back(std::move(packet));
  }
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes in packet batch frame");
  }
  return packets;
}

}  // namespace polyvalue
