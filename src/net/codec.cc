#include "src/net/codec.h"

namespace polyvalue {

namespace {
// Sanity caps: a peer (or a corrupt frame) cannot make us allocate
// unbounded structures.
constexpr uint64_t kMaxTermsPerCondition = 1 << 16;
constexpr uint64_t kMaxLiteralsPerTerm = 1 << 12;
constexpr uint64_t kMaxPairsPerPolyValue = 1 << 16;
}  // namespace

void EncodeValue(const Value& v, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      w->PutBool(v.bool_value());
      break;
    case ValueType::kInt:
      w->PutSigned(v.int_value());
      break;
    case ValueType::kReal:
      w->PutDouble(v.real_value());
      break;
    case ValueType::kString:
      w->PutString(v.string_value());
      break;
  }
}

Result<Value> DecodeValue(ByteReader* r) {
  POLYV_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      POLYV_ASSIGN_OR_RETURN(bool b, r->GetBool());
      return Value::Bool(b);
    }
    case ValueType::kInt: {
      POLYV_ASSIGN_OR_RETURN(int64_t i, r->GetSigned());
      return Value::Int(i);
    }
    case ValueType::kReal: {
      POLYV_ASSIGN_OR_RETURN(double d, r->GetDouble());
      return Value::Real(d);
    }
    case ValueType::kString: {
      POLYV_ASSIGN_OR_RETURN(std::string s, r->GetString());
      return Value::Str(std::move(s));
    }
  }
  return DataLossError("bad value tag");
}

void EncodeCondition(const Condition& c, ByteWriter* w) {
  w->PutVarint(c.terms().size());
  for (const Term& t : c.terms()) {
    w->PutVarint(t.literals().size());
    for (const Literal& lit : t.literals()) {
      w->PutVarint(lit.txn.value());
      w->PutBool(lit.positive);
    }
  }
}

Result<Condition> DecodeCondition(ByteReader* r) {
  POLYV_ASSIGN_OR_RETURN(uint64_t n_terms, r->GetVarint());
  if (n_terms > kMaxTermsPerCondition) {
    return DataLossError("condition too large");
  }
  std::vector<Term> terms;
  terms.reserve(n_terms);
  for (uint64_t i = 0; i < n_terms; ++i) {
    POLYV_ASSIGN_OR_RETURN(uint64_t n_lits, r->GetVarint());
    if (n_lits > kMaxLiteralsPerTerm) {
      return DataLossError("term too large");
    }
    std::vector<Literal> literals;
    literals.reserve(n_lits);
    for (uint64_t j = 0; j < n_lits; ++j) {
      POLYV_ASSIGN_OR_RETURN(uint64_t txn, r->GetVarint());
      POLYV_ASSIGN_OR_RETURN(bool positive, r->GetBool());
      if (txn == TxnId::kInvalid) {
        return DataLossError("invalid txn id in condition");
      }
      literals.push_back({TxnId(txn), positive});
    }
    terms.push_back(Term::Of(std::move(literals)));
  }
  return Condition::Of(std::move(terms));
}

void EncodePolyValue(const PolyValue& pv, ByteWriter* w) {
  w->PutVarint(pv.pairs().size());
  for (const PolyPair& p : pv.pairs()) {
    EncodeValue(p.value, w);
    EncodeCondition(p.condition, w);
  }
}

Result<PolyValue> DecodePolyValue(ByteReader* r) {
  POLYV_ASSIGN_OR_RETURN(uint64_t n, r->GetVarint());
  if (n == 0 || n > kMaxPairsPerPolyValue) {
    return DataLossError("bad polyvalue pair count");
  }
  std::vector<PolyPair> pairs;
  pairs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    POLYV_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    POLYV_ASSIGN_OR_RETURN(Condition c, DecodeCondition(r));
    pairs.push_back({std::move(v), std::move(c)});
  }
  return PolyValue::Of(std::move(pairs));
}

}  // namespace polyvalue
