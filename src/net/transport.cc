#include "src/net/transport.h"

#include <algorithm>

#include "src/common/check.h"

namespace polyvalue {

Status Transport::SendBatch(std::vector<Packet> packets) {
  for (Packet& packet : packets) {
    POLYV_RETURN_IF_ERROR(Send(std::move(packet)));
  }
  return OkStatus();
}

std::pair<uint64_t, uint64_t> FaultPlan::LinkKey(SiteId a, SiteId b) {
  uint64_t x = a.value();
  uint64_t y = b.value();
  if (x > y) {
    std::swap(x, y);
  }
  return {x, y};
}

void FaultPlan::SetSiteDown(SiteId site, bool down) {
  MutexLock lock(&mu_);
  if (down) {
    down_sites_.insert(site.value());
  } else {
    down_sites_.erase(site.value());
  }
}

bool FaultPlan::IsSiteDown(SiteId site) const {
  MutexLock lock(&mu_);
  return down_sites_.count(site.value()) > 0;
}

void FaultPlan::SetLinkDown(SiteId a, SiteId b, bool down) {
  MutexLock lock(&mu_);
  if (down) {
    down_links_.insert(LinkKey(a, b));
  } else {
    down_links_.erase(LinkKey(a, b));
  }
}

void FaultPlan::SetOneWayDown(SiteId from, SiteId to, bool down) {
  MutexLock lock(&mu_);
  const std::pair<uint64_t, uint64_t> key{from.value(), to.value()};
  if (down) {
    down_one_way_.insert(key);
  } else {
    down_one_way_.erase(key);
  }
}

void FaultPlan::Partition(const std::vector<SiteId>& side_a,
                          const std::vector<SiteId>& side_b) {
  MutexLock lock(&mu_);
  for (SiteId a : side_a) {
    for (SiteId b : side_b) {
      down_links_.insert(LinkKey(a, b));
    }
  }
}

void FaultPlan::PartitionOneWay(const std::vector<SiteId>& from_side,
                                const std::vector<SiteId>& to_side) {
  MutexLock lock(&mu_);
  for (SiteId from : from_side) {
    for (SiteId to : to_side) {
      down_one_way_.insert({from.value(), to.value()});
    }
  }
}

void FaultPlan::HealLinks() {
  MutexLock lock(&mu_);
  down_links_.clear();
  down_one_way_.clear();
}

void FaultPlan::HealAll() {
  MutexLock lock(&mu_);
  down_links_.clear();
  down_one_way_.clear();
  down_sites_.clear();
}

void FaultPlan::SetDropProbability(double p) {
  POLYV_CHECK_GE(p, 0.0);
  POLYV_CHECK_LE(p, 1.0);
  MutexLock lock(&mu_);
  drop_probability_ = p;
}

void FaultPlan::SetDelayRange(double min_seconds, double max_seconds) {
  POLYV_CHECK_GE(min_seconds, 0.0);
  POLYV_CHECK_LE(min_seconds, max_seconds);
  MutexLock lock(&mu_);
  delay_min_ = min_seconds;
  delay_max_ = max_seconds;
}

void FaultPlan::SetLinkDelayRange(SiteId from, SiteId to,
                                  double min_seconds, double max_seconds) {
  POLYV_CHECK_GE(min_seconds, 0.0);
  POLYV_CHECK_LE(min_seconds, max_seconds);
  MutexLock lock(&mu_);
  link_delays_[{from.value(), to.value()}] = {min_seconds, max_seconds};
}

void FaultPlan::ClearLinkDelays() {
  MutexLock lock(&mu_);
  link_delays_.clear();
}

bool FaultPlan::ShouldDeliver(SiteId from, SiteId to, Rng* rng) const {
  MutexLock lock(&mu_);
  if (down_sites_.count(from.value()) || down_sites_.count(to.value())) {
    return false;
  }
  if (down_links_.count(LinkKey(from, to))) {
    return false;
  }
  if (down_one_way_.count({from.value(), to.value()})) {
    return false;
  }
  if (drop_probability_ > 0.0 && rng->NextBool(drop_probability_)) {
    return false;
  }
  return true;
}

double FaultPlan::SampleDelay(Rng* rng) const {
  MutexLock lock(&mu_);
  if (delay_max_ <= delay_min_) {
    return delay_min_;
  }
  return delay_min_ + rng->NextDouble() * (delay_max_ - delay_min_);
}

double FaultPlan::SampleDelay(SiteId from, SiteId to, Rng* rng) const {
  MutexLock lock(&mu_);
  double lo = delay_min_;
  double hi = delay_max_;
  auto it = link_delays_.find({from.value(), to.value()});
  if (it != link_delays_.end()) {
    lo = it->second.first;
    hi = it->second.second;
  }
  if (hi <= lo) {
    return lo;
  }
  return lo + rng->NextDouble() * (hi - lo);
}

double FaultPlan::min_delay() const {
  MutexLock lock(&mu_);
  return delay_min_;
}

}  // namespace polyvalue
