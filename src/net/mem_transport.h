// Threaded in-memory transport.
//
// Each registered site owns a mailbox and a dispatcher thread; Send
// applies the FaultPlan, stamps a delivery deadline (steady-clock now +
// sampled delay) and enqueues. The dispatcher sleeps until the earliest
// deadline and invokes the handler off the sender's thread — the engine
// above must therefore be thread-safe, which the integration tests verify.
#ifndef SRC_NET_MEM_TRANSPORT_H_
#define SRC_NET_MEM_TRANSPORT_H_

#include <chrono>
#include <memory>
#include <queue>
#include <thread>
#include <unordered_map>

#include "src/common/thread_annotations.h"
#include "src/net/transport.h"

namespace polyvalue {

class MemTransport : public Transport {
 public:
  // faults may be null (perfect network). The plan and rng seed are
  // captured at construction; each mailbox forks its own rng stream.
  explicit MemTransport(FaultPlan* faults = nullptr, uint64_t seed = 1);
  ~MemTransport() override;

  MemTransport(const MemTransport&) = delete;
  MemTransport& operator=(const MemTransport&) = delete;

  Status Register(SiteId site, Handler handler) override;
  Status Unregister(SiteId site) override;
  Status Send(Packet packet) override;

  // Native batching: carries same-link packets as ONE queued frame (one
  // fault-plan decision, one dispatcher wakeup); the dispatcher unpacks
  // the frame and invokes the handler once per inner packet.
  Status SendBatch(std::vector<Packet> packets) override;

  // Blocks until every queued packet has been delivered or dropped.
  void Flush();

  uint64_t packets_sent() const;
  uint64_t packets_delivered() const;
  // Frames enqueued through SendBatch carrying more than one packet.
  uint64_t batched_frames() const;

 private:
  using SteadyTime = std::chrono::steady_clock::time_point;

  struct Timed {
    SteadyTime deliver_at;
    uint64_t seq;
    Packet packet;
  };
  struct Later {
    bool operator()(const Timed& a, const Timed& b) const {
      if (a.deliver_at != b.deliver_at) {
        return a.deliver_at > b.deliver_at;
      }
      return a.seq > b.seq;
    }
  };

  struct Mailbox {
    Mutex mu POLYV_MUTEX_RANK(kTransportEndpoint);
    CondVar cv;
    std::priority_queue<Timed, std::vector<Timed>, Later> queue
        GUARDED_BY(mu);
    // Set once before the dispatcher thread starts, invoked unlocked —
    // deliberately not guarded.
    Handler handler;
    bool stopping GUARDED_BY(mu) = false;
    bool idle GUARDED_BY(mu) = true;  // no packet currently being handled
    std::thread dispatcher;
  };

  void DispatchLoop(Mailbox* box);

  FaultPlan* faults_;
  Rng send_rng_ GUARDED_BY(mu_);

  mutable Mutex mu_ POLYV_MUTEX_RANK(kTransport);
  std::unordered_map<SiteId, std::unique_ptr<Mailbox>> mailboxes_
      GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  uint64_t packets_sent_ GUARDED_BY(mu_) = 0;
  uint64_t batched_frames_ GUARDED_BY(mu_) = 0;
  mutable Mutex stats_mu_ POLYV_MUTEX_RANK(kTransportStats);
  uint64_t packets_delivered_ GUARDED_BY(stats_mu_) = 0;
};

}  // namespace polyvalue

#endif  // SRC_NET_MEM_TRANSPORT_H_
