#include "src/net/sim_transport.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/net/codec.h"

namespace polyvalue {

Status SimTransport::Register(SiteId site, Handler handler) {
  auto [it, inserted] = handlers_.emplace(site, std::move(handler));
  (void)it;
  if (!inserted) {
    return AlreadyExistsError(StrCat("site ", site, " already registered"));
  }
  return OkStatus();
}

Status SimTransport::Unregister(SiteId site) {
  if (handlers_.erase(site) == 0) {
    return NotFoundError(StrCat("site ", site, " not registered"));
  }
  return OkStatus();
}

void SimTransport::TracePacket(TraceEventType type, const Packet& packet) {
  if (trace_ == nullptr) {
    return;
  }
  TraceEvent event;
  event.time = sim_->now();
  event.type = type;
  // Dropped packets are attributed to the sender (the receiver never saw
  // them); deliveries to the receiver.
  event.site = type == TraceEventType::kMsgDelivered ? packet.to : packet.from;
  event.peer = type == TraceEventType::kMsgDelivered ? packet.from : packet.to;
  event.arg = packet.payload.size();
  trace_->Emit(event);
}

Status SimTransport::Send(Packet packet) {
  if (handlers_.find(packet.from) == handlers_.end()) {
    return InvalidArgumentError(
        StrCat("sender ", packet.from, " not registered"));
  }
  ++packets_sent_;
  bytes_sent_ += packet.payload.size();
  if (!faults_->ShouldDeliver(packet.from, packet.to, rng_)) {
    POLYV_TRACE << "drop " << packet.from << "->" << packet.to;
    TracePacket(TraceEventType::kMsgDropped, packet);
    return OkStatus();  // silently dropped: that is the failure model
  }
  if (filter_ != nullptr && !filter_(packet)) {
    POLYV_TRACE << "filtered " << packet.from << "->" << packet.to;
    TracePacket(TraceEventType::kMsgDropped, packet);
    return OkStatus();
  }
  const double delay = faults_->SampleDelay(packet.from, packet.to, rng_);
  sim_->After(delay, [this, packet = std::move(packet)]() mutable {
    // Re-check the receiver at delivery time.
    if (faults_->IsSiteDown(packet.to)) {
      TracePacket(TraceEventType::kMsgDropped, packet);
      return;
    }
    auto it = handlers_.find(packet.to);
    if (it == handlers_.end()) {
      TracePacket(TraceEventType::kMsgDropped, packet);
      return;  // receiver vanished while in flight
    }
    ++packets_delivered_;
    TracePacket(TraceEventType::kMsgDelivered, packet);
    it->second(std::move(packet));
  });
  return OkStatus();
}

Status SimTransport::SendBatch(std::vector<Packet> packets) {
  if (packets.empty()) {
    return OkStatus();
  }
  if (packets.size() == 1) {
    return Send(std::move(packets[0]));
  }
  if (filter_ != nullptr) {
    // Filters are per-message drop rules; keep their exact semantics.
    for (Packet& packet : packets) {
      POLYV_RETURN_IF_ERROR(Send(std::move(packet)));
    }
    return OkStatus();
  }
  const SiteId from = packets.front().from;
  const SiteId to = packets.front().to;
  if (handlers_.find(from) == handlers_.end()) {
    return InvalidArgumentError(StrCat("sender ", from, " not registered"));
  }
  const size_t count = packets.size();
  Packet envelope{from, to, EncodePacketBatch(packets)};
  packets_sent_ += count;
  bytes_sent_ += envelope.payload.size();
  ++batched_frames_;
  if (!faults_->ShouldDeliver(from, to, rng_)) {
    POLYV_TRACE << "drop batch " << from << "->" << to;
    TracePacket(TraceEventType::kMsgDropped, envelope);
    return OkStatus();
  }
  const double delay = faults_->SampleDelay(from, to, rng_);
  sim_->After(delay,
              [this, count, packets = std::move(packets),
               envelope = std::move(envelope)]() mutable {
    if (faults_->IsSiteDown(envelope.to)) {
      TracePacket(TraceEventType::kMsgDropped, envelope);
      return;
    }
    auto it = handlers_.find(envelope.to);
    if (it == handlers_.end()) {
      TracePacket(TraceEventType::kMsgDropped, envelope);
      return;
    }
    packets_delivered_ += count;
    for (Packet& packet : packets) {
      TracePacket(TraceEventType::kMsgDelivered, packet);
      it->second(std::move(packet));
    }
  });
  return OkStatus();
}

}  // namespace polyvalue
