#include "src/net/sim_transport.h"

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace polyvalue {

Status SimTransport::Register(SiteId site, Handler handler) {
  auto [it, inserted] = handlers_.emplace(site, std::move(handler));
  (void)it;
  if (!inserted) {
    return AlreadyExistsError(StrCat("site ", site, " already registered"));
  }
  return OkStatus();
}

Status SimTransport::Unregister(SiteId site) {
  if (handlers_.erase(site) == 0) {
    return NotFoundError(StrCat("site ", site, " not registered"));
  }
  return OkStatus();
}

Status SimTransport::Send(Packet packet) {
  if (handlers_.find(packet.from) == handlers_.end()) {
    return InvalidArgumentError(
        StrCat("sender ", packet.from, " not registered"));
  }
  ++packets_sent_;
  bytes_sent_ += packet.payload.size();
  if (!faults_->ShouldDeliver(packet.from, packet.to, rng_)) {
    POLYV_TRACE << "drop " << packet.from << "->" << packet.to;
    return OkStatus();  // silently dropped: that is the failure model
  }
  if (filter_ != nullptr && !filter_(packet)) {
    POLYV_TRACE << "filtered " << packet.from << "->" << packet.to;
    return OkStatus();
  }
  const double delay = faults_->SampleDelay(rng_);
  sim_->After(delay, [this, packet = std::move(packet)]() mutable {
    // Re-check the receiver at delivery time.
    if (faults_->IsSiteDown(packet.to)) {
      return;
    }
    auto it = handlers_.find(packet.to);
    if (it == handlers_.end()) {
      return;  // receiver vanished while in flight
    }
    ++packets_delivered_;
    it->second(std::move(packet));
  });
  return OkStatus();
}

}  // namespace polyvalue
