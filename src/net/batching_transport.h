// Message-batching transport decorator.
//
// Wraps any Transport and coalesces same-link (from, to) packets sent
// within a small window into one multi-packet wire frame (see
// EncodePacketBatch in codec.h), cutting per-message transport overhead
// — thread handoffs, syscalls, fault-plan decisions — on chatty commit
// traffic. Gray & Lamport's observation that commit cost is dominated by
// message delays is the motivation: the protocol sends many tiny frames
// to the same peers in bursts.
//
// Two flush modes:
//   * auto_flush = true  (threaded runtimes): a background flusher
//     drains every queue each `window_seconds`; Send also flushes a link
//     inline once `max_batch` packets or `max_bytes` payload bytes are
//     queued.
//   * auto_flush = false (deterministic simulator): packets buffer until
//     FlushAll() is called. The owner schedules flush ticks on the
//     simulator clock (SimCluster does this when batching is enabled),
//     so runs stay reproducible from their seed. The `flush_hook` fires
//     when a queue transitions empty -> non-empty, letting the owner arm
//     a one-shot tick instead of polling forever.
//
// Receive side: the wrapped handler unpacks batch frames before
// delivering, so engines above always see single protocol messages, even
// when the inner transport has no native batch support.
//
// With `enabled = false` the decorator is a transparent pass-through —
// the default configuration everywhere, preserving existing behaviour
// and the golden protocol trace.
#ifndef SRC_NET_BATCHING_TRANSPORT_H_
#define SRC_NET_BATCHING_TRANSPORT_H_

#include <functional>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/net/transport.h"

namespace polyvalue {

class BatchingTransport : public Transport {
 public:
  struct Options {
    bool enabled = true;
    // Queued packets on one link that trigger an inline flush.
    size_t max_batch = 8;
    // Queued payload bytes on one link that trigger an inline flush.
    size_t max_bytes = 64 * 1024;
    // Auto-flush period (and the worst case added latency).
    double window_seconds = 0.0002;
    // False: no flusher thread; the owner calls FlushAll() (simulator).
    bool auto_flush = true;
  };

  // `inner` must outlive the decorator.
  BatchingTransport(Transport* inner, Options options);
  explicit BatchingTransport(Transport* inner)
      : BatchingTransport(inner, Options()) {}
  ~BatchingTransport() override;

  BatchingTransport(const BatchingTransport&) = delete;
  BatchingTransport& operator=(const BatchingTransport&) = delete;

  Status Register(SiteId site, Handler handler) override;
  Status Unregister(SiteId site) override;
  Status Send(Packet packet) override;
  Status SendBatch(std::vector<Packet> packets) override;

  // Drains every queued packet into the inner transport. Deterministic
  // flush point for auto_flush = false owners; safe to call anytime.
  void FlushAll();

  // Invoked (outside the internal lock) whenever a link queue goes from
  // empty to non-empty — the cue to arm a deterministic flush tick.
  void set_flush_hook(std::function<void()> hook);

  // Frames handed to the inner transport that carried more than one
  // packet, and packets that rode such shared frames.
  uint64_t batched_frames() const;
  uint64_t packets_coalesced() const;

 private:
  using LinkKey = std::pair<uint64_t, uint64_t>;  // (from, to)

  struct LinkQueue {
    std::vector<Packet> packets;
    size_t bytes = 0;
  };

  // Hands one link's queue to the inner transport (single Send for a
  // lone packet, SendBatch otherwise). Called without mu_ held.
  void Dispatch(std::vector<Packet> packets);
  void FlusherLoop();

  Transport* const inner_;
  const Options options_;

  mutable Mutex mu_ POLYV_MUTEX_RANK(kBatching);
  CondVar cv_;
  // Sorted map: deterministic flush order.
  std::map<LinkKey, LinkQueue> queues_ GUARDED_BY(mu_);
  std::function<void()> flush_hook_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  uint64_t batched_frames_ GUARDED_BY(mu_) = 0;
  uint64_t packets_coalesced_ GUARDED_BY(mu_) = 0;
  std::thread flusher_;
};

}  // namespace polyvalue

#endif  // SRC_NET_BATCHING_TRANSPORT_H_
