// Message transport abstraction.
//
// Protocol state machines never touch a socket: they hand byte payloads
// to a Transport and receive them through a registered handler. Three
// implementations ship:
//
//   * SimTransport  — deterministic, on the discrete-event Simulator;
//                     the workhorse for tests and the availability benches.
//   * MemTransport  — real threads + in-memory mailboxes, for exercising
//                     the engine under true concurrency.
//   * TcpTransport  — TCP loopback with length-prefixed frames (epoll),
//                     proving the stack runs over an actual network edge.
//
// Failure injection (site crashes, link partitions, message drops and
// delays) is expressed through a FaultPlan shared by the sim and mem
// transports — the same schedule object drives both.
#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace polyvalue {

struct Packet {
  SiteId from;
  SiteId to;
  std::string payload;
};

class Transport {
 public:
  using Handler = std::function<void(Packet)>;

  virtual ~Transport() = default;

  // Attaches a delivery handler for `site`. The handler may be invoked on
  // an internal thread (mem/tcp) or inside simulator steps (sim).
  virtual Status Register(SiteId site, Handler handler) = 0;
  virtual Status Unregister(SiteId site) = 0;

  // Queues a packet. Asynchronous, best-effort: loss is a legitimate
  // outcome (that is what the protocol tolerates), so Send only fails on
  // caller errors (unregistered sender).
  virtual Status Send(Packet packet) = 0;

  // Queues several packets bound for the same (from, to) link. A
  // transport with native batching support carries them as ONE wire
  // frame (one fault-plan decision, one transport handoff); the default
  // implementation just sends them individually.
  virtual Status SendBatch(std::vector<Packet> packets);
};

// Mutable failure schedule consulted on every delivery. Thread-safe.
class FaultPlan {
 public:
  // Marks a site crashed: nothing is delivered to it, nothing it sends
  // leaves.
  void SetSiteDown(SiteId site, bool down);
  bool IsSiteDown(SiteId site) const;

  // Cuts the (symmetric) link between two sites.
  void SetLinkDown(SiteId a, SiteId b, bool down);

  // Cuts only the `from` -> `to` direction of a link: packets the other
  // way still flow. Models the asymmetric routing failures WAN paths
  // actually suffer (one-way BGP blackholes, asymmetric congestion
  // loss) that symmetric link cuts cannot express.
  void SetOneWayDown(SiteId from, SiteId to, bool down);

  // Splits the network into two halves; traffic crossing halves is cut.
  void Partition(const std::vector<SiteId>& side_a,
                 const std::vector<SiteId>& side_b);
  // Cuts only the `from_side` -> `to_side` direction between two site
  // groups (split-brain where one side can still hear the other).
  void PartitionOneWay(const std::vector<SiteId>& from_side,
                       const std::vector<SiteId>& to_side);
  // Restores every cut link, symmetric and one-way (sites marked down
  // stay down; per-link delay shaping is topology, not a fault, and is
  // untouched).
  void HealLinks();
  // Restores everything except delay shaping.
  void HealAll();

  // Uniform random drop probability applied to every packet.
  void SetDropProbability(double p);

  // Per-packet latency sampled uniformly from [min, max] seconds — the
  // default for links without their own shaping below.
  void SetDelayRange(double min_seconds, double max_seconds);

  // Per-directed-link latency override: packets `from` -> `to` sample
  // uniformly from [min, max] seconds instead of the default range.
  // This is the WAN model's substrate — region-pair latency
  // distributions compile down to one entry per cross-region site pair
  // (src/replica/wan.h does the compiling).
  void SetLinkDelayRange(SiteId from, SiteId to, double min_seconds,
                         double max_seconds);
  // Drops every per-link delay override, restoring the default range.
  void ClearLinkDelays();

  // Decision point: should a packet sent now be delivered?
  bool ShouldDeliver(SiteId from, SiteId to, Rng* rng) const;
  double SampleDelay(Rng* rng) const;
  // Link-aware variant: honours SetLinkDelayRange overrides. With no
  // override installed for the link it is draw-for-draw identical to
  // the default SampleDelay, so existing schedules are unperturbed.
  double SampleDelay(SiteId from, SiteId to, Rng* rng) const;

  double min_delay() const;

 private:
  static std::pair<uint64_t, uint64_t> LinkKey(SiteId a, SiteId b);

  mutable Mutex mu_ POLYV_MUTEX_RANK(kFaultPlan);
  std::unordered_set<uint64_t> down_sites_ GUARDED_BY(mu_);
  struct PairHash {
    size_t operator()(const std::pair<uint64_t, uint64_t>& p) const {
      return std::hash<uint64_t>()(p.first) * 1000003u ^
             std::hash<uint64_t>()(p.second);
    }
  };
  std::unordered_set<std::pair<uint64_t, uint64_t>, PairHash> down_links_
      GUARDED_BY(mu_);
  // Directed cuts, keyed (from, to) — NOT canonicalised like down_links_.
  std::unordered_set<std::pair<uint64_t, uint64_t>, PairHash>
      down_one_way_ GUARDED_BY(mu_);
  // Directed per-link delay overrides, keyed (from, to).
  std::unordered_map<std::pair<uint64_t, uint64_t>,
                     std::pair<double, double>, PairHash>
      link_delays_ GUARDED_BY(mu_);
  double drop_probability_ GUARDED_BY(mu_) = 0.0;
  double delay_min_ GUARDED_BY(mu_) = 0.001;  // 1 ms default one-way latency
  double delay_max_ GUARDED_BY(mu_) = 0.003;
};

}  // namespace polyvalue

#endif  // SRC_NET_TRANSPORT_H_
